#!/bin/sh
# Regenerate every paper table/figure (and the extras) into out/.
# Usage: scripts/run_experiments.sh [build-dir] [out-dir] [--quick]
set -e
BUILD=${1:-build}
OUT=${2:-out}
FLAG=${3:-}
mkdir -p "$OUT"
for b in "$BUILD"/bench/bench_*; do
    name=$(basename "$b")
    [ "$name" = bench_micro_sim ] && continue
    echo "== $name"
    "$b" $FLAG > "$OUT/$name.txt"
done
echo "wrote $(ls "$OUT" | wc -l) reports to $OUT/"
