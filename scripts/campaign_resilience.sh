#!/bin/sh
# Campaign resilience check, run in CI and locally:
#
#  1. Run an uninterrupted sweep and keep its result JSON.
#  2. Start the same sweep with a checkpoint journal, SIGKILL it once
#     at least two cells have been journaled, resume it with a
#     different worker count, and require the resumed result JSON to
#     be byte-identical to the uninterrupted one.
#  3. Run the sweep with fault injection armed and require it to
#     finish (exit 0 or 3, never a crash/abort), writing a failure
#     manifest for any quarantined cells.
#
# Usage: campaign_resilience.sh <path-to-vrc-sim> [scale]
set -eu

SIM=${1:?usage: campaign_resilience.sh <vrc-sim> [scale]}
SCALE=${2:-0.01}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

echo "== baseline sweep =="
"$SIM" --profile=pops --scale="$SCALE" --sweep --jobs=4 \
    --out="$WORK/baseline.json" > /dev/null

echo "== kill mid-sweep =="
rm -f "$WORK/journal.ckpt"
"$SIM" --profile=pops --scale="$SCALE" --sweep --jobs=2 \
    --checkpoint="$WORK/journal.ckpt" --out="$WORK/killed.json" \
    > /dev/null &
PID=$!
# Wait until at least two cells are journaled, then kill -9.
TRIES=0
while :; do
    DONE=$(grep -c ' end$' "$WORK/journal.ckpt" 2>/dev/null || true)
    [ "${DONE:-0}" -ge 2 ] && break
    if ! kill -0 "$PID" 2>/dev/null; then
        # Finished before we could kill it: journal is complete, the
        # resume below still has to reproduce the baseline.
        echo "  (sweep finished before the kill; resuming anyway)"
        break
    fi
    TRIES=$((TRIES + 1))
    if [ "$TRIES" -gt 600 ]; then
        echo "FAIL: no journal progress after 60s" >&2
        kill -9 "$PID" 2>/dev/null || true
        exit 1
    fi
    sleep 0.1
done
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
echo "  killed with $(grep -c ' end$' "$WORK/journal.ckpt") cells journaled"

# Simulate the worst SIGKILL timing: the journal ends in a torn,
# half-written cell line with no newline. Resume must shrug it off.
printf 'cell 8 2 262144 2097152 0 0x1.8' >> "$WORK/journal.ckpt"

echo "== resume with a different worker count =="
"$SIM" --profile=pops --scale="$SCALE" --sweep --jobs=3 \
    --checkpoint="$WORK/journal.ckpt" --resume \
    --out="$WORK/resumed.json" > /dev/null

if ! cmp -s "$WORK/baseline.json" "$WORK/resumed.json"; then
    echo "FAIL: resumed result differs from uninterrupted run" >&2
    diff "$WORK/baseline.json" "$WORK/resumed.json" >&2 || true
    exit 1
fi
echo "  resumed result is bit-identical to the uninterrupted run"

echo "== SIGTERM: graceful drain mid-sweep =="
# A bigger trace than the kill test: the sweep must still be mid-run
# when the signal lands, single-worker so cells drain one at a time.
DSCALE=${4:-0.2}
"$SIM" --profile=pops --scale="$DSCALE" --sweep --jobs=4 \
    --out="$WORK/drain_base.json" > /dev/null
rm -f "$WORK/drain.ckpt"
"$SIM" --profile=pops --scale="$DSCALE" --sweep --jobs=1 \
    --checkpoint="$WORK/drain.ckpt" --manifest="$WORK/drain.manifest" \
    --out="$WORK/drained.json" > /dev/null 2>&1 &
PID=$!
TRIES=0
FINISHED=0
# Signal as soon as the journal header exists: the handlers are
# installed before the journal opens, and the signal then lands while
# most cells are still pending.
while [ ! -s "$WORK/drain.ckpt" ]; do
    if ! kill -0 "$PID" 2>/dev/null; then
        FINISHED=1
        break
    fi
    TRIES=$((TRIES + 1))
    if [ "$TRIES" -gt 600 ]; then
        echo "FAIL: no journal progress after 60s" >&2
        kill -9 "$PID" 2>/dev/null || true
        exit 1
    fi
    sleep 0.1
done
if [ "$FINISHED" -eq 0 ] && ! kill -TERM "$PID" 2>/dev/null; then
    FINISHED=1
fi
if [ "$FINISHED" -eq 1 ]; then
    echo "  (sweep finished before the signal; skipping drain checks)"
else
    STATUS=0
    wait "$PID" || STATUS=$?
    if [ "$STATUS" -eq 0 ]; then
        echo "  (sweep beat the signal to the finish line)"
    else
        if [ "$STATUS" -ne 5 ]; then
            echo "FAIL: drained sweep exited with $STATUS, want 5" >&2
            exit 1
        fi
        grep -q '"interrupted":true' "$WORK/drain.manifest" || {
            echo "FAIL: manifest does not record the interrupt" >&2
            cat "$WORK/drain.manifest" >&2
            exit 1
        }
        echo "  drained cleanly: exit 5, manifest records the interrupt"
        # The interrupted journal must resume to the baseline result.
        "$SIM" --profile=pops --scale="$DSCALE" --sweep --jobs=4 \
            --checkpoint="$WORK/drain.ckpt" --resume \
            --out="$WORK/drained.json" > /dev/null
        if ! cmp -s "$WORK/drain_base.json" "$WORK/drained.json"; then
            echo "FAIL: post-drain resume differs from baseline" >&2
            exit 1
        fi
        echo "  post-drain resume is bit-identical to the baseline"
    fi
fi

echo "== sweep under fault injection =="
STATUS=0
"$SIM" --profile=pops --scale="$SCALE" --sweep --jobs=4 \
    --inject-faults=seed=7,throw=0.4,corrupt=0.2,stall=0.2,stall_ms=50 \
    --max-retries=2 --deadline=60 \
    --manifest="$WORK/faults.manifest" \
    --out="$WORK/faulted.json" > /dev/null 2>&1 || STATUS=$?
if [ "$STATUS" -ne 0 ] && [ "$STATUS" -ne 3 ]; then
    echo "FAIL: faulted sweep exited with $STATUS (crash/abort?)" >&2
    exit 1
fi
[ -f "$WORK/faults.manifest" ] || {
    echo "FAIL: no failure manifest written" >&2
    exit 1
}
COMPLETED=$(sed -n 's/.*"completed":\([0-9]*\).*/\1/p' \
    "$WORK/faulted.json")
echo "  faulted sweep exit=$STATUS completed=$COMPLETED/9"
if [ "${COMPLETED:-0}" -lt 1 ]; then
    echo "FAIL: no healthy cells completed under fault injection" >&2
    exit 1
fi

echo "campaign resilience: OK"
