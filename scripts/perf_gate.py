#!/usr/bin/env python3
"""Perf regression gate over BENCH_perf.json reports.

Compares a freshly measured report against the committed baseline and
fails (exit 1) when any table bench's single-threaded throughput drops
more than the tolerance below the baseline, or when a baseline table
vanished from the measurement. Contention sweeps are informational
(they measure the simulated machine, not the simulator) and faster-
than-baseline results never fail.

Usage: perf_gate.py BASELINE.json MEASURED.json [--tolerance 0.15]
"""

import argparse
import json
import sys


def tables(report):
    return {
        (b["bench"], b["section"]): b["refs_per_sec_jobs1"]
        for b in report["benches"]
        if b.get("kind") == "table"
    }


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("measured")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed fractional drop (default 0.15)")
    args = ap.parse_args()

    with open(args.baseline) as f:
        base = tables(json.load(f))
    with open(args.measured) as f:
        meas = tables(json.load(f))

    if not base:
        print("perf gate: baseline has no table benches", file=sys.stderr)
        return 1

    failures = []
    for key, base_rate in sorted(base.items()):
        rate = meas.get(key)
        name = f"{key[0]}/{key[1]}"
        if rate is None:
            failures.append(f"{name}: missing from measured report")
            continue
        ratio = rate / base_rate if base_rate else 0.0
        status = "ok"
        if ratio < 1.0 - args.tolerance:
            failures.append(
                f"{name}: {rate / 1e6:.2f}M refs/s is "
                f"{(1.0 - ratio) * 100:.1f}% below baseline "
                f"{base_rate / 1e6:.2f}M")
            status = "FAIL"
        print(f"  {status:4} {name}: {rate / 1e6:.2f}M vs "
              f"{base_rate / 1e6:.2f}M baseline ({ratio:.2f}x)")

    if failures:
        print(f"perf gate: {len(failures)} regression(s) beyond "
              f"{args.tolerance * 100:.0f}%:", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    print(f"perf gate: {len(base)} table benches within "
          f"{args.tolerance * 100:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
