#!/bin/sh
# Chaos soak for the simulation service (vrc-sim --serve), run in CI
# and locally -- ideally against an ASan/UBSan build:
#
#  1. Start a server with deterministic service faults armed (dropped
#     responses, torn frames), an aggressive read timeout, and a low
#     quarantine threshold.
#  2. Throw a mixed fleet at it: well-behaved verifying clients plus
#     malformed-frame, mid-segment-disconnect, and slowloris chaos
#     clients, all concurrently.
#  3. Require: every well-behaved segment completes with a summary
#     byte-identical to batch mode, only the malicious clients get
#     quarantined, and a SIGTERM drains the server cleanly (documented
#     exit code, atomic manifest with "drained":true).
#
# Usage: service_soak.sh <path-to-vrc-sim> <path-to-vrc-loadgen> [scale]
set -eu

SIM=${1:?usage: service_soak.sh <vrc-sim> <vrc-loadgen> [scale]}
GEN=${2:?usage: service_soak.sh <vrc-sim> <vrc-loadgen> [scale]}
SCALE=${3:-0.002}
WORK=$(mktemp -d)
SRV=
cleanup() {
    [ -n "$SRV" ] && kill -9 "$SRV" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

SOCK="$WORK/soak.sock"
MANIFEST="$WORK/soak.manifest"

echo "== start server (faults armed) =="
"$SIM" --serve --listen-unix="$SOCK" --workers=4 \
    --inject-faults=seed=3,drop=0.1,tear=0.05 \
    --read-timeout=1 --quarantine-threshold=2 \
    --deadline=60 --max-retries=2 \
    --manifest="$MANIFEST" > "$WORK/server.log" 2>&1 &
SRV=$!
TRIES=0
while [ ! -S "$SOCK" ]; do
    TRIES=$((TRIES + 1))
    if [ "$TRIES" -gt 100 ]; then
        echo "FAIL: server never bound $SOCK" >&2
        cat "$WORK/server.log" >&2
        exit 1
    fi
    sleep 0.1
done

echo "== chaos mix: 8 good + 2 malformed + 1 disconnect + 1 slowloris =="
"$GEN" --connect-unix="$SOCK" --profile=pops --scale="$SCALE" \
    --clients=8 --segments=16 \
    --malformed=2 --disconnect=1 --slowloris=1 \
    --verify --retry=8 --timeout=120

echo "== server must still be alive after the abuse =="
if ! kill -0 "$SRV" 2>/dev/null; then
    echo "FAIL: server died during the soak" >&2
    cat "$WORK/server.log" >&2
    exit 1
fi

echo "== SIGTERM: graceful drain =="
kill -TERM "$SRV"
STATUS=0
wait "$SRV" || STATUS=$?
SRV=
if [ "$STATUS" -ne 5 ]; then
    echo "FAIL: drain exited with $STATUS, want 5 (interrupted)" >&2
    cat "$WORK/server.log" >&2
    exit 1
fi
[ -f "$MANIFEST" ] || {
    echo "FAIL: no service manifest written" >&2
    exit 1
}
grep -q '"drained":true' "$MANIFEST" || {
    echo "FAIL: manifest does not record a clean drain" >&2
    cat "$MANIFEST" >&2
    exit 1
}

echo "== only the offenders may be quarantined =="
# Both malformed clients cross the threshold; nobody else ever should.
for bad in chaos-mal-0 chaos-mal-1; do
    grep -q "\"$bad\"" "$MANIFEST" || {
        echo "FAIL: $bad not quarantined" >&2
        cat "$MANIFEST" >&2
        exit 1
    }
done
if grep -q '"lg-' "$MANIFEST"; then
    echo "FAIL: a well-behaved client was quarantined" >&2
    cat "$MANIFEST" >&2
    exit 1
fi

sed -n 's/.*"segments":{\([^}]*\)}.*/  segments: \1/p' "$MANIFEST"
echo "service soak: OK"
