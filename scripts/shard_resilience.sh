#!/bin/sh
# Distributed shard resilience check, run in CI and locally:
#
#  1. Run an uninterrupted single-process sweep with a checkpoint and
#     keep its journal + result JSON as the ground truth.
#  2. Run the same grid through `--coordinate` on a unix socket with
#     three workers: one armed with deterministic stall faults (the
#     straggler), one SIGKILLed mid-run (the lost worker), one clean.
#     SIGTERM the coordinator mid-run and require a graceful drain:
#     exit 5 and a manifest that records the interrupt.
#  3. Relaunch the coordinator with --resume and two fresh workers and
#     require the final journal AND result JSON to be byte-identical
#     to the uninterrupted single-process run.
#  4. Run a coordinator against a worker whose every reply tears
#     mid-frame (reply-tear=1.0): the survivor must still finish the
#     grid with the baseline answer.
#  5. vrc-merge: partial journals split from the baseline merge back
#     -- in any input order -- to the canonical original; a
#     relabelled (conflicting) line is refused with exit 6.
#
# Usage: shard_resilience.sh <path-to-vrc-sim> <path-to-vrc-merge> [scale]
set -eu

SIM=${1:?usage: shard_resilience.sh <vrc-sim> <vrc-merge> [scale]}
MERGE=${2:?usage: shard_resilience.sh <vrc-sim> <vrc-merge> [scale]}
SCALE=${3:-0.01}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# Wait until the journal at $1 has at least $2 completed cell lines,
# or the process $3 exits. Returns 1 if $3 is gone, dies after 60s.
wait_cells() {
    TRIES=0
    while :; do
        DONE=$(grep -c ' end$' "$1" 2>/dev/null || true)
        [ "${DONE:-0}" -ge "$2" ] && return 0
        if ! kill -0 "$3" 2>/dev/null; then
            return 1
        fi
        TRIES=$((TRIES + 1))
        if [ "$TRIES" -gt 600 ]; then
            echo "FAIL: no journal progress after 60s" >&2
            exit 1
        fi
        sleep 0.1
    done
}

echo "== baseline single-process sweep =="
"$SIM" --profile=pops --scale="$SCALE" --sweep --jobs=4 \
    --checkpoint="$WORK/base.ckpt" --out="$WORK/base.json" > /dev/null

echo "== coordinated run: straggler + killed worker + SIGTERM =="
"$SIM" --profile=pops --scale="$SCALE" --coordinate \
    --listen-unix="$WORK/coord.sock" --shard-cells=1 \
    --deadline=0.5 --max-retries=10 \
    --checkpoint="$WORK/dist.ckpt" --manifest="$WORK/dist.manifest" \
    --out="$WORK/dist.json" > "$WORK/coord.log" 2>&1 &
CO=$!
TRIES=0
while [ ! -S "$WORK/coord.sock" ]; do
    kill -0 "$CO" 2>/dev/null || {
        echo "FAIL: coordinator died before binding" >&2
        cat "$WORK/coord.log" >&2
        exit 1
    }
    TRIES=$((TRIES + 1))
    [ "$TRIES" -gt 100 ] && {
        echo "FAIL: no coordinator socket after 10s" >&2
        exit 1
    }
    sleep 0.1
done
# w1: clean survivor.  w2: will be SIGKILLed.  w3: deterministic
# stalls, long enough that the 0.5 s deadline fires and the range is
# speculatively re-dispatched to a live worker.
"$SIM" --shard-worker --connect-unix="$WORK/coord.sock" \
    --worker-name=w1 --heartbeat=0.1 > "$WORK/w1.log" 2>&1 &
W1=$!
"$SIM" --shard-worker --connect-unix="$WORK/coord.sock" \
    --worker-name=w2 --heartbeat=0.1 > "$WORK/w2.log" 2>&1 &
W2=$!
"$SIM" --shard-worker --connect-unix="$WORK/coord.sock" \
    --worker-name=w3 --heartbeat=0.1 \
    --inject-faults=seed=5,worker-stall=0.4,stall_ms=2500 \
    > "$WORK/w3.log" 2>&1 &
W3=$!

if wait_cells "$WORK/dist.ckpt" 1 "$CO"; then
    kill -9 "$W2" 2>/dev/null || true
    echo "  SIGKILLed worker w2 with $(grep -c ' end$' \
        "$WORK/dist.ckpt") cells journaled"
fi
FINISHED=0
if wait_cells "$WORK/dist.ckpt" 3 "$CO"; then
    kill -TERM "$CO" 2>/dev/null || FINISHED=1
else
    FINISHED=1
fi
STATUS=0
wait "$CO" || STATUS=$?
wait "$W1" 2>/dev/null || true
wait "$W2" 2>/dev/null || true
wait "$W3" 2>/dev/null || true
if [ "$FINISHED" -eq 1 ] || [ "$STATUS" -eq 0 ]; then
    echo "  (coordinator finished before the signal; resuming anyway)"
else
    if [ "$STATUS" -ne 5 ]; then
        echo "FAIL: drained coordinator exited with $STATUS, want 5" >&2
        cat "$WORK/coord.log" >&2
        exit 1
    fi
    grep -q '"interrupted":true' "$WORK/dist.manifest" || {
        echo "FAIL: manifest does not record the interrupt" >&2
        cat "$WORK/dist.manifest" >&2
        exit 1
    }
    echo "  drained cleanly: exit 5, manifest records the interrupt"
fi

echo "== resume with fresh workers =="
"$SIM" --profile=pops --scale="$SCALE" --coordinate \
    --listen-unix="$WORK/coord.sock" --shard-cells=1 \
    --deadline=5 --max-retries=10 \
    --checkpoint="$WORK/dist.ckpt" --resume \
    --out="$WORK/dist.json" > "$WORK/coord2.log" 2>&1 &
CO=$!
TRIES=0
while [ ! -S "$WORK/coord.sock" ]; do
    kill -0 "$CO" 2>/dev/null && [ "$TRIES" -le 100 ] || break
    TRIES=$((TRIES + 1))
    sleep 0.1
done
"$SIM" --shard-worker --connect-unix="$WORK/coord.sock" \
    --worker-name=r1 > /dev/null 2>&1 &
R1=$!
"$SIM" --shard-worker --connect-unix="$WORK/coord.sock" \
    --worker-name=r2 > /dev/null 2>&1 &
R2=$!
STATUS=0
wait "$CO" || STATUS=$?
wait "$R1" 2>/dev/null || true
wait "$R2" 2>/dev/null || true
if [ "$STATUS" -ne 0 ]; then
    echo "FAIL: resumed coordinator exited with $STATUS" >&2
    cat "$WORK/coord2.log" >&2
    exit 1
fi
cmp -s "$WORK/base.json" "$WORK/dist.json" || {
    echo "FAIL: resumed distributed result differs from baseline" >&2
    diff "$WORK/base.json" "$WORK/dist.json" >&2 || true
    exit 1
}
cmp -s "$WORK/base.ckpt" "$WORK/dist.ckpt" || {
    echo "FAIL: resumed journal differs from baseline journal" >&2
    diff "$WORK/base.ckpt" "$WORK/dist.ckpt" >&2 || true
    exit 1
}
echo "  resumed journal and result are bit-identical to the baseline"

echo "== torn replies: every frame from one worker tears =="
"$SIM" --profile=pops --scale="$SCALE" --coordinate \
    --listen-unix="$WORK/coord.sock" --shard-cells=2 \
    --deadline=5 --max-retries=10 \
    --out="$WORK/tear.json" > "$WORK/coord3.log" 2>&1 &
CO=$!
TRIES=0
while [ ! -S "$WORK/coord.sock" ]; do
    kill -0 "$CO" 2>/dev/null && [ "$TRIES" -le 100 ] || break
    TRIES=$((TRIES + 1))
    sleep 0.1
done
"$SIM" --shard-worker --connect-unix="$WORK/coord.sock" \
    --worker-name=torn \
    --inject-faults=seed=3,reply-tear=1.0 > /dev/null 2>&1 &
T1=$!
"$SIM" --shard-worker --connect-unix="$WORK/coord.sock" \
    --worker-name=survivor > /dev/null 2>&1 &
T2=$!
STATUS=0
wait "$CO" || STATUS=$?
wait "$T1" 2>/dev/null || true
wait "$T2" 2>/dev/null || true
if [ "$STATUS" -ne 0 ]; then
    echo "FAIL: coordinator exited with $STATUS despite a survivor" >&2
    cat "$WORK/coord3.log" >&2
    exit 1
fi
cmp -s "$WORK/base.json" "$WORK/tear.json" || {
    echo "FAIL: result after torn replies differs from baseline" >&2
    exit 1
}
echo "  survivor completed the grid with the baseline answer"

echo "== vrc-merge: shuffled partials and a conflicting line =="
head -2 "$WORK/base.ckpt" > "$WORK/a.ckpt"
head -2 "$WORK/base.ckpt" > "$WORK/b.ckpt"
sed -n '3,5p' "$WORK/base.ckpt" >> "$WORK/a.ckpt"
sed -n '6,11p' "$WORK/base.ckpt" >> "$WORK/b.ckpt"
"$MERGE" --out="$WORK/merged.ckpt" "$WORK/b.ckpt" "$WORK/a.ckpt" \
    > /dev/null
cmp -s "$WORK/base.ckpt" "$WORK/merged.ckpt" || {
    echo "FAIL: merged journal differs from the original" >&2
    diff "$WORK/base.ckpt" "$WORK/merged.ckpt" >&2 || true
    exit 1
}
# Relabel a cell line: same key, same grid, conflicting content.
sed 's/^cell 1 /cell 0 /' "$WORK/a.ckpt" > "$WORK/tamper.ckpt"
STATUS=0
"$MERGE" --out="$WORK/bad.ckpt" "$WORK/tamper.ckpt" "$WORK/b.ckpt" \
    > /dev/null 2>&1 || STATUS=$?
if [ "$STATUS" -ne 6 ]; then
    echo "FAIL: conflicting merge exited with $STATUS, want 6" >&2
    exit 1
fi
echo "  merge is order-independent; conflicts refused with exit 6"

echo "shard resilience: OK"
