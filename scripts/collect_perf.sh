#!/bin/sh
# Measure the experiment engine's throughput and write BENCH_perf.json.
#
# Runs the simulation-heavy bench binaries twice -- once single-threaded
# and once with the host's default worker count -- collecting the JSON
# lines each binary emits via VRC_PERF_OUT, then assembles one report
# with per-bench refs/sec, wall-clock per table, and the parallel
# speedup on this host.
#
# Usage: scripts/collect_perf.sh [build-dir] [out-file] [bench-args...]
#   e.g. scripts/collect_perf.sh build BENCH_perf.json --quick
set -e
BUILD=${1:-build}
OUT=${2:-BENCH_perf.json}
shift 2 2>/dev/null || shift $# 2>/dev/null || true
ARGS="$*"

BENCHES="bench_table6_hit_ratios bench_table7_small_caches \
bench_table8_split_thor bench_table11_coherence_pops \
bench_fig4_access_time bench_inclusion_invalidations \
bench_protocol_ablation"

JOBS_MAX=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# Cycle-engine contention sweeps: one figure bench per workload, run
# with --contention so each CPU-count point lands as its own perf
# section (<trace>-contention-cpusN) in the report.
CONTENTION_BENCHES="bench_fig5_access_time bench_fig6_access_time"

for jobs in 1 "$JOBS_MAX"; do
    : > "$TMP/perf_$jobs.jsonl"
    for b in $BENCHES; do
        [ -x "$BUILD/bench/$b" ] || continue
        echo "== $b (jobs=$jobs)" >&2
        VRC_PERF_OUT="$TMP/perf_$jobs.jsonl" \
            "$BUILD/bench/$b" $ARGS "--jobs=$jobs" > /dev/null
    done
    for b in $CONTENTION_BENCHES; do
        [ -x "$BUILD/bench/$b" ] || continue
        echo "== $b --contention (jobs=$jobs)" >&2
        VRC_PERF_OUT="$TMP/perf_$jobs.jsonl" \
            "$BUILD/bench/$b" --contention $ARGS "--jobs=$jobs" \
            > /dev/null
    done
done

# Single-thread hot-path throughput (google-benchmark), if built.
MICRO="$TMP/micro.json"
if [ -x "$BUILD/bench/bench_micro_sim" ]; then
    echo "== bench_micro_sim" >&2
    "$BUILD/bench/bench_micro_sim" --benchmark_filter=Simulate \
        --benchmark_format=json > "$MICRO" 2>/dev/null || : > "$MICRO"
else
    : > "$MICRO"
fi

python3 - "$TMP/perf_1.jsonl" "$TMP/perf_$JOBS_MAX.jsonl" "$MICRO" \
    "$OUT" <<'EOF'
import json, sys

def load(path):
    rows = {}
    with open(path) as f:
        for line in f:
            r = json.loads(line)
            rows[(r["bench"], r["section"])] = r
    return rows

serial, parallel = load(sys.argv[1]), load(sys.argv[2])
report = {"host_cpus": None, "benches": []}
speedups = []
for key, s in serial.items():
    p = parallel.get(key, s)
    report["host_cpus"] = p["jobs"]
    entry = {
        "bench": key[0],
        "section": key[1],
        "kind": ("contention-sweep" if "-contention-" in key[1]
                 else "table"),
        "refs": s["refs"],
        "seconds_jobs1": s["seconds"],
        "refs_per_sec_jobs1": s["refs_per_sec"],
        "seconds_jobsN": p["seconds"],
        "refs_per_sec_jobsN": p["refs_per_sec"],
        "speedup": s["seconds"] / p["seconds"] if p["seconds"] else 0.0,
    }
    report["benches"].append(entry)
    if key[1] == "total":
        speedups.append(entry["speedup"])
report["mean_total_speedup"] = (
    sum(speedups) / len(speedups) if speedups else 0.0)

try:
    with open(sys.argv[3]) as f:
        micro = json.load(f)
    report["single_thread_refs_per_sec"] = {
        b["name"]: b.get("items_per_second", 0.0)
        for b in micro.get("benchmarks", [])
    }
except (json.JSONDecodeError, OSError):
    pass

with open(sys.argv[4], "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(f"wrote {sys.argv[4]}: mean speedup over "
      f"{len(speedups)} benches = {report['mean_total_speedup']:.2f}x "
      f"at {report['host_cpus']} jobs")
EOF
