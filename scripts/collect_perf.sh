#!/bin/sh
# Measure the experiment engine's throughput and write BENCH_perf.json.
#
# Runs the simulation-heavy bench binaries from a dedicated perf build
# (Release, no reference model, LTO, -march=native) -- once
# single-threaded and once with every host core -- collecting the JSON
# lines each binary emits via VRC_PERF_OUT, then assembles one report
# with per-bench refs/sec, wall-clock per table, and the parallel
# speedup on this host. Each pass is run VRC_PERF_RUNS times (default
# 3) and the fastest run per table wins, so one scheduler hiccup
# cannot poison the baseline.
#
# Usage: scripts/collect_perf.sh [build-dir] [out-file] [bench-args...]
#   e.g. scripts/collect_perf.sh build BENCH_perf.json --quick
#
# Environment:
#   VRC_JOBS=N           override the detected core count
#   VRC_PERF_RUNS=N      best-of-N runs per pass (default 3)
#   VRC_PERF_NO_BUILD=1  benchmark [build-dir] as-is instead of
#                        configuring the <build-dir>-perf tree
set -e
BUILD=${1:-build}
OUT=${2:-BENCH_perf.json}
shift 2 2>/dev/null || shift $# 2>/dev/null || true
ARGS="$*"
RUNS=${VRC_PERF_RUNS:-3}

# Core detection with fallbacks; getconf alone reports 1 inside some
# containers even when more cores are online.
if [ -n "${VRC_JOBS:-}" ]; then
    JOBS_MAX=$VRC_JOBS
else
    JOBS_MAX=$(nproc 2>/dev/null) ||
        JOBS_MAX=$(getconf _NPROCESSORS_ONLN 2>/dev/null) ||
        JOBS_MAX=$(grep -c '^processor' /proc/cpuinfo 2>/dev/null) ||
        JOBS_MAX=1
fi
case "$JOBS_MAX" in
    ''|*[!0-9]*) echo "error: bad core count '$JOBS_MAX'" >&2; exit 1;;
esac
[ "$JOBS_MAX" -ge 1 ] || { echo "error: no cores detected" >&2; exit 1; }
if [ "$JOBS_MAX" -eq 1 ]; then
    echo "WARNING: single-CPU host -- parallel speedup cannot be" \
         "measured here; jobsN numbers will equal jobs1" >&2
fi

# Numbers of record come from the perf configuration: Release, the
# legacy reference model compiled out, LTO, native ISA. -ffp-contract
# =off keeps the analytic-model doubles byte-identical to the default
# build so figure outputs can be diffed against the test build.
if [ -z "${VRC_PERF_NO_BUILD:-}" ]; then
    PERF_BUILD="${BUILD%/}-perf"
    echo "== configuring perf build in $PERF_BUILD" >&2
    cmake -B "$PERF_BUILD" -S "$(dirname "$0")/.." \
        -DCMAKE_BUILD_TYPE=Release \
        -DVRC_REFERENCE_MODEL=OFF \
        -DCMAKE_INTERPROCEDURAL_OPTIMIZATION=ON \
        -DCMAKE_CXX_FLAGS="-march=native -ffp-contract=off" \
        >/dev/null
    cmake --build "$PERF_BUILD" -j "$JOBS_MAX" >/dev/null
    BUILD=$PERF_BUILD
else
    echo "== VRC_PERF_NO_BUILD set: benchmarking $BUILD as-is" >&2
fi

BENCHES="bench_table6_hit_ratios bench_table7_small_caches \
bench_table8_split_thor bench_table11_coherence_pops \
bench_fig4_access_time bench_inclusion_invalidations \
bench_protocol_ablation"

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# Cycle-engine contention sweeps: one figure bench per workload, run
# with --contention so each CPU-count point lands as its own perf
# section (<trace>-contention-cpusN) in the report.
CONTENTION_BENCHES="bench_fig5_access_time bench_fig6_access_time"

# On a single-core host the two passes would be identical; run one.
PASSES=1
[ "$JOBS_MAX" -gt 1 ] && PASSES="1 $JOBS_MAX"

for jobs in $PASSES; do
    run=0
    while [ "$run" -lt "$RUNS" ]; do
        run=$((run + 1))
        : > "$TMP/perf_${jobs}_r${run}.jsonl"
        for b in $BENCHES; do
            [ -x "$BUILD/bench/$b" ] || continue
            echo "== $b (jobs=$jobs run=$run/$RUNS)" >&2
            VRC_PERF_OUT="$TMP/perf_${jobs}_r${run}.jsonl" \
                "$BUILD/bench/$b" $ARGS "--jobs=$jobs" > /dev/null
        done
        for b in $CONTENTION_BENCHES; do
            [ -x "$BUILD/bench/$b" ] || continue
            echo "== $b --contention (jobs=$jobs run=$run/$RUNS)" >&2
            VRC_PERF_OUT="$TMP/perf_${jobs}_r${run}.jsonl" \
                "$BUILD/bench/$b" --contention $ARGS "--jobs=$jobs" \
                > /dev/null
        done
    done
done

# Single-thread hot-path throughput (google-benchmark), if built.
MICRO="$TMP/micro.json"
if [ -x "$BUILD/bench/bench_micro_sim" ]; then
    echo "== bench_micro_sim" >&2
    "$BUILD/bench/bench_micro_sim" --benchmark_filter=Simulate \
        --benchmark_format=json > "$MICRO" 2>/dev/null || : > "$MICRO"
else
    : > "$MICRO"
fi

JOBS_MAX=$JOBS_MAX RUNS=$RUNS TMP=$TMP MICRO=$MICRO OUT=$OUT \
    python3 <<'EOF'
import json, os, sys

tmp = os.environ["TMP"]
jobs_max = int(os.environ["JOBS_MAX"])
runs = int(os.environ["RUNS"])

def load_best(jobs):
    """Fastest observation per (bench, section) across all runs."""
    rows = {}
    for run in range(1, runs + 1):
        path = f"{tmp}/perf_{jobs}_r{run}.jsonl"
        with open(path) as f:
            for line in f:
                r = json.loads(line)
                key = (r["bench"], r["section"])
                if key not in rows or r["seconds"] < rows[key]["seconds"]:
                    rows[key] = r
    return rows

serial, parallel = load_best(1), load_best(jobs_max)
report = {"host_cpus": jobs_max, "runs": runs, "benches": []}
speedups = []
for key, s in serial.items():
    p = parallel.get(key, s)
    entry = {
        "bench": key[0],
        "section": key[1],
        "kind": ("contention-sweep" if "-contention-" in key[1]
                 else "table"),
        "refs": s["refs"],
        "seconds_jobs1": s["seconds"],
        "refs_per_sec_jobs1": s["refs_per_sec"],
        "seconds_jobsN": p["seconds"],
        "refs_per_sec_jobsN": p["refs_per_sec"],
        "speedup": s["seconds"] / p["seconds"] if p["seconds"] else 0.0,
    }
    report["benches"].append(entry)
    if key[1] == "total":
        speedups.append(entry["speedup"])
report["mean_total_speedup"] = (
    sum(speedups) / len(speedups) if speedups else 0.0)

try:
    with open(os.environ["MICRO"]) as f:
        micro = json.load(f)
    report["single_thread_refs_per_sec"] = {
        b["name"]: b.get("items_per_second", 0.0)
        for b in micro.get("benchmarks", [])
    }
except (json.JSONDecodeError, OSError):
    pass

out = os.environ["OUT"]
with open(out, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(f"wrote {out}: best of {runs} runs, mean speedup over "
      f"{len(speedups)} benches = {report['mean_total_speedup']:.2f}x "
      f"at {jobs_max} jobs")

# A multi-core host whose jobsN pass is no faster than jobs1 means the
# parallel runner silently collapsed to serial -- exactly the failure
# a perf baseline must not paper over.
if jobs_max > 1 and speedups and report["mean_total_speedup"] < 1.2:
    print(f"error: {jobs_max} cores detected but mean parallel "
          f"speedup is {report['mean_total_speedup']:.2f}x -- "
          "parallelism has collapsed; refusing this baseline",
          file=sys.stderr)
    sys.exit(1)
EOF
