/**
 * @file
 * Warm pool of ready-to-run simulators.
 *
 * Segment results must be bit-identical to batch mode, and batch mode
 * runs every trace through a *fresh* MpSimulator -- so a simulator
 * that has replayed a segment can never be handed to the next one
 * (its caches, TLBs and pointer state are dirty). What the pool
 * amortizes instead is construction: building the address spaces, the
 * flat SoA tag arrays and the per-CPU arenas for a 256K L2 is the
 * per-segment fixed cost, and the pool keeps a small stock of
 * never-used simulators per (profile, machine) key so a segment's
 * latency starts at replay, not at allocation. After a segment
 * completes, the worker discards the dirty instance and restocks a
 * fresh one while the connection is idle.
 */

#ifndef VRC_SERVE_SIM_POOL_HH
#define VRC_SERVE_SIM_POOL_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/mp_sim.hh"
#include "trace/workload.hh"

namespace vrc
{

/** Pool of fresh simulators, keyed by workload + machine identity. */
class SimulatorPool
{
  public:
    /** @p stockPerKey fresh instances kept per configuration. */
    explicit SimulatorPool(std::size_t stockPerKey = 2)
        : _stockPerKey(stockPerKey)
    {
    }

    /** Cache key: everything that shapes a simulator's construction. */
    static std::string
    key(const WorkloadProfile &profile, const SimJob &job)
    {
        std::ostringstream os;
        os << profile.name << '/' << profile.numCpus << '/'
           << profile.pageSize << '/' << static_cast<int>(job.kind)
           << '/' << job.l1Size << '/' << job.l2Size << '/'
           << (job.split ? 1 : 0) << '/'
           << static_cast<int>(job.timingMode);
        return os.str();
    }

    /**
     * A fresh simulator for (profile, job): from stock when one is
     * warm, constructed on the spot otherwise. Always never-used.
     */
    std::unique_ptr<MpSimulator>
    acquire(const WorkloadProfile &profile, const SimJob &job)
    {
        const std::string k = key(profile, job);
        {
            std::lock_guard<std::mutex> g(_mu);
            auto it = _stock.find(k);
            if (it != _stock.end() && !it->second.empty()) {
                std::unique_ptr<MpSimulator> sim =
                    std::move(it->second.back());
                it->second.pop_back();
                ++_hits;
                return sim;
            }
        }
        ++_misses;
        return construct(profile, job);
    }

    /**
     * Restock one fresh instance for (profile, job) unless the shelf
     * is already full. Called by a worker after it discards a dirty
     * simulator, off the critical path of the reply.
     */
    void
    restock(const WorkloadProfile &profile, const SimJob &job)
    {
        const std::string k = key(profile, job);
        {
            std::lock_guard<std::mutex> g(_mu);
            if (_stock[k].size() >= _stockPerKey)
                return;
        }
        // Construction happens outside the lock; the worst case is a
        // momentary overshoot of the stock cap, not a stall of every
        // other worker.
        std::unique_ptr<MpSimulator> sim = construct(profile, job);
        std::lock_guard<std::mutex> g(_mu);
        if (_stock[k].size() < _stockPerKey)
            _stock[k].push_back(std::move(sim));
    }

    std::uint64_t hits() const { return _hits; }
    std::uint64_t misses() const { return _misses; }

  private:
    static std::unique_ptr<MpSimulator>
    construct(const WorkloadProfile &profile, const SimJob &job)
    {
        MachineConfig mc =
            makeMachineConfig(job.kind, job.l1Size, job.l2Size,
                              profile.pageSize, job.split);
        mc.invariantPeriod = job.invariantPeriod;
        mc.timingMode = job.timingMode;
        return std::make_unique<MpSimulator>(mc, profile);
    }

    std::size_t _stockPerKey;
    std::mutex _mu;
    std::map<std::string, std::vector<std::unique_ptr<MpSimulator>>>
        _stock;
    std::atomic<std::uint64_t> _hits{0};
    std::atomic<std::uint64_t> _misses{0};
};

} // namespace vrc

#endif // VRC_SERVE_SIM_POOL_HH
