#include "serve/server.hh"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include "base/atomic_file.hh"
#include "base/fault.hh"
#include "base/log.hh"
#include "base/shutdown.hh"
#include "serve/sim_pool.hh"
#include "serve/wire.hh"
#include "sim/campaign.hh"
#include "trace/workload.hh"

namespace vrc
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t)
{
    return std::chrono::duration<double>(Clock::now() - t).count();
}


bool
knownProfileName(const std::string &name)
{
    return name == "pops" || name == "thor" || name == "abaqus";
}

std::string
jsonEscapeName(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(static_cast<unsigned char>(c) < 0x20 ? ' ' : c);
    }
    return out;
}

} // namespace

const char *
sessionStateName(SessionState s)
{
    switch (s) {
      case SessionState::AwaitHello:
        return "await-hello";
      case SessionState::Ready:
        return "ready";
      case SessionState::Poisoned:
        return "poisoned";
      case SessionState::Closed:
        return "closed";
    }
    return "unknown";
}

/** One connected client. */
struct Session
{
    std::uint64_t id = 0;
    int fd = -1;
    std::atomic<SessionState> state{SessionState::AwaitHello};
    std::string client; ///< HELLO name; reader thread writes it once
                        ///< before flipping state to Ready

    std::mutex writeMu;       ///< serializes the socket's write side
    bool writeShut = false;   ///< under writeMu

    std::atomic<std::size_t> inflight{0};
    std::atomic<std::uint64_t> txSeq{0};
    std::atomic<bool> readerDone{false};
    std::thread reader;

    FrameReader frames{wireMaxPayloadDefault}; ///< reader thread only

    bool
    alive() const
    {
        SessionState s = state.load(std::memory_order_acquire);
        return s == SessionState::AwaitHello ||
               s == SessionState::Ready;
    }
};

/** One admitted segment waiting for (or on) a worker. */
struct Work
{
    std::shared_ptr<Session> session;
    SubmitRequest submit;
    WorkloadProfile profile; ///< resolved and scaled at admission
};

struct ServeServer::Impl
{
    ServeOptions opt;

    int unixFd = -1;
    int tcpFd = -1;
    int boundTcpPort = -1;
    int drainPipe[2] = {-1, -1};
    int signalWakeFd = -1;

    std::thread acceptThread;
    std::vector<std::thread> workers;

    // Admission queue. `draining` flips under qMu so an admission
    // that saw it false has its push ordered before the workers'
    // final drain of the queue.
    std::mutex qMu;
    std::condition_variable qCv;
    std::deque<Work> queue;
    bool draining = false;

    std::mutex sessMu;
    std::vector<std::shared_ptr<Session>> sessions;
    std::uint64_t nextSessionId = 1;

    // Counters + quarantine registry.
    mutable std::mutex statsMu;
    ServiceStats st;
    std::map<std::string, unsigned> poisonCounts;
    std::uint64_t sessionsReaped = 0;

    SimulatorPool pool{2};

    std::atomic<bool> started{false};

    // ---- socket plumbing -------------------------------------------

    Status
    bindListeners()
    {
        if (opt.unixPath.empty() && opt.tcpPort < 0)
            return makeError(ErrorKind::Io,
                             "serve: no listener configured (need a "
                             "unix path and/or a TCP port)");
        if (!opt.unixPath.empty()) {
            sockaddr_un sa = {};
            if (opt.unixPath.size() >= sizeof(sa.sun_path))
                return makeError(ErrorKind::Bounds,
                                 "unix socket path too long: ",
                                 opt.unixPath);
            unixFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
            if (unixFd < 0)
                return makeError(ErrorKind::Io, "socket(AF_UNIX): ",
                                 std::strerror(errno));
            sa.sun_family = AF_UNIX;
            std::strncpy(sa.sun_path, opt.unixPath.c_str(),
                         sizeof(sa.sun_path) - 1);
            ::unlink(opt.unixPath.c_str());
            if (::bind(unixFd, reinterpret_cast<sockaddr *>(&sa),
                       sizeof(sa)) != 0 ||
                ::listen(unixFd, 64) != 0)
                return makeError(ErrorKind::Io, "cannot listen on ",
                                 opt.unixPath, ": ",
                                 std::strerror(errno));
        }
        if (opt.tcpPort >= 0) {
            tcpFd = ::socket(AF_INET, SOCK_STREAM, 0);
            if (tcpFd < 0)
                return makeError(ErrorKind::Io, "socket(AF_INET): ",
                                 std::strerror(errno));
            int one = 1;
            ::setsockopt(tcpFd, SOL_SOCKET, SO_REUSEADDR, &one,
                         sizeof(one));
            sockaddr_in sa = {};
            sa.sin_family = AF_INET;
            sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
            sa.sin_port =
                htons(static_cast<std::uint16_t>(opt.tcpPort));
            if (::bind(tcpFd, reinterpret_cast<sockaddr *>(&sa),
                       sizeof(sa)) != 0 ||
                ::listen(tcpFd, 64) != 0)
                return makeError(ErrorKind::Io,
                                 "cannot listen on 127.0.0.1:",
                                 opt.tcpPort, ": ",
                                 std::strerror(errno));
            socklen_t len = sizeof(sa);
            ::getsockname(tcpFd, reinterpret_cast<sockaddr *>(&sa),
                          &len);
            boundTcpPort = ntohs(sa.sin_port);
        }
        return okStatus();
    }

    // ---- session write side ----------------------------------------

    /** Shut the socket down (both ways) with writeMu already held. */
    void
    shutLocked(Session &s)
    {
        if (!s.writeShut) {
            s.writeShut = true;
            ::shutdown(s.fd, SHUT_RDWR);
        }
    }

    /**
     * Send one frame, applying an injected service fault when armed.
     * Returns false when the session is gone (or was just cut).
     */
    bool
    sendFrame(Session &s, const std::string &frame,
              ServeFault fault = ServeFault::None)
    {
        std::lock_guard<std::mutex> g(s.writeMu);
        if (s.writeShut || !s.alive())
            return false;
        if (fault == ServeFault::Tear) {
            warn("serve: fault injection tearing a frame on session ",
                 s.id);
            writeAllFd(s.fd, frame.data(), frame.size() / 2);
            shutLocked(s);
            s.state.store(SessionState::Closed,
                          std::memory_order_release);
            bumpStat(&ServiceStats::responsesTorn);
            return false;
        }
        if (!writeAllFd(s.fd, frame.data(), frame.size())) {
            shutLocked(s);
            s.state.store(SessionState::Closed,
                          std::memory_order_release);
            return false;
        }
        if (fault == ServeFault::Drop) {
            warn("serve: fault injection dropping session ", s.id);
            shutLocked(s);
            s.state.store(SessionState::Closed,
                          std::memory_order_release);
            bumpStat(&ServiceStats::responsesDropped);
            return false;
        }
        return true;
    }

    void
    bumpStat(std::uint64_t ServiceStats::*field)
    {
        std::lock_guard<std::mutex> g(statsMu);
        ++(st.*field);
    }

    /**
     * Poison a session: count the offense toward its client's
     * quarantine budget, then best-effort error frame and cut the
     * socket. The strike must land before the shutdown: a client that
     * observes EOF and reconnects immediately has to see its updated
     * count at the next HELLO.
     */
    void
    poison(Session &s, const Error &err)
    {
        warn("serve: poisoning session ", s.id,
             s.client.empty() ? "" : (" (" + s.client + ")"), ": ",
             err.describe());
        {
            std::lock_guard<std::mutex> g(statsMu);
            ++st.sessionsPoisoned;
            if (!s.client.empty()) {
                unsigned n = ++poisonCounts[s.client];
                if (n == opt.quarantineThreshold)
                    st.quarantinedClients.push_back(s.client);
            }
        }
        {
            std::lock_guard<std::mutex> g(s.writeMu);
            if (!s.writeShut && s.alive()) {
                std::string f = encodeErrorReply(
                    FrameType::Error,
                    ErrorReply{0, err.kind, err.message});
                writeAllFd(s.fd, f.data(), f.size());
            }
            shutLocked(s);
        }
        s.state.store(SessionState::Poisoned,
                      std::memory_order_release);
    }

    /** Close a session cleanly (BYE handled, EOF, drain teardown). */
    void
    closeSession(Session &s)
    {
        {
            std::lock_guard<std::mutex> g(s.writeMu);
            shutLocked(s);
        }
        if (s.alive())
            s.state.store(SessionState::Closed,
                          std::memory_order_release);
    }

    // ---- session read side (one thread per connection) -------------

    void
    readerLoop(std::shared_ptr<Session> sp)
    {
        Session &s = *sp;
        const Clock::time_point never = Clock::time_point{};
        Clock::time_point frame_started = never;
        char buf[64 * 1024];

        while (s.alive()) {
            pollfd p = {};
            p.fd = s.fd;
            p.events = POLLIN;
            int pr = ::poll(&p, 1, 100);
            if (pr < 0) {
                if (errno == EINTR)
                    continue;
                closeSession(s);
                break;
            }
            if (pr > 0 &&
                (p.revents & (POLLIN | POLLHUP | POLLERR))) {
                long n = readSomeFd(s.fd, buf, sizeof(buf));
                if (n == 0) {
                    closeSession(s);
                    break;
                }
                if (n < 0) {
                    if (errno == EAGAIN || errno == EWOULDBLOCK)
                        continue;
                    closeSession(s);
                    break;
                }
                s.frames.feed(buf, static_cast<std::size_t>(n));
                while (s.alive()) {
                    FrameReader::State fs = s.frames.poll();
                    if (fs == FrameReader::State::Frame) {
                        handleFrame(sp, s.frames.take());
                        continue;
                    }
                    if (fs == FrameReader::State::Broken)
                        poison(s, s.frames.error());
                    break;
                }
            }
            // Slowloris guillotine: a frame must complete within
            // readTimeoutSeconds of its first byte. Completed frames
            // reset the clock; an idle connection (no partial frame)
            // is fine indefinitely.
            if (s.alive()) {
                if (s.frames.pendingBytes() > 0) {
                    if (frame_started == never)
                        frame_started = Clock::now();
                    else if (secondsSince(frame_started) >
                             opt.readTimeoutSeconds)
                        poison(s, makeError(
                            ErrorKind::Timeout,
                            "frame stalled for more than ",
                            opt.readTimeoutSeconds,
                            " s (slowloris?)"));
                } else {
                    frame_started = never;
                }
            }
        }
        s.readerDone.store(true, std::memory_order_release);
    }

    void
    handleFrame(const std::shared_ptr<Session> &sp, Frame f)
    {
        Session &s = *sp;
        switch (s.state.load(std::memory_order_acquire)) {
          case SessionState::AwaitHello:
            if (f.type == FrameType::Bye) {
                closeSession(s);
                return;
            }
            if (f.type != FrameType::Hello) {
                poison(s, makeError(ErrorKind::Format,
                                    frameTypeName(f.type),
                                    " frame before hello"));
                return;
            }
            handleHello(s, f.payload);
            return;
          case SessionState::Ready:
            if (f.type == FrameType::Bye) {
                closeSession(s);
                return;
            }
            if (f.type == FrameType::Submit) {
                handleSubmit(sp, f.payload);
                return;
            }
            poison(s, makeError(ErrorKind::Format,
                                "unexpected ", frameTypeName(f.type),
                                " frame from a client"));
            return;
          case SessionState::Poisoned:
          case SessionState::Closed:
            return;
        }
    }

    void
    handleHello(Session &s, const std::string &payload)
    {
        Result<HelloRequest> h = decodeHello(payload);
        if (!h) {
            poison(s, h.error());
            return;
        }
        HelloRequest req = h.take();
        bool banned = false;
        {
            std::lock_guard<std::mutex> g(statsMu);
            auto it = poisonCounts.find(req.client);
            banned = it != poisonCounts.end() &&
                     it->second >= opt.quarantineThreshold;
            if (banned)
                ++st.hellosRejected;
        }
        if (banned) {
            sendFrame(s, encodeErrorReply(
                FrameType::Quarantined,
                ErrorReply{0, ErrorKind::Worker,
                           "client '" + req.client +
                               "' is quarantined"}));
            closeSession(s);
            return;
        }
        s.client = req.client;
        s.state.store(SessionState::Ready,
                      std::memory_order_release);
    }

    void
    handleSubmit(const std::shared_ptr<Session> &sp,
                 const std::string &payload)
    {
        Session &s = *sp;
        Result<SubmitRequest> sub = decodeSubmit(payload);
        if (!sub) {
            // A frame whose body does not parse is hostile or
            // corrupt either way -- the stream cannot be trusted.
            poison(s, sub.error());
            return;
        }
        SubmitRequest req = sub.take();
        auto refuse = [&](FrameType t, ErrorKind kind,
                          const std::string &msg) {
            sendFrame(s, encodeErrorReply(
                t, ErrorReply{req.segmentId, kind, msg}));
        };

        // Well-formed but wrong content: reject the segment, keep
        // the session (an honest client with a bad request).
        if (!knownProfileName(req.profileName)) {
            refuse(FrameType::Error, ErrorKind::Bounds,
                   "unknown workload profile '" + req.profileName +
                       "'");
            return;
        }
        WorkloadProfile profile =
            scaled(profileByName(req.profileName), req.scale);
        for (const TraceRecord &r : req.records) {
            if (r.cpu >= profile.numCpus) {
                refuse(FrameType::Error, ErrorKind::Bounds,
                       "record cpu out of range for profile");
                return;
            }
        }

        // Admission control, under the queue lock so a drain or a
        // full queue cannot race past the bound.
        {
            std::unique_lock<std::mutex> lk(qMu);
            if (draining) {
                lk.unlock();
                refuse(FrameType::Draining, ErrorKind::Cancelled,
                       "server is draining; no new segments");
                bumpStat(&ServiceStats::segmentsDrained);
                return;
            }
            if (s.inflight.load(std::memory_order_relaxed) >=
                opt.perClientCap) {
                lk.unlock();
                refuse(FrameType::Shed, ErrorKind::Bounds,
                       "per-client in-flight cap reached; resubmit "
                       "later");
                bumpStat(&ServiceStats::segmentsShed);
                return;
            }
            if (queue.size() >= opt.queueCap) {
                lk.unlock();
                refuse(FrameType::Shed, ErrorKind::Bounds,
                       "server admission queue full; resubmit later");
                bumpStat(&ServiceStats::segmentsShed);
                return;
            }
            s.inflight.fetch_add(1, std::memory_order_relaxed);
            queue.push_back(
                Work{sp, std::move(req), std::move(profile)});
        }
        qCv.notify_one();
    }

    // ---- workers ---------------------------------------------------

    void
    workerLoop()
    {
        for (;;) {
            Work w;
            {
                std::unique_lock<std::mutex> lk(qMu);
                qCv.wait(lk, [&] {
                    return !queue.empty() || draining;
                });
                if (queue.empty())
                    return; // draining and nothing left
                w = std::move(queue.front());
                queue.pop_front();
            }
            runSegment(w);
            w.session->inflight.fetch_sub(
                1, std::memory_order_relaxed);
        }
    }

    void
    runSegment(Work &w)
    {
        Session &s = *w.session;
        const SubmitRequest &req = w.submit;

        SimSummary summary;
        bool ok = false, timed_out = false, abandoned = false;
        ErrorKind fail_kind = ErrorKind::Worker;
        std::string fail_msg;

        for (unsigned attempt = 0;; ++attempt) {
            if (!s.alive() ||
                s.state.load(std::memory_order_acquire) !=
                    SessionState::Ready) {
                abandoned = true;
                break;
            }
            try {
                CancelToken token;
                maybeInjectCellFault(
                    static_cast<std::size_t>(req.segmentId), attempt,
                    token);
                std::unique_ptr<MpSimulator> sim =
                    pool.acquire(w.profile, req.job);
                Clock::time_point start = Clock::now();
                const TraceRecord *p = req.records.data();
                std::size_t left = req.records.size();
                while (left > 0) {
                    std::size_t chunk =
                        std::min<std::size_t>(left, 8192);
                    sim->runBatch(p, chunk);
                    p += chunk;
                    left -= chunk;
                    if (opt.segmentDeadline > 0.0 &&
                        secondsSince(start) > opt.segmentDeadline)
                        throw ErrorException(makeError(
                            ErrorKind::Timeout,
                            "segment deadline of ",
                            opt.segmentDeadline, " s exceeded"));
                    if (!s.alive())
                        throw ErrorException(makeError(
                            ErrorKind::Cancelled,
                            "client went away mid-segment"));
                }
                summary = summarizeSimulation(*sim, req.job);
                sim.reset(); // dirty: never reuse
                pool.restock(w.profile, req.job);
                ok = true;
            } catch (const FaultUnrecoverable &e) {
                // A simulated machine check is deterministic for the
                // segment; retrying replays the same strike.
                fail_kind = ErrorKind::Unrecoverable;
                fail_msg = e.err().message;
                break;
            } catch (const ErrorException &e) {
                fail_kind = e.err().kind;
                fail_msg = e.err().message;
                if (fail_kind == ErrorKind::Cancelled) {
                    abandoned = true;
                    break;
                }
                if (fail_kind == ErrorKind::Timeout) {
                    timed_out = true;
                    break;
                }
                if (attempt >= opt.maxRetries)
                    break;
                continue;
            } catch (const std::exception &e) {
                fail_kind = ErrorKind::Worker;
                fail_msg = e.what();
                if (attempt >= opt.maxRetries)
                    break;
                continue;
            }
            break;
        }

        if (ok) {
            // Index 0 keeps the line byte-comparable with batch
            // vrc-sim --summary output; the frame carries the id.
            ResultReply r{req.segmentId,
                          encodeSummaryLine(0, summary)};
            ServeFault fault = maybeInjectServeFault(
                s.id,
                s.txSeq.fetch_add(1, std::memory_order_relaxed) + 1);
            sendFrame(s, encodeResult(r), fault);
            bumpStat(&ServiceStats::segmentsCompleted);
            return;
        }
        if (abandoned) {
            bumpStat(&ServiceStats::segmentsAbandoned);
            return;
        }
        sendFrame(s, encodeErrorReply(
            FrameType::Error,
            ErrorReply{req.segmentId, fail_kind, fail_msg}));
        bumpStat(&ServiceStats::segmentsFailed);
        if (timed_out)
            bumpStat(&ServiceStats::segmentsTimedOut);
    }

    // ---- accept / drain --------------------------------------------

    void
    acceptLoop()
    {
        for (;;) {
            pollfd fds[4];
            nfds_t n = 0;
            auto add = [&](int fd) {
                if (fd >= 0) {
                    fds[n].fd = fd;
                    fds[n].events = POLLIN;
                    fds[n].revents = 0;
                    ++n;
                }
            };
            add(drainPipe[0]);
            add(signalWakeFd);
            int unix_at = unixFd >= 0 ? static_cast<int>(n) : -1;
            add(unixFd);
            int tcp_at = tcpFd >= 0 ? static_cast<int>(n) : -1;
            add(tcpFd);

            int pr = ::poll(fds, n, 200);
            if (pr < 0 && errno != EINTR)
                break;
            if (shutdownRequested() > 0 || drainFlagged())
                break;
            if (pr > 0) {
                if (unix_at >= 0 && (fds[unix_at].revents & POLLIN))
                    acceptOne(unixFd);
                if (tcp_at >= 0 && (fds[tcp_at].revents & POLLIN))
                    acceptOne(tcpFd);
            }
            reapDeadSessions();
        }
        beginDrain();
    }

    bool
    drainFlagged()
    {
        std::lock_guard<std::mutex> g(qMu);
        return draining;
    }

    void
    acceptOne(int listener)
    {
        int fd = acceptRetryFd(listener);
        if (fd < 0)
            return;
        auto s = std::make_shared<Session>();
        s->fd = fd;
        s->frames = FrameReader(opt.maxFrameBytes);
        {
            std::lock_guard<std::mutex> g(sessMu);
            s->id = nextSessionId++;
            sessions.push_back(s);
        }
        bumpStat(&ServiceStats::sessionsAccepted);
        s->reader = std::thread([this, s] { readerLoop(s); });
    }

    /**
     * Join and forget sessions whose reader has exited and whose
     * segments have all completed: a long-running server must not
     * grow a thread/fd per client that ever connected.
     */
    void
    reapDeadSessions()
    {
        std::vector<std::shared_ptr<Session>> dead;
        {
            std::lock_guard<std::mutex> g(sessMu);
            for (auto it = sessions.begin();
                 it != sessions.end();) {
                Session &s = **it;
                if (!s.alive() &&
                    s.readerDone.load(std::memory_order_acquire) &&
                    s.inflight.load(std::memory_order_relaxed) ==
                        0) {
                    dead.push_back(std::move(*it));
                    it = sessions.erase(it);
                } else {
                    ++it;
                }
            }
        }
        for (auto &s : dead) {
            if (s->reader.joinable())
                s->reader.join();
            ::close(s->fd);
            s->fd = -1;
            std::lock_guard<std::mutex> g(statsMu);
            ++sessionsReaped;
        }
    }

    void
    beginDrain()
    {
        {
            std::lock_guard<std::mutex> g(qMu);
            draining = true;
        }
        qCv.notify_all();
        if (unixFd >= 0) {
            ::close(unixFd);
            unixFd = -1;
            ::unlink(opt.unixPath.c_str());
        }
        if (tcpFd >= 0) {
            ::close(tcpFd);
            tcpFd = -1;
        }
    }
};

ServeServer::ServeServer(ServeOptions opt)
    : _impl(std::make_unique<Impl>())
{
    _impl->opt = std::move(opt);
}

ServeServer::~ServeServer()
{
    if (_impl->started.load()) {
        requestDrain();
        waitUntilDrained();
    }
    if (_impl->drainPipe[0] >= 0)
        ::close(_impl->drainPipe[0]);
    if (_impl->drainPipe[1] >= 0)
        ::close(_impl->drainPipe[1]);
}

Status
ServeServer::start()
{
    Impl &im = *_impl;
    if (im.started.load())
        return makeError(ErrorKind::Io, "server already started");
    if (::pipe(im.drainPipe) != 0)
        return makeError(ErrorKind::Io, "pipe: ",
                         std::strerror(errno));
    im.signalWakeFd = installShutdownHandlers();
    Status bound = im.bindListeners();
    if (!bound)
        return bound;
    unsigned workers = im.opt.workers ? im.opt.workers : 2;
    for (unsigned i = 0; i < workers; ++i)
        im.workers.emplace_back([&im] { im.workerLoop(); });
    im.acceptThread = std::thread([&im] { im.acceptLoop(); });
    im.started.store(true);
    return okStatus();
}

int
ServeServer::waitUntilDrained()
{
    Impl &im = *_impl;
    if (!im.started.load())
        return 2;
    if (im.acceptThread.joinable())
        im.acceptThread.join();
    // Workers exit once the queue is empty under drain; everything
    // admitted before the drain completes first.
    im.qCv.notify_all();
    for (std::thread &w : im.workers)
        if (w.joinable())
            w.join();
    im.workers.clear();

    // Say goodbye, cut the sockets, and join every reader.
    std::vector<std::shared_ptr<Session>> all;
    {
        std::lock_guard<std::mutex> g(im.sessMu);
        all = im.sessions;
        im.sessions.clear();
    }
    std::string bye = encodeBye();
    for (auto &s : all) {
        im.sendFrame(*s, bye);
        im.closeSession(*s);
    }
    for (auto &s : all) {
        if (s->reader.joinable())
            s->reader.join();
        if (s->fd >= 0) {
            ::close(s->fd);
            s->fd = -1;
        }
    }
    im.started.store(false);

    int sig = shutdownSignal();
    if (!im.opt.manifest.empty()) {
        Status wrote = writeFileAtomic(
            im.opt.manifest,
            manifestJson(true, sig) + "\n");
        if (!wrote)
            warn("serve: ", wrote.error().describe());
    }
    return shutdownRequested() > 0 ? kExitInterrupted : 0;
}

void
ServeServer::requestDrain()
{
    Impl &im = *_impl;
    {
        std::lock_guard<std::mutex> g(im.qMu);
        im.draining = true;
    }
    im.qCv.notify_all();
    if (im.drainPipe[1] >= 0) {
        // Best-effort wake, but don't let a signal eat it: a dropped
        // byte would stall the drain until the next poll timeout.
        char b = 1;
        ssize_t r;
        do {
            r = ::write(im.drainPipe[1], &b, 1);
        } while (r < 0 && errno == EINTR);
    }
}

int
ServeServer::tcpPort() const
{
    return _impl->boundTcpPort;
}

ServiceStats
ServeServer::stats() const
{
    Impl &im = *_impl;
    std::lock_guard<std::mutex> g(im.statsMu);
    ServiceStats s = im.st;
    s.poolHits = im.pool.hits();
    s.poolMisses = im.pool.misses();
    return s;
}

std::string
ServeServer::manifestJson(bool drained, int signal) const
{
    Impl &im = *_impl;
    std::size_t open_sessions;
    {
        std::lock_guard<std::mutex> g(im.sessMu);
        open_sessions = im.sessions.size();
    }
    ServiceStats s = stats();
    std::uint64_t reaped;
    {
        std::lock_guard<std::mutex> g(im.statsMu);
        reaped = im.sessionsReaped;
    }
    std::ostringstream os;
    os << "{\"service\":\"vrc-sim --serve\",\"drained\":"
       << (drained ? "true" : "false")
       << ",\"interrupted_signal\":" << signal << ",\"sessions\":{"
       << "\"accepted\":" << s.sessionsAccepted
       << ",\"poisoned\":" << s.sessionsPoisoned
       << ",\"hellos_rejected\":" << s.hellosRejected
       << ",\"reaped\":" << reaped
       << ",\"open_at_drain\":" << open_sessions
       << "},\"segments\":{"
       << "\"completed\":" << s.segmentsCompleted
       << ",\"failed\":" << s.segmentsFailed
       << ",\"shed\":" << s.segmentsShed
       << ",\"drained\":" << s.segmentsDrained
       << ",\"timed_out\":" << s.segmentsTimedOut
       << ",\"abandoned\":" << s.segmentsAbandoned
       << "},\"faults\":{"
       << "\"responses_dropped\":" << s.responsesDropped
       << ",\"responses_torn\":" << s.responsesTorn
       << "},\"pool\":{\"hits\":" << s.poolHits
       << ",\"misses\":" << s.poolMisses
       << "},\"quarantined_clients\":[";
    for (std::size_t i = 0; i < s.quarantinedClients.size(); ++i)
        os << (i ? "," : "") << '"'
           << jsonEscapeName(s.quarantinedClients[i]) << '"';
    os << "]}";
    return os.str();
}

} // namespace vrc
