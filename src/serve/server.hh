/**
 * @file
 * Long-running multi-tenant simulation service (vrc-sim --serve).
 *
 * Many concurrent clients stream trace segments over the framed wire
 * protocol (wire.hh) on a unix socket and/or localhost TCP; the
 * server multiplexes them onto a pool of worker threads drawing
 * warmed simulators from a SimulatorPool, and streams back each
 * segment's stats as the campaign journal's hexfloat summary line --
 * bit-identical to running the same segment through batch vrc-sim.
 *
 * Robustness is the design center, reusing the batch campaign's
 * failure machinery in a serving shape:
 *
 *  - Per-session state machine with validating frame decode: a
 *    malformed frame (bad magic, oversized payload, garbage body)
 *    poisons only that session -- the socket is closed, the offense
 *    is counted, and every other client keeps streaming.
 *  - Bounded admission: a per-client in-flight cap and a global
 *    queue cap; work beyond either bound is refused with an explicit
 *    SHED frame (backpressure the client can see), never queued
 *    without limit.
 *  - Per-segment deadlines: replay runs in cancellable chunks and a
 *    segment that exceeds the deadline is cut off with a Timeout
 *    error, exactly like a campaign cell hitting its watchdog.
 *  - Bounded retry + quarantine: transient failures (including
 *    injected ones) are retried like campaign cells; clients whose
 *    sessions keep getting poisoned are quarantined by name and
 *    refused at HELLO.
 *  - Graceful drain: the first SIGINT/SIGTERM (or requestDrain())
 *    stops accepting connections and admitting segments, finishes
 *    everything in flight, flushes the service manifest atomically,
 *    and exits with the documented interrupted code; the second
 *    signal hard-exits.
 *  - Deterministic fault injection on the service path itself
 *    (--inject-faults drop=/tear=): responses are dropped or torn on
 *    a pure (seed, session, sequence) hash so the soak script can
 *    prove clients survive a flaky server.
 */

#ifndef VRC_SERVE_SERVER_HH
#define VRC_SERVE_SERVER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/error.hh"

namespace vrc
{

/** Service configuration. */
struct ServeOptions
{
    /** Unix-domain listening socket path; empty = no unix listener. */
    std::string unixPath;

    /**
     * Localhost TCP port; -1 = no TCP listener, 0 = kernel-assigned
     * (query the bound port with ServeServer::tcpPort()).
     */
    int tcpPort = -1;

    /** Worker threads running segments. */
    unsigned workers = 2;

    /** Global admission queue bound (segments queued, not running). */
    std::size_t queueCap = 64;

    /** Per-session in-flight segment bound. */
    std::size_t perClientCap = 4;

    /** Per-segment wall-clock deadline in seconds; 0 = none. */
    double segmentDeadline = 0.0;

    /** Retries after a failed segment attempt (not timeouts). */
    unsigned maxRetries = 0;

    /**
     * Slowloris guillotine: a frame that has not completed this many
     * seconds after its first byte arrived kills the session.
     */
    double readTimeoutSeconds = 10.0;

    /** Largest accepted frame payload. */
    std::size_t maxFrameBytes = 64u << 20;

    /** Poisoned sessions per client name before HELLO is refused. */
    unsigned quarantineThreshold = 3;

    /** Service manifest path (written atomically on drain). */
    std::string manifest;
};

/** Per-session protocol state (the session state machine). */
enum class SessionState : std::uint8_t
{
    AwaitHello, ///< connected, nothing valid received yet
    Ready,      ///< HELLO accepted; SUBMIT frames welcome
    Poisoned,   ///< protocol violation; socket closed, offense counted
    Closed,     ///< clean close (BYE, EOF, drain)
};

/** Printable session-state name. */
const char *sessionStateName(SessionState s);

/** Counters for the service manifest and the soak checks. */
struct ServiceStats
{
    std::uint64_t sessionsAccepted = 0;
    std::uint64_t sessionsPoisoned = 0;
    std::uint64_t hellosRejected = 0; ///< quarantined clients refused
    std::uint64_t segmentsCompleted = 0;
    std::uint64_t segmentsFailed = 0; ///< exhausted retries / fatal
    std::uint64_t segmentsShed = 0;
    std::uint64_t segmentsDrained = 0; ///< refused while draining
    std::uint64_t segmentsTimedOut = 0;
    std::uint64_t segmentsAbandoned = 0; ///< client gone mid-segment
    std::uint64_t responsesDropped = 0;  ///< injected connection drops
    std::uint64_t responsesTorn = 0;     ///< injected torn frames
    std::uint64_t poolHits = 0;
    std::uint64_t poolMisses = 0;
    std::vector<std::string> quarantinedClients;
};

/** The service. Construct, start(), then waitUntilDrained(). */
class ServeServer
{
  public:
    explicit ServeServer(ServeOptions opt);
    ~ServeServer();

    ServeServer(const ServeServer &) = delete;
    ServeServer &operator=(const ServeServer &) = delete;

    /** Bind the listeners and spawn the accept/worker threads. */
    Status start();

    /**
     * Block until a drain completes (signal or requestDrain()), then
     * tear everything down, write the manifest, and return the
     * process exit code: kExitInterrupted after a signal, 0 after a
     * programmatic drain.
     */
    int waitUntilDrained();

    /** Begin a graceful drain (idempotent, callable from any thread). */
    void requestDrain();

    /** The bound TCP port (after start(); -1 when no TCP listener). */
    int tcpPort() const;

    /** Snapshot of the service counters. */
    ServiceStats stats() const;

    /** The service manifest as JSON (what drain writes). */
    std::string manifestJson(bool drained, int signal) const;

  private:
    struct Impl;
    std::unique_ptr<Impl> _impl;
};

} // namespace vrc

#endif // VRC_SERVE_SERVER_HH
