#include "serve/client.hh"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace vrc
{

namespace
{

using Clock = std::chrono::steady_clock;

} // namespace

ServeClient::~ServeClient()
{
    close();
}

Status
ServeClient::connectUnix(const std::string &path)
{
    close();
    sockaddr_un sa = {};
    if (path.size() >= sizeof(sa.sun_path))
        return makeError(ErrorKind::Bounds,
                         "unix socket path too long: ", path);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return makeError(ErrorKind::Io, "socket(AF_UNIX): ",
                         std::strerror(errno));
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, path.c_str(), sizeof(sa.sun_path) - 1);
    Status connected = connectRetryFd(fd, &sa, sizeof(sa));
    if (!connected) {
        ::close(fd);
        return makeError(ErrorKind::Io, "connect(", path, "): ",
                         connected.error().message);
    }
    _fd = fd;
    _frames = FrameReader();
    return okStatus();
}

Status
ServeClient::connectTcp(int port)
{
    close();
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return makeError(ErrorKind::Io, "socket(AF_INET): ",
                         std::strerror(errno));
    sockaddr_in sa = {};
    sa.sin_family = AF_INET;
    sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    sa.sin_port = htons(static_cast<std::uint16_t>(port));
    Status connected = connectRetryFd(fd, &sa, sizeof(sa));
    if (!connected) {
        ::close(fd);
        return makeError(ErrorKind::Io, "connect(127.0.0.1:", port,
                         "): ", connected.error().message);
    }
    _fd = fd;
    _frames = FrameReader();
    return okStatus();
}

Status
ServeClient::send(const std::string &bytes)
{
    if (_fd < 0)
        return makeError(ErrorKind::Io, "send on a closed client");
    if (!writeAllFd(_fd, bytes.data(), bytes.size()))
        return makeError(ErrorKind::Io, "write: ",
                         std::strerror(errno));
    return okStatus();
}

Status
ServeClient::hello(const std::string &client)
{
    return send(encodeHello(HelloRequest{wireVersion, client}));
}

Status
ServeClient::submit(const SubmitRequest &req)
{
    return send(encodeSubmit(req));
}

Result<Frame>
ServeClient::readFrame(double timeoutSeconds)
{
    if (_fd < 0)
        return makeError(ErrorKind::Io, "read on a closed client");
    Clock::time_point start = Clock::now();
    char buf[64 * 1024];
    for (;;) {
        FrameReader::State st = _frames.poll();
        if (st == FrameReader::State::Frame)
            return _frames.take();
        if (st == FrameReader::State::Broken)
            return _frames.error();

        double elapsed =
            std::chrono::duration<double>(Clock::now() - start)
                .count();
        double left = timeoutSeconds - elapsed;
        if (left <= 0.0)
            return makeError(ErrorKind::Timeout,
                             "no frame within ", timeoutSeconds,
                             " s");
        pollfd p = {};
        p.fd = _fd;
        p.events = POLLIN;
        int pr = ::poll(&p, 1,
                        static_cast<int>(left * 1000.0) + 1);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            return makeError(ErrorKind::Io, "poll: ",
                             std::strerror(errno));
        }
        if (pr == 0)
            continue; // loop re-checks the deadline
        long n = readSomeFd(_fd, buf, sizeof(buf));
        if (n == 0)
            return makeError(ErrorKind::Io,
                             "server closed the connection");
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                continue;
            return makeError(ErrorKind::Io, "read: ",
                             std::strerror(errno));
        }
        _frames.feed(buf, static_cast<std::size_t>(n));
    }
}

void
ServeClient::closeWrite()
{
    if (_fd >= 0)
        ::shutdown(_fd, SHUT_WR);
}

void
ServeClient::close()
{
    if (_fd >= 0) {
        ::close(_fd);
        _fd = -1;
    }
}

} // namespace vrc
