/**
 * @file
 * Client side of the simulation service wire protocol.
 *
 * A thin blocking client used by vrc-loadgen and the serve tests:
 * connect over a unix socket or localhost TCP, say HELLO, SUBMIT
 * segments, and read framed replies with a timeout. Raw send() is
 * exposed on purpose -- the chaos clients need to write garbage and
 * half-frames to prove the server survives them.
 */

#ifndef VRC_SERVE_CLIENT_HH
#define VRC_SERVE_CLIENT_HH

#include <string>

#include "base/error.hh"
#include "serve/wire.hh"

namespace vrc
{

/** Blocking wire-protocol client. */
class ServeClient
{
  public:
    ServeClient() = default;
    ~ServeClient();

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /** Connect to a unix-domain socket. */
    Status connectUnix(const std::string &path);

    /** Connect to 127.0.0.1:@p port. */
    Status connectTcp(int port);

    /** True between a successful connect and close()/peer EOF. */
    bool connected() const { return _fd >= 0; }

    /** Raw socket fd (chaos clients poke it directly). */
    int fd() const { return _fd; }

    /** Send raw bytes verbatim (also how garbage gets sent). */
    Status send(const std::string &bytes);

    /** Send a HELLO frame. */
    Status hello(const std::string &client);

    /** Send a SUBMIT frame. */
    Status submit(const SubmitRequest &req);

    /**
     * Read the next frame, waiting up to @p timeoutSeconds. Timeout,
     * peer EOF and a broken frame stream all come back as errors
     * (Timeout / Io / the reader's own taxonomy).
     */
    Result<Frame> readFrame(double timeoutSeconds);

    /** Shut down the write side only (tells the server we are done). */
    void closeWrite();

    /** Close the socket. */
    void close();

  private:
    int _fd = -1;
    FrameReader _frames;
};

} // namespace vrc

#endif // VRC_SERVE_CLIENT_HH
