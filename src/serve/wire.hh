/**
 * @file
 * Framed wire protocol for the simulation service (vrc-sim --serve).
 *
 * Everything on the socket is a length-prefixed frame:
 *
 *     u32 magic 'VRCW' | u8 type | u32 payloadLen | payload bytes
 *
 * (little-endian, 9-byte header). The protocol is deliberately dumb:
 * no compression, no pipident negotiation beyond a version number in
 * HELLO, and the stats payload is the campaign journal's hexfloat
 * summary line verbatim -- the same wire-stable encoding the
 * checkpoint/resume machinery already proves bit-identical to batch
 * mode.
 *
 * Every decoder here is a validating `try*` in the base/error.hh
 * sense: bad magic, an unknown frame type, an oversized length, or a
 * payload that does not parse all come back as a Result carrying the
 * failure taxonomy, never as UB or a dead server. A malformed frame
 * poisons *its session*; the framing layer itself has no global
 * state.
 *
 * SUBMIT payloads embed the standard binary trace container (trace_io
 * magic + version + count + packed records), so a client can stream a
 * .vrct file's bytes unchanged and the server revalidates them with
 * the same tryReadTraceBinary() the batch loader uses.
 */

#ifndef VRC_SERVE_WIRE_HH
#define VRC_SERVE_WIRE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/error.hh"
#include "sim/experiment.hh"
#include "trace/record.hh"

namespace vrc
{

/** Frame magic: "VRCW" little-endian. */
inline constexpr std::uint32_t wireMagic = 0x57435256;

/** Protocol version carried in HELLO. */
inline constexpr std::uint32_t wireVersion = 1;

/** Wire frame header size in bytes. */
inline constexpr std::size_t wireHeaderBytes = 9;

/** Default cap on one frame's payload (a segment of trace records). */
inline constexpr std::size_t wireMaxPayloadDefault = 64u << 20;

/** Frame types. */
enum class FrameType : std::uint8_t
{
    Hello = 1,       ///< client -> server: version + client name
    Submit = 2,      ///< client -> server: one trace segment to run
    Result = 3,      ///< server -> client: hexfloat summary line
    Error = 4,       ///< server -> client: taxonomy kind + message
    Shed = 5,        ///< server -> client: admission refused (backpressure)
    Draining = 6,    ///< server -> client: shutting down, no new work
    Quarantined = 7, ///< server -> client: this client is banned
    Bye = 8,         ///< either direction: clean close

    // Distributed sweep sharding (vrc-sim --coordinate / --shard-worker).
    ShardAssign = 9, ///< coordinator -> worker: a range of sweep cells
    CellResult = 10, ///< worker -> coordinator: one cell's journal line
    ShardDone = 11,  ///< worker -> coordinator: shard finished (+failures)
    Heartbeat = 12,  ///< worker -> coordinator: liveness + progress
};

/** Printable frame-type name (diagnostics). */
const char *frameTypeName(FrameType t);

/** One decoded frame: type + raw payload. */
struct Frame
{
    FrameType type = FrameType::Bye;
    std::string payload;
};

/** HELLO payload: protocol version + client name. */
struct HelloRequest
{
    std::uint32_t version = wireVersion;
    std::string client; ///< stable client identity (quarantine key)
};

/** SUBMIT payload: which machine, which workload, which records. */
struct SubmitRequest
{
    std::uint64_t segmentId = 0; ///< client-chosen, echoed in replies
    SimJob job;                  ///< organization / sizes / timing
    std::string profileName;     ///< pops | thor | abaqus
    double scale = 1.0;          ///< profile scale (exact double bits)
    std::vector<TraceRecord> records;
};

/** RESULT payload: segment id + the exact summary line. */
struct ResultReply
{
    std::uint64_t segmentId = 0;
    std::string summaryLine; ///< encodeSummaryLine(segmentId, summary)
};

/** ERROR / SHED / DRAINING / QUARANTINED payload. */
struct ErrorReply
{
    std::uint64_t segmentId = 0; ///< 0 = session-level
    ErrorKind kind = ErrorKind::Worker;
    std::string message;
};

/** One sweep cell inside a SHARD_ASSIGN frame. */
struct ShardCell
{
    std::uint32_t index = 0;   ///< cell index in the campaign grid
    std::uint32_t attempt = 0; ///< dispatch count (fault-injection key)
    SimJob job;                ///< organization / sizes / timing
};

/**
 * SHARD_ASSIGN payload: a batch of cells for one worker. The trace is
 * NOT on the wire -- workers regenerate it deterministically from the
 * profile name + scale, exactly like batch mode, so an assignment is a
 * few hundred bytes regardless of trace size.
 */
struct ShardAssignment
{
    std::uint64_t assignId = 0;  ///< coordinator-chosen, echoed back
    std::string campaignKey;     ///< campaignKey(bundle, jobs) hex
    std::string profileName;     ///< pops | thor | abaqus
    double scale = 1.0;          ///< profile scale (exact double bits)
    std::vector<ShardCell> cells;
};

/** CELL_RESULT payload: one cell's verbatim journal line. */
struct CellResultReply
{
    std::uint64_t assignId = 0;
    std::uint32_t index = 0; ///< must match the line's own index
    std::string summaryLine; ///< encodeSummaryLine(index, summary)
};

/** One failed cell inside a SHARD_DONE frame. */
struct ShardFailureInfo
{
    std::uint32_t index = 0;
    ErrorKind kind = ErrorKind::Worker;
    std::string message;
};

/** SHARD_DONE payload: the shard's outcome ledger. */
struct ShardDoneReply
{
    std::uint64_t assignId = 0;
    std::uint32_t completed = 0; ///< cells whose CELL_RESULT was sent
    std::vector<ShardFailureInfo> failures;
};

/** HEARTBEAT payload: the worker is alive and making progress. */
struct HeartbeatMsg
{
    std::uint64_t assignId = 0;
    std::uint32_t cellsDone = 0;
};

// ---- encoding -------------------------------------------------------

/** Wrap @p payload in a frame header. */
std::string encodeFrame(FrameType type, const std::string &payload);

std::string encodeHello(const HelloRequest &h);
std::string encodeSubmit(const SubmitRequest &s);
std::string encodeResult(const ResultReply &r);

/** ERROR, SHED, DRAINING and QUARANTINED share one payload shape. */
std::string encodeErrorReply(FrameType type, const ErrorReply &e);

/** A BYE frame (empty payload). */
std::string encodeBye();

std::string encodeShardAssign(const ShardAssignment &a);
std::string encodeCellResult(const CellResultReply &r);
std::string encodeShardDone(const ShardDoneReply &d);
std::string encodeHeartbeat(const HeartbeatMsg &h);

// ---- decoding -------------------------------------------------------

Result<HelloRequest> decodeHello(const std::string &payload);
Result<SubmitRequest> decodeSubmit(const std::string &payload);
Result<ResultReply> decodeResult(const std::string &payload);
Result<ErrorReply> decodeErrorReply(const std::string &payload);
Result<ShardAssignment> decodeShardAssign(const std::string &payload);
Result<CellResultReply> decodeCellResult(const std::string &payload);
Result<ShardDoneReply> decodeShardDone(const std::string &payload);
Result<HeartbeatMsg> decodeHeartbeat(const std::string &payload);

// ---- EINTR / short-write safe fd helpers ----------------------------
//
// Every blocking socket syscall in the serve and shard layers goes
// through these: a signal landing mid-call (SIGUSR1 from a profiler,
// SIGCHLD from a supervisor, the drain SIGTERM itself when the handler
// is installed without SA_RESTART) must retry the call, not tear a
// frame in half or poison the session.

/** write() all @p n bytes, retrying EINTR and short writes. */
bool writeAllFd(int fd, const char *data, std::size_t n);

/**
 * One read() of up to @p n bytes, retrying EINTR. Returns the byte
 * count, 0 at EOF, or -1 with errno set (EAGAIN passes through so
 * poll()-driven loops keep their semantics).
 */
long readSomeFd(int fd, char *data, std::size_t n);

/** accept() retrying EINTR. Returns the fd or -1 with errno set. */
int acceptRetryFd(int listenFd);

/**
 * connect() retrying EINTR. POSIX says an interrupted connect keeps
 * establishing in the background, so the retry waits for writability
 * and reads SO_ERROR instead of calling connect() again (which would
 * fail with EALREADY).
 */
Status connectRetryFd(int fd, const void *sockaddrPtr,
                      unsigned sockaddrLen);

/**
 * Incremental frame scanner: feed() bytes as they arrive, next() pops
 * complete frames. A header failing validation (bad magic, unknown
 * type, payload above @p maxPayload) is a sticky Parse/Bounds error:
 * once the stream is off the rails there is no way to resynchronize,
 * so the session must be poisoned.
 */
class FrameReader
{
  public:
    explicit FrameReader(std::size_t maxPayload = wireMaxPayloadDefault)
        : _maxPayload(maxPayload)
    {
    }

    /** Append raw bytes from the socket. */
    void feed(const char *data, std::size_t n);

    /**
     * Pop the next complete frame. Ok+frame when one is ready; Ok with
     * std::nullopt-like empty optional is expressed as ok(false): use
     * hasFrame()/take pattern instead -- see below.
     */
    enum class State
    {
        NeedMore, ///< no complete frame buffered yet
        Frame,    ///< take() returns the next frame
        Broken,   ///< validation failed; error() explains
    };

    /** Scan the buffer; never blocks. */
    State poll();

    /** The frame after poll() == Frame. */
    Frame take();

    /** The validation failure after poll() == Broken. */
    const Error &error() const { return _error; }

    /** Bytes buffered but not yet consumed (diagnostics). */
    std::size_t pendingBytes() const { return _buf.size() - _pos; }

  private:
    std::size_t _maxPayload;
    std::string _buf;
    std::size_t _pos = 0;
    bool _broken = false;
    Error _error;
};

} // namespace vrc

#endif // VRC_SERVE_WIRE_HH
