#include "serve/wire.hh"

#include <cerrno>
#include <cstring>
#include <sstream>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "trace/trace_io.hh"

namespace vrc
{

namespace
{

void
putU8(std::string &out, std::uint8_t v)
{
    out.push_back(static_cast<char>(v));
}

void
putU16(std::string &out, std::uint16_t v)
{
    for (int i = 0; i < 2; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void
putU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void
putU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

/** Bounds-checked little-endian cursor over a payload. */
class Cursor
{
  public:
    explicit Cursor(const std::string &buf) : _buf(buf) {}

    bool
    u8(std::uint8_t &v)
    {
        if (_pos + 1 > _buf.size())
            return false;
        v = static_cast<std::uint8_t>(_buf[_pos++]);
        return true;
    }

    bool
    u16(std::uint16_t &v)
    {
        if (_pos + 2 > _buf.size())
            return false;
        v = 0;
        for (int i = 0; i < 2; ++i)
            v |= static_cast<std::uint16_t>(
                     static_cast<unsigned char>(_buf[_pos + i]))
                 << (8 * i);
        _pos += 2;
        return true;
    }

    bool
    u32(std::uint32_t &v)
    {
        if (_pos + 4 > _buf.size())
            return false;
        v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(_buf[_pos + i]))
                 << (8 * i);
        _pos += 4;
        return true;
    }

    bool
    u64(std::uint64_t &v)
    {
        if (_pos + 8 > _buf.size())
            return false;
        v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(_buf[_pos + i]))
                 << (8 * i);
        _pos += 8;
        return true;
    }

    bool
    bytes(std::size_t n, std::string &out)
    {
        if (_pos + n > _buf.size())
            return false;
        out.assign(_buf, _pos, n);
        _pos += n;
        return true;
    }

    /** Everything left, as a string. */
    std::string
    rest()
    {
        std::string out = _buf.substr(_pos);
        _pos = _buf.size();
        return out;
    }

    std::size_t remaining() const { return _buf.size() - _pos; }
    std::size_t pos() const { return _pos; }

  private:
    const std::string &_buf;
    std::size_t _pos = 0;
};

/** Sane cap for the client-name string in HELLO. */
constexpr std::size_t maxNameBytes = 256;

/** Sane cap on cells per SHARD_ASSIGN and failures per SHARD_DONE. */
constexpr std::size_t maxShardEntries = 1u << 20;

/** Decode the SimJob fields shared by SUBMIT and SHARD_ASSIGN cells. */
Status
decodeJobFields(std::uint8_t org, std::uint8_t split, std::uint8_t timing,
                SimJob &job)
{
    if (org >= kHierarchyKindCount)
        return makeError(ErrorKind::Bounds,
                         "bad organization code ", unsigned(org));
    if (split > 1)
        return makeError(ErrorKind::Bounds, "bad split flag ",
                         unsigned(split));
    if (timing > 1)
        return makeError(ErrorKind::Bounds, "bad timing mode ",
                         unsigned(timing));
    job.kind = static_cast<HierarchyKind>(org);
    job.split = split != 0;
    job.timingMode = static_cast<TimingMode>(timing);
    return okStatus();
}

} // namespace

const char *
frameTypeName(FrameType t)
{
    switch (t) {
      case FrameType::Hello:
        return "hello";
      case FrameType::Submit:
        return "submit";
      case FrameType::Result:
        return "result";
      case FrameType::Error:
        return "error";
      case FrameType::Shed:
        return "shed";
      case FrameType::Draining:
        return "draining";
      case FrameType::Quarantined:
        return "quarantined";
      case FrameType::Bye:
        return "bye";
      case FrameType::ShardAssign:
        return "shard-assign";
      case FrameType::CellResult:
        return "cell-result";
      case FrameType::ShardDone:
        return "shard-done";
      case FrameType::Heartbeat:
        return "heartbeat";
    }
    return "unknown";
}

std::string
encodeFrame(FrameType type, const std::string &payload)
{
    std::string out;
    out.reserve(wireHeaderBytes + payload.size());
    putU32(out, wireMagic);
    putU8(out, static_cast<std::uint8_t>(type));
    putU32(out, static_cast<std::uint32_t>(payload.size()));
    out += payload;
    return out;
}

std::string
encodeHello(const HelloRequest &h)
{
    std::string p;
    putU32(p, h.version);
    putU16(p, static_cast<std::uint16_t>(h.client.size()));
    p += h.client;
    return encodeFrame(FrameType::Hello, p);
}

std::string
encodeSubmit(const SubmitRequest &s)
{
    std::string p;
    putU64(p, s.segmentId);
    putU8(p, static_cast<std::uint8_t>(s.job.kind));
    putU32(p, s.job.l1Size);
    putU32(p, s.job.l2Size);
    putU8(p, s.job.split ? 1 : 0);
    putU8(p, static_cast<std::uint8_t>(s.job.timingMode));
    std::uint64_t scale_bits;
    static_assert(sizeof(scale_bits) == sizeof(s.scale));
    std::memcpy(&scale_bits, &s.scale, sizeof(scale_bits));
    putU64(p, scale_bits);
    putU16(p, static_cast<std::uint16_t>(s.profileName.size()));
    p += s.profileName;
    std::ostringstream trace;
    writeTraceBinary(trace, s.records);
    p += trace.str();
    return encodeFrame(FrameType::Submit, p);
}

std::string
encodeResult(const ResultReply &r)
{
    std::string p;
    putU64(p, r.segmentId);
    p += r.summaryLine;
    return encodeFrame(FrameType::Result, p);
}

std::string
encodeErrorReply(FrameType type, const ErrorReply &e)
{
    std::string p;
    putU64(p, e.segmentId);
    putU8(p, static_cast<std::uint8_t>(e.kind));
    p += e.message;
    return encodeFrame(type, p);
}

std::string
encodeBye()
{
    return encodeFrame(FrameType::Bye, "");
}

std::string
encodeShardAssign(const ShardAssignment &a)
{
    std::string p;
    putU64(p, a.assignId);
    std::uint64_t scale_bits;
    static_assert(sizeof(scale_bits) == sizeof(a.scale));
    std::memcpy(&scale_bits, &a.scale, sizeof(scale_bits));
    putU64(p, scale_bits);
    putU16(p, static_cast<std::uint16_t>(a.campaignKey.size()));
    p += a.campaignKey;
    putU16(p, static_cast<std::uint16_t>(a.profileName.size()));
    p += a.profileName;
    putU32(p, static_cast<std::uint32_t>(a.cells.size()));
    for (const ShardCell &c : a.cells) {
        putU32(p, c.index);
        putU32(p, c.attempt);
        putU8(p, static_cast<std::uint8_t>(c.job.kind));
        putU32(p, c.job.l1Size);
        putU32(p, c.job.l2Size);
        putU8(p, c.job.split ? 1 : 0);
        putU64(p, c.job.invariantPeriod);
        putU8(p, static_cast<std::uint8_t>(c.job.timingMode));
    }
    return encodeFrame(FrameType::ShardAssign, p);
}

std::string
encodeCellResult(const CellResultReply &r)
{
    std::string p;
    putU64(p, r.assignId);
    putU32(p, r.index);
    p += r.summaryLine;
    return encodeFrame(FrameType::CellResult, p);
}

std::string
encodeShardDone(const ShardDoneReply &d)
{
    std::string p;
    putU64(p, d.assignId);
    putU32(p, d.completed);
    putU32(p, static_cast<std::uint32_t>(d.failures.size()));
    for (const ShardFailureInfo &f : d.failures) {
        putU32(p, f.index);
        putU8(p, static_cast<std::uint8_t>(f.kind));
        putU16(p, static_cast<std::uint16_t>(f.message.size()));
        p += f.message;
    }
    return encodeFrame(FrameType::ShardDone, p);
}

std::string
encodeHeartbeat(const HeartbeatMsg &h)
{
    std::string p;
    putU64(p, h.assignId);
    putU32(p, h.cellsDone);
    return encodeFrame(FrameType::Heartbeat, p);
}

Result<HelloRequest>
decodeHello(const std::string &payload)
{
    Cursor c(payload);
    HelloRequest h;
    std::uint16_t name_len;
    if (!c.u32(h.version) || !c.u16(name_len))
        return makeError(ErrorKind::Parse, "short hello payload");
    if (h.version != wireVersion)
        return makeError(ErrorKind::Format,
                         "unsupported protocol version ", h.version,
                         " (this server speaks ", wireVersion, ")");
    if (name_len > maxNameBytes)
        return makeError(ErrorKind::Bounds, "client name of ",
                         name_len, " bytes exceeds the ",
                         maxNameBytes, "-byte cap");
    if (!c.bytes(name_len, h.client) || c.remaining() != 0)
        return makeError(ErrorKind::Parse,
                         "hello payload length mismatch");
    if (h.client.empty())
        return makeError(ErrorKind::Bounds, "empty client name");
    return h;
}

Result<SubmitRequest>
decodeSubmit(const std::string &payload)
{
    Cursor c(payload);
    SubmitRequest s;
    std::uint8_t org, split, timing;
    std::uint64_t scale_bits;
    std::uint16_t name_len;
    if (!c.u64(s.segmentId) || !c.u8(org) || !c.u32(s.job.l1Size) ||
        !c.u32(s.job.l2Size) || !c.u8(split) || !c.u8(timing) ||
        !c.u64(scale_bits) || !c.u16(name_len))
        return makeError(ErrorKind::Parse, "short submit payload");
    Status job_ok = decodeJobFields(org, split, timing, s.job);
    if (!job_ok)
        return job_ok.error();
    std::memcpy(&s.scale, &scale_bits, sizeof(s.scale));
    if (!(s.scale > 0.0) || s.scale > 1e6)
        return makeError(ErrorKind::Bounds, "bad profile scale");
    if (name_len == 0 || name_len > maxNameBytes)
        return makeError(ErrorKind::Bounds, "bad profile name length ",
                         name_len);
    if (!c.bytes(name_len, s.profileName))
        return makeError(ErrorKind::Parse, "short submit payload");

    // The rest is the standard binary trace container; revalidate it
    // with the same loader batch mode uses (magic, version, count
    // against size, record type bytes).
    std::istringstream trace(payload.substr(c.pos()));
    Result<std::vector<TraceRecord>> records =
        tryReadTraceBinary(trace, "submit segment");
    if (!records)
        return records.error();
    s.records = records.take();
    return s;
}

Result<ResultReply>
decodeResult(const std::string &payload)
{
    Cursor c(payload);
    ResultReply r;
    if (!c.u64(r.segmentId))
        return makeError(ErrorKind::Parse, "short result payload");
    r.summaryLine = c.rest();
    if (r.summaryLine.empty())
        return makeError(ErrorKind::Parse, "empty result summary");
    return r;
}

Result<ErrorReply>
decodeErrorReply(const std::string &payload)
{
    Cursor c(payload);
    ErrorReply e;
    std::uint8_t kind;
    if (!c.u64(e.segmentId) || !c.u8(kind))
        return makeError(ErrorKind::Parse, "short error payload");
    if (kind > static_cast<std::uint8_t>(ErrorKind::Unrecoverable))
        return makeError(ErrorKind::Bounds, "bad error kind ",
                         unsigned(kind));
    e.kind = static_cast<ErrorKind>(kind);
    e.message = c.rest();
    return e;
}

Result<ShardAssignment>
decodeShardAssign(const std::string &payload)
{
    Cursor c(payload);
    ShardAssignment a;
    std::uint64_t scale_bits;
    std::uint16_t key_len, name_len;
    if (!c.u64(a.assignId) || !c.u64(scale_bits) || !c.u16(key_len))
        return makeError(ErrorKind::Parse, "short shard-assign payload");
    if (key_len == 0 || key_len > maxNameBytes)
        return makeError(ErrorKind::Bounds, "bad campaign key length ",
                         key_len);
    if (!c.bytes(key_len, a.campaignKey) || !c.u16(name_len))
        return makeError(ErrorKind::Parse, "short shard-assign payload");
    if (name_len == 0 || name_len > maxNameBytes)
        return makeError(ErrorKind::Bounds, "bad profile name length ",
                         name_len);
    std::uint32_t cell_count;
    if (!c.bytes(name_len, a.profileName) || !c.u32(cell_count))
        return makeError(ErrorKind::Parse, "short shard-assign payload");
    std::memcpy(&a.scale, &scale_bits, sizeof(a.scale));
    if (!(a.scale > 0.0) || a.scale > 1e6)
        return makeError(ErrorKind::Bounds, "bad profile scale");
    if (cell_count == 0 || cell_count > maxShardEntries)
        return makeError(ErrorKind::Bounds, "bad shard cell count ",
                         cell_count);
    a.cells.reserve(cell_count);
    for (std::uint32_t i = 0; i < cell_count; ++i) {
        ShardCell cell;
        std::uint8_t org, split, timing;
        if (!c.u32(cell.index) || !c.u32(cell.attempt) || !c.u8(org) ||
            !c.u32(cell.job.l1Size) || !c.u32(cell.job.l2Size) ||
            !c.u8(split) || !c.u64(cell.job.invariantPeriod) ||
            !c.u8(timing))
            return makeError(ErrorKind::Parse,
                             "short shard-assign payload");
        Status job_ok = decodeJobFields(org, split, timing, cell.job);
        if (!job_ok)
            return job_ok.error();
        a.cells.push_back(std::move(cell));
    }
    if (c.remaining() != 0)
        return makeError(ErrorKind::Parse,
                         "shard-assign payload length mismatch");
    return a;
}

Result<CellResultReply>
decodeCellResult(const std::string &payload)
{
    Cursor c(payload);
    CellResultReply r;
    if (!c.u64(r.assignId) || !c.u32(r.index))
        return makeError(ErrorKind::Parse, "short cell-result payload");
    r.summaryLine = c.rest();
    if (r.summaryLine.empty())
        return makeError(ErrorKind::Parse, "empty cell-result summary");
    return r;
}

Result<ShardDoneReply>
decodeShardDone(const std::string &payload)
{
    Cursor c(payload);
    ShardDoneReply d;
    std::uint32_t failure_count;
    if (!c.u64(d.assignId) || !c.u32(d.completed) ||
        !c.u32(failure_count))
        return makeError(ErrorKind::Parse, "short shard-done payload");
    if (failure_count > maxShardEntries)
        return makeError(ErrorKind::Bounds, "bad shard failure count ",
                         failure_count);
    d.failures.reserve(failure_count);
    for (std::uint32_t i = 0; i < failure_count; ++i) {
        ShardFailureInfo f;
        std::uint8_t kind;
        std::uint16_t msg_len;
        if (!c.u32(f.index) || !c.u8(kind) || !c.u16(msg_len))
            return makeError(ErrorKind::Parse,
                             "short shard-done payload");
        if (kind > static_cast<std::uint8_t>(ErrorKind::Unrecoverable))
            return makeError(ErrorKind::Bounds, "bad error kind ",
                             unsigned(kind));
        f.kind = static_cast<ErrorKind>(kind);
        if (!c.bytes(msg_len, f.message))
            return makeError(ErrorKind::Parse,
                             "short shard-done payload");
        d.failures.push_back(std::move(f));
    }
    if (c.remaining() != 0)
        return makeError(ErrorKind::Parse,
                         "shard-done payload length mismatch");
    return d;
}

Result<HeartbeatMsg>
decodeHeartbeat(const std::string &payload)
{
    Cursor c(payload);
    HeartbeatMsg h;
    if (!c.u64(h.assignId) || !c.u32(h.cellsDone) || c.remaining() != 0)
        return makeError(ErrorKind::Parse, "bad heartbeat payload");
    return h;
}

void
FrameReader::feed(const char *data, std::size_t n)
{
    if (_broken)
        return;
    // Drop consumed prefix before it grows without bound.
    if (_pos > 0 && (_pos >= _buf.size() || _pos > (1u << 16))) {
        _buf.erase(0, _pos);
        _pos = 0;
    }
    _buf.append(data, n);
}

FrameReader::State
FrameReader::poll()
{
    if (_broken)
        return State::Broken;
    if (_buf.size() - _pos < wireHeaderBytes)
        return State::NeedMore;
    const unsigned char *h =
        reinterpret_cast<const unsigned char *>(_buf.data()) + _pos;
    std::uint32_t magic = 0, len = 0;
    for (int i = 0; i < 4; ++i)
        magic |= static_cast<std::uint32_t>(h[i]) << (8 * i);
    std::uint8_t type = h[4];
    for (int i = 0; i < 4; ++i)
        len |= static_cast<std::uint32_t>(h[5 + i]) << (8 * i);
    if (magic != wireMagic) {
        _broken = true;
        _error = makeError(ErrorKind::Parse,
                           "bad frame magic 0x", std::hex, magic);
        return State::Broken;
    }
    if (type < static_cast<std::uint8_t>(FrameType::Hello) ||
        type > static_cast<std::uint8_t>(FrameType::Heartbeat)) {
        _broken = true;
        _error = makeError(ErrorKind::Format, "unknown frame type ",
                           unsigned(type));
        return State::Broken;
    }
    if (len > _maxPayload) {
        _broken = true;
        _error = makeError(ErrorKind::Bounds, "frame payload of ",
                           len, " bytes exceeds the ", _maxPayload,
                           "-byte cap");
        return State::Broken;
    }
    if (_buf.size() - _pos < wireHeaderBytes + len)
        return State::NeedMore;
    return State::Frame;
}

Frame
FrameReader::take()
{
    panicIfNot(poll() == State::Frame,
               "FrameReader::take() without a complete frame");
    const unsigned char *h =
        reinterpret_cast<const unsigned char *>(_buf.data()) + _pos;
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i)
        len |= static_cast<std::uint32_t>(h[5 + i]) << (8 * i);
    Frame f;
    f.type = static_cast<FrameType>(h[4]);
    f.payload = _buf.substr(_pos + wireHeaderBytes, len);
    _pos += wireHeaderBytes + len;
    return f;
}

bool
writeAllFd(int fd, const char *data, std::size_t n)
{
    std::size_t off = 0;
    while (off < n) {
        // MSG_NOSIGNAL: a peer that vanished mid-write must surface
        // as EPIPE, not kill a library embedder that never installed
        // a SIGPIPE handler (a stalled shard worker writing a stale
        // result into a torn-down coordinator socket, for instance).
        ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
        if (w < 0 && errno == ENOTSOCK)
            w = ::write(fd, data + off, n - off);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(w);
    }
    return true;
}

long
readSomeFd(int fd, char *data, std::size_t n)
{
    for (;;) {
        ssize_t r = ::read(fd, data, n);
        if (r < 0 && errno == EINTR)
            continue;
        return static_cast<long>(r);
    }
}

int
acceptRetryFd(int listenFd)
{
    for (;;) {
        int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0 && errno == EINTR)
            continue;
        return fd;
    }
}

Status
connectRetryFd(int fd, const void *sockaddrPtr, unsigned sockaddrLen)
{
    const struct sockaddr *sa =
        static_cast<const struct sockaddr *>(sockaddrPtr);
    if (::connect(fd, sa, static_cast<socklen_t>(sockaddrLen)) == 0)
        return okStatus();
    if (errno != EINTR && errno != EINPROGRESS)
        return makeError(ErrorKind::Io, "connect: ",
                         std::strerror(errno));
    // The interrupted attempt keeps establishing in the background:
    // wait for writability, then read the socket's final verdict.
    for (;;) {
        struct pollfd pfd;
        pfd.fd = fd;
        pfd.events = POLLOUT;
        pfd.revents = 0;
        int pr = ::poll(&pfd, 1, -1);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            return makeError(ErrorKind::Io, "poll(connect): ",
                             std::strerror(errno));
        }
        break;
    }
    int soerr = 0;
    socklen_t elen = sizeof(soerr);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &elen) != 0)
        return makeError(ErrorKind::Io, "getsockopt(SO_ERROR): ",
                         std::strerror(errno));
    if (soerr != 0)
        return makeError(ErrorKind::Io, "connect: ",
                         std::strerror(soerr));
    return okStatus();
}

} // namespace vrc
