#include "serve/wire.hh"

#include <cstring>
#include <sstream>

#include "trace/trace_io.hh"

namespace vrc
{

namespace
{

void
putU8(std::string &out, std::uint8_t v)
{
    out.push_back(static_cast<char>(v));
}

void
putU16(std::string &out, std::uint16_t v)
{
    for (int i = 0; i < 2; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void
putU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void
putU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

/** Bounds-checked little-endian cursor over a payload. */
class Cursor
{
  public:
    explicit Cursor(const std::string &buf) : _buf(buf) {}

    bool
    u8(std::uint8_t &v)
    {
        if (_pos + 1 > _buf.size())
            return false;
        v = static_cast<std::uint8_t>(_buf[_pos++]);
        return true;
    }

    bool
    u16(std::uint16_t &v)
    {
        if (_pos + 2 > _buf.size())
            return false;
        v = 0;
        for (int i = 0; i < 2; ++i)
            v |= static_cast<std::uint16_t>(
                     static_cast<unsigned char>(_buf[_pos + i]))
                 << (8 * i);
        _pos += 2;
        return true;
    }

    bool
    u32(std::uint32_t &v)
    {
        if (_pos + 4 > _buf.size())
            return false;
        v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(_buf[_pos + i]))
                 << (8 * i);
        _pos += 4;
        return true;
    }

    bool
    u64(std::uint64_t &v)
    {
        if (_pos + 8 > _buf.size())
            return false;
        v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(_buf[_pos + i]))
                 << (8 * i);
        _pos += 8;
        return true;
    }

    bool
    bytes(std::size_t n, std::string &out)
    {
        if (_pos + n > _buf.size())
            return false;
        out.assign(_buf, _pos, n);
        _pos += n;
        return true;
    }

    /** Everything left, as a string. */
    std::string
    rest()
    {
        std::string out = _buf.substr(_pos);
        _pos = _buf.size();
        return out;
    }

    std::size_t remaining() const { return _buf.size() - _pos; }
    std::size_t pos() const { return _pos; }

  private:
    const std::string &_buf;
    std::size_t _pos = 0;
};

/** Sane cap for the client-name string in HELLO. */
constexpr std::size_t maxNameBytes = 256;

} // namespace

const char *
frameTypeName(FrameType t)
{
    switch (t) {
      case FrameType::Hello:
        return "hello";
      case FrameType::Submit:
        return "submit";
      case FrameType::Result:
        return "result";
      case FrameType::Error:
        return "error";
      case FrameType::Shed:
        return "shed";
      case FrameType::Draining:
        return "draining";
      case FrameType::Quarantined:
        return "quarantined";
      case FrameType::Bye:
        return "bye";
    }
    return "unknown";
}

std::string
encodeFrame(FrameType type, const std::string &payload)
{
    std::string out;
    out.reserve(wireHeaderBytes + payload.size());
    putU32(out, wireMagic);
    putU8(out, static_cast<std::uint8_t>(type));
    putU32(out, static_cast<std::uint32_t>(payload.size()));
    out += payload;
    return out;
}

std::string
encodeHello(const HelloRequest &h)
{
    std::string p;
    putU32(p, h.version);
    putU16(p, static_cast<std::uint16_t>(h.client.size()));
    p += h.client;
    return encodeFrame(FrameType::Hello, p);
}

std::string
encodeSubmit(const SubmitRequest &s)
{
    std::string p;
    putU64(p, s.segmentId);
    putU8(p, static_cast<std::uint8_t>(s.job.kind));
    putU32(p, s.job.l1Size);
    putU32(p, s.job.l2Size);
    putU8(p, s.job.split ? 1 : 0);
    putU8(p, static_cast<std::uint8_t>(s.job.timingMode));
    std::uint64_t scale_bits;
    static_assert(sizeof(scale_bits) == sizeof(s.scale));
    std::memcpy(&scale_bits, &s.scale, sizeof(scale_bits));
    putU64(p, scale_bits);
    putU16(p, static_cast<std::uint16_t>(s.profileName.size()));
    p += s.profileName;
    std::ostringstream trace;
    writeTraceBinary(trace, s.records);
    p += trace.str();
    return encodeFrame(FrameType::Submit, p);
}

std::string
encodeResult(const ResultReply &r)
{
    std::string p;
    putU64(p, r.segmentId);
    p += r.summaryLine;
    return encodeFrame(FrameType::Result, p);
}

std::string
encodeErrorReply(FrameType type, const ErrorReply &e)
{
    std::string p;
    putU64(p, e.segmentId);
    putU8(p, static_cast<std::uint8_t>(e.kind));
    p += e.message;
    return encodeFrame(type, p);
}

std::string
encodeBye()
{
    return encodeFrame(FrameType::Bye, "");
}

Result<HelloRequest>
decodeHello(const std::string &payload)
{
    Cursor c(payload);
    HelloRequest h;
    std::uint16_t name_len;
    if (!c.u32(h.version) || !c.u16(name_len))
        return makeError(ErrorKind::Parse, "short hello payload");
    if (h.version != wireVersion)
        return makeError(ErrorKind::Format,
                         "unsupported protocol version ", h.version,
                         " (this server speaks ", wireVersion, ")");
    if (name_len > maxNameBytes)
        return makeError(ErrorKind::Bounds, "client name of ",
                         name_len, " bytes exceeds the ",
                         maxNameBytes, "-byte cap");
    if (!c.bytes(name_len, h.client) || c.remaining() != 0)
        return makeError(ErrorKind::Parse,
                         "hello payload length mismatch");
    if (h.client.empty())
        return makeError(ErrorKind::Bounds, "empty client name");
    return h;
}

Result<SubmitRequest>
decodeSubmit(const std::string &payload)
{
    Cursor c(payload);
    SubmitRequest s;
    std::uint8_t org, split, timing;
    std::uint64_t scale_bits;
    std::uint16_t name_len;
    if (!c.u64(s.segmentId) || !c.u8(org) || !c.u32(s.job.l1Size) ||
        !c.u32(s.job.l2Size) || !c.u8(split) || !c.u8(timing) ||
        !c.u64(scale_bits) || !c.u16(name_len))
        return makeError(ErrorKind::Parse, "short submit payload");
    if (org > 2)
        return makeError(ErrorKind::Bounds,
                         "bad organization code ", unsigned(org));
    if (split > 1)
        return makeError(ErrorKind::Bounds, "bad split flag ",
                         unsigned(split));
    if (timing > 1)
        return makeError(ErrorKind::Bounds, "bad timing mode ",
                         unsigned(timing));
    s.job.kind = static_cast<HierarchyKind>(org);
    s.job.split = split != 0;
    s.job.timingMode = static_cast<TimingMode>(timing);
    std::memcpy(&s.scale, &scale_bits, sizeof(s.scale));
    if (!(s.scale > 0.0) || s.scale > 1e6)
        return makeError(ErrorKind::Bounds, "bad profile scale");
    if (name_len == 0 || name_len > maxNameBytes)
        return makeError(ErrorKind::Bounds, "bad profile name length ",
                         name_len);
    if (!c.bytes(name_len, s.profileName))
        return makeError(ErrorKind::Parse, "short submit payload");

    // The rest is the standard binary trace container; revalidate it
    // with the same loader batch mode uses (magic, version, count
    // against size, record type bytes).
    std::istringstream trace(payload.substr(c.pos()));
    Result<std::vector<TraceRecord>> records =
        tryReadTraceBinary(trace, "submit segment");
    if (!records)
        return records.error();
    s.records = records.take();
    return s;
}

Result<ResultReply>
decodeResult(const std::string &payload)
{
    Cursor c(payload);
    ResultReply r;
    if (!c.u64(r.segmentId))
        return makeError(ErrorKind::Parse, "short result payload");
    r.summaryLine = c.rest();
    if (r.summaryLine.empty())
        return makeError(ErrorKind::Parse, "empty result summary");
    return r;
}

Result<ErrorReply>
decodeErrorReply(const std::string &payload)
{
    Cursor c(payload);
    ErrorReply e;
    std::uint8_t kind;
    if (!c.u64(e.segmentId) || !c.u8(kind))
        return makeError(ErrorKind::Parse, "short error payload");
    if (kind > static_cast<std::uint8_t>(ErrorKind::Unrecoverable))
        return makeError(ErrorKind::Bounds, "bad error kind ",
                         unsigned(kind));
    e.kind = static_cast<ErrorKind>(kind);
    e.message = c.rest();
    return e;
}

void
FrameReader::feed(const char *data, std::size_t n)
{
    if (_broken)
        return;
    // Drop consumed prefix before it grows without bound.
    if (_pos > 0 && (_pos >= _buf.size() || _pos > (1u << 16))) {
        _buf.erase(0, _pos);
        _pos = 0;
    }
    _buf.append(data, n);
}

FrameReader::State
FrameReader::poll()
{
    if (_broken)
        return State::Broken;
    if (_buf.size() - _pos < wireHeaderBytes)
        return State::NeedMore;
    const unsigned char *h =
        reinterpret_cast<const unsigned char *>(_buf.data()) + _pos;
    std::uint32_t magic = 0, len = 0;
    for (int i = 0; i < 4; ++i)
        magic |= static_cast<std::uint32_t>(h[i]) << (8 * i);
    std::uint8_t type = h[4];
    for (int i = 0; i < 4; ++i)
        len |= static_cast<std::uint32_t>(h[5 + i]) << (8 * i);
    if (magic != wireMagic) {
        _broken = true;
        _error = makeError(ErrorKind::Parse,
                           "bad frame magic 0x", std::hex, magic);
        return State::Broken;
    }
    if (type < static_cast<std::uint8_t>(FrameType::Hello) ||
        type > static_cast<std::uint8_t>(FrameType::Bye)) {
        _broken = true;
        _error = makeError(ErrorKind::Format, "unknown frame type ",
                           unsigned(type));
        return State::Broken;
    }
    if (len > _maxPayload) {
        _broken = true;
        _error = makeError(ErrorKind::Bounds, "frame payload of ",
                           len, " bytes exceeds the ", _maxPayload,
                           "-byte cap");
        return State::Broken;
    }
    if (_buf.size() - _pos < wireHeaderBytes + len)
        return State::NeedMore;
    return State::Frame;
}

Frame
FrameReader::take()
{
    panicIfNot(poll() == State::Frame,
               "FrameReader::take() without a complete frame");
    const unsigned char *h =
        reinterpret_cast<const unsigned char *>(_buf.data()) + _pos;
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i)
        len |= static_cast<std::uint32_t>(h[5 + i]) << (8 * i);
    Frame f;
    f.type = static_cast<FrameType>(h[4]);
    f.payload = _buf.substr(_pos + wireHeaderBytes, len);
    _pos += wireHeaderBytes + len;
    return f;
}

} // namespace vrc
