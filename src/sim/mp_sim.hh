/**
 * @file
 * Trace-driven shared-bus multiprocessor simulator.
 *
 * One private two-level hierarchy per CPU (Figure 1), all attached to
 * one snooping bus and sharing the machine's address spaces. The
 * simulator replays an interleaved trace, dispatching each record to
 * its CPU's hierarchy and delivering context-switch markers.
 */

#ifndef VRC_SIM_MP_SIM_HH
#define VRC_SIM_MP_SIM_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "coherence/bus.hh"
#include "core/timing.hh"
#include "core/config.hh"
#include "core/factory.hh"
#include "core/hierarchy.hh"
#include "trace/record.hh"
#include "trace/workload.hh"
#include "vm/addr_space.hh"

namespace vrc
{

class TraceStream;

/** Whole-machine configuration. */
struct MachineConfig
{
    HierarchyKind kind = HierarchyKind::VirtualReal;
    HierarchyParams hierarchy;
    std::uint32_t physPages = 1u << 18;

    /** Run checkInvariants() every N references (0 disables). */
    std::uint64_t invariantPeriod = 0;

    /**
     * Access costs used for measured (counted) access-time accounting:
     * every reference contributes effectiveT1(), t2 or tm depending on
     * where it hit. The analytic Section-4 equation over the measured
     * hit ratios must agree exactly with this accounting.
     */
    TimingParams timing;

    /**
     * Optional bus-contention model: when enabled, every bus
     * transaction must acquire the single shared bus, serializing
     * against transactions from all CPUs. Requesters stall for the
     * queueing delay plus the service time; the simulator reports bus
     * utilization and total waiting. (In this mode `timing.tm` is the
     * memory latency excluding the bus, which is modeled explicitly.)
     */
    BusTimingParams busTiming;
};

/** A shared-bus multiprocessor built from per-CPU cache hierarchies. */
class MpSimulator
{
  public:
    /**
     * Build the machine for a workload: @p profile determines the CPU
     * count and the shared-segment layout (setupAddressSpaces).
     */
    MpSimulator(const MachineConfig &config,
                const WorkloadProfile &profile);

    /** Replay @p records (appending to any earlier run). */
    void run(const std::vector<TraceRecord> &records);

    /**
     * Replay records straight from a generator without materializing
     * the trace (peak-RSS saver for the 3.3M-reference workloads).
     */
    void run(TraceStream &stream);

    /** Process a single record. */
    void step(const TraceRecord &r);

    CacheHierarchy &hierarchy(CpuId cpu) { return *_cpus.at(cpu); }
    const CacheHierarchy &hierarchy(CpuId cpu) const
    {
        return *_cpus.at(cpu);
    }

    std::uint32_t cpuCount() const
    {
        return static_cast<std::uint32_t>(_cpus.size());
    }

    SharedBus &bus() { return _bus; }
    const SharedBus &bus() const { return _bus; }
    AddressSpaceManager &spaces() { return _spaces; }

    /** Machine-wide level-1 hit ratio (all CPUs, all reference types). */
    double h1() const;

    /** Machine-wide local level-2 hit ratio. */
    double h2() const;

    /** Machine-wide level-1 hit ratio for one reference type. */
    double h1ForType(RefType t) const;

    /** Sum of a named counter over all CPUs. */
    std::uint64_t totalCounter(const std::string &name) const;

    /** References processed (memory references only). */
    std::uint64_t refsProcessed() const { return _refs; }

    /** Accumulated access cost (in t1 units) over all references. */
    double cycles() const { return _cycles; }

    /** Per-CPU clock under the bus-contention model (t1 units). */
    double cpuClock(CpuId cpu) const { return _cpuClock.at(cpu); }

    /** Total time the bus spent serving transactions. */
    double busBusyTime() const { return _busBusy; }

    /** Total time requesters queued waiting for the bus. */
    double busWaitTime() const { return _busWait; }

    /** Bus utilization: busy time over the slowest CPU's clock. */
    double busUtilization() const;

    /**
     * Measured average access time: counted cost per reference. Agrees
     * with avgAccessTime(h1(), h2(), config().timing) by construction.
     */
    double
    measuredAccessTime() const
    {
        return _refs ? _cycles / static_cast<double>(_refs) : 0.0;
    }

    const MachineConfig &config() const { return _config; }

    /** Run the invariant checks on every hierarchy now. */
    void checkInvariants() const;

    /**
     * Zero all statistics (per-CPU counters, bus counters, reference
     * and cycle accounting) while keeping cache/TLB contents: call
     * after a warm-up window so reported ratios cover steady state.
     */
    void resetStats();

    /**
     * OS-style page remap: change (pid, vpn) to map @p new_ppn.
     *
     * Demonstrates the paper's point that TLB coherence can be handled
     * at the second level: the old frame's cached copies are flushed
     * and invalidated machine-wide through ordinary (physical) bus
     * transactions, and every CPU's TLB entry is shot down -- nothing
     * touches a V-cache except through its own R-cache filter.
     */
    void remapPage(ProcessId pid, Vpn vpn, Ppn new_ppn);

  private:
    MachineConfig _config;
    AddressSpaceManager _spaces;
    SharedBus _bus;
    /** Charge queueing + service for transactions issued in one step. */
    void chargeBusTransactions(CpuId cpu);

    std::vector<std::unique_ptr<CacheHierarchy>> _cpus;
    std::uint64_t _refs = 0;
    double _cycles = 0.0;
    std::vector<double> _cpuClock;
    double _busFree = 0.0;
    double _busBusy = 0.0;
    double _busWait = 0.0;
    std::array<std::uint64_t, 4> _lastOpCounts{};
};

} // namespace vrc

#endif // VRC_SIM_MP_SIM_HH
