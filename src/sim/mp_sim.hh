/**
 * @file
 * Trace-driven shared-bus multiprocessor simulator.
 *
 * One private two-level hierarchy per CPU (Figure 1), all attached to
 * one snooping bus and sharing the machine's address spaces. The
 * simulator replays an interleaved trace, dispatching each record to
 * its CPU's hierarchy and delivering context-switch markers.
 */

#ifndef VRC_SIM_MP_SIM_HH
#define VRC_SIM_MP_SIM_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "coherence/bus.hh"
#include "coherence/bus_arbiter.hh"
#include "core/clock.hh"
#include "core/timing.hh"
#include "core/config.hh"
#include "core/factory.hh"
#include "core/hierarchy.hh"
#include "trace/record.hh"
#include "trace/workload.hh"
#include "vm/addr_space.hh"

namespace vrc
{

class TraceStream;

/** Whole-machine configuration. */
struct MachineConfig
{
    HierarchyKind kind = HierarchyKind::VirtualReal;
    HierarchyParams hierarchy;
    std::uint32_t physPages = 1u << 18;

    /** Run checkInvariants() every N references (0 disables). */
    std::uint64_t invariantPeriod = 0;

    /**
     * Access costs used for measured (counted) access-time accounting:
     * every reference contributes effectiveT1(), t2 or tm depending on
     * where it hit. The analytic Section-4 equation over the measured
     * hit ratios must agree exactly with this accounting.
     */
    TimingParams timing;

    /**
     * Timing engine selection. Analytic (the default) keeps the
     * paper's post-hoc accounting only. Cycle layers the
     * cycle-approximate engine on top: per-CPU clocks advance by the
     * level costs the hierarchies report, and every bus transaction
     * must win the single shared bus through the BusArbiter,
     * serializing against all CPUs and charging queueing delay plus a
     * per-type service time. (In cycle mode `timing.tm` is the memory
     * latency excluding the bus, which is modeled explicitly.)
     * Architectural counters are bit-identical across modes: timing is
     * pure accounting layered on the functional model.
     */
    TimingMode timingMode = TimingMode::Analytic;

    /** Bus service times for the cycle engine (ignored in analytic). */
    BusTimingParams busTiming;
};

/** A shared-bus multiprocessor built from per-CPU cache hierarchies. */
class MpSimulator
{
  public:
    /**
     * Build the machine for a workload: @p profile determines the CPU
     * count and the shared-segment layout (setupAddressSpaces).
     */
    MpSimulator(const MachineConfig &config,
                const WorkloadProfile &profile);

    /** Replay @p records (appending to any earlier run). */
    void run(const std::vector<TraceRecord> &records);

    /**
     * Replay records straight from a generator without materializing
     * the trace (peak-RSS saver for the 3.3M-reference workloads).
     */
    void run(TraceStream &stream);

    /** Process a single record. */
    void step(const TraceRecord &r);

    /**
     * Replay @p n records through the batch fast path: the hierarchy
     * type is resolved from the machine kind once per batch, so the
     * per-reference dispatch inside the loop is a direct (inlinable)
     * call instead of a virtual one. step()-for-step identical to the
     * generic path; step() remains for record-at-a-time callers.
     */
    void runBatch(const TraceRecord *records, std::size_t n);

    CacheHierarchy &hierarchy(CpuId cpu) { return *_cpus.at(cpu); }
    const CacheHierarchy &hierarchy(CpuId cpu) const
    {
        return *_cpus.at(cpu);
    }

    std::uint32_t cpuCount() const
    {
        return static_cast<std::uint32_t>(_cpus.size());
    }

    SharedBus &bus() { return _bus; }
    const SharedBus &bus() const { return _bus; }
    AddressSpaceManager &spaces() { return _spaces; }

    /** Machine-wide level-1 hit ratio (all CPUs, all reference types). */
    double h1() const;

    /** Machine-wide local level-2 hit ratio. */
    double h2() const;

    /** Machine-wide level-1 hit ratio for one reference type. */
    double h1ForType(RefType t) const;

    /** Sum of a named counter over all CPUs. */
    std::uint64_t totalCounter(const std::string &name) const;

    /** References processed (memory references only). */
    std::uint64_t refsProcessed() const { return _refs; }

    /** Accumulated access cost (in t1 units) over all references. */
    double cycles() const { return _cycles; }

    /** Active timing engine. */
    TimingMode timingMode() const { return _config.timingMode; }

    /** Per-CPU clock under the cycle engine (0 in analytic mode). */
    double
    cpuClock(CpuId cpu) const
    {
        return cpu < _clocks.size() ? _clocks[cpu].now() : 0.0;
    }

    /** Full clock (accumulator breakdown) of one CPU (cycle engine). */
    const CpuClock &
    clock(CpuId cpu) const
    {
        // In analytic mode the clocks never advance; hand back a shared
        // zero clock so report code can stay mode-agnostic.
        static const CpuClock zero{};
        return cpu < _clocks.size() ? _clocks[cpu] : zero;
    }

    /** The bus arbiter, or nullptr in analytic mode. */
    const BusArbiter *arbiter() const { return _arbiter.get(); }

    /** Total time the bus spent serving transactions. */
    double busBusyTime() const
    {
        return _arbiter ? _arbiter->busyTicks() : 0.0;
    }

    /** Total time requesters queued waiting for the bus. */
    double busWaitTime() const
    {
        return _arbiter ? _arbiter->waitTicks() : 0.0;
    }

    /** Bus utilization: busy time over the simulated horizon. */
    double busUtilization() const;

    /**
     * Average per-reference latency under the cycle engine: every
     * CPU's elapsed clock (level costs + bus service + queueing) over
     * all references. In analytic mode this equals
     * measuredAccessTime(), and so it does under the cycle engine with
     * one CPU and a zero bus service table -- the closed-form
     * cross-check the tests and CI enforce.
     */
    double avgAccessCycles() const;

    /** Average per-reference bus queueing delay (t1 units). */
    double
    avgBusWait() const
    {
        return _refs && _arbiter
            ? _arbiter->waitTicks() / static_cast<double>(_refs)
            : 0.0;
    }

    /**
     * Measured average access time: counted cost per reference. Agrees
     * with avgAccessTime(h1(), h2(), config().timing) by construction.
     */
    double
    measuredAccessTime() const
    {
        return _refs ? _cycles / static_cast<double>(_refs) : 0.0;
    }

    const MachineConfig &config() const { return _config; }

    /** Run the invariant checks on every hierarchy now. */
    void checkInvariants() const;

    /**
     * Zero all statistics (per-CPU counters, bus counters, reference
     * and cycle accounting) while keeping cache/TLB contents: call
     * after a warm-up window so reported ratios cover steady state.
     */
    void resetStats();

    /**
     * OS-style page remap: change (pid, vpn) to map @p new_ppn.
     *
     * Demonstrates the paper's point that TLB coherence can be handled
     * at the second level: the old frame's cached copies are flushed
     * and invalidated machine-wide through ordinary (physical) bus
     * transactions, and every CPU's TLB entry is shot down -- nothing
     * touches a V-cache except through its own R-cache filter.
     */
    void remapPage(ProcessId pid, Vpn vpn, Ppn new_ppn);

  private:
    /** The typed replay loop behind runBatch(). */
    template <typename H>
    void replayTyped(const TraceRecord *records, std::size_t n);

    /** One record through the typed loop (mirrors step()). */
    template <typename H>
    void stepOn(H &h, const TraceRecord &r);

    MachineConfig _config;
    AddressSpaceManager _spaces;
    SharedBus _bus;

    std::vector<std::unique_ptr<CacheHierarchy>> _cpus;
    std::uint64_t _refs = 0;
    double _cycles = 0.0;

    /**
     * Level costs by (cpu, outcome), resolved once at construction
     * from each hierarchy's levelCost() so the replay hot path never
     * pays a virtual call per reference.
     */
    std::vector<std::array<Tick, 4>> _costs;

    /** Cycle engine state (empty clocks / null arbiter in analytic). */
    std::vector<CpuClock> _clocks;
    std::unique_ptr<BusArbiter> _arbiter;
};

} // namespace vrc

#endif // VRC_SIM_MP_SIM_HH
