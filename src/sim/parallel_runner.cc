#include "sim/parallel_runner.hh"

#include <cstdlib>

namespace vrc
{

namespace
{

std::atomic<unsigned> jobOverride{0};

} // namespace

unsigned
ParallelRunner::defaultJobs()
{
    if (unsigned forced = jobOverride.load(std::memory_order_relaxed))
        return forced;
    if (const char *env = std::getenv("VRC_JOBS")) {
        long v = std::strtol(env, nullptr, 10);
        if (v >= 1)
            return static_cast<unsigned>(v);
    }
    unsigned hc = std::thread::hardware_concurrency();
    return hc ? hc : 1;
}

void
ParallelRunner::setDefaultJobs(unsigned jobs)
{
    jobOverride.store(jobs, std::memory_order_relaxed);
}

} // namespace vrc
