#include "sim/experiment.hh"

#include <cstdlib>
#include <cstring>

#include "base/fault.hh"
#include "sim/parallel_runner.hh"

namespace vrc
{

MachineConfig
makeMachineConfig(HierarchyKind kind, std::uint32_t l1_size,
                  std::uint32_t l2_size, std::uint32_t page_size,
                  bool split)
{
    MachineConfig mc;
    mc.kind = kind;
    mc.hierarchy.pageSize = page_size;
    mc.hierarchy.l1.sizeBytes = l1_size;
    mc.hierarchy.l2.sizeBytes = l2_size;
    mc.hierarchy.splitL1 = split;
    return mc;
}

SimSummary
summarizeSimulation(const MpSimulator &sim, const SimJob &job)
{
    SimSummary s;
    s.kind = job.kind;
    s.l1Size = job.l1Size;
    s.l2Size = job.l2Size;
    s.split = job.split;
    s.h1 = sim.h1();
    s.h2 = sim.h2();
    s.h1Instr = sim.h1ForType(RefType::Instr);
    s.h1Read = sim.h1ForType(RefType::Read);
    s.h1Write = sim.h1ForType(RefType::Write);
    for (CpuId c = 0; c < sim.cpuCount(); ++c) {
        s.l1MsgsPerCpu.push_back(
            sim.hierarchy(c).stats().value("l1_coherence_msgs"));
    }
    s.inclusionInvalidations =
        sim.totalCounter("inclusion_invalidations");
    s.synonymHits = sim.totalCounter("synonym_hits");
    s.synonymMoves = sim.totalCounter("synonym_moves");
    s.writebackCancels = sim.totalCounter("writeback_cancels");
    s.swappedWritebacks = sim.totalCounter("swapped_writebacks");
    s.busTransactions = sim.bus().transactions();
    s.memoryWrites = sim.totalCounter("memory_writes");
    s.refs = sim.refsProcessed();
    s.timingMode = sim.timingMode();
    s.avgAccessTime = sim.measuredAccessTime();
    s.avgAccessCycles = sim.avgAccessCycles();
    s.busUtilization = sim.busUtilization();
    s.avgBusWait = sim.avgBusWait();
    return s;
}

SimSummary
runSimulation(const TraceBundle &bundle, HierarchyKind kind,
              std::uint32_t l1_size, std::uint32_t l2_size, bool split,
              std::uint64_t invariant_period, TimingMode timing_mode)
{
    return runSimulationJob(bundle, SimJob{kind, l1_size, l2_size, split,
                                           invariant_period,
                                           timing_mode});
}

SimSummary
runSimulationJob(const TraceBundle &bundle, const SimJob &job)
{
    MachineConfig mc =
        makeMachineConfig(job.kind, job.l1Size, job.l2Size,
                          bundle.profile.pageSize, job.split);
    mc.invariantPeriod = job.invariantPeriod;
    mc.timingMode = job.timingMode;
    MpSimulator sim(mc, bundle.profile);
    sim.run(bundle.records);
    return summarizeSimulation(sim, job);
}

SimSummary
runSimulationCancellable(const TraceBundle &bundle, const SimJob &job,
                         const CancelToken &token)
{
    MachineConfig mc =
        makeMachineConfig(job.kind, job.l1Size, job.l2Size,
                          bundle.profile.pageSize, job.split);
    mc.invariantPeriod = job.invariantPeriod;
    mc.timingMode = job.timingMode;
    MpSimulator sim(mc, bundle.profile);
    constexpr std::size_t pollMask = 0x1FFF; // every 8192 records
    for (std::size_t i = 0; i < bundle.records.size(); ++i) {
        if ((i & pollMask) == 0 && token.cancelled())
            throw ErrorException(makeError(
                ErrorKind::Cancelled, "simulation cancelled after ",
                i, " of ", bundle.records.size(), " records"));
        sim.step(bundle.records[i]);
    }
    return summarizeSimulation(sim, job);
}

std::vector<SimSummary>
runSimulations(const TraceBundle &bundle, const std::vector<SimJob> &jobs,
               unsigned threads)
{
    ParallelRunner pool(threads);
    return pool.map(jobs.size(), [&](std::size_t i) {
        return runSimulationJob(bundle, jobs[i]);
    });
}

std::vector<std::pair<std::uint32_t, std::uint32_t>>
paperSizePairs()
{
    return {{4 * 1024, 64 * 1024},
            {8 * 1024, 128 * 1024},
            {16 * 1024, 256 * 1024}};
}

std::vector<std::pair<std::uint32_t, std::uint32_t>>
smallSizePairs()
{
    return {{512, 64 * 1024}, {1024, 128 * 1024}, {2048, 256 * 1024}};
}

double
benchScaleFromArgs(int argc, char **argv, double quick)
{
    double scale = 0.0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            scale = quick;
        else if (std::strncmp(argv[i], "--scale=", 8) == 0)
            scale = std::atof(argv[i] + 8);
        else if (std::strncmp(argv[i], "--jobs=", 7) == 0)
            ParallelRunner::setDefaultJobs(
                static_cast<unsigned>(std::atoi(argv[i] + 7)));
        else if (std::strncmp(argv[i], "--inject-faults=", 16) == 0) {
            Status armed = configureFaultInjection(argv[i] + 16);
            if (!armed)
                fatal(armed.error().describe());
        }
    }
    if (scale != 0.0)
        return scale;
    if (const char *env = std::getenv("VRC_QUICK");
        env && env[0] == '1')
        return quick;
    return 1.0;
}

} // namespace vrc
