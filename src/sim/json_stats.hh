/**
 * @file
 * JSON export of simulation results, for downstream tooling (plots,
 * regression tracking). No external dependencies: the emitted subset
 * of JSON is numbers, strings of counter names, objects and arrays.
 */

#ifndef VRC_SIM_JSON_STATS_HH
#define VRC_SIM_JSON_STATS_HH

#include <string>

#include "sim/experiment.hh"

namespace vrc
{

/** Serialize one experiment summary as a JSON object. */
std::string toJson(const SimSummary &summary);

/**
 * Serialize a full simulator: machine-level results plus every per-CPU
 * counter group, as one JSON object.
 */
std::string toJson(const MpSimulator &sim);

} // namespace vrc

#endif // VRC_SIM_JSON_STATS_HH
