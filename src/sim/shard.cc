#include "sim/shard.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <unordered_map>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "base/atomic_file.hh"
#include "base/fault.hh"
#include "base/log.hh"
#include "base/shutdown.hh"
#include "serve/client.hh"
#include "serve/wire.hh"
#include "trace/workload.hh"

namespace vrc
{

namespace
{

using Clock = std::chrono::steady_clock;

std::uint64_t
fnv1a(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h = (h ^ (v & 0xFF)) * 0x100000001b3ull;
        v >>= 8;
    }
    return h;
}

std::uint64_t
fnv1a(std::uint64_t h, const std::string &s)
{
    for (char c : s)
        h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ull;
    return h;
}

constexpr const char *conflictPrefix = "conflicting summaries";

} // namespace

std::uint64_t
shardCellId(const TraceBundle &bundle, const SimJob &job)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    h = fnv1a(h, bundle.profile.name);
    h = fnv1a(h, bundle.profile.seed);
    h = fnv1a(h, bundle.records.size());
    h = fnv1a(h, static_cast<std::uint64_t>(job.kind));
    h = fnv1a(h, job.l1Size);
    h = fnv1a(h, job.l2Size);
    h = fnv1a(h, job.split ? 1 : 0);
    h = fnv1a(h, job.invariantPeriod);
    h = fnv1a(h, static_cast<std::uint64_t>(job.timingMode));
    return h;
}

bool
isConflictError(const Error &e)
{
    return e.kind == ErrorKind::Mismatch &&
           e.message.rfind(conflictPrefix, 0) == 0;
}

// ---- journal merge --------------------------------------------------

Result<ShardMerge>
mergeJournalTexts(
    const std::vector<std::pair<std::string, std::string>> &inputs)
{
    if (inputs.empty())
        return makeError(ErrorKind::Bounds, "no journals to merge");

    ShardMerge m;
    std::vector<std::string> srcCtx;
    std::vector<std::uint64_t> srcLine;
    std::string firstCtx;
    for (const auto &[ctx, text] : inputs) {
        std::istringstream is(text);
        Result<JournalContents> loaded = tryLoadJournal(is, ctx);
        if (!loaded)
            return loaded.error();
        JournalContents j = loaded.take();
        m.torn += j.torn;
        m.duplicates += j.duplicates;
        if (m.inputs == 0) {
            firstCtx = ctx;
            m.merged.key = j.key;
            m.merged.cells = j.cells;
            m.merged.present.assign(j.cells, false);
            m.merged.summaries.resize(j.cells);
            m.merged.lines.resize(j.cells);
            m.merged.firstLine.assign(j.cells, 0);
            srcCtx.resize(j.cells);
            srcLine.assign(j.cells, 0);
        } else {
            if (j.key != m.merged.key)
                return makeErrorAt(
                    ErrorKind::Mismatch, ctx, 2,
                    "journal belongs to campaign ", j.key,
                    " but ", firstCtx, " is campaign ", m.merged.key);
            if (j.cells != m.merged.cells)
                return makeErrorAt(
                    ErrorKind::Mismatch, ctx, 2,
                    "journal has ", j.cells, " cells but ", firstCtx,
                    " has ", m.merged.cells);
        }
        for (std::size_t i = 0; i < j.cells; ++i) {
            if (!j.present[i])
                continue;
            if (!m.merged.present[i]) {
                m.merged.present[i] = true;
                m.merged.summaries[i] = j.summaries[i];
                m.merged.lines[i] = j.lines[i];
                m.merged.firstLine[i] = j.firstLine[i];
                srcCtx[i] = ctx;
                srcLine[i] = j.firstLine[i];
                continue;
            }
            if (m.merged.lines[i] == j.lines[i]) {
                ++m.duplicates;
                continue;
            }
            return makeErrorAt(ErrorKind::Mismatch, ctx,
                               j.firstLine[i], conflictPrefix,
                               " for cell ", i, " (disagrees with ",
                               srcCtx[i], ":", srcLine[i], ")");
        }
        ++m.inputs;
    }
    for (std::size_t i = 0; i < m.merged.cells; ++i)
        if (!m.merged.present[i])
            m.missing.push_back(i);
    return m;
}

Result<ShardMerge>
mergeJournalFiles(const std::vector<std::string> &paths)
{
    std::vector<std::pair<std::string, std::string>> inputs;
    inputs.reserve(paths.size());
    for (const std::string &path : paths) {
        std::ifstream in(path, std::ios::binary);
        if (!in)
            return makeError(ErrorKind::Io,
                             "cannot open journal: ", path);
        std::ostringstream text;
        text << in.rdbuf();
        inputs.emplace_back(path, text.str());
    }
    return mergeJournalTexts(inputs);
}

std::string
mergeManifestJson(const ShardMerge &m)
{
    std::ostringstream os;
    os << "{\"inputs\":" << m.inputs
       << ",\"cells\":" << m.merged.cells
       << ",\"completed\":" << m.merged.completedCells()
       << ",\"duplicates\":" << m.duplicates
       << ",\"torn\":" << m.torn << ",\"missing\":[";
    for (std::size_t i = 0; i < m.missing.size(); ++i)
        os << (i ? "," : "") << m.missing[i];
    os << "]}";
    return os.str();
}

// ---- coordinator ----------------------------------------------------

namespace
{

/** One connected worker. */
struct WorkerConn
{
    std::uint64_t id = 0;
    int fd = -1;
    std::string name;       ///< from HELLO; empty until then
    bool ready = false;     ///< HELLO accepted
    bool gone = false;      ///< connection dead (no more dispatch)
    bool writeShut = false;
    std::int64_t assignment = -1; ///< active assignment id, -1 = idle
    std::mutex writeMu;
    std::thread reader;
};

/** One dispatched shard. */
struct Assignment
{
    std::uint64_t id = 0;
    std::uint64_t workerId = 0;
    std::string workerName;
    std::vector<std::size_t> cells;
    Clock::time_point lastProgress;
    bool active = false;
    bool speculated = false; ///< watchdog already rescued this one
};

} // namespace

struct ShardCoordinator::Impl
{
    ShardCoordinatorOptions opt;

    int unixFd = -1;
    int tcpFd = -1;
    int boundTcpPort = -1;

    // All coordinator state below is guarded by mu; cv wakes the
    // scheduler loop on every event (result, done, hello, loss).
    std::mutex mu;
    std::condition_variable cv;
    std::atomic<bool> stopping{false};

    const TraceBundle *bundle = nullptr;
    const std::vector<SimJob> *jobs = nullptr;
    std::string key;
    std::size_t n = 0;
    std::vector<std::uint64_t> cellIds;
    std::unordered_map<std::uint64_t, std::size_t> idToIndex;

    CampaignResult res;
    std::vector<std::string> lines;       ///< accepted journal lines
    std::vector<bool> cellQuarantined;
    std::vector<CellFailure> lastFail;
    std::vector<unsigned> failCount;
    std::vector<unsigned> dispatchCount; ///< wire `attempt` source
    std::vector<Clock::time_point> earliest; ///< backoff gate
    std::deque<std::size_t> pending;

    std::ofstream journal;

    std::vector<std::shared_ptr<WorkerConn>> workers;
    std::uint64_t nextWorkerId = 1;
    std::map<std::uint64_t, Assignment> assignments;
    std::uint64_t nextAssignId = 1;
    std::map<std::string, unsigned> strikes;
    std::set<std::string> quarantinedNames;

    ShardStats stats;
    bool conflict = false;
    Error conflictError;
    bool draining = false;

    std::thread acceptThread;

    // ---- socket plumbing -------------------------------------------

    Status
    bindListeners()
    {
        if (opt.listenUnix.empty() && opt.listenTcp < 0)
            return makeError(ErrorKind::Io,
                             "coordinate: no listener configured "
                             "(need a unix path and/or a TCP port)");
        if (!opt.listenUnix.empty()) {
            sockaddr_un sa = {};
            if (opt.listenUnix.size() >= sizeof(sa.sun_path))
                return makeError(ErrorKind::Bounds,
                                 "unix socket path too long: ",
                                 opt.listenUnix);
            unixFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
            if (unixFd < 0)
                return makeError(ErrorKind::Io, "socket(AF_UNIX): ",
                                 std::strerror(errno));
            sa.sun_family = AF_UNIX;
            std::strncpy(sa.sun_path, opt.listenUnix.c_str(),
                         sizeof(sa.sun_path) - 1);
            ::unlink(opt.listenUnix.c_str());
            if (::bind(unixFd, reinterpret_cast<sockaddr *>(&sa),
                       sizeof(sa)) != 0 ||
                ::listen(unixFd, 64) != 0)
                return makeError(ErrorKind::Io, "cannot listen on ",
                                 opt.listenUnix, ": ",
                                 std::strerror(errno));
        }
        if (opt.listenTcp >= 0) {
            tcpFd = ::socket(AF_INET, SOCK_STREAM, 0);
            if (tcpFd < 0)
                return makeError(ErrorKind::Io, "socket(AF_INET): ",
                                 std::strerror(errno));
            int one = 1;
            ::setsockopt(tcpFd, SOL_SOCKET, SO_REUSEADDR, &one,
                         sizeof(one));
            sockaddr_in sa = {};
            sa.sin_family = AF_INET;
            sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
            sa.sin_port =
                htons(static_cast<std::uint16_t>(opt.listenTcp));
            if (::bind(tcpFd, reinterpret_cast<sockaddr *>(&sa),
                       sizeof(sa)) != 0 ||
                ::listen(tcpFd, 64) != 0)
                return makeError(ErrorKind::Io,
                                 "cannot listen on 127.0.0.1:",
                                 opt.listenTcp, ": ",
                                 std::strerror(errno));
            socklen_t len = sizeof(sa);
            ::getsockname(tcpFd, reinterpret_cast<sockaddr *>(&sa),
                          &len);
            boundTcpPort = ntohs(sa.sin_port);
        }
        return okStatus();
    }

    void
    closeListeners()
    {
        if (unixFd >= 0) {
            ::close(unixFd);
            unixFd = -1;
            ::unlink(opt.listenUnix.c_str());
        }
        if (tcpFd >= 0) {
            ::close(tcpFd);
            tcpFd = -1;
        }
    }

    /** Send one frame to a worker; false cuts the connection. */
    bool
    sendToWorker(WorkerConn &w, const std::string &frame)
    {
        std::lock_guard<std::mutex> g(w.writeMu);
        if (w.writeShut)
            return false;
        if (!writeAllFd(w.fd, frame.data(), frame.size())) {
            w.writeShut = true;
            ::shutdown(w.fd, SHUT_RDWR);
            return false;
        }
        return true;
    }

    // ---- accept + reader threads -----------------------------------

    void
    acceptLoop()
    {
        while (!stopping.load(std::memory_order_acquire)) {
            pollfd fds[2];
            nfds_t nf = 0;
            int unix_at = -1, tcp_at = -1;
            if (unixFd >= 0) {
                unix_at = static_cast<int>(nf);
                fds[nf++] = {unixFd, POLLIN, 0};
            }
            if (tcpFd >= 0) {
                tcp_at = static_cast<int>(nf);
                fds[nf++] = {tcpFd, POLLIN, 0};
            }
            int pr = ::poll(fds, nf, 100);
            if (pr < 0 && errno != EINTR)
                break;
            if (pr <= 0)
                continue;
            if (unix_at >= 0 && (fds[unix_at].revents & POLLIN))
                acceptOne(unixFd);
            if (tcp_at >= 0 && (fds[tcp_at].revents & POLLIN))
                acceptOne(tcpFd);
        }
    }

    void
    acceptOne(int listener)
    {
        int fd = acceptRetryFd(listener);
        if (fd < 0)
            return;
        auto w = std::make_shared<WorkerConn>();
        w->fd = fd;
        {
            std::lock_guard<std::mutex> g(mu);
            w->id = nextWorkerId++;
            workers.push_back(w);
        }
        w->reader = std::thread([this, w] { readerLoop(*w); });
    }

    void
    readerLoop(WorkerConn &w)
    {
        FrameReader frames;
        char buf[64 * 1024];
        bool alive = true;
        while (alive && !stopping.load(std::memory_order_acquire)) {
            pollfd p = {w.fd, POLLIN, 0};
            int pr = ::poll(&p, 1, 100);
            if (pr < 0) {
                if (errno == EINTR)
                    continue;
                break;
            }
            if (pr == 0)
                continue;
            if (!(p.revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            long rn = readSomeFd(w.fd, buf, sizeof(buf));
            if (rn == 0)
                break;
            if (rn < 0) {
                if (errno == EAGAIN || errno == EWOULDBLOCK)
                    continue;
                break;
            }
            frames.feed(buf, static_cast<std::size_t>(rn));
            for (;;) {
                FrameReader::State fs = frames.poll();
                if (fs == FrameReader::State::NeedMore)
                    break;
                if (fs == FrameReader::State::Broken) {
                    std::lock_guard<std::mutex> g(mu);
                    warn("coordinate: torn frame stream from worker '",
                         w.name, "': ", frames.error().message);
                    strikeLocked(w.name);
                    alive = false;
                    break;
                }
                if (!handleFrame(w, frames.take())) {
                    alive = false;
                    break;
                }
            }
        }
        std::lock_guard<std::mutex> g(mu);
        markGoneLocked(w);
        cv.notify_all();
    }

    /** Dispatch one frame from @p w. False ends the connection. */
    bool
    handleFrame(WorkerConn &w, Frame f)
    {
        std::lock_guard<std::mutex> g(mu);
        if (!w.ready) {
            if (f.type != FrameType::Hello) {
                warn("coordinate: worker sent ", frameTypeName(f.type),
                     " before hello");
                return false;
            }
            Result<HelloRequest> hello = decodeHello(f.payload);
            if (!hello) {
                warn("coordinate: bad hello: ",
                     hello.error().message);
                return false;
            }
            w.name = hello.value().client;
            if (quarantinedNames.count(w.name)) {
                sendToWorker(
                    w, encodeErrorReply(
                           FrameType::Quarantined,
                           ErrorReply{0, ErrorKind::Worker,
                                      "worker is quarantined"}));
                return false;
            }
            w.ready = true;
            ++stats.workersSeen;
            cv.notify_all();
            return true;
        }
        switch (f.type) {
          case FrameType::CellResult:
            return handleCellResultLocked(w, f.payload);
          case FrameType::ShardDone:
            return handleShardDoneLocked(w, f.payload);
          case FrameType::Heartbeat:
            return handleHeartbeatLocked(w, f.payload);
          case FrameType::Bye:
            return false;
          default:
            warn("coordinate: unexpected ", frameTypeName(f.type),
                 " frame from worker '", w.name, "'");
            strikeLocked(w.name);
            return false;
        }
    }

    bool
    handleCellResultLocked(WorkerConn &w, const std::string &payload)
    {
        Result<CellResultReply> r = decodeCellResult(payload);
        if (!r)
            return poisonLocked(w, r.error().message);
        const CellResultReply &cr = r.value();
        if (cr.index >= n)
            return poisonLocked(w, "cell index out of range");
        Result<std::pair<std::size_t, SimSummary>> decoded =
            decodeSummaryLine(cr.summaryLine);
        if (!decoded)
            return poisonLocked(w, decoded.error().message);
        const auto &[idx, s] = decoded.value();
        if (idx != cr.index)
            return poisonLocked(w, "summary line names another cell");
        const SimJob &job = (*jobs)[idx];
        if (s.kind != job.kind || s.l1Size != job.l1Size ||
            s.l2Size != job.l2Size || s.split != job.split ||
            s.timingMode != job.timingMode)
            return poisonLocked(w,
                                "summary geometry does not match the "
                                "assigned cell");

        // Dedup by stable cell id: the first valid result wins; a
        // straggler's late copy must be byte-identical to be dropped
        // silently, otherwise somebody computed a wrong answer and
        // the run must not paper over it.
        if (res.completed[idx]) {
            if (lines[idx] == cr.summaryLine) {
                ++stats.duplicateResults;
            } else if (!conflict) {
                conflict = true;
                conflictError = makeError(
                    ErrorKind::Mismatch, conflictPrefix,
                    " for cell ", idx, " (id ", std::hex,
                    cellIds[idx], std::dec, "): worker '", w.name,
                    "' disagrees with the journaled line");
                cv.notify_all();
            }
            noteProgressLocked(w, cr.assignId);
            return !conflict;
        }
        res.completed[idx] = true;
        res.summaries[idx] = s;
        lines[idx] = cr.summaryLine;
        ++stats.cellResults;
        if (journal.is_open()) {
            journal << cr.summaryLine << "\n";
            journal.flush();
        }
        noteProgressLocked(w, cr.assignId);
        cv.notify_all();
        return true;
    }

    void
    noteProgressLocked(WorkerConn &w, std::uint64_t assignId)
    {
        auto it = assignments.find(assignId);
        if (it != assignments.end() && it->second.workerId == w.id)
            it->second.lastProgress = Clock::now();
    }

    bool
    handleShardDoneLocked(WorkerConn &w, const std::string &payload)
    {
        Result<ShardDoneReply> r = decodeShardDone(payload);
        if (!r)
            return poisonLocked(w, r.error().message);
        const ShardDoneReply &d = r.value();
        for (const ShardFailureInfo &f : d.failures) {
            if (f.index >= n)
                return poisonLocked(w, "failure index out of range");
            warn("coordinate: worker '", w.name, "' failed cell ",
                 f.index, ": ", f.message);
            recordCellFailureLocked(f.index, f.kind, f.message,
                                    f.kind == ErrorKind::Timeout);
        }
        auto it = assignments.find(d.assignId);
        if (it != assignments.end() && it->second.workerId == w.id) {
            it->second.active = false;
            if (w.assignment ==
                static_cast<std::int64_t>(it->second.id))
                w.assignment = -1;
        }
        cv.notify_all();
        return true;
    }

    bool
    handleHeartbeatLocked(WorkerConn &w, const std::string &payload)
    {
        Result<HeartbeatMsg> r = decodeHeartbeat(payload);
        if (!r)
            return poisonLocked(w, r.error().message);
        ++stats.heartbeats;
        noteProgressLocked(w, r.value().assignId);
        return true;
    }

    /** A worker sent garbage: strike it and cut the connection. */
    bool
    poisonLocked(WorkerConn &w, const std::string &why)
    {
        warn("coordinate: poisoning worker '", w.name, "': ", why);
        strikeLocked(w.name);
        return false;
    }

    void
    strikeLocked(const std::string &name)
    {
        if (name.empty())
            return;
        unsigned s = ++strikes[name];
        if (s >= opt.workerStrikeLimit &&
            !quarantinedNames.count(name)) {
            quarantinedNames.insert(name);
            ++stats.workersQuarantined;
            warn("coordinate: quarantining worker '", name, "' after ",
                 s, " strikes");
            for (auto &w : workers) {
                if (w->name != name || w->gone)
                    continue;
                sendToWorker(
                    *w, encodeErrorReply(
                            FrameType::Quarantined,
                            ErrorReply{0, ErrorKind::Worker,
                                       "worker is quarantined"}));
                std::lock_guard<std::mutex> g(w->writeMu);
                w->writeShut = true;
                ::shutdown(w->fd, SHUT_RDWR);
            }
        }
    }

    /** The connection died: return its unfinished cells to the pool. */
    void
    markGoneLocked(WorkerConn &w)
    {
        if (w.gone)
            return;
        w.gone = true;
        {
            std::lock_guard<std::mutex> g(w.writeMu);
            w.writeShut = true;
            ::shutdown(w.fd, SHUT_RDWR);
        }
        if (w.ready && !stopping.load(std::memory_order_acquire))
            ++stats.workersLost;
        if (w.assignment >= 0) {
            auto it = assignments.find(
                static_cast<std::uint64_t>(w.assignment));
            if (it != assignments.end() && it->second.active) {
                Assignment &a = it->second;
                a.active = false;
                if (!stopping.load(std::memory_order_acquire)) {
                    std::ostringstream os;
                    os << "lost worker '" << w.name
                       << "' mid-shard";
                    for (std::size_t idx : a.cells)
                        if (!res.completed[idx])
                            recordCellFailureLocked(
                                idx, ErrorKind::Worker, os.str(),
                                false);
                }
            }
            w.assignment = -1;
        }
    }

    /**
     * One definite failure for @p idx: bounded retry with backoff,
     * then quarantine. Results that arrive later anyway (a straggler
     * finishing after its loss was declared) still count -- the
     * quarantine list is filtered against completions at the end.
     */
    void
    recordCellFailureLocked(std::size_t idx, ErrorKind kind,
                            const std::string &message, bool timedOut)
    {
        if (res.completed[idx] || cellQuarantined[idx])
            return;
        unsigned fails = ++failCount[idx];
        CellFailure f;
        f.index = idx;
        f.attempts = fails;
        f.timedOut = timedOut;
        f.kind = kind;
        f.error = message;
        lastFail[idx] = f;
        if (fails > opt.maxRetries) {
            cellQuarantined[idx] = true;
            warn("coordinate: cell ", idx, " quarantined after ",
                 fails, " failed dispatch", fails == 1 ? "" : "es",
                 ": ", message);
            return;
        }
        double backoff =
            opt.backoffSeconds *
            static_cast<double>(std::uint64_t{1}
                                << std::min(fails - 1, 20u));
        backoff = std::min(backoff, opt.backoffCapSeconds);
        earliest[idx] =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(backoff));
        pending.push_back(idx);
    }

    // ---- scheduler -------------------------------------------------

    /** Straggler watchdog: one pass over the active assignments. */
    void
    watchdogLocked(Clock::time_point now)
    {
        if (opt.deadlineSeconds <= 0.0)
            return;
        for (auto &[id, a] : assignments) {
            if (!a.active)
                continue;
            double quiet =
                std::chrono::duration<double>(now - a.lastProgress)
                    .count();
            if (quiet < opt.deadlineSeconds)
                continue;
            std::vector<std::size_t> missing;
            for (std::size_t idx : a.cells)
                if (!res.completed[idx] && !cellQuarantined[idx])
                    missing.push_back(idx);
            if (missing.empty() || draining) {
                // Nothing left to rescue (or we are draining and
                // must not start new work): abandon the assignment.
                a.active = false;
                for (auto &w : workers)
                    if (w->id == a.workerId &&
                        w->assignment ==
                            static_cast<std::int64_t>(a.id))
                        w->assignment = -1;
                continue;
            }
            // One rescue per assignment: a stalled shard earns its
            // worker one strike and one speculative copy, not a new
            // strike every deadline period while it sleeps.
            if (a.speculated)
                continue;
            a.speculated = true;
            warn("coordinate: worker '", a.workerName,
                 "' is a straggler on assignment ", a.id, " (",
                 missing.size(), " cells quiet for ", quiet,
                 " s); re-dispatching speculatively");
            ++stats.speculativeDispatches;
            strikeLocked(a.workerName);
            // Speculate: the lagging range goes back in the queue
            // while the original assignment stays live -- whichever
            // copy lands first wins, the other is a dedup discard.
            for (std::size_t idx : missing)
                pending.push_front(idx);
        }
    }

    /** Hand pending cells to idle workers. */
    void
    dispatchLocked()
    {
        if (draining || conflict)
            return;
        Clock::time_point now = Clock::now();
        for (auto &w : workers) {
            if (pending.empty())
                return;
            if (!w->ready || w->gone || w->assignment >= 0 ||
                quarantinedNames.count(w->name))
                continue;
            std::size_t shard_size =
                opt.cellsPerShard
                    ? opt.cellsPerShard
                    : std::max<std::size_t>(1, n / 4);
            std::vector<std::size_t> cells;
            std::deque<std::size_t> deferred;
            while (!pending.empty() && cells.size() < shard_size) {
                std::size_t idx = pending.front();
                pending.pop_front();
                if (res.completed[idx] || cellQuarantined[idx])
                    continue;
                if (earliest[idx] > now) {
                    deferred.push_back(idx);
                    continue;
                }
                cells.push_back(idx);
            }
            for (std::size_t idx : deferred)
                pending.push_back(idx);
            if (cells.empty())
                return;

            ShardAssignment assign;
            assign.assignId = nextAssignId++;
            assign.campaignKey = key;
            assign.profileName = bundle->profile.name;
            assign.scale = opt.profileScale;
            assign.cells.reserve(cells.size());
            for (std::size_t idx : cells) {
                ShardCell c;
                c.index = static_cast<std::uint32_t>(idx);
                // The attempt counts every dispatch (including
                // speculative copies), so deterministic fault
                // injection keyed on (cell, attempt) fires once and
                // the rescue completes.
                c.attempt = dispatchCount[idx]++;
                c.job = (*jobs)[idx];
                assign.cells.push_back(c);
            }
            Assignment a;
            a.id = assign.assignId;
            a.workerId = w->id;
            a.workerName = w->name;
            a.cells = cells;
            a.lastProgress = now;
            a.active = true;
            if (!sendToWorker(*w, encodeShardAssign(assign))) {
                // The write failed: the reader will notice EOF and
                // recycle the cells; just put them straight back.
                for (std::size_t idx : cells)
                    pending.push_front(idx);
                continue;
            }
            ++stats.assignmentsDispatched;
            w->assignment = static_cast<std::int64_t>(a.id);
            assignments[a.id] = std::move(a);
        }
    }

    bool
    allSettledLocked() const
    {
        for (std::size_t i = 0; i < n; ++i)
            if (!res.completed[i] && !cellQuarantined[i])
                return false;
        return true;
    }

    bool
    anyActiveLocked() const
    {
        for (const auto &[id, a] : assignments)
            if (a.active)
                return true;
        return false;
    }
};

ShardCoordinator::ShardCoordinator(ShardCoordinatorOptions opt)
    : _impl(std::make_unique<Impl>())
{
    _impl->opt = std::move(opt);
}

ShardCoordinator::~ShardCoordinator()
{
    _impl->stopping.store(true, std::memory_order_release);
    if (_impl->acceptThread.joinable())
        _impl->acceptThread.join();
    for (auto &w : _impl->workers) {
        if (w->fd >= 0) {
            std::lock_guard<std::mutex> g(w->writeMu);
            w->writeShut = true;
            ::shutdown(w->fd, SHUT_RDWR);
        }
        if (w->reader.joinable())
            w->reader.join();
        if (w->fd >= 0)
            ::close(w->fd);
    }
    _impl->closeListeners();
}

Status
ShardCoordinator::bind()
{
    return _impl->bindListeners();
}

int
ShardCoordinator::tcpPort() const
{
    return _impl->boundTcpPort;
}

ShardStats
ShardCoordinator::stats() const
{
    std::lock_guard<std::mutex> g(_impl->mu);
    return _impl->stats;
}

bool
ShardCoordinator::conflictDetected() const
{
    std::lock_guard<std::mutex> g(_impl->mu);
    return _impl->conflict;
}

Result<CampaignResult>
ShardCoordinator::run(const TraceBundle &bundle,
                      const std::vector<SimJob> &jobs)
{
    Impl &im = *_impl;
    if (im.unixFd < 0 && im.tcpFd < 0) {
        Status bound = im.bindListeners();
        if (!bound)
            return bound.error();
    }

    im.bundle = &bundle;
    im.jobs = &jobs;
    im.key = campaignKey(bundle, jobs);
    im.n = jobs.size();
    im.res.summaries.resize(im.n);
    im.res.completed.assign(im.n, false);
    im.lines.resize(im.n);
    im.cellQuarantined.assign(im.n, false);
    im.lastFail.resize(im.n);
    im.failCount.assign(im.n, 0);
    im.dispatchCount.assign(im.n, 0);
    im.earliest.assign(im.n, Clock::time_point{});

    im.cellIds.resize(im.n);
    for (std::size_t i = 0; i < im.n; ++i) {
        im.cellIds[i] = shardCellId(bundle, jobs[i]);
        auto [it, fresh] = im.idToIndex.emplace(im.cellIds[i], i);
        if (!fresh)
            return makeError(ErrorKind::Bounds, "cells ", it->second,
                             " and ", i,
                             " have identical content (the grid has "
                             "duplicate jobs)");
    }

    // Resume: the journal IS the recovery state. Replay it, then
    // dispatch only what is missing.
    if (!im.opt.checkpoint.empty()) {
        bool append = false;
        if (im.opt.resume) {
            std::ifstream in(im.opt.checkpoint);
            if (in) {
                Result<JournalContents> loaded =
                    tryLoadJournal(in, im.opt.checkpoint);
                if (!loaded)
                    return loaded.error();
                const JournalContents &j = loaded.value();
                if (j.key != im.key)
                    return makeErrorAt(
                        ErrorKind::Mismatch, im.opt.checkpoint, 2,
                        "checkpoint belongs to a different campaign "
                        "(key ",
                        j.key, ", this campaign is ", im.key, ")");
                if (j.cells != im.n)
                    return makeErrorAt(
                        ErrorKind::Mismatch, im.opt.checkpoint, 2,
                        "checkpoint cell count ", j.cells,
                        " does not match this campaign (", im.n,
                        " cells)");
                for (std::size_t i = 0; i < im.n; ++i) {
                    if (!j.present[i])
                        continue;
                    im.res.completed[i] = true;
                    im.res.summaries[i] = j.summaries[i];
                    im.lines[i] = j.lines[i];
                    ++im.res.restored;
                }
                append = true;
            }
        }
        im.journal.open(im.opt.checkpoint,
                        append ? std::ios::app : std::ios::trunc);
        if (!im.journal)
            return makeError(ErrorKind::Io,
                             "cannot open checkpoint journal for "
                             "writing: ",
                             im.opt.checkpoint);
        if (!append) {
            im.journal << "vrc-campaign-checkpoint v1\nkey " << im.key
                       << " cells " << im.n << "\n";
            im.journal.flush();
        }
    }

    for (std::size_t i = 0; i < im.n; ++i)
        if (!im.res.completed[i])
            im.pending.push_back(i);

    im.acceptThread = std::thread([&im] { im.acceptLoop(); });

    {
        std::unique_lock<std::mutex> lk(im.mu);
        for (;;) {
            if (im.conflict)
                break;
            im.draining = shutdownRequested() > 0;
            if (im.allSettledLocked())
                break;
            if (im.draining && !im.anyActiveLocked())
                break;
            im.watchdogLocked(Clock::now());
            im.dispatchLocked();
            im.cv.wait_for(lk, std::chrono::milliseconds(50));
        }
    }

    // Teardown: stop accepting, wave goodbye, join the readers.
    im.stopping.store(true, std::memory_order_release);
    if (im.acceptThread.joinable())
        im.acceptThread.join();
    for (auto &w : im.workers) {
        im.sendToWorker(*w, encodeBye());
        {
            std::lock_guard<std::mutex> g(w->writeMu);
            w->writeShut = true;
            ::shutdown(w->fd, SHUT_RDWR);
        }
        if (w->reader.joinable())
            w->reader.join();
        ::close(w->fd);
        w->fd = -1;
    }
    im.closeListeners();

    std::lock_guard<std::mutex> g(im.mu);
    if (im.conflict) {
        if (im.journal.is_open())
            im.journal.close();
        return im.conflictError;
    }

    im.res.interrupted = shutdownRequested() > 0;
    for (std::size_t i = 0; i < im.n; ++i)
        if (im.cellQuarantined[i] && !im.res.completed[i])
            im.res.quarantined.push_back(im.lastFail[i]);
    std::sort(im.res.quarantined.begin(), im.res.quarantined.end(),
              [](const CellFailure &a, const CellFailure &b) {
                  return a.index < b.index;
              });

    // Same canonicalization contract as CampaignRunner::run(): a
    // finished run's journal depends only on what completed.
    if (im.journal.is_open()) {
        im.journal.close();
        if (!im.res.interrupted) {
            JournalContents canon;
            canon.key = im.key;
            canon.cells = im.n;
            canon.present = im.res.completed;
            canon.lines = im.lines;
            Status rewrote = writeFileAtomic(
                im.opt.checkpoint, canonicalJournalText(canon));
            if (!rewrote)
                warn("cannot canonicalize checkpoint journal ",
                     im.opt.checkpoint, ": ",
                     rewrote.error().message);
        }
    }

    if (!im.opt.manifest.empty()) {
        Status wrote = writeFileAtomic(
            im.opt.manifest, failureManifestToJson(im.res) + "\n");
        if (!wrote)
            warn("cannot write failure manifest ", im.opt.manifest,
                 ": ", wrote.error().message);
    }
    return im.res;
}

// ---- worker ---------------------------------------------------------

namespace
{

/** Injected stall length (compiled-out builds never stall). */
double
shardStallSeconds()
{
#ifdef VRC_FAULTS_ENABLED
    return faultConfig().stallSeconds;
#else
    return 0.0;
#endif
}

/** Per-assignment heartbeat pump. */
struct HeartbeatPump
{
    ServeClient &client;
    std::mutex &sendMu;
    std::uint64_t assignId;
    double period;
    std::atomic<bool> stop{false};
    std::atomic<bool> pause{false};
    std::atomic<std::uint32_t> cellsDone{0};
    std::thread th;

    HeartbeatPump(ServeClient &c, std::mutex &m, std::uint64_t id,
                  double p)
        : client(c), sendMu(m), assignId(id), period(p)
    {
        th = std::thread([this] { pump(); });
    }

    ~HeartbeatPump()
    {
        stop.store(true, std::memory_order_release);
        th.join();
    }

    void
    pump()
    {
        double slept = period; // heartbeat immediately on start
        while (!stop.load(std::memory_order_acquire)) {
            if (slept >= period) {
                slept = 0.0;
                if (!pause.load(std::memory_order_acquire)) {
                    std::lock_guard<std::mutex> g(sendMu);
                    Status sent = client.send(encodeHeartbeat(
                        HeartbeatMsg{assignId,
                                     cellsDone.load()}));
                    if (!sent)
                        return; // coordinator is gone; cell send
                                // will notice too
                }
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
            slept += 0.02;
        }
    }
};

} // namespace

Result<ShardWorkerStats>
runShardWorker(const ShardWorkerOptions &opt)
{
    ServeClient client;
    if (!opt.connectUnix.empty()) {
        Status c = client.connectUnix(opt.connectUnix);
        if (!c)
            return c.error();
    } else if (opt.connectTcp >= 0) {
        Status c = client.connectTcp(opt.connectTcp);
        if (!c)
            return c.error();
    } else {
        return makeError(ErrorKind::Io,
                         "shard-worker: no coordinator address "
                         "(need --connect-unix or --connect-tcp)");
    }

    std::mutex sendMu;
    {
        std::lock_guard<std::mutex> g(sendMu);
        Status h = client.hello(opt.name);
        if (!h)
            return h.error();
    }

    ShardWorkerStats stats;

    // Workers regenerate traces locally: deterministic generation
    // means the bytes never need to cross the wire. Cache by
    // (profile, exact scale bits) across assignments.
    std::map<std::pair<std::string, std::uint64_t>, TraceBundle>
        bundles;
    auto bundleFor = [&](const std::string &profile,
                         double scale) -> const TraceBundle & {
        std::uint64_t bits;
        std::memcpy(&bits, &scale, sizeof(bits));
        auto key = std::make_pair(profile, bits);
        auto it = bundles.find(key);
        if (it == bundles.end())
            it = bundles
                     .emplace(key, generateTrace(scaled(
                                       profileByName(profile), scale)))
                     .first;
        return it->second;
    };

    for (;;) {
        Result<Frame> fr = client.readFrame(opt.idleTimeoutSeconds);
        if (!fr) {
            // EOF is the coordinator's normal teardown; an idle
            // timeout means it silently died. Either way, stop
            // cleanly -- the coordinator's books are authoritative.
            return stats;
        }
        Frame f = fr.take();
        switch (f.type) {
          case FrameType::Bye:
          case FrameType::Draining:
          case FrameType::Quarantined:
            return stats;
          case FrameType::ShardAssign:
            break;
          default:
            return makeError(ErrorKind::Format,
                             "unexpected ", frameTypeName(f.type),
                             " frame from the coordinator");
        }

        Result<ShardAssignment> ar = decodeShardAssign(f.payload);
        if (!ar)
            return ar.error();
        ShardAssignment assign = ar.take();
        ++stats.assignments;

        ShardDoneReply done;
        done.assignId = assign.assignId;

        if (assign.profileName != "pops" &&
            assign.profileName != "thor" &&
            assign.profileName != "abaqus") {
            for (const ShardCell &cell : assign.cells)
                done.failures.push_back(
                    {cell.index, ErrorKind::Bounds,
                     "unknown workload profile '" +
                         assign.profileName + "'"});
            std::lock_guard<std::mutex> g(sendMu);
            Status sent = client.send(encodeShardDone(done));
            if (!sent)
                return stats;
            continue;
        }
        const TraceBundle &bundle =
            bundleFor(assign.profileName, assign.scale);

        HeartbeatPump hb(client, sendMu, assign.assignId,
                         opt.heartbeatSeconds);
        for (const ShardCell &cell : assign.cells) {
            ShardFaultKind fault =
                maybeInjectShardFault(cell.index, cell.attempt);
            if (fault == ShardFaultKind::Crash) {
                warn("shard-worker '", opt.name,
                     "': injected crash before cell ", cell.index);
                std::_Exit(137);
            }
            if (fault == ShardFaultKind::Stall) {
                // Freeze: mute the heartbeats and sleep through the
                // coordinator's deadline, then wake and carry on --
                // the classic straggler. Our late results arrive as
                // dedup discards.
                warn("shard-worker '", opt.name,
                     "': injected stall before cell ", cell.index);
                hb.pause.store(true, std::memory_order_release);
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(
                        shardStallSeconds()));
                hb.pause.store(false, std::memory_order_release);
            }
            try {
                CancelToken token;
                SimSummary s = runSimulationCancellable(
                    bundle, cell.job, token);
                std::string line =
                    encodeSummaryLine(cell.index, s);
                std::string frame = encodeCellResult(CellResultReply{
                    assign.assignId, cell.index, line});
                if (fault == ShardFaultKind::Tear) {
                    warn("shard-worker '", opt.name,
                         "': injected reply tear on cell ",
                         cell.index);
                    std::lock_guard<std::mutex> g(sendMu);
                    [[maybe_unused]] Status torn = client.send(
                        frame.substr(0, frame.size() / 2));
                    std::_Exit(141);
                }
                {
                    std::lock_guard<std::mutex> g(sendMu);
                    Status sent = client.send(frame);
                    if (!sent)
                        return stats;
                }
                ++done.completed;
                hb.cellsDone.fetch_add(1);
                ++stats.cellsRun;
            } catch (const ErrorException &e) {
                done.failures.push_back({cell.index, e.err().kind,
                                         e.err().message});
                ++stats.cellsFailed;
            } catch (const std::exception &e) {
                done.failures.push_back(
                    {cell.index, ErrorKind::Worker, e.what()});
                ++stats.cellsFailed;
            }
        }
        std::lock_guard<std::mutex> g(sendMu);
        Status sent = client.send(encodeShardDone(done));
        if (!sent)
            return stats;
    }
}

} // namespace vrc
