#include "sim/mp_sim.hh"

#include <algorithm>

#include "base/log.hh"
#include "trace/generator.hh"
#include "trace/trace_stream.hh"

namespace vrc
{

MpSimulator::MpSimulator(const MachineConfig &config,
                         const WorkloadProfile &profile)
    : _config(config),
      _spaces(profile.pageSize, config.physPages)
{
    panicIfNot(config.hierarchy.pageSize == profile.pageSize,
               "hierarchy/profile page size mismatch");
    setupAddressSpaces(profile, _spaces);
    _cpuClock.assign(profile.numCpus, 0.0);
    for (CpuId c = 0; c < profile.numCpus; ++c) {
        _cpus.push_back(
            makeHierarchy(config.kind, config.hierarchy, _spaces, _bus));
        panicIfNot(_cpus.back()->cpuId() == c,
                   "bus assigned an unexpected CPU id");
    }
}

void
MpSimulator::step(const TraceRecord &r)
{
    panicIfNot(r.cpu < _cpus.size(), "trace references an unknown CPU");
    CacheHierarchy &h = *_cpus[r.cpu];
    if (r.type == RefType::ContextSwitch) {
        h.contextSwitch(r.pid);
        return;
    }
    AccessOutcome outcome = h.access(MemAccess{r.type, r.va(), r.pid});
    double cost = 0.0;
    switch (outcome) {
      case AccessOutcome::L1Hit:
        cost = _config.timing.effectiveT1();
        break;
      case AccessOutcome::L2Hit:
      case AccessOutcome::SynonymHit:
        cost = _config.timing.t2;
        break;
      case AccessOutcome::Miss:
        cost = _config.timing.tm;
        break;
    }
    _cycles += cost;
    if (_config.busTiming.enabled) {
        _cpuClock[r.cpu] += cost;
        chargeBusTransactions(r.cpu);
    }
    ++_refs;
    if (_config.invariantPeriod != 0 &&
        _refs % _config.invariantPeriod == 0) {
        h.checkInvariants();
    }
}

void
MpSimulator::run(const std::vector<TraceRecord> &records)
{
    for (const TraceRecord &r : records)
        step(r);
}

void
MpSimulator::run(TraceStream &stream)
{
    // Streaming replay: records are consumed as they are produced, so
    // the multi-million-reference traces never exist in memory at once.
    TraceRecord r;
    while (stream.next(r))
        step(r);
}

double
MpSimulator::h1() const
{
    std::uint64_t refs = totalCounter("refs");
    std::uint64_t hits = totalCounter("l1_hits");
    return refs ? static_cast<double>(hits) / static_cast<double>(refs)
                : 0.0;
}

double
MpSimulator::h2() const
{
    std::uint64_t refs = totalCounter("refs");
    std::uint64_t hits = totalCounter("l1_hits");
    std::uint64_t l2 =
        totalCounter("l2_hits") + totalCounter("synonym_hits");
    std::uint64_t miss1 = refs - hits;
    return miss1 ? static_cast<double>(l2) / static_cast<double>(miss1)
                 : 0.0;
}

double
MpSimulator::h1ForType(RefType t) const
{
    // Keys are fixed: build them once, not per call.
    static const std::string ref_keys[3] = {"refs_instr", "refs_read",
                                            "refs_write"};
    static const std::string hit_keys[3] = {
        "l1_hits_instr", "l1_hits_read", "l1_hits_write"};
    std::uint64_t refs = totalCounter(ref_keys[static_cast<int>(t)]);
    std::uint64_t hits = totalCounter(hit_keys[static_cast<int>(t)]);
    return refs ? static_cast<double>(hits) / static_cast<double>(refs)
                : 0.0;
}

std::uint64_t
MpSimulator::totalCounter(const std::string &name) const
{
    std::uint64_t total = 0;
    for (const auto &cpu : _cpus)
        total += cpu->stats().value(name);
    return total;
}

void
MpSimulator::remapPage(ProcessId pid, Vpn vpn, Ppn new_ppn)
{
    auto old_pa = _spaces.tryTranslate(
        pid, makeVirtAddr(vpn, 0, _spaces.pageSize()));
    if (old_pa) {
        // Reclaim the old frame: flush dirty data and invalidate every
        // cached copy through the coherent physical level. The
        // transactions come from a system agent (no attached snooper),
        // so every hierarchy responds. invalidCpu never collides with a
        // bus id -- _cpus.size() would be the next attached agent's id,
        // e.g. a DMA device.
        std::uint32_t line = _config.hierarchy.l2.blockBytes;
        std::uint32_t base = old_pa->value();
        for (std::uint32_t off = 0; off < _spaces.pageSize();
             off += line) {
            _bus.broadcast(BusTransaction{
                BusOp::ReadModWrite, PhysAddr(base + off), invalidCpu});
        }
    }
    for (auto &cpu : _cpus)
        cpu->tlbShootdown(pid, vpn);
    _spaces.pageTable(pid).map(vpn, new_ppn);
}

void
MpSimulator::resetStats()
{
    for (auto &cpu : _cpus)
        cpu->resetStats();
    _bus.resetStats();
    _refs = 0;
    _cycles = 0.0;
    _cpuClock.assign(_cpuClock.size(), 0.0);
    _busFree = 0.0;
    _busBusy = 0.0;
    _busWait = 0.0;
    _lastOpCounts = {};
}

void
MpSimulator::chargeBusTransactions(CpuId cpu)
{
    // Compare per-operation bus counters against the last snapshot and
    // charge the requester queueing delay plus service time for each
    // transaction issued during this step.
    const BusTimingParams &bt = _config.busTiming;
    const double service[4] = {
        bt.readMissService, bt.invalidateService,
        bt.readMissService + bt.invalidateService, bt.updateService};

    double &clk = _cpuClock[cpu];
    for (int i = 0; i < 4; ++i) {
        std::uint64_t now = _bus.opCount(static_cast<BusOp>(i));
        for (std::uint64_t k = _lastOpCounts[i]; k < now; ++k) {
            double start = std::max(clk, _busFree);
            _busWait += start - clk;
            clk = start + service[i];
            _busFree = clk;
            _busBusy += service[i];
        }
        _lastOpCounts[i] = now;
    }
}

double
MpSimulator::busUtilization() const
{
    double horizon = 0.0;
    for (double c : _cpuClock)
        horizon = std::max(horizon, c);
    return horizon > 0.0 ? _busBusy / horizon : 0.0;
}

void
MpSimulator::checkInvariants() const
{
    for (const auto &cpu : _cpus)
        cpu->checkInvariants();
}

} // namespace vrc
