#include "sim/mp_sim.hh"

#include <algorithm>
#include <array>

#include "base/log.hh"
#include "core/rr_hierarchy.hh"
#include "core/vr_hierarchy.hh"
#include "trace/generator.hh"
#include "trace/trace_stream.hh"

namespace vrc
{

namespace
{

/** Records decoded per streaming batch (64 KiB of TraceRecords). */
constexpr std::size_t kStreamBatch = 4096;

} // namespace

MpSimulator::MpSimulator(const MachineConfig &config,
                         const WorkloadProfile &profile)
    : _config(config),
      _spaces(profile.pageSize, config.physPages)
{
    panicIfNot(config.hierarchy.pageSize == profile.pageSize,
               "hierarchy/profile page size mismatch");
    setupAddressSpaces(profile, _spaces);
    for (CpuId c = 0; c < profile.numCpus; ++c) {
        _cpus.push_back(
            makeHierarchy(config.kind, config.hierarchy, _spaces, _bus));
        panicIfNot(_cpus.back()->cpuId() == c,
                   "bus assigned an unexpected CPU id");
        // Resolve the per-outcome level costs once: the composition is
        // a pure function of the organization and the timing params.
        std::array<Tick, 4> costs{};
        for (int o = 0; o < 4; ++o) {
            costs[o] = _cpus.back()->levelCost(
                static_cast<AccessOutcome>(o), config.timing);
        }
        _costs.push_back(costs);
    }
    if (config.timingMode == TimingMode::Cycle) {
        _clocks.resize(profile.numCpus);
        _arbiter = std::make_unique<BusArbiter>(config.busTiming);
        _bus.setArbiter(_arbiter.get());
    }
}

void
MpSimulator::step(const TraceRecord &r)
{
    panicIfNot(r.cpu < _cpus.size(), "trace references an unknown CPU");
    CacheHierarchy &h = *_cpus[r.cpu];
    if (r.type == RefType::ContextSwitch) {
        h.contextSwitch(r.pid);
        // A switch issues no reference, but any transactions it did
        // queue (none today) must not leak into the next reference.
        if (_arbiter)
            _arbiter->drain(_clocks);
        return;
    }
    AccessOutcome outcome = h.access(MemAccess{r.type, r.va(), r.pid});
    Tick cost = _costs[r.cpu][static_cast<int>(outcome)];
    _cycles += cost;
    if (_arbiter) {
        // Cycle engine: the reference advances its CPU's clock by the
        // composed level cost, then every bus transaction it issued
        // (posted to the arbiter by SharedBus during access(),
        // including soft-error retransmissions) wins the bus in grant
        // order, stalling this CPU for queueing delay plus service.
        _clocks[r.cpu].chargeAccess(cost);
        _arbiter->drain(_clocks);
    }
    ++_refs;
    if (_config.invariantPeriod != 0 &&
        _refs % _config.invariantPeriod == 0) {
        h.checkInvariants();
    }
}

template <typename H>
void
MpSimulator::stepOn(H &h, const TraceRecord &r)
{
    // Mirrors step() exactly, with the hierarchy calls devirtualized:
    // h's dynamic type is H (hierarchy classes are final), so the
    // compiler emits direct calls it can inline into the replay loop.
    if (r.type == RefType::ContextSwitch) {
        h.H::contextSwitch(r.pid);
        if (_arbiter)
            _arbiter->drain(_clocks);
        return;
    }
    AccessOutcome outcome = h.H::access(MemAccess{r.type, r.va(), r.pid});
    Tick cost = _costs[r.cpu][static_cast<int>(outcome)];
    _cycles += cost;
    if (_arbiter) {
        _clocks[r.cpu].chargeAccess(cost);
        _arbiter->drain(_clocks);
    }
    ++_refs;
    if (_config.invariantPeriod != 0 &&
        _refs % _config.invariantPeriod == 0) {
        h.H::checkInvariants();
    }
}

template <typename H>
void
MpSimulator::replayTyped(const TraceRecord *records, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const TraceRecord &r = records[i];
        panicIfNot(r.cpu < _cpus.size(),
                   "trace references an unknown CPU");
        stepOn(static_cast<H &>(*_cpus[r.cpu]), r);
    }
}

void
MpSimulator::runBatch(const TraceRecord *records, std::size_t n)
{
    switch (_config.kind) {
      case HierarchyKind::VirtualReal:
      case HierarchyKind::RealRealIncl:
      case HierarchyKind::VirtualRealRlt:
        // All three kinds are VrHierarchy instances (factory.cc).
        replayTyped<VrHierarchy>(records, n);
        return;
      case HierarchyKind::RealRealNoIncl:
        replayTyped<RrNoInclHierarchy>(records, n);
        return;
    }
    // Unknown kind (future-proofing): generic virtual replay.
    for (std::size_t i = 0; i < n; ++i)
        step(records[i]);
}

void
MpSimulator::run(const std::vector<TraceRecord> &records)
{
    runBatch(records.data(), records.size());
}

void
MpSimulator::run(TraceStream &stream)
{
    // Streaming replay: records are decoded in batches and consumed as
    // they are produced, so the multi-million-reference traces never
    // exist in memory at once and the stream's per-record indirection
    // stays off the per-reference path.
    std::array<TraceRecord, kStreamBatch> buf;
    std::size_t n;
    while ((n = stream.nextBatch(buf.data(), buf.size())) != 0)
        runBatch(buf.data(), n);
}

double
MpSimulator::h1() const
{
    std::uint64_t refs = totalCounter("refs");
    std::uint64_t hits = totalCounter("l1_hits");
    return refs ? static_cast<double>(hits) / static_cast<double>(refs)
                : 0.0;
}

double
MpSimulator::h2() const
{
    std::uint64_t refs = totalCounter("refs");
    std::uint64_t hits = totalCounter("l1_hits");
    std::uint64_t l2 =
        totalCounter("l2_hits") + totalCounter("synonym_hits");
    std::uint64_t miss1 = refs - hits;
    return miss1 ? static_cast<double>(l2) / static_cast<double>(miss1)
                 : 0.0;
}

double
MpSimulator::h1ForType(RefType t) const
{
    // Keys are fixed: build them once, not per call.
    static const std::string ref_keys[3] = {"refs_instr", "refs_read",
                                            "refs_write"};
    static const std::string hit_keys[3] = {
        "l1_hits_instr", "l1_hits_read", "l1_hits_write"};
    std::uint64_t refs = totalCounter(ref_keys[static_cast<int>(t)]);
    std::uint64_t hits = totalCounter(hit_keys[static_cast<int>(t)]);
    return refs ? static_cast<double>(hits) / static_cast<double>(refs)
                : 0.0;
}

std::uint64_t
MpSimulator::totalCounter(const std::string &name) const
{
    std::uint64_t total = 0;
    for (const auto &cpu : _cpus)
        total += cpu->stats().value(name);
    return total;
}

void
MpSimulator::remapPage(ProcessId pid, Vpn vpn, Ppn new_ppn)
{
    auto old_pa = _spaces.tryTranslate(
        pid, makeVirtAddr(vpn, 0, _spaces.pageSize()));
    if (old_pa) {
        // Reclaim the old frame: flush dirty data and invalidate every
        // cached copy through the coherent physical level. The
        // transactions come from a system agent (no attached snooper),
        // so every hierarchy responds. invalidCpu never collides with a
        // bus id -- _cpus.size() would be the next attached agent's id,
        // e.g. a DMA device.
        std::uint32_t line = _config.hierarchy.l2.blockBytes;
        std::uint32_t base = old_pa->value();
        for (std::uint32_t off = 0; off < _spaces.pageSize();
             off += line) {
            _bus.broadcast(BusTransaction{
                BusOp::ReadModWrite, PhysAddr(base + off), invalidCpu});
        }
    }
    for (auto &cpu : _cpus)
        cpu->tlbShootdown(pid, vpn);
    _spaces.pageTable(pid).map(vpn, new_ppn);
    // The flush transactions came from an unclocked system agent; they
    // occupy bus slots back-to-back at the bus-free point.
    if (_arbiter)
        _arbiter->drain(_clocks);
}

void
MpSimulator::resetStats()
{
    for (auto &cpu : _cpus)
        cpu->resetStats();
    _bus.resetStats();
    _refs = 0;
    _cycles = 0.0;
    for (CpuClock &c : _clocks)
        c.reset();
    if (_arbiter)
        _arbiter->reset();
}

double
MpSimulator::busUtilization() const
{
    if (!_arbiter)
        return 0.0;
    // Horizon: the furthest simulated instant any agent reached. The
    // bus-free point covers unclocked system transactions that may
    // extend past every CPU's clock.
    Tick horizon = _arbiter->freeAt();
    for (const CpuClock &c : _clocks)
        horizon = std::max(horizon, c.now());
    return _arbiter->utilization(horizon);
}

double
MpSimulator::avgAccessCycles() const
{
    if (!_arbiter)
        return measuredAccessTime();
    if (_refs == 0)
        return 0.0;
    Tick total = 0.0;
    for (const CpuClock &c : _clocks)
        total += c.now();
    return total / static_cast<double>(_refs);
}

void
MpSimulator::checkInvariants() const
{
    for (const auto &cpu : _cpus)
        cpu->checkInvariants();
}

} // namespace vrc
