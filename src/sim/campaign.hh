/**
 * @file
 * Fault-tolerant experiment campaigns.
 *
 * A campaign is a sweep of independent cells (one simulation each)
 * that must survive the failures a multi-hour run actually meets:
 * a killed process, a corrupt input, a cell that throws, a cell that
 * hangs. CampaignRunner layers four mechanisms over ParallelRunner:
 *
 *  - Checkpoint journal: every completed cell is appended (and
 *    flushed) to a line-oriented journal as an exact, hexfloat-coded
 *    SimSummary. A run killed at any instant -- including mid-write;
 *    a line without its terminator is discarded -- resumes with
 *    `resume = true`, replays nothing it already has, and produces
 *    bit-identical results to an uninterrupted run for any worker
 *    count. A key derived from the workload and the job list guards
 *    against resuming someone else's checkpoint.
 *  - Watchdog: each cell attempt runs under an optional wall-clock
 *    deadline. On expiry the cell's CancelToken is cancelled (the
 *    simulation loop polls it), the attempt is declared timed out,
 *    and the sweep moves on. Straggler threads are joined before
 *    run() returns, so nothing outlives the caller's data.
 *  - Bounded retry: a failing attempt is retried up to maxRetries
 *    times with exponential backoff before the cell is quarantined.
 *  - Quarantine: cells that exhaust their retries land in a failure
 *    manifest (who, how many attempts, last error, timed out or not)
 *    while every healthy cell completes; the result JSON carries the
 *    partial table plus the casualty list.
 *
 * Fault injection (base/fault.hh, -DVRC_FAULTS=ON) hooks each attempt
 * so all of the above is exercised in CI rather than trusted on faith.
 */

#ifndef VRC_SIM_CAMPAIGN_HH
#define VRC_SIM_CAMPAIGN_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "base/cancel.hh"
#include "base/error.hh"
#include "sim/experiment.hh"

namespace vrc
{

/** Resilience policy for one campaign. */
struct CampaignOptions
{
    /** Journal path; empty disables checkpointing. */
    std::string checkpoint;
    /** Load the journal and skip already-completed cells. */
    bool resume = false;
    /** Per-attempt wall-clock deadline in seconds; 0 = no watchdog. */
    double deadlineSeconds = 0.0;
    /** Retries after the first failed attempt. */
    unsigned maxRetries = 0;
    /** First retry backoff; doubles per retry. */
    double backoffSeconds = 0.05;
    /** Backoff ceiling. */
    double backoffCapSeconds = 2.0;
    /** Worker threads; 0 = ParallelRunner::defaultJobs(). */
    unsigned jobs = 0;
    /** Failure manifest path; empty = don't write one. */
    std::string manifest;
};

/** One quarantined cell in the failure manifest. */
struct CellFailure
{
    std::size_t index = 0;
    unsigned attempts = 0;   ///< attempts actually made
    bool timedOut = false;   ///< last failure was the watchdog
    ErrorKind kind = ErrorKind::Worker;
    std::string error;       ///< last failure message
};

/** Outcome of a campaign: partial results plus the casualty list. */
struct CampaignResult
{
    std::vector<SimSummary> summaries; ///< index-ordered; failed cells
                                       ///< hold default summaries
    std::vector<bool> completed;       ///< per-cell success flag
    std::vector<CellFailure> quarantined; ///< sorted by index
    std::size_t restored = 0; ///< cells restored from the checkpoint

    /**
     * A shutdown signal arrived mid-sweep: dispatching stopped, cells
     * already running finished (and were journaled), the rest were
     * left pending. A checkpointed run picks them up with resume.
     */
    bool interrupted = false;

    bool
    allOk() const
    {
        return quarantined.empty();
    }

    std::size_t
    completedCells() const
    {
        std::size_t n = 0;
        for (bool c : completed)
            n += c;
        return n;
    }
};

/**
 * The work of one cell. Runs on a worker (or watchdog) thread; must
 * poll @p token at reasonable intervals if watchdog deadlines are to
 * bite. Report failure by throwing; ErrorException keeps the
 * taxonomy kind, anything else is recorded as ErrorKind::Worker.
 */
using CampaignCellFn =
    std::function<SimSummary(std::size_t, const CancelToken &)>;

/** Checkpoint-journaling, watchdogged, retrying sweep driver. */
class CampaignRunner
{
  public:
    explicit CampaignRunner(CampaignOptions opt);

    /**
     * Run cells [0, n). @p key identifies the campaign (workload +
     * job list); a resume against a journal with a different key or
     * cell count is a Mismatch error. Io errors opening or creating
     * the journal also fail the whole run; individual cell failures
     * never do.
     */
    Result<CampaignResult> run(std::size_t n, const std::string &key,
                               const CampaignCellFn &fn) const;

  private:
    CampaignOptions _opt;
};

/** Key for a simulation campaign: workload identity + job list. */
std::string campaignKey(const TraceBundle &bundle,
                        const std::vector<SimJob> &jobs);

/**
 * Run @p jobs over @p bundle as a campaign. Cells replay through the
 * cancellation-aware simulation loop, so the watchdog can actually
 * stop one; fault injection (when armed) perturbs each attempt.
 */
Result<CampaignResult>
runSimulationCampaign(const TraceBundle &bundle,
                      const std::vector<SimJob> &jobs,
                      const CampaignOptions &opt);

/**
 * Partial-result JSON: cell count, completed count, per-cell summary
 * objects for completed cells, and the quarantine list. Deliberately
 * independent of how many cells were restored from a checkpoint, so
 * an interrupted+resumed campaign serializes bit-identically to an
 * uninterrupted one.
 */
std::string campaignResultToJson(const CampaignResult &r);

/** The failure manifest alone, as JSON. */
std::string failureManifestToJson(const CampaignResult &r);

/** Exact (hexfloat) one-line encoding of a summary, for the journal. */
std::string encodeSummaryLine(std::size_t index, const SimSummary &s);

/** Parse one journal cell line back. */
Result<std::pair<std::size_t, SimSummary>>
decodeSummaryLine(const std::string &line);

/**
 * Decoded contents of one checkpoint journal, possibly partial. The
 * verbatim cell-line bytes ride along with the decoded summaries so
 * merge tools can compare and re-emit lines without a re-encode.
 */
struct JournalContents
{
    std::string key;                  ///< campaign key from the header
    std::size_t cells = 0;            ///< grid size from the header
    std::vector<bool> present;        ///< per-cell: line seen
    std::vector<SimSummary> summaries;
    std::vector<std::string> lines;   ///< verbatim line per cell
    std::vector<std::uint64_t> firstLine; ///< 1-based line of first copy
    std::size_t torn = 0;       ///< corrupt/torn lines skipped
    std::size_t duplicates = 0; ///< byte-identical repeats tolerated

    std::size_t
    completedCells() const
    {
        std::size_t n = 0;
        for (bool p : present)
            n += p;
        return n;
    }
};

/**
 * Validating journal loader shared by resume, the shard coordinator
 * and vrc-merge. Torn tail lines (a crash mid-append) are skipped
 * with a warning; a duplicate cell line that is byte-identical to the
 * first copy is tolerated; a duplicate whose bytes DISAGREE is a hard
 * Mismatch error carrying @p context and both line numbers -- never
 * last-writer-wins.
 */
Result<JournalContents> tryLoadJournal(std::istream &in,
                                       const std::string &context);

/**
 * The canonical byte encoding of a (possibly partial) journal: header
 * plus the present cells' verbatim lines in index order. Two runs
 * that completed the same cells -- whatever the completion order,
 * worker count or shard layout -- produce identical bytes.
 */
std::string canonicalJournalText(const JournalContents &j);

} // namespace vrc

#endif // VRC_SIM_CAMPAIGN_HH
