/**
 * @file
 * Distributed sweep sharding: coordinator, worker, and journal merge.
 *
 * A campaign grid is embarrassingly parallel and deterministic per
 * cell, so scaling past one machine is "only" a distribution problem
 * -- which is to say, entirely a failure-handling problem. The
 * coordinator partitions the grid into shards, dispatches them to
 * workers over the VRCW wire layer (SHARD_ASSIGN / CELL_RESULT /
 * SHARD_DONE / HEARTBEAT frames), and appends each accepted cell line
 * to the same crash-safe checkpoint journal the single-process sweep
 * writes. The invariants:
 *
 *  - Stable cell identity: shardCellId() hashes the cell's CONTENT
 *    (workload identity + the job's knobs), never its grid index, so
 *    an id names the same work after the grid grows or is reordered.
 *    Results are deduplicated by id -- the first valid result wins
 *    and every later copy (a straggler that woke up, a speculative
 *    duplicate) is discarded, unless its bytes disagree, which is a
 *    hard conflict error.
 *  - Liveness: workers heartbeat per assignment. An assignment with
 *    no progress inside the deadline marks its worker a straggler:
 *    the missing cells are speculatively re-dispatched to someone
 *    else and the worker earns a strike (enough strikes = quarantine,
 *    like the serve layer's misbehaving clients). A worker that
 *    vanishes (EOF, torn frame, failed write) returns its unfinished
 *    cells to the pending queue under bounded retry with backoff;
 *    cells that exhaust retries are quarantined, never lost silently.
 *  - Crash recovery: the journal IS the coordinator's state. A killed
 *    coordinator restarts with --resume, replays the journal, and
 *    re-dispatches only the missing cells; the finished journal is
 *    rewritten in canonical index order, so the end state is
 *    byte-identical to an uninterrupted single-process --sweep.
 *  - Drain: SIGTERM stops new dispatch; in-flight shards finish (or
 *    hit the deadline), the manifest records "interrupted": true, and
 *    the exit path mirrors the sweep's exit-5 contract.
 *
 * vrc-merge reuses the same journal loader to validate and merge the
 * partial journals of INDEPENDENT runs (grid split by hand across
 * machines with --shard-cells ranges, or salvage after a crash): same
 * key + cell count required, torn tails tolerated, byte-identical
 * duplicates collapsed, disagreeing duplicates a hard error naming
 * both sources.
 */

#ifndef VRC_SIM_SHARD_HH
#define VRC_SIM_SHARD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/error.hh"
#include "sim/campaign.hh"
#include "sim/experiment.hh"
#include "trace/generator.hh"

namespace vrc
{

/**
 * Content-derived stable cell id: a hash of the workload identity
 * (profile name, seed, record count) and the job's full knob set.
 * Independent of the cell's position in -- or the size of -- the job
 * grid, so ids survive grid growth and reordering.
 */
std::uint64_t shardCellId(const TraceBundle &bundle, const SimJob &job);

/** True for the Mismatch errors that mean "conflicting summaries". */
bool isConflictError(const Error &e);

// ---- journal merge (vrc-merge) --------------------------------------

/** Outcome of merging N partial journals. */
struct ShardMerge
{
    JournalContents merged;  ///< canonical union of the inputs
    std::size_t inputs = 0;  ///< journals merged
    std::size_t duplicates = 0; ///< byte-identical repeats collapsed
    std::size_t torn = 0;       ///< torn/corrupt lines skipped
    std::vector<std::size_t> missing; ///< cells no input completed
};

/**
 * Merge partial journals given as (context, text) pairs. All inputs
 * must share the first input's campaign key and cell count; a cell
 * completed by several inputs must have byte-identical lines, else
 * the result is a conflict error naming both file/line locations.
 */
Result<ShardMerge>
mergeJournalTexts(const std::vector<std::pair<std::string, std::string>>
                      &inputs);

/** mergeJournalTexts() over files. */
Result<ShardMerge> mergeJournalFiles(const std::vector<std::string> &paths);

/** Merge manifest JSON (inputs, cells, completed, missing list). */
std::string mergeManifestJson(const ShardMerge &m);

// ---- coordinator ----------------------------------------------------

/** Knobs for one coordinated (sharded) campaign. */
struct ShardCoordinatorOptions
{
    std::string listenUnix; ///< unix socket path; empty = none
    int listenTcp = -1;     ///< TCP port (0 = ephemeral); -1 = none

    /**
     * The profile scale the bundle was generated with. Workers
     * regenerate the trace from (profile name, this exact double), so
     * it must match the coordinator's bundle or results will silently
     * describe a different trace.
     */
    double profileScale = 1.0;

    /** Cells per dispatched shard; 0 = auto (grid / 4, min 1). */
    std::size_t cellsPerShard = 0;

    /**
     * No-progress deadline per assignment in seconds: an assignment
     * whose worker neither heartbeats nor delivers a cell for this
     * long is a straggler (speculative re-dispatch + a strike).
     * 0 disables the watchdog.
     */
    double deadlineSeconds = 0.0;

    /** Re-dispatches after a cell's first failed dispatch. */
    unsigned maxRetries = 2;

    /** Straggler/lost strikes before a worker name is quarantined. */
    unsigned workerStrikeLimit = 3;

    /** First re-dispatch backoff; doubles per failure. */
    double backoffSeconds = 0.05;

    /** Backoff ceiling. */
    double backoffCapSeconds = 2.0;

    /** Journal path; empty disables checkpointing. */
    std::string checkpoint;

    /** Load the journal and dispatch only the missing cells. */
    bool resume = false;

    /** Failure manifest path; empty = don't write one. */
    std::string manifest;
};

/** Coordinator-side counters (tests and the CLI report). */
struct ShardStats
{
    std::uint64_t workersSeen = 0;
    std::uint64_t workersLost = 0;
    std::uint64_t workersQuarantined = 0;
    std::uint64_t assignmentsDispatched = 0;
    std::uint64_t speculativeDispatches = 0; ///< straggler re-dispatches
    std::uint64_t duplicateResults = 0;      ///< discarded by cell id
    std::uint64_t cellResults = 0;           ///< accepted journal lines
    std::uint64_t heartbeats = 0;
};

/**
 * The sharded campaign driver. bind() first (tests read tcpPort()
 * before starting workers), then run() blocks until the grid is
 * complete, quarantined out, or drained by a shutdown signal.
 */
class ShardCoordinator
{
  public:
    explicit ShardCoordinator(ShardCoordinatorOptions opt);
    ~ShardCoordinator();

    ShardCoordinator(const ShardCoordinator &) = delete;
    ShardCoordinator &operator=(const ShardCoordinator &) = delete;

    /** Create the listeners (so the address is live before run()). */
    Status bind();

    /** The bound TCP port after bind() (ephemeral ports resolved). */
    int tcpPort() const;

    /**
     * Drive @p jobs over @p bundle through the connected workers.
     * Returns the same CampaignResult a single-process sweep would,
     * with quarantined cells for work no worker could finish. A
     * conflicting duplicate result aborts the run with an error for
     * which conflictDetected() is true.
     */
    Result<CampaignResult> run(const TraceBundle &bundle,
                               const std::vector<SimJob> &jobs);

    ShardStats stats() const;

    /** True when run() failed because two results disagreed. */
    bool conflictDetected() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> _impl;
};

// ---- worker ---------------------------------------------------------

/** Knobs for one shard worker process. */
struct ShardWorkerOptions
{
    std::string connectUnix; ///< coordinator unix socket; or...
    int connectTcp = -1;     ///< ...coordinator TCP port on localhost
    std::string name = "shard-worker"; ///< stable identity (quarantine key)
    double heartbeatSeconds = 0.2;     ///< per-assignment heartbeat period
    double idleTimeoutSeconds = 600.0; ///< give up waiting for work
};

/** Worker-side counters for the CLI report. */
struct ShardWorkerStats
{
    std::uint64_t assignments = 0;
    std::uint64_t cellsRun = 0;
    std::uint64_t cellsFailed = 0;
};

/**
 * Run a worker until the coordinator says BYE/DRAINING/QUARANTINED or
 * closes the connection. Traces are regenerated locally (and cached)
 * from the assignment's profile name + scale; results stream back as
 * CELL_RESULT frames carrying the exact hexfloat journal lines.
 */
Result<ShardWorkerStats> runShardWorker(const ShardWorkerOptions &opt);

} // namespace vrc

#endif // VRC_SIM_SHARD_HH
