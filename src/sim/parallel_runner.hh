/**
 * @file
 * Deterministic fork-join helper for running independent simulations.
 *
 * The experiment tables are embarrassingly parallel: each cell is one
 * self-contained MpSimulator over a shared, read-only TraceBundle.
 * ParallelRunner::map() farms the cells out to a small thread pool and
 * writes each result into a pre-sized slot addressed by job index, so
 * the output order (and therefore every table, JSON file, and golden
 * value) is identical for any thread count, including 1.
 */

#ifndef VRC_SIM_PARALLEL_RUNNER_HH
#define VRC_SIM_PARALLEL_RUNNER_HH

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace vrc
{

/** A fork-join pool with index-ordered results. */
class ParallelRunner
{
  public:
    /** @param jobs worker count; 0 means defaultJobs(). */
    explicit ParallelRunner(unsigned jobs = 0)
        : _jobs(jobs ? jobs : defaultJobs())
    {
    }

    unsigned jobs() const { return _jobs; }

    /**
     * Invoke fn(i) for every i in [0, n), spread over the pool.
     *
     * Work is handed out through an atomic cursor, so scheduling is
     * nondeterministic but the index passed to @p fn is not. The first
     * exception thrown by any invocation is rethrown here after all
     * workers have drained.
     */
    template <typename Fn>
    void
    forEachIndex(std::size_t n, Fn &&fn) const
    {
        std::size_t workers = std::min<std::size_t>(_jobs, n);
        if (workers <= 1) {
            for (std::size_t i = 0; i < n; ++i)
                fn(i);
            return;
        }
        std::atomic<std::size_t> next{0};
        std::exception_ptr error;
        std::mutex error_mu;
        auto worker = [&] {
            for (;;) {
                std::size_t i = next.fetch_add(1);
                if (i >= n)
                    return;
                try {
                    fn(i);
                } catch (...) {
                    std::lock_guard<std::mutex> g(error_mu);
                    if (!error)
                        error = std::current_exception();
                    return;
                }
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t t = 0; t < workers; ++t)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
        if (error)
            std::rethrow_exception(error);
    }

    /**
     * Compute fn(i) for every i in [0, n) and return the results in
     * index order, independent of the worker count.
     */
    template <typename Fn>
    auto
    map(std::size_t n, Fn &&fn) const
        -> std::vector<decltype(fn(std::size_t{0}))>
    {
        std::vector<decltype(fn(std::size_t{0}))> out(n);
        forEachIndex(n, [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

    /**
     * Worker count used when a runner is built with jobs == 0: the
     * --jobs/setDefaultJobs override if set, else the VRC_JOBS
     * environment variable, else the hardware thread count.
     */
    static unsigned defaultJobs();

    /** Process-wide override for defaultJobs() (0 clears it). */
    static void setDefaultJobs(unsigned jobs);

  private:
    unsigned _jobs;
};

} // namespace vrc

#endif // VRC_SIM_PARALLEL_RUNNER_HH
