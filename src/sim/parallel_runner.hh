/**
 * @file
 * Deterministic fork-join helper for running independent simulations.
 *
 * The experiment tables are embarrassingly parallel: each cell is one
 * self-contained MpSimulator over a shared, read-only TraceBundle.
 * ParallelRunner::map() farms the cells out to a small thread pool and
 * writes each result into a pre-sized slot addressed by job index, so
 * the output order (and therefore every table, JSON file, and golden
 * value) is identical for any thread count, including 1.
 */

#ifndef VRC_SIM_PARALLEL_RUNNER_HH
#define VRC_SIM_PARALLEL_RUNNER_HH

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace vrc
{

/** One failed job: which index threw, and what it threw. */
struct JobFailure
{
    std::size_t index = 0;
    std::string message;          ///< what() of the thrown exception
    std::exception_ptr exception; ///< the original exception
};

/**
 * Thrown by ParallelRunner::forEachIndex() after all jobs have
 * drained when at least one of them threw. Carries *every* failure
 * (sorted by job index), so a campaign sees the full casualty list,
 * not just whichever worker lost the race to the error slot.
 */
class ParallelJobError : public std::runtime_error
{
  public:
    explicit ParallelJobError(std::vector<JobFailure> failures)
        : std::runtime_error(describe(failures)),
          _failures(std::move(failures))
    {
    }

    const std::vector<JobFailure> &failures() const
    {
        return _failures;
    }

  private:
    static std::string
    describe(const std::vector<JobFailure> &failures)
    {
        std::ostringstream os;
        os << failures.size() << " parallel job"
           << (failures.size() == 1 ? "" : "s") << " failed;";
        for (const JobFailure &f : failures)
            os << " [job " << f.index << ": " << f.message << "]";
        return os.str();
    }

    std::vector<JobFailure> _failures;
};

/** A fork-join pool with index-ordered results. */
class ParallelRunner
{
  public:
    /** @param jobs worker count; 0 means defaultJobs(). */
    explicit ParallelRunner(unsigned jobs = 0)
        : _jobs(jobs ? jobs : defaultJobs())
    {
    }

    unsigned jobs() const { return _jobs; }

    /**
     * Invoke fn(i) for every i in [0, n), spread over the pool.
     *
     * Work is handed out through an atomic cursor, so scheduling is
     * nondeterministic but the index passed to @p fn is not. A
     * throwing invocation does not stop the sweep: every remaining
     * index still runs, and once all work has drained the collected
     * failures -- each tagged with its job index -- are rethrown
     * together as a ParallelJobError. This holds for any worker
     * count, including the inline single-worker path.
     */
    template <typename Fn>
    void
    forEachIndex(std::size_t n, Fn &&fn) const
    {
        std::vector<JobFailure> failures;
        std::size_t workers = std::min<std::size_t>(_jobs, n);
        if (workers <= 1) {
            for (std::size_t i = 0; i < n; ++i)
                runOne(fn, i, failures);
        } else {
            std::atomic<std::size_t> next{0};
            std::mutex mu;
            auto worker = [&] {
                std::vector<JobFailure> local;
                for (;;) {
                    std::size_t i = next.fetch_add(1);
                    if (i >= n)
                        break;
                    runOne(fn, i, local);
                }
                if (!local.empty()) {
                    std::lock_guard<std::mutex> g(mu);
                    for (JobFailure &f : local)
                        failures.push_back(std::move(f));
                }
            };
            std::vector<std::thread> pool;
            pool.reserve(workers);
            for (std::size_t t = 0; t < workers; ++t)
                pool.emplace_back(worker);
            for (auto &t : pool)
                t.join();
        }
        if (!failures.empty()) {
            std::sort(failures.begin(), failures.end(),
                      [](const JobFailure &a, const JobFailure &b) {
                          return a.index < b.index;
                      });
            throw ParallelJobError(std::move(failures));
        }
    }

    /**
     * Compute fn(i) for every i in [0, n) and return the results in
     * index order, independent of the worker count.
     */
    template <typename Fn>
    auto
    map(std::size_t n, Fn &&fn) const
        -> std::vector<decltype(fn(std::size_t{0}))>
    {
        std::vector<decltype(fn(std::size_t{0}))> out(n);
        forEachIndex(n, [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

    /**
     * Worker count used when a runner is built with jobs == 0: the
     * --jobs/setDefaultJobs override if set, else the VRC_JOBS
     * environment variable, else the hardware thread count.
     */
    static unsigned defaultJobs();

    /** Process-wide override for defaultJobs() (0 clears it). */
    static void setDefaultJobs(unsigned jobs);

  private:
    /** Run one index, converting a throw into a recorded failure. */
    template <typename Fn>
    static void
    runOne(Fn &fn, std::size_t i, std::vector<JobFailure> &failures)
    {
        try {
            fn(i);
        } catch (const std::exception &e) {
            failures.push_back(
                {i, e.what(), std::current_exception()});
        } catch (...) {
            failures.push_back(
                {i, "unknown exception", std::current_exception()});
        }
    }

    unsigned _jobs;
};

} // namespace vrc

#endif // VRC_SIM_PARALLEL_RUNNER_HH
