#include "sim/campaign.hh"

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "base/atomic_file.hh"
#include "base/fault.hh"
#include "base/log.hh"
#include "base/shutdown.hh"
#include "sim/json_stats.hh"
#include "sim/parallel_runner.hh"

namespace vrc
{

namespace
{

constexpr const char *journalMagicLine = "vrc-campaign-checkpoint v1";

std::uint64_t
fnv1a(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h = (h ^ (v & 0xFF)) * 0x100000001b3ull;
        v >>= 8;
    }
    return h;
}

std::uint64_t
fnv1a(std::uint64_t h, const std::string &s)
{
    for (char c : s)
        h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ull;
    return h;
}

bool
parseU64(const std::string &tok, std::uint64_t &out)
{
    char *end = nullptr;
    out = std::strtoull(tok.c_str(), &end, 10);
    return end && *end == '\0' && !tok.empty();
}

bool
parseDouble(const std::string &tok, double &out)
{
    char *end = nullptr;
    out = std::strtod(tok.c_str(), &end); // accepts hexfloat
    return end && *end == '\0' && !tok.empty();
}

std::string
jsonEscape(const std::string &s)
{
    std::ostringstream os;
    for (char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                os << ' ';
            else
                os << c;
        }
    }
    return os.str();
}

/** Outcome of one cell attempt. */
struct AttemptOutcome
{
    bool ok = false;
    bool timedOut = false;
    ErrorKind kind = ErrorKind::Worker;
    SimSummary summary;
    std::string error;
};

/** Shared state between a watchdogged attempt thread and its waiter. */
struct AttemptState
{
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    AttemptOutcome out;
    CancelToken token;
};

/** Invoke the cell body, mapping every throw onto the taxonomy. */
template <typename Invoke>
AttemptOutcome
invokeGuarded(Invoke &&invoke, const CancelToken &token)
{
    AttemptOutcome out;
    try {
        out.summary = invoke(token);
        out.ok = true;
    } catch (const ErrorException &e) {
        out.kind = e.err().kind;
        out.error = e.err().message;
    } catch (const std::exception &e) {
        out.kind = ErrorKind::Worker;
        out.error = e.what();
    } catch (...) {
        out.kind = ErrorKind::Worker;
        out.error = "unknown exception";
    }
    return out;
}

} // namespace

std::string
encodeSummaryLine(std::size_t index, const SimSummary &s)
{
    std::ostringstream os;
    os << "cell " << index << ' '
       << static_cast<unsigned>(s.kind) << ' ' << s.l1Size << ' '
       << s.l2Size << ' ' << (s.split ? 1 : 0) << ' ' << std::hexfloat
       << s.h1 << ' ' << s.h2 << ' ' << s.h1Instr << ' ' << s.h1Read
       << ' ' << s.h1Write << ' ';
    if (s.l1MsgsPerCpu.empty()) {
        os << '-';
    } else {
        for (std::size_t i = 0; i < s.l1MsgsPerCpu.size(); ++i)
            os << (i ? "," : "") << s.l1MsgsPerCpu[i];
    }
    os << ' ' << s.inclusionInvalidations << ' ' << s.synonymHits
       << ' ' << s.synonymMoves << ' ' << s.writebackCancels << ' '
       << s.swappedWritebacks << ' ' << s.writeBufferStalls << ' '
       << s.busTransactions << ' ' << s.memoryWrites << ' ' << s.refs
       << ' ' << static_cast<unsigned>(s.timingMode) << ' '
       << std::hexfloat << s.avgAccessTime << ' ' << s.avgAccessCycles
       << ' ' << s.busUtilization << ' ' << s.avgBusWait << " end";
    return os.str();
}

Result<std::pair<std::size_t, SimSummary>>
decodeSummaryLine(const std::string &line)
{
    std::istringstream is(line);
    std::vector<std::string> tok;
    std::string t;
    while (is >> t)
        tok.push_back(t);
    if (tok.size() != 27 || tok.front() != "cell" ||
        tok.back() != "end")
        return makeError(ErrorKind::Parse,
                         "malformed checkpoint cell line");

    std::uint64_t idx, kind, l1, l2, split;
    if (!parseU64(tok[1], idx) || !parseU64(tok[2], kind) ||
        !parseU64(tok[3], l1) || !parseU64(tok[4], l2) ||
        !parseU64(tok[5], split) || kind >= kHierarchyKindCount ||
        split > 1)
        return makeError(ErrorKind::Parse,
                         "malformed checkpoint cell geometry");

    SimSummary s;
    s.kind = static_cast<HierarchyKind>(kind);
    s.l1Size = static_cast<std::uint32_t>(l1);
    s.l2Size = static_cast<std::uint32_t>(l2);
    s.split = split != 0;

    double *doubles[] = {&s.h1, &s.h2, &s.h1Instr, &s.h1Read,
                         &s.h1Write};
    for (std::size_t i = 0; i < 5; ++i)
        if (!parseDouble(tok[6 + i], *doubles[i]))
            return makeError(ErrorKind::Parse,
                             "malformed checkpoint hit ratio '",
                             tok[6 + i], "'");

    if (tok[11] != "-") {
        std::istringstream ms(tok[11]);
        std::string item;
        while (std::getline(ms, item, ',')) {
            std::uint64_t v;
            if (!parseU64(item, v))
                return makeError(ErrorKind::Parse,
                                 "malformed checkpoint message list");
            s.l1MsgsPerCpu.push_back(v);
        }
    }

    std::uint64_t *counts[] = {
        &s.inclusionInvalidations, &s.synonymHits, &s.synonymMoves,
        &s.writebackCancels, &s.swappedWritebacks,
        &s.writeBufferStalls, &s.busTransactions, &s.memoryWrites,
        &s.refs};
    for (std::size_t i = 0; i < 9; ++i)
        if (!parseU64(tok[12 + i], *counts[i]))
            return makeError(ErrorKind::Parse,
                             "malformed checkpoint counter '",
                             tok[12 + i], "'");

    std::uint64_t timing_mode;
    if (!parseU64(tok[21], timing_mode) || timing_mode > 1)
        return makeError(ErrorKind::Parse,
                         "malformed checkpoint timing mode");
    s.timingMode = static_cast<TimingMode>(timing_mode);
    double *timing_doubles[] = {&s.avgAccessTime, &s.avgAccessCycles,
                                &s.busUtilization, &s.avgBusWait};
    for (std::size_t i = 0; i < 4; ++i)
        if (!parseDouble(tok[22 + i], *timing_doubles[i]))
            return makeError(ErrorKind::Parse,
                             "malformed checkpoint timing field '",
                             tok[22 + i], "'");

    return std::make_pair(static_cast<std::size_t>(idx), s);
}

std::string
campaignKey(const TraceBundle &bundle, const std::vector<SimJob> &jobs)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    h = fnv1a(h, bundle.profile.name);
    h = fnv1a(h, bundle.profile.seed);
    h = fnv1a(h, bundle.records.size());
    for (const SimJob &j : jobs) {
        h = fnv1a(h, static_cast<std::uint64_t>(j.kind));
        h = fnv1a(h, j.l1Size);
        h = fnv1a(h, j.l2Size);
        h = fnv1a(h, j.split ? 1 : 0);
        h = fnv1a(h, j.invariantPeriod);
        h = fnv1a(h, static_cast<std::uint64_t>(j.timingMode));
    }
    std::ostringstream os;
    os << std::hex << h;
    return os.str();
}

CampaignRunner::CampaignRunner(CampaignOptions opt)
    : _opt(std::move(opt))
{
}

Result<JournalContents>
tryLoadJournal(std::istream &in, const std::string &context)
{
    JournalContents j;
    std::string line;
    if (!std::getline(in, line) || line != journalMagicLine)
        return makeErrorAt(ErrorKind::Mismatch, context, 1,
                           "not a vrc campaign checkpoint journal");
    std::uint64_t lineno = 1;
    if (!std::getline(in, line))
        return makeErrorAt(ErrorKind::Mismatch, context, 2,
                           "checkpoint journal missing its key line");
    ++lineno;
    {
        std::istringstream ls(line);
        std::string kw1, kw2;
        std::uint64_t cells = 0;
        if (!(ls >> kw1 >> j.key >> kw2 >> cells) || kw1 != "key" ||
            kw2 != "cells")
            return makeErrorAt(ErrorKind::Mismatch, context, 2,
                               "malformed checkpoint key line");
        if (cells > (std::uint64_t{1} << 24))
            return makeErrorAt(ErrorKind::Bounds, context, 2,
                               "implausible checkpoint cell count ",
                               cells);
        j.cells = static_cast<std::size_t>(cells);
    }
    j.present.assign(j.cells, false);
    j.summaries.resize(j.cells);
    j.lines.resize(j.cells);
    j.firstLine.assign(j.cells, 0);
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        Result<std::pair<std::size_t, SimSummary>> cell =
            decodeSummaryLine(line);
        if (!cell) {
            // Expected after a SIGKILL mid-append: the torn tail line
            // simply does not count as completed work.
            warn("ignoring corrupt checkpoint line ", lineno, " in ",
                 context, " (", cell.error().message, ")");
            ++j.torn;
            continue;
        }
        auto [idx, s] = cell.take();
        if (idx >= j.cells) {
            warn("ignoring out-of-range checkpoint cell ", idx,
                 " in ", context);
            ++j.torn;
            continue;
        }
        if (j.present[idx]) {
            if (j.lines[idx] == line) {
                ++j.duplicates;
                continue;
            }
            // Two summaries for the same cell that disagree: one of
            // them is wrong, and guessing (last-writer-wins) would
            // silently corrupt the merged table. Hard error, both
            // locations named.
            return makeErrorAt(
                ErrorKind::Mismatch, context, lineno,
                "conflicting summaries for cell ", idx,
                " (disagrees with line ", j.firstLine[idx],
                " of the same journal)");
        }
        j.present[idx] = true;
        j.summaries[idx] = s;
        j.lines[idx] = line;
        j.firstLine[idx] = lineno;
    }
    return j;
}

std::string
canonicalJournalText(const JournalContents &j)
{
    std::ostringstream os;
    os << journalMagicLine << "\nkey " << j.key << " cells "
       << j.cells << "\n";
    for (std::size_t i = 0; i < j.cells; ++i)
        if (j.present[i])
            os << j.lines[i] << "\n";
    return os.str();
}

namespace
{

/** Restore completed cells from an existing journal. */
Status
parseJournal(std::istream &in, const std::string &path,
             const std::string &key, std::size_t n,
             CampaignResult &res)
{
    Result<JournalContents> loaded = tryLoadJournal(in, path);
    if (!loaded)
        return loaded.error();
    const JournalContents &j = loaded.value();
    if (j.key != key)
        return makeErrorAt(
            ErrorKind::Mismatch, path, 2,
            "checkpoint belongs to a different campaign (key ",
            j.key, ", this campaign is ", key, ")");
    if (j.cells != n)
        return makeErrorAt(
            ErrorKind::Mismatch, path, 2,
            "checkpoint cell count ", j.cells,
            " does not match this campaign (", n, " cells)");
    for (std::size_t i = 0; i < n; ++i) {
        if (!j.present[i])
            continue;
        res.completed[i] = true;
        res.summaries[i] = j.summaries[i];
        ++res.restored;
    }
    return okStatus();
}

} // namespace

Result<CampaignResult>
CampaignRunner::run(std::size_t n, const std::string &key,
                    const CampaignCellFn &fn) const
{
    CampaignResult res;
    res.summaries.resize(n);
    res.completed.assign(n, false);

    std::ofstream journal;
    if (!_opt.checkpoint.empty()) {
        bool append = false;
        if (_opt.resume) {
            std::ifstream in(_opt.checkpoint);
            if (in) {
                Status loaded =
                    parseJournal(in, _opt.checkpoint, key, n, res);
                if (!loaded)
                    return loaded.error();
                append = true;
            }
        }
        journal.open(_opt.checkpoint,
                     append ? std::ios::app : std::ios::trunc);
        if (!journal)
            return makeError(ErrorKind::Io,
                             "cannot open checkpoint journal for "
                             "writing: ",
                             _opt.checkpoint);
        if (!append) {
            journal << journalMagicLine << "\nkey " << key
                    << " cells " << n << "\n";
            journal.flush();
        }
    }

    std::vector<std::size_t> pending;
    for (std::size_t i = 0; i < n; ++i)
        if (!res.completed[i])
            pending.push_back(i);

    std::mutex mu; // journal, quarantine list, stragglers
    std::vector<std::thread> stragglers;

    // One attempt of one cell, under the watchdog when configured.
    auto attempt = [&](std::size_t idx,
                       unsigned attempt_no) -> AttemptOutcome {
        auto invoke = [&fn, idx,
                       attempt_no](const CancelToken &tok) {
            maybeInjectCellFault(idx, attempt_no, tok);
            return fn(idx, tok);
        };
        if (_opt.deadlineSeconds <= 0.0) {
            CancelToken token;
            return invokeGuarded(invoke, token);
        }
        auto st = std::make_shared<AttemptState>();
        std::thread th([st, invoke] {
            AttemptOutcome out = invokeGuarded(invoke, st->token);
            {
                std::lock_guard<std::mutex> g(st->mu);
                st->out = std::move(out);
                st->done = true;
            }
            st->cv.notify_all();
        });
        std::unique_lock<std::mutex> lk(st->mu);
        bool finished = st->cv.wait_for(
            lk, std::chrono::duration<double>(_opt.deadlineSeconds),
            [&] { return st->done; });
        if (finished) {
            lk.unlock();
            th.join();
            return st->out;
        }
        // Watchdog: ask the cell to stop and move on; the straggler
        // thread is joined before run() returns so it cannot outlive
        // the caller's data.
        st->token.cancel();
        lk.unlock();
        {
            std::lock_guard<std::mutex> g(mu);
            stragglers.push_back(std::move(th));
        }
        AttemptOutcome out;
        out.timedOut = true;
        out.kind = ErrorKind::Timeout;
        std::ostringstream os;
        os << "watchdog: deadline of " << _opt.deadlineSeconds
           << " s exceeded";
        out.error = os.str();
        return out;
    };

    ParallelRunner pool(_opt.jobs);
    pool.forEachIndex(pending.size(), [&](std::size_t pi) {
        // Graceful interruption: after the first SIGINT/SIGTERM no
        // new cell starts; cells already replaying finish (and are
        // journaled) so a resume loses nothing.
        if (shutdownRequested() > 0)
            return;
        std::size_t idx = pending[pi];
        CellFailure fail;
        fail.index = idx;
        for (unsigned a = 0;; ++a) {
            fail.attempts = a + 1;
            AttemptOutcome out = attempt(idx, a);
            if (out.ok) {
                std::lock_guard<std::mutex> g(mu);
                res.summaries[idx] = std::move(out.summary);
                res.completed[idx] = true;
                if (journal.is_open()) {
                    journal << encodeSummaryLine(idx,
                                                 res.summaries[idx])
                            << "\n";
                    journal.flush();
                }
                return;
            }
            fail.timedOut = out.timedOut;
            fail.kind = out.kind;
            fail.error = out.error;
            if (a >= _opt.maxRetries)
                break;
            double backoff = _opt.backoffSeconds *
                             static_cast<double>(
                                 std::uint64_t{1} << std::min(a, 20u));
            backoff = std::min(backoff, _opt.backoffCapSeconds);
            warn("cell ", idx, " attempt ", a + 1, " failed (",
                 fail.error, "); retrying in ", backoff, " s");
            std::this_thread::sleep_for(
                std::chrono::duration<double>(backoff));
        }
        warn("cell ", idx, " quarantined after ", fail.attempts,
             " attempt", fail.attempts == 1 ? "" : "s", ": ",
             fail.error);
        std::lock_guard<std::mutex> g(mu);
        res.quarantined.push_back(fail);
    });

    for (std::thread &t : stragglers)
        t.join();

    std::sort(res.quarantined.begin(), res.quarantined.end(),
              [](const CellFailure &a, const CellFailure &b) {
                  return a.index < b.index;
              });

    res.interrupted = shutdownRequested() > 0;

    // A finished (non-interrupted) run rewrites its journal in
    // canonical form: header + completed cells in index order. The
    // append-ordered journal depends on worker scheduling; the
    // canonical bytes depend only on WHAT completed, so any two runs
    // of the same grid -- sharded, resumed, or straight through --
    // end with byte-identical journals. writeFileAtomic keeps the
    // crash-safety story: a kill mid-rewrite leaves the old journal.
    if (journal.is_open() && !res.interrupted) {
        journal.close();
        JournalContents canon;
        canon.key = key;
        canon.cells = n;
        canon.present = res.completed;
        canon.lines.resize(n);
        for (std::size_t i = 0; i < n; ++i)
            if (res.completed[i])
                canon.lines[i] =
                    encodeSummaryLine(i, res.summaries[i]);
        Status rewrote = writeFileAtomic(_opt.checkpoint,
                                         canonicalJournalText(canon));
        if (!rewrote)
            warn("cannot canonicalize checkpoint journal ",
                 _opt.checkpoint, ": ", rewrote.error().message);
    }

    if (!_opt.manifest.empty()) {
        Status wrote = writeFileAtomic(
            _opt.manifest, failureManifestToJson(res) + "\n");
        if (!wrote)
            warn("cannot write failure manifest ", _opt.manifest,
                 ": ", wrote.error().message);
    }
    return res;
}

Result<CampaignResult>
runSimulationCampaign(const TraceBundle &bundle,
                      const std::vector<SimJob> &jobs,
                      const CampaignOptions &opt)
{
    CampaignRunner runner(opt);
    return runner.run(
        jobs.size(), campaignKey(bundle, jobs),
        [&](std::size_t i, const CancelToken &token) {
            return runSimulationCancellable(bundle, jobs[i], token);
        });
}

std::string
failureManifestToJson(const CampaignResult &r)
{
    std::ostringstream os;
    os << "{\"cells\":" << r.completed.size()
       << ",\"completed\":" << r.completedCells()
       << ",\"interrupted\":" << (r.interrupted ? "true" : "false")
       << ",\"quarantined\":[";
    for (std::size_t i = 0; i < r.quarantined.size(); ++i) {
        const CellFailure &f = r.quarantined[i];
        os << (i ? "," : "") << "{\"cell\":" << f.index
           << ",\"attempts\":" << f.attempts << ",\"timed_out\":"
           << (f.timedOut ? "true" : "false") << ",\"kind\":\""
           << errorKindName(f.kind) << "\",\"error\":\""
           << jsonEscape(f.error) << "\"}";
    }
    os << "]}";
    return os.str();
}

std::string
campaignResultToJson(const CampaignResult &r)
{
    std::ostringstream os;
    os << "{\"cells\":" << r.completed.size()
       << ",\"completed\":" << r.completedCells()
       << ",\"results\":[";
    bool first = true;
    for (std::size_t i = 0; i < r.completed.size(); ++i) {
        if (!r.completed[i])
            continue;
        if (!first)
            os << ",";
        first = false;
        os << "{\"cell\":" << i
           << ",\"summary\":" << toJson(r.summaries[i]) << "}";
    }
    os << "],\"quarantined\":[";
    for (std::size_t i = 0; i < r.quarantined.size(); ++i) {
        const CellFailure &f = r.quarantined[i];
        os << (i ? "," : "") << "{\"cell\":" << f.index
           << ",\"attempts\":" << f.attempts << ",\"timed_out\":"
           << (f.timedOut ? "true" : "false") << ",\"error\":\""
           << jsonEscape(f.error) << "\"}";
    }
    os << "]}";
    return os.str();
}

} // namespace vrc
