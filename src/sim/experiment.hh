/**
 * @file
 * Experiment helpers: run one simulation and summarize the counters the
 * paper's tables report. Shared by the bench binaries and the
 * integration tests.
 */

#ifndef VRC_SIM_EXPERIMENT_HH
#define VRC_SIM_EXPERIMENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/cancel.hh"
#include "base/error.hh"
#include "sim/mp_sim.hh"
#include "trace/generator.hh"

namespace vrc
{

/** Everything the paper's tables need from one simulation run. */
struct SimSummary
{
    HierarchyKind kind = HierarchyKind::VirtualReal;
    std::uint32_t l1Size = 0;
    std::uint32_t l2Size = 0;
    bool split = false;

    double h1 = 0.0;       ///< level-1 hit ratio
    double h2 = 0.0;       ///< local level-2 hit ratio
    double h1Instr = 0.0;
    double h1Read = 0.0;
    double h1Write = 0.0;

    std::vector<std::uint64_t> l1MsgsPerCpu; ///< Tables 11-13 columns
    std::uint64_t inclusionInvalidations = 0;
    std::uint64_t synonymHits = 0;
    std::uint64_t synonymMoves = 0;
    std::uint64_t writebackCancels = 0;
    std::uint64_t swappedWritebacks = 0;
    std::uint64_t writeBufferStalls = 0;
    std::uint64_t busTransactions = 0;
    std::uint64_t memoryWrites = 0;
    std::uint64_t refs = 0;

    // --- timing engine (core/clock.hh) -------------------------------

    /** Timing engine the cell ran under. */
    TimingMode timingMode = TimingMode::Analytic;

    /** Measured per-reference level cost (both engines). */
    double avgAccessTime = 0.0;

    /** Cycle engine only (zero under the analytic model): */
    double avgAccessCycles = 0.0;  ///< per-ref latency incl. bus
    double busUtilization = 0.0;   ///< bus busy fraction of horizon
    double avgBusWait = 0.0;       ///< per-ref bus queueing delay
};

/** Default machine configuration for a size pair and organization. */
MachineConfig makeMachineConfig(HierarchyKind kind, std::uint32_t l1_size,
                                std::uint32_t l2_size,
                                std::uint32_t page_size, bool split = false);

/**
 * Run one full simulation of @p bundle on the given organization and
 * sizes and collect the summary.
 *
 * @param invariant_period when nonzero, checkInvariants() runs every
 *                         that many references (slow; tests only)
 */
SimSummary runSimulation(const TraceBundle &bundle, HierarchyKind kind,
                         std::uint32_t l1_size, std::uint32_t l2_size,
                         bool split = false,
                         std::uint64_t invariant_period = 0,
                         TimingMode timing_mode = TimingMode::Analytic);

/** One cell of an experiment table: a config to simulate. */
struct SimJob
{
    HierarchyKind kind = HierarchyKind::VirtualReal;
    std::uint32_t l1Size = 0;
    std::uint32_t l2Size = 0;
    bool split = false;
    std::uint64_t invariantPeriod = 0;

    /** Timing engine for this cell (functional results identical). */
    TimingMode timingMode = TimingMode::Analytic;
};

/** runSimulation() spelled with a SimJob (all knobs, incl. timing). */
SimSummary runSimulationJob(const TraceBundle &bundle, const SimJob &job);

/** Collect the table-facing counters from a finished simulator. */
SimSummary summarizeSimulation(const MpSimulator &sim,
                               const SimJob &job);

/**
 * runSimulation() with a cooperative cancellation point every few
 * thousand records: when the watchdog cancels @p token mid-replay,
 * the run unwinds with an ErrorException of kind Cancelled instead of
 * burning the rest of the trace. Used by the campaign engine.
 */
SimSummary runSimulationCancellable(const TraceBundle &bundle,
                                    const SimJob &job,
                                    const CancelToken &token);

/**
 * Run every job against @p bundle, possibly concurrently, and return
 * the summaries in job order. Each job gets its own MpSimulator; the
 * bundle is shared read-only, so results are bit-identical for any
 * thread count.
 *
 * @param threads worker count; 0 means ParallelRunner::defaultJobs()
 */
std::vector<SimSummary> runSimulations(const TraceBundle &bundle,
                                       const std::vector<SimJob> &jobs,
                                       unsigned threads = 0);

/** The paper's three large size pairs (Table 6, 8-13). */
std::vector<std::pair<std::uint32_t, std::uint32_t>> paperSizePairs();

/** The paper's three small size pairs (Table 7). */
std::vector<std::pair<std::uint32_t, std::uint32_t>> smallSizePairs();

/**
 * Resolve the trace-length scale factor for bench binaries: 1.0 by
 * default, smaller when --quick is passed or VRC_QUICK is set in the
 * environment.
 */
double benchScaleFromArgs(int argc, char **argv, double quick = 0.05);

} // namespace vrc

#endif // VRC_SIM_EXPERIMENT_HH
