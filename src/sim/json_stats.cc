#include "sim/json_stats.hh"

#include <iomanip>
#include <sstream>

namespace vrc
{

namespace
{

void
field(std::ostringstream &os, const char *name, double v, bool &first)
{
    if (!first)
        os << ",";
    first = false;
    os << "\"" << name << "\":" << std::setprecision(10) << v;
}

void
field(std::ostringstream &os, const char *name, std::uint64_t v,
      bool &first)
{
    if (!first)
        os << ",";
    first = false;
    os << "\"" << name << "\":" << v;
}

void
field(std::ostringstream &os, const char *name, const std::string &v,
      bool &first)
{
    if (!first)
        os << ",";
    first = false;
    os << "\"" << name << "\":\"" << v << "\"";
}

} // namespace

std::string
toJson(const SimSummary &s)
{
    std::ostringstream os;
    bool first = true;
    os << "{";
    field(os, "kind", hierarchyKindName(s.kind), first);
    field(os, "l1_size", std::uint64_t{s.l1Size}, first);
    field(os, "l2_size", std::uint64_t{s.l2Size}, first);
    field(os, "split", std::uint64_t{s.split ? 1u : 0u}, first);
    field(os, "h1", s.h1, first);
    field(os, "h2", s.h2, first);
    field(os, "h1_instr", s.h1Instr, first);
    field(os, "h1_read", s.h1Read, first);
    field(os, "h1_write", s.h1Write, first);
    field(os, "refs", s.refs, first);
    field(os, "synonym_hits", s.synonymHits, first);
    field(os, "synonym_moves", s.synonymMoves, first);
    field(os, "writeback_cancels", s.writebackCancels, first);
    field(os, "swapped_writebacks", s.swappedWritebacks, first);
    field(os, "inclusion_invalidations", s.inclusionInvalidations,
          first);
    field(os, "bus_transactions", s.busTransactions, first);
    field(os, "memory_writes", s.memoryWrites, first);
    field(os, "timing_mode", timingModeName(s.timingMode), first);
    field(os, "avg_access_time", s.avgAccessTime, first);
    field(os, "avg_access_cycles", s.avgAccessCycles, first);
    field(os, "bus_utilization", s.busUtilization, first);
    field(os, "avg_bus_wait", s.avgBusWait, first);
    if (!first)
        os << ",";
    os << "\"l1_msgs_per_cpu\":[";
    for (std::size_t i = 0; i < s.l1MsgsPerCpu.size(); ++i) {
        if (i)
            os << ",";
        os << s.l1MsgsPerCpu[i];
    }
    os << "]}";
    return os.str();
}

std::string
toJson(const MpSimulator &sim)
{
    std::ostringstream os;
    os << "{";
    bool first = true;
    field(os, "kind", hierarchyKindName(sim.config().kind), first);
    field(os, "cpus", std::uint64_t{sim.cpuCount()}, first);
    field(os, "refs", sim.refsProcessed(), first);
    field(os, "h1", sim.h1(), first);
    field(os, "h2", sim.h2(), first);
    field(os, "bus_transactions", sim.bus().transactions(), first);
    field(os, "timing_mode", timingModeName(sim.timingMode()), first);
    field(os, "avg_access_time", sim.measuredAccessTime(), first);
    field(os, "avg_access_cycles", sim.avgAccessCycles(), first);
    field(os, "bus_utilization", sim.busUtilization(), first);
    field(os, "avg_bus_wait", sim.avgBusWait(), first);
    field(os, "bus_busy_ticks", sim.busBusyTime(), first);
    field(os, "bus_wait_ticks", sim.busWaitTime(), first);
    os << ",\"bus\":{";
    bool bfirst = true;
    for (const auto &[key, ctr] : sim.bus().stats().all())
        field(os, key.c_str(), ctr.value(), bfirst);
    os << "},\"per_cpu\":[";
    for (CpuId c = 0; c < sim.cpuCount(); ++c) {
        if (c)
            os << ",";
        os << "{";
        bool cfirst = true;
        for (const auto &[key, ctr] : sim.hierarchy(c).stats().all())
            field(os, key.c_str(), ctr.value(), cfirst);
        os << "}";
    }
    os << "]}";
    return os.str();
}

} // namespace vrc
