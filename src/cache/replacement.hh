/**
 * @file
 * Replacement policy selection for TagStore.
 *
 * The policy picks a victim way within one set. LRU and FIFO are driven
 * by per-line stamps maintained by the tag store; Random draws from a
 * deterministic per-store Rng.
 */

#ifndef VRC_CACHE_REPLACEMENT_HH
#define VRC_CACHE_REPLACEMENT_HH

#include <cstdint>
#include <string>

namespace vrc
{

/** Available replacement policies. */
enum class ReplPolicy : std::uint8_t
{
    LRU,    ///< least recently used (stamp updated on every touch)
    FIFO,   ///< oldest insertion (stamp updated on fill only)
    Random  ///< uniformly random valid way
};

/** Printable policy name. */
inline const char *
replPolicyName(ReplPolicy p)
{
    switch (p) {
      case ReplPolicy::LRU:
        return "LRU";
      case ReplPolicy::FIFO:
        return "FIFO";
      case ReplPolicy::Random:
        return "Random";
    }
    return "?";
}

/** Parse a policy name; returns LRU for unknown strings. */
inline ReplPolicy
replPolicyFromName(const std::string &s)
{
    if (s == "FIFO" || s == "fifo")
        return ReplPolicy::FIFO;
    if (s == "Random" || s == "random")
        return ReplPolicy::Random;
    return ReplPolicy::LRU;
}

} // namespace vrc

#endif // VRC_CACHE_REPLACEMENT_HH
