/**
 * @file
 * Array-protection policies for tag/state/pointer arrays.
 *
 * A soft error (particle strike) flips bits in an SRAM array. What the
 * hardware *sees* depends on the check bits stored next to the data:
 *
 *   none    - no check bits: every strike is silent data corruption.
 *   parity  - one parity bit per entry: an odd number of flipped bits
 *             is detected (never corrected); an even number aliases to
 *             a valid codeword and stays silent.
 *   SECDED  - single-error-correct, double-error-detect ECC: one flip
 *             is corrected in place, two are detected, three or more
 *             can alias and stay silent.
 *
 * The TagStore applies a policy to everything it holds per line -- tag
 * bits, valid/state bits and the Meta payload (r-pointers, inclusion
 * subentries) -- and keeps per-array outcome counters. What happens
 * *after* detection (refetch, machine check) is the owning hierarchy's
 * recovery protocol, not the array's concern.
 */

#ifndef VRC_CACHE_PROTECTION_HH
#define VRC_CACHE_PROTECTION_HH

#include <cstdint>
#include <optional>
#include <string>

namespace vrc
{

/** Check-bit scheme protecting one tag/state array. */
enum class ArrayProtection : std::uint8_t
{
    None,    ///< no check bits: strikes are silent
    Parity,  ///< detect odd-bit errors
    Secded   ///< correct 1-bit, detect 2-bit errors
};

/** Printable policy name. */
inline const char *
arrayProtectionName(ArrayProtection p)
{
    switch (p) {
      case ArrayProtection::None:
        return "none";
      case ArrayProtection::Parity:
        return "parity";
      case ArrayProtection::Secded:
        return "secded";
    }
    return "?";
}

/** Parse a policy name ("none"/"parity"/"secded", case-sensitive). */
inline std::optional<ArrayProtection>
parseArrayProtection(const std::string &name)
{
    if (name == "none")
        return ArrayProtection::None;
    if (name == "parity")
        return ArrayProtection::Parity;
    if (name == "secded" || name == "SECDED")
        return ArrayProtection::Secded;
    return std::nullopt;
}

/** What the array logic reported for one absorbed strike. */
enum class FaultOutcome : std::uint8_t
{
    Silent,    ///< undetected corruption (SDC window)
    Corrected, ///< fixed in place by ECC; no recovery needed
    Detected   ///< flagged uncorrectable-by-the-array; owner must recover
};

/** Per-array soft-error outcome counters (plain values, not stats). */
struct ArrayFaultStats
{
    std::uint64_t silent = 0;
    std::uint64_t corrected = 0;
    std::uint64_t detected = 0;
    std::uint64_t uncorrectable = 0; ///< detected faults the owner could
                                     ///< not recover (machine checks)
};

/** Classify a strike of @p flips flipped bits under policy @p p. */
inline FaultOutcome
classifyArrayFault(ArrayProtection p, unsigned flips)
{
    switch (p) {
      case ArrayProtection::None:
        return FaultOutcome::Silent;
      case ArrayProtection::Parity:
        return (flips % 2 == 1) ? FaultOutcome::Detected
                                : FaultOutcome::Silent;
      case ArrayProtection::Secded:
        if (flips == 1)
            return FaultOutcome::Corrected;
        if (flips == 2)
            return FaultOutcome::Detected;
        return FaultOutcome::Silent;
    }
    return FaultOutcome::Silent;
}

} // namespace vrc

#endif // VRC_CACHE_PROTECTION_HH
