/**
 * @file
 * The original array-of-structures tag store, retained as a reference
 * model for differential testing (see reference_mode.hh).
 *
 * This is the seed implementation verbatim -- per-line structs in one
 * vector, early-exit first-match lookup, value-reassignment payload
 * reset -- re-skinned to hand out the same TagLineView<Meta> views as
 * the SoA engine so the two are drop-in interchangeable behind
 * TagStore. Rng consumption (one below() draw per eligible way under
 * Random replacement) matches the SoA engine draw for draw; the
 * soa_equivalence_test relies on that to assert bit-identical counters.
 *
 * Do not optimize this file: its value is being the simple, obviously
 * correct model the fast engine is diffed against.
 */

#ifndef VRC_CACHE_TAG_STORE_LEGACY_HH
#define VRC_CACHE_TAG_STORE_LEGACY_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "base/rng.hh"
#include "cache/cache_geometry.hh"
#include "cache/protection.hh"
#include "cache/replacement.hh"

namespace vrc
{

struct LineRef;
template <typename Meta>
struct TagLineView;

/** The seed's array-of-structures tag store (reference model). */
template <typename Meta>
class LegacyTagStore
{
  public:
    using Line = TagLineView<Meta>;

    /** One cache line: tag bits, recency stamp and the owner's payload. */
    struct Cell
    {
        std::uint8_t valid = 0;
        std::uint32_t tag = 0;
        std::uint64_t stamp = 0;
        Meta meta{};
    };

    LegacyTagStore(const CacheGeometry &geom, ReplPolicy policy,
                   std::uint64_t seed = 0x5eed)
        : _geom(geom), _policy(policy), _rng(seed),
          _lines(geom.numBlocks())
    {
    }

    const CacheGeometry &geometry() const { return _geom; }
    ReplPolicy policy() const { return _policy; }

    Line
    line(LineRef ref)
    {
        Cell &c = cell(ref);
        return Line{c.valid, c.tag, c.stamp, c.meta};
    }

    Line
    line(LineRef ref) const
    {
        return const_cast<LegacyTagStore *>(this)->line(ref);
    }

    std::optional<LineRef>
    find(std::uint32_t addr) const
    {
        std::uint32_t set = _geom.setIndex(addr);
        std::uint32_t tag = _geom.tag(addr);
        for (std::uint32_t w = 0; w < _geom.assoc(); ++w) {
            const Cell &c = _lines[set * _geom.assoc() + w];
            if (c.valid && c.tag == tag)
                return LineRef{set, w};
        }
        return std::nullopt;
    }

    void
    touch(LineRef ref)
    {
        if (_policy == ReplPolicy::LRU)
            cell(ref).stamp = ++_clock;
    }

    LineRef
    victim(std::uint32_t addr)
    {
        std::uint32_t set = _geom.setIndex(addr);
        return victimWhere(set, [](const Line &) { return true; });
    }

    template <typename Pred>
    LineRef
    victimWhere(std::uint32_t set, Pred eligible)
    {
        const std::uint32_t assoc = _geom.assoc();
        // Invalid way first.
        for (std::uint32_t w = 0; w < assoc; ++w) {
            if (!_lines[set * assoc + w].valid)
                return LineRef{set, w};
        }
        // Policy choice among eligible valid ways.
        std::optional<LineRef> best = choose(set, eligible);
        if (best)
            return *best;
        // Nothing eligible: fall back to an unconditional choice.
        best = choose(set, [](const Line &) { return true; });
        return *best;
    }

    Line
    fill(LineRef ref, std::uint32_t addr)
    {
        Cell &c = cell(ref);
        c.valid = 1;
        c.tag = _geom.tag(addr);
        c.stamp = ++_clock;
        c.meta = Meta{};
        return Line{c.valid, c.tag, c.stamp, c.meta};
    }

    void
    invalidate(LineRef ref)
    {
        cell(ref).valid = 0;
    }

    void
    invalidateAll()
    {
        for (Cell &c : _lines) {
            c.valid = 0;
            c.meta = Meta{};
        }
    }

    std::uint32_t
    lineAddr(LineRef ref) const
    {
        return _geom.rebuildAddr(cell(ref).tag, ref.set);
    }

    template <typename Fn>
    void
    forEachWay(std::uint32_t set, Fn fn)
    {
        for (std::uint32_t w = 0; w < _geom.assoc(); ++w) {
            LineRef ref{set, w};
            Line view = line(ref);
            fn(ref, view);
        }
    }

    template <typename Fn>
    void
    forEachWay(std::uint32_t set, Fn fn) const
    {
        const_cast<LegacyTagStore *>(this)->forEachWay(set, fn);
    }

    template <typename Fn>
    void
    forEachLine(Fn fn)
    {
        for (std::uint32_t s = 0; s < _geom.numSets(); ++s)
            forEachWay(s, fn);
    }

    template <typename Fn>
    void
    forEachLine(Fn fn) const
    {
        for (std::uint32_t s = 0; s < _geom.numSets(); ++s)
            forEachWay(s, fn);
    }

    std::uint32_t
    validCount() const
    {
        std::uint32_t n = 0;
        for (const Cell &c : _lines)
            n += c.valid ? 1 : 0;
        return n;
    }

    // --- array protection (soft errors) ------------------------------

    ArrayProtection protection() const { return _protection; }
    void setProtection(ArrayProtection p) { _protection = p; }

    FaultOutcome
    absorbFault(unsigned flips)
    {
        FaultOutcome out = classifyArrayFault(_protection, flips);
        switch (out) {
          case FaultOutcome::Silent:
            _faultStats.silent += 1;
            break;
          case FaultOutcome::Corrected:
            _faultStats.corrected += 1;
            break;
          case FaultOutcome::Detected:
            _faultStats.detected += 1;
            break;
        }
        return out;
    }

    void noteUncorrectable() { _faultStats.uncorrectable += 1; }

    const ArrayFaultStats &faultStats() const { return _faultStats; }

  private:
    Cell &
    cell(LineRef ref)
    {
        return _lines[ref.set * _geom.assoc() + ref.way];
    }

    const Cell &
    cell(LineRef ref) const
    {
        return _lines[ref.set * _geom.assoc() + ref.way];
    }

    /** Policy choice among eligible valid ways; nullopt if none. */
    template <typename Pred>
    std::optional<LineRef>
    choose(std::uint32_t set, Pred eligible)
    {
        const std::uint32_t assoc = _geom.assoc();
        std::optional<LineRef> best;
        std::uint32_t eligible_count = 0;
        for (std::uint32_t w = 0; w < assoc; ++w) {
            Cell &c = _lines[set * assoc + w];
            Line view{c.valid, c.tag, c.stamp, c.meta};
            if (!eligible(view))
                continue;
            ++eligible_count;
            LineRef ref{set, w};
            if (_policy == ReplPolicy::Random) {
                // Reservoir-sample one eligible way uniformly.
                if (_rng.below(eligible_count) == 0)
                    best = ref;
            } else if (!best || c.stamp < cell(*best).stamp) {
                best = ref;
            }
        }
        return best;
    }

    CacheGeometry _geom;
    ReplPolicy _policy;
    Rng _rng;
    std::uint64_t _clock = 0;
    std::vector<Cell> _lines;
    ArrayProtection _protection = ArrayProtection::Secded;
    ArrayFaultStats _faultStats;
};

} // namespace vrc

#endif // VRC_CACHE_TAG_STORE_LEGACY_HH
