/**
 * @file
 * Runtime switch selecting the legacy (reference) tag-store model.
 *
 * The SoA tag store is the production engine; the original
 * array-of-structures implementation is retained, behind the
 * VRC_REFERENCE_MODEL build option, purely as a differential-testing
 * oracle. Tests flip the process-wide flag below, construct a
 * simulator (each TagStore samples the flag once, at construction),
 * replay the same trace through both models and assert bit-identical
 * counters and event streams.
 *
 * The flag is deliberately coarse: it is not thread-safe against
 * concurrent simulator construction, and the differential test is the
 * only intended user.
 */

#ifndef VRC_CACHE_REFERENCE_MODE_HH
#define VRC_CACHE_REFERENCE_MODE_HH

namespace vrc
{

namespace detail
{
inline bool &
referenceModeFlag()
{
    static bool flag = false;
    return flag;
}
} // namespace detail

/** True when this build retains the legacy reference tag store. */
constexpr bool
referenceModelBuilt()
{
#ifdef VRC_REFERENCE_MODEL_ENABLED
    return true;
#else
    return false;
#endif
}

/** Whether tag stores constructed *from now on* use the legacy model. */
inline bool
referenceModeEnabled()
{
    return referenceModelBuilt() && detail::referenceModeFlag();
}

/**
 * Select the model for subsequently constructed tag stores. Returns
 * false (and stays on the SoA engine) when the legacy model was
 * compiled out; callers skip their differential run in that case.
 */
inline bool
setReferenceMode(bool on)
{
    if (on && !referenceModelBuilt())
        return false;
    detail::referenceModeFlag() = on;
    return true;
}

/** RAII scope guard for the differential tests. */
class ReferenceModeScope
{
  public:
    explicit ReferenceModeScope(bool on)
        : _prev(referenceModeEnabled()), _engaged(setReferenceMode(on))
    {
    }

    ~ReferenceModeScope() { setReferenceMode(_prev); }

    ReferenceModeScope(const ReferenceModeScope &) = delete;
    ReferenceModeScope &operator=(const ReferenceModeScope &) = delete;

    /** False when the legacy model is not built into this binary. */
    bool engaged() const { return _engaged; }

  private:
    bool _prev;
    bool _engaged;
};

} // namespace vrc

#endif // VRC_CACHE_REFERENCE_MODE_HH
