/**
 * @file
 * Generic set-associative tag store.
 *
 * TagStore<Meta> owns the valid/tag/recency bookkeeping of a cache and
 * attaches an arbitrary metadata payload to each line; the V-cache and
 * R-cache supply very different payloads (r-pointers versus inclusion
 * subentries) but share all of the indexing, lookup and victim-selection
 * machinery here.
 *
 * Lines are addressed as (set, way) pairs; the owner is free to iterate
 * a set and apply its own victim predicate (the R-cache's relaxed
 * inclusion replacement rule needs exactly that).
 */

#ifndef VRC_CACHE_TAG_STORE_HH
#define VRC_CACHE_TAG_STORE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "base/rng.hh"
#include "cache/cache_geometry.hh"
#include "cache/protection.hh"
#include "cache/replacement.hh"

namespace vrc
{

/** Location of a line inside a tag store. */
struct LineRef
{
    std::uint32_t set = 0;
    std::uint32_t way = 0;

    bool operator==(const LineRef &) const = default;
};

/** A set-associative array of tagged lines with Meta payloads. */
template <typename Meta>
class TagStore
{
  public:
    /** One cache line: tag bits, recency stamp and the owner's payload. */
    struct Line
    {
        bool valid = false;
        std::uint32_t tag = 0;
        std::uint64_t stamp = 0;
        Meta meta{};
    };

    TagStore(const CacheGeometry &geom, ReplPolicy policy,
             std::uint64_t seed = 0x5eed)
        : _geom(geom), _policy(policy), _rng(seed),
          _lines(geom.numBlocks())
    {
    }

    const CacheGeometry &geometry() const { return _geom; }
    ReplPolicy policy() const { return _policy; }

    /** Access a line by location. */
    Line &
    line(LineRef ref)
    {
        return _lines[ref.set * _geom.assoc() + ref.way];
    }

    const Line &
    line(LineRef ref) const
    {
        return _lines[ref.set * _geom.assoc() + ref.way];
    }

    /**
     * Find the valid line matching @p addr's tag in its set.
     *
     * @return the location, or nullopt on miss. Does not update recency;
     *         call touch() on a hit.
     */
    std::optional<LineRef>
    find(std::uint32_t addr) const
    {
        std::uint32_t set = _geom.setIndex(addr);
        std::uint32_t tag = _geom.tag(addr);
        for (std::uint32_t w = 0; w < _geom.assoc(); ++w) {
            const Line &l = _lines[set * _geom.assoc() + w];
            if (l.valid && l.tag == tag)
                return LineRef{set, w};
        }
        return std::nullopt;
    }

    /** Mark a line most-recently-used (no-op for FIFO/Random). */
    void
    touch(LineRef ref)
    {
        if (_policy == ReplPolicy::LRU)
            line(ref).stamp = ++_clock;
    }

    /**
     * Pick a victim way in the set for @p addr using the configured
     * policy. Prefers an invalid way when one exists.
     */
    LineRef
    victim(std::uint32_t addr)
    {
        std::uint32_t set = _geom.setIndex(addr);
        return victimWhere(set, [](const Line &) { return true; });
    }

    /**
     * Pick a victim among the ways of @p set satisfying @p eligible;
     * falls back to any way when none qualifies. Invalid ways always
     * win. Used by the R-cache's relaxed inclusion replacement.
     *
     * @return the chosen location.
     */
    template <typename Pred>
    LineRef
    victimWhere(std::uint32_t set, Pred eligible)
    {
        const std::uint32_t assoc = _geom.assoc();
        // Invalid way first.
        for (std::uint32_t w = 0; w < assoc; ++w) {
            if (!_lines[set * assoc + w].valid)
                return LineRef{set, w};
        }
        // Policy choice among eligible valid ways.
        std::optional<LineRef> best = choose(set, eligible);
        if (best)
            return *best;
        // Nothing eligible: fall back to an unconditional choice.
        best = choose(set, [](const Line &) { return true; });
        return *best;
    }

    /**
     * Install @p addr's tag into @p ref, overwriting the line. The
     * payload is value-initialized; the caller fills it in.
     *
     * @return reference to the fresh line.
     */
    Line &
    fill(LineRef ref, std::uint32_t addr)
    {
        Line &l = line(ref);
        l.valid = true;
        l.tag = _geom.tag(addr);
        l.stamp = ++_clock;
        l.meta = Meta{};
        return l;
    }

    /** Invalidate one line. */
    void
    invalidate(LineRef ref)
    {
        line(ref).valid = false;
    }

    /** Invalidate every line; payloads are reset. */
    void
    invalidateAll()
    {
        for (Line &l : _lines) {
            l.valid = false;
            l.meta = Meta{};
        }
    }

    /** Block-aligned address a valid line maps to. */
    std::uint32_t
    lineAddr(LineRef ref) const
    {
        return _geom.rebuildAddr(line(ref).tag, ref.set);
    }

    /** Apply @p fn(LineRef, Line&) to every way of @p set. */
    template <typename Fn>
    void
    forEachWay(std::uint32_t set, Fn fn)
    {
        for (std::uint32_t w = 0; w < _geom.assoc(); ++w) {
            LineRef ref{set, w};
            fn(ref, line(ref));
        }
    }

    /** Apply @p fn(LineRef, const Line&) to every way of @p set. */
    template <typename Fn>
    void
    forEachWay(std::uint32_t set, Fn fn) const
    {
        for (std::uint32_t w = 0; w < _geom.assoc(); ++w) {
            LineRef ref{set, w};
            fn(ref, line(ref));
        }
    }

    /** Apply @p fn(LineRef, Line&) to every line in the store. */
    template <typename Fn>
    void
    forEachLine(Fn fn)
    {
        for (std::uint32_t s = 0; s < _geom.numSets(); ++s)
            forEachWay(s, fn);
    }

    /** Apply @p fn(LineRef, const Line&) to every line in the store. */
    template <typename Fn>
    void
    forEachLine(Fn fn) const
    {
        for (std::uint32_t s = 0; s < _geom.numSets(); ++s)
            forEachWay(s, fn);
    }

    /** Count of valid lines (linear scan; for tests and stats). */
    std::uint32_t
    validCount() const
    {
        std::uint32_t n = 0;
        for (const Line &l : _lines)
            n += l.valid ? 1 : 0;
        return n;
    }

    // --- array protection (soft errors) ------------------------------

    /** Check-bit scheme covering tag, valid/state bits and Meta. */
    ArrayProtection protection() const { return _protection; }
    void setProtection(ArrayProtection p) { _protection = p; }

    /**
     * Absorb one soft-error strike of @p flips flipped bits and report
     * what the array's check logic sees under the configured policy.
     * Counts the outcome in faultStats(); the caller owns recovery.
     */
    FaultOutcome
    absorbFault(unsigned flips)
    {
        FaultOutcome out = classifyArrayFault(_protection, flips);
        switch (out) {
          case FaultOutcome::Silent:
            _faultStats.silent += 1;
            break;
          case FaultOutcome::Corrected:
            _faultStats.corrected += 1;
            break;
          case FaultOutcome::Detected:
            _faultStats.detected += 1;
            break;
        }
        return out;
    }

    /** A detected fault the owner could not recover (machine check). */
    void noteUncorrectable() { _faultStats.uncorrectable += 1; }

    /** Per-array detected/corrected/uncorrectable counters. */
    const ArrayFaultStats &faultStats() const { return _faultStats; }

  private:
    /** Policy choice among eligible valid ways; nullopt if none. */
    template <typename Pred>
    std::optional<LineRef>
    choose(std::uint32_t set, Pred eligible)
    {
        const std::uint32_t assoc = _geom.assoc();
        std::optional<LineRef> best;
        std::uint32_t eligible_count = 0;
        for (std::uint32_t w = 0; w < assoc; ++w) {
            const Line &l = _lines[set * assoc + w];
            if (!eligible(l))
                continue;
            ++eligible_count;
            LineRef ref{set, w};
            if (_policy == ReplPolicy::Random) {
                // Reservoir-sample one eligible way uniformly.
                if (_rng.below(eligible_count) == 0)
                    best = ref;
            } else if (!best || l.stamp < line(*best).stamp) {
                best = ref;
            }
        }
        return best;
    }

    CacheGeometry _geom;
    ReplPolicy _policy;
    Rng _rng;
    std::uint64_t _clock = 0;
    std::vector<Line> _lines;
    ArrayProtection _protection = ArrayProtection::Secded;
    ArrayFaultStats _faultStats;
};

} // namespace vrc

#endif // VRC_CACHE_TAG_STORE_HH
