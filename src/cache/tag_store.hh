/**
 * @file
 * Generic set-associative tag store.
 *
 * TagStore<Meta> owns the valid/tag/recency bookkeeping of a cache and
 * attaches an arbitrary metadata payload to each line; the V-cache and
 * R-cache supply very different payloads (r-pointers versus inclusion
 * subentries) but share all of the indexing, lookup and victim-selection
 * machinery here.
 *
 * Lines are addressed as (set, way) pairs; the owner is free to iterate
 * a set and apply its own victim predicate (the R-cache's relaxed
 * inclusion replacement rule needs exactly that).
 *
 * Storage is structure-of-arrays: the valid bytes, tags and recency
 * stamps live in three flat parallel arrays (optionally carved out of
 * the owning hierarchy's Arena) so the lookup inner loop touches only
 * the handful of contiguous cache lines holding one set's tags, and the
 * compiler can keep the tag-compare scan branch-free. Line is therefore
 * a *view*: a bundle of references into the arrays, cheap to copy and
 * source-compatible with the original array-of-structures layout.
 *
 * Under the VRC_REFERENCE_MODEL build option the original AoS
 * implementation (tag_store_legacy.hh) stays linked in behind a runtime
 * switch (reference_mode.hh) as a differential-testing oracle; TagStore
 * then dispatches to whichever model was selected when the store was
 * constructed. Both models consume their Rng identically, so
 * replacement decisions -- and with them every architectural counter --
 * are bit-identical across the two.
 */

#ifndef VRC_CACHE_TAG_STORE_HH
#define VRC_CACHE_TAG_STORE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "base/arena.hh"
#include "base/log.hh"
#include "base/rng.hh"
#include "cache/cache_geometry.hh"
#include "cache/protection.hh"
#include "cache/reference_mode.hh"
#include "cache/replacement.hh"

namespace vrc
{

/** Location of a line inside a tag store. */
struct LineRef
{
    std::uint32_t set = 0;
    std::uint32_t way = 0;

    bool operator==(const LineRef &) const = default;
};

/**
 * One cache line, as a view: references to the valid byte, tag bits,
 * recency stamp and the owner's payload wherever they are stored. The
 * view is cheap to copy; copies alias the same line. The const
 * overloads of line()/forEachWay()/forEachLine() hand out the same view
 * type -- read-only use on const paths is enforced by convention, as
 * the simulator's const paths (probes, invariant checks) never write.
 */
template <typename Meta>
struct TagLineView
{
    std::uint8_t &valid;
    std::uint32_t &tag;
    std::uint64_t &stamp;
    Meta &meta;
};

/**
 * Reset a payload for reuse by fill()/invalidateAll(). Prefers the
 * payload's resetForFill() when it has one (RLineMeta keeps its
 * subentry vector's capacity that way, so refills never allocate);
 * value-reassignment otherwise. Both leave the payload value-equal to a
 * freshly constructed Meta{}.
 */
template <typename Meta>
inline void
resetTagMeta(Meta &m)
{
    if constexpr (requires { m.resetForFill(); })
        m.resetForFill();
    else
        m = Meta{};
}

/** The structure-of-arrays tag store (the production engine). */
template <typename Meta>
class SoaTagStore
{
  public:
    using Line = TagLineView<Meta>;

    SoaTagStore(const CacheGeometry &geom, ReplPolicy policy,
                std::uint64_t seed = 0x5eed, Arena *arena = nullptr)
        : _geom(geom), _policy(policy), _rng(seed),
          _assoc(geom.assoc()),
          _lruMulti(policy == ReplPolicy::LRU && geom.assoc() > 1),
          _meta(geom.numBlocks())
    {
        // The lookup scan encodes validity in the tag array (kNoTag in
        // every invalid way), so a real tag must never collide with the
        // sentinel. tag() = addr >> (blockShift + setShift); any cache
        // with more than one byte-sized block keeps it below 2^32 - 1.
        panicIfNot(geom.blockBytes() > 1 || geom.numSets() > 1,
                   "degenerate geometry: tag sentinel not representable");
        const std::size_t n = geom.numBlocks();
        // One contiguous block holds all three arrays, widest first so
        // every array is naturally aligned. Both sources are zeroed:
        // value-initialized new[] or the (memset) arena.
        const std::size_t bytes =
            n * (sizeof(std::uint64_t) + sizeof(std::uint32_t) + 1);
        std::byte *base;
        if (arena) {
            base = static_cast<std::byte *>(
                arena->allocate(bytes, alignof(std::uint64_t)));
        } else {
            _owned = std::make_unique<std::byte[]>(bytes);
            base = _owned.get();
        }
        _stamp = reinterpret_cast<std::uint64_t *>(base);
        _tag = reinterpret_cast<std::uint32_t *>(_stamp + n);
        _valid = reinterpret_cast<std::uint8_t *>(_tag + n);
        for (std::size_t i = 0; i < n; ++i)
            _tag[i] = kNoTag;
    }

    const CacheGeometry &geometry() const { return _geom; }
    ReplPolicy policy() const { return _policy; }

    /** Access a line by location. */
    Line
    line(LineRef ref)
    {
        const std::size_t i = index(ref);
        return Line{_valid[i], _tag[i], _stamp[i], _meta[i]};
    }

    Line
    line(LineRef ref) const
    {
        return const_cast<SoaTagStore *>(this)->line(ref);
    }

    /**
     * Find the valid line matching @p addr's tag in its set.
     *
     * @return the location, or nullopt on miss. Does not update recency;
     *         call touch() on a hit.
     */
    std::optional<LineRef>
    find(std::uint32_t addr) const
    {
        const std::uint32_t set = _geom.setIndex(addr);
        const std::uint32_t tag = _geom.tag(addr);
        const std::uint32_t *tags = _tag + std::size_t(set) * _assoc;
        // Branch-free scan of the set's ways, over the tag array alone:
        // invalid ways hold kNoTag, which no real tag equals, so the
        // hit path touches exactly the cache lines holding this set's
        // tags. Scanning downward keeps the legacy first-match
        // (lowest-way) semantics even if an owner ever duplicates a tag
        // within a set.
        std::uint32_t hit = _assoc;
        for (std::uint32_t w = _assoc; w-- > 0;) {
            if (tags[w] == tag)
                hit = w;
        }
        if (hit == _assoc)
            return std::nullopt;
        return LineRef{set, hit};
    }

    /**
     * Mark a line most-recently-used. A no-op for FIFO/Random, and for
     * direct-mapped stores: with one way the stamps can never influence
     * a victim choice, so the store skips the write entirely.
     */
    void
    touch(LineRef ref)
    {
        if (_lruMulti)
            _stamp[index(ref)] = ++_clock;
    }

    /**
     * Pick a victim way in the set for @p addr using the configured
     * policy. Prefers an invalid way when one exists.
     */
    LineRef
    victim(std::uint32_t addr)
    {
        std::uint32_t set = _geom.setIndex(addr);
        return victimWhere(set, [](const Line &) { return true; });
    }

    /**
     * Pick a victim among the ways of @p set satisfying @p eligible;
     * falls back to any way when none qualifies. Invalid ways always
     * win. Used by the R-cache's relaxed inclusion replacement.
     *
     * @return the chosen location.
     */
    template <typename Pred>
    LineRef
    victimWhere(std::uint32_t set, Pred eligible)
    {
        const std::size_t base = std::size_t(set) * _assoc;
        // Invalid way first.
        for (std::uint32_t w = 0; w < _assoc; ++w) {
            if (!_valid[base + w])
                return LineRef{set, w};
        }
        // Policy choice among eligible valid ways.
        std::optional<LineRef> best = choose(set, eligible);
        if (best)
            return *best;
        // Nothing eligible: fall back to an unconditional choice.
        best = choose(set, [](const Line &) { return true; });
        return *best;
    }

    /**
     * Install @p addr's tag into @p ref, overwriting the line. The
     * payload is reset to a fresh value; the caller fills it in.
     *
     * @return a view of the fresh line.
     */
    Line
    fill(LineRef ref, std::uint32_t addr)
    {
        const std::size_t i = index(ref);
        _valid[i] = 1;
        _tag[i] = _geom.tag(addr);
        _stamp[i] = ++_clock;
        resetTagMeta(_meta[i]);
        return Line{_valid[i], _tag[i], _stamp[i], _meta[i]};
    }

    /** Invalidate one line. */
    void
    invalidate(LineRef ref)
    {
        const std::size_t i = index(ref);
        _valid[i] = 0;
        _tag[i] = kNoTag;
    }

    /** Invalidate every line; payloads are reset. */
    void
    invalidateAll()
    {
        const std::size_t n = _geom.numBlocks();
        for (std::size_t i = 0; i < n; ++i) {
            _valid[i] = 0;
            _tag[i] = kNoTag;
            resetTagMeta(_meta[i]);
        }
    }

    /** Block-aligned address a valid line maps to. */
    std::uint32_t
    lineAddr(LineRef ref) const
    {
        return _geom.rebuildAddr(_tag[index(ref)], ref.set);
    }

    /** Apply @p fn(LineRef, Line&) to every way of @p set. */
    template <typename Fn>
    void
    forEachWay(std::uint32_t set, Fn fn)
    {
        for (std::uint32_t w = 0; w < _assoc; ++w) {
            LineRef ref{set, w};
            Line view = line(ref);
            fn(ref, view);
        }
    }

    template <typename Fn>
    void
    forEachWay(std::uint32_t set, Fn fn) const
    {
        const_cast<SoaTagStore *>(this)->forEachWay(set, fn);
    }

    /** Apply @p fn(LineRef, Line&) to every line in the store. */
    template <typename Fn>
    void
    forEachLine(Fn fn)
    {
        for (std::uint32_t s = 0; s < _geom.numSets(); ++s)
            forEachWay(s, fn);
    }

    template <typename Fn>
    void
    forEachLine(Fn fn) const
    {
        for (std::uint32_t s = 0; s < _geom.numSets(); ++s)
            forEachWay(s, fn);
    }

    /** Count of valid lines (linear scan; for tests and stats). */
    std::uint32_t
    validCount() const
    {
        const std::size_t n = _geom.numBlocks();
        std::uint32_t count = 0;
        for (std::size_t i = 0; i < n; ++i)
            count += _valid[i] ? 1 : 0;
        return count;
    }

    // --- array protection (soft errors) ------------------------------

    /** Check-bit scheme covering tag, valid/state bits and Meta. */
    ArrayProtection protection() const { return _protection; }
    void setProtection(ArrayProtection p) { _protection = p; }

    /**
     * Absorb one soft-error strike of @p flips flipped bits and report
     * what the array's check logic sees under the configured policy.
     * Counts the outcome in faultStats(); the caller owns recovery.
     */
    FaultOutcome
    absorbFault(unsigned flips)
    {
        FaultOutcome out = classifyArrayFault(_protection, flips);
        switch (out) {
          case FaultOutcome::Silent:
            _faultStats.silent += 1;
            break;
          case FaultOutcome::Corrected:
            _faultStats.corrected += 1;
            break;
          case FaultOutcome::Detected:
            _faultStats.detected += 1;
            break;
        }
        return out;
    }

    /** A detected fault the owner could not recover (machine check). */
    void noteUncorrectable() { _faultStats.uncorrectable += 1; }

    /** Per-array detected/corrected/uncorrectable counters. */
    const ArrayFaultStats &faultStats() const { return _faultStats; }

  private:
    std::size_t
    index(LineRef ref) const
    {
        return std::size_t(ref.set) * _assoc + ref.way;
    }

    /**
     * Policy choice among eligible valid ways; nullopt if none. The
     * iteration order and Rng consumption mirror the legacy model
     * exactly (one below() draw per eligible way under Random).
     */
    template <typename Pred>
    std::optional<LineRef>
    choose(std::uint32_t set, Pred eligible)
    {
        const std::size_t base = std::size_t(set) * _assoc;
        std::optional<LineRef> best;
        std::uint64_t best_stamp = 0;
        std::uint32_t eligible_count = 0;
        for (std::uint32_t w = 0; w < _assoc; ++w) {
            const std::size_t i = base + w;
            Line l{_valid[i], _tag[i], _stamp[i], _meta[i]};
            if (!eligible(l))
                continue;
            ++eligible_count;
            LineRef ref{set, w};
            if (_policy == ReplPolicy::Random) {
                // Reservoir-sample one eligible way uniformly.
                if (_rng.below(eligible_count) == 0)
                    best = ref;
            } else if (!best || _stamp[i] < best_stamp) {
                best = ref;
                best_stamp = _stamp[i];
            }
        }
        return best;
    }

    /**
     * Tag-array value of an invalid way. Unreachable as a real tag for
     * any non-degenerate geometry (checked at construction), which lets
     * find() scan the tag array alone. The valid array remains the
     * authoritative validity bit for every other reader; fill(),
     * invalidate() and invalidateAll() keep the two in sync. (Owners
     * only ever write Line::tag on valid lines -- the V-cache synonym
     * retag -- which preserves the invariant.)
     */
    static constexpr std::uint32_t kNoTag = 0xFFFFFFFFu;

    CacheGeometry _geom;
    ReplPolicy _policy;
    Rng _rng;
    std::uint64_t _clock = 0;
    std::uint32_t _assoc;
    bool _lruMulti;  ///< stamps can matter: LRU and more than one way
    std::unique_ptr<std::byte[]> _owned; ///< backing block sans arena
    std::uint64_t *_stamp = nullptr;
    std::uint32_t *_tag = nullptr;
    std::uint8_t *_valid = nullptr;
    std::vector<Meta> _meta;
    ArrayProtection _protection = ArrayProtection::Secded;
    ArrayFaultStats _faultStats;
};

} // namespace vrc

#include "cache/tag_store_legacy.hh"

namespace vrc
{

/**
 * The tag store the rest of the simulator uses: the SoA engine, plus --
 * in VRC_REFERENCE_MODEL builds -- per-call dispatch to the retained
 * legacy model when reference mode was enabled at construction time.
 * In regular builds legacyActive() folds to false and every method
 * compiles down to the bare SoA call.
 */
template <typename Meta>
class TagStore
{
  public:
    using Line = TagLineView<Meta>;

    TagStore(const CacheGeometry &geom, ReplPolicy policy,
             std::uint64_t seed = 0x5eed, Arena *arena = nullptr)
        : _soa(geom, policy, seed, arena)
    {
        if (referenceModeEnabled())
            _legacy =
                std::make_unique<LegacyTagStore<Meta>>(geom, policy, seed);
    }

    const CacheGeometry &geometry() const { return _soa.geometry(); }
    ReplPolicy policy() const { return _soa.policy(); }

    /** True when this store was constructed onto the legacy model. */
    bool
    legacyActive() const
    {
        if constexpr (referenceModelBuilt())
            return _legacy != nullptr;
        else
            return false;
    }

    Line
    line(LineRef ref)
    {
        if (legacyActive())
            return _legacy->line(ref);
        return _soa.line(ref);
    }

    Line
    line(LineRef ref) const
    {
        if (legacyActive())
            return _legacy->line(ref);
        return _soa.line(ref);
    }

    std::optional<LineRef>
    find(std::uint32_t addr) const
    {
        if (legacyActive())
            return _legacy->find(addr);
        return _soa.find(addr);
    }

    void
    touch(LineRef ref)
    {
        if (legacyActive())
            return _legacy->touch(ref);
        _soa.touch(ref);
    }

    LineRef
    victim(std::uint32_t addr)
    {
        if (legacyActive())
            return _legacy->victim(addr);
        return _soa.victim(addr);
    }

    template <typename Pred>
    LineRef
    victimWhere(std::uint32_t set, Pred eligible)
    {
        if (legacyActive())
            return _legacy->victimWhere(set, eligible);
        return _soa.victimWhere(set, eligible);
    }

    Line
    fill(LineRef ref, std::uint32_t addr)
    {
        if (legacyActive())
            return _legacy->fill(ref, addr);
        return _soa.fill(ref, addr);
    }

    void
    invalidate(LineRef ref)
    {
        if (legacyActive())
            return _legacy->invalidate(ref);
        _soa.invalidate(ref);
    }

    void
    invalidateAll()
    {
        if (legacyActive())
            return _legacy->invalidateAll();
        _soa.invalidateAll();
    }

    std::uint32_t
    lineAddr(LineRef ref) const
    {
        if (legacyActive())
            return _legacy->lineAddr(ref);
        return _soa.lineAddr(ref);
    }

    template <typename Fn>
    void
    forEachWay(std::uint32_t set, Fn fn)
    {
        if (legacyActive())
            return _legacy->forEachWay(set, fn);
        _soa.forEachWay(set, fn);
    }

    template <typename Fn>
    void
    forEachWay(std::uint32_t set, Fn fn) const
    {
        if (legacyActive())
            return _legacy->forEachWay(set, fn);
        _soa.forEachWay(set, fn);
    }

    template <typename Fn>
    void
    forEachLine(Fn fn)
    {
        if (legacyActive())
            return _legacy->forEachLine(fn);
        _soa.forEachLine(fn);
    }

    template <typename Fn>
    void
    forEachLine(Fn fn) const
    {
        if (legacyActive())
            return _legacy->forEachLine(fn);
        _soa.forEachLine(fn);
    }

    std::uint32_t
    validCount() const
    {
        if (legacyActive())
            return _legacy->validCount();
        return _soa.validCount();
    }

    ArrayProtection
    protection() const
    {
        if (legacyActive())
            return _legacy->protection();
        return _soa.protection();
    }

    void
    setProtection(ArrayProtection p)
    {
        if (legacyActive())
            _legacy->setProtection(p);
        _soa.setProtection(p);
    }

    FaultOutcome
    absorbFault(unsigned flips)
    {
        if (legacyActive())
            return _legacy->absorbFault(flips);
        return _soa.absorbFault(flips);
    }

    void
    noteUncorrectable()
    {
        if (legacyActive())
            return _legacy->noteUncorrectable();
        _soa.noteUncorrectable();
    }

    const ArrayFaultStats &
    faultStats() const
    {
        if (legacyActive())
            return _legacy->faultStats();
        return _soa.faultStats();
    }

  private:
    SoaTagStore<Meta> _soa;
    std::unique_ptr<LegacyTagStore<Meta>> _legacy;
};

} // namespace vrc

#endif // VRC_CACHE_TAG_STORE_HH
