/**
 * @file
 * Cache geometry: size / block size / associativity arithmetic.
 *
 * Geometry works on raw 32-bit address values so the same code serves the
 * virtually-indexed V-cache and the physically-indexed R-cache; the
 * strong address types are unwrapped at the cache boundary.
 */

#ifndef VRC_CACHE_CACHE_GEOMETRY_HH
#define VRC_CACHE_CACHE_GEOMETRY_HH

#include <cstdint>

#include "base/bitops.hh"
#include "base/log.hh"

namespace vrc
{

/** Derived index/tag arithmetic for a set-associative cache. */
class CacheGeometry
{
  public:
    /**
     * @param size_bytes  total capacity (power of two)
     * @param block_bytes block (line) size (power of two)
     * @param assoc       set associativity; must divide size/block
     */
    CacheGeometry(std::uint32_t size_bytes, std::uint32_t block_bytes,
                  std::uint32_t assoc)
        : _size(size_bytes), _blockBytes(block_bytes), _assoc(assoc)
    {
        panicIfNot(isPowerOfTwo(size_bytes), "cache size not a power of 2");
        panicIfNot(isPowerOfTwo(block_bytes),
                   "block size not a power of 2");
        panicIfNot(assoc >= 1 && size_bytes / block_bytes >= assoc,
                   "bad associativity");
        _numBlocks = size_bytes / block_bytes;
        _numSets = _numBlocks / assoc;
        panicIfNot(isPowerOfTwo(_numSets), "set count not a power of 2");
        _blockShift = log2Exact(block_bytes);
        _setMask = _numSets - 1;
        _setShift = log2Exact(_numSets);
    }

    std::uint32_t size() const { return _size; }
    std::uint32_t blockBytes() const { return _blockBytes; }
    std::uint32_t assoc() const { return _assoc; }
    std::uint32_t numSets() const { return _numSets; }
    std::uint32_t numBlocks() const { return _numBlocks; }
    unsigned blockShift() const { return _blockShift; }

    /** Block-aligned address. */
    std::uint32_t
    blockAddr(std::uint32_t addr) const
    {
        return addr & ~(_blockBytes - 1);
    }

    /** Block number (address / block size). */
    std::uint32_t
    blockNumber(std::uint32_t addr) const
    {
        return addr >> _blockShift;
    }

    /** Set index for an address. */
    std::uint32_t
    setIndex(std::uint32_t addr) const
    {
        return blockNumber(addr) & _setMask;
    }

    /** Tag for an address (block number above the index bits). */
    std::uint32_t
    tag(std::uint32_t addr) const
    {
        return blockNumber(addr) >> _setShift;
    }

    /** Rebuild a block-aligned address from (tag, set). */
    std::uint32_t
    rebuildAddr(std::uint32_t tag_v, std::uint32_t set) const
    {
        return ((tag_v << _setShift) | set) << _blockShift;
    }

    bool
    operator==(const CacheGeometry &o) const
    {
        return _size == o._size && _blockBytes == o._blockBytes &&
            _assoc == o._assoc;
    }

  private:
    std::uint32_t _size;
    std::uint32_t _blockBytes;
    std::uint32_t _assoc;
    std::uint32_t _numBlocks = 0;
    std::uint32_t _numSets = 0;
    unsigned _blockShift = 0;
    std::uint32_t _setMask = 0;
    unsigned _setShift = 0;
};

} // namespace vrc

#endif // VRC_CACHE_CACHE_GEOMETRY_HH
