/**
 * @file
 * Write-back buffer between the level-1 and level-2 caches.
 *
 * Dirty level-1 victims are parked here so the processor does not wait
 * for the level-2 update. Entries retire (drain) a fixed number of
 * references after being pushed; pushing onto a full buffer forces the
 * oldest entry out first and counts a stall. The buffer participates in
 * coherence: a bus request may flush or invalidate a buffered block
 * (the paper's flush(buffer) / invalidation(buffer) signals), and a
 * synonym "sameset" may cancel a pending write-back entirely.
 *
 * Simulated time is the reference counter maintained by the hierarchy.
 */

#ifndef VRC_CACHE_WRITE_BUFFER_HH
#define VRC_CACHE_WRITE_BUFFER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "base/counter.hh"

namespace vrc
{

/** One parked write-back. */
struct WriteBufferEntry
{
    std::uint32_t physBlockAddr = 0;  ///< block-aligned physical address
    std::uint64_t pushTick = 0;       ///< when it entered the buffer
};

/** FIFO write-back buffer with per-entry drain latency. */
class WriteBuffer
{
  public:
    using DrainHandler = std::function<void(const WriteBufferEntry &)>;

    /**
     * @param capacity       maximum parked entries
     * @param drain_latency  references after which an entry retires
     */
    WriteBuffer(std::uint32_t capacity, std::uint64_t drain_latency)
        : _capacity(capacity), _drainLatency(drain_latency),
          _stats("write_buffer"), _stalls(&_stats.handle("stalls")),
          _pushes(&_stats.handle("pushes")),
          _removes(&_stats.handle("removes")),
          _coherenceFlushes(&_stats.handle("coherence_flushes")),
          _drains(&_stats.handle("drains"))
    {
    }

    /** Install the retirement callback (normally the hierarchy's). */
    void setDrainHandler(DrainHandler h) { _onDrain = std::move(h); }

    /** Advance time, retiring every entry whose latency has elapsed. */
    void
    tick(std::uint64_t now)
    {
        // Hot path: one compare against the cached retirement time of
        // the oldest entry (kNeverDrains when empty). The FIFO order
        // means no other entry can be due before the front one.
        while (now >= _nextDrain)
            retireFront();
    }

    /**
     * Park a write-back.
     *
     * @return true if the buffer was full and the processor stalled while
     *         the oldest entry retired early.
     */
    bool
    push(std::uint32_t phys_block_addr, std::uint64_t now)
    {
        bool stalled = false;
        if (_entries.size() >= _capacity) {
            retireFront();
            stalled = true;
            (*_stalls)++;
        }
        _entries.push_back(WriteBufferEntry{phys_block_addr, now});
        if (_entries.size() == 1)
            _nextDrain = now + _drainLatency;
        (*_pushes)++;
        return stalled;
    }

    /** True if a block is currently parked. */
    bool
    contains(std::uint32_t phys_block_addr) const
    {
        for (const auto &e : _entries) {
            if (e.physBlockAddr == phys_block_addr)
                return true;
        }
        return false;
    }

    /**
     * Remove a parked block without draining it (synonym cancel or
     * coherence invalidation).
     *
     * @return the entry if it was present.
     */
    std::optional<WriteBufferEntry>
    remove(std::uint32_t phys_block_addr)
    {
        for (auto it = _entries.begin(); it != _entries.end(); ++it) {
            if (it->physBlockAddr == phys_block_addr) {
                WriteBufferEntry e = *it;
                _entries.erase(it);
                refreshNextDrain();
                (*_removes)++;
                return e;
            }
        }
        return std::nullopt;
    }

    /**
     * Force a parked block to retire now (coherence flush(buffer)).
     *
     * @return true if the block was present.
     */
    bool
    flush(std::uint32_t phys_block_addr)
    {
        for (auto it = _entries.begin(); it != _entries.end(); ++it) {
            if (it->physBlockAddr == phys_block_addr) {
                WriteBufferEntry e = *it;
                _entries.erase(it);
                refreshNextDrain();
                (*_coherenceFlushes)++;
                if (_onDrain)
                    _onDrain(e);
                return true;
            }
        }
        return false;
    }

    /** Retire everything immediately. */
    void
    drainAll()
    {
        while (!_entries.empty())
            retireFront();
    }

    /** Visit every parked entry, oldest first (read-only). */
    template <typename Fn>
    void
    forEachEntry(Fn fn) const
    {
        for (const auto &e : _entries)
            fn(e);
    }

    std::size_t size() const { return _entries.size(); }
    std::uint32_t capacity() const { return _capacity; }
    bool empty() const { return _entries.empty(); }

    std::uint64_t stalls() const { return _stalls->value(); }
    std::uint64_t pushes() const { return _pushes->value(); }
    std::uint64_t drains() const { return _drains->value(); }

    const StatGroup &stats() const { return _stats; }

  private:
    void
    retireFront()
    {
        WriteBufferEntry e = _entries.front();
        _entries.pop_front();
        refreshNextDrain();
        (*_drains)++;
        if (_onDrain)
            _onDrain(e);
    }

    /** Re-derive the cached due time of the (new) oldest entry. */
    void
    refreshNextDrain()
    {
        _nextDrain = _entries.empty()
            ? kNeverDrains
            : _entries.front().pushTick + _drainLatency;
    }

    static constexpr std::uint64_t kNeverDrains = ~std::uint64_t{0};

    std::uint32_t _capacity;
    std::uint64_t _drainLatency;
    /** Due time of the oldest entry; kNeverDrains while empty. */
    std::uint64_t _nextDrain = kNeverDrains;
    std::deque<WriteBufferEntry> _entries;
    DrainHandler _onDrain;
    StatGroup _stats;

    /**
     * Handles resolved once at construction (StatGroup handle
     * contract): the push/remove/flush/retire paths increment through
     * these and never perform a string-keyed lookup.
     */
    Counter *_stalls;
    Counter *_pushes;
    Counter *_removes;
    Counter *_coherenceFlushes;
    Counter *_drains;
};

} // namespace vrc

#endif // VRC_CACHE_WRITE_BUFFER_HH
