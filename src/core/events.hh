/**
 * @file
 * Event tracing for cache hierarchies.
 *
 * Hierarchies can emit a structured event for every architecturally
 * interesting action (hits, misses, synonym repairs, write-back
 * parking/cancel, coherence percolation, context switches). An
 * EventObserver attached to a hierarchy receives them; with no observer
 * attached the emit path is a single branch. Used by the debugging
 * tools and by tests that verify exact operation sequences.
 */

#ifndef VRC_CORE_EVENTS_HH
#define VRC_CORE_EVENTS_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "base/types.hh"

namespace vrc
{

/** Kinds of hierarchy events. */
enum class EventKind : std::uint8_t
{
    L1Hit,
    L2Hit,
    Miss,
    SynonymMove,       ///< block moved to a new V-cache location
    SynonymSameset,    ///< block re-tagged in place
    WritebackParked,   ///< dirty victim entered the write buffer
    WritebackCancel,   ///< parked write-back pulled back (synonym)
    WritebackComplete, ///< buffer drained into level 2
    SwappedWriteback,  ///< the parked victim was swapped-valid
    InclusionInvalidation, ///< forced L2 replacement killed a child
    L1Flush,           ///< bus-induced flush percolated to level 1
    L1Invalidation,    ///< bus-induced invalidation percolated
    L1Update,          ///< write-update percolated to level 1
    BufferFlush,       ///< bus-induced flush hit the write buffer
    BufferInvalidation,///< bus-induced invalidation hit the buffer
    ContextSwitch,
    L2Evict,           ///< local replacement dropped a level-2 line
    FaultDetected,     ///< array check logic flagged a soft error
    FaultCorrected,    ///< soft error repaired (ECC or refetch recovery)
    FaultUnrecoverable,///< machine check: dirty data lost to a soft error
    RltConflictInvalidation ///< reverse-lookup-table conflict evicted
                            ///< a level-1 child (bounded directory)
};

/** Printable event name. */
inline const char *
eventKindName(EventKind k)
{
    switch (k) {
      case EventKind::L1Hit:
        return "l1-hit";
      case EventKind::L2Hit:
        return "l2-hit";
      case EventKind::Miss:
        return "miss";
      case EventKind::SynonymMove:
        return "synonym-move";
      case EventKind::SynonymSameset:
        return "synonym-sameset";
      case EventKind::WritebackParked:
        return "writeback-parked";
      case EventKind::WritebackCancel:
        return "writeback-cancel";
      case EventKind::WritebackComplete:
        return "writeback-complete";
      case EventKind::SwappedWriteback:
        return "swapped-writeback";
      case EventKind::InclusionInvalidation:
        return "inclusion-invalidation";
      case EventKind::L1Flush:
        return "l1-flush";
      case EventKind::L1Invalidation:
        return "l1-invalidation";
      case EventKind::L1Update:
        return "l1-update";
      case EventKind::BufferFlush:
        return "buffer-flush";
      case EventKind::BufferInvalidation:
        return "buffer-invalidation";
      case EventKind::ContextSwitch:
        return "context-switch";
      case EventKind::L2Evict:
        return "l2-evict";
      case EventKind::FaultDetected:
        return "fault-detected";
      case EventKind::FaultCorrected:
        return "fault-corrected";
      case EventKind::FaultUnrecoverable:
        return "fault-unrecoverable";
      case EventKind::RltConflictInvalidation:
        return "rlt-conflict-invalidation";
    }
    return "?";
}

/** One emitted event. */
struct HierarchyEvent
{
    EventKind kind = EventKind::L1Hit;
    CpuId cpu = invalidCpu;
    std::uint64_t refIndex = 0; ///< the hierarchy's local clock
    std::uint32_t vaddr = 0;    ///< virtual (or L1-key) address, if any
    std::uint32_t paddr = 0;    ///< physical block address, if any
};

/** Receiver of hierarchy events. */
class EventObserver
{
  public:
    virtual ~EventObserver() = default;
    virtual void onEvent(const HierarchyEvent &ev) = 0;
};

/** An observer that records everything (tests, small traces). */
class RecordingObserver : public EventObserver
{
  public:
    void
    onEvent(const HierarchyEvent &ev) override
    {
        _events.push_back(ev);
    }

    const std::vector<HierarchyEvent> &events() const { return _events; }
    void clear() { _events.clear(); }

    /** Count events of one kind. */
    std::size_t
    count(EventKind k) const
    {
        std::size_t n = 0;
        for (const auto &e : _events)
            n += e.kind == k ? 1 : 0;
        return n;
    }

  private:
    std::vector<HierarchyEvent> _events;
};

/** An observer forwarding to a callable (CLI printers). */
class CallbackObserver : public EventObserver
{
  public:
    using Fn = std::function<void(const HierarchyEvent &)>;

    explicit CallbackObserver(Fn fn) : _fn(std::move(fn)) {}

    void
    onEvent(const HierarchyEvent &ev) override
    {
        _fn(ev);
    }

  private:
    Fn _fn;
};

} // namespace vrc

#endif // VRC_CORE_EVENTS_HH
