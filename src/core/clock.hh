/**
 * @file
 * Simulated-time primitives for the cycle-approximate timing engine.
 *
 * The functional model stays untimed: hits, misses, coherence and
 * soft-error behavior are decided exactly as before, and the timing
 * engine is layered on top as pure accounting. Ticks are expressed in
 * level-1 access-time units (the paper's t1), so the cycle engine and
 * the Section-4 analytic model (core/timing.hh) speak the same unit
 * and can be cross-checked against each other: with one CPU and
 * zero-cost bus service the per-reference cycle count must reproduce
 * avgAccessTime() exactly.
 */

#ifndef VRC_CORE_CLOCK_HH
#define VRC_CORE_CLOCK_HH

#include <cstdint>
#include <optional>
#include <string>

#include "base/types.hh"

namespace vrc
{

/** How the simulator accounts access time. */
enum class TimingMode : std::uint8_t
{
    /**
     * The paper's post-hoc model: per-reference level costs are summed
     * and the Section-4 closed form over the end-state hit ratios
     * partitions them exactly. Bus overhead is folded into tm; no
     * clocks, no contention.
     */
    Analytic,

    /**
     * Cycle-approximate engine: every CPU owns a simulated clock, each
     * reference advances it by the level cost reported by the caches,
     * and every bus transaction must win the shared bus through the
     * BusArbiter, charging queueing delay plus a per-transaction-type
     * service time. In this mode timing.tm is the memory latency
     * excluding the bus, which is modeled explicitly.
     */
    Cycle,
};

/** Printable mode name (also the --timing=<mode> spelling). */
inline const char *
timingModeName(TimingMode m)
{
    return m == TimingMode::Cycle ? "cycle" : "analytic";
}

/** Parse a --timing=<mode> value; nullopt when unrecognized. */
inline std::optional<TimingMode>
parseTimingMode(const std::string &s)
{
    if (s == "analytic")
        return TimingMode::Analytic;
    if (s == "cycle")
        return TimingMode::Cycle;
    return std::nullopt;
}

/**
 * One CPU's simulated clock plus its latency accumulators.
 *
 * The clock only ever moves forward. Three disjoint buckets partition
 * everything that advanced it, so reports can decompose a CPU's
 * elapsed time into useful work, bus occupancy and queueing:
 *
 *   now() == accessTicks() + busServiceTicks() + busWaitTicks()
 */
class CpuClock
{
  public:
    /** Current simulated time. */
    Tick now() const { return _now; }

    /** Charge one reference's level cost (t1/t2/tm composition). */
    void
    chargeAccess(Tick cost)
    {
        _now += cost;
        _access += cost;
    }

    /** Stall until @p grant_start, booking the delay as bus queueing. */
    void
    waitUntil(Tick grant_start)
    {
        if (grant_start > _now) {
            _wait += grant_start - _now;
            _now = grant_start;
        }
    }

    /** Occupy the bus for @p service ticks (transaction in flight). */
    void
    chargeBusService(Tick service)
    {
        _now += service;
        _service += service;
    }

    /** Level-cost ticks accumulated (analytic-comparable portion). */
    Tick accessTicks() const { return _access; }

    /** Ticks spent queued for bus grants. */
    Tick busWaitTicks() const { return _wait; }

    /** Ticks the bus spent serving this CPU's transactions. */
    Tick busServiceTicks() const { return _service; }

    /** Zero the clock and every accumulator (warm-up support). */
    void
    reset()
    {
        _now = 0.0;
        _access = 0.0;
        _wait = 0.0;
        _service = 0.0;
    }

  private:
    Tick _now = 0.0;
    Tick _access = 0.0;
    Tick _wait = 0.0;
    Tick _service = 0.0;
};

} // namespace vrc

#endif // VRC_CORE_CLOCK_HH
