/**
 * @file
 * The paper's generic two-level access-time model (Section 4).
 *
 *   T_acc = h1*t1 + (1-h1)*h2*t2 + (1-h1)*(1-h2)*tm
 *
 * where h1/h2 are the level-1 and local level-2 hit ratios, t1/t2 the
 * level access times and tm the memory access time including bus
 * overhead. The figures use t2 = 4*t1 and plot sensitivity to a
 * percentage slowdown of the *R-R hierarchy's level-1* access caused by
 * address translation; because inclusion makes the third term identical
 * across organizations, the paper compares on the first two terms only.
 */

#ifndef VRC_CORE_TIMING_HH
#define VRC_CORE_TIMING_HH

namespace vrc
{

/** Access-time parameters (all in level-1 access-time units). */
struct TimingParams
{
    double t1 = 1.0;   ///< level-1 access time
    double t2 = 4.0;   ///< level-2 access time (paper: t2 = 4*t1)
    double tm = 12.0;  ///< memory access time including bus overhead
    double l1SlowdownPct = 0.0; ///< translation penalty on level 1 (%)

    /** Effective level-1 access time including the slowdown. */
    double
    effectiveT1() const
    {
        return t1 * (1.0 + l1SlowdownPct / 100.0);
    }
};

/** Full three-term average access time. */
double avgAccessTime(double h1, double h2, const TimingParams &p);

/**
 * The paper's two-term comparison metric (hierarchy-hit portion only;
 * the miss term is identical for both organizations under inclusion).
 */
double avgAccessTimeTwoTerm(double h1, double h2, const TimingParams &p);

/**
 * Slowdown percentage at which an R-R hierarchy (with the given hit
 * ratios) becomes slower than a V-R hierarchy, under the two-term
 * metric.
 *
 * @return the crossover percentage; <= 0 means V-R already wins with no
 *         translation penalty at all.
 */
double crossoverSlowdownPct(double h1_vr, double h2_vr, double h1_rr,
                            double h2_rr, const TimingParams &p);

/**
 * Bus service times (in t1 units) for the cycle-approximate contention
 * model (TimingMode::Cycle). The paper folds bus overhead into tm;
 * modeling the single shared bus as a serially reusable resource lets
 * experiments measure utilization and queueing delay as the processor
 * count grows. A read-modified-write transaction is charged as one
 * read-miss transfer plus one invalidate broadcast.
 */
struct BusTimingParams
{
    double readMissService = 8.0;   ///< block transfer from memory/cache
    double invalidateService = 2.0; ///< address-only broadcast
    double updateService = 3.0;     ///< word broadcast + memory update

    /**
     * Zero-contention service table: the bus grants instantly and for
     * free, so the cycle engine degenerates to the analytic model (the
     * cross-check CI and the equivalence tests rely on this).
     */
    static BusTimingParams
    zero()
    {
        return BusTimingParams{0.0, 0.0, 0.0};
    }
};

} // namespace vrc

#endif // VRC_CORE_TIMING_HH
