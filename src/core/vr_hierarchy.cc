#include "core/vr_hierarchy.hh"

#include <algorithm>
#include <vector>

#include "base/bitops.hh"
#include "base/fault.hh"
#include "base/log.hh"
#include "core/mutation.hh"
#include "vm/addr_space.hh"

namespace vrc
{

VrHierarchy::VrHierarchy(const HierarchyParams &params,
                         AddressSpaceManager &spaces, SharedBus &bus,
                         bool l1_virtual, SynonymOrg synonym_org)
    : _params(params), _spaces(spaces), _bus(bus), _l1Virtual(l1_virtual),
      _r(params.l2, params.l1.blockBytes, 0x2ca1e, &_arena),
      _wb(params.writeBufferDepth, params.writeBufferDrainLatency),
      _tlb(params.tlbEntries, params.tlbAssoc)
{
    CacheParams l1 = params.l1;
    if (params.splitL1) {
        panicIfNot(l1.sizeBytes >= 2 * l1.blockBytes,
                   "split level-1 cache too small");
        l1.sizeBytes /= 2;  // equal I and D halves, as in the paper
        _l1[0] = std::make_unique<VCache>(l1, 0xdada, &_arena);
        _l1[1] = std::make_unique<VCache>(l1, 0x1f1f, &_arena);
    } else {
        _l1[0] = std::make_unique<VCache>(l1, 0xdada, &_arena);
    }
    _dir = makeSynonymDirectory(synonym_org, params, _l1, l1Count(), _r);
    _backInvalidate = [this](PhysAddr pa, const SynonymChild &child) {
        backInvalidateChild(pa, child);
    };
    // Virtual level-1 tags translate behind the cache (no per-access
    // translation cost); physical tags (R-R mode) pay the slowdown.
    for (auto &vc : _l1) {
        if (vc)
            vc->setTranslationFree(l1_virtual);
    }

    _wb.setDrainHandler(
        [this](const WriteBufferEntry &e) { onWriteBufferDrain(e); });

    StatGroup &sg = stats();
    _c.writebackCompletions = &sg.handle("writeback_completions");
    _c.wbStalls = &sg.handle("wb_stalls");
    _c.writebacks = &sg.handle("writebacks");
    _c.swappedWritebacks = &sg.handle("swapped_writebacks");
    _c.synonymSameset = &sg.handle("synonym_sameset");
    _c.synonymMoves = &sg.handle("synonym_moves");
    _c.synonymHits = &sg.handle("synonym_hits");
    _c.synonymFromBuffer = &sg.handle("synonym_from_buffer");
    _c.writebackCancels = &sg.handle("writeback_cancels");
    _c.l2Hits = &sg.handle("l2_hits");
    _c.invalidationsSent = &sg.handle("invalidations_sent");
    _c.updatesSent = &sg.handle("updates_sent");
    _c.memoryWrites = &sg.handle("memory_writes");
    _c.misses = &sg.handle("misses");
    _c.fillsFromCache = &sg.handle("fills_from_cache");
    _c.fillsFromMemory = &sg.handle("fills_from_memory");
    _c.inclusionInvalidations = &sg.handle("inclusion_invalidations");
    _c.l1CoherenceMsgs = &sg.handle("l1_coherence_msgs");
    _c.forcedRReplacements = &sg.handle("forced_r_replacements");
    _c.contextSwitches = &sg.handle("context_switches");
    _c.snoops = &sg.handle("snoops");
    _c.snoopMisses = &sg.handle("snoop_misses");
    _c.snoopHits = &sg.handle("snoop_hits");
    _c.l1Flushes = &sg.handle("l1_flushes");
    _c.bufferFlushes = &sg.handle("buffer_flushes");
    _c.l1Invalidations = &sg.handle("l1_invalidations");
    _c.bufferInvalidations = &sg.handle("buffer_invalidations");
    _c.l1Updates = &sg.handle("l1_updates");
    _c.tlbShootdowns = &sg.handle("tlb_shootdowns");
    if (synonym_org == SynonymOrg::ReverseLookup) {
        _c.rltConflictInvalidations =
            &sg.handle("rlt_conflict_invalidations");
    }

    // The R-cache directory covers everything this hierarchy can snoop
    // on (inclusion holds for both V-R and R-R modes), so the bus may
    // skip us whenever our presence bit is clear.
    setCpuId(bus.attach(
        this, SnoopAgentInfo{true, _c.snoops, _c.snoopMisses}));
}

void
VrHierarchy::onWriteBufferDrain(const WriteBufferEntry &entry)
{
    // The write-back completes: the R-cache copy absorbs the data. The
    // parent line must still be present -- every path that could remove
    // it (R-cache eviction, bus invalidation) extracts pending buffer
    // entries first.
    auto rref = _r.probe(PhysAddr(entry.physBlockAddr));
    panicIfNot(rref.has_value(),
               "write-buffer drain with no parent R-cache line");
    RSubentry &s = _r.sub(*rref, PhysAddr(entry.physBlockAddr));
    panicIfNot(s.buffer, "drained entry had no buffer bit set");
    s.buffer = false;
    s.vdirty = false;
    _r.line(*rref).meta.rdirty = true;
    (*_c.writebackCompletions)++;
    emitEvent(EventKind::WritebackComplete, _refIndex, 0,
              entry.physBlockAddr);
}

void
VrHierarchy::evictVVictim(VCache &vc, LineRef slot)
{
    VCache::Line victim = vc.line(slot);
    if (!victim.valid)
        return;

    PhysAddr pa(victim.meta.physBlockAddr);
    auto rref = _r.probe(pa);
    panicIfNot(rref.has_value(), "V-cache victim has no R-cache parent");
    RSubentry &s = _r.sub(*rref, pa);
    panicIfNot(s.inclusion, "V-cache victim's inclusion bit not set");

    s.inclusion = false;
    _dir->unlink(pa);
    if (victim.meta.dirty) {
        // Park the block in the write buffer; the buffer bit marks the
        // data as still owned by the level-1 complex.
        s.buffer = true;
        if (_wb.push(victim.meta.physBlockAddr, _refIndex))
            (*_c.wbStalls)++;
        (*_c.writebacks)++;
        emitEvent(EventKind::WritebackParked, _refIndex, 0,
                  victim.meta.physBlockAddr);
        if (victim.meta.swappedValid) {
            (*_c.swappedWritebacks)++;
            emitEvent(EventKind::SwappedWriteback, _refIndex, 0,
                      victim.meta.physBlockAddr);
        }
        noteWriteBack(_refIndex);
    } else {
        s.vdirty = false;
    }
    vc.invalidate(slot);
}

std::pair<VCache *, LineRef>
VrHierarchy::directoryChild(PhysAddr pa) const
{
    auto child = _dir->lookup(pa);
    panicIfNot(child.has_value(), "dangling inclusion pointer");
    VCache *vc = _l1[child->l1Index].get();
    auto ref = vc->findOccupied(child->childAddrBlock);
    panicIfNot(ref.has_value(), "dangling inclusion pointer");
    return {vc, *ref};
}

void
VrHierarchy::backInvalidateChild(PhysAddr pa, const SynonymChild &child)
{
    // A bounded directory ran out of room for a new link: the victim
    // link's level-1 copy must leave the level-1 complex so the
    // directory stays authoritative. Dirty data parks in the write
    // buffer exactly like a replacement eviction (the buffer bit keeps
    // the parent alive until the drain); evictVVictim ends by
    // unlinking the victim from the directory, freeing its slot.
    VCache &oc = *_l1[child.l1Index];
    auto ref = oc.findOccupied(child.childAddrBlock);
    panicIfNot(ref.has_value(),
               "directory conflict victim has no level-1 line");
    evictVVictim(oc, *ref);
    (*_c.rltConflictInvalidations)++;
    (*_c.l1CoherenceMsgs)++;
    emitEvent(EventKind::RltConflictInvalidation, _refIndex,
              child.childAddrBlock, pa.value());
}

AccessOutcome
VrHierarchy::access(const MemAccess &acc)
{
    ++_refIndex;
    _wb.tick(_refIndex);
    noteRef(acc.type);
    if (softErrorsArmed())
        maybeInjectSoftErrors();

    unsigned ci = l1IndexFor(acc.type);
    VCache &vc = *_l1[ci];

    // In V-R mode level 1 is looked up with the virtual address (the
    // TLB access proceeds concurrently in hardware and is aborted on a
    // hit). In R-R mode the translation must complete first -- that is
    // precisely the access-time penalty Figures 4-6 study.
    VirtAddr l1_key = acc.va;
    std::optional<PhysAddr> pa;
    if (!_l1Virtual) {
        pa = translate(acc);
        l1_key = VirtAddr(pa->value());
    }

    // 1. Level-1 lookup.
    if (auto hit = vc.lookup(l1_key)) {
        VCache::Line l = vc.line(*hit);
        if (acc.type == RefType::Write && !l.meta.dirty) {
            // Write hit on a clean block: wait for invack from the
            // R-cache (clearing coherence with other copies first).
            PhysAddr block(l.meta.physBlockAddr);
            auto rref = _r.probe(block);
            panicIfNot(rref.has_value(), "clean V block lost its parent");
            if (resolveWriteCoherence(_r.line(*rref), block)) {
                _r.sub(*rref, block).vdirty = true;
                l.meta.dirty = true;
            }
            // Otherwise (write-update to a shared block) the data went
            // out on the bus and to memory: the copy stays clean.
        }
        noteL1Hit(acc.type);
        emitEvent(EventKind::L1Hit, _refIndex, l1_key.value(),
                  l.meta.physBlockAddr);
        return AccessOutcome::L1Hit;
    }

    // 2. Level-1 miss: commit the replacement, then translate.
    LineRef slot = vc.victimFor(l1_key);
    evictVVictim(vc, slot);

    if (!pa)
        pa = translate(acc);
    PhysAddr pa_block(l1Block(pa->value()));

    // 3. R-cache access.
    if (auto rref = _r.lookup(pa_block))
        return handleRHit(acc.type, l1_key, ci, slot, *rref, pa_block);
    return handleRMiss(acc.type, l1_key, ci, slot, pa_block);
}

PhysAddr
VrHierarchy::translate(const MemAccess &acc)
{
    Ppn ppn = _tlb.translate(acc.pid, acc.va.vpn(_params.pageSize),
                             _spaces);
    return makePhysAddr(ppn, acc.va.pageOffset(_params.pageSize),
                        _params.pageSize);
}

bool
VrHierarchy::resolveWriteCoherence(RCache::Line rline, PhysAddr pa)
{
    if (rline.meta.state != CoherenceState::Shared) {
        // Exclusive: silent upgrade, the write stays local and dirty.
        rline.meta.state = CoherenceState::Private;
        return true;
    }
    if (_params.protocol == CoherencePolicy::WriteInvalidate) {
        _bus.broadcast(BusTransaction{
            BusOp::Invalidate, PhysAddr(l2Block(pa.value())), cpuId()});
        (*_c.invalidationsSent)++;
        rline.meta.state = CoherenceState::Private;
        return true;
    }
    // Write-update: broadcast the new data; every copy (and memory)
    // absorbs it, so our block stays clean. If nobody acknowledged
    // sharing, downgrade to Private so later writes stay local
    // (Firefly's shared-line optimization).
    BusResult br = _bus.broadcast(BusTransaction{
        BusOp::Update, PhysAddr(l2Block(pa.value())), cpuId()});
    (*_c.updatesSent)++;
    (*_c.memoryWrites)++;  // bus write-through
    rline.meta.state =
        br.shared ? CoherenceState::Shared : CoherenceState::Private;
    return false;
}

AccessOutcome
VrHierarchy::handleRHit(RefType type, VirtAddr l1_key, unsigned ci,
                        LineRef slot, LineRef rref, PhysAddr pa)
{
    VCache &vc = *_l1[ci];
    RCache::Line rline = _r.line(rref);
    RSubentry &s = _r.sub(rref, pa);
    std::uint32_t va_block = l1Block(l1_key.value());

    AccessOutcome outcome;
    LineRef data_slot = slot;

    if (s.inclusion) {
        // Synonym: the block lives in a level-1 cache under another
        // virtual address (or under the same address, swapped out).
        auto link = _dir->lookup(pa);
        panicIfNot(link.has_value(), "dangling inclusion pointer");
        VCache &oc = *_l1[link->l1Index];
        auto child = oc.findOccupied(link->childAddrBlock);
        panicIfNot(child.has_value(), "dangling inclusion pointer");
        bool same_place = (link->l1Index == ci) &&
            (oc.setIndex(VirtAddr(link->childAddrBlock)) ==
             vc.setIndex(l1_key));
        if (same_place) {
            // sameset: re-tag in place, no data movement.
            oc.retag(*child, l1_key);
            data_slot = *child;
            (*_c.synonymSameset)++;
            emitEvent(EventKind::SynonymSameset, _refIndex,
                      l1_key.value(), pa.value());
        } else {
            // move: relocate the block into the new slot.
            bool was_dirty = oc.line(*child).meta.dirty;
            oc.invalidate(*child);
            vc.install(slot, l1_key, pa.value(), was_dirty);
            (*_c.synonymMoves)++;
            emitEvent(EventKind::SynonymMove, _refIndex,
                      l1_key.value(), pa.value());
        }
        // Retarget the existing link in place (same physical block, so
        // a bounded directory can never take a conflict here).
        _dir->link(pa, ci, va_block, _backInvalidate);
        (*_c.synonymHits)++;
        outcome = AccessOutcome::SynonymHit;
    } else if (s.buffer) {
        // The block sits in the write buffer (for a direct-mapped
        // V-cache this is the paper's sameset case with a dirty
        // replaced block): cancel the write-back and pull it back.
        auto pulled = _wb.remove(pa.value());
        panicIfNot(pulled.has_value(), "buffer bit with no buffer entry");
        s.buffer = false;
        vc.install(slot, l1_key, pa.value(), true);
        s.inclusion = true;
        _dir->link(pa, ci, va_block, _backInvalidate);
        panicIfNot(s.vdirty, "buffered block lost its vdirty bit");
        (*_c.writebackCancels)++;
        emitEvent(EventKind::WritebackCancel, _refIndex,
                  l1_key.value(), pa.value());
        (*_c.synonymHits)++;
        (*_c.synonymFromBuffer)++;
        outcome = AccessOutcome::SynonymHit;
    } else {
        // Plain second-level hit: data supply to the V-cache.
        vc.install(slot, l1_key, pa.value(), false);
        s.inclusion = !mutationFlags().dropInclusionUpdate;
        _dir->link(pa, ci, va_block, _backInvalidate);
        s.vdirty = false;
        (*_c.l2Hits)++;
        emitEvent(EventKind::L2Hit, _refIndex, l1_key.value(),
                  pa.value());
        outcome = AccessOutcome::L2Hit;
    }

    if (type == RefType::Write) {
        if (resolveWriteCoherence(rline, pa)) {
            s.vdirty = true;
            // data_slot is always in vc: the sameset branch requires
            // the synonym to live in the same (target) cache and set.
            vc.line(data_slot).meta.dirty = true;
        } else {
            // Write-update to a shared block: propagated, stays clean.
            s.vdirty = false;
            vc.line(data_slot).meta.dirty = false;
        }
    }
    return outcome;
}

AccessOutcome
VrHierarchy::handleRMiss(RefType type, VirtAddr l1_key, unsigned ci,
                         LineRef slot, PhysAddr pa)
{
    VCache &vc = *_l1[ci];
    PhysAddr pa_line(l2Block(pa.value()));

    auto [rslot, forced] = _r.victimFor(pa_line);
    if (_r.line(rslot).valid)
        evictRLine(rslot, forced);

    bool is_write = type == RefType::Write;
    bool update_protocol =
        _params.protocol == CoherencePolicy::WriteUpdate;

    // Write misses: invalidation protocols fetch with intent to modify;
    // update protocols fetch normally and then broadcast the new data
    // if anyone else holds the block.
    BusOp op = (is_write && !update_protocol) ? BusOp::ReadModWrite
                                              : BusOp::ReadMiss;
    BusResult br =
        _bus.broadcast(BusTransaction{op, pa_line, cpuId()});
    (*_c.misses)++;
    if (br.suppliedByCache)
        (*_c.fillsFromCache)++;
    else
        (*_c.fillsFromMemory)++;

    CoherenceState st;
    bool dirty = is_write;
    if (is_write && !update_protocol) {
        st = CoherenceState::Private;  // read-modified-write: exclusive
    } else {
        st = br.shared ? CoherenceState::Shared : CoherenceState::Private;
        if (is_write && br.shared) {
            // Propagate the write to the other copies and memory.
            _bus.broadcast(
                BusTransaction{BusOp::Update, pa_line, cpuId()});
            (*_c.updatesSent)++;
            (*_c.memoryWrites)++;
            dirty = false;
        }
    }

    RCache::Line rline = _r.install(rslot, pa_line, st);
    _bus.noteBlockCached(cpuId(), pa_line.value());
    RSubentry &s = _r.sub(rslot, pa);
    std::uint32_t va_block = l1Block(l1_key.value());

    vc.install(slot, l1_key, pa.value(), dirty);
    s.inclusion = true;
    _dir->link(pa, ci, va_block, _backInvalidate);
    s.vdirty = dirty;
    rline.meta.rdirty = false;
    emitEvent(EventKind::Miss, _refIndex, l1_key.value(), pa.value());
    return AccessOutcome::Miss;
}

void
VrHierarchy::evictRLine(LineRef rslot, bool forced)
{
    RCache::Line rline = _r.line(rslot);
    std::uint32_t line_addr = _r.lineAddr(rslot);
    bool dirty_data = rline.meta.rdirty;

    for (std::uint32_t i = 0; i < _r.subCount(); ++i) {
        RSubentry &s = rline.meta.subs[i];
        std::uint32_t sub_addr = line_addr + i * _params.l1.blockBytes;
        if (s.buffer) {
            // Complete the parked write-back straight to memory.
            auto e = _wb.remove(sub_addr);
            panicIfNot(e.has_value(), "buffer bit with no buffer entry");
            s.buffer = false;
            dirty_data = true;
        }
        if (s.inclusion) {
            // Relaxed replacement fallback: kill the level-1 child.
            PhysAddr sub_pa(sub_addr);
            auto link = _dir->lookup(sub_pa);
            panicIfNot(link.has_value(), "dangling inclusion pointer");
            VCache &oc = *_l1[link->l1Index];
            auto child = oc.findOccupied(link->childAddrBlock);
            panicIfNot(child.has_value(), "dangling inclusion pointer");
            if (oc.line(*child).meta.dirty)
                dirty_data = true;
            oc.invalidate(*child);
            s.inclusion = false;
            _dir->unlink(sub_pa);
            (*_c.inclusionInvalidations)++;
            (*_c.l1CoherenceMsgs)++;
            emitEvent(EventKind::InclusionInvalidation, _refIndex,
                      link->childAddrBlock, sub_addr);
            panicIfNot(forced,
                       "children evicted on a non-forced replacement");
        }
        s.vdirty = false;
    }
    if (dirty_data)
        (*_c.memoryWrites)++;
    emitEvent(EventKind::L2Evict, _refIndex, 0, line_addr);
    _r.invalidate(rslot);
    _bus.noteBlockUncached(cpuId(), line_addr);
    if (forced)
        (*_c.forcedRReplacements)++;
}

// ===== soft-error strikes and recovery ==============================
//
// The model is state-preserving: a strike corrupts *array bits*, not
// the data the simulator tracks, and every successful recovery refetches
// bit-identical content -- so with strikes confined to recoverable
// sites, all architectural statistics stay equal to an unarmed run and
// only the soft_* counters, the recovery events and the real extra bus
// transactions differ. That is also what makes the coherence oracle's
// job tractable: post-recovery state *is* pre-fault state.

void
VrHierarchy::maybeInjectSoftErrors()
{
    const SoftErrorConfig &sc = softErrorConfig();
    const std::uint64_t cpu = cpuId();
    if (softErrorDecision("l1-tag", cpu, _refIndex, sc.tag)) {
        strikeL1("soft_faults_tag",
                 softErrorHash("l1-tag-cell", cpu, _refIndex));
    }
    if (softErrorDecision("l2-state", cpu, _refIndex, sc.state)) {
        strikeL2("soft_faults_state",
                 softErrorHash("l2-state-cell", cpu, _refIndex));
    }
    if (softErrorDecision("meta-ptr", cpu, _refIndex, sc.ptr)) {
        // Pointer metadata lives on both sides of the hierarchy: the
        // V-cache r-pointer array or an R-cache subentry (v-pointer,
        // inclusion bits), chosen by one more hash bit.
        std::uint64_t h = softErrorHash("meta-ptr-cell", cpu, _refIndex);
        if (h & 1)
            strikeL1("soft_faults_ptr", h >> 1);
        else
            strikeL2("soft_faults_ptr", h >> 1);
    }
}

void
VrHierarchy::strikeL1(const char *ctr, std::uint64_t h)
{
    unsigned ci = static_cast<unsigned>((h >> 7) % l1Count());
    VCache &vc = *_l1[ci];
    LineRef ref = vc.faultTarget(h >> 9);
    softCounter(ctr)++;
    VCache::Line l = vc.line(ref);
    if (!l.valid) {
        // The struck cell holds no line: architecturally masked.
        softCounter("soft_masked")++;
        return;
    }
    switch (vc.tags().absorbFault(softErrorFlips(h))) {
      case FaultOutcome::Silent:
        softCounter("soft_silent")++;
        return;
      case FaultOutcome::Corrected:
        softCounter("soft_corrected")++;
        emitEvent(EventKind::FaultCorrected, _refIndex,
                  vc.lineVAddr(ref), l.meta.physBlockAddr);
        return;
      case FaultOutcome::Detected:
        break;
    }
    softCounter("soft_detected")++;
    emitEvent(EventKind::FaultDetected, _refIndex, vc.lineVAddr(ref),
              l.meta.physBlockAddr);
    if (l.meta.dirty)
        machineCheckV(ci, ref);
    recoverVLine(ci, ref);
}

void
VrHierarchy::strikeL2(const char *ctr, std::uint64_t h)
{
    LineRef rref = _r.faultTarget(h >> 9);
    softCounter(ctr)++;
    RCache::Line rl = _r.line(rref);
    if (!rl.valid) {
        softCounter("soft_masked")++;
        return;
    }
    std::uint32_t line_addr = _r.lineAddr(rref);
    switch (_r.tags().absorbFault(softErrorFlips(h))) {
      case FaultOutcome::Silent:
        softCounter("soft_silent")++;
        return;
      case FaultOutcome::Corrected:
        softCounter("soft_corrected")++;
        emitEvent(EventKind::FaultCorrected, _refIndex, 0, line_addr);
        return;
      case FaultOutcome::Detected:
        break;
    }
    softCounter("soft_detected")++;
    emitEvent(EventKind::FaultDetected, _refIndex, 0, line_addr);

    bool dirty_below = rl.meta.rdirty;
    for (std::uint32_t i = 0; i < _r.subCount(); ++i)
        dirty_below |= rl.meta.subs[i].vdirty;
    if (dirty_below)
        machineCheckR(rref);
    recoverRLine(rref);
}

void
VrHierarchy::recoverVLine(unsigned ci, LineRef ref)
{
    // Inclusion guarantees the line has an R-cache parent, and the
    // r-pointer (plus the page offset) addresses it without translating:
    // hardware invalidates the corrupt line and refetches it from the
    // parent. The refetched bits are identical to what the strike hit,
    // so architectural state is unchanged -- the cost is one extra
    // level-2 access, no bus traffic. This is the cheap-recovery story
    // inclusion buys the V-R design.
    VCache &vc = *_l1[ci];
    VCache::Line l = vc.line(ref);
    PhysAddr pa(l.meta.physBlockAddr);
    auto rref = _r.probe(pa);
    panicIfNot(rref.has_value(),
               "detected-corrupt V line has no R-cache parent");
    softCounter("soft_recovered")++;
    softCounter("soft_refetches_l2")++;
    emitEvent(EventKind::FaultCorrected, _refIndex, vc.lineVAddr(ref),
              pa.value());
}

void
VrHierarchy::recoverRLine(LineRef rref)
{
    // Nothing below the line is dirty, so memory holds current data:
    // refetch the same physical line over the bus. Clean level-1
    // children hold identical content and survive; the directory
    // subentries are rebuilt by walking the children's reverse links.
    // The snoop-filter presence bits were derived from the now-suspect
    // directory, so they are scrubbed and rebuilt too.
    std::uint32_t line_addr = _r.lineAddr(rref);
    softCounter("soft_recovered")++;
    softCounter("soft_refetches_bus")++;
    _bus.broadcast(
        BusTransaction{BusOp::ReadMiss, PhysAddr(line_addr), cpuId()});
    rebuildPresence();
    emitEvent(EventKind::FaultCorrected, _refIndex, 0, line_addr);
}

void
VrHierarchy::machineCheckV(unsigned ci, LineRef ref)
{
    // A dirty line with uncorrectable array bits: the only current copy
    // of the data is lost. Unlink it so the machine state the campaign
    // quarantines (or the fuzzer keeps driving) is still coherent.
    VCache &vc = *_l1[ci];
    VCache::Line l = vc.line(ref);
    PhysAddr pa(l.meta.physBlockAddr);
    auto rref = _r.probe(pa);
    panicIfNot(rref.has_value(), "machine-checked V line has no parent");
    RSubentry &s = _r.sub(*rref, pa);
    s.inclusion = false;
    s.vdirty = false;
    _dir->unlink(pa);
    vc.tags().noteUncorrectable();
    vc.invalidate(ref);
    softCounter("machine_checks")++;
    emitEvent(EventKind::FaultUnrecoverable, _refIndex, 0, pa.value());
    throw FaultUnrecoverable(
        "uncorrectable soft error in a dirty level-1 line");
}

void
VrHierarchy::machineCheckR(LineRef rref)
{
    // The line shields dirty data (its own or a child's) behind array
    // bits that can no longer be trusted: writing any of it back would
    // propagate corruption, so the whole line and its children are
    // dropped and the loss reported.
    RCache::Line rl = _r.line(rref);
    std::uint32_t line_addr = _r.lineAddr(rref);
    for (std::uint32_t i = 0; i < _r.subCount(); ++i) {
        RSubentry &s = rl.meta.subs[i];
        std::uint32_t sub_addr = line_addr + i * _params.l1.blockBytes;
        if (s.buffer) {
            auto e = _wb.remove(sub_addr);
            panicIfNot(e.has_value(), "buffer bit with no buffer entry");
            s.buffer = false;
        }
        if (s.inclusion) {
            auto [oc, child] = directoryChild(PhysAddr(sub_addr));
            oc->invalidate(child);
            s.inclusion = false;
            _dir->unlink(PhysAddr(sub_addr));
        }
        s.vdirty = false;
    }
    _r.tags().noteUncorrectable();
    _r.invalidate(rref);
    _bus.noteBlockUncached(cpuId(), line_addr);
    softCounter("machine_checks")++;
    emitEvent(EventKind::FaultUnrecoverable, _refIndex, 0, line_addr);
    throw FaultUnrecoverable(
        "uncorrectable soft error in a level-2 line covering dirty data");
}

void
VrHierarchy::rebuildPresence()
{
    _bus.clearPresence(cpuId());
    _r.tags().forEachLine([&](LineRef ref, const RCache::Line &l) {
        if (l.valid)
            _bus.noteBlockCached(cpuId(), _r.lineAddr(ref));
    });
    softCounter("presence_scrubs")++;
}

void
VrHierarchy::contextSwitch(ProcessId new_pid)
{
    (void)new_pid;  // level-1 tags carry no process id
    if (_l1Virtual) {
        // Virtual tags are ambiguous across processes: swap-invalidate
        // everything; dirty blocks write back lazily on replacement.
        for (unsigned i = 0; i < l1Count(); ++i)
            _l1[i]->markAllSwapped();
    }
    // Physical tags (R-R mode) stay valid across switches.
    (*_c.contextSwitches)++;
    emitEvent(EventKind::ContextSwitch, _refIndex);
}

SnoopResult
VrHierarchy::snoopReadMiss(LineRef rref)
{
    SnoopResult res;
    RCache::Line rline = _r.line(rref);
    std::uint32_t line_addr = _r.lineAddr(rref);
    res.sharedAck = true;

    for (std::uint32_t i = 0; i < _r.subCount(); ++i) {
        RSubentry &s = rline.meta.subs[i];
        std::uint32_t sub_addr = line_addr + i * _params.l1.blockBytes;
        if (s.inclusion && s.vdirty) {
            // flush(v-pointer): the V-cache supplies, stays valid clean.
            auto [oc, child] = directoryChild(PhysAddr(sub_addr));
            oc->line(child).meta.dirty = false;
            s.vdirty = false;
            res.suppliedData = true;
            (*_c.l1CoherenceMsgs)++;
            (*_c.l1Flushes)++;
            (*_c.memoryWrites)++;
            emitEvent(EventKind::L1Flush, _refIndex,
                      oc->lineVAddr(child), sub_addr);
        } else if (s.buffer && s.vdirty) {
            // flush(buffer): the write buffer supplies; entry retires.
            auto e = _wb.remove(sub_addr);
            panicIfNot(e.has_value(), "buffer bit with no buffer entry");
            s.buffer = false;
            s.vdirty = false;
            res.suppliedData = true;
            (*_c.l1CoherenceMsgs)++;
            (*_c.bufferFlushes)++;
            (*_c.memoryWrites)++;
            emitEvent(EventKind::BufferFlush, _refIndex, 0, sub_addr);
        }
    }
    if (rline.meta.rdirty) {
        rline.meta.rdirty = false;
        res.suppliedData = true;
        (*_c.memoryWrites)++;
    }
    rline.meta.state = CoherenceState::Shared;
    return res;
}

void
VrHierarchy::snoopInvalidate(LineRef rref)
{
    RCache::Line rline = _r.line(rref);
    std::uint32_t line_addr = _r.lineAddr(rref);

    for (std::uint32_t i = 0; i < _r.subCount(); ++i) {
        RSubentry &s = rline.meta.subs[i];
        std::uint32_t sub_addr = line_addr + i * _params.l1.blockBytes;
        if (s.inclusion) {
            auto [oc, child] = directoryChild(PhysAddr(sub_addr));
            std::uint32_t child_block = oc->lineVAddr(child);
            oc->invalidate(child);
            s.inclusion = false;
            _dir->unlink(PhysAddr(sub_addr));
            (*_c.l1CoherenceMsgs)++;
            (*_c.l1Invalidations)++;
            emitEvent(EventKind::L1Invalidation, _refIndex,
                      child_block, sub_addr);
        }
        if (s.buffer) {
            // invalidation(buffer): the parked write-back is obsolete.
            auto e = _wb.remove(sub_addr);
            panicIfNot(e.has_value(), "buffer bit with no buffer entry");
            s.buffer = false;
            (*_c.l1CoherenceMsgs)++;
            (*_c.bufferInvalidations)++;
            emitEvent(EventKind::BufferInvalidation, _refIndex, 0,
                      sub_addr);
        }
    }
    _r.invalidate(rref);
    _bus.noteBlockUncached(cpuId(), line_addr);
}

SnoopResult
VrHierarchy::snoopUpdate(LineRef rref)
{
    // A foreign write-update: every copy absorbs the new data in
    // place. Memory was updated on the bus, so nothing here is dirty
    // any more; the line stays valid and shared. The R-cache still
    // shields level 1: the update percolates only to an actual child.
    SnoopResult res;
    res.sharedAck = true;
    RCache::Line rline = _r.line(rref);
    rline.meta.state = CoherenceState::Shared;
    rline.meta.rdirty = false;

    for (std::uint32_t i = 0; i < _r.subCount(); ++i) {
        RSubentry &s = rline.meta.subs[i];
        if (s.inclusion) {
            auto [oc, child] =
                directoryChild(PhysAddr(_r.subBlockAddr(rref, i)));
            oc->line(child).meta.dirty = false;
            s.vdirty = false;
            (*_c.l1CoherenceMsgs)++;
            (*_c.l1Updates)++;
            emitEvent(EventKind::L1Update, _refIndex,
                      oc->lineVAddr(child), _r.lineAddr(rref));
        }
        // A buffered (dirty) copy implies we held the block Private, in
        // which case no foreign writer can exist: nothing to do here.
    }
    return res;
}

SnoopResult
VrHierarchy::snoop(const BusTransaction &tx)
{
    SnoopResult res;
    auto rref = _r.probe(tx.blockAddr);
    (*_c.snoops)++;
    if (!rref) {
        (*_c.snoopMisses)++;
        return res;
    }
    (*_c.snoopHits)++;

    switch (tx.op) {
      case BusOp::ReadMiss:
        res = snoopReadMiss(*rref);
        break;
      case BusOp::Invalidate:
        snoopInvalidate(*rref);
        break;
      case BusOp::ReadModWrite:
        res = snoopReadMiss(*rref);
        snoopInvalidate(*rref);
        res.sharedAck = false;  // nothing survives an invalidation
        break;
      case BusOp::Update:
        res = snoopUpdate(*rref);
        break;
    }
    return res;
}

BlockProbe
VrHierarchy::probeBlock(PhysAddr l2_line) const
{
    BlockProbe p;
    std::uint32_t line_addr = l2Block(l2_line.value());

    auto rref = _r.probe(PhysAddr(line_addr));
    if (rref) {
        const RCache::Line &rl = _r.line(*rref);
        p.l2Present = true;
        p.state = rl.meta.state;
        p.l2Dirty = rl.meta.rdirty;
    }

    // Scan the level-1 caches by physical link, deliberately not by the
    // inclusion pointers: the oracle's job is to cross-check the two.
    std::vector<std::uint32_t> copies(_r.subCount(), 0);
    std::vector<std::uint8_t> sub_dirty(_r.subCount(), 0);
    for (unsigned ci = 0; ci < l1Count(); ++ci) {
        _l1[ci]->tags().forEachLine(
            [&](LineRef, const VCache::Line &l) {
                if (!l.valid ||
                    l2Block(l.meta.physBlockAddr) != line_addr) {
                    return;
                }
                std::uint32_t sub =
                    (l.meta.physBlockAddr - line_addr) /
                    _params.l1.blockBytes;
                copies[sub] += 1;
                p.l1Copies += 1;
                p.anyL1Dirty |= l.meta.dirty;
                sub_dirty[sub] |= l.meta.dirty ? 1 : 0;
            });
    }

    for (std::uint32_t i = 0; i < _r.subCount(); ++i) {
        std::uint32_t sub_addr = line_addr + i * _params.l1.blockBytes;
        bool parked = _wb.contains(sub_addr);
        p.buffered += parked ? 1 : 0;
        p.maxAliases = std::max(p.maxAliases, copies[i]);

        bool incl = false, buf = false, vdirty = false;
        if (rref) {
            const RSubentry &s = _r.line(*rref).meta.subs[i];
            incl = s.inclusion;
            buf = s.buffer;
            vdirty = s.vdirty;
        }
        // The directory bits must agree with the physical scan: every
        // level-1 copy needs its inclusion bit, every parked write-back
        // its buffer bit, and vice versa.
        if (incl != (copies[i] > 0) || buf != parked)
            p.linkageOk = false;
        if (buf && !vdirty)
            p.linkageOk = false;
        if (incl && copies[i] == 1 && vdirty != (sub_dirty[i] != 0))
            p.linkageOk = false;
    }
    return p;
}

void
VrHierarchy::forEachCachedLine(
    const std::function<void(PhysAddr)> &fn) const
{
    // Inclusion: the R-cache directory covers every level-1 copy and
    // every parked write-back (buffer bits keep the parent alive), so
    // enumerating the second level enumerates everything we hold.
    _r.tags().forEachLine([&](LineRef ref, const RCache::Line &l) {
        if (l.valid)
            fn(PhysAddr(_r.lineAddr(ref)));
    });
}

void
VrHierarchy::checkInvariants() const
{
    // Level-1 -> level-2 direction: every valid V line has a parent
    // whose inclusion bit is set and a directory link naming exactly
    // this line, whatever the directory organization.
    for (unsigned ci = 0; ci < l1Count(); ++ci) {
        const VCache &vc = *_l1[ci];
        vc.tags().forEachLine([&](LineRef ref, const VCache::Line &l) {
            if (!l.valid)
                return;
            PhysAddr pa(l.meta.physBlockAddr);
            auto rref = _r.probe(pa);
            panicIfNot(rref.has_value(),
                       "inclusion violated: V block with no parent");
            const RSubentry &s = _r.sub(*rref, pa);
            panicIfNot(s.inclusion, "parent inclusion bit clear");
            auto link = _dir->lookup(pa);
            panicIfNot(link.has_value(),
                       "V block with no directory link");
            panicIfNot(link->l1Index == ci,
                       "directory points at the wrong L1");
            panicIfNot(link->childAddrBlock == vc.lineVAddr(ref),
                       "directory names the wrong child");
            panicIfNot(s.vdirty == l.meta.dirty,
                       "vdirty bit out of sync with the child");
            if (l.meta.dirty) {
                panicIfNot(_r.line(*rref).meta.state ==
                               CoherenceState::Private,
                           "dirty child in a non-private line");
            }
        });
    }

    // Level-2 -> level-1 direction, plus buffer-bit consistency.
    _r.tags().forEachLine(
        [&](LineRef rref, const RCache::Line &rl) {
            if (!rl.valid)
                return;
            for (std::uint32_t i = 0; i < _r.subCount(); ++i) {
                const RSubentry &s = rl.meta.subs[i];
                std::uint32_t sub_addr =
                    _r.lineAddr(rref) + i * _params.l1.blockBytes;
                panicIfNot(!(s.inclusion && s.buffer),
                           "block both in V-cache and write buffer");
                if (s.inclusion) {
                    auto link = _dir->lookup(PhysAddr(sub_addr));
                    panicIfNot(link.has_value(),
                               "inclusion bit with no directory link");
                    const VCache &oc = *_l1[link->l1Index];
                    auto child = oc.findOccupied(link->childAddrBlock);
                    panicIfNot(child.has_value(),
                               "inclusion bit with no child");
                    panicIfNot(oc.line(*child).meta.physBlockAddr ==
                                   sub_addr,
                               "child links to a different block");
                }
                if (s.buffer) {
                    panicIfNot(_wb.contains(sub_addr),
                               "buffer bit with no write-buffer entry");
                    panicIfNot(s.vdirty,
                               "buffered block must be marked vdirty");
                }
            }
        });

    // Directory -> hierarchy direction: every live link points at a
    // present parent subentry with its inclusion bit set and at an
    // occupied level-1 line holding that block (a bounded directory
    // must never retain links for departed children).
    _dir->forEachLink([&](PhysAddr pa, const SynonymChild &child) {
        auto rref = _r.probe(pa);
        panicIfNot(rref.has_value(), "directory link with no parent");
        panicIfNot(_r.sub(*rref, pa).inclusion,
                   "directory link without an inclusion bit");
        const VCache &oc = *_l1[child.l1Index];
        auto ref = oc.findOccupied(child.childAddrBlock);
        panicIfNot(ref.has_value(), "directory link with no child");
        panicIfNot(oc.line(*ref).meta.physBlockAddr == pa.value(),
                   "directory link to a child of a different block");
    });

    // Organization-specific invariants (architected pointer-bit
    // reconstruction for the paper's scheme; set-uniqueness for the
    // reverse-lookup table).
    _dir->checkInvariants();
}

} // namespace vrc
