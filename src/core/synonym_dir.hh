/**
 * @file
 * Pluggable synonym/coherence-linkage directories for V-R hierarchies.
 *
 * A two-level virtual-real hierarchy must answer one question on every
 * R-cache hit and every percolating bus request: *which level-1 line
 * (if any) holds this physical sub-block, and under what level-1
 * address?* The paper answers it with architected r-pointer/v-pointer
 * back-maps stored beside the tags (Figure 3); the reverse-lookup-table
 * strategy (Desai & Deshmukh, arXiv 2108.00444) answers it with a
 * bounded associative table indexed by physical block address.
 *
 * SynonymDirectory abstracts exactly that question so the hierarchy
 * proper stays organization-agnostic:
 *
 *  - lookup(pa)       physical block -> the level-1 child, if linked
 *  - link(pa, ...)    a level-1 fill/move/retag took ownership of pa
 *  - unlink(pa)       the level-1 copy is gone (evict, invalidation,
 *                     remap flush, machine check)
 *  - forEachLink(fn)  enumerate every link (invariant cross-checks)
 *
 * Ownership split: the *presence* bits (inclusion/buffer/vdirty in the
 * RSubentry) remain owned by the hierarchy in every organization --
 * they drive the relaxed-inclusion replacement rule and the coherence
 * shield, and keep probeBlock()/the oracle organization-agnostic. The
 * directory owns only the child *locator*.
 *
 * The directory is page-size-agnostic by construction: link/unlink/
 * lookup speak block addresses only, so superpage work plugs in
 * without touching this interface (pointer-bit widths are an
 * implementation detail of the pointer organization).
 */

#ifndef VRC_CORE_SYNONYM_DIR_HH
#define VRC_CORE_SYNONYM_DIR_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "base/addr.hh"
#include "core/config.hh"

namespace vrc
{

class VCache;
class RCache;

/** Which synonym-directory organization a V-R hierarchy uses. */
enum class SynonymOrg : std::uint8_t
{
    Pointer,       ///< the paper's r-pointer/v-pointer back-maps
    ReverseLookup  ///< bounded reverse-lookup table (RLT)
};

/** Printable organization name. */
inline const char *
synonymOrgName(SynonymOrg org)
{
    switch (org) {
      case SynonymOrg::Pointer:
        return "pointer";
      case SynonymOrg::ReverseLookup:
        return "rlt";
    }
    panic("synonymOrgName: unknown SynonymOrg ",
          static_cast<unsigned>(org));
}

/** The level-1 child a physical block is linked to. */
struct SynonymChild
{
    std::uint8_t l1Index = 0;          ///< which level-1 cache
    std::uint32_t childAddrBlock = 0;  ///< level-1 block address
                                       ///< (virtual in V-R mode)
};

/**
 * Abstract synonym directory: the map from physical (level-1-sized)
 * block addresses to the level-1 line holding them.
 */
class SynonymDirectory
{
  public:
    /**
     * Called by link() when a bounded directory must evict an existing
     * link to make room: the hierarchy back-invalidates the victim's
     * level-1 copy (parking dirty data in the write buffer) and calls
     * unlink() on the victim's address before link() proceeds.
     */
    using BackInvalidate =
        std::function<void(PhysAddr, const SynonymChild &)>;

    virtual ~SynonymDirectory() = default;

    /** The organization this directory implements. */
    virtual SynonymOrg org() const = 0;

    /** The level-1 child currently linked to @p pa, if any. */
    virtual std::optional<SynonymChild> lookup(PhysAddr pa) const = 0;

    /**
     * Record that level-1 cache @p l1_index now holds physical block
     * @p pa under level-1 block address @p child_block. Updates an
     * existing link for @p pa in place (synonym retag/move); a bounded
     * directory may first invoke @p evict_child on a conflict victim.
     */
    virtual void link(PhysAddr pa, unsigned l1_index,
                      std::uint32_t child_block,
                      const BackInvalidate &evict_child) = 0;

    /** Drop the link for @p pa (the level-1 copy is gone). */
    virtual void unlink(PhysAddr pa) = 0;

    /** Enumerate every live link (invariant cross-checking). */
    virtual void forEachLink(
        const std::function<void(PhysAddr, const SynonymChild &)> &fn)
        const = 0;

    /**
     * Architected storage this organization adds beyond the plain
     * tag/state arrays, in bits (directory-overhead comparisons).
     */
    virtual std::uint64_t storageBits() const = 0;

    /** Organization-specific internal invariants (panics on failure). */
    virtual void checkInvariants() const = 0;
};

/**
 * Build the directory for @p org over the given level-1 caches and
 * R-cache. The arrays/caches must outlive the directory.
 */
std::unique_ptr<SynonymDirectory> makeSynonymDirectory(
    SynonymOrg org, const HierarchyParams &params,
    std::array<std::unique_ptr<VCache>, 2> &l1, unsigned l1_count,
    RCache &r);

} // namespace vrc

#endif // VRC_CORE_SYNONYM_DIR_HH
