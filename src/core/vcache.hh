/**
 * @file
 * The virtually-addressed first-level cache (V-cache).
 *
 * Tag entry contents follow Figure 3 of the paper: a virtual tag, an
 * r-pointer (the low log2(R-cache-size / page-size) bits of the physical
 * page number, which with the page offset addresses the parent entry in
 * the R-cache), a dirty bit, a valid bit, and a swapped-valid bit.
 *
 * The swapped-valid (sv) bit implements incremental write-back across
 * context switches: markAllSwapped() "invalidates" every block for hit
 * purposes while retaining contents, and a dirty swapped block is only
 * written back when its slot is eventually reclaimed.
 *
 * Alongside the architected r-pointer bits the simulator keeps the full
 * physical block address of each line. Hardware does not store those
 * bits -- it relocates the parent by indexing the R-cache with
 * r-pointer + page offset and searching the set -- but the information
 * content is identical. The r-pointer bits themselves are owned and
 * written by the hierarchy's SynonymDirectory (the pointer
 * organization), which also verifies that the architected bits
 * reconstruct the same R-cache set; this cache only provides the
 * storage.
 */

#ifndef VRC_CORE_VCACHE_HH
#define VRC_CORE_VCACHE_HH

#include <cstdint>
#include <optional>

#include "base/addr.hh"
#include "base/types.hh"
#include "cache/tag_store.hh"
#include "core/clock.hh"
#include "core/config.hh"
#include "core/timing.hh"

namespace vrc
{

/** Per-line metadata of the V-cache (Figure 3, top). */
struct VLineMeta
{
    bool dirty = false;
    bool swappedValid = false;  ///< belongs to a switched-out process
    std::uint32_t rPointer = 0; ///< architected link bits to the R-cache
    std::uint32_t physBlockAddr = 0; ///< simulator-held full link
};

/** The virtually-indexed, virtually-tagged level-1 cache. */
class VCache
{
  public:
    /**
     * @param params     size/block/associativity of this cache
     * @param seed       replacement randomness seed
     * @param arena      optional arena the tag arrays are carved from
     */
    explicit VCache(const CacheParams &params,
                    std::uint64_t seed = 0x5ca1e,
                    Arena *arena = nullptr);

    using Store = TagStore<VLineMeta>;
    using Line = Store::Line;

    /**
     * Look up a virtual address.
     *
     * @return the line location on a *valid* hit (present and not
     *         swapped), nullopt otherwise. Updates recency on hit.
     */
    std::optional<LineRef> lookup(VirtAddr va);

    /** Pick the replacement victim for @p va's set. */
    LineRef victimFor(VirtAddr va);

    /**
     * Install a block for @p va into @p slot. The architected
     * r-pointer bits are not written here: the hierarchy's synonym
     * directory links parent and child right after every install.
     *
     * @param pa_block block-aligned physical address
     * @param dirty    initial dirty state
     */
    Line install(LineRef slot, VirtAddr va, std::uint32_t pa_block,
                 bool dirty);

    /**
     * Re-tag an existing line to a new virtual address without moving
     * data (synonym "sameset" relink). Clears swapped-valid, preserves
     * dirty and the physical link.
     */
    void retag(LineRef slot, VirtAddr va);

    /** Invalidate one line completely (drops content). */
    void invalidate(LineRef slot) { _tags.invalidate(slot); }

    /** Set the swapped-valid bit on every occupied line (context switch). */
    void markAllSwapped();

    /** Direct line access (a view into the tag arrays). */
    Line line(LineRef ref) { return _tags.line(ref); }
    Line line(LineRef ref) const { return _tags.line(ref); }

    /** Block-aligned *virtual* address an occupied line maps to. */
    std::uint32_t
    lineVAddr(LineRef ref) const
    {
        return _tags.lineAddr(ref);
    }

    /** Set index of a virtual address. */
    std::uint32_t
    setIndex(VirtAddr va) const
    {
        return _tags.geometry().setIndex(va.value());
    }

    /**
     * Find the occupied line (valid or swapped) holding virtual block
     * @p va_block, if any. Does not update recency.
     */
    std::optional<LineRef> findOccupied(std::uint32_t va_block) const;

    /**
     * Location a soft-error strike with parameter hash @p h lands on
     * (uniform over the array; the cell may well be invalid, in which
     * case the strike is architecturally masked).
     */
    LineRef faultTarget(std::uint64_t h) const;

    const CacheGeometry &geometry() const { return _tags.geometry(); }
    Store &tags() { return _tags; }
    const Store &tags() const { return _tags; }

    // --- per-access timing (cycle engine) ----------------------------

    /**
     * Whether a level-1 lookup is translation-free. True for the
     * paper's V-cache (virtual tags: the TLB sits behind it, so the
     * translation slowdown never applies); the R-R hierarchies set it
     * false because their physically-tagged level 1 translates on
     * every access and pays TimingParams::l1SlowdownPct.
     */
    void setTranslationFree(bool on) { _translationFree = on; }
    bool translationFree() const { return _translationFree; }

    /** This cache's per-access hit cost under @p p (t1 units). */
    Tick
    hitCost(const TimingParams &p) const
    {
        return _translationFree ? p.t1 : p.effectiveT1();
    }

  private:
    Store _tags;
    bool _translationFree = true;
};

} // namespace vrc

#endif // VRC_CORE_VCACHE_HH
