/**
 * @file
 * Deliberate-bug switches for checker validation.
 *
 * A checker that never fires is indistinguishable from one that works.
 * These flags let a test (or `vrc-fuzz --smoke`) flip a single known
 * invariant update inside a hierarchy and assert that the coherence
 * oracle reports the resulting corruption. They are plain globals --
 * the simulator is single-threaded per machine -- and default to off,
 * so normal builds and runs are unaffected.
 */

#ifndef VRC_CORE_MUTATION_HH
#define VRC_CORE_MUTATION_HH

namespace vrc
{

/** Switchable deliberate bugs (all off by default). */
struct MutationFlags
{
    /**
     * Skip setting the inclusion bit when a level-2 hit refills a
     * level-1 copy (VrHierarchy::handleRHit). The R-cache then thinks
     * the V-cache holds nothing, so a later replacement will drop the
     * line without killing the level-1 child -- exactly the class of
     * bookkeeping bug the oracle's linkage check exists to catch.
     */
    bool dropInclusionUpdate = false;
};

/** Process-wide mutation flags (off unless a test enables one). */
inline MutationFlags &
mutationFlags()
{
    static MutationFlags flags;
    return flags;
}

} // namespace vrc

#endif // VRC_CORE_MUTATION_HH
