#include "core/timing.hh"

namespace vrc
{

double
avgAccessTime(double h1, double h2, const TimingParams &p)
{
    double miss1 = 1.0 - h1;
    return h1 * p.effectiveT1() + miss1 * h2 * p.t2 +
        miss1 * (1.0 - h2) * p.tm;
}

double
avgAccessTimeTwoTerm(double h1, double h2, const TimingParams &p)
{
    return h1 * p.effectiveT1() + (1.0 - h1) * h2 * p.t2;
}

double
crossoverSlowdownPct(double h1_vr, double h2_vr, double h1_rr,
                     double h2_rr, const TimingParams &p)
{
    // Solve h1_rr*t1*(1+x/100) + (1-h1_rr)*h2_rr*t2
    //     = h1_vr*t1          + (1-h1_vr)*h2_vr*t2   for x.
    double lhs_fixed = (1.0 - h1_rr) * h2_rr * p.t2;
    double rhs = h1_vr * p.t1 + (1.0 - h1_vr) * h2_vr * p.t2;
    if (h1_rr <= 0.0)
        return 0.0;
    double x = (rhs - lhs_fixed - h1_rr * p.t1) / (h1_rr * p.t1);
    return x * 100.0;
}

} // namespace vrc
