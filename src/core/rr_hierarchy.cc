#include "core/rr_hierarchy.hh"

#include <algorithm>

#include "base/fault.hh"
#include "base/log.hh"
#include "vm/addr_space.hh"

namespace vrc
{

RrNoInclHierarchy::RrNoInclHierarchy(const HierarchyParams &params,
                                     AddressSpaceManager &spaces,
                                     SharedBus &bus)
    : _params(params), _spaces(spaces), _bus(bus),
      _l2(CacheGeometry(params.l2.sizeBytes, params.l2.blockBytes,
                        params.l2.assoc),
          params.l2.policy, 0xbeef, &_arena),
      _wb(params.writeBufferDepth, params.writeBufferDrainLatency),
      _tlb(params.tlbEntries, params.tlbAssoc)
{
    CacheParams l1 = params.l1;
    if (params.splitL1) {
        panicIfNot(l1.sizeBytes >= 2 * l1.blockBytes,
                   "split level-1 cache too small");
        l1.sizeBytes /= 2;
    }
    CacheGeometry g1(l1.sizeBytes, l1.blockBytes, l1.assoc);
    _l1[0] = std::make_unique<L1Store>(g1, l1.policy, 0xaaaa, &_arena);
    if (params.splitL1)
        _l1[1] = std::make_unique<L1Store>(g1, l1.policy, 0xbbbb,
                                           &_arena);
    for (unsigned i = 0; i < l1Count(); ++i)
        _l1[i]->setProtection(params.l1.protection);
    _l2.setProtection(params.l2.protection);
    _wb.setDrainHandler(
        [this](const WriteBufferEntry &e) { onWriteBufferDrain(e); });

    StatGroup &sg = stats();
    _c.writebackCompletions = &sg.handle("writeback_completions");
    _c.memoryWrites = &sg.handle("memory_writes");
    _c.writebacksBypassingL2 = &sg.handle("writebacks_bypassing_l2");
    _c.invalidationsSent = &sg.handle("invalidations_sent");
    _c.updatesSent = &sg.handle("updates_sent");
    _c.wbStalls = &sg.handle("wb_stalls");
    _c.writebacks = &sg.handle("writebacks");
    _c.writebackCancels = &sg.handle("writeback_cancels");
    _c.l2Hits = &sg.handle("l2_hits");
    _c.bufferPullbacks = &sg.handle("buffer_pullbacks");
    _c.misses = &sg.handle("misses");
    _c.fillsFromCache = &sg.handle("fills_from_cache");
    _c.fillsFromMemory = &sg.handle("fills_from_memory");
    _c.contextSwitches = &sg.handle("context_switches");
    _c.l1CoherenceMsgs = &sg.handle("l1_coherence_msgs");
    _c.l1Probes = &sg.handle("l1_probes");
    _c.l1Updates = &sg.handle("l1_updates");
    _c.l1Flushes = &sg.handle("l1_flushes");
    _c.l1Invalidations = &sg.handle("l1_invalidations");
    _c.bufferFlushes = &sg.handle("buffer_flushes");
    _c.bufferInvalidations = &sg.handle("buffer_invalidations");
    _c.tlbShootdowns = &sg.handle("tlb_shootdowns");

    // Without inclusion the second level cannot prove what the first
    // level holds, so this hierarchy must see every bus transaction:
    // attach unfilterable (this is the paper's disturbance baseline).
    setCpuId(bus.attach(this));
}

PhysAddr
RrNoInclHierarchy::translate(const MemAccess &acc)
{
    Ppn ppn = _tlb.translate(acc.pid, acc.va.vpn(_params.pageSize),
                             _spaces);
    return makePhysAddr(ppn, acc.va.pageOffset(_params.pageSize),
                        _params.pageSize);
}

void
RrNoInclHierarchy::onWriteBufferDrain(const WriteBufferEntry &entry)
{
    // Without inclusion the level-2 cache may or may not still hold the
    // line; absorb the data there if it does, else write memory.
    if (auto l2ref = _l2.find(entry.physBlockAddr)) {
        _l2.line(*l2ref).meta.rdirty = true;
        (*_c.writebackCompletions)++;
    } else {
        (*_c.memoryWrites)++;
        (*_c.writebacksBypassingL2)++;
    }
}

void
RrNoInclHierarchy::issueInvalidate(PhysAddr pa)
{
    _bus.broadcast(BusTransaction{BusOp::Invalidate,
                                  PhysAddr(l2Block(pa.value())),
                                  cpuId()});
    (*_c.invalidationsSent)++;
}

bool
RrNoInclHierarchy::writeToShared(PhysAddr pa, CoherenceState &state)
{
    // Clear coherence for a write to a Shared block. Returns true when
    // the local copy should become dirty (the write stayed local).
    if (_params.protocol == CoherencePolicy::WriteInvalidate) {
        issueInvalidate(pa);
        state = CoherenceState::Private;
        return true;
    }
    BusResult br = _bus.broadcast(BusTransaction{
        BusOp::Update, PhysAddr(l2Block(pa.value())), cpuId()});
    (*_c.updatesSent)++;
    (*_c.memoryWrites)++;
    state = br.shared ? CoherenceState::Shared : CoherenceState::Private;
    return false;
}

// ===== soft-error strikes and recovery (no-inclusion baseline) ======
//
// State-preserving like VrHierarchy's model (see vr_hierarchy.cc), but
// with the recovery options this organization actually has: a detected
// clean level-1 line may find a copy in level 2 or must refetch over
// the bus, and a detected *dirty* level-1 line is lost outright --
// there is no inclusion parent holding the only other copy's metadata.

namespace
{

template <typename Store>
LineRef
strikeTarget(const Store &s, std::uint64_t h)
{
    const CacheGeometry &g = s.geometry();
    return LineRef{static_cast<std::uint32_t>(h % g.numSets()),
                   static_cast<std::uint32_t>((h / g.numSets()) %
                                              g.assoc())};
}

} // namespace

void
RrNoInclHierarchy::maybeInjectSoftErrors()
{
    const SoftErrorConfig &sc = softErrorConfig();
    const std::uint64_t cpu = cpuId();
    if (softErrorDecision("l1-tag", cpu, _refIndex, sc.tag)) {
        strikeL1("soft_faults_tag",
                 softErrorHash("l1-tag-cell", cpu, _refIndex));
    }
    if (softErrorDecision("l2-state", cpu, _refIndex, sc.state)) {
        strikeL2("soft_faults_state",
                 softErrorHash("l2-state-cell", cpu, _refIndex));
    }
    // No ptr site: this organization keeps no pointer metadata. Fewer
    // vulnerable arrays -- but costlier recovery for the ones it has.
}

void
RrNoInclHierarchy::strikeL1(const char *ctr, std::uint64_t h)
{
    unsigned ci = static_cast<unsigned>((h >> 7) % l1Count());
    L1Store &store = *_l1[ci];
    LineRef ref = strikeTarget(store, h >> 9);
    softCounter(ctr)++;
    L1Store::Line l = store.line(ref);
    if (!l.valid) {
        softCounter("soft_masked")++;
        return;
    }
    std::uint32_t block_addr = store.lineAddr(ref);
    switch (store.absorbFault(softErrorFlips(h))) {
      case FaultOutcome::Silent:
        softCounter("soft_silent")++;
        return;
      case FaultOutcome::Corrected:
        softCounter("soft_corrected")++;
        emitEvent(EventKind::FaultCorrected, _refIndex, block_addr,
                  block_addr);
        return;
      case FaultOutcome::Detected:
        break;
    }
    softCounter("soft_detected")++;
    emitEvent(EventKind::FaultDetected, _refIndex, block_addr,
              block_addr);
    if (l.meta.dirty) {
        // No inclusion parent: the dirty data existed nowhere else.
        store.noteUncorrectable();
        store.invalidate(ref);
        softCounter("machine_checks")++;
        emitEvent(EventKind::FaultUnrecoverable, _refIndex, 0,
                  block_addr);
        throw FaultUnrecoverable(
            "uncorrectable soft error in a dirty level-1 line "
            "(no inclusion parent)");
    }
    // Clean: level 2 *may* still hold the line -- nothing guarantees
    // it. Probe; on absence pay a full bus refetch.
    softCounter("soft_recovered")++;
    if (_l2.find(block_addr)) {
        softCounter("soft_refetches_l2")++;
    } else {
        softCounter("soft_refetches_bus")++;
        _bus.broadcast(BusTransaction{
            BusOp::ReadMiss, PhysAddr(l2Block(block_addr)), cpuId()});
    }
    emitEvent(EventKind::FaultCorrected, _refIndex, block_addr,
              block_addr);
}

void
RrNoInclHierarchy::strikeL2(const char *ctr, std::uint64_t h)
{
    LineRef ref = strikeTarget(_l2, h >> 9);
    softCounter(ctr)++;
    L2Store::Line l = _l2.line(ref);
    if (!l.valid) {
        softCounter("soft_masked")++;
        return;
    }
    std::uint32_t line_addr = _l2.lineAddr(ref);
    switch (_l2.absorbFault(softErrorFlips(h))) {
      case FaultOutcome::Silent:
        softCounter("soft_silent")++;
        return;
      case FaultOutcome::Corrected:
        softCounter("soft_corrected")++;
        emitEvent(EventKind::FaultCorrected, _refIndex, 0, line_addr);
        return;
      case FaultOutcome::Detected:
        break;
    }
    softCounter("soft_detected")++;
    emitEvent(EventKind::FaultDetected, _refIndex, 0, line_addr);
    if (l.meta.rdirty) {
        _l2.noteUncorrectable();
        _l2.invalidate(ref);
        softCounter("machine_checks")++;
        emitEvent(EventKind::FaultUnrecoverable, _refIndex, 0,
                  line_addr);
        throw FaultUnrecoverable(
            "uncorrectable soft error in a dirty level-2 line");
    }
    softCounter("soft_recovered")++;
    softCounter("soft_refetches_bus")++;
    _bus.broadcast(
        BusTransaction{BusOp::ReadMiss, PhysAddr(line_addr), cpuId()});
    emitEvent(EventKind::FaultCorrected, _refIndex, 0, line_addr);
}

AccessOutcome
RrNoInclHierarchy::access(const MemAccess &acc)
{
    ++_refIndex;
    _wb.tick(_refIndex);
    noteRef(acc.type);
    if (softErrorsArmed())
        maybeInjectSoftErrors();

    PhysAddr pa = translate(acc);
    std::uint32_t pa_block = l1Block(pa.value());
    unsigned ci = l1IndexFor(acc.type);
    L1Store &store = *_l1[ci];

    // 1. Level-1 lookup (physical).
    if (auto hit = store.find(pa_block)) {
        store.touch(*hit);
        L1Store::Line l = store.line(*hit);
        if (acc.type == RefType::Write && !l.meta.dirty) {
            bool dirty = true;
            if (l.meta.state == CoherenceState::Shared) {
                CoherenceState st = l.meta.state;
                dirty = writeToShared(pa, st);
                l.meta.state = st;
            } else {
                l.meta.state = CoherenceState::Private;
            }
            l.meta.dirty = dirty;
            // Keep the level-2 state consistent when it has the line.
            if (auto l2ref = _l2.find(pa_block))
                _l2.line(*l2ref).meta.state = l.meta.state;
        }
        noteL1Hit(acc.type);
        return AccessOutcome::L1Hit;
    }

    // 2. Level-1 miss: replace, parking a dirty victim.
    LineRef slot = store.victim(pa_block);
    L1Store::Line victim = store.line(slot);
    if (victim.valid && victim.meta.dirty) {
        if (_wb.push(store.lineAddr(slot), _refIndex))
            (*_c.wbStalls)++;
        (*_c.writebacks)++;
        noteWriteBack(_refIndex);
    }
    store.invalidate(slot);

    // 2a. The block may be sitting in our own write buffer.
    if (auto pulled = _wb.remove(pa_block)) {
        L1Store::Line l = store.fill(slot, pa_block);
        l.meta.dirty = true;
        l.meta.state = CoherenceState::Private;
        (*_c.writebackCancels)++;
        (*_c.l2Hits)++;
        (*_c.bufferPullbacks)++;
        return AccessOutcome::L2Hit;
    }

    // 3. Level-2 lookup.
    if (auto l2ref = _l2.find(pa_block)) {
        _l2.touch(*l2ref);
        L2Store::Line l2l = _l2.line(*l2ref);
        CoherenceState st = l2l.meta.state;
        bool dirty = acc.type == RefType::Write;
        if (acc.type == RefType::Write) {
            if (st == CoherenceState::Shared)
                dirty = writeToShared(pa, st);
            else
                st = CoherenceState::Private;
            l2l.meta.state = st;
        }
        L1Store::Line l = store.fill(slot, pa_block);
        l.meta.dirty = dirty;
        l.meta.state = st;
        (*_c.l2Hits)++;
        return AccessOutcome::L2Hit;
    }

    // 4. Miss in both levels: bus transaction and fills.
    std::uint32_t line_addr = l2Block(pa.value());
    LineRef l2slot = _l2.victim(line_addr);
    L2Store::Line l2victim = _l2.line(l2slot);
    if (l2victim.valid) {
        if (l2victim.meta.rdirty)
            (*_c.memoryWrites)++;
        emitEvent(EventKind::L2Evict, _refIndex, 0,
                  _l2.lineAddr(l2slot));
    }
    _l2.invalidate(l2slot);

    bool is_write = acc.type == RefType::Write;
    bool update_protocol =
        _params.protocol == CoherencePolicy::WriteUpdate;
    BusOp op = (is_write && !update_protocol) ? BusOp::ReadModWrite
                                              : BusOp::ReadMiss;
    BusResult br = _bus.broadcast(
        BusTransaction{op, PhysAddr(line_addr), cpuId()});
    (*_c.misses)++;
    if (br.suppliedByCache)
        (*_c.fillsFromCache)++;
    else
        (*_c.fillsFromMemory)++;

    CoherenceState st;
    bool dirty = is_write;
    if (is_write && !update_protocol) {
        st = CoherenceState::Private;
    } else {
        st = br.shared ? CoherenceState::Shared : CoherenceState::Private;
        if (is_write && br.shared) {
            _bus.broadcast(BusTransaction{
                BusOp::Update, PhysAddr(line_addr), cpuId()});
            (*_c.updatesSent)++;
            (*_c.memoryWrites)++;
            dirty = false;
        }
    }

    L2Store::Line l2l = _l2.fill(l2slot, line_addr);
    l2l.meta.state = st;
    l2l.meta.rdirty = false;

    L1Store::Line l = store.fill(slot, pa_block);
    l.meta.dirty = dirty;
    l.meta.state = st;
    return AccessOutcome::Miss;
}

void
RrNoInclHierarchy::contextSwitch(ProcessId new_pid)
{
    (void)new_pid;  // physical tags survive context switches
    (*_c.contextSwitches)++;
}

SnoopResult
RrNoInclHierarchy::snoop(const BusTransaction &tx)
{
    SnoopResult res;
    std::uint32_t line_addr = l2Block(tx.blockAddr.value());
    std::uint32_t sub_count = _params.subBlocks();

    // Without inclusion every foreign transaction disturbs level 1:
    // the level-2 directory cannot prove absence.
    (*_c.l1CoherenceMsgs)++;
    (*_c.l1Probes)++;

    if (tx.op == BusOp::Update) {
        // Foreign write-update: refresh every copy in place; memory was
        // updated on the bus so nothing stays dirty.
        for (std::uint32_t i = 0; i < sub_count; ++i) {
            std::uint32_t sub_addr =
                line_addr + i * _params.l1.blockBytes;
            for (unsigned ci = 0; ci < l1Count(); ++ci) {
                if (auto hit = _l1[ci]->find(sub_addr)) {
                    L1Store::Line l = _l1[ci]->line(*hit);
                    l.meta.dirty = false;
                    l.meta.state = CoherenceState::Shared;
                    res.sharedAck = true;
                    (*_c.l1Updates)++;
                }
            }
        }
        if (auto l2ref = _l2.find(line_addr)) {
            L2Store::Line l2l = _l2.line(*l2ref);
            l2l.meta.rdirty = false;
            l2l.meta.state = CoherenceState::Shared;
            res.sharedAck = true;
        }
        return res;
    }

    bool read_part = tx.op != BusOp::Invalidate;
    bool inval_part = tx.op != BusOp::ReadMiss;

    for (std::uint32_t i = 0; i < sub_count; ++i) {
        std::uint32_t sub_addr = line_addr + i * _params.l1.blockBytes;
        for (unsigned ci = 0; ci < l1Count(); ++ci) {
            auto hit = _l1[ci]->find(sub_addr);
            if (!hit)
                continue;
            L1Store::Line l = _l1[ci]->line(*hit);
            if (read_part) {
                res.sharedAck = true;
                if (l.meta.dirty) {
                    // Flush: supply the block and clean the copy.
                    l.meta.dirty = false;
                    res.suppliedData = true;
                    (*_c.l1Flushes)++;
                    (*_c.memoryWrites)++;
                }
                l.meta.state = CoherenceState::Shared;
            }
            if (inval_part) {
                _l1[ci]->invalidate(*hit);
                (*_c.l1Invalidations)++;
            }
        }
        // The write buffer snoops too.
        if (read_part && _wb.contains(sub_addr)) {
            _wb.remove(sub_addr);
            res.suppliedData = true;
            (*_c.bufferFlushes)++;
            (*_c.memoryWrites)++;
        } else if (inval_part && _wb.contains(sub_addr)) {
            _wb.remove(sub_addr);
            (*_c.bufferInvalidations)++;
        }
    }

    // Level 2 snoops independently.
    if (auto l2ref = _l2.find(line_addr)) {
        L2Store::Line l2l = _l2.line(*l2ref);
        if (read_part) {
            res.sharedAck = true;
            if (l2l.meta.rdirty) {
                l2l.meta.rdirty = false;
                res.suppliedData = true;
                (*_c.memoryWrites)++;
            }
            l2l.meta.state = CoherenceState::Shared;
        }
        if (inval_part)
            _l2.invalidate(*l2ref);
    }
    if (inval_part)
        res.sharedAck = false;
    return res;
}

BlockProbe
RrNoInclHierarchy::probeBlock(PhysAddr l2_line) const
{
    BlockProbe p;
    std::uint32_t line_addr = l2Block(l2_line.value());

    if (auto l2ref = _l2.find(line_addr)) {
        const L2Store::Line l = _l2.line(*l2ref);
        p.l2Present = true;
        p.state = l.meta.state;
        p.l2Dirty = l.meta.rdirty;
    }

    bool any_private = false;
    for (std::uint32_t i = 0; i < _params.subBlocks(); ++i) {
        std::uint32_t sub_addr = line_addr + i * _params.l1.blockBytes;
        std::uint32_t copies = 0;
        for (unsigned ci = 0; ci < l1Count(); ++ci) {
            auto hit = _l1[ci]->find(sub_addr);
            if (!hit)
                continue;
            const L1Store::Line l = _l1[ci]->line(*hit);
            copies += 1;
            p.l1Copies += 1;
            p.anyL1Dirty |= l.meta.dirty;
            any_private |= l.meta.state == CoherenceState::Private;
        }
        p.maxAliases = std::max(p.maxAliases, copies);
        if (_wb.contains(sub_addr))
            p.buffered += 1;
    }

    // Without inclusion each level keeps its own state; report the
    // strongest claim any copy makes (a parked dirty write-back implies
    // exclusive ownership too -- nothing else could have written it).
    if (any_private || p.state == CoherenceState::Private ||
        p.buffered > 0) {
        p.state = CoherenceState::Private;
    } else if (p.state == CoherenceState::Invalid && p.l1Copies > 0) {
        p.state = CoherenceState::Shared;
    }
    return p;
}

void
RrNoInclHierarchy::forEachCachedLine(
    const std::function<void(PhysAddr)> &fn) const
{
    // No inclusion: each structure must be enumerated separately.
    _l2.forEachLine([&](LineRef ref, const L2Store::Line &l) {
        if (l.valid)
            fn(PhysAddr(_l2.lineAddr(ref)));
    });
    for (unsigned ci = 0; ci < l1Count(); ++ci) {
        _l1[ci]->forEachLine([&](LineRef ref, const L1Store::Line &l) {
            if (l.valid)
                fn(PhysAddr(l2Block(_l1[ci]->lineAddr(ref))));
        });
    }
    _wb.forEachEntry([&](const WriteBufferEntry &e) {
        fn(PhysAddr(l2Block(e.physBlockAddr)));
    });
}

void
RrNoInclHierarchy::checkInvariants() const
{
    for (unsigned ci = 0; ci < l1Count(); ++ci) {
        _l1[ci]->forEachLine([&](LineRef ref, const L1Store::Line &l) {
            if (!l.valid)
                return;
            panicIfNot(l.meta.state != CoherenceState::Invalid,
                       "valid L1 line with invalid coherence state");
            if (l.meta.dirty) {
                panicIfNot(l.meta.state == CoherenceState::Private,
                           "dirty L1 line must be private");
            }
            // A block is never both live in this L1 and parked in the
            // write buffer (pull-back removes the parked entry first).
            // Exception: with split I/D halves and no inclusion
            // tracking, code that is also written (self-modifying, or
            // adversarial synthetic soup) can sit stale in the I-half
            // while the D-half's dirty copy is parked -- real split
            // non-inclusive machines have the same incoherence, which
            // is why the paper assumes no self-modifying code.
            if (!_params.splitL1) {
                panicIfNot(!_wb.contains(_l1[ci]->lineAddr(ref)),
                           "block both in L1 and in the write buffer");
            }
        });
    }
    _l2.forEachLine([&](LineRef, const L2Store::Line &l) {
        if (!l.valid)
            return;
        panicIfNot(l.meta.state != CoherenceState::Invalid,
                   "valid L2 line with invalid coherence state");
    });
}

} // namespace vrc
