#include "core/factory.hh"

#include "core/rr_hierarchy.hh"
#include "core/vr_hierarchy.hh"

namespace vrc
{

std::unique_ptr<CacheHierarchy>
makeHierarchy(HierarchyKind kind, const HierarchyParams &params,
              AddressSpaceManager &spaces, SharedBus &bus)
{
    switch (kind) {
      case HierarchyKind::VirtualReal:
        return std::make_unique<VrHierarchy>(params, spaces, bus, true);
      case HierarchyKind::RealRealIncl:
        return std::make_unique<VrHierarchy>(params, spaces, bus, false);
      case HierarchyKind::RealRealNoIncl:
        return std::make_unique<RrNoInclHierarchy>(params, spaces, bus);
      case HierarchyKind::VirtualRealRlt:
        return std::make_unique<VrHierarchy>(params, spaces, bus, true,
                                             SynonymOrg::ReverseLookup);
    }
    return nullptr;
}

} // namespace vrc
