#include "core/vcache.hh"

#include "base/bitops.hh"
#include "base/log.hh"

namespace vrc
{

VCache::VCache(const CacheParams &params, std::uint64_t seed,
               Arena *arena)
    : _tags(CacheGeometry(params.sizeBytes, params.blockBytes,
                          params.assoc),
            params.policy, seed, arena)
{
    _tags.setProtection(params.protection);
}

std::optional<LineRef>
VCache::lookup(VirtAddr va)
{
    auto ref = _tags.find(va.value());
    if (!ref)
        return std::nullopt;
    Line l = _tags.line(*ref);
    if (l.meta.swappedValid)
        return std::nullopt;  // present but invalid for the new process
    _tags.touch(*ref);
    return ref;
}

LineRef
VCache::victimFor(VirtAddr va)
{
    // A stale line with the *same tag* (necessarily swapped-valid or it
    // would have hit) must be the victim: tags stay unique per set, so
    // lookups and reverse pointers are never ambiguous. This also makes
    // the re-touch of a swapped block replace exactly its old slot,
    // enabling the write-back cancel.
    if (auto stale = _tags.find(va.value()))
        return *stale;
    return _tags.victim(va.value());
}

VCache::Line
VCache::install(LineRef slot, VirtAddr va, std::uint32_t pa_block,
                bool dirty)
{
    Line l = _tags.fill(slot, va.value());
    l.meta.dirty = dirty;
    l.meta.swappedValid = false;
    l.meta.physBlockAddr = pa_block;
    return l;
}

void
VCache::retag(LineRef slot, VirtAddr va)
{
    Line l = _tags.line(slot);
    panicIfNot(l.valid, "retag of an empty V-cache line");
    panicIfNot(_tags.geometry().setIndex(va.value()) == slot.set,
               "retag must stay within the set");
    l.tag = _tags.geometry().tag(va.value());
    l.meta.swappedValid = false;
    _tags.touch(slot);
}

void
VCache::markAllSwapped()
{
    _tags.forEachLine([](LineRef, Line &l) {
        if (l.valid)
            l.meta.swappedValid = true;
    });
}

std::optional<LineRef>
VCache::findOccupied(std::uint32_t va_block) const
{
    return _tags.find(va_block);
}

LineRef
VCache::faultTarget(std::uint64_t h) const
{
    const CacheGeometry &g = _tags.geometry();
    return LineRef{static_cast<std::uint32_t>(h % g.numSets()),
                   static_cast<std::uint32_t>((h / g.numSets()) %
                                              g.assoc())};
}

} // namespace vrc
