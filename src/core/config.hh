/**
 * @file
 * Configuration structs for two-level cache hierarchies.
 */

#ifndef VRC_CORE_CONFIG_HH
#define VRC_CORE_CONFIG_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "base/log.hh"
#include "cache/protection.hh"
#include "cache/replacement.hh"
#include "coherence/protocol.hh"

namespace vrc
{

/** Parameters of one cache level. */
struct CacheParams
{
    std::uint32_t sizeBytes = 16 * 1024;
    std::uint32_t blockBytes = 16;
    std::uint32_t assoc = 1;  ///< direct-mapped, as the paper simulates
    ReplPolicy policy = ReplPolicy::LRU;

    /** Check-bit scheme of the tag/state arrays (soft-error model). */
    ArrayProtection protection = ArrayProtection::Secded;
};

/** Which organization a hierarchy implements. */
enum class HierarchyKind : std::uint8_t
{
    VirtualReal,     ///< the paper's V-R design (r-/v-pointer back-maps)
    RealRealIncl,    ///< R-R baseline, inclusion enforced
    RealRealNoIncl,  ///< R-R baseline, no inclusion (L1 snoops the bus)
    VirtualRealRlt   ///< V-R with a reverse-lookup-table directory
};

/** Number of HierarchyKind values (for exhaustive sweeps/tests). */
inline constexpr unsigned kHierarchyKindCount = 4;

/** All kinds, in wire/enum order (for sweeps and round-trip tests). */
inline constexpr HierarchyKind kAllHierarchyKinds[kHierarchyKindCount] = {
    HierarchyKind::VirtualReal,
    HierarchyKind::RealRealIncl,
    HierarchyKind::RealRealNoIncl,
    HierarchyKind::VirtualRealRlt,
};

/** Printable kind name. */
inline const char *
hierarchyKindName(HierarchyKind k)
{
    switch (k) {
      case HierarchyKind::VirtualReal:
        return "VR";
      case HierarchyKind::RealRealIncl:
        return "RR(incl)";
      case HierarchyKind::RealRealNoIncl:
        return "RR(no incl)";
      case HierarchyKind::VirtualRealRlt:
        return "VR(rlt)";
    }
    panic("hierarchyKindName: unknown HierarchyKind ",
          static_cast<unsigned>(k));
}

/** Command-line spelling of a kind (vrc-sim/vrc-fuzz --org values). */
inline const char *
hierarchyKindArg(HierarchyKind k)
{
    switch (k) {
      case HierarchyKind::VirtualReal:
        return "vr";
      case HierarchyKind::RealRealIncl:
        return "rr";
      case HierarchyKind::RealRealNoIncl:
        return "rr-noincl";
      case HierarchyKind::VirtualRealRlt:
        return "vr-rlt";
    }
    panic("hierarchyKindArg: unknown HierarchyKind ",
          static_cast<unsigned>(k));
}

/** One-line description of a kind (vrc-sim --list-orgs). */
inline const char *
hierarchyKindDescription(HierarchyKind k)
{
    switch (k) {
      case HierarchyKind::VirtualReal:
        return "virtual L1 / real L2, r-/v-pointer synonym back-maps "
               "(the paper's design)";
      case HierarchyKind::RealRealIncl:
        return "real L1 / real L2 with inclusion, TLB before level 1";
      case HierarchyKind::RealRealNoIncl:
        return "real L1 / real L2 without inclusion, L1 snoops the bus";
      case HierarchyKind::VirtualRealRlt:
        return "virtual L1 / real L2, bounded reverse-lookup-table "
               "directory with conflict back-invalidation";
    }
    panic("hierarchyKindDescription: unknown HierarchyKind ",
          static_cast<unsigned>(k));
}

/**
 * Parse a command-line organization name. Accepts the canonical
 * hierarchyKindArg() spellings; returns nullopt on anything else.
 */
inline std::optional<HierarchyKind>
hierarchyKindFromArg(std::string_view s)
{
    for (HierarchyKind k : kAllHierarchyKinds) {
        if (s == hierarchyKindArg(k))
            return k;
    }
    return std::nullopt;
}

/** Parameters of a full per-processor hierarchy. */
struct HierarchyParams
{
    CacheParams l1{16 * 1024, 16, 1, ReplPolicy::LRU};
    CacheParams l2{256 * 1024, 16, 1, ReplPolicy::LRU};
    std::uint32_t pageSize = 4096;

    /** Split the level-1 cache into equal I and D halves. */
    bool splitL1 = false;

    std::uint32_t writeBufferDepth = 4;
    std::uint64_t writeBufferDrainLatency = 30;  ///< in references

    std::uint32_t tlbEntries = 256;
    std::uint32_t tlbAssoc = 4;

    /**
     * Reverse-lookup-table geometry (HierarchyKind::VirtualRealRlt
     * only): total entries and set associativity of the bounded
     * physical-block -> level-1-child map. A conflict in a full set
     * forces a back-invalidation of the victim's level-1 copy.
     */
    std::uint32_t rltEntries = 512;
    std::uint32_t rltAssoc = 4;

    /** Snooping protocol family at the second level. */
    CoherencePolicy protocol = CoherencePolicy::WriteInvalidate;

    /** Sub-blocks per level-2 line (ratio of the block sizes). */
    std::uint32_t
    subBlocks() const
    {
        return l2.blockBytes / l1.blockBytes;
    }

    /** Convenience: set both level sizes (e.g. "16K/256K" configs). */
    HierarchyParams &
    withSizes(std::uint32_t l1_bytes, std::uint32_t l2_bytes)
    {
        l1.sizeBytes = l1_bytes;
        l2.sizeBytes = l2_bytes;
        return *this;
    }
};

/** Human-readable "16K/256K"-style label for a size pair. */
inline std::string
sizeLabel(std::uint32_t l1_bytes, std::uint32_t l2_bytes)
{
    auto fmt = [](std::uint32_t b) {
        if (b >= 1024 && b % 1024 == 0)
            return std::to_string(b / 1024) + "K";
        return "." + std::to_string(b * 10 / 1024) + "K"; // .5K style
    };
    return fmt(l1_bytes) + "/" + fmt(l2_bytes);
}

} // namespace vrc

#endif // VRC_CORE_CONFIG_HH
