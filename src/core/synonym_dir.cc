#include "core/synonym_dir.hh"

#include <vector>

#include "base/bitops.hh"
#include "base/log.hh"
#include "core/rcache.hh"
#include "core/vcache.hh"

namespace vrc
{

namespace
{

/**
 * The paper's organization: the directory *is* the tag arrays. Each
 * R-cache subentry carries the architected v-pointer (plus, for split
 * level-1 caches, which half) naming its child, and each V-cache line
 * carries the architected r-pointer naming its parent; the simulator
 * additionally stores the full addresses next to the architected bits
 * and checkInvariants() proves the bits reconstruct the same sets.
 *
 * link/unlink are (almost) free -- the pointers ride along with the
 * subentry writes the hierarchy performs anyway -- and the directory
 * can never run out of capacity, which is exactly the property the
 * bounded reverse-lookup table gives up.
 */
class PointerSynonymDirectory final : public SynonymDirectory
{
  public:
    PointerSynonymDirectory(const HierarchyParams &params,
                            std::array<std::unique_ptr<VCache>, 2> &l1,
                            unsigned l1_count, RCache &r)
        : _l1(l1), _l1Count(l1_count), _r(r),
          _pageSize(params.pageSize),
          _rPointerSpan(params.l2.sizeBytes / params.pageSize),
          _vPointerSpan(std::max<std::uint32_t>(
              1, (params.splitL1 ? params.l1.sizeBytes / 2
                                 : params.l1.sizeBytes) /
                  params.pageSize))
    {
        panicIfNot(isPowerOfTwo(params.pageSize),
                   "page size not a power of two");
        panicIfNot(params.l2.sizeBytes >= params.pageSize,
                   "R-cache smaller than a page makes the r-pointer "
                   "empty");
    }

    SynonymOrg org() const override { return SynonymOrg::Pointer; }

    /** Architected r-pointer bits for a physical block address. */
    std::uint32_t
    rPointerBits(std::uint32_t pa) const
    {
        return (pa / _pageSize) & (_rPointerSpan - 1);
    }

    /** Architected v-pointer bits for a level-1 block address. */
    std::uint32_t
    vPointerBits(std::uint32_t addr) const
    {
        return (addr / _pageSize) & (_vPointerSpan - 1);
    }

    std::optional<SynonymChild>
    lookup(PhysAddr pa) const override
    {
        auto rref = _r.probe(pa);
        if (!rref)
            return std::nullopt;
        const RSubentry &s = _r.sub(*rref, pa);
        if (!s.inclusion)
            return std::nullopt;
        return SynonymChild{s.l1Index, s.childAddrBlock};
    }

    void
    link(PhysAddr pa, unsigned l1_index, std::uint32_t child_block,
         const BackInvalidate &) override
    {
        auto rref = _r.probe(pa);
        panicIfNot(rref.has_value(),
                   "synonym link with no R-cache parent");
        RSubentry &s = _r.sub(*rref, pa);
        s.l1Index = static_cast<std::uint8_t>(l1_index);
        s.vPointer = vPointerBits(child_block);
        s.childAddrBlock = child_block;
        // The child's architected back-pointer to the R-cache set.
        VCache &vc = *_l1[l1_index];
        auto child = vc.findOccupied(child_block);
        panicIfNot(child.has_value(), "synonym link with no L1 child");
        vc.line(*child).meta.rPointer = rPointerBits(pa.value());
    }

    void
    unlink(PhysAddr) override
    {
        // The pointer fields are don't-care once the hierarchy clears
        // the inclusion bit; nothing to reclaim.
    }

    void
    forEachLink(const std::function<void(PhysAddr, const SynonymChild &)>
                    &fn) const override
    {
        _r.tags().forEachLine([&](LineRef ref, const RCache::Line &l) {
            if (!l.valid)
                return;
            for (std::uint32_t i = 0; i < _r.subCount(); ++i) {
                const RSubentry &s = l.meta.subs[i];
                if (s.inclusion) {
                    fn(PhysAddr(_r.subBlockAddr(ref, i)),
                       SynonymChild{s.l1Index, s.childAddrBlock});
                }
            }
        });
    }

    std::uint64_t
    storageBits() const override
    {
        // Architected link bits: one r-pointer per level-1 line plus
        // one v-pointer (and, when split, one cache-select bit) per
        // R-cache subentry. The full simulator-held addresses are
        // bookkeeping, not hardware state.
        std::uint64_t v_lines = 0;
        for (unsigned ci = 0; ci < _l1Count; ++ci) {
            const CacheGeometry &g = _l1[ci]->geometry();
            v_lines += std::uint64_t{g.numSets()} * g.assoc();
        }
        const CacheGeometry &rg = _r.geometry();
        std::uint64_t subentries =
            std::uint64_t{rg.numSets()} * rg.assoc() * _r.subCount();
        std::uint64_t r_ptr_bits = log2Exact(_rPointerSpan);
        std::uint64_t v_ptr_bits = log2Exact(_vPointerSpan);
        std::uint64_t select_bits = _l1Count > 1 ? 1 : 0;
        return v_lines * r_ptr_bits +
               subentries * (v_ptr_bits + select_bits);
    }

    void
    checkInvariants() const override
    {
        // The architected pointer bits must reconstruct the same sets
        // as the simulator-held full addresses (the paper's claim that
        // log2(size/page) bits suffice in each direction).
        for (unsigned ci = 0; ci < _l1Count; ++ci) {
            const VCache &vc = *_l1[ci];
            vc.tags().forEachLine(
                [&](LineRef ref, const VCache::Line &l) {
                    if (!l.valid)
                        return;
                    std::uint32_t pa = l.meta.physBlockAddr;
                    panicIfNot(l.meta.rPointer == rPointerBits(pa),
                               "stale r-pointer bits");
                    std::uint32_t rebuilt =
                        l.meta.rPointer * _pageSize + pa % _pageSize;
                    panicIfNot(_r.geometry().setIndex(rebuilt) ==
                                   _r.geometry().setIndex(pa),
                               "r-pointer + page offset misses the "
                               "R-cache set");
                    (void)ref;
                });
        }
        _r.tags().forEachLine([&](LineRef, const RCache::Line &l) {
            if (!l.valid)
                return;
            for (std::uint32_t i = 0; i < _r.subCount(); ++i) {
                const RSubentry &s = l.meta.subs[i];
                if (s.inclusion) {
                    panicIfNot(s.vPointer ==
                                   vPointerBits(s.childAddrBlock),
                               "stale v-pointer bits");
                }
            }
        });
    }

  private:
    std::array<std::unique_ptr<VCache>, 2> &_l1;
    unsigned _l1Count;
    RCache &_r;
    std::uint32_t _pageSize;
    std::uint32_t _rPointerSpan;  ///< R-cache size / page size
    std::uint32_t _vPointerSpan;  ///< V-cache size / page size (>= 1)
};

/**
 * The reverse-lookup-table organization: a bounded set-associative
 * table indexed by physical block address whose entries name the
 * level-1 child. Subentries carry no link bits at all -- every
 * percolation consults the table -- so the tag arrays are cheaper, but
 * the table can fill: inserting into a full set forces a
 * *back-invalidation* of the LRU victim's level-1 copy (via the
 * hierarchy's BackInvalidate callback, which parks dirty data in the
 * write buffer exactly like a normal eviction and then unlinks the
 * victim).
 *
 * Invariant (checked by the hierarchy): a subentry's inclusion bit is
 * set iff this table holds an entry for its block.
 */
class RltSynonymDirectory final : public SynonymDirectory
{
  public:
    RltSynonymDirectory(const HierarchyParams &params)
        : _l1Block(params.l1.blockBytes),
          _assoc(params.rltAssoc),
          _numSets(params.rltEntries / params.rltAssoc),
          _entries(std::size_t{_numSets} * _assoc)
    {
        panicIfNot(_assoc >= 1 && params.rltEntries >= params.rltAssoc,
                   "RLT geometry: entries must cover one set");
        panicIfNot(params.rltEntries % params.rltAssoc == 0 &&
                       isPowerOfTwo(_numSets),
                   "RLT geometry: sets must be a power of two");
    }

    SynonymOrg org() const override { return SynonymOrg::ReverseLookup; }

    std::optional<SynonymChild>
    lookup(PhysAddr pa) const override
    {
        std::uint32_t key = blockKey(pa);
        const Entry *base = setBase(key);
        for (std::uint32_t w = 0; w < _assoc; ++w) {
            const Entry &e = base[w];
            if (e.valid && e.physBlock == key)
                return SynonymChild{e.l1Index, e.childBlock};
        }
        return std::nullopt;
    }

    void
    link(PhysAddr pa, unsigned l1_index, std::uint32_t child_block,
         const BackInvalidate &evict_child) override
    {
        std::uint32_t key = blockKey(pa);
        Entry *base = setBase(key);

        // Existing link for this block: retarget in place (synonym
        // retag/move keeps the same physical block).
        for (std::uint32_t w = 0; w < _assoc; ++w) {
            Entry &e = base[w];
            if (e.valid && e.physBlock == key) {
                e.l1Index = static_cast<std::uint8_t>(l1_index);
                e.childBlock = child_block;
                e.stamp = ++_clock;
                return;
            }
        }

        Entry *slot = nullptr;
        for (std::uint32_t w = 0; w < _assoc; ++w) {
            if (!base[w].valid) {
                slot = &base[w];
                break;
            }
        }
        if (!slot) {
            // Conflict: the set is full of other blocks. Force the LRU
            // victim's level-1 copy out; the hierarchy's callback ends
            // with unlink(victim), freeing the slot.
            Entry *victim = &base[0];
            for (std::uint32_t w = 1; w < _assoc; ++w) {
                if (base[w].stamp < victim->stamp)
                    victim = &base[w];
            }
            PhysAddr victim_pa(victim->physBlock * _l1Block);
            SynonymChild child{victim->l1Index, victim->childBlock};
            ++_conflicts;
            evict_child(victim_pa, child);
            panicIfNot(!victim->valid,
                       "RLT conflict victim survived back-invalidation");
            slot = victim;
        }
        slot->valid = true;
        slot->physBlock = key;
        slot->l1Index = static_cast<std::uint8_t>(l1_index);
        slot->childBlock = child_block;
        slot->stamp = ++_clock;
    }

    void
    unlink(PhysAddr pa) override
    {
        std::uint32_t key = blockKey(pa);
        Entry *base = setBase(key);
        for (std::uint32_t w = 0; w < _assoc; ++w) {
            if (base[w].valid && base[w].physBlock == key) {
                base[w].valid = false;
                return;
            }
        }
        panic("RLT unlink of a block that was never linked");
    }

    void
    forEachLink(const std::function<void(PhysAddr, const SynonymChild &)>
                    &fn) const override
    {
        for (const Entry &e : _entries) {
            if (e.valid) {
                fn(PhysAddr(e.physBlock * _l1Block),
                   SynonymChild{e.l1Index, e.childBlock});
            }
        }
    }

    std::uint64_t
    storageBits() const override
    {
        // Per entry: valid bit, the physical tag above the set index,
        // the child's block id (level-1 address minus block offset)
        // and, when split, a cache-select bit. Uses the same 32-bit
        // address model as the rest of the simulator so the comparison
        // against the pointer organization is apples-to-apples.
        std::uint64_t addr_bits = 32 - log2Exact(_l1Block);
        std::uint64_t tag_bits = addr_bits - log2Exact(_numSets);
        std::uint64_t per_entry = 1 + tag_bits + addr_bits + 1;
        return std::uint64_t{_entries.size()} * per_entry;
    }

    void
    checkInvariants() const override
    {
        for (std::uint32_t set = 0; set < _numSets; ++set) {
            const Entry *base = &_entries[std::size_t{set} * _assoc];
            for (std::uint32_t a = 0; a < _assoc; ++a) {
                if (!base[a].valid)
                    continue;
                panicIfNot((base[a].physBlock & (_numSets - 1)) == set,
                           "RLT entry in the wrong set");
                for (std::uint32_t b = a + 1; b < _assoc; ++b) {
                    panicIfNot(!base[b].valid ||
                                   base[b].physBlock !=
                                       base[a].physBlock,
                               "duplicate RLT entries for one block");
                }
            }
        }
    }

    /** Conflict back-invalidations forced so far (bench reporting). */
    std::uint64_t conflicts() const { return _conflicts; }

  private:
    struct Entry
    {
        bool valid = false;
        std::uint8_t l1Index = 0;
        std::uint32_t physBlock = 0;   ///< physical address / L1 block
        std::uint32_t childBlock = 0;  ///< level-1 block address
        std::uint64_t stamp = 0;       ///< LRU clock (links only)
    };

    std::uint32_t
    blockKey(PhysAddr pa) const
    {
        return pa.value() / _l1Block;
    }

    Entry *
    setBase(std::uint32_t key)
    {
        return &_entries[std::size_t{key & (_numSets - 1)} * _assoc];
    }

    const Entry *
    setBase(std::uint32_t key) const
    {
        return &_entries[std::size_t{key & (_numSets - 1)} * _assoc];
    }

    std::uint32_t _l1Block;
    std::uint32_t _assoc;
    std::uint32_t _numSets;
    std::vector<Entry> _entries;
    std::uint64_t _clock = 0;
    std::uint64_t _conflicts = 0;
};

} // namespace

std::unique_ptr<SynonymDirectory>
makeSynonymDirectory(SynonymOrg org, const HierarchyParams &params,
                     std::array<std::unique_ptr<VCache>, 2> &l1,
                     unsigned l1_count, RCache &r)
{
    switch (org) {
      case SynonymOrg::Pointer:
        return std::make_unique<PointerSynonymDirectory>(params, l1,
                                                         l1_count, r);
      case SynonymOrg::ReverseLookup:
        return std::make_unique<RltSynonymDirectory>(params);
    }
    panic("makeSynonymDirectory: unknown SynonymOrg ",
          static_cast<unsigned>(org));
}

} // namespace vrc
