/**
 * @file
 * Factory for the three hierarchy organizations the paper compares.
 */

#ifndef VRC_CORE_FACTORY_HH
#define VRC_CORE_FACTORY_HH

#include <memory>

#include "core/config.hh"
#include "core/hierarchy.hh"

namespace vrc
{

class AddressSpaceManager;
class SharedBus;

/**
 * Build one per-processor hierarchy of the requested kind, attached to
 * @p bus.
 *
 *  - VirtualReal: the paper's V-R design (VrHierarchy, virtual L1)
 *  - RealRealIncl: same engine with a physically-addressed level 1
 *  - RealRealNoIncl: the non-inclusive baseline (RrNoInclHierarchy)
 */
std::unique_ptr<CacheHierarchy> makeHierarchy(
    HierarchyKind kind, const HierarchyParams &params,
    AddressSpaceManager &spaces, SharedBus &bus);

} // namespace vrc

#endif // VRC_CORE_FACTORY_HH
