/**
 * @file
 * The paper's two-level virtual-real cache hierarchy.
 *
 * Level 1 is one (or, when split, two) virtually-addressed VCache(s);
 * level 2 is a physically-addressed RCache enforcing inclusion, with a
 * TLB at the second level. The implementation follows the operational
 * description in Section 3 of the paper:
 *
 *  - V-cache read/write hit: serviced locally; a write hit on a clean
 *    block first clears coherence through the R-cache state (invack).
 *  - V-cache miss: the victim is evicted first (clean: clear the parent
 *    inclusion bit; dirty: park in the write buffer and set the parent
 *    buffer bit), the address is translated by the second-level TLB,
 *    and the R-cache is accessed.
 *  - R-cache hit with the inclusion bit set under a different virtual
 *    address: a synonym. Same target set: re-tag in place ("sameset").
 *    Different set or different split cache: move the block ("move").
 *  - R-cache hit with the buffer bit set: the block is in the write
 *    buffer (for a direct-mapped V-cache this is exactly the paper's
 *    sameset-with-dirty-victim case); the pending write-back is
 *    canceled and the block pulled back dirty.
 *  - R-cache miss: relaxed inclusion replacement (victimize a line with
 *    no level-1 children if possible, otherwise invalidate the children
 *    and count an inclusion invalidation), then a bus read-miss or
 *    read-modified-write transaction.
 *  - Context switch: every V-cache block gets the swapped-valid bit;
 *    dirty swapped blocks are written back lazily on replacement.
 *  - Bus-induced requests are filtered by the R-cache and percolate to
 *    level 1 only when the inclusion/buffer/vdirty bits require it.
 *
 * The *locator* half of that machinery -- which level-1 line holds a
 * given physical block -- lives behind the pluggable SynonymDirectory
 * (core/synonym_dir.hh): the paper's r-pointer/v-pointer back-maps are
 * its pointer organization, and the bounded reverse-lookup table
 * (HierarchyKind::VirtualRealRlt) is a peer organization that may
 * force conflict back-invalidations of level-1 children.
 */

#ifndef VRC_CORE_VR_HIERARCHY_HH
#define VRC_CORE_VR_HIERARCHY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <utility>

#include "base/arena.hh"
#include "cache/write_buffer.hh"
#include "coherence/bus.hh"
#include "core/config.hh"
#include "core/hierarchy.hh"
#include "core/rcache.hh"
#include "core/synonym_dir.hh"
#include "core/vcache.hh"
#include "vm/tlb.hh"

namespace vrc
{

class AddressSpaceManager;

/**
 * The virtual-real two-level hierarchy (the paper's proposal).
 *
 * The same engine also implements the paper's R-R (inclusion) baseline:
 * constructing with l1_virtual = false indexes and tags level 1 with
 * *physical* addresses (translating before the level-1 lookup, i.e. a
 * TLB at the first level). In that mode synonyms cannot arise in a
 * unified level 1 (physical tags are unique), nothing is flushed on a
 * context switch, and all the inclusion / write-buffer / coherence
 * shielding machinery is shared unchanged -- which is exactly the
 * comparison the paper makes.
 */
class VrHierarchy final : public CacheHierarchy
{
  public:
    /**
     * @param params     cache geometry and policy parameters
     * @param spaces     machine-wide address spaces (shared by all CPUs)
     * @param bus        the shared snooping bus; this hierarchy attaches
     *                   itself and adopts the returned CPU id
     * @param l1_virtual level-1 indexed/tagged by virtual addresses
     *                   (true: the paper's V-R design; false: the R-R
     *                   inclusion baseline)
     * @param synonym_org which synonym-directory organization links
     *                   level-1 children to their R-cache parents
     */
    VrHierarchy(const HierarchyParams &params, AddressSpaceManager &spaces,
                SharedBus &bus, bool l1_virtual = true,
                SynonymOrg synonym_org = SynonymOrg::Pointer);

    AccessOutcome access(const MemAccess &acc) override;
    void contextSwitch(ProcessId new_pid) override;
    SnoopResult snoop(const BusTransaction &tx) override;
    void checkInvariants() const override;
    BlockProbe probeBlock(PhysAddr l2_line) const override;
    void forEachCachedLine(
        const std::function<void(PhysAddr)> &fn) const override;

    /**
     * Compose the per-reference latency from the levels that serviced
     * it: the level-1 cache prices its own lookup (translation-free in
     * V-R mode, slowed by l1SlowdownPct in R-R mode), the R-cache
     * prices a local second-level hit, and a full miss pays tm. A
     * synonym hit costs one second-level access, as the paper argues.
     */
    Tick
    levelCost(AccessOutcome o, const TimingParams &p) const override
    {
        switch (o) {
          case AccessOutcome::L1Hit:
            return _l1[0]->hitCost(p);
          case AccessOutcome::L2Hit:
          case AccessOutcome::SynonymHit:
            return _r.hitCost(p);
          case AccessOutcome::Miss:
            return p.tm;
        }
        return 0.0;
    }

    void
    tlbShootdown(ProcessId pid, Vpn vpn) override
    {
        if (_tlb.invalidate(pid, vpn))
            (*_c.tlbShootdowns)++;
    }

    /** Number of level-1 caches (1 unified, 2 split). */
    unsigned l1Count() const { return _params.splitL1 ? 2 : 1; }

    /** Level-1 cache: index 0 = unified/data, 1 = instruction. */
    VCache &vcache(unsigned idx = 0) { return *_l1[idx]; }
    const VCache &vcache(unsigned idx = 0) const { return *_l1[idx]; }

    RCache &rcache() { return _r; }
    const RCache &rcache() const { return _r; }

    WriteBuffer &writeBuffer() { return _wb; }
    const WriteBuffer &writeBuffer() const { return _wb; }

    Tlb &tlb() { return _tlb; }

    const HierarchyParams &params() const { return _params; }

    /** Local references processed so far (the hierarchy's clock). */
    std::uint64_t refIndex() const { return _refIndex; }

    /** True when level 1 is virtually addressed (the V-R design). */
    bool l1Virtual() const { return _l1Virtual; }

    /** The synonym directory linking level-1 children to parents. */
    SynonymDirectory &synonymDirectory() { return *_dir; }
    const SynonymDirectory &synonymDirectory() const { return *_dir; }

  private:
    /** Which L1 serves a reference type (0 = data/unified, 1 = instr). */
    unsigned
    l1IndexFor(RefType t) const
    {
        return (_params.splitL1 && t == RefType::Instr) ? 1 : 0;
    }

    /** Align to the level-1 block size. */
    std::uint32_t
    l1Block(std::uint32_t addr) const
    {
        return addr & ~(_params.l1.blockBytes - 1);
    }

    /** Align to the level-2 line size. */
    std::uint32_t
    l2Block(std::uint32_t addr) const
    {
        return addr & ~(_params.l2.blockBytes - 1);
    }

    /** Evict the chosen V-cache victim, notifying the R-cache. */
    void evictVVictim(VCache &vc, LineRef slot);

    /**
     * Back-invalidate a level-1 child whose directory link is being
     * evicted on an RLT conflict (SynonymDirectory::BackInvalidate).
     */
    void backInvalidateChild(PhysAddr pa, const SynonymChild &child);

    /** Find the level-1 line the directory links @p pa to. */
    std::pair<VCache *, LineRef> directoryChild(PhysAddr pa) const;

    /** Translate via the TLB (demand-allocating on first touch). */
    PhysAddr translate(const MemAccess &acc);

    /**
     * Processor-side handling after an R-cache hit.
     *
     * @param l1_key the level-1 lookup address (virtual in V-R mode,
     *               physical in R-R mode)
     */
    AccessOutcome handleRHit(RefType type, VirtAddr l1_key, unsigned ci,
                             LineRef slot, LineRef rref, PhysAddr pa);

    /** Processor-side handling after an R-cache miss. */
    AccessOutcome handleRMiss(RefType type, VirtAddr l1_key, unsigned ci,
                              LineRef slot, PhysAddr pa);

    /** Evict an R-cache line (inclusion invalidations, write-back). */
    void evictRLine(LineRef rslot, bool forced);

    /**
     * Clear coherence for a write to the given line.
     *
     * Write-invalidate: invalidates other copies, upgrades to Private.
     * Write-update: broadcasts the data to all copies and memory.
     *
     * @return true if the local copy should be marked dirty (the write
     *         stayed local); false if it was propagated and stays clean.
     */
    bool resolveWriteCoherence(RCache::Line rline, PhysAddr pa);

    /** Write-buffer drain completion: fold the data into the R-cache. */
    void onWriteBufferDrain(const WriteBufferEntry &entry);

    /** Snoop helpers for the two halves of read-mod-write. */
    SnoopResult snoopReadMiss(LineRef rref);
    void snoopInvalidate(LineRef rref);

    /** Snoop handler for foreign write-update broadcasts. */
    SnoopResult snoopUpdate(LineRef rref);

    // --- soft-error model (base/fault.hh, VRC_SOFT_ERRORS) -----------

    /** Schedule this reference's array strikes (pure seed hash). */
    void maybeInjectSoftErrors();

    /** One strike on a level-1 array; @p ctr names the site counter. */
    void strikeL1(const char *ctr, std::uint64_t h);

    /** One strike on the level-2 (R-cache) array. */
    void strikeL2(const char *ctr, std::uint64_t h);

    /** Recover a detected-corrupt clean V-cache line via its parent. */
    void recoverVLine(unsigned ci, LineRef ref);

    /** Recover a detected-corrupt clean R-cache line from memory. */
    void recoverRLine(LineRef rref);

    /** Machine check: dirty V-cache line with uncorrectable bits. */
    [[noreturn]] void machineCheckV(unsigned ci, LineRef ref);

    /** Machine check: R-cache line covering dirty data. */
    [[noreturn]] void machineCheckR(LineRef rref);

    /** Scrub and rebuild our snoop-filter presence bits. */
    void rebuildPresence();

    /**
     * Soft-error counters are created on first use so a run that never
     * strikes reports exactly the seed statistics (json dumps included).
     */
    Counter &softCounter(const char *name)
    {
        return stats().counter(name);
    }

    HierarchyParams _params;
    AddressSpaceManager &_spaces;
    SharedBus &_bus;
    bool _l1Virtual;

    /**
     * Per-CPU arena: every tag-store array below is carved from this
     * one allocation region, so the metadata this CPU touches on each
     * reference stays contiguous. Must precede the caches.
     */
    Arena _arena;
    std::array<std::unique_ptr<VCache>, 2> _l1;
    RCache _r;
    WriteBuffer _wb;
    Tlb _tlb;

    /**
     * The pluggable child locator (constructed after the caches it
     * indexes). Pre-bound conflict callback so the hot link sites
     * never allocate a std::function.
     */
    std::unique_ptr<SynonymDirectory> _dir;
    SynonymDirectory::BackInvalidate _backInvalidate;

    std::uint64_t _refIndex = 0;

    /**
     * Stats handles resolved once at construction (StatGroup handle
     * contract): the access and snoop paths increment through these and
     * never perform a string-keyed lookup.
     */
    struct Counters
    {
        Counter *writebackCompletions;
        Counter *wbStalls;
        Counter *writebacks;
        Counter *swappedWritebacks;
        Counter *synonymSameset;
        Counter *synonymMoves;
        Counter *synonymHits;
        Counter *synonymFromBuffer;
        Counter *writebackCancels;
        Counter *l2Hits;
        Counter *invalidationsSent;
        Counter *updatesSent;
        Counter *memoryWrites;
        Counter *misses;
        Counter *fillsFromCache;
        Counter *fillsFromMemory;
        Counter *inclusionInvalidations;
        Counter *l1CoherenceMsgs;
        Counter *forcedRReplacements;
        Counter *contextSwitches;
        Counter *snoops;
        Counter *snoopMisses;
        Counter *snoopHits;
        Counter *l1Flushes;
        Counter *bufferFlushes;
        Counter *l1Invalidations;
        Counter *bufferInvalidations;
        Counter *l1Updates;
        Counter *tlbShootdowns;

        /**
         * Registered only for the reverse-lookup-table organization so
         * pointer-organization stat dumps stay byte-identical to the
         * pre-directory code.
         */
        Counter *rltConflictInvalidations = nullptr;
    };
    Counters _c;
};

} // namespace vrc

#endif // VRC_CORE_VR_HIERARCHY_HH
