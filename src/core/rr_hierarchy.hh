/**
 * @file
 * Real-real two-level hierarchy *without* inclusion.
 *
 * This is the paper's second baseline (the "RR(no incl)" columns of
 * Tables 11-13). Both levels are physically addressed; the TLB sits in
 * front of the level-1 cache. No inclusion bits are maintained: the
 * level-2 cache replaces lines without regard to level 1, so it cannot
 * filter bus traffic -- every foreign bus transaction must probe the
 * level-1 cache (and the write buffer), which is exactly the coherence
 * interference the paper's shielding argument quantifies.
 *
 * Because level 1 cannot rely on level 2 for coherence state, each
 * level-1 line carries its own sharing state.
 *
 * The R-R *with inclusion* baseline is VrHierarchy constructed with
 * l1_virtual = false; see vr_hierarchy.hh.
 */

#ifndef VRC_CORE_RR_HIERARCHY_HH
#define VRC_CORE_RR_HIERARCHY_HH

#include <array>
#include <cstdint>
#include <memory>

#include "base/arena.hh"
#include "cache/tag_store.hh"
#include "cache/write_buffer.hh"
#include "coherence/bus.hh"
#include "coherence/protocol.hh"
#include "core/config.hh"
#include "core/hierarchy.hh"
#include "vm/tlb.hh"

namespace vrc
{

class AddressSpaceManager;

/** Level-1 line metadata for the non-inclusive hierarchy. */
struct PLineMeta
{
    bool dirty = false;
    CoherenceState state = CoherenceState::Invalid;
};

/** Level-2 line metadata for the non-inclusive hierarchy. */
struct L2LineMeta
{
    CoherenceState state = CoherenceState::Invalid;
    bool rdirty = false;
};

/** Real-real two-level hierarchy without the inclusion property. */
class RrNoInclHierarchy final : public CacheHierarchy
{
  public:
    RrNoInclHierarchy(const HierarchyParams &params,
                      AddressSpaceManager &spaces, SharedBus &bus);

    AccessOutcome access(const MemAccess &acc) override;
    void contextSwitch(ProcessId new_pid) override;
    SnoopResult snoop(const BusTransaction &tx) override;
    void checkInvariants() const override;
    BlockProbe probeBlock(PhysAddr l2_line) const override;
    void forEachCachedLine(
        const std::function<void(PhysAddr)> &fn) const override;

    void
    tlbShootdown(ProcessId pid, Vpn vpn) override
    {
        if (_tlb.invalidate(pid, vpn))
            (*_c.tlbShootdowns)++;
    }

    using L1Store = TagStore<PLineMeta>;
    using L2Store = TagStore<L2LineMeta>;

    unsigned l1Count() const { return _params.splitL1 ? 2 : 1; }

    L1Store &l1(unsigned idx = 0) { return *_l1[idx]; }
    L2Store &l2() { return _l2; }
    WriteBuffer &writeBuffer() { return _wb; }
    Tlb &tlb() { return _tlb; }

    const HierarchyParams &params() const { return _params; }

    /**
     * Per-reference latency of the non-inclusive baseline: both levels
     * are physically addressed, so the level-1 hit pays the translation
     * slowdown (the TLB is in front of the cache), a second-level hit
     * costs t2, and a full miss pays tm.
     */
    Tick
    levelCost(AccessOutcome o, const TimingParams &p) const override
    {
        switch (o) {
          case AccessOutcome::L1Hit:
            return p.effectiveT1();
          case AccessOutcome::L2Hit:
          case AccessOutcome::SynonymHit:
            return p.t2;
          case AccessOutcome::Miss:
            return p.tm;
        }
        return 0.0;
    }

  private:
    unsigned
    l1IndexFor(RefType t) const
    {
        return (_params.splitL1 && t == RefType::Instr) ? 1 : 0;
    }

    std::uint32_t
    l1Block(std::uint32_t addr) const
    {
        return addr & ~(_params.l1.blockBytes - 1);
    }

    std::uint32_t
    l2Block(std::uint32_t addr) const
    {
        return addr & ~(_params.l2.blockBytes - 1);
    }

    PhysAddr translate(const MemAccess &acc);

    /** Complete a drained write-back: into L2 if present, else memory. */
    void onWriteBufferDrain(const WriteBufferEntry &entry);

    /** Invalidate other caches' copies before a local write. */
    void issueInvalidate(PhysAddr pa);

    /**
     * Clear coherence for a write to a Shared block, following the
     * configured protocol.
     *
     * @param state in/out: the new coherence state of the local copy.
     * @return true if the local copy should be marked dirty.
     */
    bool writeToShared(PhysAddr pa, CoherenceState &state);

    // --- soft-error model (base/fault.hh, VRC_SOFT_ERRORS) -----------
    //
    // The no-inclusion contrast case: with no r-pointer/v-pointer
    // metadata there is no ptr fault site, but a detected-corrupt
    // level-1 line has no *guaranteed* parent either -- recovery must
    // probe level 2 and fall back to a bus refetch, and a dirty level-1
    // line is immediately unrecoverable.

    /** Schedule this reference's array strikes (pure seed hash). */
    void maybeInjectSoftErrors();

    /** One strike on a level-1 array. */
    void strikeL1(const char *ctr, std::uint64_t h);

    /** One strike on the level-2 array. */
    void strikeL2(const char *ctr, std::uint64_t h);

    /** Lazily created soft-error counters (see VrHierarchy). */
    Counter &softCounter(const char *name)
    {
        return stats().counter(name);
    }

    HierarchyParams _params;
    AddressSpaceManager &_spaces;
    SharedBus &_bus;

    /** Per-CPU arena backing both tag stores (must precede them). */
    Arena _arena;
    std::array<std::unique_ptr<L1Store>, 2> _l1;
    L2Store _l2;
    WriteBuffer _wb;
    Tlb _tlb;
    std::uint64_t _refIndex = 0;

    /** Stats handles resolved once at construction (see StatGroup). */
    struct Counters
    {
        Counter *writebackCompletions;
        Counter *memoryWrites;
        Counter *writebacksBypassingL2;
        Counter *invalidationsSent;
        Counter *updatesSent;
        Counter *wbStalls;
        Counter *writebacks;
        Counter *writebackCancels;
        Counter *l2Hits;
        Counter *bufferPullbacks;
        Counter *misses;
        Counter *fillsFromCache;
        Counter *fillsFromMemory;
        Counter *contextSwitches;
        Counter *l1CoherenceMsgs;
        Counter *l1Probes;
        Counter *l1Updates;
        Counter *l1Flushes;
        Counter *l1Invalidations;
        Counter *bufferFlushes;
        Counter *bufferInvalidations;
        Counter *tlbShootdowns;
    };
    Counters _c;
};

} // namespace vrc

#endif // VRC_CORE_RR_HIERARCHY_HH
