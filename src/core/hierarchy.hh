/**
 * @file
 * Abstract interface of a per-processor two-level cache hierarchy.
 *
 * Both the paper's virtual-real hierarchy and the real-real baselines
 * implement this interface, so the multiprocessor simulator and the
 * experiments treat them uniformly. A hierarchy is also a bus Snooper.
 */

#ifndef VRC_CORE_HIERARCHY_HH
#define VRC_CORE_HIERARCHY_HH

#include <algorithm>
#include <cstdint>
#include <functional>

#include "base/addr.hh"
#include "base/counter.hh"
#include "base/histogram.hh"
#include "base/types.hh"
#include "coherence/protocol.hh"
#include "coherence/snoop.hh"
#include "core/clock.hh"
#include "core/events.hh"
#include "core/timing.hh"
#include "trace/record.hh"

namespace vrc
{

/** One processor-side memory access. */
struct MemAccess
{
    RefType type = RefType::Read;
    VirtAddr va;
    ProcessId pid = 0;
};

/** Where an access was satisfied. */
enum class AccessOutcome : std::uint8_t
{
    L1Hit,      ///< hit in the level-1 cache
    L2Hit,      ///< missed level 1, hit level 2 (no synonym involved)
    SynonymHit, ///< missed level 1, level 2 found the block elsewhere in
                ///< level 1 (cost == L2Hit per the paper)
    Miss        ///< missed both levels; went to the bus
};

/** Printable outcome name. */
inline const char *
accessOutcomeName(AccessOutcome o)
{
    switch (o) {
      case AccessOutcome::L1Hit:
        return "l1-hit";
      case AccessOutcome::L2Hit:
        return "l2-hit";
      case AccessOutcome::SynonymHit:
        return "synonym-hit";
      case AccessOutcome::Miss:
        return "miss";
    }
    return "?";
}

/**
 * Snapshot of everything one hierarchy holds of a single second-level
 * line, gathered by probeBlock() for the external coherence oracle
 * (src/check). Read-only and side-effect free: probing never touches
 * replacement state or statistics.
 */
struct BlockProbe
{
    bool l2Present = false; ///< line resident in the second level
    CoherenceState state = CoherenceState::Invalid; ///< coherence state
    bool l2Dirty = false;   ///< second-level copy is dirty
    std::uint32_t l1Copies = 0; ///< level-1 copies over all sub-blocks
    std::uint32_t maxAliases = 0; ///< most L1 copies of any one sub-block
    std::uint32_t buffered = 0; ///< sub-blocks parked in the write buffer
    bool anyL1Dirty = false;    ///< some level-1 copy is dirty
    bool linkageOk = true;      ///< pointer/inclusion bookkeeping agrees

    /** The hierarchy holds the line in any form. */
    bool holdsAny() const { return l2Present || l1Copies > 0 ||
            buffered > 0; }

    /** Some copy carries modified data not yet in memory. */
    bool anyDirty() const { return l2Dirty || anyL1Dirty ||
            buffered > 0; }
};

/**
 * A private two-level cache hierarchy attached to one processor and to
 * the shared bus.
 *
 * Statistics contract (counters in stats(), shared by implementations so
 * experiments can aggregate uniformly):
 *
 *   refs, refs_instr, refs_read, refs_write
 *   l1_hits, l1_hits_instr, l1_hits_read, l1_hits_write
 *   l2_hits, synonym_hits, misses
 *   l1_coherence_msgs        -- messages percolated to level 1
 *   inclusion_invalidations  -- L2 replacements that killed L1 children
 *   writebacks, swapped_writebacks, writeback_cancels
 *   memory_writes
 */
class CacheHierarchy : public Snooper
{
  public:
    CacheHierarchy()
        : _stats("hierarchy"), _wbIntervals(10),
          _refsCtr(&_stats.counter("refs")),
          _l1HitsCtr(&_stats.counter("l1_hits")),
          _refsByType{&_stats.counter("refs_instr"),
                      &_stats.counter("refs_read"),
                      &_stats.counter("refs_write")},
          _hitsByType{&_stats.counter("l1_hits_instr"),
                      &_stats.counter("l1_hits_read"),
                      &_stats.counter("l1_hits_write")}
    {
    }
    ~CacheHierarchy() override = default;

    CacheHierarchy(const CacheHierarchy &) = delete;
    CacheHierarchy &operator=(const CacheHierarchy &) = delete;

    /** Process one memory reference from the local processor. */
    virtual AccessOutcome access(const MemAccess &acc) = 0;

    /** The local processor switched to process @p new_pid. */
    virtual void contextSwitch(ProcessId new_pid) = 0;

    /**
     * Verify internal invariants (inclusion, pointer linkage, unique
     * V-cache copies). panic()s on violation. Used by property tests.
     */
    virtual void checkInvariants() const = 0;

    /**
     * Drop the cached translation for (pid, vpn): the OS changed the
     * mapping (TLB shootdown). Cache contents are reconciled separately
     * through the coherent physical level (MpSimulator::remapPage).
     */
    virtual void tlbShootdown(ProcessId pid, Vpn vpn) = 0;

    /**
     * Per-reference level cost (in t1 units) a reference with outcome
     * @p o charges under @p p. Composed from the hierarchy's own
     * caches, so organization-specific effects -- the V-cache's
     * translation-free t1 versus a physically-tagged level 1 paying
     * the translation slowdown -- are reported by the level that
     * causes them. Pure accounting: must not disturb any state.
     */
    virtual Tick levelCost(AccessOutcome o,
                           const TimingParams &p) const = 0;

    /**
     * Report everything this hierarchy holds of the second-level line at
     * @p l2_line (a physical address anywhere inside the line). Pure
     * observation for the coherence oracle; must not disturb state.
     */
    virtual BlockProbe probeBlock(PhysAddr l2_line) const = 0;

    /**
     * Invoke @p fn with the physical address of every second-level line
     * for which this hierarchy holds data in any structure (second
     * level, level-1 copies, or parked write-backs). Addresses may
     * repeat; the oracle dedupes.
     */
    virtual void
    forEachCachedLine(const std::function<void(PhysAddr)> &fn) const = 0;

    /** Identifier on the bus. */
    CpuId cpuId() const { return _cpuId; }
    void setCpuId(CpuId id) { _cpuId = id; }

    /** Statistics (see the class comment for the counter contract). */
    StatGroup &stats() { return _stats; }
    const StatGroup &stats() const { return _stats; }

    /** Level-1 hit ratio over all references. */
    double
    h1() const
    {
        auto refs = _stats.value("refs");
        return refs ? static_cast<double>(_stats.value("l1_hits")) /
                static_cast<double>(refs)
                    : 0.0;
    }

    /**
     * Level-2 local hit ratio: hits at level 2 (including synonym hits,
     * which cost the same) over level-1 misses.
     */
    double
    h2() const
    {
        auto refs = _stats.value("refs");
        auto l1_hits = _stats.value("l1_hits");
        auto l1_misses = refs - l1_hits;
        if (l1_misses == 0)
            return 0.0;
        return static_cast<double>(_stats.value("l2_hits") +
                                   _stats.value("synonym_hits")) /
            static_cast<double>(l1_misses);
    }

    /** L1 hit ratio restricted to one reference type. */
    double
    h1ForType(RefType t) const
    {
        auto refs = _refsByType[static_cast<int>(t)]->value();
        if (refs == 0)
            return 0.0;
        return static_cast<double>(
                   _hitsByType[static_cast<int>(t)]->value()) /
            static_cast<double>(refs);
    }

    /**
     * Distribution of distances (in local references) between successive
     * write-back events, the paper's Table 3 measurement.
     */
    const Histogram &writeBackIntervals() const { return _wbIntervals; }

    /**
     * Attach (or detach with nullptr) an event observer. With no
     * observer attached, event emission costs one branch.
     */
    void setObserver(EventObserver *obs) { _observer = obs; }

    /** Reset all statistics counters (e.g. after a warm-up window). */
    void
    resetStats()
    {
        _stats.reset();
        _wbIntervals.clear();
        _lastWriteBackRef = 0;
        _sawWriteBack = false;
    }

  protected:
    /** Count one reference of type @p t. */
    void
    noteRef(RefType t)
    {
        (*_refsCtr)++;
        (*_refsByType[static_cast<int>(t)])++;
    }

    /** Count one L1 hit of type @p t. */
    void
    noteL1Hit(RefType t)
    {
        (*_l1HitsCtr)++;
        (*_hitsByType[static_cast<int>(t)])++;
    }

    /** Record a write-back event for the interval histogram. */
    void
    noteWriteBack(std::uint64_t ref_index)
    {
        if (_lastWriteBackRef != 0 || _sawWriteBack)
            _wbIntervals.record(ref_index - _lastWriteBackRef);
        _lastWriteBackRef = ref_index;
        _sawWriteBack = true;
    }

    /** Emit an event to the attached observer, if any. */
    void
    emitEvent(EventKind kind, std::uint64_t ref_index,
              std::uint32_t vaddr = 0, std::uint32_t paddr = 0)
    {
        if (_observer) {
            _observer->onEvent(
                HierarchyEvent{kind, _cpuId, ref_index, vaddr, paddr});
        }
    }

  private:
    CpuId _cpuId = invalidCpu;
    EventObserver *_observer = nullptr;
    StatGroup _stats;
    Histogram _wbIntervals;
    Counter *_refsCtr;
    Counter *_l1HitsCtr;
    Counter *_refsByType[3];
    Counter *_hitsByType[3];
    std::uint64_t _lastWriteBackRef = 0;
    bool _sawWriteBack = false;
};

} // namespace vrc

#endif // VRC_CORE_HIERARCHY_HH
