#include "core/rcache.hh"

#include "base/bitops.hh"
#include "base/log.hh"

namespace vrc
{

RCache::RCache(const CacheParams &params, std::uint32_t l1_block,
               std::uint64_t seed, Arena *arena)
    : _tags(CacheGeometry(params.sizeBytes, params.blockBytes,
                          params.assoc),
            params.policy, seed, arena),
      _l1Block(l1_block), _subCount(params.blockBytes / l1_block)
{
    panicIfNot(params.blockBytes % l1_block == 0 && _subCount >= 1,
               "level-2 block size must be a multiple of level-1's");
    panicIfNot(isPowerOfTwo(_subCount), "sub-block count not a power of 2");
    _tags.setProtection(params.protection);
}

LineRef
RCache::faultTarget(std::uint64_t h) const
{
    const CacheGeometry &g = _tags.geometry();
    return LineRef{static_cast<std::uint32_t>(h % g.numSets()),
                   static_cast<std::uint32_t>((h / g.numSets()) %
                                              g.assoc())};
}

std::optional<LineRef>
RCache::lookup(PhysAddr pa)
{
    auto ref = _tags.find(pa.value());
    if (ref)
        _tags.touch(*ref);
    return ref;
}

std::optional<LineRef>
RCache::probe(PhysAddr pa) const
{
    return _tags.find(pa.value());
}

std::pair<LineRef, bool>
RCache::victimFor(PhysAddr pa)
{
    std::uint32_t set = _tags.geometry().setIndex(pa.value());
    LineRef slot = _tags.victimWhere(
        set, [](const Line &l) { return l.meta.noChildren(); });
    bool forced = _tags.line(slot).valid &&
        !_tags.line(slot).meta.noChildren();
    return {slot, forced};
}

RCache::Line
RCache::install(LineRef slot, PhysAddr pa, CoherenceState state)
{
    Line l = _tags.fill(slot, pa.value());
    l.meta.state = state;
    l.meta.rdirty = false;
    l.meta.subs.assign(_subCount, RSubentry{});
    return l;
}

} // namespace vrc
