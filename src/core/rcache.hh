/**
 * @file
 * The physically-addressed second-level cache (R-cache).
 *
 * Tag entry contents follow Figure 3 of the paper: a physical tag, the
 * coherence state bits and the r-dirty bit for the whole line, and one
 * subentry per level-1-sized sub-block containing:
 *
 *   - the inclusion bit  (a copy lives in the level-1 cache),
 *   - the buffer bit     (a copy sits in the level-1 write buffer),
 *   - the v-dirty bit    (the level-1 copy is modified),
 *   - the v-pointer      (low log2(V-cache-size / page-size) bits of the
 *                         virtual page number: with the page offset it
 *                         addresses the child in the V-cache),
 *   - for split level-1 caches, which of the I/D halves holds the child.
 *
 * As in the V-cache, the simulator additionally keeps the child's full
 * block address next to the architected v-pointer bits. Both are owned
 * and written by the hierarchy's SynonymDirectory (the pointer
 * organization verifies the architected bits agree with the full
 * address; the reverse-lookup-table organization leaves them unused);
 * this cache only provides the storage.
 */

#ifndef VRC_CORE_RCACHE_HH
#define VRC_CORE_RCACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "base/addr.hh"
#include "cache/tag_store.hh"
#include "coherence/protocol.hh"
#include "core/clock.hh"
#include "core/config.hh"
#include "core/timing.hh"

namespace vrc
{

/** Per-sub-block metadata of an R-cache line (Figure 3, bottom). */
struct RSubentry
{
    bool inclusion = false;  ///< child present in the level-1 cache
    bool buffer = false;     ///< child parked in the write buffer
    bool vdirty = false;     ///< child (or buffered copy) is modified
    std::uint8_t l1Index = 0; ///< which level-1 cache holds the child
    std::uint32_t vPointer = 0;      ///< architected link bits
    std::uint32_t childAddrBlock = 0; ///< simulator-held child address
                                      ///< (virtual for V-R, physical for
                                      ///< R-R level 1)

    /** True if level 1 (cache or buffer) holds this sub-block. */
    bool
    childAbove() const
    {
        return inclusion || buffer;
    }
};

/** Per-line metadata of the R-cache. */
struct RLineMeta
{
    CoherenceState state = CoherenceState::Invalid;
    bool rdirty = false;  ///< modified relative to memory (in this level)
    std::vector<RSubentry> subs;

    /** True if no sub-block has a copy above this level. */
    bool
    noChildren() const
    {
        for (const RSubentry &s : subs) {
            if (s.childAbove())
                return false;
        }
        return true;
    }

    /**
     * Reset for a refill (see resetTagMeta): value-equal to a fresh
     * RLineMeta{} but keeps the subentry vector's capacity so the
     * install() that follows every fill never reallocates.
     */
    void
    resetForFill()
    {
        state = CoherenceState::Invalid;
        rdirty = false;
        subs.clear();
    }
};

/** The physically-indexed, physically-tagged level-2 cache. */
class RCache
{
  public:
    /**
     * @param params     size/block/associativity of this cache
     * @param l1_block   level-1 block size (defines sub-block count)
     */
    RCache(const CacheParams &params, std::uint32_t l1_block,
           std::uint64_t seed = 0x2ca1e, Arena *arena = nullptr);

    using Store = TagStore<RLineMeta>;
    using Line = Store::Line;

    /** Look up a physical address. Updates recency on hit. */
    std::optional<LineRef> lookup(PhysAddr pa);

    /** Look up without touching recency (snoop path). */
    std::optional<LineRef> probe(PhysAddr pa) const;

    /**
     * Choose a victim for @p pa's set under the paper's *relaxed
     * inclusion replacement rule*: prefer a line with every inclusion
     * and buffer bit clear; otherwise fall back to the base policy (the
     * caller must then invalidate the level-1 children).
     *
     * @return the slot, and whether the fallback case was taken.
     */
    std::pair<LineRef, bool> victimFor(PhysAddr pa);

    /** Install a line for @p pa into @p slot with empty subentries. */
    Line install(LineRef slot, PhysAddr pa, CoherenceState state);

    /** Invalidate one line. */
    void invalidate(LineRef slot) { _tags.invalidate(slot); }

    /** Index of the sub-block of @p pa within its line. */
    std::uint32_t
    subIndex(PhysAddr pa) const
    {
        return (pa.value() / _l1Block) & (_subCount - 1);
    }

    /** Subentry of @p pa within a (valid) line. */
    RSubentry &
    sub(LineRef ref, PhysAddr pa)
    {
        return _tags.line(ref).meta.subs[subIndex(pa)];
    }

    const RSubentry &
    sub(LineRef ref, PhysAddr pa) const
    {
        return _tags.line(ref).meta.subs[subIndex(pa)];
    }

    /** Block-aligned physical address of one sub-block of a line. */
    std::uint32_t
    subBlockAddr(LineRef ref, std::uint32_t sub_index) const
    {
        return _tags.lineAddr(ref) + sub_index * _l1Block;
    }

    /** Number of sub-blocks per line (B2 / B1). */
    std::uint32_t subCount() const { return _subCount; }

    /**
     * Location a soft-error strike with parameter hash @p h lands on
     * (uniform over the array; may be an invalid cell).
     */
    LineRef faultTarget(std::uint64_t h) const;

    Line line(LineRef ref) { return _tags.line(ref); }
    Line line(LineRef ref) const { return _tags.line(ref); }

    /** Block-aligned physical address of a (valid) line. */
    std::uint32_t lineAddr(LineRef ref) const { return _tags.lineAddr(ref); }

    const CacheGeometry &geometry() const { return _tags.geometry(); }
    Store &tags() { return _tags; }
    const Store &tags() const { return _tags; }

    /**
     * Per-access hit cost of this level under @p p (t1 units): the
     * R-cache is physically addressed behind the level-1 lookup, so a
     * local second-level hit costs t2 regardless of organization.
     */
    Tick
    hitCost(const TimingParams &p) const
    {
        return p.t2;
    }

  private:
    Store _tags;
    std::uint32_t _l1Block;
    std::uint32_t _subCount;
};

} // namespace vrc

#endif // VRC_CORE_RCACHE_HH
