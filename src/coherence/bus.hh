/**
 * @file
 * Shared snooping bus.
 *
 * The bus serializes coherence transactions among the per-processor
 * hierarchies (Figure 1 of the paper). A broadcast reaches every snooper
 * except the source; results are merged so the source learns whether the
 * block is shared and whether another cache supplied the data (otherwise
 * memory does). The bus also keeps the per-CPU and per-operation
 * transaction counts the experiments report.
 */

#ifndef VRC_COHERENCE_BUS_HH
#define VRC_COHERENCE_BUS_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "base/counter.hh"
#include "coherence/snoop.hh"
#include "coherence/transaction.hh"

namespace vrc
{

/** The shared bus connecting all second-level caches and memory. */
class SharedBus
{
  public:
    SharedBus() : _stats("bus") {}

    /**
     * Register a snooper.
     *
     * @return the agent's CPU id (registration order).
     */
    CpuId
    attach(Snooper *snooper)
    {
        _snoopers.push_back(snooper);
        _perCpuTx.push_back(0);
        return static_cast<CpuId>(_snoopers.size() - 1);
    }

    /**
     * Broadcast @p tx to every agent except the source and merge their
     * responses. Memory supplies the block when no cache does.
     */
    BusResult
    broadcast(const BusTransaction &tx)
    {
        _stats.counter("transactions")++;
        _stats.counter(busOpName(tx.op))++;
        if (tx.source < _perCpuTx.size())
            _perCpuTx[tx.source] += 1;

        SnoopResult merged;
        for (std::size_t i = 0; i < _snoopers.size(); ++i) {
            if (static_cast<CpuId>(i) == tx.source)
                continue;
            merged.merge(_snoopers[i]->snoop(tx));
        }
        BusResult res;
        res.shared = merged.sharedAck;
        res.suppliedByCache = merged.suppliedData;
        if (!res.suppliedByCache && tx.op != BusOp::Invalidate)
            _stats.counter("memory_supplies")++;
        return res;
    }

    /** Number of attached agents. */
    std::size_t agentCount() const { return _snoopers.size(); }

    /** Total transactions issued. */
    std::uint64_t
    transactions() const
    {
        return _stats.value("transactions");
    }

    /** Transactions issued by one CPU. */
    std::uint64_t
    transactionsFrom(CpuId cpu) const
    {
        return cpu < _perCpuTx.size() ? _perCpuTx[cpu] : 0;
    }

    const StatGroup &stats() const { return _stats; }

    /** Zero transaction counters (warm-up support). */
    void
    resetStats()
    {
        _stats.reset();
        std::fill(_perCpuTx.begin(), _perCpuTx.end(), 0);
    }

  private:
    std::vector<Snooper *> _snoopers;
    std::vector<std::uint64_t> _perCpuTx;
    StatGroup _stats;
};

} // namespace vrc

#endif // VRC_COHERENCE_BUS_HH
