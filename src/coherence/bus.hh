/**
 * @file
 * Shared snooping bus.
 *
 * The bus serializes coherence transactions among the per-processor
 * hierarchies (Figure 1 of the paper). A broadcast reaches every snooper
 * except the source; results are merged so the source learns whether the
 * block is shared and whether another cache supplied the data (otherwise
 * memory does). The bus also keeps the per-CPU and per-operation
 * transaction counts the experiments report.
 *
 * Snoop filter: an agent whose second level tracks presence exactly
 * (inclusion hierarchies, where the R-cache directory covers everything
 * the agent could respond to) may attach as *filterable* and notify the
 * bus whenever a second-level line is filled or dropped. broadcast()
 * then skips filterable agents whose presence bit is clear -- the skipped
 * probe is exactly the snoop-miss path, so the bus bumps the agent's
 * snoop/snoop-miss counters on its behalf and every statistic stays
 * bit-identical with the filter on or off. Agents that cannot prove
 * absence (the no-inclusion baseline, whose level-1 probes on every bus
 * transaction are the paper's point) attach unfilterable and are always
 * probed.
 */

#ifndef VRC_COHERENCE_BUS_HH
#define VRC_COHERENCE_BUS_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "base/counter.hh"
#include "base/fault.hh"
#include "coherence/bus_arbiter.hh"
#include "coherence/presence_map.hh"
#include "coherence/snoop.hh"
#include "coherence/transaction.hh"

namespace vrc
{

/** How an agent participates in snoop filtering (see SharedBus). */
struct SnoopAgentInfo
{
    /**
     * The agent's presence notifications are exact: a clear presence
     * bit proves its snoop() would be a miss with no side effects.
     */
    bool filterable = false;

    /** Counters to bump on the agent's behalf when a snoop is skipped
     *  (may be null for agents that keep no snoop statistics). */
    Counter *snoops = nullptr;
    Counter *snoopMisses = nullptr;
};

/**
 * Passive listener notified after every completed broadcast. Used by
 * the coherence oracle (src/check) to validate cross-agent state; with
 * no observer attached the notification costs one branch.
 */
class BusObserver
{
  public:
    virtual ~BusObserver() = default;

    /** @p tx completed with merged result @p result. */
    virtual void onTransaction(const BusTransaction &tx,
                               const BusResult &result) = 0;
};

/** The shared bus connecting all second-level caches and memory. */
class SharedBus
{
  public:
    SharedBus()
        : _stats("bus"),
          _txCtr(&_stats.handle("transactions")),
          _memSupplyCtr(&_stats.handle("memory_supplies"))
    {
        for (int i = 0; i < 4; ++i) {
            _opCtrs[i] =
                &_stats.handle(busOpName(static_cast<BusOp>(i)));
        }
    }

    /**
     * Register a snooper.
     *
     * @return the agent's CPU id (registration order).
     */
    CpuId
    attach(Snooper *snooper, SnoopAgentInfo info = {})
    {
        _snoopers.push_back(snooper);
        // Presence is a per-agent bit in a word-sized mask; agents past
        // that width fall back to being probed unconditionally.
        if (_agents.size() >= maxFilterableAgents)
            info.filterable = false;
        _agents.push_back(info);
        _perCpuTx.push_back(0);
        return static_cast<CpuId>(_snoopers.size() - 1);
    }

    /**
     * Broadcast @p tx to every agent except the source and merge their
     * responses. Memory supplies the block when no cache does.
     */
    BusResult
    broadcast(const BusTransaction &tx)
    {
        if (softErrorsArmed())
            absorbLostAttempts(tx);
        ++_txSeq;
        if (_arbiter)
            _arbiter->post(tx.source, tx.op);
        (*_txCtr)++;
        (*_opCtrs[static_cast<int>(tx.op)])++;
        _opCounts[static_cast<int>(tx.op)] += 1;
        if (tx.source < _perCpuTx.size())
            _perCpuTx[tx.source] += 1;

        AgentMask present = ~AgentMask{0};
        if (_filterEnabled)
            present = _presence.lookup(tx.blockAddr.value());

        SnoopResult merged;
        for (std::size_t i = 0; i < _snoopers.size(); ++i) {
            if (static_cast<CpuId>(i) == tx.source)
                continue;
            const SnoopAgentInfo &info = _agents[i];
            if (info.filterable && !(present & (AgentMask{1} << i))) {
                // Exact absence: the probe would have been a miss.
                // Account for it as one so statistics don't depend on
                // whether the filter is enabled.
                if (info.snoops)
                    (*info.snoops)++;
                if (info.snoopMisses)
                    (*info.snoopMisses)++;
                _snoopsFiltered += 1;
                continue;
            }
            merged.merge(_snoopers[i]->snoop(tx));
        }
        BusResult res;
        res.shared = merged.sharedAck;
        res.suppliedByCache = merged.suppliedData;
        if (!res.suppliedByCache && tx.op != BusOp::Invalidate)
            (*_memSupplyCtr)++;
        if (_observer)
            _observer->onTransaction(tx, res);
        return res;
    }

    /** Attach (or detach with nullptr) a transaction observer. */
    void setObserver(BusObserver *obs) { _observer = obs; }

    /**
     * Attach (or detach with nullptr) the cycle-timing arbiter. When
     * attached, every broadcast attempt -- including soft-error lost
     * attempts that occupy a slot and get retried -- posts one request
     * to the arbiter's grant queue, so arbitration latency and retry
     * occupancy become visible queueing load. Functional behavior and
     * every architectural counter are unaffected.
     */
    void setArbiter(BusArbiter *arb) { _arbiter = arb; }
    BusArbiter *arbiter() { return _arbiter; }

    // --- presence notifications (snoop filter maintenance) -----------

    /** Agent @p cpu filled the second-level line at @p line_addr. */
    void
    noteBlockCached(CpuId cpu, std::uint32_t line_addr)
    {
        if (cpu < maxFilterableAgents && _agents[cpu].filterable)
            _presence.setBits(line_addr, AgentMask{1} << cpu);
    }

    /** Agent @p cpu dropped the second-level line at @p line_addr. */
    void
    noteBlockUncached(CpuId cpu, std::uint32_t line_addr)
    {
        if (cpu >= maxFilterableAgents || !_agents[cpu].filterable)
            return;
        _presence.clearBits(line_addr, AgentMask{1} << cpu);
    }

    /**
     * Drop agent @p cpu's presence bit from every entry (soft-error
     * recovery: the filter state is suspect and must be rebuilt from
     * the agent's second-level directory via noteBlockCached).
     */
    void
    clearPresence(CpuId cpu)
    {
        if (cpu >= maxFilterableAgents || !_agents[cpu].filterable)
            return;
        _presence.clearBitsEverywhere(AgentMask{1} << cpu);
    }

    /** Enable/disable presence-based snoop skipping (default on). */
    void setSnoopFilterEnabled(bool on) { _filterEnabled = on; }
    bool snoopFilterEnabled() const { return _filterEnabled; }

    /** Probes the filter proved unnecessary (diagnostic, not a stat). */
    std::uint64_t snoopsFiltered() const { return _snoopsFiltered; }

    /** Number of presence entries currently tracked (diagnostic). */
    std::size_t presenceEntries() const { return _presence.size(); }

    /** True if agent @p cpu attached filterable (and fits the mask). */
    bool
    agentFilterable(CpuId cpu) const
    {
        return cpu < _agents.size() && cpu < maxFilterableAgents &&
            _agents[cpu].filterable;
    }

    /** Presence bit of one agent for one second-level line address. */
    bool
    presenceBit(CpuId cpu, std::uint32_t line_addr) const
    {
        return ((_presence.lookup(line_addr) >> cpu) & AgentMask{1}) != 0;
    }

    /** Visit the line address of every presence entry (oracle sweeps). */
    template <typename Fn>
    void
    forEachPresence(Fn fn) const
    {
        _presence.forEach(
            [&](std::uint32_t key, AgentMask) { fn(key); });
    }

    // --- counters ----------------------------------------------------

    /** Number of attached agents. */
    std::size_t agentCount() const { return _snoopers.size(); }

    /** Total transactions issued. */
    std::uint64_t transactions() const { return _txCtr->value(); }

    /** Transactions of one operation kind (O(1), no string lookup). */
    std::uint64_t
    opCount(BusOp op) const
    {
        return _opCounts[static_cast<int>(op)];
    }

    /** Transactions issued by one CPU. */
    std::uint64_t
    transactionsFrom(CpuId cpu) const
    {
        return cpu < _perCpuTx.size() ? _perCpuTx[cpu] : 0;
    }

    const StatGroup &stats() const { return _stats; }

    /** Zero transaction counters (warm-up support). */
    void
    resetStats()
    {
        _stats.reset();
        _opCounts = {};
        _snoopsFiltered = 0;
        std::fill(_perCpuTx.begin(), _perCpuTx.end(), 0);
    }

  private:
    using AgentMask = std::uint64_t;
    static constexpr std::size_t maxFilterableAgents = 64;

    /**
     * Soft-error model: an armed bus may lose a broadcast in flight.
     * The source times out waiting for the snoop responses and
     * re-arbitrates; each lost attempt occupies a real bus slot (it is
     * counted like a transaction, so the recovery cost is visible in
     * every report) but reaches no snooper and moves no data. A
     * transaction lost more times than the retry budget allows is a
     * machine check. Keyed by (source, op, block, sequence, attempt):
     * a pure function of simulated history, so the schedule is
     * identical at any --jobs count, and a doomed attempt's retry can
     * draw a fresh verdict.
     */
    void
    absorbLostAttempts(const BusTransaction &tx)
    {
        const SoftErrorConfig &sc = softErrorConfig();
        if (sc.bus <= 0.0)
            return;
        std::uint64_t key =
            (static_cast<std::uint64_t>(tx.source) << 40) ^
            (static_cast<std::uint64_t>(tx.op) << 32) ^
            tx.blockAddr.value();
        for (unsigned attempt = 0;
             softErrorDecision("bus-drop", key,
                               _txSeq * 16 + attempt, sc.bus);
             ++attempt) {
            if (_arbiter)
                _arbiter->post(tx.source, tx.op);
            (*_txCtr)++;
            (*_opCtrs[static_cast<int>(tx.op)])++;
            _opCounts[static_cast<int>(tx.op)] += 1;
            if (tx.source < _perCpuTx.size())
                _perCpuTx[tx.source] += 1;
            _stats.counter("soft_timeouts")++;
            if (attempt + 1 > sc.busRetryLimit) {
                throw FaultUnrecoverable(
                    "bus transaction lost beyond the retry budget");
            }
            _stats.counter("soft_retries")++;
        }
    }

    std::vector<Snooper *> _snoopers;
    std::vector<SnoopAgentInfo> _agents;
    std::vector<std::uint64_t> _perCpuTx;
    StatGroup _stats;
    Counter *_txCtr;
    Counter *_memSupplyCtr;
    Counter *_opCtrs[4];
    std::array<std::uint64_t, 4> _opCounts{};
    PresenceMap _presence;
    bool _filterEnabled = true;
    std::uint64_t _snoopsFiltered = 0;
    /** Broadcasts to date; a soft-error determinism key, never reset. */
    std::uint64_t _txSeq = 0;
    BusObserver *_observer = nullptr;
    BusArbiter *_arbiter = nullptr;
};

} // namespace vrc

#endif // VRC_COHERENCE_BUS_HH
