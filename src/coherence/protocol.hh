/**
 * @file
 * Coherence line states for the write-invalidate protocol.
 *
 * The R-cache keeps two "state bits" per block (Figure 3). We model the
 * sharing status as Invalid / Shared / Private; dirtiness is carried by
 * the separate rdirty (modified in the R-cache) and vdirty (modified in
 * the V-cache above) bits, exactly as the paper's tag layout does.
 */

#ifndef VRC_COHERENCE_PROTOCOL_HH
#define VRC_COHERENCE_PROTOCOL_HH

#include <cstdint>

namespace vrc
{

/** Sharing status of a second-level cache block. */
enum class CoherenceState : std::uint8_t
{
    Invalid = 0, ///< no valid copy in this hierarchy
    Shared = 1,  ///< valid; other hierarchies may also hold it
    Private = 2  ///< valid; this hierarchy holds the only copy
};

/** Printable state name. */
inline const char *
coherenceStateName(CoherenceState s)
{
    switch (s) {
      case CoherenceState::Invalid:
        return "Invalid";
      case CoherenceState::Shared:
        return "Shared";
      case CoherenceState::Private:
        return "Private";
    }
    return "?";
}

/** True if a block in state @p s may be written without a bus action. */
inline bool
writableWithoutBus(CoherenceState s)
{
    return s == CoherenceState::Private;
}

/**
 * Family of snooping protocols a hierarchy can run at the second level.
 *
 * The paper assumes write-invalidate "for simplicity ... although our
 * scheme will also work for other protocols as well"; WriteUpdate is
 * that other family (Firefly-style: writes to shared blocks broadcast
 * the new data and update memory, copies stay valid and shared).
 */
enum class CoherencePolicy : std::uint8_t
{
    WriteInvalidate,
    WriteUpdate
};

/** Printable policy name. */
inline const char *
coherencePolicyName(CoherencePolicy p)
{
    return p == CoherencePolicy::WriteInvalidate ? "write-invalidate"
                                                 : "write-update";
}

} // namespace vrc

#endif // VRC_COHERENCE_PROTOCOL_HH
