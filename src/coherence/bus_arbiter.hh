/**
 * @file
 * Cycle-approximate arbiter for the shared snooping bus.
 *
 * The bus is a serially-reusable resource: one transaction occupies it
 * at a time, for a per-transaction-type service time (BusTimingParams).
 * Requests enter a grant queue when they are posted by SharedBus (every
 * broadcast posts once, and every soft-error retransmission posts again,
 * so retries are visible queuing load) and are resolved against the
 * requesters' simulated clocks when the owning simulator drains the
 * queue at the end of the step that issued them.
 *
 * Grant policy: requests are served in order of effective start (the
 * later of the request tick and the bus-free point), so the queue is
 * FIFO in simulated time. Requests already waiting when the bus frees
 * all tie at the bus-free point; ties are granted round-robin by
 * source CPU, starting after the last CPU granted, so no requester can
 * starve under saturation. In the sequential trace replay at most one
 * CPU has requests outstanding per drain, so the FIFO order dominates;
 * the round-robin path arbitrates same-tick batches from system agents
 * (page remaps, DMA) and any future multi-ported callers.
 *
 * What is cycle-approximate here rather than cycle-accurate: request
 * ticks are taken at the end of the reference that issued the
 * transaction (after its full level cost), the functional broadcast has
 * already completed when timing is charged, and dependent transactions
 * from one reference are posted with the same request tick and simply
 * serialize back-to-back.
 */

#ifndef VRC_COHERENCE_BUS_ARBITER_HH
#define VRC_COHERENCE_BUS_ARBITER_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "coherence/transaction.hh"
#include "core/clock.hh"
#include "core/timing.hh"

namespace vrc
{

/** FIFO/round-robin grant queue over the single shared bus. */
class BusArbiter
{
  public:
    explicit BusArbiter(const BusTimingParams &svc)
        : _service{svc.readMissService, svc.invalidateService,
                   svc.readMissService + svc.invalidateService,
                   svc.updateService}
    {
    }

    /** One resolved grant (all ticks absolute simulated time). */
    struct Grant
    {
        CpuId source = invalidCpu;
        BusOp op = BusOp::ReadMiss;
        Tick request = 0.0; ///< when the requester asked for the bus
        Tick start = 0.0;   ///< when the bus was granted
        Tick end = 0.0;     ///< when the transaction left the bus
    };

    /**
     * Enqueue a bus request from @p source (SharedBus calls this once
     * per broadcast attempt, including lost attempts that will be
     * retried). The request tick is bound later, at drain time, from
     * the source's clock.
     */
    void
    post(CpuId source, BusOp op)
    {
        _pending.push_back(Pending{source, op});
    }

    /** Queued requests not yet granted. */
    std::size_t pendingCount() const { return _pending.size(); }

    /**
     * Resolve every pending request against the per-CPU clocks and
     * charge the requesters.
     *
     * @param clocks  per-CPU simulated clocks, indexed by CpuId; a
     *                source outside the array (a system agent such as a
     *                page-remap flush or DMA) is granted back-to-back
     *                at the bus-free point and charged to no CPU clock.
     *
     * Each granted request stalls its requester until the grant, then
     * occupies the bus for the service time; the requester's clock ends
     * at the transaction's completion, so a later reference from the
     * same CPU naturally queues behind it.
     */
    void
    drain(std::vector<CpuClock> &clocks)
    {
        while (!_pending.empty()) {
            std::size_t pick = choose(clocks);
            Pending req = _pending[pick];
            _pending.erase(_pending.begin() +
                           static_cast<std::ptrdiff_t>(pick));
            grantOne(req, clocks);
        }
    }

    // --- counters ----------------------------------------------------

    /** Total grants issued (includes retransmitted attempts). */
    std::uint64_t grants() const { return _grants; }

    /** Grants of one transaction kind. */
    std::uint64_t
    grantsFor(BusOp op) const
    {
        return _grantsByOp[static_cast<int>(op)];
    }

    /** Ticks the bus spent occupied by transactions. */
    Tick busyTicks() const { return _busy; }

    /** Ticks requesters spent queued for grants, all CPUs. */
    Tick waitTicks() const { return _wait; }

    /** Queueing delay charged to one CPU (system agents excluded). */
    Tick
    waitTicksFor(CpuId cpu) const
    {
        return cpu < _waitByCpu.size() ? _waitByCpu[cpu] : 0.0;
    }

    /** The instant the bus next becomes free. */
    Tick freeAt() const { return _free; }

    /** Busy fraction of the given time horizon (0 when idle). */
    double
    utilization(Tick horizon) const
    {
        return horizon > 0.0 ? _busy / horizon : 0.0;
    }

    /** Zero all counters and the bus-free point (warm-up support). */
    void
    reset()
    {
        _pending.clear();
        _free = 0.0;
        _busy = 0.0;
        _wait = 0.0;
        _grants = 0;
        _grantsByOp = {};
        std::fill(_waitByCpu.begin(), _waitByCpu.end(), 0.0);
        _lastGranted = invalidCpu;
    }

  private:
    struct Pending
    {
        CpuId source;
        BusOp op;
    };

    /** Request tick of one pending entry under the given clocks. */
    static Tick
    requestTick(const Pending &p, const std::vector<CpuClock> &clocks,
                Tick free)
    {
        // System agents have no clock: they ask at the bus-free point,
        // so they serialize back-to-back with zero booked wait.
        return p.source < clocks.size() ? clocks[p.source].now() : free;
    }

    /**
     * Index of the next request to grant: earliest effective start
     * first, where a request's effective start is the later of its
     * request tick and the bus-free point. Requests already waiting
     * when the bus frees all tie at the bus-free point, and ties are
     * broken round-robin by source starting after the last granted
     * CPU.
     */
    std::size_t
    choose(const std::vector<CpuClock> &clocks) const
    {
        std::size_t best = 0;
        Tick best_start =
            std::max(requestTick(_pending[0], clocks, _free), _free);
        for (std::size_t i = 1; i < _pending.size(); ++i) {
            Tick start =
                std::max(requestTick(_pending[i], clocks, _free), _free);
            if (start < best_start ||
                (start == best_start &&
                 rrRank(_pending[i].source) <
                     rrRank(_pending[best].source))) {
                best = i;
                best_start = start;
            }
        }
        return best;
    }

    /** Round-robin distance of @p cpu from the last granted CPU. */
    std::uint64_t
    rrRank(CpuId cpu) const
    {
        // System agents rank last among ready requesters.
        if (cpu == invalidCpu)
            return ~std::uint64_t{0};
        std::uint64_t base = _lastGranted == invalidCpu
            ? 0
            : static_cast<std::uint64_t>(_lastGranted) + 1;
        constexpr std::uint64_t wrap = std::uint64_t{1} << 32;
        return (static_cast<std::uint64_t>(cpu) + wrap - base) % wrap;
    }

    void
    grantOne(const Pending &req, std::vector<CpuClock> &clocks)
    {
        Tick service = _service[static_cast<int>(req.op)];
        if (req.source < clocks.size()) {
            CpuClock &clk = clocks[req.source];
            Tick asked = clk.now();
            Tick start = std::max(asked, _free);
            clk.waitUntil(start);
            clk.chargeBusService(service);
            _free = start + service;
            Tick waited = start - asked;
            _wait += waited;
            if (req.source >= _waitByCpu.size())
                _waitByCpu.resize(req.source + 1, 0.0);
            _waitByCpu[req.source] += waited;
            _lastGranted = req.source;
        } else {
            // Unclocked system agent: back-to-back occupancy.
            _free += service;
        }
        _busy += service;
        ++_grants;
        ++_grantsByOp[static_cast<int>(req.op)];
    }

    std::array<Tick, 4> _service;
    std::vector<Pending> _pending;
    Tick _free = 0.0;
    Tick _busy = 0.0;
    Tick _wait = 0.0;
    std::uint64_t _grants = 0;
    std::array<std::uint64_t, 4> _grantsByOp{};
    std::vector<Tick> _waitByCpu;
    CpuId _lastGranted = invalidCpu;
};

} // namespace vrc

#endif // VRC_COHERENCE_BUS_ARBITER_HH
