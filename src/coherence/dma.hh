/**
 * @file
 * DMA-capable I/O device on the shared bus.
 *
 * I/O devices address memory physically (the paper's motivation #4 for
 * a physically-addressed second level): a DMA transfer is just a
 * sequence of ordinary bus transactions, and the R-caches keep the
 * hierarchy coherent exactly as they do for other processors -- dirty
 * data is flushed out of V-caches/write buffers on DMA reads, and all
 * cached copies are invalidated on DMA writes. No reverse translation
 * hardware is needed anywhere near the V-cache.
 */

#ifndef VRC_COHERENCE_DMA_HH
#define VRC_COHERENCE_DMA_HH

#include <cstdint>

#include "base/counter.hh"
#include "coherence/bus.hh"

namespace vrc
{

/** A bus agent performing DMA transfers to/from physical memory. */
class DmaDevice : public Snooper
{
  public:
    /**
     * @param bus         the shared bus; the device attaches itself
     * @param block_bytes coherence granularity (the caches' L2 line)
     */
    DmaDevice(SharedBus &bus, std::uint32_t block_bytes)
        : _bus(bus), _blockBytes(block_bytes), _stats("dma")
    {
        // The device holds no cached state, so it never needs to be
        // probed: attach filterable and never publish presence.
        _busId = bus.attach(this, SnoopAgentInfo{true, nullptr, nullptr});
    }

    /**
     * DMA read (device <- memory) of @p len bytes at @p base.
     * Dirty cache copies are flushed and supply the data.
     *
     * @return number of blocks supplied by a cache rather than memory.
     */
    std::uint32_t
    read(PhysAddr base, std::uint32_t len)
    {
        std::uint32_t supplied = 0;
        forEachBlock(base, len, [&](PhysAddr block) {
            BusResult r = _bus.broadcast(
                BusTransaction{BusOp::ReadMiss, block, _busId});
            _stats.counter("blocks_read")++;
            if (r.suppliedByCache) {
                ++supplied;
                _stats.counter("supplied_by_cache")++;
            }
        });
        return supplied;
    }

    /**
     * DMA write (device -> memory) of @p len bytes at @p base.
     * Every cached copy is invalidated (read-modified-write keeps
     * partially overwritten blocks coherent by flushing dirty data
     * first).
     */
    void
    write(PhysAddr base, std::uint32_t len)
    {
        forEachBlock(base, len, [&](PhysAddr block) {
            _bus.broadcast(
                BusTransaction{BusOp::ReadModWrite, block, _busId});
            _stats.counter("blocks_written")++;
        });
    }

    /** Devices hold no cached state: foreign traffic is ignored. */
    SnoopResult
    snoop(const BusTransaction &) override
    {
        return SnoopResult{};
    }

    CpuId busId() const { return _busId; }
    const StatGroup &stats() const { return _stats; }

  private:
    template <typename Fn>
    void
    forEachBlock(PhysAddr base, std::uint32_t len, Fn fn)
    {
        std::uint32_t first = base.value() & ~(_blockBytes - 1);
        std::uint32_t last = (base.value() + (len ? len - 1 : 0)) &
            ~(_blockBytes - 1);
        for (std::uint32_t a = first; a <= last; a += _blockBytes)
            fn(PhysAddr(a));
    }

    SharedBus &_bus;
    std::uint32_t _blockBytes;
    CpuId _busId;
    StatGroup _stats;
};

} // namespace vrc

#endif // VRC_COHERENCE_DMA_HH
