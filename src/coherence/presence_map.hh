/**
 * @file
 * Flat hash map from second-level line addresses to per-agent presence
 * masks (the snoop filter's directory).
 *
 * The bus maintains one entry per line address cached by at least one
 * filterable agent, and probes it on every broadcast; with the
 * std::unordered_map it replaces, the pointer-chasing find() and the
 * per-node allocations were among the hottest simulator operations.
 * This map is open-addressing with linear probing over one contiguous
 * slot array: a probe touches consecutive cache lines, inserts allocate
 * only on growth, and erases use backward-shift deletion so the table
 * never accumulates tombstones.
 *
 * A slot is occupied iff its mask is non-zero -- the bus erases an
 * entry exactly when its last presence bit clears, so a zero mask never
 * needs to be stored and doubles as the empty marker (keys need no
 * reserved sentinel value).
 */

#ifndef VRC_COHERENCE_PRESENCE_MAP_HH
#define VRC_COHERENCE_PRESENCE_MAP_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vrc
{

/** Open-addressing line-address -> presence-mask map. */
class PresenceMap
{
  public:
    using Mask = std::uint64_t;

    PresenceMap() : _slots(kMinCapacity) {}

    /** Mask for @p key, or 0 when the key is absent. */
    Mask
    lookup(std::uint32_t key) const
    {
        std::size_t i = home(key);
        while (_slots[i].mask != 0) {
            if (_slots[i].key == key)
                return _slots[i].mask;
            i = (i + 1) & (_slots.size() - 1);
        }
        return 0;
    }

    /** Set @p bits in @p key's mask, inserting the entry if absent. */
    void
    setBits(std::uint32_t key, Mask bits)
    {
        if ((_size + 1) * 4 > _slots.size() * 3)
            grow();
        std::size_t i = home(key);
        while (_slots[i].mask != 0) {
            if (_slots[i].key == key) {
                _slots[i].mask |= bits;
                return;
            }
            i = (i + 1) & (_slots.size() - 1);
        }
        _slots[i] = Slot{key, bits};
        ++_size;
    }

    /**
     * Clear @p bits in @p key's mask; the entry is erased when its mask
     * reaches zero. Absent keys are a no-op.
     */
    void
    clearBits(std::uint32_t key, Mask bits)
    {
        std::size_t i = home(key);
        while (_slots[i].mask != 0) {
            if (_slots[i].key == key) {
                _slots[i].mask &= ~bits;
                if (_slots[i].mask == 0)
                    eraseAt(i);
                return;
            }
            i = (i + 1) & (_slots.size() - 1);
        }
    }

    /** Clear @p bits in every entry (soft-error filter rebuild). */
    void
    clearBitsEverywhere(Mask bits)
    {
        // Erasure shifts slots around; snapshot the keys first so the
        // sweep stays simple (this path runs only on recovery events).
        std::vector<std::uint32_t> keys;
        keys.reserve(_size);
        for (const Slot &s : _slots) {
            if (s.mask != 0)
                keys.push_back(s.key);
        }
        for (std::uint32_t k : keys)
            clearBits(k, bits);
    }

    /** Visit every (key, mask) entry, in unspecified order. */
    template <typename Fn>
    void
    forEach(Fn fn) const
    {
        for (const Slot &s : _slots) {
            if (s.mask != 0)
                fn(s.key, s.mask);
        }
    }

    std::size_t size() const { return _size; }

  private:
    struct Slot
    {
        std::uint32_t key = 0;
        Mask mask = 0;  ///< 0 = slot empty
    };

    static constexpr std::size_t kMinCapacity = 1024;  ///< power of two

    std::size_t
    home(std::uint32_t key) const
    {
        // Fibonacci multiplicative hash; line addresses share low zero
        // bits (block alignment), which the multiply disperses.
        return (key * 0x9E3779B1u) & (_slots.size() - 1);
    }

    /**
     * Backward-shift deletion: close the hole at @p i by sliding back
     * every following slot that probes through it, keeping all chains
     * contiguous without tombstones.
     */
    void
    eraseAt(std::size_t i)
    {
        const std::size_t cap_mask = _slots.size() - 1;
        std::size_t hole = i;
        std::size_t j = (i + 1) & cap_mask;
        while (_slots[j].mask != 0) {
            // Can _slots[j] legally move into the hole? Only if its
            // home position does not lie strictly inside (hole, j].
            const std::size_t h = home(_slots[j].key);
            const bool between = ((j - h) & cap_mask) >=
                ((j - hole) & cap_mask);
            if (between) {
                _slots[hole] = _slots[j];
                hole = j;
            }
            j = (j + 1) & cap_mask;
        }
        _slots[hole] = Slot{};
        --_size;
    }

    void
    grow()
    {
        std::vector<Slot> old = std::move(_slots);
        _slots.assign(old.size() * 2, Slot{});
        _size = 0;
        for (const Slot &s : old) {
            if (s.mask != 0)
                setBits(s.key, s.mask);
        }
    }

    std::vector<Slot> _slots;
    std::size_t _size = 0;
};

} // namespace vrc

#endif // VRC_COHERENCE_PRESENCE_MAP_HH
