/**
 * @file
 * Snooper interface implemented by every cache hierarchy on the bus.
 */

#ifndef VRC_COHERENCE_SNOOP_HH
#define VRC_COHERENCE_SNOOP_HH

#include "coherence/transaction.hh"

namespace vrc
{

/** A bus agent that observes transactions issued by other agents. */
class Snooper
{
  public:
    virtual ~Snooper() = default;

    /**
     * React to a foreign bus transaction.
     *
     * Implementations update their own state (invalidate, flush, change
     * sharing status) and report whether they hold or supplied the block.
     */
    virtual SnoopResult snoop(const BusTransaction &tx) = 0;
};

} // namespace vrc

#endif // VRC_COHERENCE_SNOOP_HH
