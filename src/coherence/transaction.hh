/**
 * @file
 * Bus transaction types for the write-invalidate protocol.
 *
 * The paper assumes an invalidation protocol at the R-cache level with
 * three bus transaction kinds: read-miss, invalidation, and
 * read-modified-write (treated by snoopers as a read-miss followed by an
 * invalidation). Bus addresses are physical.
 */

#ifndef VRC_COHERENCE_TRANSACTION_HH
#define VRC_COHERENCE_TRANSACTION_HH

#include <cstdint>

#include "base/addr.hh"
#include "base/types.hh"

namespace vrc
{

/** Kind of a bus transaction. */
enum class BusOp : std::uint8_t
{
    ReadMiss,     ///< fetch a block for reading
    Invalidate,   ///< invalidate all other copies before a local write
    ReadModWrite, ///< fetch with intent to modify (read-miss + invalidate)
    Update        ///< broadcast new data to all copies (write-update
                  ///< protocols; memory is updated too, Firefly-style)
};

/** Printable name of a bus operation. */
inline const char *
busOpName(BusOp op)
{
    switch (op) {
      case BusOp::ReadMiss:
        return "read-miss";
      case BusOp::Invalidate:
        return "invalidate";
      case BusOp::ReadModWrite:
        return "read-modified-write";
      case BusOp::Update:
        return "update";
    }
    return "?";
}

/** One broadcast on the shared bus. */
struct BusTransaction
{
    BusOp op = BusOp::ReadMiss;
    PhysAddr blockAddr;     ///< block-aligned physical address
    CpuId source = invalidCpu;
};

/** What one snooper reports back for a transaction. */
struct SnoopResult
{
    bool sharedAck = false;    ///< snooper holds (and keeps) a copy
    bool suppliedData = false; ///< snooper supplied the block (was dirty)

    void
    merge(const SnoopResult &o)
    {
        sharedAck = sharedAck || o.sharedAck;
        suppliedData = suppliedData || o.suppliedData;
    }
};

/** Outcome of a full bus broadcast. */
struct BusResult
{
    bool shared = false;        ///< some other cache holds the block
    bool suppliedByCache = false; ///< a cache (not memory) supplied data
};

} // namespace vrc

#endif // VRC_COHERENCE_TRANSACTION_HH
