#include "vm/addr_space.hh"

#include "base/bitops.hh"
#include "base/log.hh"

namespace vrc
{

AddressSpaceManager::AddressSpaceManager(std::uint32_t page_size,
                                         std::uint32_t phys_pages)
    : _pageSize(page_size), _physPages(phys_pages)
{
    panicIfNot(isPowerOfTwo(page_size), "page size must be a power of two");
    panicIfNot(phys_pages >= 2, "need at least two physical frames");
}

Ppn
AddressSpaceManager::allocFrame(std::uint32_t color)
{
    color %= numColors;
    _framesAllocated += 1;
    // Physical memories too small to hold one stripe per color fall
    // back to plain wrapping allocation (frame 0 stays reserved).
    if (_physPages < 2 * numColors) {
        std::uint64_t k = _nextPerColor[0]++;
        return static_cast<Ppn>(1 + k % (_physPages - 1));
    }
    // Frames of one color are numColors apart. Frame 0 stays reserved
    // (null page), so color 0 starts at numColors. Allocation wraps
    // around the bounded physical memory per color.
    std::uint64_t stripes = _physPages / numColors - 1;
    std::uint64_t k = _nextPerColor[color] % stripes;
    _nextPerColor[color] += 1;
    return static_cast<Ppn>((k + 1) * numColors + color);
}

PhysAddr
AddressSpaceManager::translate(ProcessId pid, VirtAddr va)
{
    Vpn vpn = va.vpn(_pageSize);
    PageTable &pt = _tables[pid];
    auto ppn = pt.lookup(vpn);
    if (!ppn) {
        ppn = allocFrame(vpn % numColors);
        pt.map(vpn, *ppn);
    }
    return makePhysAddr(*ppn, va.pageOffset(_pageSize), _pageSize);
}

std::optional<PhysAddr>
AddressSpaceManager::tryTranslate(ProcessId pid, VirtAddr va) const
{
    auto table_it = _tables.find(pid);
    if (table_it == _tables.end())
        return std::nullopt;
    auto ppn = table_it->second.lookup(va.vpn(_pageSize));
    if (!ppn)
        return std::nullopt;
    return makePhysAddr(*ppn, va.pageOffset(_pageSize), _pageSize);
}

SegmentId
AddressSpaceManager::createSegment(std::uint32_t num_pages,
                                   Vpn color_base_vpn)
{
    panicIfNot(num_pages > 0, "empty shared segment");
    std::vector<Ppn> frames;
    frames.reserve(num_pages);
    for (std::uint32_t i = 0; i < num_pages; ++i)
        frames.push_back(allocFrame((color_base_vpn + i) % numColors));
    _segments.push_back(std::move(frames));
    return static_cast<SegmentId>(_segments.size() - 1);
}

void
AddressSpaceManager::attachSegment(ProcessId pid, SegmentId seg, Vpn base)
{
    panicIfNot(seg < _segments.size(), "unknown segment id");
    PageTable &pt = _tables[pid];
    const auto &frames = _segments[seg];
    for (std::size_t i = 0; i < frames.size(); ++i)
        pt.map(base + static_cast<Vpn>(i), frames[i]);
}

const std::vector<Ppn> &
AddressSpaceManager::segmentFrames(SegmentId seg) const
{
    panicIfNot(seg < _segments.size(), "unknown segment id");
    return _segments[seg];
}

} // namespace vrc
