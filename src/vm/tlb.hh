/**
 * @file
 * Translation lookaside buffer.
 *
 * In the paper's organization the TLB sits at the *second* level: the
 * virtual address is forwarded to it in parallel with the V-cache lookup
 * and the translation is aborted on a V-cache hit. The TLB therefore only
 * matters on V-cache misses. We model a set-associative, LRU TLB tagged by
 * (process id, virtual page number) and count hits/misses so experiments
 * can report TLB behaviour; a miss is serviced from the page tables.
 *
 * Storage is structure-of-arrays in the tag-store style: one flat key
 * array holds the (pid, vpn) pair of every entry packed into a single
 * 64-bit word, so the translate hot path is a branch-free equality scan
 * of one set's keys; the payload (frame number, recency) lives in a
 * parallel array touched only on the way that hit.
 */

#ifndef VRC_VM_TLB_HH
#define VRC_VM_TLB_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/counter.hh"
#include "base/types.hh"

namespace vrc
{

class AddressSpaceManager;

/** Set-associative, LRU, (pid, vpn)-tagged translation buffer. */
class Tlb
{
  public:
    /**
     * @param entries   total number of entries (power of two)
     * @param assoc     set associativity (power of two, <= entries)
     */
    Tlb(std::uint32_t entries, std::uint32_t assoc);

    /**
     * Translate a virtual page number, filling from @p asm_ on a miss.
     *
     * @return the physical frame number.
     */
    Ppn translate(ProcessId pid, Vpn vpn, AddressSpaceManager &spaces);

    /** Probe without filling. @return true on a TLB hit. */
    bool probe(ProcessId pid, Vpn vpn) const;

    /** Invalidate one translation. @return true if it was present. */
    bool invalidate(ProcessId pid, Vpn vpn);

    /** Invalidate all entries of one process. */
    void invalidateProcess(ProcessId pid);

    /** Invalidate everything. */
    void flush();

    std::uint64_t hits() const { return _hits->value(); }
    std::uint64_t misses() const { return _misses->value(); }

    const StatGroup &stats() const { return _stats; }

    std::uint32_t numEntries() const { return _numSets * _assoc; }
    std::uint32_t associativity() const { return _assoc; }

  private:
    /** Payload of one entry; recency and frame, keyed by _keys. */
    struct Slot
    {
        Ppn ppn = 0;
        std::uint64_t lruStamp = 0;
    };

    /**
     * Key of an invalid entry. Unreachable as a real key: it would need
     * vpn == 2^32 - 1, i.e. a one-byte page size, and the address-space
     * layer requires power-of-two pages well above that.
     */
    static constexpr std::uint64_t kInvalidKey = ~std::uint64_t{0};

    static std::uint64_t
    key(ProcessId pid, Vpn vpn)
    {
        return (static_cast<std::uint64_t>(pid) << 32) | vpn;
    }

    std::uint32_t setIndex(Vpn vpn) const { return vpn & (_numSets - 1); }

    std::uint32_t _numSets;
    std::uint32_t _assoc;
    std::vector<std::uint64_t> _keys;  ///< set-major; kInvalidKey = empty
    std::vector<Slot> _slots;          ///< parallel to _keys
    std::uint64_t _clock = 0;
    mutable StatGroup _stats{"tlb"};

    /** Construction-resolved handles; translate() never does a
     *  string-keyed lookup (StatGroup handle contract). */
    Counter *_hits = &_stats.handle("hits");
    Counter *_misses = &_stats.handle("misses");
};

} // namespace vrc

#endif // VRC_VM_TLB_HH
