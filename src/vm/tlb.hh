/**
 * @file
 * Translation lookaside buffer.
 *
 * In the paper's organization the TLB sits at the *second* level: the
 * virtual address is forwarded to it in parallel with the V-cache lookup
 * and the translation is aborted on a V-cache hit. The TLB therefore only
 * matters on V-cache misses. We model a set-associative, LRU TLB tagged by
 * (process id, virtual page number) and count hits/misses so experiments
 * can report TLB behaviour; a miss is serviced from the page tables.
 */

#ifndef VRC_VM_TLB_HH
#define VRC_VM_TLB_HH

#include <cstdint>
#include <vector>

#include "base/counter.hh"
#include "base/types.hh"

namespace vrc
{

class AddressSpaceManager;

/** Set-associative, LRU, (pid, vpn)-tagged translation buffer. */
class Tlb
{
  public:
    /**
     * @param entries   total number of entries (power of two)
     * @param assoc     set associativity (power of two, <= entries)
     */
    Tlb(std::uint32_t entries, std::uint32_t assoc);

    /**
     * Translate a virtual page number, filling from @p asm_ on a miss.
     *
     * @return the physical frame number.
     */
    Ppn translate(ProcessId pid, Vpn vpn, AddressSpaceManager &spaces);

    /** Probe without filling. @return true on a TLB hit. */
    bool probe(ProcessId pid, Vpn vpn) const;

    /** Invalidate one translation. @return true if it was present. */
    bool invalidate(ProcessId pid, Vpn vpn);

    /** Invalidate all entries of one process. */
    void invalidateProcess(ProcessId pid);

    /** Invalidate everything. */
    void flush();

    std::uint64_t hits() const { return _stats.value("hits"); }
    std::uint64_t misses() const { return _stats.value("misses"); }

    const StatGroup &stats() const { return _stats; }

    std::uint32_t numEntries() const { return _numSets * _assoc; }
    std::uint32_t associativity() const { return _assoc; }

  private:
    struct Entry
    {
        bool valid = false;
        ProcessId pid = invalidProcess;
        Vpn vpn = 0;
        Ppn ppn = 0;
        std::uint64_t lruStamp = 0;
    };

    std::uint32_t setIndex(Vpn vpn) const { return vpn & (_numSets - 1); }

    std::uint32_t _numSets;
    std::uint32_t _assoc;
    std::vector<Entry> _entries; // _numSets * _assoc, set-major
    std::uint64_t _clock = 0;
    mutable StatGroup _stats{"tlb"};
};

} // namespace vrc

#endif // VRC_VM_TLB_HH
