/**
 * @file
 * Machine-wide address-space management.
 *
 * AddressSpaceManager owns one PageTable per process and the physical
 * frame allocator. It provides:
 *
 *  - demand allocation: the first touch of an unmapped private page
 *    allocates a fresh physical frame deterministically;
 *  - shared segments: a group of frames mapped into several processes,
 *    possibly at *different* virtual addresses. These produce both
 *    cross-processor sharing (coherence traffic) and synonyms (two
 *    virtual addresses naming the same physical block), the two
 *    phenomena the paper's hierarchy must handle.
 */

#ifndef VRC_VM_ADDR_SPACE_HH
#define VRC_VM_ADDR_SPACE_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/addr.hh"
#include "base/types.hh"
#include "vm/page_table.hh"

namespace vrc
{

/** Identifier of a shared segment. */
using SegmentId = std::uint32_t;

/** Machine-wide page tables plus the physical frame allocator. */
class AddressSpaceManager
{
  public:
    /**
     * @param page_size page size in bytes (power of two)
     * @param phys_pages number of physical frames before allocation wraps
     *                   (wrapping models frame reuse in a bounded memory)
     */
    explicit AddressSpaceManager(std::uint32_t page_size,
                                 std::uint32_t phys_pages = 1u << 18);

    /**
     * Translate @p va in process @p pid, demand-allocating a private frame
     * on first touch.
     */
    PhysAddr translate(ProcessId pid, VirtAddr va);

    /**
     * Translate without allocating.
     *
     * @return the physical address, or nullopt if the page is unmapped.
     */
    std::optional<PhysAddr> tryTranslate(ProcessId pid, VirtAddr va) const;

    /**
     * Create a shared segment of @p num_pages fresh frames.
     *
     * @param color_base_vpn virtual page the segment's canonical
     *        mapping starts at; frames are colored to match it.
     * @return the segment id, to pass to attachSegment().
     */
    SegmentId createSegment(std::uint32_t num_pages,
                            Vpn color_base_vpn = 0);

    /**
     * Map a shared segment into @p pid starting at virtual page @p base.
     * Different processes (or the same process twice) may attach the same
     * segment at different bases, creating synonyms.
     */
    void attachSegment(ProcessId pid, SegmentId seg, Vpn base);

    /** Frames making up a shared segment. */
    const std::vector<Ppn> &segmentFrames(SegmentId seg) const;

    /** Page size in bytes. */
    std::uint32_t pageSize() const { return _pageSize; }

    /** Per-process page table (created on demand). */
    PageTable &pageTable(ProcessId pid) { return _tables[pid]; }

    /** Number of frames handed out so far (without wrap). */
    std::uint64_t framesAllocated() const { return _framesAllocated; }

    /** Number of distinct processes seen. */
    std::size_t processCount() const { return _tables.size(); }

    /** Number of page colors the allocator maintains. */
    static constexpr std::uint32_t numColors = 8;

  private:
    /**
     * Allocate a frame of the given color (ppn % numColors == color).
     *
     * Page coloring keeps physically-indexed caches free of the
     * accidental conflicts a virtually-indexed cache avoids by layout:
     * standard OS practice in systems with physical caches, and what
     * makes the paper's V-R / R-R level-1 hit ratios comparable.
     */
    Ppn allocFrame(std::uint32_t color);

    std::uint32_t _pageSize;
    std::uint32_t _physPages;
    std::array<std::uint64_t, numColors> _nextPerColor{};
    std::unordered_map<ProcessId, PageTable> _tables;
    std::vector<std::vector<Ppn>> _segments;
    std::uint64_t _framesAllocated = 0;
};

} // namespace vrc

#endif // VRC_VM_ADDR_SPACE_HH
