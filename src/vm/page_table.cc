#include "vm/page_table.hh"

namespace vrc
{

bool
PageTable::map(Vpn vpn, Ppn ppn)
{
    auto [it, inserted] = _map.insert_or_assign(vpn, ppn);
    (void)it;
    return !inserted;
}

bool
PageTable::unmap(Vpn vpn)
{
    return _map.erase(vpn) > 0;
}

std::optional<Ppn>
PageTable::lookup(Vpn vpn) const
{
    auto it = _map.find(vpn);
    if (it == _map.end())
        return std::nullopt;
    return it->second;
}

} // namespace vrc
