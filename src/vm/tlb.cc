#include "vm/tlb.hh"

#include <algorithm>

#include "base/bitops.hh"
#include "base/log.hh"
#include "vm/addr_space.hh"

namespace vrc
{

Tlb::Tlb(std::uint32_t entries, std::uint32_t assoc)
    : _numSets(entries / assoc), _assoc(assoc),
      _keys(static_cast<std::size_t>(entries), kInvalidKey),
      _slots(static_cast<std::size_t>(entries))
{
    panicIfNot(isPowerOfTwo(entries), "TLB entries must be a power of two");
    panicIfNot(isPowerOfTwo(assoc) && assoc <= entries,
               "bad TLB associativity");
}

bool
Tlb::probe(ProcessId pid, Vpn vpn) const
{
    const std::uint64_t k = key(pid, vpn);
    const std::size_t base = std::size_t(setIndex(vpn)) * _assoc;
    for (std::uint32_t w = 0; w < _assoc; ++w) {
        if (_keys[base + w] == k)
            return true;
    }
    return false;
}

Ppn
Tlb::translate(ProcessId pid, Vpn vpn, AddressSpaceManager &spaces)
{
    ++_clock;
    const std::uint64_t k = key(pid, vpn);
    const std::size_t base = std::size_t(setIndex(vpn)) * _assoc;
    // Branch-free scan of the set's keys (invalid ways hold kInvalidKey
    // and can never match); the payload array is touched only on a hit.
    std::uint32_t hit = _assoc;
    for (std::uint32_t w = _assoc; w-- > 0;) {
        if (_keys[base + w] == k)
            hit = w;
    }
    if (hit != _assoc) {
        Slot &s = _slots[base + hit];
        s.lruStamp = _clock;
        (*_hits)++;
        return s.ppn;
    }

    // Miss: pick the victim way -- the first invalid way, else the
    // least recently used one -- and walk the page tables (allocating
    // on first touch, matching the demand-allocation behaviour of the
    // trace's address spaces).
    std::uint32_t vw = 0;
    for (std::uint32_t w = 0; w < _assoc; ++w) {
        if (_keys[base + w] == kInvalidKey) {
            vw = w;
            break;
        }
        if (_slots[base + w].lruStamp < _slots[base + vw].lruStamp)
            vw = w;
    }
    (*_misses)++;

    std::uint32_t page_size = spaces.pageSize();
    PhysAddr pa =
        spaces.translate(pid, makeVirtAddr(vpn, 0, page_size));
    Ppn ppn = pa.ppn(page_size);

    _keys[base + vw] = k;
    _slots[base + vw] = Slot{ppn, _clock};
    return ppn;
}

bool
Tlb::invalidate(ProcessId pid, Vpn vpn)
{
    const std::uint64_t k = key(pid, vpn);
    const std::size_t base = std::size_t(setIndex(vpn)) * _assoc;
    for (std::uint32_t w = 0; w < _assoc; ++w) {
        if (_keys[base + w] == k) {
            _keys[base + w] = kInvalidKey;
            return true;
        }
    }
    return false;
}

void
Tlb::invalidateProcess(ProcessId pid)
{
    for (std::uint64_t &k : _keys) {
        if (k != kInvalidKey && static_cast<ProcessId>(k >> 32) == pid)
            k = kInvalidKey;
    }
}

void
Tlb::flush()
{
    std::fill(_keys.begin(), _keys.end(), kInvalidKey);
}

} // namespace vrc
