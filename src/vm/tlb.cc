#include "vm/tlb.hh"

#include "base/bitops.hh"
#include "base/log.hh"
#include "vm/addr_space.hh"

namespace vrc
{

Tlb::Tlb(std::uint32_t entries, std::uint32_t assoc)
    : _numSets(entries / assoc), _assoc(assoc),
      _entries(static_cast<std::size_t>(entries))
{
    panicIfNot(isPowerOfTwo(entries), "TLB entries must be a power of two");
    panicIfNot(isPowerOfTwo(assoc) && assoc <= entries,
               "bad TLB associativity");
}

bool
Tlb::probe(ProcessId pid, Vpn vpn) const
{
    std::uint32_t set = setIndex(vpn);
    for (std::uint32_t w = 0; w < _assoc; ++w) {
        const Entry &e = _entries[set * _assoc + w];
        if (e.valid && e.pid == pid && e.vpn == vpn)
            return true;
    }
    return false;
}

Ppn
Tlb::translate(ProcessId pid, Vpn vpn, AddressSpaceManager &spaces)
{
    ++_clock;
    std::uint32_t set = setIndex(vpn);
    Entry *victim = nullptr;
    for (std::uint32_t w = 0; w < _assoc; ++w) {
        Entry &e = _entries[set * _assoc + w];
        if (e.valid && e.pid == pid && e.vpn == vpn) {
            e.lruStamp = _clock;
            _stats.counter("hits")++;
            return e.ppn;
        }
        if (!victim || !e.valid ||
            (victim->valid && e.lruStamp < victim->lruStamp)) {
            if (!victim || victim->valid)
                victim = &e;
        }
    }
    _stats.counter("misses")++;

    // Hard miss: walk the page tables (allocating on first touch, matching
    // the demand-allocation behaviour of the trace's address spaces).
    std::uint32_t page_size = spaces.pageSize();
    PhysAddr pa =
        spaces.translate(pid, makeVirtAddr(vpn, 0, page_size));
    Ppn ppn = pa.ppn(page_size);

    victim->valid = true;
    victim->pid = pid;
    victim->vpn = vpn;
    victim->ppn = ppn;
    victim->lruStamp = _clock;
    return ppn;
}

bool
Tlb::invalidate(ProcessId pid, Vpn vpn)
{
    std::uint32_t set = setIndex(vpn);
    for (std::uint32_t w = 0; w < _assoc; ++w) {
        Entry &e = _entries[set * _assoc + w];
        if (e.valid && e.pid == pid && e.vpn == vpn) {
            e.valid = false;
            return true;
        }
    }
    return false;
}

void
Tlb::invalidateProcess(ProcessId pid)
{
    for (Entry &e : _entries) {
        if (e.valid && e.pid == pid)
            e.valid = false;
    }
}

void
Tlb::flush()
{
    for (Entry &e : _entries)
        e.valid = false;
}

} // namespace vrc
