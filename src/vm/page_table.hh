/**
 * @file
 * Per-process forward page table.
 *
 * Maps virtual page numbers to physical frame numbers for one address
 * space. Translation for the whole machine is coordinated by
 * AddressSpaceManager, which owns one PageTable per process plus the
 * physical frame allocator.
 */

#ifndef VRC_VM_PAGE_TABLE_HH
#define VRC_VM_PAGE_TABLE_HH

#include <cstddef>
#include <optional>
#include <unordered_map>

#include "base/types.hh"

namespace vrc
{

/** Forward map from virtual page numbers to physical frame numbers. */
class PageTable
{
  public:
    /**
     * Install (or overwrite) a mapping.
     *
     * @param vpn virtual page number
     * @param ppn physical frame number
     * @return true if a previous mapping was replaced
     */
    bool map(Vpn vpn, Ppn ppn);

    /** Remove the mapping for @p vpn. @return true if one existed. */
    bool unmap(Vpn vpn);

    /** Translate a virtual page number; nullopt if unmapped. */
    std::optional<Ppn> lookup(Vpn vpn) const;

    /** True if @p vpn has a mapping. */
    bool isMapped(Vpn vpn) const { return _map.contains(vpn); }

    /** Number of installed mappings. */
    std::size_t size() const { return _map.size(); }

    /** Drop every mapping. */
    void clear() { _map.clear(); }

    /** Iterate underlying mappings (vpn -> ppn). */
    const std::unordered_map<Vpn, Ppn> &entries() const { return _map; }

  private:
    std::unordered_map<Vpn, Ppn> _map;
};

} // namespace vrc

#endif // VRC_VM_PAGE_TABLE_HH
