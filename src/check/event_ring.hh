/**
 * @file
 * Protocol event ring buffer.
 *
 * The coherence oracle records every hierarchy event and every bus
 * transaction it observes into a fixed-capacity ring. When a violation
 * fires, the last N events are dumped as JSON -- the protocol history
 * leading up to the bug, which is usually all a human needs to localize
 * it. The ring is bounded so recording costs O(1) per event and fuzz
 * runs of millions of transactions stay cheap.
 */

#ifndef VRC_CHECK_EVENT_RING_HH
#define VRC_CHECK_EVENT_RING_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "base/types.hh"
#include "coherence/transaction.hh"
#include "core/events.hh"

namespace vrc
{

/** One recorded protocol event (hierarchy-, bus-, or oracle-origin). */
struct ProtocolEvent
{
    /** Which component produced the event. */
    enum class Origin : std::uint8_t
    {
        Hierarchy, ///< an EventObserver callback (fill/evict/move/...)
        Bus,       ///< a completed bus broadcast
        Oracle     ///< an oracle annotation (e.g. the violation itself)
    };

    std::uint64_t seq = 0; ///< global order stamp (assigned by the ring)
    Origin origin = Origin::Hierarchy;

    // Hierarchy-origin fields.
    EventKind kind = EventKind::L1Hit;
    CpuId cpu = invalidCpu;
    std::uint64_t refIndex = 0;
    std::uint32_t vaddr = 0;
    std::uint32_t paddr = 0;

    // Bus-origin fields.
    BusOp op = BusOp::ReadMiss;
    bool shared = false;
    bool supplied = false;

    /** Free-form text (oracle annotations). */
    std::string note;

    static ProtocolEvent
    fromHierarchy(const HierarchyEvent &ev)
    {
        ProtocolEvent e;
        e.origin = Origin::Hierarchy;
        e.kind = ev.kind;
        e.cpu = ev.cpu;
        e.refIndex = ev.refIndex;
        e.vaddr = ev.vaddr;
        e.paddr = ev.paddr;
        return e;
    }

    static ProtocolEvent
    fromBus(const BusTransaction &tx, const BusResult &res)
    {
        ProtocolEvent e;
        e.origin = Origin::Bus;
        e.cpu = tx.source;
        e.paddr = tx.blockAddr.value();
        e.op = tx.op;
        e.shared = res.shared;
        e.supplied = res.suppliedByCache;
        return e;
    }

    static ProtocolEvent
    annotation(std::string text)
    {
        ProtocolEvent e;
        e.origin = Origin::Oracle;
        e.note = std::move(text);
        return e;
    }
};

/** Printable origin name. */
inline const char *
protocolOriginName(ProtocolEvent::Origin o)
{
    switch (o) {
      case ProtocolEvent::Origin::Hierarchy:
        return "hierarchy";
      case ProtocolEvent::Origin::Bus:
        return "bus";
      case ProtocolEvent::Origin::Oracle:
        return "oracle";
    }
    return "?";
}

/** Escape a string for embedding in a JSON document. */
inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char hex[] = "0123456789abcdef";
                out += "\\u00";
                out += hex[(c >> 4) & 0xf];
                out += hex[c & 0xf];
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Fixed-capacity ring of the most recent protocol events. */
class ProtocolEventRing
{
  public:
    explicit ProtocolEventRing(std::size_t capacity)
        : _capacity(capacity ? capacity : 1)
    {
        _events.reserve(_capacity);
    }

    /** Append an event, overwriting the oldest once full. */
    void
    push(ProtocolEvent ev)
    {
        ev.seq = _next++;
        if (_events.size() < _capacity) {
            _events.push_back(std::move(ev));
        } else {
            _events[_head] = std::move(ev);
            _head = (_head + 1) % _capacity;
        }
    }

    std::size_t size() const { return _events.size(); }
    std::size_t capacity() const { return _capacity; }

    /** Events ever pushed (>= size() once the ring wraps). */
    std::uint64_t totalPushed() const { return _next; }

    void
    clear()
    {
        _events.clear();
        _head = 0;
    }

    /** Visit the retained events, oldest first. */
    template <typename Fn>
    void
    forEach(Fn fn) const
    {
        for (std::size_t i = 0; i < _events.size(); ++i)
            fn(_events[(_head + i) % _events.size()]);
    }

    /** Dump the retained events as a JSON array. */
    void
    dumpJson(std::ostream &os) const
    {
        os << "[";
        bool first = true;
        forEach([&](const ProtocolEvent &e) {
            os << (first ? "" : ",") << "\n  {\"seq\": " << e.seq
               << ", \"origin\": \"" << protocolOriginName(e.origin)
               << "\"";
            switch (e.origin) {
              case ProtocolEvent::Origin::Hierarchy:
                os << ", \"kind\": \"" << eventKindName(e.kind)
                   << "\", \"cpu\": " << e.cpu
                   << ", \"ref\": " << e.refIndex
                   << ", \"vaddr\": " << e.vaddr
                   << ", \"paddr\": " << e.paddr;
                break;
              case ProtocolEvent::Origin::Bus:
                os << ", \"op\": \"" << busOpName(e.op)
                   << "\", \"source\": " << e.cpu
                   << ", \"addr\": " << e.paddr
                   << ", \"shared\": " << (e.shared ? "true" : "false")
                   << ", \"supplied\": "
                   << (e.supplied ? "true" : "false");
                break;
              case ProtocolEvent::Origin::Oracle:
                os << ", \"note\": \"" << jsonEscape(e.note) << "\"";
                break;
            }
            os << "}";
            first = false;
        });
        os << "\n]";
    }

  private:
    std::size_t _capacity;
    std::vector<ProtocolEvent> _events;
    std::size_t _head = 0;
    std::uint64_t _next = 0;
};

} // namespace vrc

#endif // VRC_CHECK_EVENT_RING_HH
