#include "check/oracle.hh"

#include <iostream>
#include <sstream>
#include <unordered_set>

#include "base/log.hh"
#include "sim/mp_sim.hh"

namespace vrc
{

CoherenceOracle::CoherenceOracle(std::size_t ring_capacity)
    : _ring(ring_capacity)
{
    _handler = [this](const Violation &v) {
        std::cerr << "coherence oracle violation: " << v.message
                  << " (line 0x" << std::hex << v.blockAddr << std::dec
                  << ", " << v.context << ")\n";
        dumpJson(std::cerr);
        std::cerr << "\n";
        panic("coherence oracle: ", v.message);
    };
}

CoherenceOracle::~CoherenceOracle()
{
    detach();
}

void
CoherenceOracle::attach(MpSimulator &sim)
{
    attachBus(sim.bus(), sim.config().hierarchy.l2.blockBytes);
    bool inclusive =
        sim.config().kind != HierarchyKind::RealRealNoIncl;
    for (CpuId c = 0; c < sim.cpuCount(); ++c)
        addAgent(sim.hierarchy(c), inclusive);
}

void
CoherenceOracle::attachBus(SharedBus &bus, std::uint32_t line_bytes)
{
    _bus = &bus;
    _lineBytes = line_bytes;
    bus.setObserver(this);
}

void
CoherenceOracle::addAgent(CacheHierarchy &hier, bool inclusive)
{
    panicIfNot(hier.cpuId() == static_cast<CpuId>(_agents.size()),
               "oracle agents must be registered in bus-attach order");
    hier.setObserver(this);
    _agents.push_back(AgentInfo{&hier, inclusive});
}

void
CoherenceOracle::detach()
{
    if (_bus) {
        _bus->setObserver(nullptr);
        _bus = nullptr;
    }
    for (auto &a : _agents)
        a.hier->setObserver(nullptr);
    _agents.clear();
}

void
CoherenceOracle::onEvent(const HierarchyEvent &ev)
{
    _ring.push(ProtocolEvent::fromHierarchy(ev));
}

void
CoherenceOracle::report(std::uint32_t block, std::string message,
                        const char *context)
{
    _violations += 1;
    _ring.push(ProtocolEvent::annotation("VIOLATION: " + message));
    if (_handler)
        _handler(Violation{std::move(message), context, block});
}

void
CoherenceOracle::onTransaction(const BusTransaction &tx,
                               const BusResult &res)
{
    _ring.push(ProtocolEvent::fromBus(tx, res));
    _txChecked += 1;

    std::uint32_t block = lineOf(tx.blockAddr.value());
    bool known = _shadow.count(block) != 0;
    ShadowLine &sl = _shadow[block];
    bool source_caches = tx.source < _agents.size();

    // A cache can only supply data it dirtied, and every transition
    // into ownership is a visible transaction -- so a supply with no
    // tracked owner means some agent invented dirty data. (Skipped for
    // lines first seen now: the oracle may attach to a warm machine.)
    if (known && res.suppliedByCache &&
        sl.exclusiveOwner == invalidCpu) {
        report(block, "cache supplied data but the bus history shows "
               "no exclusive owner", "transaction");
    }

    switch (tx.op) {
      case BusOp::ReadMiss:
        // A flush writes memory, so memory catches up; afterwards the
        // line is shared (or exclusive to a caching source if nobody
        // else holds it).
        if (res.suppliedByCache)
            sl.memVersion = sl.version;
        sl.exclusiveOwner = (!res.shared && source_caches)
            ? tx.source : invalidCpu;
        break;
      case BusOp::Invalidate:
      case BusOp::ReadModWrite:
        sl.version += 1;
        if (res.suppliedByCache)
            sl.memVersion = sl.version - 1;
        sl.exclusiveOwner = source_caches ? tx.source : invalidCpu;
        if (!source_caches) {
            // System/DMA write: memory itself becomes authoritative.
            sl.memVersion = sl.version;
        }
        break;
      case BusOp::Update:
        // Write-through to memory and every copy.
        sl.version += 1;
        sl.memVersion = sl.version;
        sl.exclusiveOwner = (!res.shared && source_caches)
            ? tx.source : invalidCpu;
        break;
    }

    checkLine(block, &tx, &res, "transaction");
}

void
CoherenceOracle::checkLine(std::uint32_t block, const BusTransaction *tx,
                           const BusResult *res, const char *context)
{
    std::vector<BlockProbe> probes;
    probes.reserve(_agents.size());
    for (const auto &a : _agents)
        probes.push_back(a.hier->probeBlock(PhysAddr(block)));

    const ShadowLine &sl = _shadow[block];

    for (std::size_t i = 0; i < _agents.size(); ++i) {
        const BlockProbe &p = probes[i];
        CpuId id = static_cast<CpuId>(i);

        if (!p.linkageOk) {
            report(block, "agent " + std::to_string(i) +
                   ": directory bits disagree with a physical scan "
                   "of level 1 / the write buffer", context);
        }
        if (_agents[i].inclusive && p.maxAliases > 1) {
            report(block, "agent " + std::to_string(i) +
                   ": two level-1 copies of one physical sub-block "
                   "(synonym duplication)", context);
        }
        if (_bus && _bus->agentFilterable(id) &&
            _bus->presenceBit(id, block) != p.l2Present) {
            report(block, "agent " + std::to_string(i) +
                   ": bus presence bit disagrees with the "
                   "second-level directory", context);
        }

        bool eff_private = p.holdsAny() &&
            p.state == CoherenceState::Private;
        if (eff_private && sl.exclusiveOwner != id) {
            report(block, "agent " + std::to_string(i) +
                   " holds the line Private but the bus history "
                   "names owner " +
                   (sl.exclusiveOwner == invalidCpu
                        ? std::string("<none>")
                        : std::to_string(sl.exclusiveOwner)), context);
        }
        if (eff_private || p.anyDirty()) {
            for (std::size_t j = 0; j < _agents.size(); ++j) {
                if (j != i && probes[j].holdsAny()) {
                    report(block, "agents " + std::to_string(i) +
                           " and " + std::to_string(j) +
                           " both hold a line that agent " +
                           std::to_string(i) +
                           " holds exclusively/dirty", context);
                }
            }
        }
    }

    if (tx) {
        if (tx->op == BusOp::Invalidate ||
            tx->op == BusOp::ReadModWrite) {
            for (std::size_t i = 0; i < _agents.size(); ++i) {
                if (static_cast<CpuId>(i) != tx->source &&
                    probes[i].holdsAny()) {
                    report(block, "agent " + std::to_string(i) +
                           " retained a copy through an invalidation",
                           context);
                }
            }
        } else {
            bool other_holds = false;
            for (std::size_t i = 0; i < _agents.size(); ++i) {
                if (static_cast<CpuId>(i) != tx->source &&
                    probes[i].holdsAny()) {
                    other_holds = true;
                }
            }
            if (res->shared != other_holds) {
                report(block, std::string("shared ack (") +
                       (res->shared ? "true" : "false") +
                       ") disagrees with the post-transaction "
                       "holder scan", context);
            }
        }
    }
}

void
CoherenceOracle::sweep()
{
    std::unordered_set<std::uint32_t> lines;
    for (const auto &a : _agents) {
        a.hier->forEachCachedLine([&](PhysAddr pa) {
            lines.insert(lineOf(pa.value()));
        });
    }
    if (_bus) {
        _bus->forEachPresence(
            [&](std::uint32_t line) { lines.insert(lineOf(line)); });
    }
    for (std::uint32_t line : lines)
        checkLine(line, nullptr, nullptr, "sweep");
}

void
CoherenceOracle::dumpJson(std::ostream &os) const
{
    os << "{\n\"transactions_checked\": " << _txChecked
       << ",\n\"violations\": " << _violations << ",\n\"events\": ";
    _ring.dumpJson(os);
    os << "\n}";
}

} // namespace vrc
