#include "check/fuzzer.hh"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "base/fault.hh"
#include "base/rng.hh"
#include "check/oracle.hh"
#include "coherence/dma.hh"
#include "core/mutation.hh"
#include "sim/mp_sim.hh"
#include "trace/record.hh"
#include "trace/workload.hh"

namespace vrc
{

const char *
fuzzOpKindName(FuzzOpKind k)
{
    switch (k) {
      case FuzzOpKind::MemRef:
        return "mem-ref";
      case FuzzOpKind::ContextSwitch:
        return "context-switch";
      case FuzzOpKind::DmaRead:
        return "dma-read";
      case FuzzOpKind::DmaWrite:
        return "dma-write";
      case FuzzOpKind::PageRemap:
        return "page-remap";
      case FuzzOpKind::Count:
        break;
    }
    return "?";
}

namespace
{

bool
enabled(const FuzzOptions &opt, FuzzOpKind k)
{
    return (opt.opMask & (1u << static_cast<unsigned>(k))) != 0;
}

} // namespace

FuzzResult
runFuzz(const FuzzOptions &opt)
{
    FuzzResult result;

    MutationFlags saved_flags = mutationFlags();
    mutationFlags().dropInclusionUpdate = opt.mutateInclusion;

    {
        WorkloadProfile profile;
        profile.name = "fuzz";
        profile.numCpus = opt.cpus;
        profile.pageSize = opt.pageSize;
        profile.processesPerCpu = opt.processesPerCpu;
        profile.sharedPages = 8;
        profile.seed = opt.seed;

        MachineConfig cfg;
        cfg.kind = opt.kind;
        cfg.hierarchy.l1 =
            CacheParams{opt.l1Bytes, opt.l1Block, 1, ReplPolicy::LRU};
        // Associative level 2 so relaxed-inclusion victim choice (and
        // its forced fallback) are both exercised.
        cfg.hierarchy.l2 =
            CacheParams{opt.l2Bytes, opt.l2Block, 2, ReplPolicy::LRU};
        cfg.hierarchy.pageSize = opt.pageSize;
        cfg.hierarchy.rltEntries = opt.rltEntries;
        cfg.hierarchy.rltAssoc = opt.rltAssoc;
        cfg.hierarchy.splitL1 = opt.splitL1;
        cfg.hierarchy.protocol = opt.protocol;
        cfg.hierarchy.writeBufferDepth = 2;
        cfg.hierarchy.writeBufferDrainLatency = 8;
        cfg.invariantPeriod = 0;

        MpSimulator sim(cfg, profile);
        DmaDevice dma(sim.bus(), opt.l2Block);

        Rng rng(opt.seed * 0x9e3779b97f4a7c15ULL + 1);

        // A small pool of physical frames that every process maps from
        // several virtual pages: dense aliasing (synonyms within and
        // across processes) plus cross-CPU sharing on a footprint that
        // overflows the tiny caches constantly.
        const std::uint32_t pid_count = opt.cpus * opt.processesPerCpu;
        const std::uint32_t pool_base = 0x9000;
        auto pool_vpn = [](ProcessId pid, std::uint32_t k) {
            return static_cast<Vpn>(0x300 + k * 7 + pid);
        };
        for (ProcessId pid = 0; pid < pid_count; ++pid) {
            for (std::uint32_t k = 0; k < opt.vpnsPerProcess; ++k) {
                sim.spaces().pageTable(pid).map(
                    pool_vpn(pid, k),
                    pool_base +
                        static_cast<std::uint32_t>(
                            rng.below(opt.frames)));
            }
        }

        CoherenceOracle oracle(opt.ringCapacity);
        bool failed = false;
        oracle.setViolationHandler(
            [&](const CoherenceOracle::Violation &v) {
                if (result.violation.empty()) {
                    result.violation =
                        v.message + " [" + v.context + "]";
                }
                failed = true;
            });
        oracle.attach(sim);

        std::vector<ProcessId> current(opt.cpus);
        for (std::uint32_t c = 0; c < opt.cpus; ++c)
            current[c] = c * opt.processesPerCpu;

        const std::uint32_t l1_blocks_per_page =
            opt.pageSize / opt.l1Block;
        const std::uint32_t l2_blocks_per_page =
            opt.pageSize / opt.l2Block;
        const std::uint64_t hard_cap = opt.ops * 64 + 64;

        std::uint64_t i = 0;
        for (; i < hard_cap; ++i) {
            if (i >= opt.ops &&
                sim.bus().transactions() >= opt.minTransactions) {
                break;
            }

            // Draw the op kind and ALL of its parameters before
            // consulting opMask (see the RNG-stream discipline in the
            // header).
            std::uint64_t slot = rng.below(32);
            try {
            if (slot < 24) {
                CpuId cpu = static_cast<CpuId>(rng.below(opt.cpus));
                std::uint32_t k = static_cast<std::uint32_t>(
                    rng.below(opt.vpnsPerProcess));
                std::uint32_t block = static_cast<std::uint32_t>(
                    rng.below(l1_blocks_per_page));
                std::uint64_t t = rng.below(16);
                if (enabled(opt, FuzzOpKind::MemRef)) {
                    RefType type = t < 5 ? RefType::Instr
                        : t < 10 ? RefType::Read : RefType::Write;
                    std::uint32_t va =
                        pool_vpn(current[cpu], k) * opt.pageSize +
                        block * opt.l1Block;
                    sim.step(makeRef(cpu, type, current[cpu],
                                     VirtAddr(va)));
                    result.refs += 1;
                }
            } else if (slot < 27) {
                CpuId cpu = static_cast<CpuId>(rng.below(opt.cpus));
                if (enabled(opt, FuzzOpKind::ContextSwitch)) {
                    ProcessId base = cpu * opt.processesPerCpu;
                    current[cpu] = base +
                        (current[cpu] - base + 1) % opt.processesPerCpu;
                    sim.step(makeContextSwitch(cpu, current[cpu]));
                    result.contextSwitches += 1;
                }
            } else if (slot < 31) {
                bool is_write = slot >= 29;
                std::uint32_t frame = static_cast<std::uint32_t>(
                    rng.below(opt.frames));
                std::uint32_t block = static_cast<std::uint32_t>(
                    rng.below(l2_blocks_per_page));
                std::uint32_t blocks =
                    1 + static_cast<std::uint32_t>(rng.below(4));
                FuzzOpKind k = is_write ? FuzzOpKind::DmaWrite
                                        : FuzzOpKind::DmaRead;
                if (enabled(opt, k)) {
                    PhysAddr base(
                        (pool_base + frame) * opt.pageSize +
                        block * opt.l2Block);
                    if (is_write)
                        dma.write(base, blocks * opt.l2Block);
                    else
                        dma.read(base, blocks * opt.l2Block);
                }
            } else {
                ProcessId pid =
                    static_cast<ProcessId>(rng.below(pid_count));
                std::uint32_t k = static_cast<std::uint32_t>(
                    rng.below(opt.vpnsPerProcess));
                std::uint32_t frame = static_cast<std::uint32_t>(
                    rng.below(opt.frames));
                if (enabled(opt, FuzzOpKind::PageRemap)) {
                    sim.remapPage(pid, pool_vpn(pid, k),
                                  pool_base + frame);
                }
            }
            } catch (const FaultUnrecoverable &mc) {
                // Uncorrectable soft error: the machine halts. Not a
                // coherence violation, and the interrupted operation
                // may have left mid-flight state, so stop here without
                // a final sweep.
                result.machineCheck = true;
                result.machineCheckReason = mc.what();
                break;
            }

            if (failed) {
                result.failingOp = i;
                break;
            }
            if (opt.sweepPeriod && (i + 1) % opt.sweepPeriod == 0) {
                oracle.sweep();
                if (failed) {
                    result.failingOp = i;
                    break;
                }
            }
            if (opt.invariantPeriod && !opt.mutateInclusion &&
                (i + 1) % opt.invariantPeriod == 0) {
                sim.checkInvariants();
            }
        }
        result.opsRun = i;

        if (!failed && !result.machineCheck) {
            oracle.sweep();
            if (failed)
                result.failingOp = i;
            if (!opt.mutateInclusion)
                sim.checkInvariants();
        }

        result.ok = !failed;
        result.busTransactions = sim.bus().transactions();
        if (failed) {
            std::ostringstream os;
            oracle.dumpJson(os);
            result.ringJson = os.str();
        }
    }

    mutationFlags() = saved_flags;
    return result;
}

// --- replay file ------------------------------------------------------

std::string
replayToJson(const FuzzOptions &opt)
{
    std::ostringstream os;
    os << "{\n"
       << "\"format\": 1,\n"
       << "\"seed\": " << opt.seed << ",\n"
       << "\"ops\": " << opt.ops << ",\n"
       << "\"min_transactions\": " << opt.minTransactions << ",\n"
       << "\"cpus\": " << opt.cpus << ",\n"
       << "\"kind\": " << static_cast<int>(opt.kind) << ",\n"
       << "\"protocol\": " << static_cast<int>(opt.protocol) << ",\n"
       << "\"split_l1\": " << (opt.splitL1 ? "true" : "false") << ",\n"
       << "\"l1_bytes\": " << opt.l1Bytes << ",\n"
       << "\"l2_bytes\": " << opt.l2Bytes << ",\n"
       << "\"l1_block\": " << opt.l1Block << ",\n"
       << "\"l2_block\": " << opt.l2Block << ",\n"
       << "\"page_size\": " << opt.pageSize << ",\n"
       << "\"rlt_entries\": " << opt.rltEntries << ",\n"
       << "\"rlt_assoc\": " << opt.rltAssoc << ",\n"
       << "\"frames\": " << opt.frames << ",\n"
       << "\"vpns_per_process\": " << opt.vpnsPerProcess << ",\n"
       << "\"processes_per_cpu\": " << opt.processesPerCpu << ",\n"
       << "\"op_mask\": " << opt.opMask << ",\n"
       << "\"sweep_period\": " << opt.sweepPeriod << ",\n"
       << "\"invariant_period\": " << opt.invariantPeriod << ",\n"
       << "\"mutate_inclusion\": "
       << (opt.mutateInclusion ? "true" : "false") << ",\n"
       << "\"ring_capacity\": " << opt.ringCapacity << "\n"
       << "}\n";
    return os.str();
}

namespace
{

/** Find `"key": <number|bool>` in flat JSON; false if absent. */
bool
jsonField(const std::string &json, const char *key, std::uint64_t &out)
{
    std::string pat = std::string("\"") + key + "\"";
    std::size_t pos = json.find(pat);
    if (pos == std::string::npos)
        return false;
    pos = json.find(':', pos + pat.size());
    if (pos == std::string::npos)
        return false;
    ++pos;
    while (pos < json.size() &&
           (json[pos] == ' ' || json[pos] == '\t'))
        ++pos;
    if (json.compare(pos, 4, "true") == 0) {
        out = 1;
        return true;
    }
    if (json.compare(pos, 5, "false") == 0) {
        out = 0;
        return true;
    }
    char *end = nullptr;
    std::uint64_t v = std::strtoull(json.c_str() + pos, &end, 10);
    if (end == json.c_str() + pos)
        return false;
    out = v;
    return true;
}

} // namespace

bool
replayFromJson(const std::string &json, FuzzOptions &out)
{
    std::uint64_t v = 0;
    if (!jsonField(json, "format", v) || v != 1)
        return false;

    FuzzOptions opt;
    if (jsonField(json, "seed", v))
        opt.seed = v;
    if (jsonField(json, "ops", v))
        opt.ops = v;
    if (jsonField(json, "min_transactions", v))
        opt.minTransactions = v;
    if (jsonField(json, "cpus", v))
        opt.cpus = static_cast<std::uint32_t>(v);
    if (jsonField(json, "kind", v) && v < kHierarchyKindCount)
        opt.kind = static_cast<HierarchyKind>(v);
    if (jsonField(json, "protocol", v))
        opt.protocol = static_cast<CoherencePolicy>(v);
    if (jsonField(json, "split_l1", v))
        opt.splitL1 = v != 0;
    if (jsonField(json, "l1_bytes", v))
        opt.l1Bytes = static_cast<std::uint32_t>(v);
    if (jsonField(json, "l2_bytes", v))
        opt.l2Bytes = static_cast<std::uint32_t>(v);
    if (jsonField(json, "l1_block", v))
        opt.l1Block = static_cast<std::uint32_t>(v);
    if (jsonField(json, "l2_block", v))
        opt.l2Block = static_cast<std::uint32_t>(v);
    if (jsonField(json, "page_size", v))
        opt.pageSize = static_cast<std::uint32_t>(v);
    if (jsonField(json, "rlt_entries", v))
        opt.rltEntries = static_cast<std::uint32_t>(v);
    if (jsonField(json, "rlt_assoc", v))
        opt.rltAssoc = static_cast<std::uint32_t>(v);
    if (jsonField(json, "frames", v))
        opt.frames = static_cast<std::uint32_t>(v);
    if (jsonField(json, "vpns_per_process", v))
        opt.vpnsPerProcess = static_cast<std::uint32_t>(v);
    if (jsonField(json, "processes_per_cpu", v))
        opt.processesPerCpu = static_cast<std::uint32_t>(v);
    if (jsonField(json, "op_mask", v))
        opt.opMask = static_cast<std::uint32_t>(v);
    if (jsonField(json, "sweep_period", v))
        opt.sweepPeriod = v;
    if (jsonField(json, "invariant_period", v))
        opt.invariantPeriod = v;
    if (jsonField(json, "mutate_inclusion", v))
        opt.mutateInclusion = v != 0;
    if (jsonField(json, "ring_capacity", v))
        opt.ringCapacity = static_cast<std::size_t>(v);
    out = opt;
    return true;
}

Result<FuzzOptions>
tryLoadReplay(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        return makeError(ErrorKind::Io,
                         "cannot open replay file: ", path);
    std::ostringstream buf;
    buf << is.rdbuf();
    std::string text = buf.str();
    injectInputFaults("replay", path, text);
    FuzzOptions opt;
    if (!replayFromJson(text, opt))
        return makeErrorAt(ErrorKind::Parse, path, 0,
                           "not a recognizable vrc-fuzz replay "
                           "(missing or wrong \"format\" field)");
    return opt;
}

FuzzOptions
minimizeFailure(const FuzzOptions &failing)
{
    FuzzOptions best = failing;
    FuzzResult base = runFuzz(best);
    if (base.ok)
        return best;  // does not reproduce; nothing to shrink

    // 1. Truncate: nothing past the failing op matters.
    {
        FuzzOptions t = best;
        t.ops = base.failingOp + 1;
        t.minTransactions = 0;
        if (t.ops < best.ops || t.minTransactions != best.minTransactions) {
            if (!runFuzz(t).ok)
                best = t;
        }
    }

    // 2. Greedily drop op categories the failure doesn't need.
    for (unsigned k = 0; k < static_cast<unsigned>(FuzzOpKind::Count);
         ++k) {
        std::uint32_t bit = 1u << k;
        if (!(best.opMask & bit))
            continue;
        FuzzOptions t = best;
        t.opMask &= ~bit;
        if (t.opMask != 0 && !runFuzz(t).ok)
            best = t;
    }
    return best;
}

} // namespace vrc
