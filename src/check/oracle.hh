/**
 * @file
 * Cross-agent coherence oracle.
 *
 * The per-hierarchy checkInvariants() routines verify each agent's
 * *internal* bookkeeping. The oracle checks the properties that span
 * agents -- the ones a broken snoop path, presence filter, or shadow
 * write-back would violate while every hierarchy still looks locally
 * consistent:
 *
 *  - single-writer: a block held Private (or dirty anywhere, including
 *    parked in a write buffer) is held by exactly one agent, and that
 *    agent is the one the bus history says owns it;
 *  - invalidation completeness: after an invalidate/read-mod-write, no
 *    non-source agent retains any form of the block;
 *  - shared-ack honesty: a read-miss/update reports "shared" exactly
 *    when some other agent still holds the block afterwards;
 *  - data supply: a cache only supplies data when the bus history shows
 *    a tracked exclusive owner existed to have dirtied it;
 *  - synonym uniqueness: inclusive hierarchies never hold two level-1
 *    copies of one physical sub-block;
 *  - presence-filter soundness: a filterable agent's presence bit on
 *    the bus agrees with its second-level directory;
 *  - linkage: inclusion/buffer directory bits match a physical scan of
 *    the level-1 arrays and the write buffer.
 *
 * The oracle observes the bus (BusObserver) and every hierarchy
 * (EventObserver), keeps a shadow line table (exclusive owner plus a
 * version/memory-version pair modelling the authoritative value), and
 * probes all agents' actual state through CacheHierarchy::probeBlock()
 * after every transaction. All checks run in the direction
 * "actual state implies shadow claim": the shadow is deliberately
 * allowed to go stale on silent local actions (clean evictions,
 * write-back drains, silent Private upgrades), which never produces a
 * false positive under this direction.
 *
 * On a violation the last N protocol events are dumped as JSON (the
 * event ring) and the configured handler runs -- by default panic();
 * tests and the fuzzer install a collecting handler instead.
 */

#ifndef VRC_CHECK_ORACLE_HH
#define VRC_CHECK_ORACLE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/event_ring.hh"
#include "coherence/bus.hh"
#include "core/hierarchy.hh"

namespace vrc
{

class MpSimulator;

/** Cross-agent coherence checker (see the file comment). */
class CoherenceOracle : public BusObserver, public EventObserver
{
  public:
    /** One detected violation. */
    struct Violation
    {
        std::string message;      ///< what was violated
        std::string context;      ///< "transaction" or "sweep"
        std::uint32_t blockAddr;  ///< the offending line address
    };

    using ViolationHandler = std::function<void(const Violation &)>;

    explicit CoherenceOracle(std::size_t ring_capacity = 256);
    ~CoherenceOracle() override;

    CoherenceOracle(const CoherenceOracle &) = delete;
    CoherenceOracle &operator=(const CoherenceOracle &) = delete;

    /**
     * Attach to a whole machine: observe its bus and register every
     * hierarchy as an agent. Call before running traffic.
     */
    void attach(MpSimulator &sim);

    /** Lower-level wiring for unit tests: observe @p bus. */
    void attachBus(SharedBus &bus, std::uint32_t line_bytes);

    /**
     * Register one agent. Must be called in bus-attach order (the
     * agent's cpuId() must equal the number of agents registered so
     * far). @p inclusive enables the checks that only hold for
     * inclusion-enforcing hierarchies (synonym uniqueness, presence).
     */
    void addAgent(CacheHierarchy &hier, bool inclusive);

    /** Stop observing (also done by the destructor). */
    void detach();

    /**
     * Replace the violation response. The default dumps the event ring
     * to stderr and panics; a collecting handler lets a fuzz run record
     * the failure and keep its process alive.
     */
    void setViolationHandler(ViolationHandler h) { _handler = std::move(h); }

    // --- observer callbacks ------------------------------------------

    void onTransaction(const BusTransaction &tx,
                       const BusResult &result) override;
    void onEvent(const HierarchyEvent &ev) override;

    /**
     * Check every line any agent currently holds (plus every presence
     * entry on the bus). Catches corruption introduced by purely local
     * actions between bus transactions.
     */
    void sweep();

    std::uint64_t violations() const { return _violations; }
    std::uint64_t transactionsChecked() const { return _txChecked; }
    const ProtocolEventRing &ring() const { return _ring; }

    /** Dump counters and the retained event ring as one JSON object. */
    void dumpJson(std::ostream &os) const;

  private:
    /**
     * Bus-history shadow of one line. `version` counts writes the bus
     * has seen; `memVersion` is the version memory holds. A gap means
     * some cache must be holding the newer (dirty) data.
     */
    struct ShadowLine
    {
        CpuId exclusiveOwner = invalidCpu;
        std::uint64_t version = 0;
        std::uint64_t memVersion = 0;
    };

    struct AgentInfo
    {
        CacheHierarchy *hier;
        bool inclusive;
    };

    /** Align to the bus coherence granularity. */
    std::uint32_t lineOf(std::uint32_t addr) const
    {
        return addr & ~(_lineBytes - 1);
    }

    void report(std::uint32_t block, std::string message,
                const char *context);

    /**
     * Probe every agent for @p block and run the cross-agent checks.
     * @p tx/@p res are null during sweeps (skips the per-transaction
     * checks that only make sense right after a broadcast).
     */
    void checkLine(std::uint32_t block, const BusTransaction *tx,
                   const BusResult *res, const char *context);

    SharedBus *_bus = nullptr;
    std::uint32_t _lineBytes = 32;
    std::vector<AgentInfo> _agents;
    std::unordered_map<std::uint32_t, ShadowLine> _shadow;
    ProtocolEventRing _ring;
    ViolationHandler _handler;
    std::uint64_t _violations = 0;
    std::uint64_t _txChecked = 0;
};

} // namespace vrc

#endif // VRC_CHECK_ORACLE_HH
