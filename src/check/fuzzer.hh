/**
 * @file
 * Differential coherence fuzzer.
 *
 * Drives a randomized multiprocessor workload -- synonym-heavy memory
 * references, context-switch storms, DMA interference, and OS page
 * remaps -- against a machine wired to the coherence oracle. The run is
 * fully determined by FuzzOptions (one seeded Rng, no wall clock), so a
 * failure reproduces from its options alone; replayToJson()/
 * replayFromJson() serialize them as the replay file CI uploads, and
 * minimizeFailure() shrinks a failing run for humans.
 *
 * RNG-stream discipline: every op draws its kind and all its parameters
 * whether or not it is applied; `opMask` gates only the application.
 * Masking op categories out therefore never perturbs the sequence of
 * the remaining ops -- which is what makes greedy mask minimization
 * meaningful.
 */

#ifndef VRC_CHECK_FUZZER_HH
#define VRC_CHECK_FUZZER_HH

#include <cstdint>
#include <string>

#include "base/error.hh"
#include "coherence/protocol.hh"
#include "core/config.hh"

namespace vrc
{

/** Categories of fuzz operations (bits in FuzzOptions::opMask). */
enum class FuzzOpKind : std::uint8_t
{
    MemRef,        ///< one CPU memory reference
    ContextSwitch, ///< rotate a CPU to its next process
    DmaRead,       ///< DMA read burst (device <- memory)
    DmaWrite,      ///< DMA write burst (device -> memory)
    PageRemap,     ///< OS remaps a (pid, vpn) to a new frame
    Count
};

/** Printable op-kind name. */
const char *fuzzOpKindName(FuzzOpKind k);

/** Mask with every op category enabled. */
inline constexpr std::uint32_t opMaskAll =
    (1u << static_cast<unsigned>(FuzzOpKind::Count)) - 1;

/** Everything that determines one fuzz run. */
struct FuzzOptions
{
    std::uint64_t seed = 1;
    std::uint64_t ops = 4096;        ///< fuzz operations to apply
    std::uint64_t minTransactions = 0; ///< keep going until the bus saw
                                       ///< at least this many broadcasts

    std::uint32_t cpus = 4;
    HierarchyKind kind = HierarchyKind::VirtualReal;
    CoherencePolicy protocol = CoherencePolicy::WriteInvalidate;
    bool splitL1 = false;

    // Deliberately tiny geometry: high eviction/conflict rates reach
    // the interesting corners orders of magnitude faster.
    std::uint32_t l1Bytes = 4096;
    std::uint32_t l2Bytes = 16384;
    std::uint32_t l1Block = 16;
    std::uint32_t l2Block = 32;
    std::uint32_t pageSize = 4096;

    /**
     * Reverse-lookup-table geometry for HierarchyKind::VirtualRealRlt
     * episodes. Deliberately small so directory conflicts (and the
     * forced back-invalidations they trigger) happen constantly.
     */
    std::uint32_t rltEntries = 64;
    std::uint32_t rltAssoc = 2;

    /** Physical frames in the fuzz pool (small => heavy aliasing). */
    std::uint32_t frames = 24;
    /** Virtual pages each process maps onto the pool. */
    std::uint32_t vpnsPerProcess = 6;
    std::uint32_t processesPerCpu = 2;

    std::uint32_t opMask = opMaskAll;

    /** Run an oracle sweep every N ops (0 disables). */
    std::uint64_t sweepPeriod = 256;
    /** Run per-hierarchy checkInvariants() every N ops (0 disables). */
    std::uint64_t invariantPeriod = 0;

    /**
     * Mutation smoke mode: enable the deliberate inclusion-bit bug
     * (core/mutation.hh) so the run proves the oracle detects it.
     */
    bool mutateInclusion = false;

    std::size_t ringCapacity = 64;
};

/** Outcome of one fuzz run. */
struct FuzzResult
{
    bool ok = true;
    std::uint64_t opsRun = 0;
    std::uint64_t refs = 0;            ///< memory references replayed
    std::uint64_t busTransactions = 0;
    std::uint64_t contextSwitches = 0;
    std::uint64_t failingOp = 0;       ///< op index of the violation
    std::string violation;             ///< first violation message
    std::string ringJson;              ///< oracle dump (JSON), on failure

    /**
     * The run hit a simulated machine check (uncorrectable soft error
     * under --soft-errors). Terminal but not a coherence violation:
     * the episode halts like the hardware would, with ok still true.
     */
    bool machineCheck = false;
    std::string machineCheckReason;
};

/** Run one deterministic fuzz episode. */
FuzzResult runFuzz(const FuzzOptions &opt);

/** Serialize options as a one-object JSON replay file. */
std::string replayToJson(const FuzzOptions &opt);

/**
 * Parse a replay file produced by replayToJson().
 *
 * @return false if the text is not a recognizable replay.
 */
bool replayFromJson(const std::string &json, FuzzOptions &out);

/**
 * Load and validate a replay file. A missing file is an Io error and
 * unrecognizable content a Parse error, so a corrupt replay
 * quarantines that run instead of killing a batch. Under
 * --inject-faults the loaded bytes pass through the fault injector.
 */
Result<FuzzOptions> tryLoadReplay(const std::string &path);

/**
 * Shrink a failing run: truncate to the failing op, then greedily
 * disable op categories that are not needed to reproduce. Returns
 * options that still fail (at worst the input).
 */
FuzzOptions minimizeFailure(const FuzzOptions &failing);

} // namespace vrc

#endif // VRC_CHECK_FUZZER_HH
