/**
 * @file
 * Workload profiles for synthetic trace generation.
 *
 * The paper evaluated three ATUM VAX multiprocessor traces (pops, thor,
 * abaqus) that are not publicly available. We substitute deterministic
 * synthetic workloads whose *structure* matches what the paper reports
 * and exploits:
 *
 *  - reference mix and context-switch counts per Table 5;
 *  - procedure calls generating bursts of ~6-12 consecutive stack writes
 *    (Table 1) and hence clustered inter-write intervals (Table 2);
 *  - nested working sets so hit ratios vary smoothly across the paper's
 *    cache sizes (0.5K..16K level 1, 64K..256K level 2);
 *  - cross-CPU shared data (coherence traffic) and shared segments mapped
 *    at different virtual addresses (synonyms);
 *  - per-process address spaces with a shared text segment, so context
 *    switches hurt a virtually-addressed cache but not a physical one.
 *
 * All knobs live in WorkloadProfile; see profiles.cc for the tuned
 * pops/thor/abaqus instances.
 */

#ifndef VRC_TRACE_WORKLOAD_HH
#define VRC_TRACE_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/histogram.hh"
#include "base/types.hh"

namespace vrc
{

/** One nested working-set level: a region prefix size and its weight. */
struct WorkingSetLevel
{
    std::uint32_t bytes;  ///< region prefix size in bytes
    double weight;        ///< relative probability of touching this level
};

/** All parameters of a synthetic multiprocessor workload. */
struct WorkloadProfile
{
    std::string name = "custom";

    // --- Shape (Table 5 targets) ---
    std::uint32_t numCpus = 4;
    std::uint64_t totalRefs = 1'000'000;  ///< across all CPUs, approximate
    double instrFrac = 0.47;              ///< fraction instruction fetches
    double readFrac = 0.42;               ///< fraction data reads
    double writeFrac = 0.11;              ///< fraction data writes
    std::uint32_t contextSwitches = 0;    ///< total, spread across CPUs
    std::uint32_t processesPerCpu = 2;    ///< round-robin on each switch

    std::uint32_t pageSize = 4096;

    // --- Code behaviour ---
    std::uint32_t procCount = 96;      ///< procedures in the program text
    std::uint32_t procStride = 512;    ///< bytes between procedure entries
    double procZipfTheta = 0.8;        ///< skew of procedure popularity
    double callProb = 0.010;           ///< per-instruction call probability
    double returnProb = 0.010;         ///< per-instruction return prob.
    double loopBackProb = 0.10;        ///< per-instruction loop-back prob.
    std::uint32_t loopSpanBytes = 96;  ///< how far back a loop jumps
    std::uint32_t maxCallDepth = 24;

    // --- Procedure-call write bursts (Table 1) ---
    std::uint32_t callWritesMin = 6;
    std::uint32_t callWritesMax = 12;

    // --- Private data behaviour ---
    std::vector<WorkingSetLevel> dataLevels = {
        {1 << 10, 0.35}, {4 << 10, 0.25}, {16 << 10, 0.18},
        {64 << 10, 0.12}, {256 << 10, 0.07}, {1 << 20, 0.03}};
    std::uint32_t dataBlockBytes = 16;  ///< granularity of data reuse

    double stackReadFrac = 0.20;  ///< data reads aimed near the stack top
    double repeatFrac = 0.25;     ///< data refs re-touching the previous
                                  ///< data address (register-pressure
                                  ///< style temporal locality)
    double seqFrac = 0.25;        ///< data refs continuing a sequential
                                  ///< walk from the previous address
                                  ///< (array streaming spatial locality)

    // --- Sharing and synonyms ---
    std::uint32_t sharedPages = 32;   ///< size of the shared segment
    double sharedFrac = 0.05;         ///< data refs hitting the segment
    double sharedWriteFrac = 0.25;    ///< of those, fraction that write
    double aliasFrac = 0.10;          ///< shared refs via the per-process
                                      ///< alias mapping (synonyms)
    double sharedRepeatFrac = 0.70;   ///< shared refs re-touching the
                                      ///< process's current shared block
                                      ///< (bursty sharing keeps copies
                                      ///< level-1 resident, so coherence
                                      ///< actually percolates there)
    double hotspotFrac = 0.010;       ///< data refs polling the few-block
                                      ///< hotspot (locks, scheduler state:
                                      ///< resident in every level-1 cache,
                                      ///< so every write percolates)
    std::uint32_t hotspotBlocks = 4;  ///< size of the hotspot set

    std::uint64_t seed = 1;

    /** Fraction of data references among all references. */
    double
    dataFrac() const
    {
        return readFrac + writeFrac;
    }
};

/**
 * Statistics gathered while generating (ground truth the generator knows
 * that cannot be recovered from the trace records alone, e.g. which
 * writes belong to procedure calls -- the paper's authors knew this from
 * VAX CALLS semantics in the ATUM traces).
 */
struct GenStats
{
    GenStats() : callWrites(16) {}

    Histogram callWrites;              ///< writes per procedure call
    std::uint64_t totalCalls = 0;
    std::uint64_t callWriteCount = 0;  ///< writes attributable to calls
    std::uint64_t totalWrites = 0;
    std::uint64_t totalReads = 0;
    std::uint64_t totalInstr = 0;
    std::uint64_t contextSwitches = 0;
};

/** Tuned profile reproducing the pops trace shape (Table 5 row 2). */
WorkloadProfile popsProfile();

/** Tuned profile reproducing the thor trace shape (Table 5 row 1). */
WorkloadProfile thorProfile();

/** Tuned profile reproducing the abaqus trace shape (Table 5 row 3). */
WorkloadProfile abaqusProfile();

/** Look up a named profile ("pops", "thor", "abaqus"). fatal() if unknown. */
WorkloadProfile profileByName(const std::string &name);

/** All three paper profiles, in Table 5 order. */
std::vector<WorkloadProfile> paperProfiles();

/**
 * Scale a profile's length (references and context switches) by @p factor,
 * keeping rates unchanged. Used for quick test/CI runs.
 */
WorkloadProfile scaled(WorkloadProfile p, double factor);

} // namespace vrc

#endif // VRC_TRACE_WORKLOAD_HH
