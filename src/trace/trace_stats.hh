/**
 * @file
 * Trace characterization (the paper's Table 5).
 */

#ifndef VRC_TRACE_TRACE_STATS_HH
#define VRC_TRACE_TRACE_STATS_HH

#include <cstdint>
#include <set>
#include <vector>

#include "trace/record.hh"

namespace vrc
{

/** Aggregate characteristics of a trace (Table 5 columns). */
struct TraceCharacteristics
{
    std::uint32_t numCpus = 0;      ///< distinct CPUs seen
    std::uint64_t totalRefs = 0;    ///< memory references (excl. switches)
    std::uint64_t instrCount = 0;
    std::uint64_t dataReads = 0;
    std::uint64_t dataWrites = 0;
    std::uint64_t contextSwitches = 0;
    std::uint32_t processCount = 0; ///< distinct process ids seen

    /** Per-CPU memory reference counts, indexed by CPU id. */
    std::vector<std::uint64_t> refsPerCpu;
};

/** Scan a trace and compute its Table 5 characteristics. */
TraceCharacteristics characterize(const std::vector<TraceRecord> &records);

} // namespace vrc

#endif // VRC_TRACE_TRACE_STATS_HH
