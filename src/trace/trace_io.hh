/**
 * @file
 * Binary and text trace file I/O.
 *
 * Binary format: a fixed 16-byte header (magic, version, record count)
 * followed by packed TraceRecords. Text format: one record per line,
 * "cpu type pid vaddr" with the type as a letter (I/R/W/S), for
 * human inspection and for importing external traces.
 *
 * Every reader comes in two flavors: a `try*` form that fully
 * validates the input (magic, version, record count against the
 * stream size, type letters/bytes, field ranges) and reports failures
 * as a Result carrying file/line context, and a legacy form that
 * wraps it with fatal() for interactive tools. Campaign code must use
 * the `try*` forms: a corrupt input is a quarantined cell, not a dead
 * process.
 */

#ifndef VRC_TRACE_TRACE_IO_HH
#define VRC_TRACE_TRACE_IO_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "base/error.hh"
#include "trace/record.hh"

namespace vrc
{

/** Magic number identifying binary vrc traces ("VRCT"). */
inline constexpr std::uint32_t traceMagic = 0x54435256;

/** Current binary trace format version. */
inline constexpr std::uint32_t traceVersion = 1;

/**
 * Parse a reference-type letter (I/R/W/S). An unknown letter is a
 * Parse error naming the letter; the caller attaches line context.
 */
Result<RefType> refTypeFromLetter(char c);

/**
 * Write @p records to @p os in binary format.
 *
 * @return bytes written.
 */
std::uint64_t writeTraceBinary(std::ostream &os,
                               const std::vector<TraceRecord> &records);

/**
 * Read and fully validate a binary trace.
 *
 * Rejects, without allocating the record array first: a short or
 * bad-magic header, an unsupported version, and a record count
 * inconsistent with the remaining stream size. Record type bytes are
 * validated after the read. @p context names the source in errors.
 */
Result<std::vector<TraceRecord>>
tryReadTraceBinary(std::istream &is,
                   const std::string &context = "<stream>");

/** Legacy wrapper: fatal() on any tryReadTraceBinary() error. */
std::vector<TraceRecord> readTraceBinary(std::istream &is);

/** Write @p records in the line-oriented text format. */
void writeTraceText(std::ostream &os,
                    const std::vector<TraceRecord> &records);

/**
 * Read a text trace. Blank lines and lines starting with '#' are
 * skipped. Malformed lines, unknown type letters, and out-of-range
 * cpu/pid fields are Parse errors carrying the 1-based line number.
 */
Result<std::vector<TraceRecord>>
tryReadTraceText(std::istream &is,
                 const std::string &context = "<stream>");

/** Legacy wrapper: fatal() on any tryReadTraceText() error. */
std::vector<TraceRecord> readTraceText(std::istream &is);

/**
 * Import a classic dinero "din" trace: one "<label> <hex-addr>" pair
 * per line, label 0 = data read, 1 = data write, 2 = instruction
 * fetch. Dinero traces are uniprocessor with no process information;
 * all records are attributed to @p cpu and @p pid. Blank lines and
 * '#' comments are skipped.
 */
Result<std::vector<TraceRecord>>
tryReadTraceDinero(std::istream &is, CpuId cpu = 0, ProcessId pid = 0,
                   const std::string &context = "<stream>");

/** Legacy wrapper: fatal() on any tryReadTraceDinero() error. */
std::vector<TraceRecord> readTraceDinero(std::istream &is,
                                         CpuId cpu = 0,
                                         ProcessId pid = 0);

/** Write a binary trace file. fatal() if the file cannot be opened. */
void saveTrace(const std::string &path,
               const std::vector<TraceRecord> &records);

/**
 * Read and validate a binary trace file. Errors (including a missing
 * file) come back as a Result; under --inject-faults the loaded bytes
 * pass through the fault injector before parsing.
 */
Result<std::vector<TraceRecord>> tryLoadTrace(const std::string &path);

/** Legacy wrapper: fatal() on any tryLoadTrace() error. */
std::vector<TraceRecord> loadTrace(const std::string &path);

} // namespace vrc

#endif // VRC_TRACE_TRACE_IO_HH
