/**
 * @file
 * Binary and text trace file I/O.
 *
 * Binary format: a fixed 16-byte header (magic, version, record count)
 * followed by packed TraceRecords. Text format: one record per line,
 * "cpu type pid vaddr" with the type as a letter (I/R/W/S), for
 * human inspection and for importing external traces.
 */

#ifndef VRC_TRACE_TRACE_IO_HH
#define VRC_TRACE_TRACE_IO_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/record.hh"

namespace vrc
{

/** Magic number identifying binary vrc traces ("VRCT"). */
inline constexpr std::uint32_t traceMagic = 0x54435256;

/** Current binary trace format version. */
inline constexpr std::uint32_t traceVersion = 1;

/**
 * Write @p records to @p os in binary format.
 *
 * @return bytes written.
 */
std::uint64_t writeTraceBinary(std::ostream &os,
                               const std::vector<TraceRecord> &records);

/**
 * Read a binary trace.
 *
 * Calls fatal() on malformed input (bad magic, truncated body).
 */
std::vector<TraceRecord> readTraceBinary(std::istream &is);

/** Write @p records in the line-oriented text format. */
void writeTraceText(std::ostream &os,
                    const std::vector<TraceRecord> &records);

/**
 * Read a text trace. Blank lines and lines starting with '#' are skipped.
 * Calls fatal() on malformed lines.
 */
std::vector<TraceRecord> readTraceText(std::istream &is);

/**
 * Import a classic dinero "din" trace: one "<label> <hex-addr>" pair
 * per line, label 0 = data read, 1 = data write, 2 = instruction
 * fetch. Dinero traces are uniprocessor with no process information;
 * all records are attributed to @p cpu and @p pid. Blank lines and
 * '#' comments are skipped; fatal() on malformed input.
 */
std::vector<TraceRecord> readTraceDinero(std::istream &is,
                                         CpuId cpu = 0,
                                         ProcessId pid = 0);

/** Write a binary trace file. fatal() if the file cannot be opened. */
void saveTrace(const std::string &path,
               const std::vector<TraceRecord> &records);

/** Read a binary trace file. fatal() if the file cannot be opened. */
std::vector<TraceRecord> loadTrace(const std::string &path);

} // namespace vrc

#endif // VRC_TRACE_TRACE_IO_HH
