#include "trace/generator.hh"

#include "trace/trace_stream.hh"

#include <algorithm>
#include <cmath>
#include <deque>

#include "base/bitops.hh"
#include "base/log.hh"
#include "vm/addr_space.hh"

namespace vrc
{

// ---------------------------------------------------------------------
// NestedWorkingSetSampler
// ---------------------------------------------------------------------

NestedWorkingSetSampler::NestedWorkingSetSampler(
    std::vector<WorkingSetLevel> levels, std::uint32_t block_bytes,
    std::uint32_t region_base)
    : _levels(std::move(levels)), _blockBytes(block_bytes),
      _regionBase(region_base)
{
    panicIfNot(!_levels.empty(), "sampler needs at least one level");
    std::sort(_levels.begin(), _levels.end(),
              [](const auto &a, const auto &b) { return a.bytes < b.bytes; });
    for (const auto &l : _levels)
        _weights.push_back(l.weight);
}

std::uint32_t
NestedWorkingSetSampler::sample(Rng &rng) const
{
    std::size_t li = rng.weighted(_weights);
    std::uint32_t blocks = std::max<std::uint32_t>(
        1, _levels[li].bytes / _blockBytes);
    std::uint32_t block = static_cast<std::uint32_t>(rng.below(blocks));
    std::uint32_t offset = static_cast<std::uint32_t>(
        rng.below(_blockBytes)) & ~3u;
    return _regionBase + block * _blockBytes + offset;
}

// ---------------------------------------------------------------------
// Address-space setup shared by generator and simulator
// ---------------------------------------------------------------------

namespace
{

std::uint32_t
textPages(const WorkloadProfile &p)
{
    std::uint64_t text_bytes =
        std::uint64_t{p.procCount} * p.procStride;
    return static_cast<std::uint32_t>(
        (text_bytes + p.pageSize - 1) / p.pageSize);
}

} // namespace

std::uint32_t
processCount(const WorkloadProfile &profile)
{
    return profile.numCpus * profile.processesPerCpu;
}

void
setupAddressSpaces(const WorkloadProfile &profile,
                   AddressSpaceManager &spaces)
{
    const std::uint32_t page = spaces.pageSize();
    panicIfNot(page == profile.pageSize,
               "profile/page-size mismatch between trace and simulator");

    SegmentId text = spaces.createSegment(
        textPages(profile), VirtualLayout::textBase / page);
    SegmentId shared = spaces.createSegment(
        profile.sharedPages, VirtualLayout::sharedBase / page);

    const std::uint32_t nproc = processCount(profile);
    for (ProcessId pid = 0; pid < nproc; ++pid) {
        spaces.attachSegment(pid, text, VirtualLayout::textBase / page);
        spaces.attachSegment(pid, shared,
                             VirtualLayout::sharedBase / page);
        spaces.attachSegment(
            pid, shared,
            VirtualLayout::aliasBase(pid, profile.sharedPages, page) /
                page);
    }
}

// ---------------------------------------------------------------------
// Generator internals
// ---------------------------------------------------------------------

namespace
{

/** Zipf-weighted procedure popularity. */
std::vector<double>
procWeights(std::uint32_t count, double theta)
{
    std::vector<double> w(count);
    for (std::uint32_t i = 0; i < count; ++i)
        w[i] = 1.0 / std::pow(static_cast<double>(i + 1), theta);
    return w;
}

/** Execution state of one simulated process. */
struct ProcessState
{
    ProcessId pid = 0;
    std::uint32_t pc = VirtualLayout::textBase;
    std::uint32_t procEntry = VirtualLayout::textBase;
    std::uint32_t sp = VirtualLayout::stackBase + 0x8000;
    /** Last private data address touched (temporal-reuse source). */
    std::uint32_t lastData = VirtualLayout::privateDataBase;
    /** Current shared block being worked on (0 = none yet). */
    std::uint32_t lastShared = 0;
    /** Return address + frame size for each live call. */
    std::vector<std::pair<std::uint32_t, std::uint32_t>> callStack;
};

/** Per-CPU generation engine: emits one TraceRecord per step. */
class CpuEngine
{
  public:
    CpuEngine(const WorkloadProfile &p, CpuId cpu, Rng rng,
              GenStats &stats)
        : _p(p), _cpu(cpu), _rng(std::move(rng)), _stats(stats),
          _procWeights(procWeights(p.procCount, p.procZipfTheta)),
          _dataSampler(p.dataLevels, p.dataBlockBytes,
                       VirtualLayout::privateDataBase),
          _sharedSampler(
              // A small, hot, actively contended region (locks,
              // frequently updated shared state) in front of the full
              // segment: this is what keeps shared blocks resident in
              // several level-1 caches at once, producing genuine
              // coherence percolation (Tables 11-13).
              {{8 * p.dataBlockBytes, 0.60},
               {std::max<std::uint32_t>(p.sharedPages * p.pageSize / 16,
                                        64 * p.dataBlockBytes),
                0.22},
               {p.sharedPages * p.pageSize, 0.18}},
              p.dataBlockBytes, 0)
    {
        _readsPerInstr = p.instrFrac > 0 ? p.readFrac / p.instrFrac : 0;
        double writes_per_instr =
            p.instrFrac > 0 ? p.writeFrac / p.instrFrac : 0;
        double burst_mean = (p.callWritesMin + p.callWritesMax) / 2.0;
        _bgWritesPerInstr =
            std::max(0.0, writes_per_instr - p.callProb * burst_mean);

        for (std::uint32_t k = 0; k < p.processesPerCpu; ++k) {
            ProcessState ps;
            ps.pid = cpu * p.processesPerCpu + k;
            // Desynchronize processes so CPUs don't run in lockstep.
            ps.procEntry = procEntryAddr(
                static_cast<std::uint32_t>(_rng.below(p.procCount)));
            ps.pc = ps.procEntry;
            _procs.push_back(ps);
        }
    }

    ProcessId activePid() const { return _procs[_active].pid; }

    /** Rotate to the next process; returns the new pid. */
    ProcessId
    contextSwitch()
    {
        _active = (_active + 1) % _procs.size();
        _stats.contextSwitches += 1;
        return activePid();
    }

    /** Produce the next memory reference for the active process. */
    TraceRecord
    next()
    {
        if (!_pending.empty()) {
            TraceRecord r = _pending.front();
            _pending.pop_front();
            note(r);
            return r;
        }
        ProcessState &ps = _procs[_active];
        TraceRecord instr =
            makeRef(_cpu, RefType::Instr, ps.pid, VirtAddr(ps.pc));
        stepControlFlow(ps);
        scheduleDataRefs(ps);
        note(instr);
        return instr;
    }

  private:
    std::uint32_t
    procEntryAddr(std::uint32_t proc_index) const
    {
        return VirtualLayout::textBase + proc_index * _p.procStride;
    }

    void
    note(const TraceRecord &r)
    {
        switch (r.type) {
          case RefType::Instr:
            _stats.totalInstr += 1;
            break;
          case RefType::Read:
            _stats.totalReads += 1;
            break;
          case RefType::Write:
            _stats.totalWrites += 1;
            break;
          default:
            break;
        }
    }

    /** Advance the PC: sequential fetch, loops, calls and returns. */
    void
    stepControlFlow(ProcessState &ps)
    {
        ps.pc += 4;
        bool past_end = ps.pc >= ps.procEntry + _p.procStride;

        if (!past_end && _rng.chance(_p.loopBackProb)) {
            std::uint32_t span = static_cast<std::uint32_t>(
                _rng.range(8, std::max<std::uint32_t>(8, _p.loopSpanBytes)));
            span &= ~3u;
            ps.pc = std::max(ps.procEntry, ps.pc - span);
            return;
        }

        if (!past_end && ps.callStack.size() < _p.maxCallDepth &&
            _rng.chance(_p.callProb)) {
            doCall(ps);
            return;
        }

        if (past_end || (!ps.callStack.empty() &&
                         _rng.chance(_p.returnProb))) {
            doReturn(ps);
            return;
        }
    }

    void
    doCall(ProcessState &ps)
    {
        std::uint32_t writes = static_cast<std::uint32_t>(
            _rng.range(_p.callWritesMin, _p.callWritesMax));
        // The paper's Table 1 shows a small residue of 1..5-write calls.
        if (_rng.chance(0.002))
            writes = static_cast<std::uint32_t>(_rng.range(1, 5));

        std::uint32_t frame = writes * 4;
        if (ps.sp < VirtualLayout::stackBase + frame + 256)
            ps.sp = VirtualLayout::stackBase + 0x8000; // stack reset guard
        for (std::uint32_t i = 0; i < writes; ++i) {
            ps.sp -= 4;
            _pending.push_back(
                makeRef(_cpu, RefType::Write, ps.pid, VirtAddr(ps.sp)));
        }
        _stats.totalCalls += 1;
        _stats.callWrites.record(writes);
        _stats.callWriteCount += writes;

        ps.callStack.emplace_back(ps.pc, frame);
        std::uint32_t callee = static_cast<std::uint32_t>(
            _rng.weighted(_procWeights));
        ps.procEntry = procEntryAddr(callee);
        ps.pc = ps.procEntry;
    }

    void
    doReturn(ProcessState &ps)
    {
        if (ps.callStack.empty()) {
            // Main loop wrapped around: restart a fresh top procedure.
            std::uint32_t callee = static_cast<std::uint32_t>(
                _rng.weighted(_procWeights));
            ps.procEntry = procEntryAddr(callee);
            ps.pc = ps.procEntry;
            return;
        }
        auto [ret_pc, frame] = ps.callStack.back();
        ps.callStack.pop_back();
        ps.sp += frame;
        ps.pc = ret_pc;
        // Recover the enclosing procedure entry from the return address.
        std::uint32_t idx =
            (ret_pc - VirtualLayout::textBase) / _p.procStride;
        ps.procEntry = procEntryAddr(idx);
    }

    /** Queue the data references associated with one instruction. */
    void
    scheduleDataRefs(ProcessState &ps)
    {
        for (double x = _readsPerInstr; x >= 1.0 || _rng.chance(x);
             x -= 1.0) {
            _pending.push_back(makeRef(_cpu, RefType::Read, ps.pid,
                                       VirtAddr(readAddr(ps))));
            if (x < 1.0)
                break;
        }
        for (double x = _bgWritesPerInstr; x >= 1.0 || _rng.chance(x);
             x -= 1.0) {
            _pending.push_back(makeRef(_cpu, RefType::Write, ps.pid,
                                       VirtAddr(writeAddr(ps))));
            if (x < 1.0)
                break;
        }
    }

    /** One block of the globally hot, constantly polled set. */
    std::uint32_t
    hotspotAddr()
    {
        // The hotspot lives at the tail of the shared segment, away
        // from the contended-region levels at its head.
        std::uint32_t limit = _p.sharedPages * _p.pageSize;
        std::uint32_t block = static_cast<std::uint32_t>(
            _rng.below(std::max<std::uint32_t>(1, _p.hotspotBlocks)));
        return VirtualLayout::sharedBase + limit -
            (block + 1) * _p.dataBlockBytes;
    }

    std::uint32_t
    sharedAddr(ProcessState &ps)
    {
        // Bursty sharing: keep working on the current shared block for
        // a while before moving on, as real producer/consumer and
        // shared-structure code does.
        if (ps.lastShared != 0 && _rng.chance(_p.sharedRepeatFrac))
            return ps.lastShared;
        std::uint32_t offset = _sharedSampler.sample(_rng);
        std::uint32_t limit = _p.sharedPages * _p.pageSize;
        offset %= limit;
        if (_rng.chance(_p.aliasFrac)) {
            ps.lastShared = VirtualLayout::aliasBase(
                                ps.pid, _p.sharedPages, _p.pageSize) +
                offset;
        } else {
            ps.lastShared = VirtualLayout::sharedBase + offset;
        }
        return ps.lastShared;
    }

    std::uint32_t
    readAddr(ProcessState &ps)
    {
        if (_rng.chance(_p.hotspotFrac))
            return hotspotAddr();
        if (_rng.chance(_p.repeatFrac))
            return ps.lastData;
        if (_rng.chance(_p.seqFrac)) {
            ps.lastData += 4;  // array walk continues
            return ps.lastData;
        }
        if (_rng.chance(_p.stackReadFrac))
            return ps.sp + static_cast<std::uint32_t>(_rng.below(16)) * 4;
        if (_rng.chance(_p.sharedFrac))
            return sharedAddr(ps);
        ps.lastData = _dataSampler.sample(_rng);
        return ps.lastData;
    }

    std::uint32_t
    writeAddr(ProcessState &ps)
    {
        if (_rng.chance(_p.hotspotFrac))
            return hotspotAddr();
        if (_rng.chance(_p.repeatFrac))
            return ps.lastData;
        if (_rng.chance(_p.seqFrac)) {
            ps.lastData += 4;
            return ps.lastData;
        }
        if (_rng.chance(_p.sharedFrac) && _rng.chance(_p.sharedWriteFrac))
            return sharedAddr(ps);
        ps.lastData = _dataSampler.sample(_rng);
        return ps.lastData;
    }

    const WorkloadProfile &_p;
    CpuId _cpu;
    Rng _rng;
    GenStats &_stats;
    std::vector<double> _procWeights;
    NestedWorkingSetSampler _dataSampler;
    NestedWorkingSetSampler _sharedSampler;
    double _readsPerInstr = 0;
    double _bgWritesPerInstr = 0;
    std::vector<ProcessState> _procs;
    std::size_t _active = 0;
    std::deque<TraceRecord> _pending;
};

} // namespace

// ---------------------------------------------------------------------
// TraceStream: incremental generation
// ---------------------------------------------------------------------

/**
 * Streaming state: the per-CPU engines plus the round-robin interleave
 * cursor. The emission order is identical to the historical
 * generateTrace() loop: CPUs are visited round-robin; a visit first
 * emits a due context-switch marker, then one engine record.
 */
struct TraceStream::Impl
{
    explicit Impl(const WorkloadProfile &p)
        : profile(p), perCpu(p.totalRefs / p.numCpus),
          nextSwitch(p.numCpus, 0), switchInterval(p.numCpus, 0),
          switchesLeft(p.numCpus, 0), emitted(p.numCpus, 0)
    {
        panicIfNot(profile.numCpus >= 1, "need at least one CPU");
        panicIfNot(std::abs(profile.instrFrac + profile.readFrac +
                            profile.writeFrac - 1.0) < 0.05,
                   "reference mix should sum to ~1");
        Rng root(profile.seed);
        engines.reserve(profile.numCpus);
        for (CpuId c = 0; c < profile.numCpus; ++c)
            engines.emplace_back(profile, c, root.fork(), genStats);

        // Spread context switches across CPUs, remainder to low CPUs.
        for (CpuId c = 0; c < profile.numCpus; ++c) {
            std::uint32_t n = profile.contextSwitches / profile.numCpus +
                (c < profile.contextSwitches % profile.numCpus ? 1 : 0);
            switchesLeft[c] = n;
            switchInterval[c] = n > 0 ? perCpu / (n + 1) : 0;
            nextSwitch[c] = switchInterval[c];
        }
    }

    bool
    next(TraceRecord &out)
    {
        if (owedEngineRecord) {
            // The context-switch marker for this CPU just went out; the
            // engine record of the same visit follows.
            owedEngineRecord = false;
            out = engines[cursor].next();
            emitted[cursor] += 1;
            advance();
            produced += 1;
            return true;
        }
        for (std::uint32_t scanned = 0; scanned < profile.numCpus;
             ++scanned) {
            CpuId c = cursor;
            if (emitted[c] >= perCpu) {
                advance();
                continue;
            }
            if (switchesLeft[c] > 0 && emitted[c] >= nextSwitch[c]) {
                ProcessId new_pid = engines[c].contextSwitch();
                switchesLeft[c] -= 1;
                nextSwitch[c] += switchInterval[c];
                owedEngineRecord = true;
                out = makeContextSwitch(c, new_pid);
                produced += 1;
                return true;
            }
            out = engines[c].next();
            emitted[c] += 1;
            advance();
            produced += 1;
            return true;
        }
        return false;
    }

    void advance() { cursor = (cursor + 1) % profile.numCpus; }

    WorkloadProfile profile;
    GenStats genStats;
    std::vector<CpuEngine> engines;
    std::uint64_t perCpu;
    std::vector<std::uint64_t> nextSwitch;
    std::vector<std::uint64_t> switchInterval;
    std::vector<std::uint32_t> switchesLeft;
    std::vector<std::uint64_t> emitted;
    CpuId cursor = 0;
    bool owedEngineRecord = false;
    std::uint64_t produced = 0;
};

TraceStream::TraceStream(const WorkloadProfile &profile)
    : _impl(std::make_unique<Impl>(profile))
{
}

TraceStream::~TraceStream() = default;
TraceStream::TraceStream(TraceStream &&) noexcept = default;
TraceStream &TraceStream::operator=(TraceStream &&) noexcept = default;

bool
TraceStream::next(TraceRecord &out)
{
    return _impl->next(out);
}

std::size_t
TraceStream::nextBatch(TraceRecord *out, std::size_t cap)
{
    Impl &impl = *_impl;
    std::size_t n = 0;
    while (n < cap && impl.next(out[n]))
        ++n;
    return n;
}

std::uint64_t
TraceStream::produced() const
{
    return _impl->produced;
}

std::uint64_t
TraceStream::expectedTotal() const
{
    return _impl->profile.totalRefs + _impl->profile.contextSwitches;
}

const WorkloadProfile &
TraceStream::profile() const
{
    return _impl->profile;
}

const GenStats &
TraceStream::stats() const
{
    return _impl->genStats;
}

TraceBundle
generateTrace(const WorkloadProfile &profile)
{
    TraceBundle bundle;
    bundle.profile = profile;
    bundle.records.reserve(profile.totalRefs + profile.contextSwitches);

    TraceStream stream(profile);
    TraceRecord r;
    while (stream.next(r))
        bundle.records.push_back(r);
    bundle.stats = stream.stats();
    return bundle;
}

} // namespace vrc
