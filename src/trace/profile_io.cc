#include "trace/profile_io.hh"

#include <fstream>
#include <functional>
#include <iomanip>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "base/fault.hh"
#include "base/log.hh"

namespace vrc
{

namespace
{

std::string
levelsToString(const std::vector<WorkingSetLevel> &levels)
{
    std::ostringstream os;
    for (std::size_t i = 0; i < levels.size(); ++i) {
        if (i)
            os << ", ";
        os << levels[i].bytes << ":" << levels[i].weight;
    }
    return os.str();
}

std::vector<WorkingSetLevel>
levelsFromString(const std::string &text)
{
    std::vector<WorkingSetLevel> levels;
    std::istringstream is(text);
    std::string item;
    while (std::getline(is, item, ',')) {
        std::size_t colon = item.find(':');
        if (colon == std::string::npos)
            throw ErrorException(makeError(
                ErrorKind::Parse, "bad data_levels entry '", item,
                "' (expected bytes:weight)"));
        WorkingSetLevel l;
        try {
            l.bytes = static_cast<std::uint32_t>(
                std::stoul(item.substr(0, colon)));
            l.weight = std::stod(item.substr(colon + 1));
        } catch (const std::exception &) {
            throw ErrorException(makeError(
                ErrorKind::Parse, "bad data_levels entry '", item,
                "' (expected bytes:weight)"));
        }
        levels.push_back(l);
    }
    if (levels.empty())
        throw ErrorException(makeError(
            ErrorKind::Parse, "data_levels must name at least one level"));
    return levels;
}

std::string
trim(const std::string &s)
{
    std::size_t a = s.find_first_not_of(" \t\r");
    std::size_t b = s.find_last_not_of(" \t\r");
    if (a == std::string::npos)
        return "";
    return s.substr(a, b - a + 1);
}

/** Bind profile fields to their file keys, for both directions. */
struct Binder
{
    using Setter = std::function<void(WorkloadProfile &,
                                      const std::string &)>;
    using Getter = std::function<std::string(const WorkloadProfile &)>;

    std::map<std::string, Setter> setters;
    std::vector<std::pair<std::string, Getter>> getters;

    template <typename T>
    void
    number(const std::string &key, T WorkloadProfile::*member)
    {
        setters[key] = [member](WorkloadProfile &p,
                                const std::string &v) {
            if constexpr (std::is_floating_point_v<T>)
                p.*member = static_cast<T>(std::stod(v));
            else
                p.*member = static_cast<T>(std::stoull(v));
        };
        getters.emplace_back(key, [member](const WorkloadProfile &p) {
            std::ostringstream os;
            os << std::setprecision(12) << p.*member;
            return os.str();
        });
    }
};

const Binder &
binder()
{
    static const Binder b = [] {
        Binder b;
        b.setters["name"] = [](WorkloadProfile &p,
                               const std::string &v) { p.name = v; };
        b.getters.emplace_back(
            "name",
            [](const WorkloadProfile &p) { return p.name; });
        b.setters["data_levels"] = [](WorkloadProfile &p,
                                      const std::string &v) {
            p.dataLevels = levelsFromString(v);
        };
        b.getters.emplace_back("data_levels",
                               [](const WorkloadProfile &p) {
                                   return levelsToString(p.dataLevels);
                               });

        b.number("num_cpus", &WorkloadProfile::numCpus);
        b.number("total_refs", &WorkloadProfile::totalRefs);
        b.number("instr_frac", &WorkloadProfile::instrFrac);
        b.number("read_frac", &WorkloadProfile::readFrac);
        b.number("write_frac", &WorkloadProfile::writeFrac);
        b.number("context_switches", &WorkloadProfile::contextSwitches);
        b.number("processes_per_cpu", &WorkloadProfile::processesPerCpu);
        b.number("page_size", &WorkloadProfile::pageSize);
        b.number("proc_count", &WorkloadProfile::procCount);
        b.number("proc_stride", &WorkloadProfile::procStride);
        b.number("proc_zipf_theta", &WorkloadProfile::procZipfTheta);
        b.number("call_prob", &WorkloadProfile::callProb);
        b.number("return_prob", &WorkloadProfile::returnProb);
        b.number("loop_back_prob", &WorkloadProfile::loopBackProb);
        b.number("loop_span_bytes", &WorkloadProfile::loopSpanBytes);
        b.number("max_call_depth", &WorkloadProfile::maxCallDepth);
        b.number("call_writes_min", &WorkloadProfile::callWritesMin);
        b.number("call_writes_max", &WorkloadProfile::callWritesMax);
        b.number("data_block_bytes", &WorkloadProfile::dataBlockBytes);
        b.number("stack_read_frac", &WorkloadProfile::stackReadFrac);
        b.number("repeat_frac", &WorkloadProfile::repeatFrac);
        b.number("seq_frac", &WorkloadProfile::seqFrac);
        b.number("shared_pages", &WorkloadProfile::sharedPages);
        b.number("shared_frac", &WorkloadProfile::sharedFrac);
        b.number("shared_write_frac", &WorkloadProfile::sharedWriteFrac);
        b.number("alias_frac", &WorkloadProfile::aliasFrac);
        b.number("shared_repeat_frac",
                 &WorkloadProfile::sharedRepeatFrac);
        b.number("hotspot_frac", &WorkloadProfile::hotspotFrac);
        b.number("hotspot_blocks", &WorkloadProfile::hotspotBlocks);
        b.number("seed", &WorkloadProfile::seed);
        return b;
    }();
    return b;
}

} // namespace

void
writeProfile(std::ostream &os, const WorkloadProfile &p)
{
    os << "# vrc workload profile\n";
    for (const auto &[key, getter] : binder().getters)
        os << key << " = " << getter(p) << "\n";
}

Result<WorkloadProfile>
tryReadProfile(std::istream &is, const std::string &context)
{
    WorkloadProfile p;
    std::string line;
    std::uint64_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        std::string t = trim(line);
        if (t.empty() || t[0] == '#')
            continue;
        std::size_t eq = t.find('=');
        if (eq == std::string::npos)
            return makeErrorAt(ErrorKind::Parse, context, lineno,
                               "profile line has no '=': '", t, "'");
        std::string key = trim(t.substr(0, eq));
        std::string value = trim(t.substr(eq + 1));
        auto it = binder().setters.find(key);
        if (it == binder().setters.end())
            return makeErrorAt(ErrorKind::Parse, context, lineno,
                               "unknown profile key '", key, "'");
        try {
            it->second(p, value);
        } catch (const ErrorException &e) {
            Error err = e.err();
            err.context = context;
            err.line = lineno;
            return err;
        } catch (const std::exception &) {
            return makeErrorAt(ErrorKind::Parse, context, lineno,
                               "bad value '", value,
                               "' for profile key '", key, "'");
        }
    }
    return p;
}

WorkloadProfile
readProfile(std::istream &is)
{
    return tryReadProfile(is).orDie();
}

void
saveProfile(const std::string &path, const WorkloadProfile &p)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open profile file for writing: ", path);
    writeProfile(os, p);
}

Result<WorkloadProfile>
tryLoadProfile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        return makeError(ErrorKind::Io,
                         "cannot open profile file: ", path);
    if (faultsArmed()) {
        std::ostringstream buf;
        buf << is.rdbuf();
        std::string bytes = buf.str();
        injectInputFaults("profile", path, bytes);
        std::istringstream in(bytes);
        return tryReadProfile(in, path);
    }
    return tryReadProfile(is, path);
}

WorkloadProfile
loadProfile(const std::string &path)
{
    return tryLoadProfile(path).orDie();
}

} // namespace vrc
