/**
 * @file
 * Synthetic multiprocessor trace generator.
 *
 * Produces an interleaved reference trace for a WorkloadProfile, plus the
 * generation-time ground truth (GenStats). The generator works purely in
 * virtual addresses; physical layout is established separately by
 * setupAddressSpaces() so that a simulator replaying the trace -- or a
 * trace loaded back from disk -- reconstructs the identical mapping.
 */

#ifndef VRC_TRACE_GENERATOR_HH
#define VRC_TRACE_GENERATOR_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "base/rng.hh"
#include "trace/record.hh"
#include "trace/workload.hh"

namespace vrc
{

class AddressSpaceManager;

/**
 * Fixed virtual-address layout used by generated processes.
 *
 * The region bases are staggered across page-number slices (vpn mod 4)
 * so that the hot text page, hot data page, active stack page and hot
 * shared page index *different* sets of a virtually-indexed cache
 * larger than a page -- as linkers and stack placement do in practice.
 * Without this, a virtual cache suffers artificial layout conflicts a
 * physically-indexed cache escapes through frame allocation.
 */
struct VirtualLayout
{
    static constexpr std::uint32_t textBase = 0x0001'0000;        // %4=0
    static constexpr std::uint32_t privateDataBase = 0x2000'1000; // %4=1
    static constexpr std::uint32_t sharedBase = 0x4000'3000;      // %4=3
    static constexpr std::uint32_t aliasRegionBase = 0x5000'0000;
    static constexpr std::uint32_t stackBase = 0x7fff'2000;       // hot
                                                 // stack page lands %4=2

    /** Per-process alias base for the shared segment (synonym source). */
    static std::uint32_t
    aliasBase(ProcessId pid, std::uint32_t shared_pages,
              std::uint32_t page_size)
    {
        // Stagger alias mappings so different processes name the shared
        // frames with different virtual pages; the odd extra page keeps
        // alias and canonical mappings from always landing in the same
        // cache set.
        return aliasRegionBase +
            (pid + 1) * (shared_pages + 1) * page_size;
    }
};

/**
 * Establish the deterministic physical layout for a profile: a shared
 * text segment mapped at the same virtual base into every process, and a
 * shared data segment mapped at the canonical base *and* a per-process
 * alias base. Private pages are demand-allocated on first touch by
 * whoever translates (normally the simulator), in trace order.
 */
void setupAddressSpaces(const WorkloadProfile &profile,
                        AddressSpaceManager &spaces);

/** Total number of processes a profile creates. */
std::uint32_t processCount(const WorkloadProfile &profile);

/** A generated trace plus generation-time statistics. */
struct TraceBundle
{
    WorkloadProfile profile;
    std::vector<TraceRecord> records;
    GenStats stats;
};

/**
 * Generate the full interleaved trace for @p profile.
 *
 * Deterministic: equal profiles (including seed) produce identical
 * bundles.
 */
TraceBundle generateTrace(const WorkloadProfile &profile);

/**
 * Nested working-set address sampler.
 *
 * Levels are prefixes of a single region: level i covers the first
 * levels[i].bytes of the region, and is chosen with probability
 * proportional to levels[i].weight. Sampling a level picks a uniformly
 * random block inside it. Smaller levels are hit more often, giving an
 * approximately concave miss-ratio-vs-cache-size curve whose knees sit
 * at the level sizes.
 */
class NestedWorkingSetSampler
{
  public:
    NestedWorkingSetSampler(std::vector<WorkingSetLevel> levels,
                            std::uint32_t block_bytes,
                            std::uint32_t region_base);

    /** Draw one virtual byte address. */
    std::uint32_t sample(Rng &rng) const;

    /** Size in bytes of the largest level. */
    std::uint32_t maxBytes() const { return _levels.back().bytes; }

  private:
    std::vector<WorkingSetLevel> _levels;
    std::vector<double> _weights;
    std::uint32_t _blockBytes;
    std::uint32_t _regionBase;
};

} // namespace vrc

#endif // VRC_TRACE_GENERATOR_HH
