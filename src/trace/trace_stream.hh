/**
 * @file
 * Incremental (streaming) trace generation.
 *
 * TraceStream produces the exact record sequence generateTrace() would
 * materialize, one record at a time, so a simulator can replay a
 * multi-million-reference workload without ever holding the trace in
 * memory. generateTrace() itself is implemented by draining a stream,
 * which guarantees the two paths can never diverge.
 */

#ifndef VRC_TRACE_TRACE_STREAM_HH
#define VRC_TRACE_TRACE_STREAM_HH

#include <cstddef>
#include <cstdint>
#include <memory>

#include "trace/record.hh"
#include "trace/workload.hh"

namespace vrc
{

/** Pull-based generator of one profile's interleaved trace. */
class TraceStream
{
  public:
    explicit TraceStream(const WorkloadProfile &profile);
    ~TraceStream();

    TraceStream(TraceStream &&) noexcept;
    TraceStream &operator=(TraceStream &&) noexcept;

    /**
     * Produce the next record into @p out.
     *
     * @return false when the trace is exhausted (@p out untouched).
     */
    bool next(TraceRecord &out);

    /**
     * Decode up to @p cap records into @p out, in exactly the order
     * repeated next() calls would produce them. Batched decoding lets a
     * replay loop amortize the stream's indirection over thousands of
     * records instead of paying it per reference.
     *
     * @return the number of records produced; 0 means exhausted.
     */
    std::size_t nextBatch(TraceRecord *out, std::size_t cap);

    /** Records produced so far. */
    std::uint64_t produced() const;

    /** Expected total record count (references + context switches). */
    std::uint64_t expectedTotal() const;

    /** The profile driving the stream. */
    const WorkloadProfile &profile() const;

    /**
     * Generation-time ground truth accumulated so far; complete once
     * next() has returned false.
     */
    const GenStats &stats() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> _impl;
};

} // namespace vrc

#endif // VRC_TRACE_TRACE_STREAM_HH
