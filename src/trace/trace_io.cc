#include "trace/trace_io.hh"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "base/log.hh"

namespace vrc
{

namespace
{

struct BinaryHeader
{
    std::uint32_t magic;
    std::uint32_t version;
    std::uint64_t count;
};

char
typeLetter(RefType t)
{
    switch (t) {
      case RefType::Instr:
        return 'I';
      case RefType::Read:
        return 'R';
      case RefType::Write:
        return 'W';
      case RefType::ContextSwitch:
        return 'S';
    }
    return '?';
}

RefType
typeFromLetter(char c)
{
    switch (c) {
      case 'I':
        return RefType::Instr;
      case 'R':
        return RefType::Read;
      case 'W':
        return RefType::Write;
      case 'S':
        return RefType::ContextSwitch;
      default:
        fatal("bad reference type letter '", c, "' in text trace");
    }
}

} // namespace

const char *
refTypeName(RefType t)
{
    switch (t) {
      case RefType::Instr:
        return "instr";
      case RefType::Read:
        return "read";
      case RefType::Write:
        return "write";
      case RefType::ContextSwitch:
        return "context-switch";
    }
    return "unknown";
}

std::uint64_t
writeTraceBinary(std::ostream &os, const std::vector<TraceRecord> &records)
{
    BinaryHeader hdr{traceMagic, traceVersion, records.size()};
    os.write(reinterpret_cast<const char *>(&hdr), sizeof(hdr));
    os.write(reinterpret_cast<const char *>(records.data()),
             static_cast<std::streamsize>(records.size() *
                                          sizeof(TraceRecord)));
    return sizeof(hdr) + records.size() * sizeof(TraceRecord);
}

std::vector<TraceRecord>
readTraceBinary(std::istream &is)
{
    BinaryHeader hdr{};
    is.read(reinterpret_cast<char *>(&hdr), sizeof(hdr));
    if (!is || hdr.magic != traceMagic)
        fatal("not a vrc binary trace (bad magic)");
    if (hdr.version != traceVersion)
        fatal("unsupported trace version ", hdr.version);
    std::vector<TraceRecord> records(hdr.count);
    is.read(reinterpret_cast<char *>(records.data()),
            static_cast<std::streamsize>(hdr.count * sizeof(TraceRecord)));
    if (!is)
        fatal("truncated trace body: expected ", hdr.count, " records");
    return records;
}

void
writeTraceText(std::ostream &os, const std::vector<TraceRecord> &records)
{
    for (const TraceRecord &r : records) {
        os << static_cast<unsigned>(r.cpu) << ' ' << typeLetter(r.type)
           << ' ' << r.pid << ' ' << std::hex << r.vaddr << std::dec
           << '\n';
    }
}

std::vector<TraceRecord>
readTraceText(std::istream &is)
{
    std::vector<TraceRecord> records;
    std::string line;
    std::uint64_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        unsigned cpu;
        char type;
        std::uint32_t pid;
        std::uint32_t vaddr;
        if (!(ls >> cpu >> type >> pid >> std::hex >> vaddr))
            fatal("malformed text trace at line ", lineno, ": '", line,
                  "'");
        TraceRecord r;
        r.cpu = static_cast<std::uint8_t>(cpu);
        r.type = typeFromLetter(type);
        r.pid = static_cast<std::uint16_t>(pid);
        r.vaddr = vaddr;
        records.push_back(r);
    }
    return records;
}

std::vector<TraceRecord>
readTraceDinero(std::istream &is, CpuId cpu, ProcessId pid)
{
    std::vector<TraceRecord> records;
    std::string line;
    std::uint64_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        unsigned label;
        std::uint32_t addr;
        if (!(ls >> label >> std::hex >> addr))
            fatal("malformed dinero record at line ", lineno, ": '",
                  line, "'");
        RefType type;
        switch (label) {
          case 0:
            type = RefType::Read;
            break;
          case 1:
            type = RefType::Write;
            break;
          case 2:
            type = RefType::Instr;
            break;
          default:
            fatal("unknown dinero label ", label, " at line ", lineno);
        }
        records.push_back(makeRef(cpu, type, pid, VirtAddr(addr)));
    }
    return records;
}

void
saveTrace(const std::string &path, const std::vector<TraceRecord> &records)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        fatal("cannot open trace file for writing: ", path);
    writeTraceBinary(os, records);
}

std::vector<TraceRecord>
loadTrace(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("cannot open trace file: ", path);
    return readTraceBinary(is);
}

} // namespace vrc
