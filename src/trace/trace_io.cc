#include "trace/trace_io.hh"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "base/fault.hh"
#include "base/log.hh"

namespace vrc
{

namespace
{

struct BinaryHeader
{
    std::uint32_t magic;
    std::uint32_t version;
    std::uint64_t count;
};

char
typeLetter(RefType t)
{
    switch (t) {
      case RefType::Instr:
        return 'I';
      case RefType::Read:
        return 'R';
      case RefType::Write:
        return 'W';
      case RefType::ContextSwitch:
        return 'S';
    }
    return '?';
}

/** Validate the type byte of every record in a freshly read batch. */
Result<std::vector<TraceRecord>>
validateRecords(std::vector<TraceRecord> records,
                const std::string &context)
{
    for (std::size_t i = 0; i < records.size(); ++i) {
        auto raw = static_cast<std::uint8_t>(records[i].type);
        if (raw > static_cast<std::uint8_t>(RefType::ContextSwitch))
            return makeErrorAt(ErrorKind::Parse, context, i + 1,
                               "bad reference type byte ",
                               unsigned{raw}, " in record ", i);
    }
    return records;
}

} // namespace

const char *
refTypeName(RefType t)
{
    switch (t) {
      case RefType::Instr:
        return "instr";
      case RefType::Read:
        return "read";
      case RefType::Write:
        return "write";
      case RefType::ContextSwitch:
        return "context-switch";
    }
    return "unknown";
}

Result<RefType>
refTypeFromLetter(char c)
{
    switch (c) {
      case 'I':
        return RefType::Instr;
      case 'R':
        return RefType::Read;
      case 'W':
        return RefType::Write;
      case 'S':
        return RefType::ContextSwitch;
      default:
        return makeError(ErrorKind::Parse,
                         "bad reference type letter '", c, "'");
    }
}

std::uint64_t
writeTraceBinary(std::ostream &os, const std::vector<TraceRecord> &records)
{
    BinaryHeader hdr{traceMagic, traceVersion, records.size()};
    os.write(reinterpret_cast<const char *>(&hdr), sizeof(hdr));
    os.write(reinterpret_cast<const char *>(records.data()),
             static_cast<std::streamsize>(records.size() *
                                          sizeof(TraceRecord)));
    return sizeof(hdr) + records.size() * sizeof(TraceRecord);
}

Result<std::vector<TraceRecord>>
tryReadTraceBinary(std::istream &is, const std::string &context)
{
    BinaryHeader hdr{};
    is.read(reinterpret_cast<char *>(&hdr), sizeof(hdr));
    if (!is)
        return makeErrorAt(ErrorKind::Parse, context, 0,
                           "not a vrc binary trace (truncated header)");
    if (hdr.magic != traceMagic)
        return makeErrorAt(ErrorKind::Format, context, 0,
                           "not a vrc binary trace (bad magic)");
    if (hdr.version != traceVersion)
        return makeErrorAt(ErrorKind::Format, context, 0,
                           "unsupported trace version ", hdr.version,
                           " (expected ", traceVersion, ")");

    // Check the claimed record count against the stream size *before*
    // allocating: a corrupt header must drive neither a huge
    // allocation nor a short read discovered only at the end.
    std::streampos pos = is.tellg();
    if (pos != std::streampos(-1)) {
        is.seekg(0, std::ios::end);
        std::streampos end = is.tellg();
        is.seekg(pos);
        if (is && end != std::streampos(-1)) {
            auto avail = static_cast<std::uint64_t>(end - pos);
            if (hdr.count > avail / sizeof(TraceRecord))
                return makeErrorAt(
                    ErrorKind::Bounds, context, 0,
                    "truncated trace body: header claims ", hdr.count,
                    " records but only ", avail, " bytes remain");
        }
    }

    // Read in bounded chunks so that even on a non-seekable stream a
    // bogus count cannot allocate more than one chunk past the data
    // that actually exists.
    constexpr std::uint64_t chunk = std::uint64_t{1} << 16;
    std::vector<TraceRecord> records;
    records.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(hdr.count, chunk)));
    std::uint64_t got = 0;
    while (got < hdr.count) {
        std::uint64_t want = std::min<std::uint64_t>(
            hdr.count - got, chunk);
        std::size_t base = records.size();
        records.resize(base + static_cast<std::size_t>(want));
        is.read(reinterpret_cast<char *>(records.data() + base),
                static_cast<std::streamsize>(want *
                                             sizeof(TraceRecord)));
        auto bytes = static_cast<std::uint64_t>(is.gcount());
        std::uint64_t read = bytes / sizeof(TraceRecord);
        got += read;
        if (!is && read < want)
            return makeErrorAt(ErrorKind::Bounds, context, 0,
                               "truncated trace body: expected ",
                               hdr.count, " records, got ", got);
    }
    return validateRecords(std::move(records), context);
}

std::vector<TraceRecord>
readTraceBinary(std::istream &is)
{
    return tryReadTraceBinary(is).orDie();
}

void
writeTraceText(std::ostream &os, const std::vector<TraceRecord> &records)
{
    for (const TraceRecord &r : records) {
        os << static_cast<unsigned>(r.cpu) << ' ' << typeLetter(r.type)
           << ' ' << r.pid << ' ' << std::hex << r.vaddr << std::dec
           << '\n';
    }
}

Result<std::vector<TraceRecord>>
tryReadTraceText(std::istream &is, const std::string &context)
{
    std::vector<TraceRecord> records;
    std::string line;
    std::uint64_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        unsigned cpu;
        char type;
        std::uint32_t pid;
        std::uint32_t vaddr;
        if (!(ls >> cpu >> type >> pid >> std::hex >> vaddr))
            return makeErrorAt(ErrorKind::Parse, context, lineno,
                               "malformed text trace record: '", line,
                               "'");
        if (cpu > 0xFF)
            return makeErrorAt(ErrorKind::Bounds, context, lineno,
                               "cpu ", cpu, " out of range (max 255)");
        if (pid > 0xFFFF)
            return makeErrorAt(ErrorKind::Bounds, context, lineno,
                               "pid ", pid,
                               " out of range (max 65535)");
        Result<RefType> t = refTypeFromLetter(type);
        if (!t) {
            Error e = t.error();
            e.message += " in text trace";
            e.context = context;
            e.line = lineno;
            return e;
        }
        TraceRecord r;
        r.cpu = static_cast<std::uint8_t>(cpu);
        r.type = t.value();
        r.pid = static_cast<std::uint16_t>(pid);
        r.vaddr = vaddr;
        records.push_back(r);
    }
    return records;
}

std::vector<TraceRecord>
readTraceText(std::istream &is)
{
    return tryReadTraceText(is).orDie();
}

Result<std::vector<TraceRecord>>
tryReadTraceDinero(std::istream &is, CpuId cpu, ProcessId pid,
                   const std::string &context)
{
    std::vector<TraceRecord> records;
    std::string line;
    std::uint64_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        unsigned label;
        std::uint32_t addr;
        if (!(ls >> label >> std::hex >> addr))
            return makeErrorAt(ErrorKind::Parse, context, lineno,
                               "malformed dinero record: '", line,
                               "'");
        RefType type;
        switch (label) {
          case 0:
            type = RefType::Read;
            break;
          case 1:
            type = RefType::Write;
            break;
          case 2:
            type = RefType::Instr;
            break;
          default:
            return makeErrorAt(ErrorKind::Parse, context, lineno,
                               "unknown dinero label ", label);
        }
        records.push_back(makeRef(cpu, type, pid, VirtAddr(addr)));
    }
    return records;
}

std::vector<TraceRecord>
readTraceDinero(std::istream &is, CpuId cpu, ProcessId pid)
{
    return tryReadTraceDinero(is, cpu, pid).orDie();
}

void
saveTrace(const std::string &path, const std::vector<TraceRecord> &records)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        fatal("cannot open trace file for writing: ", path);
    writeTraceBinary(os, records);
}

Result<std::vector<TraceRecord>>
tryLoadTrace(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return makeError(ErrorKind::Io,
                         "cannot open trace file: ", path);
    if (faultsArmed()) {
        // Route the raw bytes through the injector, then parse the
        // (possibly corrupted) copy.
        std::ostringstream buf;
        buf << is.rdbuf();
        std::string bytes = buf.str();
        injectInputFaults("trace", path, bytes);
        std::istringstream in(bytes);
        return tryReadTraceBinary(in, path);
    }
    return tryReadTraceBinary(is, path);
}

std::vector<TraceRecord>
loadTrace(const std::string &path)
{
    return tryLoadTrace(path).orDie();
}

} // namespace vrc
