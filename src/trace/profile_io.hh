/**
 * @file
 * Workload profile file I/O.
 *
 * Profiles are stored as plain "key = value" text so users can define
 * custom workloads for the CLI tools without recompiling. All keys are
 * optional; unset keys keep the default-constructed value. Unknown
 * keys are errors (they are always typos). The format round-trips:
 * saveProfile followed by loadProfile reproduces the profile exactly.
 *
 *     name = mywork
 *     num_cpus = 4
 *     total_refs = 1000000
 *     instr_frac = 0.5
 *     data_levels = 1024:0.5, 8192:0.3, 262144:0.2
 *     ...
 *
 * The `try*` readers report malformed lines, unknown keys, and
 * unparsable values as a Result with line context; the legacy entry
 * points wrap them with fatal() for the CLI tools.
 */

#ifndef VRC_TRACE_PROFILE_IO_HH
#define VRC_TRACE_PROFILE_IO_HH

#include <iosfwd>
#include <string>

#include "base/error.hh"
#include "trace/workload.hh"

namespace vrc
{

/** Serialize a profile (all fields, commented sections). */
void writeProfile(std::ostream &os, const WorkloadProfile &p);

/**
 * Parse a profile from a default-constructed WorkloadProfile.
 * Malformed lines, unknown keys, and bad values are Parse errors
 * carrying the 1-based line number and @p context.
 */
Result<WorkloadProfile>
tryReadProfile(std::istream &is,
               const std::string &context = "<stream>");

/** Legacy wrapper: fatal() on any tryReadProfile() error. */
WorkloadProfile readProfile(std::istream &is);

/** Write a profile file. fatal() when the file cannot be opened. */
void saveProfile(const std::string &path, const WorkloadProfile &p);

/**
 * Read and validate a profile file; a missing file is an Io error.
 * Under --inject-faults the loaded bytes pass through the fault
 * injector before parsing.
 */
Result<WorkloadProfile> tryLoadProfile(const std::string &path);

/** Legacy wrapper: fatal() on any tryLoadProfile() error. */
WorkloadProfile loadProfile(const std::string &path);

} // namespace vrc

#endif // VRC_TRACE_PROFILE_IO_HH
