/**
 * @file
 * Workload profile file I/O.
 *
 * Profiles are stored as plain "key = value" text so users can define
 * custom workloads for the CLI tools without recompiling. All keys are
 * optional; unset keys keep the default-constructed value. Unknown
 * keys are fatal (they are always typos). The format round-trips:
 * saveProfile followed by loadProfile reproduces the profile exactly.
 *
 *     name = mywork
 *     num_cpus = 4
 *     total_refs = 1000000
 *     instr_frac = 0.5
 *     data_levels = 1024:0.5, 8192:0.3, 262144:0.2
 *     ...
 */

#ifndef VRC_TRACE_PROFILE_IO_HH
#define VRC_TRACE_PROFILE_IO_HH

#include <iosfwd>
#include <string>

#include "trace/workload.hh"

namespace vrc
{

/** Serialize a profile (all fields, commented sections). */
void writeProfile(std::ostream &os, const WorkloadProfile &p);

/**
 * Parse a profile. Starts from a default-constructed WorkloadProfile.
 * fatal() on malformed lines or unknown keys.
 */
WorkloadProfile readProfile(std::istream &is);

/** File wrappers; fatal() when the file cannot be opened. */
void saveProfile(const std::string &path, const WorkloadProfile &p);
WorkloadProfile loadProfile(const std::string &path);

} // namespace vrc

#endif // VRC_TRACE_PROFILE_IO_HH
