/**
 * @file
 * Tuned workload profiles for the three paper traces.
 *
 * Targets, from Table 5 of the paper:
 *
 *   trace   cpus  total   instr  read   write  switches
 *   thor    4     3283k   1517k  1390k  376k   21
 *   pops    4     3286k   1718k  1285k  283k   7
 *   abaqus  2     1196k   514k   600k   82k    292
 *
 * pops is the procedure-call-heavy benchmark the paper dissects in
 * Tables 1-3 (30% of its writes come from calls of ~6+ writes each).
 * abaqus context-switches more than an order of magnitude more often
 * per reference than the other two, which is what drives the V-R vs R-R
 * differences in Table 6 / Figure 6.
 */

#include "trace/workload.hh"

#include "base/log.hh"

namespace vrc
{

WorkloadProfile
thorProfile()
{
    WorkloadProfile p;
    p.name = "thor";
    p.numCpus = 4;
    p.totalRefs = 3'283'000;
    p.instrFrac = 0.462;  // 1517/3283
    p.readFrac = 0.423;   // 1390/3283
    p.writeFrac = 0.115;  // 376/3283
    p.contextSwitches = 21;
    p.processesPerCpu = 2;

    p.procCount = 112;
    p.procZipfTheta = 1.45;
    p.callProb = 0.008;
    p.returnProb = 0.008;
    p.loopBackProb = 0.22;
    p.loopSpanBytes = 128;
    p.callWritesMin = 6;
    p.callWritesMax = 11;

    p.stackReadFrac = 0.28;
    p.repeatFrac = 0.32;
    p.seqFrac = 0.30;
    p.dataLevels = {{1 << 10, 0.68}, {4 << 10, 0.14}, {16 << 10, 0.09},
                    {64 << 10, 0.038}, {256 << 10, 0.027}, {1 << 20, 0.025}};
    p.sharedPages = 24;
    p.sharedFrac = 0.095;
    p.sharedWriteFrac = 0.50;
    p.hotspotFrac = 0.045;
    p.aliasFrac = 0.10;
    p.seed = 0x7407;
    return p;
}

WorkloadProfile
popsProfile()
{
    WorkloadProfile p;
    p.name = "pops";
    p.numCpus = 4;
    p.totalRefs = 3'286'000;
    p.instrFrac = 0.523;  // 1718/3286
    p.readFrac = 0.391;   // 1285/3286
    p.writeFrac = 0.086;  // 283/3286
    p.contextSwitches = 7;
    p.processesPerCpu = 2;

    // pops: ~30% of writes come from procedure calls averaging ~8 writes.
    p.procCount = 128;
    p.procZipfTheta = 1.40;
    p.callProb = 0.0062;
    p.returnProb = 0.0062;
    p.loopBackProb = 0.21;
    p.loopSpanBytes = 128;
    p.callWritesMin = 6;
    p.callWritesMax = 12;

    p.stackReadFrac = 0.26;
    p.repeatFrac = 0.30;
    p.seqFrac = 0.28;
    p.dataLevels = {{1 << 10, 0.62}, {4 << 10, 0.17}, {16 << 10, 0.11},
                    {64 << 10, 0.045}, {256 << 10, 0.030}, {1 << 20, 0.025}};
    p.sharedPages = 32;
    p.sharedFrac = 0.100;
    p.sharedWriteFrac = 0.50;
    p.hotspotFrac = 0.045;
    p.aliasFrac = 0.10;
    p.seed = 0x9095;
    return p;
}

WorkloadProfile
abaqusProfile()
{
    WorkloadProfile p;
    p.name = "abaqus";
    p.numCpus = 2;
    p.totalRefs = 1'196'000;
    p.instrFrac = 0.430;  // 514/1196
    p.readFrac = 0.502;   // 600/1196
    p.writeFrac = 0.068;  // 82/1196
    p.contextSwitches = 292;
    p.processesPerCpu = 2;

    p.procCount = 80;
    p.procZipfTheta = 1.35;
    p.callProb = 0.005;
    p.returnProb = 0.005;
    p.loopBackProb = 0.20;
    p.loopSpanBytes = 128;
    p.callWritesMin = 6;
    p.callWritesMax = 10;

    // Engineering code: larger, flatter data working sets (lower h1).
    p.stackReadFrac = 0.20;
    p.repeatFrac = 0.26;
    p.seqFrac = 0.42; // engineering code streams through arrays
    p.dataLevels = {{1 << 10, 0.52}, {8 << 10, 0.25}, {32 << 10, 0.11},
                    {128 << 10, 0.06}, {512 << 10, 0.035}, {2 << 20, 0.025}};
    p.sharedPages = 48;
    p.sharedFrac = 0.120;
    p.sharedWriteFrac = 0.45;
    p.hotspotFrac = 0.032;
    p.aliasFrac = 0.12;
    p.seed = 0xABA9;
    return p;
}

WorkloadProfile
profileByName(const std::string &name)
{
    if (name == "pops")
        return popsProfile();
    if (name == "thor")
        return thorProfile();
    if (name == "abaqus")
        return abaqusProfile();
    fatal("unknown workload profile: ", name,
          " (expected pops, thor or abaqus)");
}

std::vector<WorkloadProfile>
paperProfiles()
{
    return {thorProfile(), popsProfile(), abaqusProfile()};
}

WorkloadProfile
scaled(WorkloadProfile p, double factor)
{
    panicIfNot(factor > 0.0, "scale factor must be positive");
    p.totalRefs = static_cast<std::uint64_t>(
        static_cast<double>(p.totalRefs) * factor);
    if (p.totalRefs < 1000)
        p.totalRefs = 1000;
    p.contextSwitches = static_cast<std::uint32_t>(
        static_cast<double>(p.contextSwitches) * factor + 0.5);
    return p;
}

} // namespace vrc
