#include "trace/trace_stats.hh"

#include <algorithm>
#include <unordered_set>

namespace vrc
{

TraceCharacteristics
characterize(const std::vector<TraceRecord> &records)
{
    TraceCharacteristics c;
    std::unordered_set<std::uint16_t> pids;
    for (const TraceRecord &r : records) {
        pids.insert(r.pid);
        if (r.cpu >= c.refsPerCpu.size())
            c.refsPerCpu.resize(r.cpu + 1, 0);
        switch (r.type) {
          case RefType::Instr:
            c.instrCount += 1;
            break;
          case RefType::Read:
            c.dataReads += 1;
            break;
          case RefType::Write:
            c.dataWrites += 1;
            break;
          case RefType::ContextSwitch:
            c.contextSwitches += 1;
            break;
        }
        if (r.isMemRef()) {
            c.totalRefs += 1;
            c.refsPerCpu[r.cpu] += 1;
        }
    }
    c.numCpus = static_cast<std::uint32_t>(c.refsPerCpu.size());
    c.processCount = static_cast<std::uint32_t>(pids.size());
    return c;
}

} // namespace vrc
