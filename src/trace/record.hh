/**
 * @file
 * Memory-reference trace records.
 *
 * The simulator is trace-driven, like the paper's (which used ATUM VAX
 * multiprocessor traces). A trace is a time-interleaved sequence of
 * records; each record is either a memory reference (instruction fetch,
 * data read, data write) made by one CPU in one process's address space,
 * or a context-switch marker installing a new process on a CPU.
 */

#ifndef VRC_TRACE_RECORD_HH
#define VRC_TRACE_RECORD_HH

#include <cstdint>

#include "base/addr.hh"
#include "base/types.hh"

namespace vrc
{

/** Kind of a trace record. */
enum class RefType : std::uint8_t
{
    Instr = 0,        ///< instruction fetch
    Read = 1,         ///< data read
    Write = 2,        ///< data write
    ContextSwitch = 3 ///< process switch on this CPU (vaddr unused)
};

/** Printable name of a reference type. */
const char *refTypeName(RefType t);

/** One trace record (8 bytes packed). */
struct TraceRecord
{
    std::uint32_t vaddr = 0;  ///< virtual byte address (or 0 for switches)
    std::uint16_t pid = 0;    ///< active process (new process for switches)
    std::uint8_t cpu = 0;     ///< issuing CPU
    RefType type = RefType::Instr;

    /** True for instruction/read/write records. */
    bool
    isMemRef() const
    {
        return type != RefType::ContextSwitch;
    }

    /** True for data reads and writes. */
    bool
    isData() const
    {
        return type == RefType::Read || type == RefType::Write;
    }

    /** The virtual address as a strong type. */
    VirtAddr va() const { return VirtAddr(vaddr); }

    bool operator==(const TraceRecord &) const = default;
};

static_assert(sizeof(TraceRecord) == 8, "TraceRecord should stay compact");

/** Convenience constructors. */
inline TraceRecord
makeRef(CpuId cpu, RefType type, ProcessId pid, VirtAddr va)
{
    return TraceRecord{va.value(), static_cast<std::uint16_t>(pid),
                       static_cast<std::uint8_t>(cpu), type};
}

inline TraceRecord
makeContextSwitch(CpuId cpu, ProcessId new_pid)
{
    return TraceRecord{0, static_cast<std::uint16_t>(new_pid),
                       static_cast<std::uint8_t>(cpu),
                       RefType::ContextSwitch};
}

} // namespace vrc

#endif // VRC_TRACE_RECORD_HH
