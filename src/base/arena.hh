/**
 * @file
 * Bump-pointer arena for per-CPU simulator state.
 *
 * A hierarchy owns one Arena and carves all of its tag-store arrays out
 * of it, so the metadata one CPU touches on every reference sits in one
 * contiguous region instead of wherever the global allocator scattered
 * it. Allocation is append-only: nothing is ever freed individually and
 * everything is released when the arena dies, which is exactly the
 * lifetime of the owning hierarchy.
 */

#ifndef VRC_BASE_ARENA_HH
#define VRC_BASE_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "base/log.hh"

namespace vrc
{

/** Append-only bump allocator; frees everything at once on destruction. */
class Arena
{
  public:
    /** @param chunk_bytes granularity of the backing allocations */
    explicit Arena(std::size_t chunk_bytes = 1u << 16)
        : _chunkBytes(chunk_bytes)
    {
    }

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /**
     * Allocate @p bytes aligned to @p align (a power of two). The
     * memory is zero-filled and stays valid for the arena's lifetime.
     */
    void *
    allocate(std::size_t bytes, std::size_t align)
    {
        panicIfNot(align != 0 && (align & (align - 1)) == 0,
                   "arena alignment must be a power of two");
        std::uintptr_t p = (_cursor + (align - 1)) & ~(align - 1);
        if (_cursor == 0 || p + bytes > _limit) {
            std::size_t need = bytes + align;
            std::size_t size = need > _chunkBytes ? need : _chunkBytes;
            // for_overwrite: skip make_unique's value-initialization,
            // the chunk is zeroed exactly once by the memset below.
            _chunks.push_back(
                std::make_unique_for_overwrite<std::byte[]>(size));
            std::memset(_chunks.back().get(), 0, size);
            _cursor = reinterpret_cast<std::uintptr_t>(_chunks.back().get());
            _limit = _cursor + size;
            _allocated += size;
            p = (_cursor + (align - 1)) & ~(align - 1);
        }
        _cursor = p + bytes;
        return reinterpret_cast<void *>(p);
    }

    /** Typed array allocation; T must be trivially destructible. */
    template <typename T>
    T *
    allocArray(std::size_t n)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena memory is never destructed");
        return static_cast<T *>(allocate(n * sizeof(T), alignof(T)));
    }

    /** Total bytes of backing storage acquired so far. */
    std::size_t allocatedBytes() const { return _allocated; }

  private:
    std::size_t _chunkBytes;
    std::vector<std::unique_ptr<std::byte[]>> _chunks;
    std::uintptr_t _cursor = 0;
    std::uintptr_t _limit = 0;
    std::size_t _allocated = 0;
};

} // namespace vrc

#endif // VRC_BASE_ARENA_HH
