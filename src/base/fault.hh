/**
 * @file
 * Deterministic, seed-driven fault injection (the VRC_FAULTS option).
 *
 * A recovery path that is never exercised is indistinguishable from
 * one that is broken. When the library is configured with
 * -DVRC_FAULTS=ON, the input loaders and the campaign engine carry
 * hooks that -- once armed with a seed -- corrupt or truncate loaded
 * bytes, throw from campaign cells, and stall cells long enough to
 * trip the watchdog. Every decision is a pure hash of
 * (seed, site, keys), so a fault schedule is reproducible from its
 * spec string alone, independent of thread scheduling:
 *
 *     --inject-faults="seed=7,corrupt=0.1,throw=0.3,stall=0.2,stall_ms=300"
 *
 * Mirrors VRC_CHECK: compiled out entirely when the option is OFF
 * (the hooks collapse to constant-false inlines); when compiled in
 * but not armed, each hook is a single branch on a bool.
 *
 * Arming is process-wide and intended to happen once, from the CLI,
 * before any worker threads start.
 */

#ifndef VRC_BASE_FAULT_HH
#define VRC_BASE_FAULT_HH

#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>

#include "base/cancel.hh"
#include "base/error.hh"

namespace vrc
{

/** What to inject, with what probability. All off by default. */
struct FaultConfig
{
    std::uint64_t seed = 0;     ///< 0 = disarmed
    double corrupt = 0.0;       ///< P(flip bytes in a loaded input)
    double truncate = 0.0;      ///< P(truncate a loaded input)
    double throwProb = 0.0;     ///< P(a campaign cell attempt throws)
    double stall = 0.0;         ///< P(a campaign cell attempt stalls)
    double stallSeconds = 0.25; ///< injected stall length

    // Service-path faults (vrc-sim --serve): exercised by the soak
    // script so the server's client-retry story is tested, not told.
    double connDrop = 0.0;  ///< P(drop the connection after a response)
    double frameTear = 0.0; ///< P(tear a response frame mid-write, then drop)

    // Shard-layer faults (vrc-sim --shard-worker): the distributed
    // sweep's chaos knobs. Armed in the *worker* process; keyed by
    // (cell, dispatch attempt) so a cell that crashed or stalled one
    // dispatch completes on the speculative or retry dispatch.
    double workerCrash = 0.0; ///< P(worker _exit()s before a cell)
    double workerStall = 0.0; ///< P(worker freezes, heartbeats muted)
    double replyTear = 0.0;   ///< P(CELL_RESULT torn mid-write + exit)
};

/** Verdict of the shard-layer injector for one (cell, attempt). */
enum class ShardFaultKind : std::uint8_t
{
    None,  ///< run the cell normally
    Crash, ///< _exit() without a word (SIGKILL-alike)
    Stall, ///< stop heartbeating and sleep through the deadline
    Tear,  ///< write half a CELL_RESULT frame, then _exit()
};

/** Verdict of the service-path injector for one response frame. */
enum class ServeFault : std::uint8_t
{
    None, ///< deliver the frame normally
    Drop, ///< deliver it, then close the connection
    Tear, ///< write only a prefix of the frame, then close
};

/** Exception thrown by an injected cell fault. */
class InjectedFault : public ErrorException
{
  public:
    explicit InjectedFault(const std::string &what)
        : ErrorException(makeError(ErrorKind::Injected, what))
    {
    }
};

/**
 * Exception raised when the simulated hardware hits an uncorrectable
 * soft error it cannot recover from (a dirty line with detected-corrupt
 * array bits, or a bus transaction lost beyond the retry budget): the
 * machine-check semantics. The campaign layer quarantines the cell like
 * any other worker error; interactive tools report and exit.
 */
class FaultUnrecoverable : public ErrorException
{
  public:
    explicit FaultUnrecoverable(const std::string &what)
        : ErrorException(makeError(ErrorKind::Unrecoverable, what))
    {
    }
};

/**
 * Hash helpers shared by the campaign injector and the soft-error
 * model. Always compiled (either subsystem may be enabled alone).
 */
namespace fault_detail
{

inline std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

inline std::uint64_t
hashSite(const char *site)
{
    std::uint64_t h = 0xcbf29ce484222325ull; // FNV-1a
    for (const char *p = site; *p; ++p)
        h = (h ^ static_cast<unsigned char>(*p)) *
            0x100000001b3ull;
    return h;
}

} // namespace fault_detail

#ifdef VRC_FAULTS_ENABLED

/** True when the hooks are compiled in (VRC_FAULTS=ON). */
inline constexpr bool
faultsCompiledIn()
{
    return true;
}

/** Process-wide injector configuration. */
inline FaultConfig &
faultConfig()
{
    static FaultConfig cfg;
    return cfg;
}

/** True when a nonzero seed armed the injector. */
inline bool
faultsArmed()
{
    return faultConfig().seed != 0;
}

/**
 * Deterministic verdict for one potential fault: true with
 * probability @p p, as a pure function of (seed, site, a, b).
 */
inline bool
faultDecision(const char *site, std::uint64_t a, std::uint64_t b,
              double p)
{
    if (p <= 0.0 || !faultsArmed())
        return false;
    std::uint64_t h = fault_detail::splitmix64(
        faultConfig().seed ^ fault_detail::hashSite(site) ^
        fault_detail::splitmix64(a * 2 + 1) ^
        fault_detail::splitmix64(~b));
    double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    return u < p;
}

/**
 * Possibly corrupt or truncate freshly loaded input bytes, keyed by
 * the input's context string (its path). The corruption itself is
 * deterministic: which bytes flip and where the cut lands are drawn
 * from the same hash stream as the verdict.
 */
inline void
injectInputFaults(const char *what, const std::string &context,
                  std::string &bytes)
{
    if (!faultsArmed() || bytes.empty())
        return;
    std::uint64_t key = fault_detail::hashSite(context.c_str());
    if (faultDecision("input-truncate", key, bytes.size(),
                      faultConfig().truncate)) {
        std::size_t cut =
            fault_detail::splitmix64(key ^ 0x7457) % bytes.size();
        warn("fault injection: truncating ", what, " '", context,
             "' to ", cut, " of ", bytes.size(), " bytes");
        bytes.resize(cut);
        return;
    }
    if (faultDecision("input-corrupt", key, bytes.size(),
                      faultConfig().corrupt)) {
        std::uint64_t h = fault_detail::splitmix64(key ^ 0xC0DE);
        unsigned flips = 1 + h % 8;
        warn("fault injection: flipping ", flips, " bytes of ", what,
             " '", context, "'");
        for (unsigned i = 0; i < flips; ++i) {
            h = fault_detail::splitmix64(h);
            bytes[h % bytes.size()] ^=
                static_cast<char>(0x01 | (h >> 32));
        }
    }
}

/**
 * Possibly throw InjectedFault or stall (cancellably) before a
 * campaign cell attempt runs. Keyed by (cell, attempt) so a cell that
 * fails on one attempt can succeed on the retry.
 */
inline void
maybeInjectCellFault(std::size_t cell, unsigned attempt,
                     const CancelToken &token)
{
    if (!faultsArmed())
        return;
    if (faultDecision("cell-stall", cell, attempt,
                      faultConfig().stall)) {
        warn("fault injection: stalling cell ", cell, " attempt ",
             attempt, " for ", faultConfig().stallSeconds, " s");
        token.sleepFor(faultConfig().stallSeconds);
    }
    if (faultDecision("cell-throw", cell, attempt,
                      faultConfig().throwProb)) {
        std::ostringstream os;
        os << "injected worker exception in cell " << cell
           << " (attempt " << attempt << ")";
        throw InjectedFault(os.str());
    }
}

/**
 * Service-path verdict for one response frame, keyed by (session,
 * frame sequence) so a resubmitted segment meets a fresh decision.
 * Tear wins over Drop when both fire (it is the nastier failure).
 */
inline ServeFault
maybeInjectServeFault(std::uint64_t session, std::uint64_t seq)
{
    if (!faultsArmed())
        return ServeFault::None;
    if (faultDecision("serve-tear", session, seq,
                      faultConfig().frameTear))
        return ServeFault::Tear;
    if (faultDecision("serve-drop", session, seq,
                      faultConfig().connDrop))
        return ServeFault::Drop;
    return ServeFault::None;
}

/**
 * Shard-layer verdict for one cell attempt, evaluated in the worker
 * just before the cell runs. Crash wins over Stall wins over Tear
 * when several fire (crash needs no cooperation from the cell).
 */
inline ShardFaultKind
maybeInjectShardFault(std::uint64_t cell, std::uint64_t attempt)
{
    if (!faultsArmed())
        return ShardFaultKind::None;
    if (faultDecision("shard-crash", cell, attempt,
                      faultConfig().workerCrash))
        return ShardFaultKind::Crash;
    if (faultDecision("shard-stall", cell, attempt,
                      faultConfig().workerStall))
        return ShardFaultKind::Stall;
    if (faultDecision("shard-tear", cell, attempt,
                      faultConfig().replyTear))
        return ShardFaultKind::Tear;
    return ShardFaultKind::None;
}

/**
 * Arm the injector from a spec string:
 * "seed=N[,corrupt=P][,truncate=P][,throw=P][,stall=P][,stall_ms=M]
 *  [,drop=P][,tear=P][,worker-crash=P][,worker-stall=P][,reply-tear=P]".
 * A bare number is shorthand for "seed=N" with default probabilities
 * (throw/stall/corrupt all 0.25).
 */
inline Status
configureFaultInjection(const std::string &spec)
{
    FaultConfig cfg;
    bool any_prob = false;
    std::istringstream is(spec);
    std::string item;
    while (std::getline(is, item, ',')) {
        if (item.empty())
            continue;
        std::size_t eq = item.find('=');
        std::string key =
            eq == std::string::npos ? item : item.substr(0, eq);
        std::string val =
            eq == std::string::npos ? "" : item.substr(eq + 1);
        char *end = nullptr;
        if (eq == std::string::npos &&
            (cfg.seed = std::strtoull(key.c_str(), &end, 10),
             end && *end == '\0' && cfg.seed)) {
            continue; // bare "--inject-faults=7"
        }
        double num = std::strtod(val.c_str(), &end);
        if (val.empty() || !end || *end != '\0')
            return makeError(ErrorKind::Parse,
                             "bad fault spec entry '", item,
                             "' (expected key=number)");
        if (key == "seed") {
            cfg.seed = static_cast<std::uint64_t>(num);
        } else if (key == "corrupt") {
            cfg.corrupt = num;
            any_prob = true;
        } else if (key == "truncate") {
            cfg.truncate = num;
            any_prob = true;
        } else if (key == "throw") {
            cfg.throwProb = num;
            any_prob = true;
        } else if (key == "stall") {
            cfg.stall = num;
            any_prob = true;
        } else if (key == "stall_ms") {
            cfg.stallSeconds = num / 1000.0;
        } else if (key == "drop") {
            cfg.connDrop = num;
            any_prob = true;
        } else if (key == "tear") {
            cfg.frameTear = num;
            any_prob = true;
        } else if (key == "worker-crash") {
            cfg.workerCrash = num;
            any_prob = true;
        } else if (key == "worker-stall") {
            cfg.workerStall = num;
            any_prob = true;
        } else if (key == "reply-tear") {
            cfg.replyTear = num;
            any_prob = true;
        } else {
            return makeError(ErrorKind::Parse,
                             "unknown fault spec key '", key, "'");
        }
    }
    if (!cfg.seed)
        return makeError(ErrorKind::Parse,
                         "fault spec needs a nonzero seed: '", spec,
                         "'");
    if (!any_prob)
        cfg.corrupt = cfg.throwProb = cfg.stall = 0.25;
    faultConfig() = cfg;
    return okStatus();
}

/** Disarm (tests). */
inline void
disarmFaultInjection()
{
    faultConfig() = FaultConfig{};
}

#else // !VRC_FAULTS_ENABLED

inline constexpr bool
faultsCompiledIn()
{
    return false;
}

inline constexpr bool
faultsArmed()
{
    return false;
}

inline constexpr bool
faultDecision(const char *, std::uint64_t, std::uint64_t, double)
{
    return false;
}

inline void
injectInputFaults(const char *, const std::string &, std::string &)
{
}

inline void
maybeInjectCellFault(std::size_t, unsigned, const CancelToken &)
{
}

inline constexpr ServeFault
maybeInjectServeFault(std::uint64_t, std::uint64_t)
{
    return ServeFault::None;
}

inline constexpr ShardFaultKind
maybeInjectShardFault(std::uint64_t, std::uint64_t)
{
    return ShardFaultKind::None;
}

inline Status
configureFaultInjection(const std::string &)
{
    return makeError(ErrorKind::Io,
                     "fault injection is not compiled in "
                     "(reconfigure with -DVRC_FAULTS=ON)");
}

inline void
disarmFaultInjection()
{
}

#endif // VRC_FAULTS_ENABLED

// ===== soft errors inside the simulated hardware (VRC_SOFT_ERRORS) ===
//
// A second, independent fault domain: where the campaign injector above
// attacks the *experiment harness* (inputs, workers), the soft-error
// model attacks the *simulated machine* -- tag arrays, coherence-state
// bits, r-/v-pointer metadata and in-flight bus transactions. The
// scheduling discipline is identical: every strike is a pure hash of
// (seed, site, keys), so a schedule reproduces from its spec string at
// any --jobs count, and an unarmed run takes one branch per reference.

/** Strike probabilities per fault site. All off by default. */
struct SoftErrorConfig
{
    std::uint64_t seed = 0; ///< 0 = disarmed
    double tag = 0.0;       ///< P(strike a level-1 tag array) per ref
    double state = 0.0;     ///< P(strike a level-2 state array) per ref
    double ptr = 0.0;       ///< P(strike r-/v-pointer metadata) per ref
    double bus = 0.0;       ///< P(one bus broadcast attempt is lost)
    unsigned busRetryLimit = 4; ///< lost attempts before machine check
};

#ifdef VRC_SOFT_ERRORS_ENABLED

/** True when the soft-error model is compiled in. */
inline constexpr bool
softErrorsCompiledIn()
{
    return true;
}

/** Process-wide soft-error configuration. */
inline SoftErrorConfig &
softErrorConfig()
{
    static SoftErrorConfig cfg;
    return cfg;
}

/** True when a nonzero seed armed the soft-error model. */
inline bool
softErrorsArmed()
{
    return softErrorConfig().seed != 0;
}

/** Pure strike-parameter hash of (seed, site, a, b). */
inline std::uint64_t
softErrorHash(const char *site, std::uint64_t a, std::uint64_t b)
{
    return fault_detail::splitmix64(
        softErrorConfig().seed ^ fault_detail::hashSite(site) ^
        fault_detail::splitmix64(a * 2 + 1) ^
        fault_detail::splitmix64(~b));
}

/**
 * Deterministic strike verdict: true with probability @p p as a pure
 * function of (seed, site, a, b) -- thread- and schedule-independent.
 */
inline bool
softErrorDecision(const char *site, std::uint64_t a, std::uint64_t b,
                  double p)
{
    if (p <= 0.0 || !softErrorsArmed())
        return false;
    double u =
        static_cast<double>(softErrorHash(site, a, b) >> 11) * 0x1.0p-53;
    return u < p;
}

/**
 * Flip count of one strike, drawn from the same hash stream: single-bit
 * upsets dominate real soft-error data; one strike in eight flips two
 * adjacent bits (defeating SECDED correction, aliasing past parity).
 */
inline unsigned
softErrorFlips(std::uint64_t h)
{
    return (h >> 17) % 8 == 0 ? 2 : 1;
}

/**
 * Arm the soft-error model from a spec string:
 * "seed=N[,tag=P][,state=P][,ptr=P][,bus=P][,retry=N]".
 * A bare number is shorthand for "seed=N" with default probabilities
 * (tag/state/ptr 1e-3, bus 1e-4).
 */
inline Status
configureSoftErrors(const std::string &spec)
{
    SoftErrorConfig cfg;
    bool any_prob = false;
    std::istringstream is(spec);
    std::string item;
    while (std::getline(is, item, ',')) {
        if (item.empty())
            continue;
        std::size_t eq = item.find('=');
        std::string key =
            eq == std::string::npos ? item : item.substr(0, eq);
        std::string val =
            eq == std::string::npos ? "" : item.substr(eq + 1);
        char *end = nullptr;
        if (eq == std::string::npos &&
            (cfg.seed = std::strtoull(key.c_str(), &end, 10),
             end && *end == '\0' && cfg.seed)) {
            continue; // bare "--soft-errors=7"
        }
        double num = std::strtod(val.c_str(), &end);
        if (val.empty() || !end || *end != '\0')
            return makeError(ErrorKind::Parse,
                             "bad soft-error spec entry '", item,
                             "' (expected key=number)");
        if (key == "seed") {
            cfg.seed = static_cast<std::uint64_t>(num);
        } else if (key == "tag") {
            cfg.tag = num;
            any_prob = true;
        } else if (key == "state") {
            cfg.state = num;
            any_prob = true;
        } else if (key == "ptr") {
            cfg.ptr = num;
            any_prob = true;
        } else if (key == "bus") {
            cfg.bus = num;
            any_prob = true;
        } else if (key == "retry") {
            cfg.busRetryLimit = static_cast<unsigned>(num);
        } else {
            return makeError(ErrorKind::Parse,
                             "unknown soft-error spec key '", key, "'");
        }
    }
    if (!cfg.seed)
        return makeError(ErrorKind::Parse,
                         "soft-error spec needs a nonzero seed: '",
                         spec, "'");
    if (!any_prob) {
        cfg.tag = cfg.state = cfg.ptr = 1e-3;
        cfg.bus = 1e-4;
    }
    softErrorConfig() = cfg;
    return okStatus();
}

/** Disarm (tests). */
inline void
disarmSoftErrors()
{
    softErrorConfig() = SoftErrorConfig{};
}

#else // !VRC_SOFT_ERRORS_ENABLED

inline constexpr bool
softErrorsCompiledIn()
{
    return false;
}

inline const SoftErrorConfig &
softErrorConfig()
{
    static const SoftErrorConfig cfg;
    return cfg;
}

inline constexpr bool
softErrorsArmed()
{
    return false;
}

inline constexpr std::uint64_t
softErrorHash(const char *, std::uint64_t, std::uint64_t)
{
    return 0;
}

inline constexpr bool
softErrorDecision(const char *, std::uint64_t, std::uint64_t, double)
{
    return false;
}

inline constexpr unsigned
softErrorFlips(std::uint64_t)
{
    return 1;
}

inline Status
configureSoftErrors(const std::string &)
{
    return makeError(ErrorKind::Io,
                     "the soft-error model is not compiled in "
                     "(reconfigure with -DVRC_SOFT_ERRORS=ON)");
}

inline void
disarmSoftErrors()
{
}

#endif // VRC_SOFT_ERRORS_ENABLED

} // namespace vrc

#endif // VRC_BASE_FAULT_HH
