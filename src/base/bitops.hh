/**
 * @file
 * Small bit-manipulation helpers used by cache geometry computations.
 */

#ifndef VRC_BASE_BITOPS_HH
#define VRC_BASE_BITOPS_HH

#include <bit>
#include <cstdint>

namespace vrc
{

/** True iff @p v is a (nonzero) power of two. */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/**
 * Floor of log base 2.
 *
 * @pre v > 0
 */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    return 63 - std::countl_zero(v);
}

/**
 * Exact log base 2.
 *
 * @pre v is a power of two
 */
constexpr unsigned
log2Exact(std::uint64_t v)
{
    return floorLog2(v);
}

/** Round @p v up to the next power of two (identity on powers of two). */
constexpr std::uint64_t
ceilPowerOfTwo(std::uint64_t v)
{
    return std::bit_ceil(v);
}

/** Mask with the low @p n bits set. */
constexpr std::uint64_t
lowMask(unsigned n)
{
    return n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
}

} // namespace vrc

#endif // VRC_BASE_BITOPS_HH
