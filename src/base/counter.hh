/**
 * @file
 * Named statistics counters.
 *
 * A tiny stats package: modules register named counters in a StatGroup;
 * experiments snapshot or print them. Far simpler than gem5's stats but
 * the same shape: stats live with the module that increments them.
 */

#ifndef VRC_BASE_COUNTER_HH
#define VRC_BASE_COUNTER_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace vrc
{

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    void operator++() { ++_value; }
    void operator++(int) { ++_value; }
    void operator+=(std::uint64_t n) { _value += n; }

    std::uint64_t value() const { return _value; }
    void reset() { _value = 0; }

  private:
    std::uint64_t _value = 0;
};

/**
 * A map of named counters. Modules own one, register counters up front,
 * and the simulator aggregates groups for reporting.
 *
 * Registered-handle contract: counter() returns a reference that stays
 * valid for the lifetime of the group (node-based map, no rehashing).
 * Hot-path code must resolve its handles once at construction and
 * increment through them; string-keyed lookups are for registration and
 * reporting only.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : _name(std::move(name)) {}

    /** Fetch (creating on first use) the counter called @p key. */
    Counter &
    counter(const std::string &key)
    {
        return _counters[key];
    }

    /**
     * Register @p key and return its stable handle. Identical to
     * counter(); the distinct name marks construction-time resolution
     * for per-event increments (never call this inside a hot loop).
     */
    Counter &
    handle(const std::string &key)
    {
        return _counters[key];
    }

    /** Read-only lookup; returns 0 for unknown keys. */
    std::uint64_t
    value(const std::string &key) const
    {
        auto it = _counters.find(key);
        return it == _counters.end() ? 0 : it->second.value();
    }

    const std::string &name() const { return _name; }

    const std::map<std::string, Counter> &all() const { return _counters; }

    /** Zero every counter in the group. */
    void
    reset()
    {
        for (auto &[key, ctr] : _counters)
            ctr.reset();
    }

    void
    print(std::ostream &os) const
    {
        for (const auto &[key, ctr] : _counters)
            os << _name << "." << key << " = " << ctr.value() << '\n';
    }

  private:
    std::string _name;
    std::map<std::string, Counter> _counters;
};

} // namespace vrc

#endif // VRC_BASE_COUNTER_HH
