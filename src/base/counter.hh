/**
 * @file
 * Named statistics counters.
 *
 * A tiny stats package: modules register named counters in a StatGroup;
 * experiments snapshot or print them. Far simpler than gem5's stats but
 * the same shape: stats live with the module that increments them.
 */

#ifndef VRC_BASE_COUNTER_HH
#define VRC_BASE_COUNTER_HH

#include <cstdint>
#include <deque>
#include <map>
#include <ostream>
#include <string>

namespace vrc
{

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    void operator++() { ++_value; }
    void operator++(int) { ++_value; }
    void operator+=(std::uint64_t n) { _value += n; }

    std::uint64_t value() const { return _value; }
    void reset() { _value = 0; }

  private:
    std::uint64_t _value = 0;
};

/**
 * A map of named counters. Modules own one, register counters up front,
 * and the simulator aggregates groups for reporting.
 *
 * Registered-handle contract: counter() returns a reference that stays
 * valid for the lifetime of the group. Hot-path code must resolve its
 * handles once at construction and increment through them;
 * string-keyed lookups are for registration and reporting only.
 *
 * Storage is split for locality: the Counter payloads live packed in a
 * deque (stable addresses, a whole group's counters typically within
 * one chunk, so per-reference increments touch one or two cache lines
 * instead of a node per counter), while the name index is a side map
 * used only by registration and reporting.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : _name(std::move(name)) {}

    // Handles point into _slots; copying would silently dangle them.
    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;
    StatGroup(StatGroup &&) = default;
    StatGroup &operator=(StatGroup &&) = default;

    /** Fetch (creating on first use) the counter called @p key. */
    Counter &
    counter(const std::string &key)
    {
        auto it = _byName.find(key);
        if (it != _byName.end())
            return *it->second;
        _slots.emplace_back();
        Counter *slot = &_slots.back();
        _byName.emplace(key, slot);
        return *slot;
    }

    /**
     * Register @p key and return its stable handle. Identical to
     * counter(); the distinct name marks construction-time resolution
     * for per-event increments (never call this inside a hot loop).
     */
    Counter &
    handle(const std::string &key)
    {
        return counter(key);
    }

    /** Read-only lookup; returns 0 for unknown keys. */
    std::uint64_t
    value(const std::string &key) const
    {
        auto it = _byName.find(key);
        return it == _byName.end() ? 0 : it->second->value();
    }

    const std::string &name() const { return _name; }

    /** Name-sorted snapshot of every counter (reporting only). */
    std::map<std::string, Counter>
    all() const
    {
        std::map<std::string, Counter> out;
        for (const auto &[key, slot] : _byName)
            out.emplace(key, *slot);
        return out;
    }

    /** Zero every counter in the group. */
    void
    reset()
    {
        for (Counter &ctr : _slots)
            ctr.reset();
    }

    void
    print(std::ostream &os) const
    {
        for (const auto &[key, slot] : _byName)
            os << _name << "." << key << " = " << slot->value() << '\n';
    }

  private:
    std::string _name;
    std::deque<Counter> _slots;
    std::map<std::string, Counter *> _byName;
};

} // namespace vrc

#endif // VRC_BASE_COUNTER_HH
