/**
 * @file
 * Crash-atomic file writes.
 *
 * A manifest or result JSON opened with bare std::ios::trunc has a
 * window where a crash leaves a torn file: truncated-then-partially-
 * written bytes that a later reader mistakes for output. The journal
 * tolerates torn *lines* by design (append-only, terminator-checked),
 * but whole-file artifacts need the classic fix: write the content to
 * a temporary sibling, fsync it, and rename() it over the target --
 * POSIX rename is atomic, so a reader sees either the old file or the
 * complete new one, never a prefix.
 *
 * Paths that are not regular files (/dev/null, a pipe, a tty) cannot
 * be renamed over; those fall back to a plain streamed write, which is
 * what the caller meant anyway.
 */

#ifndef VRC_BASE_ATOMIC_FILE_HH
#define VRC_BASE_ATOMIC_FILE_HH

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <string_view>

#include "base/error.hh"

namespace vrc
{

/** True when @p path exists and is not a regular file. */
inline bool
isSpecialFile(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0 && !S_ISREG(st.st_mode);
}

/**
 * Write @p content to @p path atomically (temp + fsync + rename).
 * Special files (/dev/null, pipes) get a direct write instead.
 */
inline Status
writeFileAtomic(const std::string &path, std::string_view content)
{
    if (isSpecialFile(path)) {
        int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
        if (fd < 0)
            return makeError(ErrorKind::Io, "cannot open ", path,
                             " for writing: ", std::strerror(errno));
        std::size_t off = 0;
        while (off < content.size()) {
            ssize_t n = ::write(fd, content.data() + off,
                                content.size() - off);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                int err = errno;
                ::close(fd);
                return makeError(ErrorKind::Io, "write to ", path,
                                 " failed: ", std::strerror(err));
            }
            off += static_cast<std::size_t>(n);
        }
        ::close(fd);
        return okStatus();
    }

    std::string tmp = path + ".tmp." + std::to_string(::getpid());
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return makeError(ErrorKind::Io, "cannot create ", tmp, ": ",
                         std::strerror(errno));
    std::size_t off = 0;
    while (off < content.size()) {
        ssize_t n =
            ::write(fd, content.data() + off, content.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            int err = errno;
            ::close(fd);
            ::unlink(tmp.c_str());
            return makeError(ErrorKind::Io, "write to ", tmp,
                             " failed: ", std::strerror(err));
        }
        off += static_cast<std::size_t>(n);
    }
    // Data must reach disk before the rename makes it visible, or a
    // crash could still publish an empty file.
    if (::fsync(fd) != 0) {
        int err = errno;
        ::close(fd);
        ::unlink(tmp.c_str());
        return makeError(ErrorKind::Io, "fsync of ", tmp,
                         " failed: ", std::strerror(err));
    }
    if (::close(fd) != 0) {
        int err = errno;
        ::unlink(tmp.c_str());
        return makeError(ErrorKind::Io, "close of ", tmp,
                         " failed: ", std::strerror(err));
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        int err = errno;
        ::unlink(tmp.c_str());
        return makeError(ErrorKind::Io, "rename ", tmp, " -> ", path,
                         " failed: ", std::strerror(err));
    }
    return okStatus();
}

} // namespace vrc

#endif // VRC_BASE_ATOMIC_FILE_HH
