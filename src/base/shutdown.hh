/**
 * @file
 * Process-wide graceful-shutdown plumbing (SIGINT/SIGTERM).
 *
 * Long-running modes (a campaign sweep, the simulation service) must
 * not die mid-write when the operator presses ^C: the first signal is
 * a *drain request* -- stop admitting new work, let in-flight work
 * finish (or hit its watchdog), flush journals and manifests -- and
 * only the second signal hard-exits. The handler itself does nothing
 * but bump an async-signal-safe counter and poke a wake pipe, so any
 * poll()-based loop can react promptly; all real drain logic runs on
 * ordinary threads that poll shutdownRequested().
 *
 * Installation is explicit (CLI entry points only): a library user or
 * a unit test that never calls installShutdownHandlers() keeps the
 * default signal disposition, and shutdownRequested() simply stays 0.
 */

#ifndef VRC_BASE_SHUTDOWN_HH
#define VRC_BASE_SHUTDOWN_HH

#include <csignal>
#include <unistd.h>

#include <atomic>

namespace vrc
{

namespace shutdown_detail
{

/** Signals seen so far; the handler increments it. */
inline std::atomic<int> signalCount{0};

/** The last signal delivered (0 before any). */
inline std::atomic<int> lastSignal{0};

/** Wake pipe; [0] read end for pollers, [1] written by the handler. */
inline int wakePipe[2] = {-1, -1};

inline void
handler(int sig)
{
    lastSignal.store(sig, std::memory_order_relaxed);
    int n = signalCount.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n >= 2) {
        // Second signal: the operator has lost patience. _exit() is
        // async-signal-safe; 128+sig is the conventional encoding.
        _exit(128 + sig);
    }
    if (wakePipe[1] >= 0) {
        char b = 1;
        // Best effort; a full pipe still wakes the poller.
        [[maybe_unused]] ssize_t r = ::write(wakePipe[1], &b, 1);
    }
}

} // namespace shutdown_detail

/**
 * Install the SIGINT/SIGTERM drain handlers (idempotent). Returns the
 * read end of the wake pipe: poll()ing it wakes as soon as a signal
 * lands, so accept loops need not busy-poll the counter.
 */
inline int
installShutdownHandlers()
{
    using namespace shutdown_detail;
    static bool installed = [] {
        if (::pipe(wakePipe) != 0)
            wakePipe[0] = wakePipe[1] = -1;
        struct sigaction sa = {};
        sa.sa_handler = handler;
        sigemptyset(&sa.sa_mask);
        sa.sa_flags = SA_RESTART;
        ::sigaction(SIGINT, &sa, nullptr);
        ::sigaction(SIGTERM, &sa, nullptr);
        // A client vanishing mid-write must be an EPIPE errno, not a
        // process-killing SIGPIPE (the service writes to sockets).
        ::signal(SIGPIPE, SIG_IGN);
        return true;
    }();
    (void)installed;
    return wakePipe[0];
}

/** Signals received so far (0 = no shutdown requested). */
inline int
shutdownRequested()
{
    return shutdown_detail::signalCount.load(std::memory_order_relaxed);
}

/** The last shutdown signal number (0 before any). */
inline int
shutdownSignal()
{
    return shutdown_detail::lastSignal.load(std::memory_order_relaxed);
}

/**
 * Exit code for "drained cleanly after a shutdown signal": documented
 * in the README exit-code table and asserted by the resilience and
 * soak scripts.
 */
inline constexpr int kExitInterrupted = 5;

/** Reset the counter (tests only; handlers stay installed). */
inline void
resetShutdownForTest()
{
    shutdown_detail::signalCount.store(0, std::memory_order_relaxed);
    shutdown_detail::lastSignal.store(0, std::memory_order_relaxed);
}

} // namespace vrc

#endif // VRC_BASE_SHUTDOWN_HH
