/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic component in the simulator draws from an explicitly
 * seeded Rng; the same seed always reproduces bit-identical traces and
 * simulation results. Wall-clock seeding is deliberately not provided.
 */

#ifndef VRC_BASE_RNG_HH
#define VRC_BASE_RNG_HH

#include <cassert>
#include <cstdint>
#include <random>
#include <vector>

namespace vrc
{

/** Deterministic pseudo-random source (mt19937_64 behind a small API). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : _engine(seed) {}

    /** Uniform integer in [0, bound). @pre bound > 0 */
    std::uint64_t
    below(std::uint64_t bound)
    {
        assert(bound > 0);
        return std::uniform_int_distribution<std::uint64_t>(0, bound - 1)(
            _engine);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        assert(lo <= hi);
        return std::uniform_int_distribution<std::uint64_t>(lo, hi)(_engine);
    }

    /** Uniform real in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(_engine);
    }

    /** Bernoulli trial with probability @p p of true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Geometric-ish burst length in [1, cap]. */
    std::uint64_t
    geometric(double p, std::uint64_t cap)
    {
        std::uint64_t n = 1;
        while (n < cap && !chance(p))
            ++n;
        return n;
    }

    /**
     * Sample an index in [0, n) with probability proportional to
     * weights[i].
     */
    std::size_t
    weighted(const std::vector<double> &weights)
    {
        assert(!weights.empty());
        double total = 0.0;
        for (double w : weights)
            total += w;
        double x = uniform() * total;
        for (std::size_t i = 0; i < weights.size(); ++i) {
            if (x < weights[i])
                return i;
            x -= weights[i];
        }
        return weights.size() - 1;
    }

    /** Derive an independent child generator (for per-CPU streams). */
    Rng
    fork()
    {
        return Rng(_engine() ^ 0x9e3779b97f4a7c15ULL);
    }

    /** Underlying engine, for std distributions. */
    std::mt19937_64 &engine() { return _engine; }

  private:
    std::mt19937_64 _engine;
};

} // namespace vrc

#endif // VRC_BASE_RNG_HH
