/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  - internal invariant violated: a simulator bug. Aborts.
 * fatal()  - user error (bad configuration, bad trace file). Exits cleanly.
 * warn()   - something suspicious but survivable.
 */

#ifndef VRC_BASE_LOG_HH
#define VRC_BASE_LOG_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string_view>

namespace vrc
{

namespace detail
{

inline void
appendAll(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
appendAll(std::ostringstream &os, const T &first, const Rest &...rest)
{
    os << first;
    appendAll(os, rest...);
}

} // namespace detail

/** Abort with a message: use for violated internal invariants. */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    std::ostringstream os;
    detail::appendAll(os, args...);
    std::cerr << "panic: " << os.str() << std::endl;
    std::abort();
}

/** Exit(1) with a message: use for user-caused errors. */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::ostringstream os;
    detail::appendAll(os, args...);
    std::cerr << "fatal: " << os.str() << std::endl;
    std::exit(1);
}

/** Print a warning and continue. */
template <typename... Args>
void
warn(const Args &...args)
{
    std::ostringstream os;
    detail::appendAll(os, args...);
    std::cerr << "warn: " << os.str() << std::endl;
}

/** panic() unless @p cond holds. */
template <typename... Args>
void
panicIfNot(bool cond, const Args &...args)
{
    if (!cond)
        panic(args...);
}

} // namespace vrc

#endif // VRC_BASE_LOG_HH
