/**
 * @file
 * Plain-text table formatting for experiment output.
 *
 * The bench binaries print tables shaped like the paper's; this helper
 * keeps column widths aligned and supports numeric cells with fixed
 * precision.
 */

#ifndef VRC_BASE_TABLE_HH
#define VRC_BASE_TABLE_HH

#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace vrc
{

/** A simple left/right-aligned text table. */
class TextTable
{
  public:
    /** Start a new row; subsequent cell() calls append to it. */
    TextTable &
    row()
    {
        _rows.emplace_back();
        return *this;
    }

    /** Append a string cell to the current row. */
    TextTable &
    cell(std::string text)
    {
        if (_rows.empty())
            row();
        _rows.back().push_back(std::move(text));
        return *this;
    }

    /** Append an integral cell. */
    TextTable &
    cell(std::uint64_t v)
    {
        return cell(std::to_string(v));
    }

    TextTable &
    cell(std::uint32_t v)
    {
        return cell(std::to_string(v));
    }

    TextTable &
    cell(int v)
    {
        return cell(std::to_string(v));
    }

    /** Append a floating-point cell with fixed precision. */
    TextTable &
    cell(double v, int precision = 3)
    {
        std::ostringstream os;
        os << std::fixed << std::setprecision(precision) << v;
        return cell(os.str());
    }

    /** Append a horizontal separator row. */
    TextTable &
    separator()
    {
        _rows.emplace_back();
        _rows.back().push_back(separatorMark());
        return *this;
    }

    /** Render to a stream with aligned columns. */
    void
    print(std::ostream &os) const
    {
        std::vector<std::size_t> widths;
        for (const auto &r : _rows) {
            if (isSeparator(r))
                continue;
            for (std::size_t c = 0; c < r.size(); ++c) {
                if (c >= widths.size())
                    widths.push_back(0);
                widths[c] = std::max(widths[c], r[c].size());
            }
        }
        std::size_t total = 0;
        for (std::size_t w : widths)
            total += w + 3;
        for (const auto &r : _rows) {
            if (isSeparator(r)) {
                os << std::string(total, '-') << '\n';
                continue;
            }
            for (std::size_t c = 0; c < r.size(); ++c) {
                os << std::setw(static_cast<int>(widths[c])) << r[c];
                if (c + 1 < r.size())
                    os << " | ";
            }
            os << '\n';
        }
    }

    std::string
    str() const
    {
        std::ostringstream os;
        print(os);
        return os.str();
    }

  private:
    static std::string separatorMark() { return "\x01sep"; }

    static bool
    isSeparator(const std::vector<std::string> &r)
    {
        return r.size() == 1 && r[0] == separatorMark();
    }

    std::vector<std::vector<std::string>> _rows;
};

inline std::ostream &
operator<<(std::ostream &os, const TextTable &t)
{
    t.print(os);
    return os;
}

} // namespace vrc

#endif // VRC_BASE_TABLE_HH
