/**
 * @file
 * Cooperative cancellation token.
 *
 * The campaign watchdog cannot preempt a compute-bound cell; it can
 * only ask it to stop. A CancelToken is the ask: the watchdog flips
 * it, and every cancellation point in the cell (the simulation replay
 * loop, an injected stall, a backoff sleep) polls it and unwinds. The
 * token is a single relaxed atomic, so a poll every few thousand
 * references costs nothing measurable.
 */

#ifndef VRC_BASE_CANCEL_HH
#define VRC_BASE_CANCEL_HH

#include <atomic>
#include <chrono>
#include <thread>

namespace vrc
{

/** A one-way "please stop" flag shared between watchdog and worker. */
class CancelToken
{
  public:
    CancelToken() = default;

    // The token is shared by address; it never moves.
    CancelToken(const CancelToken &) = delete;
    CancelToken &operator=(const CancelToken &) = delete;

    bool
    cancelled() const
    {
        return _flag.load(std::memory_order_relaxed);
    }

    void
    cancel()
    {
        _flag.store(true, std::memory_order_relaxed);
    }

    /**
     * Sleep for @p seconds in short slices, returning early (false)
     * if cancelled; true when the full duration elapsed.
     */
    bool
    sleepFor(double seconds) const
    {
        using clock = std::chrono::steady_clock;
        auto end = clock::now() +
                   std::chrono::duration_cast<clock::duration>(
                       std::chrono::duration<double>(seconds));
        while (clock::now() < end) {
            if (cancelled())
                return false;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
        }
        return !cancelled();
    }

  private:
    std::atomic<bool> _flag{false};
};

} // namespace vrc

#endif // VRC_BASE_CANCEL_HH
