/**
 * @file
 * Strongly-typed virtual and physical addresses.
 *
 * The entire point of a virtual-real hierarchy is that the two levels index
 * with *different* address kinds; mixing them up silently is the classic bug
 * in such simulators. VirtAddr and PhysAddr are distinct types so that the
 * compiler rejects accidental mixing, while each still behaves like an
 * ordinary 32-bit integer for arithmetic and bit slicing.
 */

#ifndef VRC_BASE_ADDR_HH
#define VRC_BASE_ADDR_HH

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>

#include "base/types.hh"

namespace vrc
{

namespace detail
{

/**
 * CRTP base providing integer-like behaviour to a strong address type.
 *
 * @tparam Derived the concrete address type (VirtAddr or PhysAddr).
 */
template <typename Derived>
class AddrBase
{
  public:
    using ValueType = std::uint32_t;

    constexpr AddrBase() = default;
    constexpr explicit AddrBase(ValueType v) : _value(v) {}

    /** Raw numeric value. */
    constexpr ValueType value() const { return _value; }

    /** Extract the bit field [lo, lo+width). */
    constexpr ValueType
    bits(unsigned lo, unsigned width) const
    {
        return (_value >> lo) &
            ((width >= 32) ? ~ValueType{0} : ((ValueType{1} << width) - 1));
    }

    /** Offset within a page of the given size (power of two). */
    constexpr ValueType
    pageOffset(ValueType page_size) const
    {
        return _value & (page_size - 1);
    }

    constexpr auto operator<=>(const AddrBase &) const = default;

    constexpr Derived
    operator+(ValueType delta) const
    {
        return Derived(_value + delta);
    }

    constexpr Derived
    operator&(ValueType mask) const
    {
        return Derived(_value & mask);
    }

  private:
    ValueType _value = 0;
};

} // namespace detail

/** A virtual (process-relative) byte address. */
class VirtAddr : public detail::AddrBase<VirtAddr>
{
  public:
    using AddrBase::AddrBase;

    /** Virtual page number for the given page size. */
    constexpr Vpn
    vpn(ValueType page_size) const
    {
        return value() / page_size;
    }
};

/** A physical (real) byte address. */
class PhysAddr : public detail::AddrBase<PhysAddr>
{
  public:
    using AddrBase::AddrBase;

    /** Physical page (frame) number for the given page size. */
    constexpr Ppn
    ppn(ValueType page_size) const
    {
        return value() / page_size;
    }
};

inline std::ostream &
operator<<(std::ostream &os, VirtAddr a)
{
    return os << "V:0x" << std::hex << a.value() << std::dec;
}

inline std::ostream &
operator<<(std::ostream &os, PhysAddr a)
{
    return os << "P:0x" << std::hex << a.value() << std::dec;
}

/** Compose a virtual address from page number and offset. */
constexpr VirtAddr
makeVirtAddr(Vpn vpn, std::uint32_t offset, std::uint32_t page_size)
{
    return VirtAddr(vpn * page_size + offset);
}

/** Compose a physical address from frame number and offset. */
constexpr PhysAddr
makePhysAddr(Ppn ppn, std::uint32_t offset, std::uint32_t page_size)
{
    return PhysAddr(ppn * page_size + offset);
}

} // namespace vrc

namespace std
{

template <>
struct hash<vrc::VirtAddr>
{
    size_t
    operator()(vrc::VirtAddr a) const noexcept
    {
        return std::hash<uint32_t>{}(a.value());
    }
};

template <>
struct hash<vrc::PhysAddr>
{
    size_t
    operator()(vrc::PhysAddr a) const noexcept
    {
        return std::hash<uint32_t>{}(a.value());
    }
};

} // namespace std

#endif // VRC_BASE_ADDR_HH
