/**
 * @file
 * Fundamental scalar types used throughout the simulator.
 */

#ifndef VRC_BASE_TYPES_HH
#define VRC_BASE_TYPES_HH

#include <cstdint>

namespace vrc
{

/**
 * Simulated time, measured in level-1 cache access units (the paper's
 * t1). Fractional: the analytic timing parameters (core/timing.hh) are
 * real-valued and the cycle engine (core/clock.hh) must reproduce the
 * closed form exactly in the zero-contention limit.
 */
using Tick = double;

/** Processor identifier within a shared-bus multiprocessor. */
using CpuId = std::uint32_t;

/** Process (address space) identifier. */
using ProcessId = std::uint32_t;

/** Virtual page number. */
using Vpn = std::uint32_t;

/** Physical page (frame) number. */
using Ppn = std::uint32_t;

/** Sentinel for "no CPU". */
inline constexpr CpuId invalidCpu = static_cast<CpuId>(-1);

/** Sentinel for "no process". */
inline constexpr ProcessId invalidProcess = static_cast<ProcessId>(-1);

} // namespace vrc

#endif // VRC_BASE_TYPES_HH
