/**
 * @file
 * Fundamental scalar types used throughout the simulator.
 */

#ifndef VRC_BASE_TYPES_HH
#define VRC_BASE_TYPES_HH

#include <cstdint>

namespace vrc
{

/** Simulated time, measured in level-1 cache access units. */
using Tick = std::uint64_t;

/** Processor identifier within a shared-bus multiprocessor. */
using CpuId = std::uint32_t;

/** Process (address space) identifier. */
using ProcessId = std::uint32_t;

/** Virtual page number. */
using Vpn = std::uint32_t;

/** Physical page (frame) number. */
using Ppn = std::uint32_t;

/** Sentinel for "no CPU". */
inline constexpr CpuId invalidCpu = static_cast<CpuId>(-1);

/** Sentinel for "no process". */
inline constexpr ProcessId invalidProcess = static_cast<ProcessId>(-1);

} // namespace vrc

#endif // VRC_BASE_TYPES_HH
