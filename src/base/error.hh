/**
 * @file
 * Structured, recoverable errors.
 *
 * log.hh's fatal() is the right tool for a CLI entry point, but a
 * library that kills the process on the first malformed byte cannot
 * serve a long-running campaign: one corrupt trace in a thousand-cell
 * sweep must quarantine that cell, not abort the other 999. The
 * parsers and the campaign engine therefore report failures as values:
 *
 *   Error      - what went wrong (taxonomy kind, message, source
 *                context, line/record number)
 *   Result<T>  - either a T or an Error; [[nodiscard]] so a caller
 *                cannot silently drop a failure
 *
 * The legacy fatal()-ing entry points survive as thin wrappers
 * (`r.orDie()`) so interactive tools keep their one-line diagnostics.
 * ErrorException carries an Error across a thread or pool boundary
 * where exceptions are the only transport.
 */

#ifndef VRC_BASE_ERROR_HH
#define VRC_BASE_ERROR_HH

#include <cstdint>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "base/log.hh"

namespace vrc
{

/** Failure taxonomy: every recoverable error is one of these. */
enum class ErrorKind : std::uint8_t
{
    Io,        ///< file missing/unreadable/unwritable
    Parse,     ///< malformed input bytes (trace, profile, replay, journal)
    Format,    ///< recognized container, unsupported magic/version
    Bounds,    ///< structurally valid but inconsistent sizes/counts/ranges
    Timeout,   ///< a watchdog deadline expired
    Worker,    ///< a campaign cell threw
    Cancelled, ///< cooperative cancellation observed
    Injected,  ///< deliberately injected by the fault harness
    Mismatch,  ///< checkpoint/journal belongs to a different campaign
    Unrecoverable, ///< simulated machine check (uncorrectable soft error)
};

/** Printable taxonomy name. */
inline const char *
errorKindName(ErrorKind k)
{
    switch (k) {
      case ErrorKind::Io:
        return "io";
      case ErrorKind::Parse:
        return "parse";
      case ErrorKind::Format:
        return "format";
      case ErrorKind::Bounds:
        return "bounds";
      case ErrorKind::Timeout:
        return "timeout";
      case ErrorKind::Worker:
        return "worker";
      case ErrorKind::Cancelled:
        return "cancelled";
      case ErrorKind::Injected:
        return "injected";
      case ErrorKind::Mismatch:
        return "mismatch";
      case ErrorKind::Unrecoverable:
        return "unrecoverable";
    }
    return "unknown";
}

/** One structured, recoverable error. */
struct Error
{
    ErrorKind kind = ErrorKind::Io;
    std::string message;  ///< what went wrong, human-readable
    std::string context;  ///< where: file path, stream name, component
    std::uint64_t line = 0; ///< 1-based line/record number (0 = n/a)

    /** "parse error in pops.trace, line 12: bad type letter 'Q'" */
    std::string
    describe() const
    {
        std::ostringstream os;
        os << errorKindName(kind) << " error";
        if (!context.empty())
            os << " in " << context;
        if (line)
            os << ", line " << line;
        os << ": " << message;
        return os.str();
    }
};

/** Build an Error from streamable message pieces. */
template <typename... Args>
Error
makeError(ErrorKind kind, const Args &...args)
{
    std::ostringstream os;
    detail::appendAll(os, args...);
    return Error{kind, os.str(), "", 0};
}

/** makeError with a source context (file path) and line/record number. */
template <typename... Args>
Error
makeErrorAt(ErrorKind kind, std::string context, std::uint64_t line,
            const Args &...args)
{
    Error e = makeError(kind, args...);
    e.context = std::move(context);
    e.line = line;
    return e;
}

/** An Error that must travel as an exception (thread/pool boundary). */
class ErrorException : public std::runtime_error
{
  public:
    explicit ErrorException(Error err)
        : std::runtime_error(err.describe()), _err(std::move(err))
    {
    }

    const Error &err() const { return _err; }

  private:
    Error _err;
};

/**
 * Either a value or an Error. [[nodiscard]] so parse failures cannot
 * be dropped on the floor.
 */
template <typename T>
class [[nodiscard]] Result
{
  public:
    Result(T value) : _value(std::move(value)) {}
    Result(Error error) : _error(std::move(error)) {}

    bool ok() const { return _value.has_value(); }
    explicit operator bool() const { return ok(); }

    const T &
    value() const &
    {
        panicIfNot(ok(), "Result::value() on error: ",
                   _error ? _error->describe() : "?");
        return *_value;
    }

    T &
    value() &
    {
        panicIfNot(ok(), "Result::value() on error: ",
                   _error ? _error->describe() : "?");
        return *_value;
    }

    /** Move the value out (the Result is dead afterwards). */
    T
    take()
    {
        panicIfNot(ok(), "Result::take() on error: ",
                   _error ? _error->describe() : "?");
        return std::move(*_value);
    }

    const Error &
    error() const
    {
        panicIfNot(!ok(), "Result::error() on success");
        return *_error;
    }

    /** The value, or the fallback when this Result failed. */
    T
    valueOr(T fallback) const &
    {
        return ok() ? *_value : std::move(fallback);
    }

    /**
     * Bridge to the legacy CLI behavior: fatal(describe()) on error,
     * the value otherwise. Keeps `loadTrace()` & friends one-liners.
     */
    T
    orDie() &&
    {
        if (!ok())
            fatal(_error->describe());
        return std::move(*_value);
    }

    /** Rethrow as ErrorException on failure, the value otherwise. */
    T
    orThrow() &&
    {
        if (!ok())
            throw ErrorException(*_error);
        return std::move(*_value);
    }

  private:
    std::optional<T> _value;
    std::optional<Error> _error;
};

/** Result for operations with no payload. */
struct Unit
{
};
using Status = Result<Unit>;

/** Success value for Status-returning functions. */
inline Status
okStatus()
{
    return Status(Unit{});
}

} // namespace vrc

#endif // VRC_BASE_ERROR_HH
