/**
 * @file
 * Library version constants.
 */

#ifndef VRC_BASE_VERSION_HH
#define VRC_BASE_VERSION_HH

namespace vrc
{

inline constexpr int versionMajor = 1;
inline constexpr int versionMinor = 0;
inline constexpr int versionPatch = 0;

/** Human-readable version string. */
inline constexpr const char *versionString = "1.0.0";

} // namespace vrc

#endif // VRC_BASE_VERSION_HH
