/**
 * @file
 * Simple integer histogram with an overflow bucket.
 *
 * Used for the paper's distribution tables: writes-per-procedure-call
 * (Table 1) and inter-write intervals (Tables 2 and 3), which report
 * buckets 1..N plus an "N and larger" row.
 */

#ifndef VRC_BASE_HISTOGRAM_HH
#define VRC_BASE_HISTOGRAM_HH

#include <cassert>
#include <cstdint>
#include <vector>

namespace vrc
{

/**
 * Histogram over values 1..maxBucket with a shared overflow bucket for
 * values >= maxBucket ("maxBucket and larger", as the paper's tables do).
 */
class Histogram
{
  public:
    /** @param max_bucket the first bucket that also absorbs larger values */
    explicit Histogram(std::uint64_t max_bucket)
        : _maxBucket(max_bucket), _counts(max_bucket, 0)
    {
        assert(max_bucket >= 1);
    }

    /** Record one sample. Values below 1 are clamped to 1. */
    void
    record(std::uint64_t value)
    {
        if (value < 1)
            value = 1;
        if (value >= _maxBucket)
            _counts[_maxBucket - 1] += 1;
        else
            _counts[value - 1] += 1;
        _samples += 1;
        _sum += value;
    }

    /** Count in bucket for @p value (>= maxBucket reads the overflow). */
    std::uint64_t
    count(std::uint64_t value) const
    {
        assert(value >= 1);
        if (value >= _maxBucket)
            return _counts[_maxBucket - 1];
        return _counts[value - 1];
    }

    /** Count of samples >= maxBucket. */
    std::uint64_t overflowCount() const { return _counts[_maxBucket - 1]; }

    /** Total number of recorded samples. */
    std::uint64_t samples() const { return _samples; }

    /** Sum of all recorded values (overflow values kept exact). */
    std::uint64_t sum() const { return _sum; }

    /** Mean of recorded values; 0 if empty. */
    double
    mean() const
    {
        return _samples == 0 ? 0.0
                             : static_cast<double>(_sum) /
                static_cast<double>(_samples);
    }

    /** Largest representable exact bucket (== overflow threshold). */
    std::uint64_t maxBucket() const { return _maxBucket; }

    /** Reset all buckets. */
    void
    clear()
    {
        std::fill(_counts.begin(), _counts.end(), 0);
        _samples = 0;
        _sum = 0;
    }

  private:
    std::uint64_t _maxBucket;
    std::vector<std::uint64_t> _counts;
    std::uint64_t _samples = 0;
    std::uint64_t _sum = 0;
};

} // namespace vrc

#endif // VRC_BASE_HISTOGRAM_HH
