/**
 * @file
 * Merge partial campaign checkpoint journals.
 *
 * Distributed sweeps leave partial journals behind -- a coordinator
 * killed mid-run, independent per-machine runs over hand-split cell
 * ranges, or salvage from a dead disk. vrc-merge validates each input
 * with the same loader the resume path uses (torn tail lines are
 * skipped, foreign campaign keys rejected) and emits one canonical
 * journal: header plus cell lines in index order, byte-identical to
 * what an uninterrupted single-process sweep would have written for
 * the same completed set.
 *
 * Duplicate cells across inputs are fine when the lines agree byte for
 * byte; two inputs DISAGREEING about a cell is a hard error naming
 * both file/line locations (exit 6), never last-writer-wins -- a
 * disagreement means somebody computed a wrong answer, and merging
 * must not pick one silently.
 *
 * Usage:
 *   vrc-merge --out=<journal> [--manifest=<json>] <journal>...
 *
 * Exit codes: 0 merged and complete, 1 load/write failure, 2 usage,
 * 3 merged but cells missing, 6 conflicting cell summaries.
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "base/atomic_file.hh"
#include "sim/campaign.hh"
#include "sim/shard.hh"

using namespace vrc;

namespace
{

[[noreturn]] void
usage()
{
    std::cerr <<
        "usage: vrc-merge --out=<journal> [--manifest=<json>] "
        "<journal>...\n"
        "  Validate and merge partial campaign checkpoint journals\n"
        "  into one canonical journal. All inputs must share one\n"
        "  campaign key and cell count; torn tail lines are skipped;\n"
        "  byte-identical duplicate cells collapse; disagreeing\n"
        "  duplicates are a hard error naming both sources.\n"
        "exit codes:\n"
        "  0 merged, all cells present   1 load or write failure\n"
        "  2 usage error                 3 merged, cells missing\n"
        "  6 conflicting cell summaries\n";
    std::exit(2);
}

bool
argValue(const char *arg, const char *name, std::string &out)
{
    std::size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
        out = arg + n + 1;
        return true;
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path, manifest_path, value;
    std::vector<std::string> inputs;
    for (int i = 1; i < argc; ++i) {
        if (argValue(argv[i], "--out", value))
            out_path = value;
        else if (argValue(argv[i], "--manifest", value))
            manifest_path = value;
        else if (argv[i][0] == '-')
            usage();
        else
            inputs.push_back(argv[i]);
    }
    if (out_path.empty() || inputs.empty())
        usage();

    Result<ShardMerge> merged = mergeJournalFiles(inputs);
    if (!merged) {
        std::cerr << "vrc-merge: " << merged.error().describe()
                  << "\n";
        return isConflictError(merged.error()) ? 6 : 1;
    }
    ShardMerge m = merged.take();

    Status wrote =
        writeFileAtomic(out_path, canonicalJournalText(m.merged));
    if (!wrote) {
        std::cerr << "vrc-merge: cannot write " << out_path << ": "
                  << wrote.error().message << "\n";
        return 1;
    }
    if (!manifest_path.empty()) {
        Status wroteManifest = writeFileAtomic(
            manifest_path, mergeManifestJson(m) + "\n");
        if (!wroteManifest) {
            std::cerr << "vrc-merge: cannot write " << manifest_path
                      << ": " << wroteManifest.error().message
                      << "\n";
            return 1;
        }
    }
    std::cerr << "vrc-merge: " << m.inputs << " journals, "
              << m.merged.completedCells() << "/" << m.merged.cells
              << " cells (" << m.duplicates << " duplicates collapsed, "
              << m.torn << " torn lines skipped, " << m.missing.size()
              << " missing)\n";
    return m.missing.empty() ? 0 : 3;
}
