/**
 * @file
 * Simulation CLI.
 *
 * Runs one of the built-in workloads (or a saved binary trace) through
 * a configurable machine and prints the full statistics: hit ratios by
 * type and level, synonym/coherence/write-buffer activity, and the
 * Section-4 access-time model.
 *
 * Usage:
 *   vrc_sim --profile=pops [--trace=file.vrct] [--org=vr|rr|rr-noincl]
 *           [--l1=16384] [--l2=262144] [--assoc1=1] [--assoc2=1]
 *           [--block1=16] [--block2=16] [--split] [--scale=1.0]
 *           [--timing=analytic|cycle] [--check] [--per-cpu]
 *
 * Campaign mode (`--sweep`) runs the 4-organization x 3-size
 * grid as a fault-tolerant campaign: checkpointed to a journal,
 * resumable after a kill, watchdogged, with failing cells retried and
 * then quarantined instead of aborting the sweep.
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "base/atomic_file.hh"
#include "base/fault.hh"
#include "base/log.hh"
#include "base/shutdown.hh"
#include "base/table.hh"
#include "serve/server.hh"
#include "cache/protection.hh"
#include "core/clock.hh"
#include "core/timing.hh"
#include "sim/campaign.hh"
#include "sim/experiment.hh"
#include "sim/shard.hh"
#include "sim/json_stats.hh"
#include "core/events.hh"
#include "trace/profile_io.hh"
#include "trace/trace_io.hh"
#include "trace/trace_stream.hh"

using namespace vrc;

namespace
{

[[noreturn]] void
usage()
{
    std::cerr <<
        "usage: vrc_sim --profile=<pops|thor|abaqus> [options]\n"
        "  --profile-file=<path>  load a custom profile file instead\n"
        "  --trace=<path>   replay a saved binary trace (the profile is\n"
        "                   still required for the address-space layout)\n"
        "  --org=<vr|rr|rr-noincl|vr-rlt>  organization (default vr)\n"
        "  --list-orgs      print the known organizations and exit\n"
        "  --l1=<bytes> --l2=<bytes> cache sizes (default 16K/256K)\n"
        "  --assoc1/--assoc2, --block1/--block2   geometry\n"
        "  --split          split level 1 into I and D halves\n"
        "  --scale=<f>      rescale the generated trace\n"
        "  --timing=<analytic|cycle>  access-time engine: the paper's\n"
        "                   closed form, or the cycle-approximate bus-\n"
        "                   contention model (default analytic; the\n"
        "                   architectural counters are identical)\n"
        "  --stream         generate records on the fly instead of\n"
        "                   materializing the trace (lower peak RSS)\n"
        "  --check          verify invariants during the run\n"
        "  --per-cpu        per-CPU statistics table\n"
        "  --json           machine-readable JSON output only\n"
        "  --summary        print only the exact hexfloat summary line\n"
        "                   (the service's RESULT payload; byte-\n"
        "                   comparable against --serve replies)\n"
        "  --events=<n>     print the first n hierarchy events\n"
        "  --warmup=<f>     reset statistics after fraction f of the\n"
        "                   trace (steady-state measurement)\n"
        "campaign mode:\n"
        "  --sweep          run the 4-org x 3-size grid as a campaign\n"
        "  --checkpoint=<path>  journal completed cells; with --resume,\n"
        "                   a killed sweep restarts where it stopped\n"
        "  --resume         load the checkpoint journal before running\n"
        "  --deadline=<s>   per-cell watchdog deadline (wall-clock)\n"
        "  --max-retries=<n>  retries before a cell is quarantined\n"
        "  --manifest=<path>  write the failure manifest JSON here\n"
        "  --out=<path>     write the campaign result JSON here\n"
        "  --jobs=<n>       worker threads for the sweep\n"
        "  --inject-faults=<spec>  arm deterministic fault injection\n"
        "                   (seed=N[,corrupt=P][,truncate=P][,throw=P]\n"
        "                   [,stall=P][,stall_ms=M])\n"
        "soft errors:\n"
        "  --soft-errors=<spec>  arm the in-hierarchy soft-error model\n"
        "                   (seed=N[,tag=P][,state=P][,ptr=P][,bus=P]\n"
        "                   [,retry=N]; a bare number is seed=N with\n"
        "                   default rates)\n"
        "  --protect=<none|parity|secded>  tag-array protection policy\n"
        "                   (default secded)\n"
        "distributed sweep mode:\n"
        "  --coordinate     run the sweep grid through remote shard\n"
        "                   workers instead of local threads; reuses\n"
        "                   --listen-unix/--listen-tcp, --checkpoint,\n"
        "                   --resume, --deadline (straggler watchdog),\n"
        "                   --max-retries, --manifest and --out\n"
        "  --shard-cells=<n>  cells per dispatched shard (default\n"
        "                   grid/4)\n"
        "  --shard-worker   run one shard worker process\n"
        "  --connect-unix=<path> / --connect-tcp=<port>  coordinator\n"
        "                   address for --shard-worker\n"
        "  --worker-name=<s>  stable worker identity (quarantine key)\n"
        "  --heartbeat=<s>  worker heartbeat period (default 0.2)\n"
        "                   (merge partial journals with vrc-merge)\n"
        "service mode:\n"
        "  --serve          run the long-lived segment service\n"
        "  --listen-unix=<path>   unix-domain listening socket\n"
        "  --listen-tcp=<port>    localhost TCP (0 = kernel-assigned;\n"
        "                   the bound port is printed on stdout)\n"
        "  --workers=<n>    segment worker threads (default 2)\n"
        "  --queue=<n>      global admission queue bound (default 64)\n"
        "  --per-client=<n> per-session in-flight bound (default 4)\n"
        "  --read-timeout=<s>  kill sessions whose frame stalls\n"
        "  --quarantine-threshold=<n>  poisoned sessions per client\n"
        "                   name before HELLO is refused (default 3)\n"
        "                   (--deadline, --max-retries and --manifest\n"
        "                   apply per segment / to the service)\n"
        "exit codes:\n"
        "  0 success        2 usage or configuration error\n"
        "  3 cells quarantined (sweep)   4 machine check\n"
        "  5 interrupted by SIGINT/SIGTERM (graceful drain; a second\n"
        "    signal hard-exits with 128+signal)\n"
        "  6 conflicting cell summaries (distributed sweep / merge)\n";
    std::exit(2);
}

/**
 * Fail fast when an output path cannot be opened for writing, instead
 * of discovering it only after a long campaign has already run.
 * Append mode leaves any existing content untouched.
 */
void
probeWritable(const char *what, const std::string &path)
{
    if (path.empty())
        return;
    std::ofstream probe(path, std::ios::app);
    if (!probe)
        fatal("cannot open ", what, " for writing: ", path);
}

bool
argValue(const char *arg, const char *name, std::string &out)
{
    std::size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
        out = arg + n + 1;
        return true;
    }
    return false;
}

HierarchyKind
parseOrg(const std::string &s)
{
    if (auto kind = hierarchyKindFromArg(s))
        return *kind;
    fatal("unknown organization: ", s, " (try --list-orgs)");
}

/** --list-orgs: one line per organization, argument first. */
[[noreturn]] void
listOrgs()
{
    for (HierarchyKind kind : kAllHierarchyKinds) {
        std::cout << hierarchyKindArg(kind) << "  "
                  << hierarchyKindName(kind) << ": "
                  << hierarchyKindDescription(kind) << "\n";
    }
    std::exit(0);
}

/** The paper's grid: every organization at every large size pair. */
std::vector<SimJob>
sweepJobs(TimingMode timing_mode)
{
    std::vector<SimJob> jobs;
    for (HierarchyKind kind : kAllHierarchyKinds) {
        for (auto [l1, l2] : paperSizePairs())
            jobs.push_back({kind, l1, l2, false, 0, timing_mode});
    }
    return jobs;
}

/** Shared result reporting for --sweep and --coordinate. */
int
reportCampaign(const std::vector<SimJob> &jobs,
               const CampaignResult &res, bool json,
               const std::string &out_path)
{
    std::string result_json = campaignResultToJson(res);
    if (!out_path.empty()) {
        Status wrote = writeFileAtomic(out_path, result_json + "\n");
        if (!wrote)
            fatal("cannot write campaign result: ",
                  wrote.error().message);
    }
    if (json) {
        std::cout << result_json << "\n";
    } else {
        TextTable t;
        t.row()
            .cell("org")
            .cell("l1/l2")
            .cell("h1")
            .cell("h2")
            .cell("bus txns")
            .cell("status");
        t.separator();
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            auto &row = t.row()
                .cell(hierarchyKindName(jobs[i].kind))
                .cell(sizeLabel(jobs[i].l1Size, jobs[i].l2Size));
            if (res.completed[i]) {
                row.cell(res.summaries[i].h1, 4)
                    .cell(res.summaries[i].h2, 4)
                    .cell(res.summaries[i].busTransactions)
                    .cell("ok");
            } else {
                row.cell("-").cell("-").cell("-").cell("quarantined");
            }
        }
        std::cout << t;
        std::cout << "\ncompleted " << res.completedCells() << "/"
                  << jobs.size() << " cells";
        if (res.restored > 0)
            std::cout << " (" << res.restored
                      << " restored from checkpoint)";
        std::cout << "\n";
        for (const CellFailure &f : res.quarantined)
            std::cout << "quarantined cell " << f.index << " after "
                      << f.attempts << " attempt"
                      << (f.attempts == 1 ? "" : "s") << ": "
                      << f.error << "\n";
    }
    if (res.interrupted) {
        std::cerr << "vrc_sim: sweep interrupted by signal "
                  << shutdownSignal() << "; journal flushed, "
                  << res.completedCells() << "/" << jobs.size()
                  << " cells done (resume with --resume)\n";
        return kExitInterrupted;
    }
    return res.allOk() ? 0 : 3;
}

int
runSweep(const TraceBundle &bundle, const CampaignOptions &opt,
         bool json, const std::string &out_path, TimingMode timing_mode)
{
    std::vector<SimJob> jobs = sweepJobs(timing_mode);
    installShutdownHandlers();
    Result<CampaignResult> run =
        runSimulationCampaign(bundle, jobs, opt);
    if (!run) {
        std::cerr << "vrc_sim: " << run.error().describe() << "\n";
        return 2;
    }
    return reportCampaign(jobs, run.take(), json, out_path);
}

int
runCoordinate(const TraceBundle &bundle,
              const ShardCoordinatorOptions &opt, bool json,
              const std::string &out_path, TimingMode timing_mode)
{
    std::vector<SimJob> jobs = sweepJobs(timing_mode);
    installShutdownHandlers();
    ShardCoordinator coordinator(opt);
    Status bound = coordinator.bind();
    if (!bound) {
        std::cerr << "vrc_sim: " << bound.error().describe() << "\n";
        return 2;
    }
    if (!opt.listenUnix.empty())
        std::cout << "listening unix " << opt.listenUnix << "\n";
    if (coordinator.tcpPort() >= 0)
        std::cout << "listening tcp 127.0.0.1:"
                  << coordinator.tcpPort() << "\n";
    std::cout << std::flush;

    Result<CampaignResult> run = coordinator.run(bundle, jobs);
    ShardStats st = coordinator.stats();
    std::cerr << "vrc_sim: coordinated " << st.cellResults
              << " cell results over " << st.workersSeen
              << " workers (" << st.assignmentsDispatched
              << " assignments, " << st.speculativeDispatches
              << " speculative, " << st.duplicateResults
              << " duplicates discarded, " << st.workersLost
              << " workers lost, " << st.workersQuarantined
              << " quarantined)\n";
    if (!run) {
        std::cerr << "vrc_sim: " << run.error().describe() << "\n";
        return coordinator.conflictDetected() ? 6 : 2;
    }
    return reportCampaign(jobs, run.take(), json, out_path);
}

int
runWorker(const ShardWorkerOptions &opt)
{
    Result<ShardWorkerStats> run = runShardWorker(opt);
    if (!run) {
        std::cerr << "vrc_sim: " << run.error().describe() << "\n";
        return 1;
    }
    ShardWorkerStats st = run.take();
    std::cerr << "vrc_sim: worker '" << opt.name << "' done; "
              << st.assignments << " assignments, " << st.cellsRun
              << " cells run, " << st.cellsFailed << " failed\n";
    return 0;
}

int
runServe(const ServeOptions &so)
{
    ServeServer server(so);
    Status started = server.start();
    if (!started) {
        std::cerr << "vrc_sim: " << started.error().describe()
                  << "\n";
        return 2;
    }
    if (!so.unixPath.empty())
        std::cout << "listening unix " << so.unixPath << "\n";
    if (server.tcpPort() >= 0)
        std::cout << "listening tcp 127.0.0.1:" << server.tcpPort()
                  << "\n";
    std::cout << std::flush;
    int code = server.waitUntilDrained();
    ServiceStats st = server.stats();
    std::cerr << "vrc_sim: drained; " << st.segmentsCompleted
              << " segments completed, " << st.segmentsFailed
              << " failed, " << st.sessionsPoisoned
              << " sessions poisoned, "
              << st.quarantinedClients.size()
              << " clients quarantined\n";
    return code;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string profile_name, profile_file, trace_path, value;
    HierarchyKind kind = HierarchyKind::VirtualReal;
    std::uint32_t l1 = 16 * 1024, l2 = 256 * 1024;
    std::uint32_t assoc1 = 1, assoc2 = 1, block1 = 16, block2 = 16;
    bool split = false, check = false, per_cpu = false;
    bool json = false, stream = false, summary_only = false;
    bool sweep = false, serve = false;
    bool coordinate = false, shard_worker = false;
    ShardWorkerOptions worker_opt;
    std::size_t shard_cells = 0;
    ServeOptions serve_opt;
    TimingMode timing_mode = TimingMode::Analytic;
    CampaignOptions campaign;
    ArrayProtection protect = ArrayProtection::Secded;
    std::string out_path;
    std::uint64_t events = 0;
    double warmup = 0.0;
    double scale = 1.0;

    for (int i = 1; i < argc; ++i) {
        if (argValue(argv[i], "--profile-file", value))
            profile_file = value;
        else if (argValue(argv[i], "--profile", value))
            profile_name = value;
        else if (argValue(argv[i], "--trace", value))
            trace_path = value;
        else if (argValue(argv[i], "--org", value))
            kind = parseOrg(value);
        else if (std::strcmp(argv[i], "--list-orgs") == 0)
            listOrgs();
        else if (argValue(argv[i], "--l1", value))
            l1 = std::strtoul(value.c_str(), nullptr, 0);
        else if (argValue(argv[i], "--l2", value))
            l2 = std::strtoul(value.c_str(), nullptr, 0);
        else if (argValue(argv[i], "--assoc1", value))
            assoc1 = std::strtoul(value.c_str(), nullptr, 0);
        else if (argValue(argv[i], "--assoc2", value))
            assoc2 = std::strtoul(value.c_str(), nullptr, 0);
        else if (argValue(argv[i], "--block1", value))
            block1 = std::strtoul(value.c_str(), nullptr, 0);
        else if (argValue(argv[i], "--block2", value))
            block2 = std::strtoul(value.c_str(), nullptr, 0);
        else if (argValue(argv[i], "--scale", value))
            scale = std::atof(value.c_str());
        else if (argValue(argv[i], "--timing", value)) {
            std::optional<TimingMode> m = parseTimingMode(value);
            if (!m)
                fatal("unknown timing mode: ", value);
            timing_mode = *m;
        } else if (std::strcmp(argv[i], "--split") == 0)
            split = true;
        else if (std::strcmp(argv[i], "--stream") == 0)
            stream = true;
        else if (std::strcmp(argv[i], "--check") == 0)
            check = true;
        else if (std::strcmp(argv[i], "--per-cpu") == 0)
            per_cpu = true;
        else if (std::strcmp(argv[i], "--json") == 0)
            json = true;
        else if (std::strcmp(argv[i], "--summary") == 0)
            summary_only = true;
        else if (std::strcmp(argv[i], "--serve") == 0)
            serve = true;
        else if (std::strcmp(argv[i], "--coordinate") == 0)
            coordinate = true;
        else if (std::strcmp(argv[i], "--shard-worker") == 0)
            shard_worker = true;
        else if (argValue(argv[i], "--connect-unix", value))
            worker_opt.connectUnix = value;
        else if (argValue(argv[i], "--connect-tcp", value))
            worker_opt.connectTcp = static_cast<int>(
                std::strtol(value.c_str(), nullptr, 0));
        else if (argValue(argv[i], "--worker-name", value))
            worker_opt.name = value;
        else if (argValue(argv[i], "--heartbeat", value))
            worker_opt.heartbeatSeconds = std::atof(value.c_str());
        else if (argValue(argv[i], "--shard-cells", value))
            shard_cells = std::strtoul(value.c_str(), nullptr, 0);
        else if (argValue(argv[i], "--listen-unix", value))
            serve_opt.unixPath = value;
        else if (argValue(argv[i], "--listen-tcp", value))
            serve_opt.tcpPort = static_cast<int>(
                std::strtol(value.c_str(), nullptr, 0));
        else if (argValue(argv[i], "--workers", value))
            serve_opt.workers = static_cast<unsigned>(
                std::strtoul(value.c_str(), nullptr, 0));
        else if (argValue(argv[i], "--queue", value))
            serve_opt.queueCap =
                std::strtoul(value.c_str(), nullptr, 0);
        else if (argValue(argv[i], "--per-client", value))
            serve_opt.perClientCap =
                std::strtoul(value.c_str(), nullptr, 0);
        else if (argValue(argv[i], "--read-timeout", value))
            serve_opt.readTimeoutSeconds = std::atof(value.c_str());
        else if (argValue(argv[i], "--quarantine-threshold", value))
            serve_opt.quarantineThreshold = static_cast<unsigned>(
                std::strtoul(value.c_str(), nullptr, 0));
        else if (argValue(argv[i], "--events", value))
            events = std::strtoull(value.c_str(), nullptr, 0);
        else if (argValue(argv[i], "--warmup", value))
            warmup = std::atof(value.c_str());
        else if (std::strcmp(argv[i], "--sweep") == 0)
            sweep = true;
        else if (argValue(argv[i], "--checkpoint", value))
            campaign.checkpoint = value;
        else if (std::strcmp(argv[i], "--resume") == 0)
            campaign.resume = true;
        else if (argValue(argv[i], "--deadline", value))
            campaign.deadlineSeconds = std::atof(value.c_str());
        else if (argValue(argv[i], "--max-retries", value))
            campaign.maxRetries = static_cast<unsigned>(
                std::strtoul(value.c_str(), nullptr, 0));
        else if (argValue(argv[i], "--manifest", value))
            campaign.manifest = value;
        else if (argValue(argv[i], "--out", value))
            out_path = value;
        else if (argValue(argv[i], "--jobs", value))
            campaign.jobs = static_cast<unsigned>(
                std::strtoul(value.c_str(), nullptr, 0));
        else if (argValue(argv[i], "--inject-faults", value)) {
            Status armed = configureFaultInjection(value);
            if (!armed)
                fatal(armed.error().describe());
        } else if (argValue(argv[i], "--soft-errors", value)) {
            Status armed = configureSoftErrors(value);
            if (!armed)
                fatal(armed.error().describe());
        } else if (argValue(argv[i], "--protect", value)) {
            std::optional<ArrayProtection> p = parseArrayProtection(value);
            if (!p)
                fatal("unknown protection policy: ", value);
            protect = *p;
        } else
            usage();
    }
    if (shard_worker)
        return runWorker(worker_opt);
    if (serve) {
        serve_opt.segmentDeadline = campaign.deadlineSeconds;
        serve_opt.maxRetries = campaign.maxRetries;
        serve_opt.manifest = campaign.manifest;
        probeWritable("service manifest (--manifest)",
                      serve_opt.manifest);
        return runServe(serve_opt);
    }
    if (profile_name.empty() && profile_file.empty())
        usage();

    WorkloadProfile profile = profile_file.empty()
        ? profileByName(profile_name)
        : loadProfile(profile_file);
    profile = scaled(profile, scale);
    if (stream && (!trace_path.empty() || warmup > 0.0))
        fatal("--stream cannot be combined with --trace or --warmup");
    if (coordinate) {
        if (stream || sweep)
            fatal("--coordinate cannot be combined with --stream "
                  "or --sweep");
        if (!trace_path.empty() || !profile_file.empty())
            fatal("--coordinate needs a built-in --profile: workers "
                  "regenerate the trace from its name");
        probeWritable("campaign result (--out)", out_path);
        probeWritable("failure manifest (--manifest)",
                      campaign.manifest);
        ShardCoordinatorOptions co;
        co.listenUnix = serve_opt.unixPath;
        co.listenTcp = serve_opt.tcpPort;
        co.profileScale = scale;
        co.cellsPerShard = shard_cells;
        co.deadlineSeconds = campaign.deadlineSeconds;
        co.maxRetries = campaign.maxRetries;
        co.checkpoint = campaign.checkpoint;
        co.resume = campaign.resume;
        co.manifest = campaign.manifest;
        return runCoordinate(generateTrace(profile), co, json,
                             out_path, timing_mode);
    }
    if (sweep) {
        if (stream)
            fatal("--sweep cannot be combined with --stream");
        probeWritable("campaign result (--out)", out_path);
        probeWritable("failure manifest (--manifest)", campaign.manifest);
        TraceBundle bundle;
        if (!trace_path.empty()) {
            Result<std::vector<TraceRecord>> loaded =
                tryLoadTrace(trace_path);
            if (!loaded) {
                std::cerr << "vrc_sim: " << loaded.error().describe()
                          << "\n";
                return 2;
            }
            bundle.profile = profile;
            bundle.records = loaded.take();
        } else {
            bundle = generateTrace(profile);
        }
        return runSweep(bundle, campaign, json, out_path, timing_mode);
    }

    std::vector<TraceRecord> records;
    if (!trace_path.empty()) {
        records = loadTrace(trace_path);
    } else if (!stream) {
        records = generateTrace(profile).records;
    }

    MachineConfig mc =
        makeMachineConfig(kind, l1, l2, profile.pageSize, split);
    mc.hierarchy.l1.assoc = assoc1;
    mc.hierarchy.l2.assoc = assoc2;
    mc.hierarchy.l1.blockBytes = block1;
    mc.hierarchy.l2.blockBytes = block2;
    mc.hierarchy.l1.protection = protect;
    mc.hierarchy.l2.protection = protect;
    mc.timingMode = timing_mode;
    if (check)
        mc.invariantPeriod = 10'000;

    MpSimulator sim(mc, profile);

    std::uint64_t printed = 0;
    CallbackObserver printer([&](const HierarchyEvent &ev) {
        if (printed++ >= events)
            return;
        std::cout << "[cpu" << ev.cpu << " @" << ev.refIndex << "] "
                  << eventKindName(ev.kind) << " va=0x" << std::hex
                  << ev.vaddr << " pa=0x" << ev.paddr << std::dec
                  << "\n";
    });
    if (events > 0) {
        for (CpuId c = 0; c < sim.cpuCount(); ++c)
            sim.hierarchy(c).setObserver(&printer);
    }

    try {
        if (stream) {
            TraceStream src(profile);
            sim.run(src);
        } else if (warmup > 0.0 && warmup < 1.0) {
            std::size_t cut = static_cast<std::size_t>(
                records.size() * warmup);
            for (std::size_t i = 0; i < cut; ++i)
                sim.step(records[i]);
            sim.resetStats();
            for (std::size_t i = cut; i < records.size(); ++i)
                sim.step(records[i]);
        } else {
            sim.run(records);
        }
    } catch (const FaultUnrecoverable &mc_fault) {
        std::cerr << "vrc_sim: machine check after "
                  << sim.refsProcessed()
                  << " references: " << mc_fault.what() << "\n";
        return 4;
    }
    if (check)
        sim.checkInvariants();

    if (summary_only) {
        SimJob job{kind, l1, l2, split,
                   check ? std::uint64_t{10'000} : 0, timing_mode};
        std::cout << encodeSummaryLine(0,
                                       summarizeSimulation(sim, job))
                  << "\n";
        return 0;
    }

    if (json) {
        std::cout << toJson(sim) << "\n";
        return 0;
    }

    TextTable t;
    t.row().cell("metric").cell("value");
    t.separator();
    t.row().cell("organization").cell(hierarchyKindName(kind));
    t.row().cell("geometry").cell(
        sizeLabel(l1, l2) + (split ? " split" : " unified"));
    t.row().cell("references").cell(sim.refsProcessed());
    t.row().cell("h1").cell(sim.h1(), 4);
    t.row().cell("h2 (local)").cell(sim.h2(), 4);
    t.row().cell("h1 instr").cell(sim.h1ForType(RefType::Instr), 4);
    t.row().cell("h1 read").cell(sim.h1ForType(RefType::Read), 4);
    t.row().cell("h1 write").cell(sim.h1ForType(RefType::Write), 4);
    t.row().cell("synonym hits").cell(sim.totalCounter("synonym_hits"));
    t.row().cell("synonym moves").cell(
        sim.totalCounter("synonym_moves"));
    t.row().cell("write-back cancels").cell(
        sim.totalCounter("writeback_cancels"));
    t.row().cell("swapped write-backs").cell(
        sim.totalCounter("swapped_writebacks"));
    t.row().cell("inclusion invalidations").cell(
        sim.totalCounter("inclusion_invalidations"));
    t.row().cell("L1 coherence messages").cell(
        sim.totalCounter("l1_coherence_msgs"));
    t.row().cell("bus transactions").cell(sim.bus().transactions());
    t.row().cell("memory writes").cell(
        sim.totalCounter("memory_writes"));
    t.row().cell("write-buffer stalls").cell(
        sim.totalCounter("wb_stalls"));
    t.separator();
    t.row().cell("timing mode").cell(timingModeName(sim.timingMode()));
    t.row().cell("avg access time").cell(sim.measuredAccessTime(), 4);
    if (sim.timingMode() == TimingMode::Cycle) {
        t.row().cell("avg access cycles").cell(sim.avgAccessCycles(), 4);
        t.row().cell("bus utilization").cell(sim.busUtilization(), 4);
        t.row().cell("avg bus wait/ref").cell(sim.avgBusWait(), 4);
        t.row().cell("bus busy ticks").cell(sim.busBusyTime(), 1);
        t.row().cell("bus wait ticks").cell(sim.busWaitTime(), 1);
    }
    if (softErrorsArmed()) {
        t.separator();
        t.row().cell("protection").cell(arrayProtectionName(protect));
        t.row().cell("soft faults tag").cell(
            sim.totalCounter("soft_faults_tag"));
        t.row().cell("soft faults state").cell(
            sim.totalCounter("soft_faults_state"));
        t.row().cell("soft faults ptr").cell(
            sim.totalCounter("soft_faults_ptr"));
        t.row().cell("soft masked").cell(sim.totalCounter("soft_masked"));
        t.row().cell("soft silent").cell(sim.totalCounter("soft_silent"));
        t.row().cell("soft corrected").cell(
            sim.totalCounter("soft_corrected"));
        t.row().cell("soft detected").cell(
            sim.totalCounter("soft_detected"));
        t.row().cell("soft recovered").cell(
            sim.totalCounter("soft_recovered"));
        t.row().cell("soft refetches (L2)").cell(
            sim.totalCounter("soft_refetches_l2"));
        t.row().cell("soft refetches (bus)").cell(
            sim.totalCounter("soft_refetches_bus"));
        t.row().cell("presence scrubs").cell(
            sim.totalCounter("presence_scrubs"));
        t.row().cell("machine checks").cell(
            sim.totalCounter("machine_checks"));
        t.row().cell("bus timeouts").cell(
            sim.bus().stats().value("soft_timeouts"));
        t.row().cell("bus retries").cell(
            sim.bus().stats().value("soft_retries"));
    }
    std::cout << t;

    TimingParams tp;
    std::cout << "\ntwo-term average access time (t2 = 4*t1): "
              << avgAccessTimeTwoTerm(sim.h1(), sim.h2(), tp) << "\n";

    if (per_cpu) {
        TextTable pc;
        bool cycle = sim.timingMode() == TimingMode::Cycle;
        auto &hdr = pc.row()
            .cell("cpu")
            .cell("refs")
            .cell("h1")
            .cell("h2")
            .cell("l1 msgs")
            .cell("writebacks");
        if (cycle)
            hdr.cell("clock").cell("bus wait");
        pc.separator();
        for (CpuId c = 0; c < sim.cpuCount(); ++c) {
            const auto &h = sim.hierarchy(c);
            auto &row = pc.row()
                .cell(c)
                .cell(h.stats().value("refs"))
                .cell(h.h1(), 4)
                .cell(h.h2(), 4)
                .cell(h.stats().value("l1_coherence_msgs"))
                .cell(h.stats().value("writebacks"));
            if (cycle) {
                row.cell(sim.cpuClock(c), 1)
                    .cell(sim.clock(c).busWaitTicks(), 1);
            }
        }
        std::cout << "\n" << pc;
    }
    return 0;
}
