/**
 * @file
 * Trace generation CLI.
 *
 * Generates a synthetic multiprocessor trace from one of the built-in
 * workload profiles (optionally rescaled or reseeded) and writes it to
 * a file in the binary or text format, or prints its characteristics.
 *
 * Usage:
 *   vrc_tracegen --profile=pops [--scale=0.1] [--seed=N]
 *                [--out=trace.vrct | --text-out=trace.txt] [--stats]
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "base/log.hh"
#include "base/table.hh"
#include "trace/generator.hh"
#include "trace/profile_io.hh"
#include "trace/trace_io.hh"
#include "trace/trace_stats.hh"

using namespace vrc;

namespace
{

[[noreturn]] void
usage()
{
    std::cerr <<
        "usage: vrc_tracegen --profile=<pops|thor|abaqus> [options]\n"
        "  --profile-file=<path>  load a custom profile file instead\n"
        "  --scale=<f>      rescale trace length (default 1.0)\n"
        "  --seed=<n>       override the profile's RNG seed\n"
        "  --cpus=<n>       override the CPU count\n"
        "  --out=<path>     write binary trace\n"
        "  --text-out=<path> write text trace\n"
        "  --stats          print Table-5-style characteristics\n"
        "  --bursts         print the writes-per-call histogram\n";
    std::exit(2);
}

bool
argValue(const char *arg, const char *name, std::string &out)
{
    std::size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
        out = arg + n + 1;
        return true;
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string profile_name, profile_file, out_path, text_path, value;
    double scale = 1.0;
    bool print_stats = false, print_bursts = false;
    std::uint64_t seed = 0;
    bool seed_set = false;
    std::uint32_t cpus = 0;

    for (int i = 1; i < argc; ++i) {
        if (argValue(argv[i], "--profile-file", value)) {
            profile_file = value;
        } else if (argValue(argv[i], "--profile", value)) {
            profile_name = value;
        } else if (argValue(argv[i], "--scale", value)) {
            scale = std::atof(value.c_str());
        } else if (argValue(argv[i], "--seed", value)) {
            seed = std::strtoull(value.c_str(), nullptr, 0);
            seed_set = true;
        } else if (argValue(argv[i], "--cpus", value)) {
            cpus = static_cast<std::uint32_t>(
                std::strtoul(value.c_str(), nullptr, 0));
        } else if (argValue(argv[i], "--out", value)) {
            out_path = value;
        } else if (argValue(argv[i], "--text-out", value)) {
            text_path = value;
        } else if (std::strcmp(argv[i], "--stats") == 0) {
            print_stats = true;
        } else if (std::strcmp(argv[i], "--bursts") == 0) {
            print_bursts = true;
        } else {
            usage();
        }
    }
    if (profile_name.empty() && profile_file.empty())
        usage();

    WorkloadProfile p = profile_file.empty()
        ? profileByName(profile_name)
        : loadProfile(profile_file);
    p = scaled(p, scale);
    if (seed_set)
        p.seed = seed;
    if (cpus != 0)
        p.numCpus = cpus;

    TraceBundle bundle = generateTrace(p);
    std::cerr << "generated " << bundle.records.size() << " records\n";

    if (!out_path.empty()) {
        saveTrace(out_path, bundle.records);
        std::cerr << "wrote binary trace to " << out_path << "\n";
    }
    if (!text_path.empty()) {
        std::ofstream os(text_path);
        if (!os)
            fatal("cannot open ", text_path);
        writeTraceText(os, bundle.records);
        std::cerr << "wrote text trace to " << text_path << "\n";
    }

    if (print_stats) {
        auto c = characterize(bundle.records);
        TextTable t;
        t.row()
            .cell("cpus")
            .cell("total refs")
            .cell("instr")
            .cell("read")
            .cell("write")
            .cell("switches")
            .cell("processes");
        t.separator();
        t.row()
            .cell(c.numCpus)
            .cell(c.totalRefs)
            .cell(c.instrCount)
            .cell(c.dataReads)
            .cell(c.dataWrites)
            .cell(c.contextSwitches)
            .cell(c.processCount);
        std::cout << t;
    }
    if (print_bursts) {
        const Histogram &h = bundle.stats.callWrites;
        TextTable t;
        t.row().cell("writes/call").cell("count");
        t.separator();
        for (std::uint64_t k = 1; k < h.maxBucket(); ++k)
            t.row().cell(k).cell(h.count(k));
        t.row()
            .cell(std::to_string(h.maxBucket()) + "+")
            .cell(h.overflowCount());
        std::cout << t;
    }
    return 0;
}
