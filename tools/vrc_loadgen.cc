/**
 * @file
 * Load/chaos generator for the simulation service (vrc-sim --serve).
 *
 * Spawns a mix of clients against a running server:
 *
 *  - well-behaved clients split a workload's trace into segments,
 *    submit them concurrently, retry shed/lost segments a bounded
 *    number of times (reconnecting when the server -- or an injected
 *    fault -- cuts the connection), and with --verify byte-compare
 *    every RESULT line against the batch code path run in-process;
 *  - malformed clients send garbage after HELLO, repeatedly, and
 *    expect to end up quarantined by name;
 *  - disconnect clients hang up mid-submit and mid-wait;
 *  - slowloris clients dribble a frame a few bytes at a time and
 *    expect the server's read-timeout guillotine.
 *
 * Exit code: 0 when every well-behaved segment was answered (or
 * tolerably drained with --tolerate-drain) and no verified mismatch;
 * 1 otherwise; 2 on usage errors.
 */

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/atomic_file.hh"
#include "base/log.hh"
#include "serve/client.hh"
#include "serve/wire.hh"
#include "sim/campaign.hh"
#include "sim/experiment.hh"
#include "trace/generator.hh"
#include "trace/workload.hh"

using namespace vrc;

namespace
{

[[noreturn]] void
usage()
{
    std::cerr <<
        "usage: vrc_loadgen (--connect-unix=<path> | --connect-tcp=<port>)\n"
        "  --profile=<pops|thor|abaqus>  workload (default pops)\n"
        "  --scale=<f>      rescale the generated trace (default 1.0)\n"
        "  --org=<vr|rr|rr-noincl>  organization (default vr)\n"
        "  --l1=<bytes> --l2=<bytes>  cache sizes (default 16K/256K)\n"
        "  --clients=<n>    well-behaved clients (default 4)\n"
        "  --segments=<n>   trace segments to submit (default 8)\n"
        "  --malformed=<n>  garbage-sending clients (default 0)\n"
        "  --disconnect=<n> mid-segment hangup clients (default 0)\n"
        "  --slowloris=<n>  byte-dribbling clients (default 0)\n"
        "  --verify         byte-compare results against batch mode\n"
        "  --retry=<n>      resubmits after shed/lost (default 3)\n"
        "  --timeout=<s>    per-reply wait (default 60)\n"
        "  --tolerate-drain count drained/unanswered segments as ok\n"
        "                   (for soaks that SIGTERM the server)\n"
        "  --out=<path>     write received summary lines in segment\n"
        "                   order (diffs against vrc_sim --summary)\n";
    std::exit(2);
}

bool
argValue(const char *arg, const char *name, std::string &out)
{
    std::size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
        out = arg + n + 1;
        return true;
    }
    return false;
}

struct Config
{
    std::string unixPath;
    int tcpPort = -1;
    std::string profileName = "pops";
    double scale = 1.0;
    HierarchyKind kind = HierarchyKind::VirtualReal;
    std::uint32_t l1 = 16 * 1024, l2 = 256 * 1024;
    unsigned clients = 4;
    unsigned segments = 8;
    unsigned malformed = 0;
    unsigned disconnect = 0;
    unsigned slowloris = 0;
    bool verify = false;
    bool tolerateDrain = false;
    unsigned retries = 3;
    double timeout = 60.0;
    std::string outPath;
};

/** Per-segment outcome, filled in by whichever client ran it. */
enum class SegOutcome
{
    Pending,
    Ok,
    Mismatch,
    Drained,
    Failed,
};

struct Shared
{
    Config cfg;
    TraceBundle bundle;
    SimJob job;
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    std::vector<SegOutcome> outcome;
    std::vector<std::string> lines; ///< received summary lines
    std::vector<std::string> expected; ///< batch lines (--verify)
    std::mutex mu;
    std::atomic<unsigned> shedRetries{0};
    std::atomic<unsigned> reconnects{0};
    std::atomic<unsigned> quarantinedSeen{0};
    std::atomic<unsigned> slowlorisKilled{0};
};

Status
connectClient(const Config &cfg, ServeClient &c)
{
    if (!cfg.unixPath.empty())
        return c.connectUnix(cfg.unixPath);
    return c.connectTcp(cfg.tcpPort);
}

SubmitRequest
makeSubmit(const Shared &sh, std::size_t seg)
{
    SubmitRequest req;
    req.segmentId = seg;
    req.job = sh.job;
    req.profileName = sh.cfg.profileName;
    req.scale = sh.cfg.scale;
    auto [lo, hi] = sh.ranges[seg];
    req.records.assign(sh.bundle.records.begin() + lo,
                       sh.bundle.records.begin() + hi);
    return req;
}

void
recordOutcome(Shared &sh, std::size_t seg, SegOutcome out,
              const std::string &line = "")
{
    std::lock_guard<std::mutex> g(sh.mu);
    sh.outcome[seg] = out;
    if (!line.empty())
        sh.lines[seg] = line;
}

/** A well-behaved client running its share of the segments. */
void
goodClient(Shared &sh, unsigned id)
{
    const Config &cfg = sh.cfg;
    std::string name = "lg-" + std::to_string(id);
    ServeClient c;
    bool connected = false;

    for (std::size_t seg = id; seg < sh.ranges.size();
         seg += cfg.clients) {
        bool answered = false;
        for (unsigned attempt = 0; attempt <= cfg.retries && !answered;
             ++attempt) {
            if (!connected) {
                Status conn = connectClient(cfg, c);
                if (!conn) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(50));
                    continue;
                }
                if (!c.hello(name)) {
                    c.close();
                    continue;
                }
                connected = true;
                if (attempt > 0 || seg != id)
                    sh.reconnects.fetch_add(1);
            }
            if (!c.submit(makeSubmit(sh, seg))) {
                c.close();
                connected = false;
                continue;
            }
            // Wait for this segment's reply; tolerate interleaved
            // frames for other segments (there are none today -- one
            // in-flight segment per client -- but stay honest).
            for (;;) {
                Result<Frame> fr = c.readFrame(cfg.timeout);
                if (!fr) {
                    // Timeout / EOF / torn frame: reconnect, retry.
                    c.close();
                    connected = false;
                    break;
                }
                Frame f = fr.take();
                if (f.type == FrameType::Result) {
                    Result<ResultReply> r = decodeResult(f.payload);
                    if (!r || r.value().segmentId != seg)
                        continue;
                    std::string line = r.take().summaryLine;
                    SegOutcome out = SegOutcome::Ok;
                    if (cfg.verify && line != sh.expected[seg])
                        out = SegOutcome::Mismatch;
                    recordOutcome(sh, seg, out, line);
                    answered = true;
                    break;
                }
                if (f.type == FrameType::Shed) {
                    sh.shedRetries.fetch_add(1);
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(100));
                    break; // resubmit on the same connection
                }
                if (f.type == FrameType::Draining) {
                    recordOutcome(sh, seg, SegOutcome::Drained);
                    answered = true; // no point retrying
                    break;
                }
                if (f.type == FrameType::Error) {
                    Result<ErrorReply> e =
                        decodeErrorReply(f.payload);
                    warn(name, ": segment ", seg, " failed: ",
                         e ? e.value().message : "undecodable error");
                    recordOutcome(sh, seg, SegOutcome::Failed);
                    answered = true;
                    break;
                }
                if (f.type == FrameType::Quarantined ||
                    f.type == FrameType::Bye) {
                    c.close();
                    connected = false;
                    break;
                }
                // Unknown reply type: ignore.
            }
        }
        if (!answered)
            recordOutcome(sh, seg, SegOutcome::Failed);
    }
    if (connected)
        (void)c.send(encodeBye());
}

/** Sends garbage until quarantined by name. */
void
malformedClient(Shared &sh, unsigned id)
{
    const Config &cfg = sh.cfg;
    std::string name = "chaos-mal-" + std::to_string(id);
    for (unsigned round = 0; round < 8; ++round) {
        ServeClient c;
        if (!connectClient(cfg, c)) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
            continue;
        }
        if (!c.hello(name))
            continue;
        // The server may already have us quarantined: then the HELLO
        // answer is a QUARANTINED frame and the socket closes.
        Result<Frame> fr = c.readFrame(0.2);
        if (fr && fr.value().type == FrameType::Quarantined) {
            sh.quarantinedSeen.fetch_add(1);
            return;
        }
        // Not banned yet: poison this session with frame garbage.
        (void)c.send("this is definitely not a VRCW frame");
        // Drain whatever the server says until it hangs up.
        while (c.readFrame(1.0)) {
        }
        c.close();
    }
}

/** Hangs up mid-submit and mid-wait. */
void
disconnectClient(Shared &sh, unsigned id)
{
    const Config &cfg = sh.cfg;
    std::string name = "chaos-dc-" + std::to_string(id);
    for (unsigned round = 0; round < 4; ++round) {
        ServeClient c;
        if (!connectClient(cfg, c))
            return;
        if (!c.hello(name))
            continue;
        std::string frame = encodeSubmit(
            makeSubmit(sh, id % sh.ranges.size()));
        if (round % 2 == 0) {
            // Half a SUBMIT, then vanish: the server must reap the
            // torn session, not wait forever.
            (void)c.send(frame.substr(0, frame.size() / 2));
            c.close();
        } else {
            // Full SUBMIT, then vanish while the segment runs: the
            // server must abandon the work, not crash on the reply.
            (void)c.send(frame);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
            c.close();
        }
    }
}

/** Dribbles a frame slower than the server's read timeout. */
void
slowlorisClient(Shared &sh, unsigned id)
{
    const Config &cfg = sh.cfg;
    ServeClient c;
    if (!connectClient(cfg, c))
        return;
    if (!c.hello("chaos-slow-" + std::to_string(id)))
        return;
    std::string frame =
        encodeSubmit(makeSubmit(sh, id % sh.ranges.size()));
    // One byte every 200 ms: a 9-byte header alone outlasts any
    // sub-2s read timeout. The server must cut us off; a successful
    // write after the guillotine would mean it did not.
    for (std::size_t i = 0; i < frame.size(); ++i) {
        if (!c.send(frame.substr(i, 1))) {
            sh.slowlorisKilled.fetch_add(1);
            return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        Result<Frame> fr = c.readFrame(0.001);
        if (!fr && fr.error().kind == ErrorKind::Io) {
            sh.slowlorisKilled.fetch_add(1); // peer closed on us
            return;
        }
        if (fr && (fr.value().type == FrameType::Error ||
                   fr.value().type == FrameType::Bye)) {
            sh.slowlorisKilled.fetch_add(1);
            return;
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg;
    std::string value;
    for (int i = 1; i < argc; ++i) {
        if (argValue(argv[i], "--connect-unix", value))
            cfg.unixPath = value;
        else if (argValue(argv[i], "--connect-tcp", value))
            cfg.tcpPort = static_cast<int>(
                std::strtol(value.c_str(), nullptr, 0));
        else if (argValue(argv[i], "--profile", value))
            cfg.profileName = value;
        else if (argValue(argv[i], "--scale", value))
            cfg.scale = std::atof(value.c_str());
        else if (argValue(argv[i], "--org", value)) {
            if (value == "vr")
                cfg.kind = HierarchyKind::VirtualReal;
            else if (value == "rr")
                cfg.kind = HierarchyKind::RealRealIncl;
            else if (value == "rr-noincl")
                cfg.kind = HierarchyKind::RealRealNoIncl;
            else
                usage();
        } else if (argValue(argv[i], "--l1", value))
            cfg.l1 = std::strtoul(value.c_str(), nullptr, 0);
        else if (argValue(argv[i], "--l2", value))
            cfg.l2 = std::strtoul(value.c_str(), nullptr, 0);
        else if (argValue(argv[i], "--clients", value))
            cfg.clients = static_cast<unsigned>(
                std::strtoul(value.c_str(), nullptr, 0));
        else if (argValue(argv[i], "--segments", value))
            cfg.segments = static_cast<unsigned>(
                std::strtoul(value.c_str(), nullptr, 0));
        else if (argValue(argv[i], "--malformed", value))
            cfg.malformed = static_cast<unsigned>(
                std::strtoul(value.c_str(), nullptr, 0));
        else if (argValue(argv[i], "--disconnect", value))
            cfg.disconnect = static_cast<unsigned>(
                std::strtoul(value.c_str(), nullptr, 0));
        else if (argValue(argv[i], "--slowloris", value))
            cfg.slowloris = static_cast<unsigned>(
                std::strtoul(value.c_str(), nullptr, 0));
        else if (std::strcmp(argv[i], "--verify") == 0)
            cfg.verify = true;
        else if (std::strcmp(argv[i], "--tolerate-drain") == 0)
            cfg.tolerateDrain = true;
        else if (argValue(argv[i], "--retry", value))
            cfg.retries = static_cast<unsigned>(
                std::strtoul(value.c_str(), nullptr, 0));
        else if (argValue(argv[i], "--timeout", value))
            cfg.timeout = std::atof(value.c_str());
        else if (argValue(argv[i], "--out", value))
            cfg.outPath = value;
        else
            usage();
    }
    if (cfg.unixPath.empty() && cfg.tcpPort < 0)
        usage();
    if (cfg.clients == 0 || cfg.segments == 0)
        usage();

    Shared sh;
    sh.cfg = cfg;
    sh.bundle =
        generateTrace(scaled(profileByName(cfg.profileName),
                             cfg.scale));
    sh.job = SimJob{cfg.kind, cfg.l1, cfg.l2, false, 0,
                    TimingMode::Analytic};

    // Contiguous segments covering the whole trace.
    std::size_t total = sh.bundle.records.size();
    std::size_t per = total / cfg.segments;
    if (per == 0)
        fatal("trace of ", total, " records is too short for ",
              cfg.segments, " segments");
    for (unsigned s = 0; s < cfg.segments; ++s) {
        std::size_t lo = s * per;
        std::size_t hi = s + 1 == cfg.segments ? total : lo + per;
        sh.ranges.emplace_back(lo, hi);
    }
    sh.outcome.assign(cfg.segments, SegOutcome::Pending);
    sh.lines.assign(cfg.segments, "");

    if (cfg.verify) {
        // The ground truth is the batch code path itself, run
        // in-process on the same bytes the server gets.
        sh.expected.assign(cfg.segments, "");
        for (unsigned s = 0; s < cfg.segments; ++s) {
            TraceBundle seg;
            seg.profile = sh.bundle.profile;
            auto [lo, hi] = sh.ranges[s];
            seg.records.assign(sh.bundle.records.begin() + lo,
                               sh.bundle.records.begin() + hi);
            sh.expected[s] =
                encodeSummaryLine(0, runSimulationJob(seg, sh.job));
        }
    }

    std::vector<std::thread> threads;
    for (unsigned i = 0; i < cfg.clients; ++i)
        threads.emplace_back([&sh, i] { goodClient(sh, i); });
    for (unsigned i = 0; i < cfg.malformed; ++i)
        threads.emplace_back([&sh, i] { malformedClient(sh, i); });
    for (unsigned i = 0; i < cfg.disconnect; ++i)
        threads.emplace_back([&sh, i] { disconnectClient(sh, i); });
    for (unsigned i = 0; i < cfg.slowloris; ++i)
        threads.emplace_back([&sh, i] { slowlorisClient(sh, i); });
    for (std::thread &t : threads)
        t.join();

    unsigned ok = 0, mismatch = 0, drained = 0, failed = 0;
    for (SegOutcome o : sh.outcome) {
        switch (o) {
          case SegOutcome::Ok:
            ++ok;
            break;
          case SegOutcome::Mismatch:
            ++mismatch;
            break;
          case SegOutcome::Drained:
            ++drained;
            break;
          default:
            ++failed;
            break;
        }
    }
    std::cerr << "loadgen: " << ok << "/" << cfg.segments
              << " segments ok, " << mismatch << " mismatched, "
              << drained << " drained, " << failed << " failed; "
              << sh.shedRetries.load() << " shed retries, "
              << sh.reconnects.load() << " reconnects, "
              << sh.quarantinedSeen.load() << "/" << cfg.malformed
              << " malformed clients quarantined, "
              << sh.slowlorisKilled.load() << "/" << cfg.slowloris
              << " slowloris cut off\n";

    if (!cfg.outPath.empty()) {
        std::string out;
        for (unsigned s = 0; s < cfg.segments; ++s)
            if (!sh.lines[s].empty())
                out += sh.lines[s] + "\n";
        Status wrote = writeFileAtomic(cfg.outPath, out);
        if (!wrote)
            fatal("cannot write ", cfg.outPath, ": ",
                  wrote.error().message);
    }

    if (mismatch > 0)
        return 1;
    if (failed > 0 && !cfg.tolerateDrain)
        return 1;
    if (drained > 0 && !cfg.tolerateDrain)
        return 1;
    if (cfg.malformed > 0 &&
        sh.quarantinedSeen.load() == 0)
        return 1;
    return 0;
}
