/**
 * @file
 * Coherence fuzzing CLI.
 *
 * Drives randomized multiprocessor workloads against the cross-agent
 * coherence oracle (src/check). A clean run exits 0; a violation exits
 * 1 after writing a replay file and the protocol event ring (JSON) to
 * the artifacts directory, so a CI failure reproduces with a single
 * `vrc-fuzz --replay=<file>`.
 *
 * Usage:
 *   vrc-fuzz [--seed=N | --seeds=A..B] [--ops=N] [--transactions=N]
 *            [--cpus=N] [--org=vr|rr|rr-noincl|vr-rlt|mix]
 *            [--protocol=wi|wu|mix] [--split] [--sweep=N] [--mask=M]
 *            [--minimize] [--artifacts=DIR] [--json]
 *   vrc-fuzz --replay=FILE [--artifacts=DIR]
 *   vrc-fuzz --smoke
 *
 * `--smoke` enables the deliberate inclusion-bit bug and exits 0 only
 * if the oracle catches it -- run it whenever you touch the checker.
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "base/fault.hh"
#include "base/log.hh"
#include "check/fuzzer.hh"

using namespace vrc;

namespace
{

[[noreturn]] void
usage()
{
    std::cerr <<
        "usage: vrc-fuzz [options]\n"
        "  --seed=N          run one seed (default 1)\n"
        "  --seeds=A..B      run an inclusive seed range\n"
        "  --ops=N           fuzz operations per seed (default 4096)\n"
        "  --transactions=N  keep fuzzing each seed until the bus saw\n"
        "                    at least N transactions\n"
        "  --cpus=N          processors (default 4)\n"
        "  --org=<vr|rr|rr-noincl|vr-rlt|mix>  hierarchy kind (mix:\n"
        "                    derive org/protocol/split from the seed)\n"
        "  --rlt-entries=N / --rlt-assoc=N  reverse-lookup-table\n"
        "                    geometry for vr-rlt episodes (default 64/2;\n"
        "                    small on purpose to force conflicts)\n"
        "  --protocol=<wi|wu|mix>        coherence protocol\n"
        "  --split           split level-1 I/D caches\n"
        "  --sweep=N         oracle sweep period in ops (default 256)\n"
        "  --mask=M          op-category bit mask (default all)\n"
        "  --minimize        shrink a failing run before reporting\n"
        "  --replay=FILE     re-run a saved replay file\n"
        "  --artifacts=DIR   where to write replay/event files on\n"
        "                    failure (default: current directory)\n"
        "  --json            machine-readable result lines\n"
        "  --smoke           mutation smoke test: inject a known bug,\n"
        "                    succeed only if the oracle fires\n"
        "  --soft-errors=<spec>  arm the soft-error model while fuzzing\n"
        "                    (seed=N[,tag=P][,state=P][,ptr=P][,bus=P]);\n"
        "                    an episode halted by a machine check still\n"
        "                    counts as ok\n";
    std::exit(2);
}

bool
argValue(const char *arg, const char *name, std::string &out)
{
    std::size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
        out = arg + n + 1;
        return true;
    }
    return false;
}

std::string
artifactPath(const std::string &dir, const std::string &file)
{
    return dir.empty() ? file : dir + "/" + file;
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream os(path);
    if (!os) {
        std::cerr << "vrc-fuzz: cannot write " << path << "\n";
        return;
    }
    os << content;
}

void
printResult(const FuzzOptions &opt, const FuzzResult &r, bool json)
{
    if (json) {
        std::cout << "{\"seed\": " << opt.seed
                  << ", \"org\": " << static_cast<int>(opt.kind)
                  << ", \"protocol\": " << static_cast<int>(opt.protocol)
                  << ", \"ok\": " << (r.ok ? "true" : "false")
                  << ", \"ops\": " << r.opsRun
                  << ", \"refs\": " << r.refs
                  << ", \"transactions\": " << r.busTransactions
                  << ", \"machine_check\": "
                  << (r.machineCheck ? "true" : "false")
                  << "}\n";
        return;
    }
    std::cout << "seed " << opt.seed << " ["
              << hierarchyKindName(opt.kind) << ", "
              << coherencePolicyName(opt.protocol)
              << (opt.splitL1 ? ", split" : "") << "]: "
              << (r.ok ? "ok" : "VIOLATION") << " (" << r.opsRun
              << " ops, " << r.refs << " refs, " << r.busTransactions
              << " bus transactions)\n";
    if (r.machineCheck)
        std::cout << "  halted by machine check: "
                  << r.machineCheckReason << "\n";
    if (!r.ok)
        std::cout << "  " << r.violation << "\n";
}

/** Run one configured episode; write artifacts and return 1 on failure. */
int
runOne(FuzzOptions opt, bool minimize, const std::string &artifacts,
       bool json)
{
    FuzzResult r = runFuzz(opt);
    printResult(opt, r, json);
    if (r.ok)
        return 0;

    std::string stem = "fuzz-seed" + std::to_string(opt.seed);
    writeFile(artifactPath(artifacts, stem + ".replay.json"),
              replayToJson(opt));
    writeFile(artifactPath(artifacts, stem + ".events.json"),
              r.ringJson);
    std::cerr << "vrc-fuzz: wrote " << stem << ".replay.json and "
              << stem << ".events.json\n";

    if (minimize) {
        FuzzOptions small = minimizeFailure(opt);
        writeFile(artifactPath(artifacts, stem + ".min.replay.json"),
                  replayToJson(small));
        std::cerr << "vrc-fuzz: minimized to " << small.ops
                  << " ops, mask 0x" << std::hex << small.opMask
                  << std::dec << " (" << stem << ".min.replay.json)\n";
    }
    return 1;
}

/** The mutation smoke run: succeeds only when the oracle fires. */
int
runSmoke()
{
    FuzzOptions opt;
    opt.kind = HierarchyKind::VirtualReal;
    opt.mutateInclusion = true;
    opt.sweepPeriod = 1;  // catch the corruption before it cascades
    opt.ops = 2000;
    opt.cpus = 2;
    opt.frames = 8;
    opt.vpnsPerProcess = 4;

    FuzzResult r = runFuzz(opt);
    if (r.ok) {
        std::cerr << "vrc-fuzz --smoke: FAILED -- the oracle did not "
                  << "detect the injected inclusion-bit bug\n";
        return 1;
    }
    std::cout << "vrc-fuzz --smoke: ok -- oracle fired after "
              << r.opsRun << " ops: " << r.violation << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t seed_lo = 1, seed_hi = 1;
    std::string org = "vr", protocol = "wi", replay_path, artifacts;
    FuzzOptions base;
    bool split = false, minimize = false, json = false, smoke = false;
    std::string value;

    for (int i = 1; i < argc; ++i) {
        if (argValue(argv[i], "--seeds", value)) {
            std::size_t dots = value.find("..");
            if (dots == std::string::npos)
                usage();
            seed_lo = std::strtoull(value.c_str(), nullptr, 0);
            seed_hi = std::strtoull(value.c_str() + dots + 2, nullptr, 0);
            if (seed_hi < seed_lo)
                usage();
        } else if (argValue(argv[i], "--seed", value)) {
            seed_lo = seed_hi = std::strtoull(value.c_str(), nullptr, 0);
        } else if (argValue(argv[i], "--ops", value)) {
            base.ops = std::strtoull(value.c_str(), nullptr, 0);
        } else if (argValue(argv[i], "--transactions", value)) {
            base.minTransactions =
                std::strtoull(value.c_str(), nullptr, 0);
        } else if (argValue(argv[i], "--cpus", value)) {
            base.cpus = std::strtoul(value.c_str(), nullptr, 0);
        } else if (argValue(argv[i], "--org", value)) {
            org = value;
        } else if (argValue(argv[i], "--rlt-entries", value)) {
            base.rltEntries = std::strtoul(value.c_str(), nullptr, 0);
        } else if (argValue(argv[i], "--rlt-assoc", value)) {
            base.rltAssoc = std::strtoul(value.c_str(), nullptr, 0);
        } else if (argValue(argv[i], "--protocol", value)) {
            protocol = value;
        } else if (argValue(argv[i], "--sweep", value)) {
            base.sweepPeriod = std::strtoull(value.c_str(), nullptr, 0);
        } else if (argValue(argv[i], "--mask", value)) {
            base.opMask = std::strtoul(value.c_str(), nullptr, 0);
        } else if (argValue(argv[i], "--replay", value)) {
            replay_path = value;
        } else if (argValue(argv[i], "--artifacts", value)) {
            artifacts = value;
        } else if (std::strcmp(argv[i], "--split") == 0) {
            split = true;
        } else if (std::strcmp(argv[i], "--minimize") == 0) {
            minimize = true;
        } else if (std::strcmp(argv[i], "--json") == 0) {
            json = true;
        } else if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (argValue(argv[i], "--soft-errors", value)) {
            Status armed = configureSoftErrors(value);
            if (!armed)
                fatal(armed.error().describe());
        } else {
            usage();
        }
    }

    if (smoke)
        return runSmoke();

    if (!replay_path.empty()) {
        Result<FuzzOptions> opt = tryLoadReplay(replay_path);
        if (!opt) {
            std::cerr << "vrc-fuzz: " << opt.error().describe()
                      << "\n";
            return 2;
        }
        return runOne(opt.take(), minimize, artifacts, json);
    }

    int rc = 0;
    for (std::uint64_t seed = seed_lo; seed <= seed_hi; ++seed) {
        FuzzOptions opt = base;
        opt.seed = seed;
        opt.splitL1 = split;

        if (org == "mix") {
            opt.kind = kAllHierarchyKinds[seed % kHierarchyKindCount];
            opt.splitL1 =
                split || (seed / (2 * kHierarchyKindCount)) % 2 == 1;
        } else if (auto kind = hierarchyKindFromArg(org)) {
            opt.kind = *kind;
        } else {
            usage();
        }

        if (protocol == "mix") {
            opt.protocol = (seed / kHierarchyKindCount) % 2 == 0
                ? CoherencePolicy::WriteInvalidate
                : CoherencePolicy::WriteUpdate;
        } else if (protocol == "wi") {
            opt.protocol = CoherencePolicy::WriteInvalidate;
        } else if (protocol == "wu") {
            opt.protocol = CoherencePolicy::WriteUpdate;
        } else {
            usage();
        }

        rc |= runOne(opt, minimize, artifacts, json);
    }
    return rc;
}
