/**
 * @file
 * Reproduction validation campaign.
 *
 * Re-checks every qualitative claim EXPERIMENTS.md makes (the paper's
 * shapes) at a configurable trace scale and prints PASS/FAIL per
 * claim, exiting nonzero if any fails. This turns the reproduction
 * record into an executable regression suite: run it after any change
 * to the workload model or the hierarchies.
 *
 * Usage: vrc-validate [--scale=<f>]   (default 0.05)
 */

#include <cmath>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "base/table.hh"
#include "core/timing.hh"
#include "sim/experiment.hh"
#include "trace/trace_stats.hh"

using namespace vrc;

namespace
{

struct Check
{
    std::string claim;
    bool pass;
    std::string detail;
};

std::vector<Check> g_checks;

void
check(const std::string &claim, bool pass, const std::string &detail)
{
    g_checks.push_back({claim, pass, detail});
    std::cerr << (pass ? "  [pass] " : "  [FAIL] ") << claim << " ("
              << detail << ")\n";
}

std::string
fmt(double v, int prec = 3)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(prec) << v;
    return os.str();
}

const TraceBundle &
bundle(const std::string &name, double scale)
{
    static std::map<std::string, TraceBundle> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        it = cache
                 .emplace(name, generateTrace(
                                    scaled(profileByName(name), scale)))
                 .first;
    }
    return it->second;
}

std::uint64_t
sumMsgs(const SimSummary &s)
{
    std::uint64_t n = 0;
    for (auto v : s.l1MsgsPerCpu)
        n += v;
    return n;
}

} // namespace

int
main(int argc, char **argv)
{
    double scale = 0.05;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--scale=", 8) == 0)
            scale = std::atof(argv[i] + 8);
    }
    std::cerr << "validating the reproduction at scale " << scale
              << "\n";

    // --- Table 5: reference mix --------------------------------------
    for (const char *name : {"thor", "pops", "abaqus"}) {
        WorkloadProfile p = profileByName(name);
        auto c = characterize(bundle(name, scale).records);
        double total = static_cast<double>(c.totalRefs);
        bool ok =
            std::abs(c.instrCount / total - p.instrFrac) < 0.03 &&
            std::abs(c.dataReads / total - p.readFrac) < 0.03 &&
            std::abs(c.dataWrites / total - p.writeFrac) < 0.03;
        check(std::string("Table 5 mix (") + name + ")", ok,
              "instr " + fmt(c.instrCount / total) + " vs " +
                  fmt(p.instrFrac));
    }

    // --- Table 6 shapes ----------------------------------------------
    {
        SimSummary vr = runSimulation(bundle("pops", scale),
                                      HierarchyKind::VirtualReal,
                                      8 * 1024, 128 * 1024);
        SimSummary rr = runSimulation(bundle("pops", scale),
                                      HierarchyKind::RealRealIncl,
                                      8 * 1024, 128 * 1024);
        check("Table 6: h1VR == h1RR for rare-switch traces",
              std::abs(vr.h1 - rr.h1) < 0.01,
              fmt(vr.h1) + " vs " + fmt(rr.h1));
    }
    {
        SimSummary vr = runSimulation(bundle("abaqus", scale * 5),
                                      HierarchyKind::VirtualReal,
                                      16 * 1024, 256 * 1024);
        SimSummary rr = runSimulation(bundle("abaqus", scale * 5),
                                      HierarchyKind::RealRealIncl,
                                      16 * 1024, 256 * 1024);
        check("Table 6: flushing costs the V-cache under frequent "
              "switches",
              rr.h1 > vr.h1, fmt(rr.h1) + " > " + fmt(vr.h1));
        TimingParams tp;
        double x = crossoverSlowdownPct(vr.h1, vr.h2, rr.h1, rr.h2, tp);
        check("Figure 6: crossover in a small positive band",
              x > 0.0 && x < 20.0, fmt(x, 2) + "%");
    }

    // --- Table 6: h1 grows with size ---------------------------------
    {
        double prev = 0.0;
        bool mono = true;
        for (auto [l1, l2] : paperSizePairs()) {
            SimSummary s = runSimulation(bundle("thor", scale),
                                         HierarchyKind::VirtualReal,
                                         l1, l2);
            mono = mono && s.h1 > prev;
            prev = s.h1;
        }
        check("Table 6: h1 grows with cache size", mono,
              "final h1 " + fmt(prev));
    }

    // --- Tables 11-13: shielding -------------------------------------
    {
        SimSummary vr = runSimulation(bundle("pops", scale),
                                      HierarchyKind::VirtualReal,
                                      4 * 1024, 64 * 1024);
        SimSummary ni = runSimulation(bundle("pops", scale),
                                      HierarchyKind::RealRealNoIncl,
                                      4 * 1024, 64 * 1024);
        check("Tables 11-13: no-inclusion L1 disturbed several-fold "
              "more",
              sumMsgs(ni) > 2 * sumMsgs(vr),
              std::to_string(sumMsgs(ni)) + " vs " +
                  std::to_string(sumMsgs(vr)));
    }

    // --- Tables 8-10: split vs unified -------------------------------
    {
        SimSummary uni = runSimulation(bundle("thor", scale),
                                       HierarchyKind::VirtualReal,
                                       8 * 1024, 128 * 1024, false);
        SimSummary spl = runSimulation(bundle("thor", scale),
                                       HierarchyKind::VirtualReal,
                                       8 * 1024, 128 * 1024, true);
        check("Tables 8-10: split I/D close to unified",
              std::abs(spl.h1 - uni.h1) < 0.05,
              fmt(spl.h1) + " vs " + fmt(uni.h1));
    }

    // --- Section 2: inclusion invalidations rare ----------------------
    {
        MachineConfig mc = makeMachineConfig(
            HierarchyKind::VirtualReal, 16 * 1024, 256 * 1024, 4096);
        mc.hierarchy.l1.assoc = 2;
        mc.hierarchy.l2.assoc = 2;
        const TraceBundle &b = bundle("pops", scale);
        MpSimulator sim(mc, b.profile);
        sim.run(b.records);
        check("Section 2: inclusion invalidations rare at 2-way",
              sim.totalCounter("inclusion_invalidations") <
                  sim.refsProcessed() / 2000,
              std::to_string(
                  sim.totalCounter("inclusion_invalidations")) +
                  " over " + std::to_string(sim.refsProcessed()) +
                  " refs");
    }

    // --- Inclusion equalizes L2 misses -------------------------------
    {
        const TraceBundle &b = bundle("pops", scale);
        auto misses = [&](HierarchyKind kind) {
            MachineConfig mc = makeMachineConfig(kind, 8 * 1024,
                                                 128 * 1024, 4096);
            MpSimulator sim(mc, b.profile);
            sim.run(b.records);
            return sim.totalCounter("misses");
        };
        double ratio =
            static_cast<double>(misses(HierarchyKind::VirtualReal)) /
            static_cast<double>(misses(HierarchyKind::RealRealIncl));
        check("Section 4: inclusion equalizes level-2 misses",
              std::abs(ratio - 1.0) < 0.02, "ratio " + fmt(ratio));
    }

    // --- Summary -------------------------------------------------------
    TextTable t;
    t.row().cell("claim").cell("verdict");
    t.separator();
    int failures = 0;
    for (const Check &c : g_checks) {
        t.row().cell(c.claim).cell(c.pass ? "PASS" : "FAIL");
        failures += c.pass ? 0 : 1;
    }
    std::cout << t << "\n"
              << (g_checks.size() - failures) << "/" << g_checks.size()
              << " reproduction claims hold\n";
    return failures == 0 ? 0 : 1;
}
