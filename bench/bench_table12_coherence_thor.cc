/** @file Reproduces Table 12 (thor, 4 CPUs). */

#include "coherence_table.hh"

int
main(int argc, char **argv)
{
    return vrc::runCoherenceTable("Table 12", "thor", argc, argv);
}
