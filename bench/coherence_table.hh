/**
 * @file
 * Shared implementation of Tables 11, 12 and 13: coherence messages
 * percolating to each CPU's level-1 cache under the three
 * organizations (VR, RR with inclusion, RR without inclusion).
 */

#ifndef VRC_BENCH_COHERENCE_TABLE_HH
#define VRC_BENCH_COHERENCE_TABLE_HH

#include "bench_util.hh"

namespace vrc
{

inline int
runCoherenceTable(const std::string &table, const std::string &trace,
                  int argc, char **argv)
{
    double scale = benchScaleFromArgs(argc, argv);
    banner(table + ": number of coherence messages to the first-level "
                   "cache (" +
               trace + ")",
           scale);

    const TraceBundle &bundle = profileTrace(trace, scale);
    const std::vector<HierarchyKind> kinds = {
        HierarchyKind::VirtualReal, HierarchyKind::RealRealIncl,
        HierarchyKind::RealRealNoIncl};

    // All nine cells (three size pairs x three organizations) are
    // independent: run them as one batch so the pool stays full.
    std::vector<SimJob> jobs;
    for (auto [l1, l2] : paperSizePairs())
        for (auto kind : kinds)
            jobs.push_back({kind, l1, l2});

    PerfTimer timer;
    std::vector<SimSummary> all = runSimulations(bundle, jobs);
    std::uint64_t refs = 0;
    for (const auto &s : all)
        refs += s.refs;
    perfRecord(table, trace, timer.seconds(), refs);

    std::size_t batch = 0;
    for (auto [l1, l2] : paperSizePairs()) {
        std::vector<SimSummary> res(all.begin() + batch,
                                    all.begin() + batch + kinds.size());
        batch += kinds.size();

        TextTable t;
        t.row().cell(sizeLabel(l1, l2) + "  cpu");
        for (auto kind : kinds)
            t.cell(hierarchyKindName(kind));
        t.separator();
        std::uint32_t cpus =
            static_cast<std::uint32_t>(res[0].l1MsgsPerCpu.size());
        for (std::uint32_t c = 0; c < cpus; ++c) {
            t.row().cell(c);
            for (const auto &s : res)
                t.cell(s.l1MsgsPerCpu[c]);
        }
        std::cout << t << "\n";
    }
    std::cout << "expected shape (paper): RR(no incl) several times "
                 "more messages than VR/RR(incl); VR ~= RR(incl) for "
                 "low-switch traces, RR(incl) somewhat lower for "
                 "abaqus (inclusion invalidations from switching).\n";
    return 0;
}

} // namespace vrc

#endif // VRC_BENCH_COHERENCE_TABLE_HH
