/** @file Reproduces Table 11 (pops, 4 CPUs). */

#include "coherence_table.hh"

int
main(int argc, char **argv)
{
    return vrc::runCoherenceTable("Table 11", "pops", argc, argv);
}
