/**
 * @file
 * Reproduces Table 3: inter-write-back intervals under the write-back
 * policy with swapped (incremental) write-back, same snapshot as
 * Table 2. Write-backs are dirty replacements -- orders of magnitude
 * rarer than write-through writes and spread far apart, which is why a
 * single write-back buffer suffices.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace vrc;
    double scale = benchScaleFromArgs(argc, argv);
    banner("Table 3: write intervals with write-back and swapped "
           "write-back (pops, 16K/256K, snapshot)",
           scale);

    const TraceBundle &bundle = profileTrace("pops", scale);

    // Replay only the snapshot window: enough records that CPU 0 sees
    // ~411,237 references (matching Table 2's window).
    constexpr std::uint64_t kSnapshot = 411'237;
    MachineConfig mc = makeMachineConfig(HierarchyKind::VirtualReal,
                                         16 * 1024, 256 * 1024,
                                         bundle.profile.pageSize);
    MpSimulator sim(mc, bundle.profile);
    std::uint64_t cpu0_refs = 0;
    for (const TraceRecord &r : bundle.records) {
        if (r.cpu == 0 && r.isMemRef()) {
            if (++cpu0_refs > kSnapshot)
                break;
        }
        sim.step(r);
    }

    const Histogram &h = sim.hierarchy(0).writeBackIntervals();
    printIntervalHistogram(h, "count");

    const auto &stats = sim.hierarchy(0).stats();
    std::cout << "\nwrite-backs by CPU 0: " << stats.value("writebacks")
              << " (of which swapped: "
              << stats.value("swapped_writebacks") << ")\n";
    std::cout << "write-back buffer stalls: "
              << sim.hierarchy(0).stats().value("wb_stalls")
              << " (paper: negligible with a single buffer)\n";
    std::cout << "long intervals (>=10) share: "
              << (h.samples() ? 100.0 *
                          static_cast<double>(h.overflowCount()) /
                          static_cast<double>(h.samples())
                              : 0.0)
              << "% (paper: write-backs are far apart)\n";
    return 0;
}
