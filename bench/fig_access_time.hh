/**
 * @file
 * Shared implementation of Figures 4, 5 and 6: average access time of
 * the V-R and R-R hierarchies versus the percentage slowdown of the
 * R-R level-1 access due to address translation (t2 = 4*t1, two-term
 * model as in the paper).
 */

#ifndef VRC_BENCH_FIG_ACCESS_TIME_HH
#define VRC_BENCH_FIG_ACCESS_TIME_HH

#include "bench_util.hh"

#include "core/timing.hh"

namespace vrc
{

inline bool
wantCsv(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--csv")
            return true;
    }
    return false;
}

inline int
runAccessTimeFigure(const std::string &figure, const std::string &trace,
                    int argc, char **argv)
{
    double scale = benchScaleFromArgs(argc, argv);
    bool csv = wantCsv(argc, argv);

    const TraceBundle &bundle = profileTrace(trace, scale);
    TimingParams tp; // t1 = 1, t2 = 4

    // The measured inputs (one V-R and one R-R run per size pair) are
    // shared by the CSV and table outputs: simulate them as one batch.
    std::vector<SimJob> jobs;
    for (auto [l1, l2] : paperSizePairs()) {
        jobs.push_back({HierarchyKind::VirtualReal, l1, l2});
        jobs.push_back({HierarchyKind::RealRealIncl, l1, l2});
    }
    PerfTimer timer;
    std::vector<SimSummary> res = runSimulations(bundle, jobs);
    std::uint64_t refs = 0;
    for (const auto &s : res)
        refs += s.refs;
    perfRecord(figure, trace, timer.seconds(), refs);

    if (csv) {
        // Plot-friendly output: one row per (sizes, slowdown) point.
        std::cout << "trace,l1,l2,slowdown_pct,t_vr,t_rr\n";
        std::size_t i = 0;
        for (auto [l1, l2] : paperSizePairs()) {
            const SimSummary &vr = res[i++];
            const SimSummary &rr = res[i++];
            for (int pct = 0; pct <= 10; ++pct) {
                TimingParams slowed = tp;
                slowed.l1SlowdownPct = pct;
                std::cout << trace << "," << l1 << "," << l2 << ","
                          << pct << ","
                          << avgAccessTimeTwoTerm(vr.h1, vr.h2, tp)
                          << ","
                          << avgAccessTimeTwoTerm(rr.h1, rr.h2, slowed)
                          << "\n";
            }
        }
        return 0;
    }
    banner(figure + ": average access time vs. slow-down of first-level"
                    " R-cache (" +
               trace + ", t2 = 4*t1)",
           scale);

    std::size_t pair_index = 0;
    for (auto [l1, l2] : paperSizePairs()) {
        const SimSummary &vr = res[pair_index++];
        const SimSummary &rr = res[pair_index++];

        TextTable t;
        t.row().cell("sizes " + sizeLabel(l1, l2) + "  slowdown%");
        for (int pct = 0; pct <= 10; pct += 2)
            t.cell(pct);
        t.separator();

        t.row().cell("T(V-R)");
        for (int pct = 0; pct <= 10; pct += 2) {
            (void)pct; // the V-R time does not depend on the penalty
            t.cell(avgAccessTimeTwoTerm(vr.h1, vr.h2, tp), 4);
        }
        t.row().cell("T(R-R)");
        for (int pct = 0; pct <= 10; pct += 2) {
            TimingParams slowed = tp;
            slowed.l1SlowdownPct = pct;
            t.cell(avgAccessTimeTwoTerm(rr.h1, rr.h2, slowed), 4);
        }
        std::cout << t;

        double x =
            crossoverSlowdownPct(vr.h1, vr.h2, rr.h1, rr.h2, tp);
        if (x <= 0.0) {
            std::cout << "crossover: V-R is already at least as fast "
                         "with no translation penalty\n\n";
        } else {
            std::cout << "crossover: V-R wins once translation slows "
                         "the R-R level 1 by "
                      << x << "%\n\n";
        }
    }
    return 0;
}

} // namespace vrc

#endif // VRC_BENCH_FIG_ACCESS_TIME_HH
