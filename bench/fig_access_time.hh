/**
 * @file
 * Shared implementation of Figures 4, 5 and 6: average access time of
 * the V-R and R-R hierarchies versus the percentage slowdown of the
 * R-R level-1 access due to address translation (t2 = 4*t1, two-term
 * model as in the paper).
 *
 * The three bench_fig*_access_time.cc binaries are thin configs over
 * runAccessTimeFigure(); every sweep (the slowdown grid, the CSV and
 * table renderings, the CPU-count contention extension) is produced
 * from one shared grid so the outputs can never drift apart.
 *
 * Modes, selectable per binary:
 *   (default)        the paper's analytic figure (table)
 *   --csv            the same grid, one row per point, for plotting
 *   --contention     cycle-engine extension: sweep 1..16 CPUs and
 *                    report avg access cycles, bus utilization and
 *                    queueing per organization (also honors --csv)
 *   --verify-timing  cross-check: with one CPU and a zero bus service
 *                    table the cycle engine must reproduce the
 *                    analytic closed form; exits nonzero on drift
 */

#ifndef VRC_BENCH_FIG_ACCESS_TIME_HH
#define VRC_BENCH_FIG_ACCESS_TIME_HH

#include <cmath>

#include "bench_util.hh"

#include "core/timing.hh"

namespace vrc
{

inline bool
benchFlag(int argc, char **argv, const std::string &name)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == name)
            return true;
    }
    return false;
}

/** Back-compat spelling used by older scripts. */
inline bool
wantCsv(int argc, char **argv)
{
    return benchFlag(argc, argv, "--csv");
}

// --- the analytic figure (Figures 4-6 proper) ------------------------

/** One point of the slowdown sweep grid. */
struct SlowdownPoint
{
    std::uint32_t l1 = 0;
    std::uint32_t l2 = 0;
    int pct = 0;       ///< R-R level-1 translation slowdown (%)
    double tVr = 0.0;  ///< two-term V-R access time (slowdown-free)
    double tRr = 0.0;  ///< two-term R-R access time at this slowdown
};

/**
 * Evaluate the full grid once: every paper size pair crossed with
 * every slowdown percentage. The V-R and R-R simulations behind a size
 * pair are shared by all of that pair's points.
 */
inline std::vector<SlowdownPoint>
slowdownGrid(const std::vector<SimSummary> &res, const TimingParams &tp)
{
    std::vector<SlowdownPoint> grid;
    std::size_t i = 0;
    for (auto [l1, l2] : paperSizePairs()) {
        const SimSummary &vr = res[i++];
        const SimSummary &rr = res[i++];
        for (int pct = 0; pct <= 10; ++pct) {
            TimingParams slowed = tp;
            slowed.l1SlowdownPct = pct;
            grid.push_back(
                {l1, l2, pct, avgAccessTimeTwoTerm(vr.h1, vr.h2, tp),
                 avgAccessTimeTwoTerm(rr.h1, rr.h2, slowed)});
        }
    }
    return grid;
}

inline int
runAnalyticFigure(const std::string &figure, const std::string &trace,
                  double scale, bool csv)
{
    const TraceBundle &bundle = profileTrace(trace, scale);
    TimingParams tp; // t1 = 1, t2 = 4

    // The measured inputs (one V-R and one R-R run per size pair) are
    // shared by the CSV and table outputs: simulate them as one batch.
    std::vector<SimJob> jobs;
    for (auto [l1, l2] : paperSizePairs()) {
        jobs.push_back({HierarchyKind::VirtualReal, l1, l2});
        jobs.push_back({HierarchyKind::RealRealIncl, l1, l2});
    }
    PerfTimer timer;
    std::vector<SimSummary> res = runSimulations(bundle, jobs);
    std::uint64_t refs = 0;
    for (const auto &s : res)
        refs += s.refs;
    perfRecord(figure, trace, timer.seconds(), refs);

    std::vector<SlowdownPoint> grid = slowdownGrid(res, tp);

    if (csv) {
        std::cout << "trace,l1,l2,slowdown_pct,t_vr,t_rr\n";
        for (const SlowdownPoint &pt : grid) {
            std::cout << trace << "," << pt.l1 << "," << pt.l2 << ","
                      << pt.pct << "," << pt.tVr << "," << pt.tRr
                      << "\n";
        }
        return 0;
    }
    banner(figure + ": average access time vs. slow-down of first-level"
                    " R-cache (" +
               trace + ", t2 = 4*t1)",
           scale);

    std::size_t pair_index = 0;
    for (auto [l1, l2] : paperSizePairs()) {
        const SimSummary &vr = res[pair_index++];
        const SimSummary &rr = res[pair_index++];

        // Render from the shared grid: the table is the even-percent
        // subset of the CSV, by construction.
        TextTable t;
        t.row().cell("sizes " + sizeLabel(l1, l2) + "  slowdown%");
        for (int pct = 0; pct <= 10; pct += 2)
            t.cell(pct);
        t.separator();
        t.row().cell("T(V-R)");
        for (const SlowdownPoint &pt : grid) {
            if (pt.l1 == l1 && pt.l2 == l2 && pt.pct % 2 == 0)
                t.cell(pt.tVr, 4);
        }
        t.row().cell("T(R-R)");
        for (const SlowdownPoint &pt : grid) {
            if (pt.l1 == l1 && pt.l2 == l2 && pt.pct % 2 == 0)
                t.cell(pt.tRr, 4);
        }
        std::cout << t;

        double x =
            crossoverSlowdownPct(vr.h1, vr.h2, rr.h1, rr.h2, tp);
        if (x <= 0.0) {
            std::cout << "crossover: V-R is already at least as fast "
                         "with no translation penalty\n\n";
        } else {
            std::cout << "crossover: V-R wins once translation slows "
                         "the R-R level 1 by "
                      << x << "%\n\n";
        }
    }
    return 0;
}

// --- the contention extension (cycle engine) -------------------------

/** Cycle-engine measurements of one organization at one CPU count. */
struct ContentionPoint
{
    std::uint32_t cpus = 0;
    double vrCycles = 0.0; ///< V-R avg access cycles (incl. bus)
    double vrUtil = 0.0;   ///< V-R bus utilization
    double vrWait = 0.0;   ///< V-R avg bus wait per reference
    double rrCycles = 0.0;
    double rrUtil = 0.0;
    double rrWait = 0.0;
};

/**
 * Sweep the processor count under the cycle engine. One trace is
 * generated per CPU count (the workload scales with the machine), and
 * the V-R / R-R pair shares it.
 */
inline std::vector<ContentionPoint>
contentionSweep(const std::string &figure, const std::string &trace,
                double scale, std::uint32_t l1, std::uint32_t l2)
{
    std::vector<ContentionPoint> points;
    for (std::uint32_t cpus : {1u, 2u, 4u, 8u, 16u}) {
        WorkloadProfile p = scaled(profileByName(trace), scale);
        p.numCpus = cpus;
        TraceBundle bundle = generateTrace(p);

        std::vector<SimJob> jobs;
        jobs.push_back({HierarchyKind::VirtualReal, l1, l2, false, 0,
                        TimingMode::Cycle});
        jobs.push_back({HierarchyKind::RealRealIncl, l1, l2, false, 0,
                        TimingMode::Cycle});
        PerfTimer timer;
        std::vector<SimSummary> res = runSimulations(bundle, jobs);
        perfRecord(figure,
                   trace + "-contention-cpus" + std::to_string(cpus),
                   timer.seconds(), res[0].refs + res[1].refs);

        points.push_back({cpus, res[0].avgAccessCycles,
                          res[0].busUtilization, res[0].avgBusWait,
                          res[1].avgAccessCycles, res[1].busUtilization,
                          res[1].avgBusWait});
    }
    return points;
}

inline int
runContentionFigure(const std::string &figure, const std::string &trace,
                    double scale, bool csv)
{
    // The middle paper size pair: small enough to show misses, big
    // enough that the bus is not the whole story.
    auto [l1, l2] = paperSizePairs()[1];
    std::vector<ContentionPoint> pts =
        contentionSweep(figure, trace, scale, l1, l2);

    if (csv) {
        std::cout << "trace,cpus,vr_access_cycles,vr_bus_util,"
                     "vr_bus_wait,rr_access_cycles,rr_bus_util,"
                     "rr_bus_wait\n";
        for (const ContentionPoint &pt : pts) {
            std::cout << trace << "," << pt.cpus << "," << pt.vrCycles
                      << "," << pt.vrUtil << "," << pt.vrWait << ","
                      << pt.rrCycles << "," << pt.rrUtil << ","
                      << pt.rrWait << "\n";
        }
    } else {
        banner(figure + " (contention extension): cycle-engine access "
                        "time vs processor count (" +
                   trace + ", sizes " + sizeLabel(l1, l2) + ")",
               scale);
        TextTable t;
        t.row()
            .cell("cpus")
            .cell("VR cycles/ref")
            .cell("VR bus util")
            .cell("VR wait/ref")
            .cell("RR cycles/ref")
            .cell("RR bus util")
            .cell("RR wait/ref");
        t.separator();
        for (const ContentionPoint &pt : pts) {
            t.row()
                .cell(std::uint64_t{pt.cpus})
                .cell(pt.vrCycles, 4)
                .cell(pt.vrUtil, 4)
                .cell(pt.vrWait, 4)
                .cell(pt.rrCycles, 4)
                .cell(pt.rrUtil, 4)
                .cell(pt.rrWait, 4);
        }
        std::cout << t;
        std::cout << "\nmore processors share one bus: queueing per "
                     "reference must rise with the CPU count.\n";
    }

    // Sanity: contention can only grow with the processor count. A
    // tiny scaled trace can wobble between adjacent points, so the
    // check is end-to-end rather than pairwise.
    if (pts.back().vrWait < pts.front().vrWait) {
        std::cerr << figure
                  << ": FAIL: avg bus wait did not grow from 1 to 16 "
                     "CPUs ("
                  << pts.front().vrWait << " -> " << pts.back().vrWait
                  << ")\n";
        return 1;
    }
    return 0;
}

// --- the analytic/cycle cross-check ----------------------------------

/**
 * With one CPU and a zero-cost bus service table the cycle engine has
 * no contention and no bus occupancy: the per-reference cycle count
 * must reproduce the Section-4 closed form over the run's measured hit
 * ratios. Exits nonzero on drift beyond double-rounding slack.
 */
inline int
runTimingVerify(const std::string &figure, const std::string &trace,
                double scale)
{
    WorkloadProfile p = scaled(profileByName(trace), scale);
    p.numCpus = 1;
    TraceBundle bundle = generateTrace(p);

    int failures = 0;
    for (auto [l1, l2] : paperSizePairs()) {
        for (HierarchyKind kind : {HierarchyKind::VirtualReal,
                                   HierarchyKind::RealRealIncl}) {
            MachineConfig mc =
                makeMachineConfig(kind, l1, l2, p.pageSize);
            mc.timingMode = TimingMode::Cycle;
            mc.busTiming = BusTimingParams::zero();
            MpSimulator sim(mc, p);
            sim.run(bundle.records);

            double cycle = sim.avgAccessCycles();
            double analytic =
                avgAccessTime(sim.h1(), sim.h2(), mc.timing);
            double tol = 1e-9 * std::max(1.0, std::abs(analytic));
            bool ok = std::abs(cycle - analytic) <= tol &&
                sim.busWaitTime() == 0.0;
            std::cout << figure << " verify " << hierarchyKindName(kind)
                      << " " << sizeLabel(l1, l2) << ": cycle=" << cycle
                      << " analytic=" << analytic
                      << (ok ? " OK" : " DRIFT") << "\n";
            if (!ok)
                ++failures;
        }
    }
    return failures == 0 ? 0 : 1;
}

// --- the shared entry point ------------------------------------------

/**
 * Entry point shared by the three figure binaries; @p figure and
 * @p trace are the whole per-figure configuration.
 */
inline int
runAccessTimeFigure(const std::string &figure, const std::string &trace,
                    int argc, char **argv)
{
    double scale = benchScaleFromArgs(argc, argv);
    bool csv = benchFlag(argc, argv, "--csv");

    if (benchFlag(argc, argv, "--verify-timing"))
        return runTimingVerify(figure, trace, scale);
    if (benchFlag(argc, argv, "--contention"))
        return runContentionFigure(figure, trace, scale, csv);
    return runAnalyticFigure(figure, trace, scale, csv);
}

} // namespace vrc

#endif // VRC_BENCH_FIG_ACCESS_TIME_HH
