/**
 * @file
 * CPU-count scaling study: the paper's closing conjecture.
 *
 * "We believe that the shielding effect on cache coherence will be more
 *  prominent as the number of processors increases. ... We plan to
 *  further confirm this observation when we are in possession of
 *  larger-scale traces."
 *
 * The synthetic workloads scale to any CPU count, so this bench runs
 * the pops profile at 2..16 CPUs and reports, per organization:
 * per-CPU level-1 coherence messages (the shielding effect), the
 * VR-vs-no-inclusion disturbance ratio, and bus utilization/queueing
 * from the contention model.
 */

#include "bench_util.hh"

#include "core/timing.hh"

int
main(int argc, char **argv)
{
    using namespace vrc;
    double scale = benchScaleFromArgs(argc, argv, 0.02);
    if (scale == 1.0)
        scale = 0.25;  // full pops x16 CPUs would be very long
    banner("CPU scaling: shielding and bus contention vs processor "
           "count (pops profile)",
           scale);

    TextTable t;
    t.row()
        .cell("cpus")
        .cell("VR L1 msgs/cpu")
        .cell("RR(no incl) L1 msgs/cpu")
        .cell("shield ratio")
        .cell("VR bus util")
        .cell("VR bus wait/ref");
    t.separator();

    for (std::uint32_t cpus : {2u, 4u, 8u, 16u}) {
        WorkloadProfile p = scaled(popsProfile(), scale);
        p.numCpus = cpus;
        TraceBundle bundle = generateTrace(p);

        auto run = [&](HierarchyKind kind) {
            MachineConfig mc = makeMachineConfig(
                kind, 8 * 1024, 128 * 1024, p.pageSize);
            mc.timingMode = TimingMode::Cycle;
            auto sim = std::make_unique<MpSimulator>(mc, p);
            sim->run(bundle.records);
            return sim;
        };
        auto vr = run(HierarchyKind::VirtualReal);
        auto ni = run(HierarchyKind::RealRealNoIncl);

        double vr_msgs =
            static_cast<double>(vr->totalCounter("l1_coherence_msgs")) /
            cpus;
        double ni_msgs =
            static_cast<double>(ni->totalCounter("l1_coherence_msgs")) /
            cpus;
        t.row()
            .cell(std::uint64_t{cpus})
            .cell(vr_msgs, 0)
            .cell(ni_msgs, 0)
            .cell(ni_msgs / std::max(vr_msgs, 1.0), 1)
            .cell(vr->busUtilization(), 3)
            .cell(vr->busWaitTime() /
                      static_cast<double>(vr->refsProcessed()),
                  4);
    }
    std::cout << t;
    std::cout
        << "\nexpected shape (the paper's conjecture): the no-inclusion"
           " L1 is disturbed proportionally to total bus traffic, so "
           "the shield ratio grows with the processor count; bus "
           "utilization and queueing rise with CPUs.\n";
    return 0;
}
