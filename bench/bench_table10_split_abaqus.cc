/** @file Reproduces Table 10 (abaqus). */

#include "split_table.hh"

int
main(int argc, char **argv)
{
    return vrc::runSplitTable("Table 10", "abaqus", argc, argv);
}
