/**
 * @file
 * Ablation studies over the design choices DESIGN.md calls out:
 *
 *  1. write-buffer depth (the paper argues a single buffer suffices
 *     under write-back + swapped write-back);
 *  2. relaxed inclusion replacement versus what strict inclusion would
 *     cost (forced invalidations as associativity shrinks);
 *  3. replacement policy at both levels;
 *  4. level-2/level-1 block-size ratio (subentries per line).
 */

#include "bench_util.hh"

using namespace vrc;

namespace
{

void
writeBufferDepthAblation(const TraceBundle &bundle)
{
    std::cout << "--- write-buffer depth (pops, V-R 16K/256K) ---\n";
    TextTable t;
    t.row()
        .cell("depth")
        .cell("stalls")
        .cell("writebacks")
        .cell("cancels")
        .cell("h1");
    t.separator();
    for (std::uint32_t depth : {1u, 2u, 4u, 8u}) {
        MachineConfig mc = makeMachineConfig(
            HierarchyKind::VirtualReal, 16 * 1024, 256 * 1024,
            bundle.profile.pageSize);
        mc.hierarchy.writeBufferDepth = depth;
        MpSimulator sim(mc, bundle.profile);
        sim.run(bundle.records);
        t.row()
            .cell(std::uint64_t{depth})
            .cell(sim.totalCounter("wb_stalls"))
            .cell(sim.totalCounter("writebacks"))
            .cell(sim.totalCounter("writeback_cancels"))
            .cell(sim.h1(), 4);
    }
    std::cout << t << "\n";
}

void
associativityAblation(const TraceBundle &bundle)
{
    std::cout << "--- R-cache associativity vs forced inclusion "
                 "invalidations (pops, 16K/64K) ---\n";
    TextTable t;
    t.row()
        .cell("L2 assoc")
        .cell("inclusion invalidations")
        .cell("forced replacements")
        .cell("h2");
    t.separator();
    for (std::uint32_t assoc : {1u, 2u, 4u, 8u}) {
        MachineConfig mc = makeMachineConfig(
            HierarchyKind::VirtualReal, 16 * 1024, 64 * 1024,
            bundle.profile.pageSize);
        mc.hierarchy.l2.assoc = assoc;
        MpSimulator sim(mc, bundle.profile);
        sim.run(bundle.records);
        t.row()
            .cell(std::uint64_t{assoc})
            .cell(sim.totalCounter("inclusion_invalidations"))
            .cell(sim.totalCounter("forced_r_replacements"))
            .cell(sim.h2(), 4);
    }
    std::cout << t << "\n";
}

void
replacementPolicyAblation(const TraceBundle &bundle)
{
    std::cout << "--- replacement policy (pops, V-R 16K/256K, 2-way "
                 "both levels) ---\n";
    TextTable t;
    t.row().cell("policy").cell("h1").cell("h2").cell("misses");
    t.separator();
    for (ReplPolicy policy :
         {ReplPolicy::LRU, ReplPolicy::FIFO, ReplPolicy::Random}) {
        MachineConfig mc = makeMachineConfig(
            HierarchyKind::VirtualReal, 16 * 1024, 256 * 1024,
            bundle.profile.pageSize);
        mc.hierarchy.l1.assoc = 2;
        mc.hierarchy.l2.assoc = 2;
        mc.hierarchy.l1.policy = policy;
        mc.hierarchy.l2.policy = policy;
        MpSimulator sim(mc, bundle.profile);
        sim.run(bundle.records);
        t.row()
            .cell(replPolicyName(policy))
            .cell(sim.h1(), 4)
            .cell(sim.h2(), 4)
            .cell(sim.totalCounter("misses"));
    }
    std::cout << t << "\n";
}

void
blockRatioAblation(const TraceBundle &bundle)
{
    std::cout << "--- L2/L1 block-size ratio (pops, V-R 16K/256K, "
                 "B1=16) ---\n";
    TextTable t;
    t.row()
        .cell("B2/B1")
        .cell("h1")
        .cell("h2")
        .cell("bus transactions")
        .cell("inclusion invalidations");
    t.separator();
    for (std::uint32_t factor : {1u, 2u, 4u}) {
        MachineConfig mc = makeMachineConfig(
            HierarchyKind::VirtualReal, 16 * 1024, 256 * 1024,
            bundle.profile.pageSize);
        mc.hierarchy.l2.blockBytes =
            mc.hierarchy.l1.blockBytes * factor;
        MpSimulator sim(mc, bundle.profile);
        sim.run(bundle.records);
        t.row()
            .cell(std::uint64_t{factor})
            .cell(sim.h1(), 4)
            .cell(sim.h2(), 4)
            .cell(sim.bus().transactions())
            .cell(sim.totalCounter("inclusion_invalidations"));
    }
    std::cout << t << "\n";
}

void
writePolicyAblation(const TraceBundle &bundle)
{
    std::cout << "--- level-1 write policy traffic (pops, 16K/256K) ---\n";
    // Write-through sends *every* processor write to level 2; the
    // write-back V-cache only sends dirty replacements. This is the
    // paper's Section 2 argument for write-back at level 1.
    MachineConfig mc = makeMachineConfig(HierarchyKind::VirtualReal,
                                         16 * 1024, 256 * 1024,
                                         bundle.profile.pageSize);
    MpSimulator sim(mc, bundle.profile);
    sim.run(bundle.records);

    std::uint64_t writes = sim.totalCounter("refs_write");
    std::uint64_t writebacks = sim.totalCounter("writebacks");
    std::uint64_t cancels = sim.totalCounter("writeback_cancels");

    TextTable t;
    t.row().cell("policy").cell("L1->L2 write transfers");
    t.separator();
    t.row().cell("write-through (every write)").cell(writes);
    t.row().cell("write-back (dirty replacements)").cell(writebacks);
    t.row().cell("  of which canceled by synonyms").cell(cancels);
    std::cout << t;
    if (writebacks > 0) {
        std::cout << "traffic ratio (WT/WB): "
                  << static_cast<double>(writes) /
                static_cast<double>(writebacks)
                  << "x\n";
    }
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    double scale = benchScaleFromArgs(argc, argv, 0.05);
    banner("Ablations over the paper's design choices", scale);
    const TraceBundle &bundle = profileTrace("pops", scale);
    writeBufferDepthAblation(bundle);
    associativityAblation(bundle);
    replacementPolicyAblation(bundle);
    blockRatioAblation(bundle);
    writePolicyAblation(bundle);
    return 0;
}
