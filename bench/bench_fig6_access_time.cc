/** @file Reproduces Figure 6 (abaqus, the frequent-context-switch case
 * with the interesting crossover). */

#include "fig_access_time.hh"

int
main(int argc, char **argv)
{
    return vrc::runAccessTimeFigure("Figure 6", "abaqus", argc, argv);
}
