/** @file Reproduces Table 9 (pops). */

#include "split_table.hh"

int
main(int argc, char **argv)
{
    return vrc::runSplitTable("Table 9", "pops", argc, argv);
}
