/**
 * @file
 * Google-benchmark microbenchmarks: raw throughput of the building
 * blocks (tag store, TLB, trace generation) and end-to-end simulation
 * speed for each organization, in references per second.
 */

#include <benchmark/benchmark.h>

#include "cache/tag_store.hh"
#include "sim/experiment.hh"
#include "vm/tlb.hh"

namespace
{

using namespace vrc;

void
BM_TagStoreLookupHit(benchmark::State &state)
{
    TagStore<int> store(CacheGeometry(16 * 1024, 16, 1),
                        ReplPolicy::LRU);
    store.fill(store.victim(0x1230), 0x1230);
    for (auto _ : state) {
        auto ref = store.find(0x1230);
        benchmark::DoNotOptimize(ref);
    }
}
BENCHMARK(BM_TagStoreLookupHit);

void
BM_TagStoreFillEvict(benchmark::State &state)
{
    TagStore<int> store(CacheGeometry(16 * 1024, 16, 4),
                        ReplPolicy::LRU);
    std::uint32_t addr = 0;
    for (auto _ : state) {
        LineRef slot = store.victim(addr);
        store.fill(slot, addr);
        addr += 16 * 1024 + 16; // new tag, rotating sets
    }
}
BENCHMARK(BM_TagStoreFillEvict);

void
BM_TlbTranslate(benchmark::State &state)
{
    AddressSpaceManager spaces(4096);
    Tlb tlb(256, 4);
    std::uint32_t vpn = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tlb.translate(0, vpn % 512, spaces));
        ++vpn;
    }
}
BENCHMARK(BM_TlbTranslate);

void
BM_TraceGeneration(benchmark::State &state)
{
    WorkloadProfile p = popsProfile();
    p.totalRefs = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        TraceBundle b = generateTrace(p);
        benchmark::DoNotOptimize(b.records.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TraceGeneration)->Arg(50'000);

const TraceBundle &
microBundle()
{
    static TraceBundle bundle = [] {
        WorkloadProfile p = popsProfile();
        p.totalRefs = 100'000;
        return generateTrace(p);
    }();
    return bundle;
}

void
simulateKind(benchmark::State &state, HierarchyKind kind)
{
    const TraceBundle &bundle = microBundle();
    for (auto _ : state) {
        SimSummary s =
            runSimulation(bundle, kind, 16 * 1024, 256 * 1024);
        benchmark::DoNotOptimize(s.h1);
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<std::int64_t>(bundle.records.size()));
}

void
BM_SimulateVR(benchmark::State &state)
{
    simulateKind(state, HierarchyKind::VirtualReal);
}
BENCHMARK(BM_SimulateVR);

void
BM_SimulateRRIncl(benchmark::State &state)
{
    simulateKind(state, HierarchyKind::RealRealIncl);
}
BENCHMARK(BM_SimulateRRIncl);

void
BM_SimulateRRNoIncl(benchmark::State &state)
{
    simulateKind(state, HierarchyKind::RealRealNoIncl);
}
BENCHMARK(BM_SimulateRRNoIncl);

void
BM_SimulateVRSplit(benchmark::State &state)
{
    const TraceBundle &bundle = microBundle();
    for (auto _ : state) {
        SimSummary s = runSimulation(
            bundle, HierarchyKind::VirtualReal, 16 * 1024, 256 * 1024,
            true);
        benchmark::DoNotOptimize(s.h1);
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<std::int64_t>(bundle.records.size()));
}
BENCHMARK(BM_SimulateVRSplit);

} // namespace

BENCHMARK_MAIN();
