/** @file Reproduces Figure 5 (pops). */

#include "fig_access_time.hh"

int
main(int argc, char **argv)
{
    return vrc::runAccessTimeFigure("Figure 5", "pops", argc, argv);
}
