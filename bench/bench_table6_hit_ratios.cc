/**
 * @file
 * Reproduces Table 6: level-1 and local level-2 hit ratios of the V-R
 * and R-R organizations across the paper's three size pairs and three
 * traces (direct-mapped at both levels).
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace vrc;
    double scale = benchScaleFromArgs(argc, argv);
    banner("Table 6: hit ratios (V-R vs R-R, direct-mapped)", scale);

    PerfTimer total;
    std::uint64_t total_refs = 0;
    for (const char *name : {"thor", "pops", "abaqus"}) {
        const TraceBundle &bundle = profileTrace(name, scale);
        TextTable t;
        t.row().cell("trace: " + std::string(name));
        for (auto [l1, l2] : paperSizePairs())
            t.cell(sizeLabel(l1, l2));
        t.separator();

        // One job per table cell; cells are independent simulations.
        std::vector<SimJob> jobs;
        for (auto [l1, l2] : paperSizePairs())
            jobs.push_back({HierarchyKind::VirtualReal, l1, l2});
        for (auto [l1, l2] : paperSizePairs())
            jobs.push_back({HierarchyKind::RealRealIncl, l1, l2});

        PerfTimer timer;
        std::vector<SimSummary> res = runSimulations(bundle, jobs);
        std::vector<SimSummary> vr(res.begin(), res.begin() + 3);
        std::vector<SimSummary> rr(res.begin() + 3, res.end());
        std::uint64_t refs = 0;
        for (const auto &s : res)
            refs += s.refs;
        perfRecord("bench_table6", name, timer.seconds(), refs);
        total_refs += refs;
        t.row().cell("h1VR");
        for (const auto &s : vr)
            t.cell(s.h1, 3);
        t.row().cell("h1RR");
        for (const auto &s : rr)
            t.cell(s.h1, 3);
        t.row().cell("h2VR");
        for (const auto &s : vr)
            t.cell(s.h2, 3);
        t.row().cell("h2RR");
        for (const auto &s : rr)
            t.cell(s.h2, 3);
        std::cout << t << "\n";
    }

    std::cout << "expected shape (paper): h1VR == h1RR for thor/pops "
                 "(rare switches); h1VR a few points below h1RR for "
                 "abaqus, gap growing with V-cache size.\n";
    perfRecord("bench_table6", "total", total.seconds(), total_refs);
    return 0;
}
