/** @file Reproduces Figure 4 (thor). */

#include "fig_access_time.hh"

int
main(int argc, char **argv)
{
    return vrc::runAccessTimeFigure("Figure 4", "thor", argc, argv);
}
