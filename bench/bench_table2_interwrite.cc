/**
 * @file
 * Reproduces Table 2: inter-write interval distribution over a
 * 411,237-reference snapshot of pops. Under the write-through policy
 * the paper considers here, every processor write is a write to the
 * next level, so the intervals are the gaps (in CPU-local references)
 * between successive write references. Short gaps dominate -- the
 * argument for needing several write buffers under write-through.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace vrc;
    double scale = benchScaleFromArgs(argc, argv);
    banner("Table 2: inter-write intervals under write-through (pops, "
           "snapshot of 411,237 refs of CPU 0)",
           scale);

    const TraceBundle &bundle = profileTrace("pops", scale);

    constexpr std::uint64_t kSnapshot = 411'237;
    Histogram intervals(10);
    std::uint64_t cpu0_refs = 0;
    std::uint64_t last_write = 0;
    bool saw_write = false;
    for (const TraceRecord &r : bundle.records) {
        if (r.cpu != 0 || !r.isMemRef())
            continue;
        ++cpu0_refs;
        if (cpu0_refs > kSnapshot)
            break;
        if (r.type != RefType::Write)
            continue;
        if (saw_write)
            intervals.record(cpu0_refs - last_write);
        last_write = cpu0_refs;
        saw_write = true;
    }

    printIntervalHistogram(intervals, "count");
    std::cout << "\nsnapshot refs examined: "
              << std::min(cpu0_refs, kSnapshot)
              << ", writes: " << intervals.samples() + 1 << "\n";
    std::cout << "short intervals (<10) share: "
              << (intervals.samples()
                      ? 100.0 *
                          static_cast<double>(intervals.samples() -
                                              intervals.overflowCount()) /
                          static_cast<double>(intervals.samples())
                      : 0.0)
              << "% (paper: dominated by short intervals)\n";
    return 0;
}
