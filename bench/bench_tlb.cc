/**
 * @file
 * TLB study. Two of the paper's cost arguments, quantified:
 *
 *  1. In the V-R hierarchy the TLB sits at the *second* level and is
 *     consulted only on level-1 misses, so it sees a small fraction of
 *     the lookups an R-R first-level TLB must serve -- "its cost is
 *     less since the TLB does not have to be implemented in fast
 *     logic".
 *  2. TLB reach: miss ratio versus TLB size/associativity for the
 *     second-level TLB.
 */

#include "bench_util.hh"

#include "core/vr_hierarchy.hh"

int
main(int argc, char **argv)
{
    using namespace vrc;
    double scale = benchScaleFromArgs(argc, argv, 0.05);
    banner("TLB study: lookup pressure (V-R vs R-R) and reach", scale);

    std::cout << "--- TLB lookups per 1k references (16K/256K) ---\n";
    TextTable t;
    t.row()
        .cell("trace")
        .cell("V-R lookups/1k refs")
        .cell("R-R lookups/1k refs")
        .cell("relief factor");
    t.separator();
    for (const char *name : {"thor", "pops", "abaqus"}) {
        const TraceBundle &bundle = profileTrace(name, scale);
        auto lookups = [&](HierarchyKind kind) {
            MachineConfig mc = makeMachineConfig(
                kind, 16 * 1024, 256 * 1024, bundle.profile.pageSize);
            MpSimulator sim(mc, bundle.profile);
            sim.run(bundle.records);
            std::uint64_t n = 0;
            for (CpuId c = 0; c < sim.cpuCount(); ++c) {
                auto &h = dynamic_cast<VrHierarchy &>(sim.hierarchy(c));
                n += h.tlb().hits() + h.tlb().misses();
            }
            return std::pair<std::uint64_t, std::uint64_t>(
                n, sim.refsProcessed());
        };
        auto [vr_lookups, refs] = lookups(HierarchyKind::VirtualReal);
        auto [rr_lookups, refs2] = lookups(HierarchyKind::RealRealIncl);
        (void)refs2;
        double vr_rate = 1000.0 * static_cast<double>(vr_lookups) /
            static_cast<double>(refs);
        double rr_rate = 1000.0 * static_cast<double>(rr_lookups) /
            static_cast<double>(refs);
        t.row()
            .cell(name)
            .cell(vr_rate, 1)
            .cell(rr_rate, 1)
            .cell(rr_rate / vr_rate, 1);
    }
    std::cout << t;
    std::cout << "(V-R translates only on level-1 misses; R-R must "
                 "translate every reference.)\n\n";

    std::cout << "--- second-level TLB reach (pops, V-R 16K/256K) ---\n";
    const TraceBundle &bundle = profileTrace("pops", scale);
    TextTable r;
    r.row()
        .cell("entries")
        .cell("assoc")
        .cell("TLB miss ratio")
        .cell("misses/1k refs");
    r.separator();
    struct TlbGeom
    {
        std::uint32_t entries, assoc;
    };
    for (TlbGeom g : {TlbGeom{32, 2}, {64, 2}, {128, 4}, {256, 4},
                      {512, 8}}) {
        MachineConfig mc = makeMachineConfig(HierarchyKind::VirtualReal,
                                             16 * 1024, 256 * 1024,
                                             bundle.profile.pageSize);
        mc.hierarchy.tlbEntries = g.entries;
        mc.hierarchy.tlbAssoc = g.assoc;
        MpSimulator sim(mc, bundle.profile);
        sim.run(bundle.records);
        std::uint64_t hits = 0, misses = 0;
        for (CpuId c = 0; c < sim.cpuCount(); ++c) {
            auto &h = dynamic_cast<VrHierarchy &>(sim.hierarchy(c));
            hits += h.tlb().hits();
            misses += h.tlb().misses();
        }
        double ratio = misses
            ? static_cast<double>(misses) /
                static_cast<double>(hits + misses)
            : 0.0;
        r.row()
            .cell(std::uint64_t{g.entries})
            .cell(std::uint64_t{g.assoc})
            .cell(ratio, 4)
            .cell(1000.0 * static_cast<double>(misses) /
                      static_cast<double>(sim.refsProcessed()),
                  2);
    }
    std::cout << r;
    return 0;
}
