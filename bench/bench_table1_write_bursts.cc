/**
 * @file
 * Reproduces Table 1: number of writes due to procedure calls in the
 * pops workload. The generator knows which writes belong to procedure
 * calls (as the paper's authors knew from VAX CALLS semantics).
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace vrc;
    double scale = benchScaleFromArgs(argc, argv);
    banner("Table 1: number of writes due to procedure calls (pops)",
           scale);

    const TraceBundle &bundle = profileTrace("pops", scale);
    const GenStats &gs = bundle.stats;
    const Histogram &h = gs.callWrites;

    TextTable t;
    t.row().cell("no. of wr. per call").cell("count").cell(
        "total writes");
    t.separator();
    for (std::uint64_t k = 1; k <= 16; ++k) {
        std::uint64_t count = h.count(k);
        if (k == h.maxBucket())
            count = h.overflowCount();
        t.row().cell(k).cell(count).cell(count * k);
    }
    t.separator();
    t.row()
        .cell("writes due to calls")
        .cell(std::string())
        .cell(gs.callWriteCount);
    t.row()
        .cell("total writes")
        .cell(std::string())
        .cell(gs.totalWrites);
    std::cout << t;

    double share = gs.totalWrites
        ? 100.0 * static_cast<double>(gs.callWriteCount) /
            static_cast<double>(gs.totalWrites)
        : 0.0;
    std::cout << "\nshare of writes due to procedure calls: " << share
              << "% (paper: ~30%)\n";
    std::cout << "mean writes per call: " << h.mean()
              << " (paper: six or more typical)\n";
    return 0;
}
