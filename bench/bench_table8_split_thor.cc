/** @file Reproduces Table 8 (thor). */

#include "split_table.hh"

int
main(int argc, char **argv)
{
    return vrc::runSplitTable("Table 8", "thor", argc, argv);
}
