/**
 * @file
 * Synonym-directory organization comparison: the paper's architected
 * r-pointer/v-pointer scheme (VR), the bounded reverse-lookup table
 * (VR(rlt)) and the R-R inclusion baseline on the same trace grid.
 *
 * Three cost axes per cell:
 *  - synonym handling: synonym hits and the moves among them (the RLT
 *    resolves the same synonyms, plus forced conflict evictions that
 *    show up as extra misses and percolation messages);
 *  - coherence percolation: total messages reaching the level-1
 *    caches (inclusion invalidations broken out);
 *  - architected directory overhead: link bits beyond the plain tag
 *    and state arrays, a static property of the geometry.
 */

#include "bench_util.hh"

#include "coherence/bus.hh"
#include "core/factory.hh"
#include "core/vr_hierarchy.hh"
#include "vm/addr_space.hh"

namespace vrc
{
namespace
{

const std::vector<HierarchyKind> kOrgs = {
    HierarchyKind::VirtualReal, HierarchyKind::VirtualRealRlt,
    HierarchyKind::RealRealIncl};

/**
 * Architected link-storage bits for one organization and geometry --
 * a property of the arrays, not of any workload, so a throwaway
 * hierarchy (no trace replayed) answers it.
 */
std::uint64_t
directoryBits(HierarchyKind kind, std::uint32_t l1, std::uint32_t l2,
              std::uint32_t page_size)
{
    MachineConfig cfg = makeMachineConfig(kind, l1, l2, page_size);
    AddressSpaceManager spaces(page_size);
    SharedBus bus;
    auto h = makeHierarchy(kind, cfg.hierarchy, spaces, bus);
    return static_cast<const VrHierarchy &>(*h)
        .synonymDirectory()
        .storageBits();
}

std::uint64_t
totalL1Msgs(const SimSummary &s)
{
    std::uint64_t total = 0;
    for (std::uint64_t m : s.l1MsgsPerCpu)
        total += m;
    return total;
}

} // namespace
} // namespace vrc

int
main(int argc, char **argv)
{
    using namespace vrc;

    double scale = benchScaleFromArgs(argc, argv);
    banner("Synonym-directory organizations: handling cost, "
           "percolation traffic and directory overhead",
           scale);

    for (const char *trace : {"thor", "pops", "abaqus"}) {
        const TraceBundle &bundle = profileTrace(trace, scale);

        std::vector<SimJob> jobs;
        for (auto [l1, l2] : paperSizePairs())
            for (auto kind : kOrgs)
                jobs.push_back({kind, l1, l2});

        PerfTimer timer;
        std::vector<SimSummary> all = runSimulations(bundle, jobs);
        std::uint64_t refs = 0;
        for (const auto &s : all)
            refs += s.refs;
        perfRecord("bench_synonym_orgs", trace, timer.seconds(), refs);

        std::cout << "--- " << trace << " ---\n";
        TextTable t;
        t.row()
            .cell("sizes  org")
            .cell("h1")
            .cell("h2")
            .cell("syn hits")
            .cell("syn moves")
            .cell("l1 msgs")
            .cell("incl inv")
            .cell("dir bits");
        t.separator();
        std::size_t i = 0;
        for (auto [l1, l2] : paperSizePairs()) {
            for (auto kind : kOrgs) {
                const SimSummary &s = all[i++];
                std::ostringstream h1, h2;
                h1.precision(4);
                h2.precision(4);
                h1 << std::fixed << s.h1;
                h2 << std::fixed << s.h2;
                t.row()
                    .cell(sizeLabel(l1, l2) + " " +
                          hierarchyKindName(kind))
                    .cell(h1.str())
                    .cell(h2.str())
                    .cell(s.synonymHits)
                    .cell(s.synonymMoves)
                    .cell(totalL1Msgs(s))
                    .cell(s.inclusionInvalidations)
                    .cell(directoryBits(kind, l1, l2,
                                        bundle.profile.pageSize));
            }
        }
        std::cout << t << "\n";
    }

    std::cout
        << "expected shape: VR and VR(rlt) resolve the same synonyms "
           "(identical hit ratios while the table has headroom); the "
           "RLT trades pointer bits in every tag for a small bounded "
           "table, paying extra level-1 messages when conflicts force "
           "back-invalidations; R-R sidesteps synonyms entirely via "
           "first-level translation.\n";
    return 0;
}
