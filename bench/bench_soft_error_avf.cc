/**
 * @file
 * AVF-style soft-error resilience comparison across organizations and
 * array-protection policies.
 *
 * Replays the pops trace with the strike model armed at a fixed rate
 * and reports, per (organization, protection) cell, how the strikes
 * resolved -- silent corruption, in-place ECC correction, detected and
 * recovered, or machine check -- plus the *cost* of recovery: refetches
 * served by the next level versus the bus, and the extra bus
 * transactions relative to an unarmed run of the same machine.
 *
 * The architectural contrast this quantifies: inclusion gives the V-R
 * hierarchy (and R-R incl) a translation-free local recovery path for
 * level-1 strikes, while the no-inclusion baseline must probe level 2
 * and fall back to a bus refetch -- and a dirty level-1 line there is
 * immediately unrecoverable.
 */

#include "bench_util.hh"

#include "base/fault.hh"
#include "sim/mp_sim.hh"

using namespace vrc;

namespace
{

constexpr const char *kStrikeSpec =
    "seed=97,tag=5e-4,state=1e-4,ptr=1e-4,bus=2e-5";

struct CellResult
{
    std::uint64_t refsDone = 0;
    bool halted = false;
    std::uint64_t silent = 0;
    std::uint64_t corrected = 0;
    std::uint64_t detected = 0;
    std::uint64_t recovered = 0;
    std::uint64_t refetchL2 = 0;
    std::uint64_t refetchBus = 0;
    std::uint64_t machineChecks = 0;
    std::uint64_t busTransactions = 0;
};

CellResult
runCell(const TraceBundle &bundle, HierarchyKind kind,
        ArrayProtection prot, bool armed)
{
    if (armed) {
        Status st = configureSoftErrors(kStrikeSpec);
        if (!st)
            fatal(st.error().describe());
    } else {
        disarmSoftErrors();
    }

    MachineConfig mc = makeMachineConfig(kind, 16 * 1024, 256 * 1024,
                                         bundle.profile.pageSize);
    mc.hierarchy.l1.protection = prot;
    mc.hierarchy.l2.protection = prot;
    MpSimulator sim(mc, bundle.profile);

    CellResult r;
    try {
        for (const TraceRecord &rec : bundle.records) {
            sim.step(rec);
            ++r.refsDone;
        }
    } catch (const FaultUnrecoverable &) {
        r.halted = true;
    }
    r.silent = sim.totalCounter("soft_silent");
    r.corrected = sim.totalCounter("soft_corrected");
    r.detected = sim.totalCounter("soft_detected");
    r.recovered = sim.totalCounter("soft_recovered");
    r.refetchL2 = sim.totalCounter("soft_refetches_l2");
    r.refetchBus = sim.totalCounter("soft_refetches_bus");
    r.machineChecks = sim.totalCounter("machine_checks");
    r.busTransactions = sim.bus().transactions();
    disarmSoftErrors();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    double scale = benchScaleFromArgs(argc, argv);
    banner("Soft-error AVF: protection policy x organization", scale);

    if (!softErrorsCompiledIn()) {
        std::cout << "soft-error model not compiled in "
                     "(-DVRC_SOFT_ERRORS=ON to enable); nothing to "
                     "measure.\n";
        return 0;
    }

    const TraceBundle &bundle = profileTrace("pops", scale);
    std::cout << "strike spec: " << kStrikeSpec << "\n\n";

    PerfTimer total;
    std::uint64_t total_refs = 0;
    TextTable t;
    t.row()
        .cell("org")
        .cell("protect")
        .cell("refs")
        .cell("silent")
        .cell("corr")
        .cell("det")
        .cell("recov")
        .cell("refetchL2")
        .cell("refetchBus")
        .cell("mcheck")
        .cell("extra bus");
    t.separator();

    for (HierarchyKind kind :
         {HierarchyKind::VirtualReal, HierarchyKind::RealRealIncl,
          HierarchyKind::RealRealNoIncl}) {
        // Unarmed baseline: the recovery-cost denominator.
        PerfTimer timer;
        CellResult base =
            runCell(bundle, kind, ArrayProtection::Secded, false);
        for (ArrayProtection prot :
             {ArrayProtection::None, ArrayProtection::Parity,
              ArrayProtection::Secded}) {
            CellResult r = runCell(bundle, kind, prot, true);
            total_refs += r.refsDone;
            std::string refs = std::to_string(r.refsDone);
            if (r.halted)
                refs += "*";
            t.row()
                .cell(hierarchyKindName(kind))
                .cell(arrayProtectionName(prot))
                .cell(refs)
                .cell(r.silent)
                .cell(r.corrected)
                .cell(r.detected)
                .cell(r.recovered)
                .cell(r.refetchL2)
                .cell(r.refetchBus)
                .cell(r.machineChecks)
                .cell(r.busTransactions >= base.busTransactions &&
                              !r.halted
                          ? std::to_string(r.busTransactions -
                                           base.busTransactions)
                          : std::string("-"));
        }
        perfRecord("bench_soft_error_avf", hierarchyKindName(kind),
                   timer.seconds(), base.refsDone);
    }
    std::cout << t;

    std::cout <<
        "\n(* = halted by machine check before the end of the trace)\n"
        "expected shape: 'none' detects nothing (all strikes silent);\n"
        "parity detects but cannot correct, so dirty-line strikes halt\n"
        "the machine; secded corrects single-bit strikes in place and\n"
        "recovers the detected remainder. Inclusion organizations\n"
        "(vr, rr) refetch level-1 strikes from the level-2 parent for\n"
        "free; rr-noincl pays bus refetches and halts on any detected\n"
        "dirty level-1 strike.\n";
    perfRecord("bench_soft_error_avf", "total", total.seconds(),
               total_refs);
    return 0;
}
