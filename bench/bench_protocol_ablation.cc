/**
 * @file
 * Protocol ablation: write-invalidate versus write-update at the second
 * level, for all three traces. The paper assumes invalidation "for
 * simplicity" and notes the scheme works for other protocols; this
 * bench quantifies the trade-off in the V-R hierarchy:
 *
 *  - update keeps remote copies alive (higher h1, fewer misses) and is
 *    still shielded by the R-cache (updates percolate to level 1 only
 *    when a child is resident);
 *  - update pays a bus broadcast and a memory write per shared write.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace vrc;
    double scale = benchScaleFromArgs(argc, argv);
    banner("Protocol ablation: write-invalidate vs write-update "
           "(V-R, 16K/256K)",
           scale);

    const CoherencePolicy policies[] = {CoherencePolicy::WriteInvalidate,
                                        CoherencePolicy::WriteUpdate};

    PerfTimer total;
    std::uint64_t total_refs = 0;
    for (const char *name : {"thor", "pops", "abaqus"}) {
        const TraceBundle &bundle = profileTrace(name, scale);
        TextTable t;
        t.row()
            .cell(std::string("trace ") + name)
            .cell("h1")
            .cell("misses")
            .cell("bus txs")
            .cell("updates")
            .cell("L1 msgs")
            .cell("memory writes");
        t.separator();

        // Protocol is not a SimJob knob: drive the pool directly, one
        // worker per policy, collecting the printed counters.
        struct Row
        {
            double h1 = 0.0;
            std::uint64_t misses = 0, busTxs = 0, updates = 0;
            std::uint64_t l1Msgs = 0, memWrites = 0, refs = 0;
        };
        ParallelRunner pool;
        std::vector<Row> rows = pool.map(2, [&](std::size_t i) {
            MachineConfig mc = makeMachineConfig(
                HierarchyKind::VirtualReal, 16 * 1024, 256 * 1024,
                bundle.profile.pageSize);
            mc.hierarchy.protocol = policies[i];
            MpSimulator sim(mc, bundle.profile);
            sim.run(bundle.records);
            return Row{sim.h1(),
                       sim.totalCounter("misses"),
                       sim.bus().transactions(),
                       sim.bus().stats().value("update"),
                       sim.totalCounter("l1_coherence_msgs"),
                       sim.totalCounter("memory_writes"),
                       sim.refsProcessed()};
        });
        for (std::size_t i = 0; i < rows.size(); ++i) {
            t.row()
                .cell(coherencePolicyName(policies[i]))
                .cell(rows[i].h1, 4)
                .cell(rows[i].misses)
                .cell(rows[i].busTxs)
                .cell(rows[i].updates)
                .cell(rows[i].l1Msgs)
                .cell(rows[i].memWrites);
            total_refs += rows[i].refs;
        }
        std::cout << t << "\n";
    }
    perfRecord("bench_protocol_ablation", "total", total.seconds(),
               total_refs);
    std::cout << "expected shape: update raises h1 (no invalidation "
                 "misses) at the cost of one bus broadcast and one "
                 "memory write per shared write.\n";
    return 0;
}
