/**
 * @file
 * Protocol ablation: write-invalidate versus write-update at the second
 * level, for all three traces. The paper assumes invalidation "for
 * simplicity" and notes the scheme works for other protocols; this
 * bench quantifies the trade-off in the V-R hierarchy:
 *
 *  - update keeps remote copies alive (higher h1, fewer misses) and is
 *    still shielded by the R-cache (updates percolate to level 1 only
 *    when a child is resident);
 *  - update pays a bus broadcast and a memory write per shared write.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace vrc;
    double scale = benchScaleFromArgs(argc, argv);
    banner("Protocol ablation: write-invalidate vs write-update "
           "(V-R, 16K/256K)",
           scale);

    for (const char *name : {"thor", "pops", "abaqus"}) {
        const TraceBundle &bundle = profileTrace(name, scale);
        TextTable t;
        t.row()
            .cell(std::string("trace ") + name)
            .cell("h1")
            .cell("misses")
            .cell("bus txs")
            .cell("updates")
            .cell("L1 msgs")
            .cell("memory writes");
        t.separator();
        for (CoherencePolicy pol : {CoherencePolicy::WriteInvalidate,
                                    CoherencePolicy::WriteUpdate}) {
            MachineConfig mc = makeMachineConfig(
                HierarchyKind::VirtualReal, 16 * 1024, 256 * 1024,
                bundle.profile.pageSize);
            mc.hierarchy.protocol = pol;
            MpSimulator sim(mc, bundle.profile);
            sim.run(bundle.records);
            t.row()
                .cell(coherencePolicyName(pol))
                .cell(sim.h1(), 4)
                .cell(sim.totalCounter("misses"))
                .cell(sim.bus().transactions())
                .cell(sim.bus().stats().value("update"))
                .cell(sim.totalCounter("l1_coherence_msgs"))
                .cell(sim.totalCounter("memory_writes"));
        }
        std::cout << t << "\n";
    }
    std::cout << "expected shape: update raises h1 (no invalidation "
                 "misses) at the cost of one bus broadcast and one "
                 "memory write per shared write.\n";
    return 0;
}
