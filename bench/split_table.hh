/**
 * @file
 * Shared implementation of Tables 8, 9 and 10: level-1 hit ratios of
 * split I/D versus unified V-caches, per reference type.
 */

#ifndef VRC_BENCH_SPLIT_TABLE_HH
#define VRC_BENCH_SPLIT_TABLE_HH

#include "bench_util.hh"

namespace vrc
{

inline int
runSplitTable(const std::string &table, const std::string &trace,
              int argc, char **argv)
{
    double scale = benchScaleFromArgs(argc, argv);
    banner(table + ": hit ratios of level-1 caches, split I/D vs "
                   "unified (" +
               trace + ", V-R)",
           scale);

    const TraceBundle &bundle = profileTrace(trace, scale);

    std::vector<SimJob> jobs;
    for (auto [l1, l2] : paperSizePairs())
        jobs.push_back({HierarchyKind::VirtualReal, l1, l2, true});
    for (auto [l1, l2] : paperSizePairs())
        jobs.push_back({HierarchyKind::VirtualReal, l1, l2, false});

    PerfTimer timer;
    std::vector<SimSummary> res = runSimulations(bundle, jobs);
    std::vector<SimSummary> split(res.begin(), res.begin() + 3);
    std::vector<SimSummary> unified(res.begin() + 3, res.end());
    std::uint64_t refs = 0;
    for (const auto &s : res)
        refs += s.refs;
    perfRecord(table, trace, timer.seconds(), refs);

    TextTable t;
    t.row().cell(trace);
    for (auto [l1, l2] : paperSizePairs())
        t.cell(sizeLabel(l1, l2));
    t.separator();

    const std::vector<std::pair<const char *, double SimSummary::*>>
        rows = {{"data read", &SimSummary::h1Read},
                {"data write", &SimSummary::h1Write},
                {"instruction", &SimSummary::h1Instr},
                {"overall", &SimSummary::h1}};
    for (auto [label, member] : rows) {
        t.row().cell(std::string(label) + " split");
        for (const auto &s : split)
            t.cell(s.*member, 3);
        t.row().cell(std::string("  ") + label + " unified");
        for (const auto &s : unified)
            t.cell(s.*member, 3);
    }
    std::cout << t;
    std::cout << "\nexpected shape (paper): split ratios within a "
                 "couple of points of unified, sometimes better.\n";
    return 0;
}

} // namespace vrc

#endif // VRC_BENCH_SPLIT_TABLE_HH
