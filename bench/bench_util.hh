/**
 * @file
 * Shared helpers for the experiment (table/figure) bench binaries.
 *
 * Every binary accepts:
 *   --quick        run on ~5% of the paper's trace lengths
 *   --scale=<f>    run on an arbitrary fraction
 *   --jobs=<n>     simulate up to n table cells concurrently
 * and prints one paper-style table to stdout.
 *
 * When VRC_PERF_OUT names a file, each binary also appends one JSON
 * line per timed section (wall-clock seconds, references simulated,
 * refs/sec, worker count); scripts/collect_perf.sh assembles those
 * lines into BENCH_perf.json.
 */

#ifndef VRC_BENCH_BENCH_UTIL_HH
#define VRC_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "base/table.hh"
#include "sim/experiment.hh"
#include "sim/parallel_runner.hh"

namespace vrc
{

/** Generate (and cache within the process) a paper trace at a scale. */
inline const TraceBundle &
profileTrace(const std::string &name, double scale)
{
    static std::map<std::string, TraceBundle> cache;
    std::string key = name + "@" + std::to_string(scale);
    auto it = cache.find(key);
    if (it == cache.end()) {
        WorkloadProfile p = scaled(profileByName(name), scale);
        std::cerr << "[generating " << name << " trace, "
                  << p.totalRefs << " refs]\n";
        it = cache.emplace(key, generateTrace(p)).first;
    }
    return it->second;
}

/** Standard banner naming the reproduced artifact. */
inline void
banner(const std::string &what, double scale)
{
    std::cout << "=== " << what << " ===\n";
    if (scale != 1.0)
        std::cout << "(scaled run: " << scale
                  << " of the paper's trace length)\n";
    std::cout << "\n";
}

/** Wall-clock stopwatch for bench self-timing. */
class PerfTimer
{
  public:
    PerfTimer() : _start(std::chrono::steady_clock::now()) {}

    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - _start)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point _start;
};

/**
 * Record one timed section of a bench run.
 *
 * Always prints the timing to stderr; when the VRC_PERF_OUT
 * environment variable names a file, also appends a JSON line with the
 * raw numbers so scripts/collect_perf.sh can build BENCH_perf.json.
 *
 * @param bench   binary name, e.g. "bench_table6"
 * @param section what was timed, e.g. a workload name or "total"
 * @param seconds wall-clock time of the section
 * @param refs    trace references simulated in the section (0 if n/a)
 */
inline void
perfRecord(const std::string &bench, const std::string &section,
           double seconds, std::uint64_t refs)
{
    unsigned jobs = ParallelRunner::defaultJobs();
    double rate = seconds > 0.0 ? static_cast<double>(refs) / seconds
                                : 0.0;
    std::cerr << "[perf] " << bench << "/" << section << ": " << seconds
              << " s";
    if (refs)
        std::cerr << ", " << refs << " refs, " << rate << " refs/s";
    std::cerr << ", jobs=" << jobs << "\n";

    const char *path = std::getenv("VRC_PERF_OUT");
    if (!path || !path[0])
        return;
    std::ofstream out(path, std::ios::app);
    out << "{\"bench\":\"" << bench << "\",\"section\":\"" << section
        << "\",\"seconds\":" << seconds << ",\"refs\":" << refs
        << ",\"refs_per_sec\":" << rate << ",\"jobs\":" << jobs
        << "}\n";
}

/** Print a histogram in the paper's "bucket / count" layout. */
inline void
printIntervalHistogram(const Histogram &h, const std::string &col)
{
    TextTable t;
    t.row().cell("interval").cell(col);
    t.separator();
    for (std::uint64_t d = 1; d < h.maxBucket(); ++d)
        t.row().cell(d).cell(h.count(d));
    t.row()
        .cell(std::to_string(h.maxBucket()) + " and larger")
        .cell(h.overflowCount());
    std::cout << t;
}

} // namespace vrc

#endif // VRC_BENCH_BENCH_UTIL_HH
