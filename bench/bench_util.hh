/**
 * @file
 * Shared helpers for the experiment (table/figure) bench binaries.
 *
 * Every binary accepts:
 *   --quick        run on ~5% of the paper's trace lengths
 *   --scale=<f>    run on an arbitrary fraction
 * and prints one paper-style table to stdout.
 */

#ifndef VRC_BENCH_BENCH_UTIL_HH
#define VRC_BENCH_BENCH_UTIL_HH

#include <iostream>
#include <map>
#include <string>

#include "base/table.hh"
#include "sim/experiment.hh"

namespace vrc
{

/** Generate (and cache within the process) a paper trace at a scale. */
inline const TraceBundle &
profileTrace(const std::string &name, double scale)
{
    static std::map<std::string, TraceBundle> cache;
    std::string key = name + "@" + std::to_string(scale);
    auto it = cache.find(key);
    if (it == cache.end()) {
        WorkloadProfile p = scaled(profileByName(name), scale);
        std::cerr << "[generating " << name << " trace, "
                  << p.totalRefs << " refs]\n";
        it = cache.emplace(key, generateTrace(p)).first;
    }
    return it->second;
}

/** Standard banner naming the reproduced artifact. */
inline void
banner(const std::string &what, double scale)
{
    std::cout << "=== " << what << " ===\n";
    if (scale != 1.0)
        std::cout << "(scaled run: " << scale
                  << " of the paper's trace length)\n";
    std::cout << "\n";
}

/** Print a histogram in the paper's "bucket / count" layout. */
inline void
printIntervalHistogram(const Histogram &h, const std::string &col)
{
    TextTable t;
    t.row().cell("interval").cell(col);
    t.separator();
    for (std::uint64_t d = 1; d < h.maxBucket(); ++d)
        t.row().cell(d).cell(h.count(d));
    t.row()
        .cell(std::to_string(h.maxBucket()) + " and larger")
        .cell(h.overflowCount());
    std::cout << t;
}

} // namespace vrc

#endif // VRC_BENCH_BENCH_UTIL_HH
