/**
 * @file
 * Reproduces Table 7: hit ratios with small first-level caches
 * (.5K/64K, 1K/128K, 2K/256K). The paper's point: at these sizes V-R
 * and R-R level-1 hit ratios are nearly identical even for the
 * switch-heavy trace, so any translation penalty makes V-R win.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace vrc;
    double scale = benchScaleFromArgs(argc, argv);
    banner("Table 7: hit ratios for small first-level caches", scale);

    for (const char *name : {"thor", "pops", "abaqus"}) {
        const TraceBundle &bundle = profileTrace(name, scale);
        TextTable t;
        t.row().cell("trace: " + std::string(name));
        for (auto [l1, l2] : smallSizePairs())
            t.cell(sizeLabel(l1, l2));
        t.separator();

        std::vector<SimSummary> vr, rr;
        for (auto [l1, l2] : smallSizePairs()) {
            vr.push_back(runSimulation(bundle,
                                       HierarchyKind::VirtualReal, l1,
                                       l2));
            rr.push_back(runSimulation(bundle,
                                       HierarchyKind::RealRealIncl, l1,
                                       l2));
        }
        t.row().cell("h1VR");
        for (const auto &s : vr)
            t.cell(s.h1, 3);
        t.row().cell("h1RR");
        for (const auto &s : rr)
            t.cell(s.h1, 3);
        t.row().cell("h2VR");
        for (const auto &s : vr)
            t.cell(s.h2, 3);
        t.row().cell("h2RR");
        for (const auto &s : rr)
            t.cell(s.h2, 3);
        std::cout << t << "\n";
    }
    std::cout << "expected shape (paper): h1VR ~= h1RR at all small "
                 "sizes, including abaqus.\n";
    return 0;
}
