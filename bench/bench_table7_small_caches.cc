/**
 * @file
 * Reproduces Table 7: hit ratios with small first-level caches
 * (.5K/64K, 1K/128K, 2K/256K). The paper's point: at these sizes V-R
 * and R-R level-1 hit ratios are nearly identical even for the
 * switch-heavy trace, so any translation penalty makes V-R win.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace vrc;
    double scale = benchScaleFromArgs(argc, argv);
    banner("Table 7: hit ratios for small first-level caches", scale);

    PerfTimer total;
    std::uint64_t total_refs = 0;
    for (const char *name : {"thor", "pops", "abaqus"}) {
        const TraceBundle &bundle = profileTrace(name, scale);
        TextTable t;
        t.row().cell("trace: " + std::string(name));
        for (auto [l1, l2] : smallSizePairs())
            t.cell(sizeLabel(l1, l2));
        t.separator();

        std::vector<SimJob> jobs;
        for (auto [l1, l2] : smallSizePairs())
            jobs.push_back({HierarchyKind::VirtualReal, l1, l2});
        for (auto [l1, l2] : smallSizePairs())
            jobs.push_back({HierarchyKind::RealRealIncl, l1, l2});

        PerfTimer timer;
        std::vector<SimSummary> res = runSimulations(bundle, jobs);
        std::vector<SimSummary> vr(res.begin(), res.begin() + 3);
        std::vector<SimSummary> rr(res.begin() + 3, res.end());
        std::uint64_t refs = 0;
        for (const auto &s : res)
            refs += s.refs;
        perfRecord("bench_table7", name, timer.seconds(), refs);
        total_refs += refs;
        t.row().cell("h1VR");
        for (const auto &s : vr)
            t.cell(s.h1, 3);
        t.row().cell("h1RR");
        for (const auto &s : rr)
            t.cell(s.h1, 3);
        t.row().cell("h2VR");
        for (const auto &s : vr)
            t.cell(s.h2, 3);
        t.row().cell("h2RR");
        for (const auto &s : rr)
            t.cell(s.h2, 3);
        std::cout << t << "\n";
    }
    std::cout << "expected shape (paper): h1VR ~= h1RR at all small "
                 "sizes, including abaqus.\n";
    perfRecord("bench_table7", "total", total.seconds(), total_refs);
    return 0;
}
