/** @file Reproduces Table 13 (abaqus, 2 CPUs). */

#include "coherence_table.hh"

int
main(int argc, char **argv)
{
    return vrc::runCoherenceTable("Table 13", "abaqus", argc, argv);
}
