/**
 * @file
 * Reproduces the Section 2 in-text claim: with the relaxed replacement
 * rule, inclusion invalidations are rare. The paper reports only 21
 * for pops with a 16K 2-way V-cache and a 256K R-cache (same set size
 * and block size). We sweep all three traces and several geometries.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace vrc;
    double scale = benchScaleFromArgs(argc, argv);
    banner("Section 2: inclusion invalidations under the relaxed "
           "replacement rule",
           scale);

    TextTable t;
    t.row()
        .cell("trace")
        .cell("V-cache")
        .cell("R-cache")
        .cell("assoc")
        .cell("inclusion invalidations")
        .cell("forced replacements")
        .cell("refs");
    t.separator();

    struct Geometry
    {
        std::uint32_t l1, l2, assoc;
    };
    const std::vector<Geometry> geoms = {
        {16 * 1024, 256 * 1024, 2}, // the paper's quoted configuration
        {16 * 1024, 256 * 1024, 1},
        {4 * 1024, 64 * 1024, 1},
        {16 * 1024, 64 * 1024, 1}, // small ratio: more pressure
    };

    for (const char *name : {"pops", "thor", "abaqus"}) {
        const TraceBundle &bundle = profileTrace(name, scale);
        for (const auto &g : geoms) {
            MachineConfig mc = makeMachineConfig(
                HierarchyKind::VirtualReal, g.l1, g.l2,
                bundle.profile.pageSize);
            mc.hierarchy.l1.assoc = g.assoc;
            mc.hierarchy.l2.assoc = g.assoc;
            MpSimulator sim(mc, bundle.profile);
            sim.run(bundle.records);
            t.row()
                .cell(name)
                .cell(sizeLabel(g.l1, g.l2))
                .cell(std::string())
                .cell(std::uint64_t{g.assoc})
                .cell(sim.totalCounter("inclusion_invalidations"))
                .cell(sim.totalCounter("forced_r_replacements"))
                .cell(sim.refsProcessed());
        }
    }
    std::cout << t;
    std::cout << "\npaper: 21 inclusion invalidations for pops at "
                 "16K(2-way)/256K over ~3.3M references.\n";
    return 0;
}
