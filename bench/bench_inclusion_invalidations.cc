/**
 * @file
 * Reproduces the Section 2 in-text claim: with the relaxed replacement
 * rule, inclusion invalidations are rare. The paper reports only 21
 * for pops with a 16K 2-way V-cache and a 256K R-cache (same set size
 * and block size). We sweep all three traces and several geometries.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace vrc;
    double scale = benchScaleFromArgs(argc, argv);
    banner("Section 2: inclusion invalidations under the relaxed "
           "replacement rule",
           scale);

    TextTable t;
    t.row()
        .cell("trace")
        .cell("V-cache")
        .cell("R-cache")
        .cell("assoc")
        .cell("inclusion invalidations")
        .cell("forced replacements")
        .cell("refs");
    t.separator();

    struct Geometry
    {
        std::uint32_t l1, l2, assoc;
    };
    const std::vector<Geometry> geoms = {
        {16 * 1024, 256 * 1024, 2}, // the paper's quoted configuration
        {16 * 1024, 256 * 1024, 1},
        {4 * 1024, 64 * 1024, 1},
        {16 * 1024, 64 * 1024, 1}, // small ratio: more pressure
    };

    // Custom geometries fall outside SimJob: drive the pool directly.
    // Traces are generated serially first (profileTrace caches in a
    // map that must not be mutated concurrently).
    struct Cell
    {
        const char *name;
        const TraceBundle *bundle;
        Geometry geom;
    };
    std::vector<Cell> cells;
    for (const char *name : {"pops", "thor", "abaqus"}) {
        const TraceBundle &bundle = profileTrace(name, scale);
        for (const auto &g : geoms)
            cells.push_back({name, &bundle, g});
    }

    struct CellResult
    {
        std::uint64_t inclusion = 0, forced = 0, refs = 0;
    };
    PerfTimer timer;
    ParallelRunner pool;
    std::vector<CellResult> results =
        pool.map(cells.size(), [&](std::size_t i) {
            const Cell &c = cells[i];
            MachineConfig mc = makeMachineConfig(
                HierarchyKind::VirtualReal, c.geom.l1, c.geom.l2,
                c.bundle->profile.pageSize);
            mc.hierarchy.l1.assoc = c.geom.assoc;
            mc.hierarchy.l2.assoc = c.geom.assoc;
            MpSimulator sim(mc, c.bundle->profile);
            sim.run(c.bundle->records);
            return CellResult{
                sim.totalCounter("inclusion_invalidations"),
                sim.totalCounter("forced_r_replacements"),
                sim.refsProcessed()};
        });

    std::uint64_t total_refs = 0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell &c = cells[i];
        const CellResult &r = results[i];
        t.row()
            .cell(c.name)
            .cell(sizeLabel(c.geom.l1, c.geom.l2))
            .cell(std::string())
            .cell(std::uint64_t{c.geom.assoc})
            .cell(r.inclusion)
            .cell(r.forced)
            .cell(r.refs);
        total_refs += r.refs;
    }
    perfRecord("bench_inclusion_invalidations", "total",
               timer.seconds(), total_refs);
    std::cout << t;
    std::cout << "\npaper: 21 inclusion invalidations for pops at "
                 "16K(2-way)/256K over ~3.3M references.\n";
    return 0;
}
