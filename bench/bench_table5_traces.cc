/**
 * @file
 * Reproduces Table 5: characteristics of the three (synthetic) traces.
 */

#include "bench_util.hh"

#include "trace/trace_stats.hh"

int
main(int argc, char **argv)
{
    using namespace vrc;
    double scale = benchScaleFromArgs(argc, argv);
    banner("Table 5: characteristics of traces", scale);

    TextTable t;
    t.row()
        .cell("trace")
        .cell("num. of cpus")
        .cell("total refs")
        .cell("instr count")
        .cell("data read")
        .cell("data write")
        .cell("context switch count");
    t.separator();
    for (const char *name : {"thor", "pops", "abaqus"}) {
        const TraceBundle &bundle = profileTrace(name, scale);
        auto c = characterize(bundle.records);
        t.row()
            .cell(name)
            .cell(std::uint64_t{c.numCpus})
            .cell(c.totalRefs)
            .cell(c.instrCount)
            .cell(c.dataReads)
            .cell(c.dataWrites)
            .cell(c.contextSwitches);
    }
    std::cout << t;
    std::cout << "\npaper (full scale): thor 4/3283k/1517k/1390k/376k/"
                 "21, pops 4/3286k/1718k/1285k/283k/7, abaqus "
                 "2/1196k/514k/600k/82k/292\n";
    return 0;
}
