/**
 * @file
 * Scenario tests for the non-inclusive R-R baseline: level 1 survives
 * level-2 evictions, and every foreign bus transaction probes level 1.
 */

#include <gtest/gtest.h>

#include <memory>

#include "coherence/bus.hh"
#include "core/rr_hierarchy.hh"
#include "vm/addr_space.hh"

namespace vrc
{
namespace
{

constexpr std::uint32_t kPage = 4096;

class RrNoInclTest : public ::testing::Test
{
  protected:
    RrNoInclTest() : spaces(kPage) {}

    void
    build(unsigned cpus = 2)
    {
        for (unsigned i = 0; i < cpus; ++i) {
            h.push_back(std::make_unique<RrNoInclHierarchy>(
                params, spaces, bus));
        }
    }

    void
    map(ProcessId pid, Vpn vpn, Ppn ppn)
    {
        spaces.pageTable(pid).map(vpn, ppn);
    }

    AccessOutcome
    read(unsigned cpu, ProcessId pid, std::uint32_t va)
    {
        return h[cpu]->access({RefType::Read, VirtAddr(va), pid});
    }

    AccessOutcome
    write(unsigned cpu, ProcessId pid, std::uint32_t va)
    {
        return h[cpu]->access({RefType::Write, VirtAddr(va), pid});
    }

    HierarchyParams params{{8 * 1024, 16, 1, ReplPolicy::LRU},
                           {32 * 1024, 16, 1, ReplPolicy::LRU},
                           kPage};
    AddressSpaceManager spaces;
    SharedBus bus;
    std::vector<std::unique_ptr<RrNoInclHierarchy>> h;
};

TEST_F(RrNoInclTest, ColdMissThenHit)
{
    build(1);
    map(0, 0x10, 5);
    EXPECT_EQ(read(0, 0, 0x10000), AccessOutcome::Miss);
    EXPECT_EQ(read(0, 0, 0x10000), AccessOutcome::L1Hit);
    h[0]->checkInvariants();
}

TEST_F(RrNoInclTest, L1SurvivesL2Eviction)
{
    // Any two blocks sharing a direct-mapped L2 set also share the
    // (smaller) L1 set, so give L1 two ways to let both coexist there.
    params.l1.assoc = 2;
    build(1);
    // ppn 5 and ppn 13 collide in the 32K L2 (0x5000 vs 0xD000 mod
    // 0x8000); the 2-way L1 keeps both.
    map(0, 0x10, 5);
    map(0, 0x31, 13);
    read(0, 0, 0x10000);
    EXPECT_EQ(read(0, 0, 0x31000), AccessOutcome::Miss)
        << "conflicts in L2, evicting the first line there";
    EXPECT_FALSE(h[0]->l2().find(0x5000).has_value())
        << "L2 replaced the first line";
    EXPECT_EQ(read(0, 0, 0x10000), AccessOutcome::L1Hit)
        << "without inclusion the L1 copy survives";
    h[0]->checkInvariants();
}

TEST_F(RrNoInclTest, EveryForeignTransactionProbesL1)
{
    build(2);
    map(0, 0x10, 5);
    map(1, 0x20, 6);
    // CPU1 issues two unrelated misses; CPU0's L1 is probed each time.
    read(1, 1, 0x20000);
    write(1, 1, 0x20100);
    EXPECT_EQ(h[0]->stats().value("l1_probes"),
              h[0]->stats().value("l1_coherence_msgs"));
    EXPECT_GE(h[0]->stats().value("l1_probes"), 2u)
        << "no filtering: every foreign transaction disturbs L1";
    h[0]->checkInvariants();
}

TEST_F(RrNoInclTest, ForeignReadFlushesDirtyL1)
{
    build(2);
    map(0, 0x10, 5);
    map(1, 0x10, 5);
    write(0, 0, 0x10000);
    EXPECT_EQ(read(1, 1, 0x10000), AccessOutcome::Miss);
    EXPECT_EQ(h[0]->stats().value("l1_flushes"), 1u);
    EXPECT_EQ(h[1]->stats().value("fills_from_cache"), 1u);
    auto hit = h[0]->l1().find(0x5000);
    ASSERT_TRUE(hit.has_value());
    EXPECT_FALSE(h[0]->l1().line(*hit).meta.dirty);
    EXPECT_EQ(h[0]->l1().line(*hit).meta.state, CoherenceState::Shared);
    h[0]->checkInvariants();
}

TEST_F(RrNoInclTest, ForeignWriteInvalidatesL1)
{
    build(2);
    map(0, 0x10, 5);
    map(1, 0x10, 5);
    read(0, 0, 0x10000);
    write(1, 1, 0x10000);
    EXPECT_FALSE(h[0]->l1().find(0x5000).has_value());
    EXPECT_FALSE(h[0]->l2().find(0x5000).has_value());
    h[0]->checkInvariants();
}

TEST_F(RrNoInclTest, WriteHitSharedUpgradesViaBus)
{
    build(2);
    map(0, 0x10, 5);
    map(1, 0x10, 5);
    read(0, 0, 0x10000);
    read(1, 1, 0x10000);
    std::uint64_t txs = bus.transactions();
    EXPECT_EQ(write(0, 0, 0x10000), AccessOutcome::L1Hit);
    EXPECT_EQ(bus.transactions(), txs + 1);
    EXPECT_FALSE(h[1]->l1().find(0x5000).has_value());
    h[0]->checkInvariants();
}

TEST_F(RrNoInclTest, DirtyVictimPullbackFromBuffer)
{
    build(1);
    map(0, 0x10, 5);
    map(0, 0x12, 7); // 0x5000 vs 0x7000 collide in the 8K L1
    write(0, 0, 0x10000);
    read(0, 0, 0x12000);
    EXPECT_EQ(h[0]->writeBuffer().size(), 1u);
    EXPECT_EQ(read(0, 0, 0x10000), AccessOutcome::L2Hit)
        << "pull-back costs one L2-level access";
    EXPECT_EQ(h[0]->stats().value("buffer_pullbacks"), 1u);
    EXPECT_TRUE(h[0]->writeBuffer().empty());
    h[0]->checkInvariants();
}

TEST_F(RrNoInclTest, OrphanWritebackBypassesL2)
{
    params.l1.assoc = 2;
    build(1);
    map(0, 0x10, 5);
    map(0, 0x31, 13); // L2 conflict for ppn 5
    map(0, 0x12, 7);  // L1 conflict for ppn 5
    write(0, 0, 0x10000); // dirty in L1 and present in L2
    read(0, 0, 0x31000);  // evicts 0x5000 from L2 only
    read(0, 0, 0x12000);  // evicts dirty 0x5000 from L1 -> buffer
    // Drain: the L2 no longer has the line, so the data goes to memory.
    for (int i = 0; i < 100; ++i)
        read(0, 0, 0x12000);
    EXPECT_TRUE(h[0]->writeBuffer().empty());
    EXPECT_EQ(h[0]->stats().value("writebacks_bypassing_l2"), 1u);
    EXPECT_GE(h[0]->stats().value("memory_writes"), 1u);
    h[0]->checkInvariants();
}

TEST_F(RrNoInclTest, ContextSwitchIsFree)
{
    build(1);
    map(0, 0x10, 5);
    read(0, 0, 0x10000);
    h[0]->contextSwitch(1);
    map(1, 0x10, 5);
    EXPECT_EQ(read(0, 1, 0x10000), AccessOutcome::L1Hit);
}

TEST_F(RrNoInclTest, ForeignReadFlushesBufferedBlock)
{
    build(2);
    map(0, 0x10, 5);
    map(0, 0x12, 7);
    map(1, 0x10, 5);
    write(0, 0, 0x10000);
    read(0, 0, 0x12000); // dirty victim into buffer
    EXPECT_EQ(read(1, 1, 0x10000), AccessOutcome::Miss);
    EXPECT_EQ(h[0]->stats().value("buffer_flushes"), 1u);
    EXPECT_TRUE(h[0]->writeBuffer().empty());
    h[0]->checkInvariants();
}

} // namespace
} // namespace vrc
