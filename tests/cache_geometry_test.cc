/**
 * @file
 * Unit tests for cache geometry arithmetic.
 */

#include <gtest/gtest.h>

#include "cache/cache_geometry.hh"

namespace vrc
{
namespace
{

TEST(CacheGeometryTest, DirectMappedDerivedValues)
{
    CacheGeometry g(16 * 1024, 16, 1);
    EXPECT_EQ(g.numBlocks(), 1024u);
    EXPECT_EQ(g.numSets(), 1024u);
    EXPECT_EQ(g.blockShift(), 4u);
}

TEST(CacheGeometryTest, SetAssociativeDerivedValues)
{
    CacheGeometry g(16 * 1024, 16, 4);
    EXPECT_EQ(g.numBlocks(), 1024u);
    EXPECT_EQ(g.numSets(), 256u);
}

TEST(CacheGeometryTest, BlockAlignment)
{
    CacheGeometry g(1024, 32, 1);
    EXPECT_EQ(g.blockAddr(0x1234), 0x1220u);
    EXPECT_EQ(g.blockNumber(0x1234), 0x1234u >> 5);
}

TEST(CacheGeometryTest, SetIndexWraps)
{
    CacheGeometry g(1024, 16, 1); // 64 sets
    EXPECT_EQ(g.setIndex(0x0), 0u);
    EXPECT_EQ(g.setIndex(16), 1u);
    EXPECT_EQ(g.setIndex(1024), 0u) << "indexing wraps at cache size";
}

TEST(CacheGeometryTest, TagDistinguishesConflictingBlocks)
{
    CacheGeometry g(1024, 16, 1);
    EXPECT_EQ(g.setIndex(0x0), g.setIndex(0x400));
    EXPECT_NE(g.tag(0x0), g.tag(0x400));
}

TEST(CacheGeometryTest, RebuildAddrRoundTrip)
{
    CacheGeometry g(8 * 1024, 64, 2);
    for (std::uint32_t addr : {0u, 0x40u, 0x12345u & ~63u, 0xffffffc0u}) {
        EXPECT_EQ(g.rebuildAddr(g.tag(addr), g.setIndex(addr)),
                  g.blockAddr(addr));
    }
}

TEST(CacheGeometryTest, FullyAssociativeSingleSet)
{
    CacheGeometry g(1024, 16, 64);
    EXPECT_EQ(g.numSets(), 1u);
    EXPECT_EQ(g.setIndex(0xabcd), 0u);
}

TEST(CacheGeometryTest, Equality)
{
    EXPECT_EQ(CacheGeometry(1024, 16, 1), CacheGeometry(1024, 16, 1));
    EXPECT_FALSE(CacheGeometry(1024, 16, 1) == CacheGeometry(1024, 16, 2));
}

TEST(CacheGeometryDeathTest, RejectsNonPowerOfTwoSize)
{
    EXPECT_DEATH(CacheGeometry(1000, 16, 1), "power of 2");
}

TEST(CacheGeometryDeathTest, RejectsExcessAssociativity)
{
    EXPECT_DEATH(CacheGeometry(64, 16, 8), "associativity");
}

} // namespace
} // namespace vrc
