/**
 * @file
 * Parameterized property tests: for every organization, geometry and
 * workload combination, the hierarchy invariants hold throughout a
 * trace replay, hit ratios stay in bounds, and simulation results are
 * deterministic.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "base/rng.hh"
#include "sim/experiment.hh"

namespace vrc
{
namespace
{

struct PropertyCase
{
    HierarchyKind kind;
    std::uint32_t l1Size;
    std::uint32_t l2Size;
    std::uint32_t l1Assoc;
    std::uint32_t l2Assoc;
    std::uint32_t l2BlockFactor; ///< B2 = factor * B1
    bool split;
    const char *workload;
};

std::string
caseName(const ::testing::TestParamInfo<PropertyCase> &info)
{
    const PropertyCase &c = info.param;
    std::string n = hierarchyKindName(c.kind);
    for (char &ch : n) {
        if (!isalnum(static_cast<unsigned char>(ch)))
            ch = '_';
    }
    n += "_" + std::to_string(c.l1Size / 1024) + "k" +
        std::to_string(c.l1Assoc) + "w_" +
        std::to_string(c.l2Size / 1024) + "k" +
        std::to_string(c.l2Assoc) + "w_b" +
        std::to_string(c.l2BlockFactor) + (c.split ? "_split_" : "_") +
        c.workload;
    return n;
}

const TraceBundle &
cachedBundle(const std::string &workload)
{
    static std::map<std::string, TraceBundle> cache;
    auto it = cache.find(workload);
    if (it == cache.end()) {
        WorkloadProfile p = scaled(profileByName(workload), 0.008);
        it = cache.emplace(workload, generateTrace(p)).first;
    }
    return it->second;
}

class HierarchyPropertyTest
    : public ::testing::TestWithParam<PropertyCase>
{
};

TEST_P(HierarchyPropertyTest, InvariantsHoldThroughoutReplay)
{
    const PropertyCase &c = GetParam();
    const TraceBundle &bundle = cachedBundle(c.workload);

    MachineConfig mc = makeMachineConfig(c.kind, c.l1Size, c.l2Size,
                                         bundle.profile.pageSize,
                                         c.split);
    mc.hierarchy.l1.assoc = c.l1Assoc;
    mc.hierarchy.l2.assoc = c.l2Assoc;
    mc.hierarchy.l2.blockBytes =
        mc.hierarchy.l1.blockBytes * c.l2BlockFactor;
    mc.invariantPeriod = 500;

    MpSimulator sim(mc, bundle.profile);
    sim.run(bundle.records);
    sim.checkInvariants();

    // Hit ratios stay in their mathematical bounds.
    EXPECT_GE(sim.h1(), 0.0);
    EXPECT_LT(sim.h1(), 1.0);
    EXPECT_GE(sim.h2(), 0.0);
    EXPECT_LE(sim.h2(), 1.0);

    // Conservation: every reference is a hit at exactly one place.
    std::uint64_t refs = sim.totalCounter("refs");
    std::uint64_t l1 = sim.totalCounter("l1_hits");
    std::uint64_t l2 = sim.totalCounter("l2_hits");
    std::uint64_t syn = sim.totalCounter("synonym_hits");
    std::uint64_t miss = sim.totalCounter("misses");
    EXPECT_EQ(refs, l1 + l2 + syn + miss);
}

TEST_P(HierarchyPropertyTest, Deterministic)
{
    const PropertyCase &c = GetParam();
    const TraceBundle &bundle = cachedBundle(c.workload);
    MachineConfig mc = makeMachineConfig(c.kind, c.l1Size, c.l2Size,
                                         bundle.profile.pageSize,
                                         c.split);
    mc.hierarchy.l1.assoc = c.l1Assoc;
    mc.hierarchy.l2.assoc = c.l2Assoc;
    mc.hierarchy.l2.blockBytes =
        mc.hierarchy.l1.blockBytes * c.l2BlockFactor;

    MpSimulator a(mc, bundle.profile);
    MpSimulator b(mc, bundle.profile);
    a.run(bundle.records);
    b.run(bundle.records);
    EXPECT_EQ(a.totalCounter("l1_hits"), b.totalCounter("l1_hits"));
    EXPECT_EQ(a.totalCounter("misses"), b.totalCounter("misses"));
    EXPECT_EQ(a.bus().transactions(), b.bus().transactions());
    EXPECT_EQ(a.totalCounter("memory_writes"),
              b.totalCounter("memory_writes"));
}

/**
 * SoA invariant under OS pressure: interleave replay with storms of
 * page remaps (machine-wide TLB shootdowns) and verify after every
 * storm that the hierarchy invariants -- including the V-cache
 * synonym/reverse-pointer linkage walked by checkInvariants() -- still
 * hold, and that every remapped page translates to its new frame.
 */
TEST_P(HierarchyPropertyTest, SynonymPointersSurviveRemapStorm)
{
    const PropertyCase &c = GetParam();
    const TraceBundle &bundle = cachedBundle(c.workload);

    MachineConfig mc = makeMachineConfig(c.kind, c.l1Size, c.l2Size,
                                         bundle.profile.pageSize,
                                         c.split);
    mc.hierarchy.l1.assoc = c.l1Assoc;
    mc.hierarchy.l2.assoc = c.l2Assoc;
    mc.hierarchy.l2.blockBytes =
        mc.hierarchy.l1.blockBytes * c.l2BlockFactor;
    mc.invariantPeriod = 500;

    MpSimulator sim(mc, bundle.profile);
    const std::vector<TraceRecord> &recs = bundle.records;
    const std::size_t rounds = 8;
    const std::size_t chunk = recs.size() / rounds;
    ASSERT_GT(chunk, 0u);

    Rng rng(c.l1Size + 31 * c.l1Assoc + (c.split ? 7 : 0));
    // Hand out frames from the top of physical memory, descending, so
    // storm targets never collide with demand-allocated frames.
    Ppn fresh = mc.physPages - 1;

    for (std::size_t round = 0; round < rounds; ++round) {
        sim.runBatch(recs.data() + round * chunk, chunk);

        // Storm: remap pages the replay just touched (so the TLBs and
        // caches plausibly hold them) to brand-new frames.
        std::vector<std::pair<ProcessId, Vpn>> moved;
        for (int i = 0; i < 12; ++i) {
            const TraceRecord &r =
                recs[round * chunk + rng.below(chunk)];
            if (!r.isMemRef())
                continue;
            Vpn vpn = r.vaddr / bundle.profile.pageSize;
            sim.remapPage(r.pid, vpn, fresh);
            moved.emplace_back(r.pid, vpn);
            --fresh;
        }
        sim.checkInvariants();

        // Only the most recent remap of a page is architecturally
        // visible; walk the storm backwards and check the first
        // assignment seen per page.
        std::map<std::pair<ProcessId, Vpn>, Ppn> expect;
        Ppn frame = fresh;
        for (auto it = moved.rbegin(); it != moved.rend(); ++it)
            expect.emplace(*it, ++frame);
        for (const auto &[page, ppn] : expect) {
            auto pa = sim.spaces().tryTranslate(
                page.first,
                VirtAddr(page.second * bundle.profile.pageSize));
            ASSERT_TRUE(pa.has_value());
            EXPECT_EQ(pa->ppn(bundle.profile.pageSize), ppn);
        }
    }

    // Finish the tail of the trace on the remapped address spaces.
    sim.runBatch(recs.data() + rounds * chunk,
                 recs.size() - rounds * chunk);
    sim.checkInvariants();

    // Conservation must survive the storms too.
    std::uint64_t refs = sim.totalCounter("refs");
    EXPECT_EQ(refs, sim.totalCounter("l1_hits") +
                        sim.totalCounter("l2_hits") +
                        sim.totalCounter("synonym_hits") +
                        sim.totalCounter("misses"));
    EXPECT_GT(sim.totalCounter("tlb_shootdowns"), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, HierarchyPropertyTest,
    ::testing::Values(
        // The paper's direct-mapped configurations.
        PropertyCase{HierarchyKind::VirtualReal, 4096, 65536, 1, 1, 1,
                     false, "pops"},
        PropertyCase{HierarchyKind::VirtualReal, 16384, 262144, 1, 1, 1,
                     false, "thor"},
        PropertyCase{HierarchyKind::VirtualReal, 4096, 65536, 1, 1, 1,
                     false, "abaqus"},
        // Small level-1 caches (Table 7 territory).
        PropertyCase{HierarchyKind::VirtualReal, 512, 65536, 1, 1, 1,
                     false, "pops"},
        PropertyCase{HierarchyKind::VirtualReal, 1024, 65536, 1, 1, 1,
                     false, "abaqus"},
        // Associativity.
        PropertyCase{HierarchyKind::VirtualReal, 4096, 65536, 2, 2, 1,
                     false, "pops"},
        PropertyCase{HierarchyKind::VirtualReal, 8192, 65536, 4, 2, 1,
                     false, "abaqus"},
        // Larger level-2 blocks (subentries per line).
        PropertyCase{HierarchyKind::VirtualReal, 4096, 65536, 1, 2, 2,
                     false, "pops"},
        PropertyCase{HierarchyKind::VirtualReal, 4096, 131072, 2, 4, 4,
                     false, "thor"},
        // Split I/D.
        PropertyCase{HierarchyKind::VirtualReal, 8192, 65536, 1, 1, 1,
                     true, "pops"},
        PropertyCase{HierarchyKind::VirtualReal, 8192, 131072, 2, 2, 2,
                     true, "abaqus"},
        // R-R baselines.
        PropertyCase{HierarchyKind::RealRealIncl, 4096, 65536, 1, 1, 1,
                     false, "pops"},
        PropertyCase{HierarchyKind::RealRealIncl, 8192, 131072, 2, 2, 2,
                     false, "abaqus"},
        PropertyCase{HierarchyKind::RealRealIncl, 8192, 65536, 1, 1, 1,
                     true, "thor"},
        PropertyCase{HierarchyKind::RealRealNoIncl, 4096, 65536, 1, 1,
                     1, false, "pops"},
        PropertyCase{HierarchyKind::RealRealNoIncl, 8192, 131072, 2, 2,
                     2, false, "abaqus"},
        PropertyCase{HierarchyKind::RealRealNoIncl, 8192, 65536, 1, 1,
                     1, true, "thor"},
        // Reverse-lookup-table synonym directory.
        PropertyCase{HierarchyKind::VirtualRealRlt, 4096, 65536, 1, 1,
                     1, false, "pops"},
        PropertyCase{HierarchyKind::VirtualRealRlt, 4096, 131072, 2, 4,
                     4, false, "thor"},
        PropertyCase{HierarchyKind::VirtualRealRlt, 8192, 65536, 1, 1,
                     1, true, "abaqus"}),
    caseName);

/**
 * A deliberately tiny reverse-lookup table must evict links on set
 * conflicts, and every conflict must back-invalidate the level-1 child
 * (dirty data parked in the write buffer) without ever breaking the
 * hierarchy invariants or reference conservation.
 */
TEST(RltConflictTest, ConflictEvictionBackInvalidatesChildren)
{
    const TraceBundle &bundle = cachedBundle("pops");
    MachineConfig mc =
        makeMachineConfig(HierarchyKind::VirtualRealRlt, 4096, 65536,
                          bundle.profile.pageSize, false);
    // 8 sets x 2 ways over a 256-line level 1: constant conflicts.
    mc.hierarchy.rltEntries = 16;
    mc.hierarchy.rltAssoc = 2;
    mc.invariantPeriod = 500;

    MpSimulator sim(mc, bundle.profile);
    sim.run(bundle.records);
    sim.checkInvariants();

    EXPECT_GT(sim.totalCounter("rlt_conflict_invalidations"), 0u);

    std::uint64_t refs = sim.totalCounter("refs");
    EXPECT_EQ(refs, sim.totalCounter("l1_hits") +
                        sim.totalCounter("l2_hits") +
                        sim.totalCounter("synonym_hits") +
                        sim.totalCounter("misses"));

    // The bounded directory never outgrows its architected capacity,
    // and a conflict-riddled run still satisfies the linkage walk.
    MpSimulator fresh(mc, bundle.profile);
    fresh.checkInvariants();
}

} // namespace
} // namespace vrc
