/**
 * @file
 * Unit tests for the overflow-bucket histogram.
 */

#include <gtest/gtest.h>

#include "base/histogram.hh"

namespace vrc
{
namespace
{

TEST(HistogramTest, EmptyHistogram)
{
    Histogram h(10);
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    for (std::uint64_t v = 1; v <= 10; ++v)
        EXPECT_EQ(h.count(v), 0u);
}

TEST(HistogramTest, BasicBuckets)
{
    Histogram h(10);
    h.record(1);
    h.record(1);
    h.record(5);
    EXPECT_EQ(h.count(1), 2u);
    EXPECT_EQ(h.count(5), 1u);
    EXPECT_EQ(h.count(2), 0u);
    EXPECT_EQ(h.samples(), 3u);
}

TEST(HistogramTest, OverflowBucketAbsorbsLargeValues)
{
    Histogram h(10);
    h.record(10);
    h.record(11);
    h.record(1000);
    EXPECT_EQ(h.overflowCount(), 3u);
    EXPECT_EQ(h.count(10), 3u);
    EXPECT_EQ(h.count(9), 0u);
}

TEST(HistogramTest, SumKeepsExactValues)
{
    Histogram h(4);
    h.record(100);
    h.record(2);
    EXPECT_EQ(h.sum(), 102u);
    EXPECT_DOUBLE_EQ(h.mean(), 51.0);
}

TEST(HistogramTest, ZeroClampsToOne)
{
    Histogram h(4);
    h.record(0);
    EXPECT_EQ(h.count(1), 1u);
    EXPECT_EQ(h.sum(), 1u);
}

TEST(HistogramTest, Clear)
{
    Histogram h(4);
    h.record(2);
    h.record(9);
    h.clear();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.count(2), 0u);
    EXPECT_EQ(h.overflowCount(), 0u);
}

TEST(HistogramTest, SingleBucketEverythingOverflows)
{
    Histogram h(1);
    h.record(1);
    h.record(7);
    EXPECT_EQ(h.overflowCount(), 2u);
}

} // namespace
} // namespace vrc
