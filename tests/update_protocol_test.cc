/**
 * @file
 * Scenario tests for the write-update protocol option (the paper:
 * "our scheme will also work for other protocols as well").
 *
 * Under write-update, a write to a shared block broadcasts the new
 * data: other copies stay valid (no invalidation misses), memory is
 * updated, and the writer's copy stays clean. The R-cache still
 * shields level 1 -- the update percolates only when the inclusion bit
 * says a child actually holds the block.
 */

#include <gtest/gtest.h>

#include <memory>

#include "coherence/bus.hh"
#include "core/rr_hierarchy.hh"
#include "core/vr_hierarchy.hh"
#include "sim/experiment.hh"
#include "vm/addr_space.hh"

namespace vrc
{
namespace
{

constexpr std::uint32_t kPage = 4096;

class UpdateProtocolTest : public ::testing::Test
{
  protected:
    UpdateProtocolTest() : spaces(kPage)
    {
        params.protocol = CoherencePolicy::WriteUpdate;
    }

    void
    build(unsigned cpus = 2)
    {
        for (unsigned i = 0; i < cpus; ++i) {
            h.push_back(std::make_unique<VrHierarchy>(params, spaces,
                                                      bus, true));
        }
    }

    void
    map(ProcessId pid, Vpn vpn, Ppn ppn)
    {
        spaces.pageTable(pid).map(vpn, ppn);
    }

    AccessOutcome
    read(unsigned cpu, ProcessId pid, std::uint32_t va)
    {
        return h[cpu]->access({RefType::Read, VirtAddr(va), pid});
    }

    AccessOutcome
    write(unsigned cpu, ProcessId pid, std::uint32_t va)
    {
        return h[cpu]->access({RefType::Write, VirtAddr(va), pid});
    }

    HierarchyParams params{{8 * 1024, 16, 1, ReplPolicy::LRU},
                           {64 * 1024, 16, 1, ReplPolicy::LRU},
                           kPage};
    AddressSpaceManager spaces;
    SharedBus bus;
    std::vector<std::unique_ptr<VrHierarchy>> h;
};

TEST_F(UpdateProtocolTest, SharedWriteKeepsAllCopiesValid)
{
    build();
    map(0, 0x10, 5);
    map(1, 0x10, 5);
    read(0, 0, 0x10000);
    read(1, 1, 0x10000); // shared in both
    EXPECT_EQ(write(0, 0, 0x10000), AccessOutcome::L1Hit);
    // CPU1 still hits: its copy was updated, not invalidated.
    EXPECT_EQ(read(1, 1, 0x10000), AccessOutcome::L1Hit);
    EXPECT_EQ(bus.stats().value("update"), 1u);
    EXPECT_EQ(bus.stats().value("invalidate"), 0u);
    for (auto &x : h)
        x->checkInvariants();
}

TEST_F(UpdateProtocolTest, WriterCopyStaysClean)
{
    build();
    map(0, 0x10, 5);
    map(1, 0x10, 5);
    read(0, 0, 0x10000);
    read(1, 1, 0x10000);
    write(0, 0, 0x10000);
    auto hit = h[0]->vcache().lookup(VirtAddr(0x10000));
    ASSERT_TRUE(hit.has_value());
    EXPECT_FALSE(h[0]->vcache().line(*hit).meta.dirty)
        << "the bus write-through leaves the writer's copy clean";
    EXPECT_GE(h[0]->stats().value("memory_writes"), 1u);
    auto rref = h[0]->rcache().probe(PhysAddr(5 * kPage));
    EXPECT_EQ(h[0]->rcache().line(*rref).meta.state,
              CoherenceState::Shared)
        << "the line stays shared under write-update";
    for (auto &x : h)
        x->checkInvariants();
}

TEST_F(UpdateProtocolTest, UpdatePercolatesOnlyToResidentChildren)
{
    build();
    map(0, 0x10, 5);
    map(0, 0x12, 6);
    map(1, 0x10, 5);
    read(0, 0, 0x10000);
    read(1, 1, 0x10000);
    // Evict the block from CPU0's V-cache (stays in its R-cache).
    read(0, 0, 0x12000);
    std::uint64_t msgs = h[0]->stats().value("l1_coherence_msgs");
    write(1, 1, 0x10000);
    EXPECT_EQ(h[0]->stats().value("l1_coherence_msgs"), msgs)
        << "no V-cache child: the R-cache absorbs the update silently";
    // Re-resident copy does receive updates.
    read(0, 0, 0x10000);
    write(1, 1, 0x10000);
    EXPECT_EQ(h[0]->stats().value("l1_updates"), 1u);
    for (auto &x : h)
        x->checkInvariants();
}

TEST_F(UpdateProtocolTest, ExclusiveWriteStaysLocal)
{
    build();
    map(0, 0x10, 5);
    read(0, 0, 0x10000); // private (nobody else)
    std::uint64_t txs = bus.transactions();
    write(0, 0, 0x10000);
    EXPECT_EQ(bus.transactions(), txs) << "private block: silent";
    auto hit = h[0]->vcache().lookup(VirtAddr(0x10000));
    EXPECT_TRUE(h[0]->vcache().line(*hit).meta.dirty);
    h[0]->checkInvariants();
}

TEST_F(UpdateProtocolTest, FireflyDowngradeWhenNoSharers)
{
    build();
    map(0, 0x10, 5);
    map(1, 0x10, 5);
    read(0, 0, 0x10000);
    read(1, 1, 0x10000);
    // CPU1 drops its copies entirely (simulate by foreign write from
    // cpu0 twice: first write updates, then cpu1 evicts).
    map(1, 0x12, 7);
    read(1, 1, 0x12000); // evicts cpu1's V copy (L1 conflict), R keeps it
    write(0, 0, 0x10000);
    // cpu1's R still holds the block, so the line stays shared.
    auto rref = h[0]->rcache().probe(PhysAddr(5 * kPage));
    EXPECT_EQ(h[0]->rcache().line(*rref).meta.state,
              CoherenceState::Shared);
    for (auto &x : h)
        x->checkInvariants();
}

TEST_F(UpdateProtocolTest, WriteMissToSharedBlockBroadcastsUpdate)
{
    build();
    map(0, 0x10, 5);
    map(1, 0x10, 5);
    read(1, 1, 0x10000); // cpu1 holds it
    EXPECT_EQ(write(0, 0, 0x10000), AccessOutcome::Miss);
    EXPECT_EQ(bus.stats().value("update"), 1u);
    // cpu1's copy survived and was refreshed.
    EXPECT_EQ(read(1, 1, 0x10000), AccessOutcome::L1Hit);
    // cpu0's new copy is clean and shared.
    auto hit = h[0]->vcache().lookup(VirtAddr(0x10000));
    ASSERT_TRUE(hit.has_value());
    EXPECT_FALSE(h[0]->vcache().line(*hit).meta.dirty);
    for (auto &x : h)
        x->checkInvariants();
}

TEST_F(UpdateProtocolTest, FullWorkloadInvariantsHold)
{
    WorkloadProfile p = scaled(popsProfile(), 0.01);
    TraceBundle bundle = generateTrace(p);
    MachineConfig mc = makeMachineConfig(HierarchyKind::VirtualReal,
                                         8 * 1024, 128 * 1024,
                                         p.pageSize);
    mc.hierarchy.protocol = CoherencePolicy::WriteUpdate;
    mc.invariantPeriod = 1'000;
    MpSimulator sim(mc, p);
    sim.run(bundle.records);
    sim.checkInvariants();
    EXPECT_GT(sim.totalCounter("updates_sent"), 0u);
    EXPECT_GT(sim.h1(), 0.5);
}

TEST_F(UpdateProtocolTest, UpdateRaisesH1VersusInvalidate)
{
    // The classic trade-off: updates keep copies alive (higher h1 for
    // sharing-heavy workloads) at the cost of more bus traffic.
    WorkloadProfile p = scaled(popsProfile(), 0.02);
    p.sharedFrac = 0.15;
    p.hotspotFrac = 0.05;
    TraceBundle bundle = generateTrace(p);

    struct Result
    {
        double h1;
        std::uint64_t misses;
        std::uint64_t updates;
    };
    auto run = [&](CoherencePolicy pol) {
        MachineConfig mc = makeMachineConfig(
            HierarchyKind::VirtualReal, 8 * 1024, 128 * 1024,
            p.pageSize);
        mc.hierarchy.protocol = pol;
        MpSimulator sim(mc, p);
        sim.run(bundle.records);
        return Result{sim.h1(), sim.totalCounter("misses"),
                      sim.bus().stats().value("update")};
    };
    Result inv = run(CoherencePolicy::WriteInvalidate);
    Result upd = run(CoherencePolicy::WriteUpdate);
    EXPECT_GT(upd.h1, inv.h1)
        << "updates keep copies alive -> fewer invalidation misses";
    EXPECT_LT(upd.misses, inv.misses);
    EXPECT_GT(upd.updates, 0u);
    EXPECT_EQ(inv.updates, 0u);
}

TEST_F(UpdateProtocolTest, NoInclBaselineSupportsUpdates)
{
    params.protocol = CoherencePolicy::WriteUpdate;
    RrNoInclHierarchy a(params, spaces, bus);
    RrNoInclHierarchy b(params, spaces, bus);
    map(0, 0x10, 5);
    map(1, 0x10, 5);
    a.access({RefType::Read, VirtAddr(0x10000), 0});
    b.access({RefType::Read, VirtAddr(0x10000), 1});
    a.access({RefType::Write, VirtAddr(0x10000), 0});
    // b's copy stays valid and refreshed.
    EXPECT_EQ(b.access({RefType::Read, VirtAddr(0x10000), 1}),
              AccessOutcome::L1Hit);
    EXPECT_EQ(b.stats().value("l1_updates"), 1u);
    a.checkInvariants();
    b.checkInvariants();
}

} // namespace
} // namespace vrc
