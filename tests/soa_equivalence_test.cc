/**
 * @file
 * Differential test: legacy (array-of-structures) reference tag store
 * versus the production SoA fast path.
 *
 * Randomized machine configurations -- geometry, associativity,
 * replacement policy, organization, coherence protocol, split level-1,
 * timing engine, soft-error arming -- are replayed twice over the same
 * trace, once per model, and every architectural observable must be
 * bit-identical: the full per-CPU counter groups, the bus counters,
 * the complete event streams, and the derived hit ratios / timing
 * figures down to the last mantissa bit.
 *
 * The legacy model only exists behind the VRC_REFERENCE_MODEL build
 * option; without it the whole suite SKIPs (the golden-stats corpus
 * still guards absolute behaviour in such builds).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "base/fault.hh"
#include "cache/reference_mode.hh"
#include "core/events.hh"
#include "sim/experiment.hh"
#include "trace/generator.hh"

namespace vrc
{
namespace
{

/** One randomized machine configuration. */
struct EquivConfig
{
    std::string trace;
    HierarchyKind kind = HierarchyKind::VirtualReal;
    std::uint32_t l1Size = 16 * 1024;
    std::uint32_t l2Size = 256 * 1024;
    std::uint32_t l1Assoc = 1;
    std::uint32_t l2Assoc = 1;
    ReplPolicy policy = ReplPolicy::LRU;
    bool split = false;
    CoherencePolicy protocol = CoherencePolicy::WriteInvalidate;
    TimingMode timingMode = TimingMode::Analytic;
    std::uint64_t softErrorSeed = 0; ///< 0 = disarmed

    std::string
    describe() const
    {
        return trace + " kind=" +
               std::to_string(static_cast<int>(kind)) + " l1=" +
               std::to_string(l1Size) + "/" + std::to_string(l1Assoc) +
               " l2=" + std::to_string(l2Size) + "/" +
               std::to_string(l2Assoc) + " policy=" +
               std::to_string(static_cast<int>(policy)) +
               (split ? " split" : "") + " proto=" +
               std::to_string(static_cast<int>(protocol)) + " timing=" +
               std::to_string(static_cast<int>(timingMode)) +
               " soft=" + std::to_string(softErrorSeed);
    }
};

/** Everything one run exposes architecturally. */
struct RunResult
{
    std::map<std::string, std::uint64_t> counters;
    std::vector<std::vector<HierarchyEvent>> events; ///< per CPU
    std::uint64_t h1Bits = 0, h2Bits = 0;
    std::uint64_t accessTimeBits = 0, accessCyclesBits = 0;
    std::uint64_t refs = 0;

    /** Machine-check message when the run aborted (soft errors). */
    std::string machineCheck;
};

std::uint64_t
bits(double v)
{
    std::uint64_t out;
    std::memcpy(&out, &v, sizeof(out));
    return out;
}

const TraceBundle &
equivTrace(const std::string &name)
{
    static std::map<std::string, TraceBundle> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        WorkloadProfile p = scaled(profileByName(name), 0.004);
        it = cache.emplace(name, generateTrace(p)).first;
    }
    return it->second;
}

/** Arm/disarm the process-wide soft-error model around one run. */
class SoftErrorArm
{
  public:
    explicit SoftErrorArm(std::uint64_t seed)
    {
        if (seed != 0 && softErrorsCompiledIn()) {
            auto st = configureSoftErrors("seed=" +
                                          std::to_string(seed));
            armed = st.ok();
        }
    }
    ~SoftErrorArm() { disarmSoftErrors(); }
    bool armed = false;
};

RunResult
runOnce(const EquivConfig &cfg, bool reference)
{
    ReferenceModeScope scope(reference);
    SoftErrorArm soft(cfg.softErrorSeed);

    const TraceBundle &bundle = equivTrace(cfg.trace);
    MachineConfig mc =
        makeMachineConfig(cfg.kind, cfg.l1Size, cfg.l2Size,
                          bundle.profile.pageSize, cfg.split);
    mc.hierarchy.l1.assoc = cfg.l1Assoc;
    mc.hierarchy.l2.assoc = cfg.l2Assoc;
    mc.hierarchy.l1.policy = cfg.policy;
    mc.hierarchy.l2.policy = cfg.policy;
    mc.hierarchy.protocol = cfg.protocol;
    mc.timingMode = cfg.timingMode;
    mc.invariantPeriod = 4096;

    MpSimulator sim(mc, bundle.profile);
    std::vector<RecordingObserver> observers(sim.cpuCount());
    for (CpuId c = 0; c < sim.cpuCount(); ++c)
        sim.hierarchy(c).setObserver(&observers[c]);

    RunResult r;
    // An armed soft-error model may legitimately machine-check
    // mid-replay (uncorrectable strike on dirty data). That abort is
    // itself an architectural observable: both models must fail at
    // the same point with the same message, and the counters and
    // events accumulated up to the abort must still match.
    try {
        sim.run(bundle.records);
        sim.checkInvariants();
    } catch (const std::exception &e) {
        r.machineCheck = e.what();
    }
    for (CpuId c = 0; c < sim.cpuCount(); ++c) {
        std::string prefix = "cpu" + std::to_string(c) + ".";
        for (const auto &[key, ctr] :
             sim.hierarchy(c).stats().all()) {
            r.counters[prefix + key] = ctr.value();
        }
        r.events.push_back(observers[c].events());
    }
    for (const auto &[key, ctr] : sim.bus().stats().all())
        r.counters["bus." + key] = ctr.value();
    r.h1Bits = bits(sim.h1());
    r.h2Bits = bits(sim.h2());
    r.accessTimeBits = bits(sim.measuredAccessTime());
    r.accessCyclesBits = bits(sim.avgAccessCycles());
    r.refs = sim.refsProcessed();
    return r;
}

void
expectIdentical(const RunResult &ref, const RunResult &soa,
                const std::string &what)
{
    EXPECT_EQ(ref.machineCheck, soa.machineCheck)
        << what << ": machine-check behaviour drifted";
    EXPECT_EQ(ref.refs, soa.refs) << what;
    EXPECT_EQ(ref.h1Bits, soa.h1Bits) << what << ": h1 drifted";
    EXPECT_EQ(ref.h2Bits, soa.h2Bits) << what << ": h2 drifted";
    EXPECT_EQ(ref.accessTimeBits, soa.accessTimeBits)
        << what << ": measured access time drifted";
    EXPECT_EQ(ref.accessCyclesBits, soa.accessCyclesBits)
        << what << ": cycle-engine latency drifted";

    ASSERT_EQ(ref.counters.size(), soa.counters.size()) << what;
    for (const auto &[key, value] : ref.counters) {
        auto it = soa.counters.find(key);
        ASSERT_NE(it, soa.counters.end())
            << what << ": counter " << key << " missing in SoA run";
        EXPECT_EQ(value, it->second)
            << what << ": counter " << key << " drifted";
    }

    ASSERT_EQ(ref.events.size(), soa.events.size()) << what;
    for (std::size_t c = 0; c < ref.events.size(); ++c) {
        const auto &re = ref.events[c];
        const auto &se = soa.events[c];
        ASSERT_EQ(re.size(), se.size())
            << what << ": cpu " << c << " event count drifted";
        for (std::size_t i = 0; i < re.size(); ++i) {
            bool same = re[i].kind == se[i].kind &&
                        re[i].cpu == se[i].cpu &&
                        re[i].refIndex == se[i].refIndex &&
                        re[i].vaddr == se[i].vaddr &&
                        re[i].paddr == se[i].paddr;
            ASSERT_TRUE(same)
                << what << ": cpu " << c << " event " << i
                << " drifted (" << eventKindName(re[i].kind) << " vs "
                << eventKindName(se[i].kind) << " at ref "
                << re[i].refIndex << ")";
        }
    }
}

void
runDifferential(const EquivConfig &cfg)
{
    if (!referenceModelBuilt()) {
        GTEST_SKIP()
            << "legacy reference model not built "
               "(reconfigure with -DVRC_REFERENCE_MODEL=ON)";
    }
    SCOPED_TRACE(cfg.describe());
    RunResult ref = runOnce(cfg, /*reference=*/true);
    RunResult soa = runOnce(cfg, /*reference=*/false);
    expectIdentical(ref, soa, cfg.describe());
}

/** Deterministic random configuration stream. */
std::vector<EquivConfig>
randomConfigs(std::size_t n)
{
    std::mt19937_64 rng(0xC0FFEE5EEDull);
    const char *traces[] = {"thor", "pops", "abaqus"};
    const HierarchyKind kinds[] = {HierarchyKind::VirtualReal,
                                   HierarchyKind::RealRealIncl,
                                   HierarchyKind::RealRealNoIncl};
    const std::uint32_t l1s[] = {2048, 4096, 8192, 16384};
    const std::uint32_t ratios[] = {8, 16, 32};
    std::vector<EquivConfig> out;
    for (std::size_t i = 0; i < n; ++i) {
        EquivConfig c;
        c.trace = traces[rng() % 3];
        c.kind = kinds[rng() % 3];
        c.l1Size = l1s[rng() % 4];
        c.l2Size = c.l1Size * ratios[rng() % 3];
        if (c.l2Size < 65536)
            c.l2Size = 65536; // keep the R-pointer span nonempty
        c.l1Assoc = 1u << (rng() % 3);
        c.l2Assoc = 1u << (rng() % 2);
        c.policy = rng() % 4 == 0 ? ReplPolicy::Random : ReplPolicy::LRU;
        c.split = c.kind == HierarchyKind::VirtualReal && rng() % 2 == 0;
        c.protocol = rng() % 2 == 0 ? CoherencePolicy::WriteInvalidate
                                    : CoherencePolicy::WriteUpdate;
        c.timingMode =
            rng() % 3 == 0 ? TimingMode::Cycle : TimingMode::Analytic;
        if (softErrorsCompiledIn() && rng() % 3 == 0)
            c.softErrorSeed = rng() % 100000 + 1;
        out.push_back(c);
    }
    return out;
}

TEST(SoaEquivalence, RandomizedConfigs)
{
    for (const EquivConfig &cfg : randomConfigs(12))
        runDifferential(cfg);
}

/** The paper's canonical configuration, all three organizations. */
TEST(SoaEquivalence, PaperConfigs)
{
    for (auto kind :
         {HierarchyKind::VirtualReal, HierarchyKind::RealRealIncl,
          HierarchyKind::RealRealNoIncl}) {
        EquivConfig c;
        c.trace = "pops";
        c.kind = kind;
        c.l1Size = 16 * 1024;
        c.l2Size = 256 * 1024;
        runDifferential(c);
    }
}

/** Cycle timing engine with a split V-cache (the layered-cost path). */
TEST(SoaEquivalence, CycleSplit)
{
    EquivConfig c;
    c.trace = "abaqus";
    c.kind = HierarchyKind::VirtualReal;
    c.l1Size = 8 * 1024;
    c.l2Size = 128 * 1024;
    c.split = true;
    c.timingMode = TimingMode::Cycle;
    runDifferential(c);
}

} // namespace
} // namespace vrc
