/**
 * @file
 * Unit tests for the V-cache tag store behaviour (swapped-valid bit,
 * retag, victim choice). The architected r-pointer bits are owned by
 * the hierarchy's synonym directory (tests/synonym_dir_test.cc).
 */

#include <gtest/gtest.h>

#include "core/vcache.hh"

namespace vrc
{
namespace
{

CacheParams
smallParams()
{
    return {4 * 1024, 16, 1, ReplPolicy::LRU};
}

TEST(VCacheTest, MissOnEmpty)
{
    VCache vc(smallParams());
    EXPECT_FALSE(vc.lookup(VirtAddr(0x1000)).has_value());
}

TEST(VCacheTest, InstallThenHit)
{
    VCache vc(smallParams());
    VirtAddr va(0x1230);
    LineRef slot = vc.victimFor(va);
    vc.install(slot, va, 0x55550, false);
    auto hit = vc.lookup(va);
    ASSERT_TRUE(hit.has_value());
    EXPECT_FALSE(vc.line(*hit).meta.dirty);
    EXPECT_EQ(vc.line(*hit).meta.physBlockAddr, 0x55550u);
}

TEST(VCacheTest, SwappedBlockDoesNotHit)
{
    VCache vc(smallParams());
    VirtAddr va(0x1000);
    vc.install(vc.victimFor(va), va, 0x9990, true);
    vc.markAllSwapped();
    EXPECT_FALSE(vc.lookup(va).has_value())
        << "swapped-valid blocks are invisible to lookups";
    // ...but the content is still occupied for synonym/victim purposes.
    auto occ = vc.findOccupied(0x1000);
    ASSERT_TRUE(occ.has_value());
    EXPECT_TRUE(vc.line(*occ).meta.swappedValid);
    EXPECT_TRUE(vc.line(*occ).meta.dirty) << "dirty survives the switch";
}

TEST(VCacheTest, MarkAllSwappedSkipsEmptyLines)
{
    VCache vc(smallParams());
    vc.markAllSwapped();
    EXPECT_EQ(vc.tags().validCount(), 0u);
}

TEST(VCacheTest, RetagClearsSwappedAndPreservesState)
{
    VCache vc(smallParams());
    VirtAddr old_va(0x1000);
    vc.install(vc.victimFor(old_va), old_va, 0x9990, true);
    vc.markAllSwapped();
    auto occ = vc.findOccupied(0x1000);
    ASSERT_TRUE(occ.has_value());
    // New virtual address in the same set (same index bits).
    VirtAddr new_va(0x1000 + 4 * 1024);
    ASSERT_EQ(vc.setIndex(new_va), occ->set);
    vc.retag(*occ, new_va);
    auto hit = vc.lookup(new_va);
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(vc.line(*hit).meta.dirty);
    EXPECT_EQ(vc.line(*hit).meta.physBlockAddr, 0x9990u);
    EXPECT_FALSE(vc.lookup(old_va).has_value());
}

TEST(VCacheTest, InstallClearsSwapped)
{
    VCache vc(smallParams());
    VirtAddr va(0x1000);
    vc.install(vc.victimFor(va), va, 0x9990, false);
    vc.markAllSwapped();
    LineRef slot = vc.victimFor(va);
    vc.install(slot, va, 0x9990, false);
    EXPECT_TRUE(vc.lookup(va).has_value());
}

TEST(VCacheTest, ConflictingBlocksShareSetDirectMapped)
{
    VCache vc(smallParams());
    VirtAddr a(0x1000), b(0x1000 + 4 * 1024);
    EXPECT_EQ(vc.setIndex(a), vc.setIndex(b));
    vc.install(vc.victimFor(a), a, 0x100, false);
    LineRef slot = vc.victimFor(b);
    EXPECT_TRUE(vc.line(slot).valid) << "victim is the conflicting block";
}

TEST(VCacheTest, LineVAddrRoundTrip)
{
    VCache vc(smallParams());
    VirtAddr va(0xabc0);
    LineRef slot = vc.victimFor(va);
    vc.install(slot, va, 0x100, false);
    EXPECT_EQ(vc.lineVAddr(slot), 0xabc0u);
}

TEST(VCacheDeathTest, RetagAcrossSetsRejected)
{
    VCache vc(smallParams());
    VirtAddr va(0x1000);
    LineRef slot = vc.victimFor(va);
    vc.install(slot, va, 0x100, false);
    EXPECT_DEATH(vc.retag(slot, VirtAddr(0x2010)), "within the set");
}

} // namespace
} // namespace vrc
