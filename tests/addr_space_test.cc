/**
 * @file
 * Unit tests for machine-wide address-space management.
 */

#include <gtest/gtest.h>

#include "vm/addr_space.hh"

namespace vrc
{
namespace
{

constexpr std::uint32_t kPage = 4096;

TEST(AddrSpaceTest, DemandAllocationIsStable)
{
    AddressSpaceManager m(kPage);
    PhysAddr a = m.translate(0, VirtAddr(0x1234));
    PhysAddr b = m.translate(0, VirtAddr(0x1678));
    EXPECT_EQ(a.ppn(kPage), b.ppn(kPage)) << "same page, same frame";
    EXPECT_EQ(a.value() % kPage, 0x234u) << "offset preserved";
    EXPECT_EQ(b.value() % kPage, 0x678u);
}

TEST(AddrSpaceTest, DistinctPagesDistinctFrames)
{
    AddressSpaceManager m(kPage);
    PhysAddr a = m.translate(0, VirtAddr(0x1000));
    PhysAddr b = m.translate(0, VirtAddr(0x2000));
    EXPECT_NE(a.ppn(kPage), b.ppn(kPage));
}

TEST(AddrSpaceTest, ProcessesAreIsolated)
{
    AddressSpaceManager m(kPage);
    PhysAddr a = m.translate(0, VirtAddr(0x1000));
    PhysAddr b = m.translate(1, VirtAddr(0x1000));
    EXPECT_NE(a.ppn(kPage), b.ppn(kPage))
        << "same vaddr in different processes must get different frames";
}

TEST(AddrSpaceTest, DeterministicAcrossInstances)
{
    AddressSpaceManager m1(kPage), m2(kPage);
    for (std::uint32_t v = 0; v < 64; ++v) {
        EXPECT_EQ(m1.translate(0, VirtAddr(v * kPage)).value(),
                  m2.translate(0, VirtAddr(v * kPage)).value());
    }
}

TEST(AddrSpaceTest, TryTranslateDoesNotAllocate)
{
    AddressSpaceManager m(kPage);
    EXPECT_FALSE(m.tryTranslate(0, VirtAddr(0x5000)).has_value());
    EXPECT_EQ(m.framesAllocated(), 0u) << "no frame handed out";
    m.translate(0, VirtAddr(0x5000));
    auto pa = m.tryTranslate(0, VirtAddr(0x5123));
    ASSERT_TRUE(pa.has_value());
    EXPECT_EQ(pa->value() % kPage, 0x123u);
}

TEST(AddrSpaceTest, SharedSegmentSameFrames)
{
    AddressSpaceManager m(kPage);
    SegmentId seg = m.createSegment(4);
    m.attachSegment(0, seg, 0x100);
    m.attachSegment(1, seg, 0x200);
    for (std::uint32_t i = 0; i < 4; ++i) {
        PhysAddr a = m.translate(0, VirtAddr((0x100 + i) * kPage + 8));
        PhysAddr b = m.translate(1, VirtAddr((0x200 + i) * kPage + 8));
        EXPECT_EQ(a.value(), b.value())
            << "shared segment page " << i << " must alias";
    }
}

TEST(AddrSpaceTest, SynonymWithinOneProcess)
{
    AddressSpaceManager m(kPage);
    SegmentId seg = m.createSegment(1);
    m.attachSegment(0, seg, 0x10);
    m.attachSegment(0, seg, 0x80);
    PhysAddr a = m.translate(0, VirtAddr(0x10 * kPage + 4));
    PhysAddr b = m.translate(0, VirtAddr(0x80 * kPage + 4));
    EXPECT_EQ(a.value(), b.value());
}

TEST(AddrSpaceTest, SegmentFramesAccessor)
{
    AddressSpaceManager m(kPage);
    SegmentId seg = m.createSegment(3);
    EXPECT_EQ(m.segmentFrames(seg).size(), 3u);
}

TEST(AddrSpaceTest, FrameZeroNeverAllocated)
{
    AddressSpaceManager m(kPage, 8); // tiny memory to force wrap
    for (std::uint32_t v = 0; v < 50; ++v) {
        PhysAddr pa = m.translate(0, VirtAddr(v * kPage));
        EXPECT_NE(pa.ppn(kPage), 0u);
        EXPECT_LT(pa.ppn(kPage), 8u);
    }
}

TEST(AddrSpaceTest, PageColoringMatchesVirtualColor)
{
    AddressSpaceManager m(kPage);
    for (Vpn v = 0; v < 64; ++v) {
        PhysAddr pa = m.translate(0, VirtAddr(v * kPage));
        EXPECT_EQ(pa.ppn(kPage) % AddressSpaceManager::numColors,
                  v % AddressSpaceManager::numColors)
            << "frame color must match the virtual page color";
    }
}

TEST(AddrSpaceTest, SegmentFramesColoredFromBase)
{
    AddressSpaceManager m(kPage);
    SegmentId seg = m.createSegment(16, /*color_base_vpn=*/0x40003);
    const auto &frames = m.segmentFrames(seg);
    for (std::size_t i = 0; i < frames.size(); ++i) {
        EXPECT_EQ(frames[i] % AddressSpaceManager::numColors,
                  (0x40003 + i) % AddressSpaceManager::numColors);
    }
}

TEST(AddrSpaceTest, ProcessCount)
{
    AddressSpaceManager m(kPage);
    m.translate(0, VirtAddr(0));
    m.translate(5, VirtAddr(0));
    EXPECT_EQ(m.processCount(), 2u);
}

} // namespace
} // namespace vrc
