/**
 * @file
 * Cross-checks between the two timing engines.
 *
 * The cycle engine is pure accounting layered on the functional model:
 * switching engines must leave every architectural counter bit-
 * identical, and in the zero-contention limit (one CPU, zero-cost bus
 * service) the per-reference cycle count must reproduce the Section-4
 * closed form the analytic engine uses.
 */

#include <gtest/gtest.h>

#include "core/timing.hh"
#include "sim/experiment.hh"

namespace vrc
{
namespace
{

/** Assert every architectural counter of two finished sims agrees. */
void
expectIdenticalCounters(const MpSimulator &a, const MpSimulator &b)
{
    ASSERT_EQ(a.cpuCount(), b.cpuCount());
    for (CpuId c = 0; c < a.cpuCount(); ++c) {
        const auto &sa = a.hierarchy(c).stats();
        const auto &sb = b.hierarchy(c).stats();
        ASSERT_EQ(sa.all().size(), sb.all().size()) << "cpu " << c;
        for (const auto &[key, ctr] : sa.all()) {
            EXPECT_EQ(ctr.value(), sb.value(key))
                << "cpu " << c << " counter " << key;
        }
    }
    for (const auto &[key, ctr] : a.bus().stats().all())
        EXPECT_EQ(ctr.value(), b.bus().stats().value(key))
            << "bus counter " << key;
    EXPECT_EQ(a.bus().transactions(), b.bus().transactions());
    EXPECT_EQ(a.refsProcessed(), b.refsProcessed());
}

TEST(CycleTimingTest, ArchitecturalCountersIdenticalAcrossModes)
{
    WorkloadProfile p = scaled(popsProfile(), 0.01);
    TraceBundle bundle = generateTrace(p);
    for (auto kind :
         {HierarchyKind::VirtualReal, HierarchyKind::RealRealIncl,
          HierarchyKind::RealRealNoIncl}) {
        SCOPED_TRACE(hierarchyKindName(kind));
        MachineConfig mc = makeMachineConfig(kind, 8 * 1024, 128 * 1024,
                                             p.pageSize);
        mc.timingMode = TimingMode::Analytic;
        MpSimulator analytic(mc, p);
        analytic.run(bundle.records);

        mc.timingMode = TimingMode::Cycle;
        MpSimulator cycle(mc, p);
        cycle.run(bundle.records);

        expectIdenticalCounters(analytic, cycle);
        EXPECT_DOUBLE_EQ(analytic.h1(), cycle.h1());
        EXPECT_DOUBLE_EQ(analytic.h2(), cycle.h2());
        // The counted per-reference cost is mode-independent too: the
        // engines differ only in what they *add* on top.
        EXPECT_DOUBLE_EQ(analytic.measuredAccessTime(),
                         cycle.measuredAccessTime());
    }
}

TEST(CycleTimingTest, ZeroContentionReproducesAnalyticExactly)
{
    WorkloadProfile p = scaled(popsProfile(), 0.01);
    p.numCpus = 1;
    TraceBundle bundle = generateTrace(p);
    for (auto kind :
         {HierarchyKind::VirtualReal, HierarchyKind::RealRealIncl}) {
        SCOPED_TRACE(hierarchyKindName(kind));
        MachineConfig mc = makeMachineConfig(kind, 8 * 1024, 128 * 1024,
                                             p.pageSize);
        mc.timingMode = TimingMode::Cycle;
        mc.busTiming = BusTimingParams::zero();
        MpSimulator sim(mc, p);
        sim.run(bundle.records);

        // One CPU, zero-cost service: no queueing, no occupancy; the
        // clock sums exactly the same per-reference costs as the
        // analytic accumulator, in the same order -- bit-identical.
        EXPECT_DOUBLE_EQ(sim.busWaitTime(), 0.0);
        EXPECT_DOUBLE_EQ(sim.busBusyTime(), 0.0);
        EXPECT_DOUBLE_EQ(sim.avgAccessCycles(),
                         sim.measuredAccessTime());
        // ... and the Section-4 closed form partitions those costs up
        // to double-rounding of the re-association.
        EXPECT_NEAR(sim.avgAccessCycles(),
                    avgAccessTime(sim.h1(), sim.h2(), mc.timing), 1e-9);
    }
}

TEST(CycleTimingTest, AvgBusWaitGrowsMonotonicallyWithCpuCount)
{
    double prev_wait = -1.0;
    for (std::uint32_t cpus : {2u, 4u, 8u, 16u}) {
        WorkloadProfile p = scaled(popsProfile(), 0.005);
        p.numCpus = cpus;
        TraceBundle bundle = generateTrace(p);
        MachineConfig mc =
            makeMachineConfig(HierarchyKind::VirtualReal, 8 * 1024,
                              128 * 1024, p.pageSize);
        mc.timingMode = TimingMode::Cycle;
        MpSimulator sim(mc, p);
        sim.run(bundle.records);
        EXPECT_GT(sim.avgBusWait(), prev_wait)
            << cpus << " CPUs sharing one bus must queue longer than "
            << cpus / 2;
        prev_wait = sim.avgBusWait();
    }
}

TEST(CycleTimingTest, SummariesBitIdenticalAcrossWorkerCounts)
{
    WorkloadProfile p = scaled(popsProfile(), 0.005);
    TraceBundle bundle = generateTrace(p);
    std::vector<SimJob> jobs;
    for (auto [l1, l2] : paperSizePairs()) {
        jobs.push_back({HierarchyKind::VirtualReal, l1, l2, false, 0,
                        TimingMode::Cycle});
        jobs.push_back({HierarchyKind::RealRealIncl, l1, l2, false, 0,
                        TimingMode::Analytic});
    }
    std::vector<SimSummary> serial = runSimulations(bundle, jobs, 1);
    std::vector<SimSummary> parallel = runSimulations(bundle, jobs, 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE(i);
        EXPECT_EQ(serial[i].refs, parallel[i].refs);
        EXPECT_EQ(serial[i].busTransactions,
                  parallel[i].busTransactions);
        EXPECT_DOUBLE_EQ(serial[i].h1, parallel[i].h1);
        EXPECT_DOUBLE_EQ(serial[i].h2, parallel[i].h2);
        EXPECT_DOUBLE_EQ(serial[i].avgAccessTime,
                         parallel[i].avgAccessTime);
        EXPECT_DOUBLE_EQ(serial[i].avgAccessCycles,
                         parallel[i].avgAccessCycles);
        EXPECT_DOUBLE_EQ(serial[i].busUtilization,
                         parallel[i].busUtilization);
        EXPECT_DOUBLE_EQ(serial[i].avgBusWait, parallel[i].avgBusWait);
        EXPECT_EQ(serial[i].timingMode, parallel[i].timingMode);
    }
}

TEST(CycleTimingTest, CycleLatencyIncludesBusTime)
{
    WorkloadProfile p = scaled(popsProfile(), 0.005);
    TraceBundle bundle = generateTrace(p);
    MachineConfig mc = makeMachineConfig(HierarchyKind::VirtualReal,
                                         4 * 1024, 64 * 1024,
                                         p.pageSize);
    mc.timingMode = TimingMode::Cycle;
    MpSimulator sim(mc, p);
    sim.run(bundle.records);
    // With a real service table and several CPUs, per-reference cycle
    // latency strictly exceeds the contention-free level costs.
    EXPECT_GT(sim.avgAccessCycles(), sim.measuredAccessTime());
    // The clock decomposition accounts for the difference exactly.
    double decomposed = 0.0;
    for (CpuId c = 0; c < sim.cpuCount(); ++c) {
        const CpuClock &clk = sim.clock(c);
        EXPECT_DOUBLE_EQ(clk.now(), clk.accessTicks() +
                                        clk.busWaitTicks() +
                                        clk.busServiceTicks());
        decomposed += clk.now();
    }
    EXPECT_DOUBLE_EQ(sim.avgAccessCycles(),
                     decomposed / static_cast<double>(
                                      sim.refsProcessed()));
}

TEST(CycleTimingTest, WarmupResetZeroesTimingState)
{
    WorkloadProfile p = scaled(popsProfile(), 0.005);
    TraceBundle bundle = generateTrace(p);
    MachineConfig mc = makeMachineConfig(HierarchyKind::VirtualReal,
                                         4 * 1024, 64 * 1024,
                                         p.pageSize);
    mc.timingMode = TimingMode::Cycle;
    MpSimulator sim(mc, p);
    sim.run(bundle.records);
    ASSERT_GT(sim.busBusyTime(), 0.0);
    sim.resetStats();
    EXPECT_DOUBLE_EQ(sim.busBusyTime(), 0.0);
    EXPECT_DOUBLE_EQ(sim.busWaitTime(), 0.0);
    EXPECT_DOUBLE_EQ(sim.cpuClock(0), 0.0);
    EXPECT_DOUBLE_EQ(sim.avgAccessCycles(), 0.0);
    // The engine keeps working after the reset.
    sim.run(bundle.records);
    EXPECT_GT(sim.busBusyTime(), 0.0);
}

} // namespace
} // namespace vrc
