/**
 * @file
 * Unit tests for the generic set-associative tag store.
 */

#include <gtest/gtest.h>

#include "cache/tag_store.hh"

namespace vrc
{
namespace
{

struct Payload
{
    int value = 0;
};

using Store = TagStore<Payload>;

CacheGeometry
smallGeom(std::uint32_t assoc = 2)
{
    return CacheGeometry(256, 16, assoc); // 16 blocks
}

TEST(TagStoreTest, MissOnEmpty)
{
    Store s(smallGeom(), ReplPolicy::LRU);
    EXPECT_FALSE(s.find(0x40).has_value());
    EXPECT_EQ(s.validCount(), 0u);
}

TEST(TagStoreTest, FillThenFind)
{
    Store s(smallGeom(), ReplPolicy::LRU);
    LineRef slot = s.victim(0x40);
    s.fill(slot, 0x40).meta.value = 7;
    auto found = s.find(0x40);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(s.line(*found).meta.value, 7);
    EXPECT_EQ(s.lineAddr(*found), 0x40u);
}

TEST(TagStoreTest, FindMatchesWholeBlock)
{
    Store s(smallGeom(), ReplPolicy::LRU);
    s.fill(s.victim(0x40), 0x40);
    EXPECT_TRUE(s.find(0x4f).has_value()) << "same block, any offset";
    EXPECT_FALSE(s.find(0x50).has_value()) << "next block misses";
}

TEST(TagStoreTest, VictimPrefersInvalidWay)
{
    Store s(smallGeom(2), ReplPolicy::LRU);
    LineRef first = s.victim(0x0);
    s.fill(first, 0x0);
    LineRef second = s.victim(0x100); // same set (16 blocks span 256B)
    EXPECT_EQ(second.set, first.set);
    EXPECT_NE(second.way, first.way);
}

TEST(TagStoreTest, LruEviction)
{
    Store s(smallGeom(2), ReplPolicy::LRU);
    // Set 0 holds blocks 0x0 and 0x100 (conflicting tags).
    s.fill(s.victim(0x0), 0x0);
    s.fill(s.victim(0x100), 0x100);
    s.touch(*s.find(0x0)); // 0x100 becomes LRU
    LineRef v = s.victim(0x200);
    EXPECT_EQ(s.lineAddr(v), 0x100u);
}

TEST(TagStoreTest, FifoIgnoresTouches)
{
    Store s(smallGeom(2), ReplPolicy::FIFO);
    s.fill(s.victim(0x0), 0x0);
    s.fill(s.victim(0x100), 0x100);
    s.touch(*s.find(0x0));
    s.touch(*s.find(0x0));
    LineRef v = s.victim(0x200);
    EXPECT_EQ(s.lineAddr(v), 0x0u) << "FIFO evicts oldest fill";
}

TEST(TagStoreTest, RandomVictimIsValidChoice)
{
    Store s(smallGeom(2), ReplPolicy::Random, 1234);
    s.fill(s.victim(0x0), 0x0);
    s.fill(s.victim(0x100), 0x100);
    for (int i = 0; i < 20; ++i) {
        LineRef v = s.victim(0x200);
        EXPECT_EQ(v.set, 0u);
        EXPECT_LT(v.way, 2u);
    }
}

TEST(TagStoreTest, VictimWherePredicate)
{
    Store s(smallGeom(2), ReplPolicy::LRU);
    s.fill(s.victim(0x0), 0x0).meta.value = 1;
    s.fill(s.victim(0x100), 0x100).meta.value = 2;
    LineRef v = s.victimWhere(
        0, [](const Store::Line &l) { return l.meta.value == 2; });
    EXPECT_EQ(s.line(v).meta.value, 2);
}

TEST(TagStoreTest, VictimWhereFallsBackWhenNoneEligible)
{
    Store s(smallGeom(2), ReplPolicy::LRU);
    s.fill(s.victim(0x0), 0x0);
    s.fill(s.victim(0x100), 0x100);
    LineRef v =
        s.victimWhere(0, [](const Store::Line &) { return false; });
    EXPECT_TRUE(s.line(v).valid) << "fallback picks some valid line";
}

TEST(TagStoreTest, InvalidateSingle)
{
    Store s(smallGeom(), ReplPolicy::LRU);
    LineRef slot = s.victim(0x40);
    s.fill(slot, 0x40);
    s.invalidate(slot);
    EXPECT_FALSE(s.find(0x40).has_value());
}

TEST(TagStoreTest, InvalidateAllResetsPayloads)
{
    Store s(smallGeom(), ReplPolicy::LRU);
    LineRef slot = s.victim(0x40);
    s.fill(slot, 0x40).meta.value = 9;
    s.invalidateAll();
    EXPECT_EQ(s.validCount(), 0u);
    EXPECT_EQ(s.line(slot).meta.value, 0);
}

TEST(TagStoreTest, FillResetsPayload)
{
    Store s(smallGeom(), ReplPolicy::LRU);
    LineRef slot = s.victim(0x40);
    s.fill(slot, 0x40).meta.value = 9;
    s.fill(slot, 0x140);
    EXPECT_EQ(s.line(slot).meta.value, 0);
}

TEST(TagStoreTest, ForEachWayVisitsAssocLines)
{
    Store s(smallGeom(2), ReplPolicy::LRU);
    int visits = 0;
    s.forEachWay(3, [&](LineRef ref, Store::Line &) {
        EXPECT_EQ(ref.set, 3u);
        ++visits;
    });
    EXPECT_EQ(visits, 2);
}

TEST(TagStoreTest, ForEachLineVisitsAll)
{
    Store s(smallGeom(2), ReplPolicy::LRU);
    int visits = 0;
    s.forEachLine([&](LineRef, Store::Line &) { ++visits; });
    EXPECT_EQ(visits, 16);
}

TEST(TagStoreTest, ConflictingTagsCoexistAcrossWays)
{
    Store s(smallGeom(2), ReplPolicy::LRU);
    s.fill(s.victim(0x0), 0x0);
    s.fill(s.victim(0x100), 0x100);
    EXPECT_TRUE(s.find(0x0).has_value());
    EXPECT_TRUE(s.find(0x100).has_value());
}

} // namespace
} // namespace vrc
