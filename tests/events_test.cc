/**
 * @file
 * Tests for the event-tracing facility: exact operation sequences for
 * scripted scenarios, and consistency between events and counters.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "coherence/bus.hh"
#include "core/vr_hierarchy.hh"
#include "sim/experiment.hh"
#include "vm/addr_space.hh"

namespace vrc
{
namespace
{

constexpr std::uint32_t kPage = 4096;

class EventsTest : public ::testing::Test
{
  protected:
    EventsTest() : spaces(kPage)
    {
        h = std::make_unique<VrHierarchy>(params, spaces, bus, true);
        h->setObserver(&rec);
        spaces.pageTable(0).map(0x10, 5);
        spaces.pageTable(0).map(0x31, 5); // synonym (different V set)
        spaces.pageTable(0).map(0x30, 5); // synonym (same V set, dm)
    }

    AccessOutcome
    read(std::uint32_t va)
    {
        return h->access({RefType::Read, VirtAddr(va), 0});
    }

    AccessOutcome
    write(std::uint32_t va)
    {
        return h->access({RefType::Write, VirtAddr(va), 0});
    }

    HierarchyParams params{{8 * 1024, 16, 1, ReplPolicy::LRU},
                           {64 * 1024, 16, 1, ReplPolicy::LRU},
                           kPage};
    AddressSpaceManager spaces;
    SharedBus bus;
    std::unique_ptr<VrHierarchy> h;
    RecordingObserver rec;
};

TEST_F(EventsTest, MissThenHitSequence)
{
    read(0x10000);
    read(0x10000);
    ASSERT_EQ(rec.events().size(), 2u);
    EXPECT_EQ(rec.events()[0].kind, EventKind::Miss);
    EXPECT_EQ(rec.events()[1].kind, EventKind::L1Hit);
    EXPECT_EQ(rec.events()[0].vaddr, 0x10000u);
    EXPECT_EQ(rec.events()[0].paddr, 5u * kPage);
    EXPECT_EQ(rec.events()[1].refIndex, 2u);
}

TEST_F(EventsTest, SynonymMoveEmitted)
{
    read(0x10100);
    read(0x31100);
    EXPECT_EQ(rec.count(EventKind::SynonymMove), 1u);
    EXPECT_EQ(rec.events().back().kind, EventKind::SynonymMove);
    EXPECT_EQ(rec.events().back().vaddr, 0x31100u);
}

TEST_F(EventsTest, WritebackCancelSequence)
{
    write(0x10100); // dirty
    read(0x30100);  // same-set synonym: park then cancel
    // Expect: Miss, WritebackParked, WritebackCancel in order.
    std::vector<EventKind> kinds;
    for (const auto &e : rec.events())
        kinds.push_back(e.kind);
    auto find = [&](EventKind k) {
        return std::find(kinds.begin(), kinds.end(), k);
    };
    auto parked = find(EventKind::WritebackParked);
    auto cancel = find(EventKind::WritebackCancel);
    ASSERT_NE(parked, kinds.end());
    ASSERT_NE(cancel, kinds.end());
    EXPECT_LT(parked - kinds.begin(), cancel - kinds.begin());
    EXPECT_EQ(rec.count(EventKind::WritebackComplete), 0u);
}

TEST_F(EventsTest, ContextSwitchAndSwappedWriteback)
{
    write(0x10000);
    h->contextSwitch(1);
    spaces.pageTable(1).map(0x10, 9);
    read(0x10000); // new frame: replaces the swapped dirty block
    EXPECT_EQ(rec.count(EventKind::ContextSwitch), 1u);
    EXPECT_EQ(rec.count(EventKind::SwappedWriteback), 1u);
    EXPECT_EQ(rec.count(EventKind::WritebackParked), 1u);
}

TEST_F(EventsTest, EventsMatchCounters)
{
    WorkloadProfile p = scaled(popsProfile(), 0.005);
    TraceBundle bundle = generateTrace(p);
    MachineConfig mc = makeMachineConfig(HierarchyKind::VirtualReal,
                                         8 * 1024, 64 * 1024,
                                         p.pageSize);
    MpSimulator sim(mc, p);
    RecordingObserver all;
    for (CpuId c = 0; c < sim.cpuCount(); ++c)
        sim.hierarchy(c).setObserver(&all);
    sim.run(bundle.records);

    EXPECT_EQ(all.count(EventKind::L1Hit),
              sim.totalCounter("l1_hits"));
    EXPECT_EQ(all.count(EventKind::Miss), sim.totalCounter("misses"));
    EXPECT_EQ(all.count(EventKind::L2Hit),
              sim.totalCounter("l2_hits"));
    EXPECT_EQ(all.count(EventKind::SynonymMove),
              sim.totalCounter("synonym_moves"));
    EXPECT_EQ(all.count(EventKind::WritebackParked),
              sim.totalCounter("writebacks"));
    EXPECT_EQ(all.count(EventKind::InclusionInvalidation),
              sim.totalCounter("inclusion_invalidations"));
}

TEST_F(EventsTest, DetachStopsEvents)
{
    read(0x10000);
    std::size_t n = rec.events().size();
    h->setObserver(nullptr);
    read(0x10000);
    EXPECT_EQ(rec.events().size(), n);
}

TEST_F(EventsTest, CallbackObserverForwards)
{
    int calls = 0;
    CallbackObserver cb([&](const HierarchyEvent &) { ++calls; });
    h->setObserver(&cb);
    read(0x10000);
    EXPECT_GT(calls, 0);
}

TEST_F(EventsTest, EventKindNamesComplete)
{
    for (int k = 0; k <= static_cast<int>(EventKind::ContextSwitch);
         ++k) {
        EXPECT_STRNE(eventKindName(static_cast<EventKind>(k)), "?");
    }
}

} // namespace
} // namespace vrc
