/**
 * @file
 * Unit tests for the pluggable synonym directory: the HierarchyKind
 * name/argument round trip (every kind must print and parse), the
 * reverse-lookup-table organization's link/lookup/unlink behavior,
 * LRU conflict eviction through the BackInvalidate callback, and the
 * architected-storage accounting both organizations report.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "coherence/bus.hh"
#include "core/synonym_dir.hh"
#include "core/vr_hierarchy.hh"
#include "vm/addr_space.hh"

namespace vrc
{
namespace
{

TEST(HierarchyKindTest, NameAndArgRoundTripForEveryKind)
{
    std::set<std::string> names, args;
    for (HierarchyKind kind : kAllHierarchyKinds) {
        EXPECT_STRNE(hierarchyKindName(kind), "?");
        EXPECT_STRNE(hierarchyKindDescription(kind), "?");
        auto parsed = hierarchyKindFromArg(hierarchyKindArg(kind));
        ASSERT_TRUE(parsed.has_value()) << hierarchyKindArg(kind);
        EXPECT_EQ(*parsed, kind);
        names.insert(hierarchyKindName(kind));
        args.insert(hierarchyKindArg(kind));
    }
    // Names and CLI arguments are injective: no two kinds collide.
    EXPECT_EQ(names.size(), kHierarchyKindCount);
    EXPECT_EQ(args.size(), kHierarchyKindCount);
}

TEST(HierarchyKindTest, UnknownArgumentsAreRejected)
{
    EXPECT_FALSE(hierarchyKindFromArg("").has_value());
    EXPECT_FALSE(hierarchyKindFromArg("bogus").has_value());
    EXPECT_FALSE(hierarchyKindFromArg("vr-rl").has_value());
    EXPECT_FALSE(hierarchyKindFromArg("vr-rltx").has_value());
}

/** A bounded RLT over a small geometry (4 sets x 2 ways). */
class RltDirectoryTest : public ::testing::Test
{
  protected:
    RltDirectoryTest()
        : r({64 * 1024, 16, 1, ReplPolicy::LRU}, 16)
    {
        params.rltEntries = 8;
        params.rltAssoc = 2;
        dir = makeSynonymDirectory(SynonymOrg::ReverseLookup, params,
                                   l1, 1, r);
    }

    /** A physical block address whose RLT key lands in @p set. */
    static PhysAddr
    blockInSet(std::uint32_t set, std::uint32_t n)
    {
        return PhysAddr((set + n * 4) * 16); // 4 sets, 16-byte blocks
    }

    /** A link callback that performs the hierarchy's unlink duty. */
    SynonymDirectory::BackInvalidate
    unlinkAndRecord()
    {
        return [this](PhysAddr pa, const SynonymChild &child) {
            evicted.emplace_back(pa, child);
            dir->unlink(pa);
        };
    }

    HierarchyParams params{{4 * 1024, 16, 1, ReplPolicy::LRU},
                           {64 * 1024, 16, 1, ReplPolicy::LRU},
                           4096};
    std::array<std::unique_ptr<VCache>, 2> l1;
    RCache r;
    std::unique_ptr<SynonymDirectory> dir;
    std::vector<std::pair<PhysAddr, SynonymChild>> evicted;
};

TEST_F(RltDirectoryTest, LinkLookupUnlink)
{
    EXPECT_EQ(dir->org(), SynonymOrg::ReverseLookup);
    PhysAddr pa = blockInSet(1, 0);
    EXPECT_FALSE(dir->lookup(pa).has_value());

    dir->link(pa, 0, 0x4000, unlinkAndRecord());
    auto child = dir->lookup(pa);
    ASSERT_TRUE(child.has_value());
    EXPECT_EQ(child->l1Index, 0u);
    EXPECT_EQ(child->childAddrBlock, 0x4000u);

    // Re-linking the same block retargets in place (synonym move).
    dir->link(pa, 1, 0x8000, unlinkAndRecord());
    child = dir->lookup(pa);
    ASSERT_TRUE(child.has_value());
    EXPECT_EQ(child->l1Index, 1u);
    EXPECT_EQ(child->childAddrBlock, 0x8000u);
    EXPECT_TRUE(evicted.empty()) << "no conflict may be forced yet";

    dir->unlink(pa);
    EXPECT_FALSE(dir->lookup(pa).has_value());
    dir->checkInvariants();
}

TEST_F(RltDirectoryTest, ConflictBackInvalidatesTheLruVictim)
{
    PhysAddr a = blockInSet(2, 0), b = blockInSet(2, 1);
    dir->link(a, 0, 0x1000, unlinkAndRecord());
    dir->link(b, 0, 0x2000, unlinkAndRecord());

    // Touch `a` again so `b` becomes the LRU link in the full set.
    dir->link(a, 0, 0x1000, unlinkAndRecord());

    PhysAddr c = blockInSet(2, 2);
    dir->link(c, 0, 0x3000, unlinkAndRecord());

    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0].first.value(), b.value());
    EXPECT_EQ(evicted[0].second.childAddrBlock, 0x2000u);
    EXPECT_FALSE(dir->lookup(b).has_value());
    EXPECT_TRUE(dir->lookup(a).has_value());
    EXPECT_TRUE(dir->lookup(c).has_value());
    dir->checkInvariants();
}

TEST_F(RltDirectoryTest, ForEachLinkEnumeratesEveryLiveLink)
{
    dir->link(blockInSet(0, 0), 0, 0x1000, unlinkAndRecord());
    dir->link(blockInSet(1, 0), 0, 0x2000, unlinkAndRecord());
    dir->link(blockInSet(3, 1), 1, 0x3000, unlinkAndRecord());
    dir->unlink(blockInSet(1, 0));

    std::set<std::uint32_t> seen;
    dir->forEachLink([&](PhysAddr pa, const SynonymChild &) {
        seen.insert(pa.value());
    });
    EXPECT_EQ(seen.size(), 2u);
    EXPECT_TRUE(seen.count(blockInSet(0, 0).value()));
    EXPECT_TRUE(seen.count(blockInSet(3, 1).value()));
}

TEST_F(RltDirectoryTest, UnlinkOfUnknownBlockPanics)
{
    EXPECT_DEATH(dir->unlink(PhysAddr(0xfff0)), "never linked");
}

TEST_F(RltDirectoryTest, StorageBitsCountTheBoundedTable)
{
    // 16-byte blocks in a 32-bit space: 28 address bits; 4 sets leave
    // a 26-bit tag. Per entry: valid + tag + child block + select.
    EXPECT_EQ(dir->storageBits(), 8u * (1 + 26 + 28 + 1));
}

/**
 * End-to-end: hierarchies built with each organization expose their
 * directory, and the bounded table's architected storage is a small
 * fixed cost while the pointer organization's scales with the arrays.
 */
TEST(SynonymDirectoryOrgTest, HierarchiesExposeTheirDirectory)
{
    HierarchyParams params{{8 * 1024, 16, 1, ReplPolicy::LRU},
                           {64 * 1024, 16, 1, ReplPolicy::LRU},
                           4096};
    AddressSpaceManager spaces(4096);
    SharedBus bus;
    VrHierarchy pointer(params, spaces, bus, true,
                        SynonymOrg::Pointer);
    VrHierarchy rlt(params, spaces, bus, true,
                    SynonymOrg::ReverseLookup);

    EXPECT_EQ(pointer.synonymDirectory().org(), SynonymOrg::Pointer);
    EXPECT_EQ(rlt.synonymDirectory().org(), SynonymOrg::ReverseLookup);
    EXPECT_GT(pointer.synonymDirectory().storageBits(), 0u);
    EXPECT_GT(rlt.synonymDirectory().storageBits(), 0u);

    // Same trivial workload behaves identically under both directories
    // while the table has headroom.
    spaces.pageTable(0).map(0x10, 5);
    for (auto *h : {&pointer, &rlt}) {
        EXPECT_EQ(h->access({RefType::Read, VirtAddr(0x10000), 0}),
                  AccessOutcome::Miss);
        EXPECT_EQ(h->access({RefType::Read, VirtAddr(0x10000), 0}),
                  AccessOutcome::L1Hit);
        h->checkInvariants();
    }
}

} // namespace
} // namespace vrc
