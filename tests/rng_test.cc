/**
 * @file
 * Unit tests for the deterministic RNG wrapper.
 */

#include <gtest/gtest.h>

#include <vector>

#include "base/rng.hh"

namespace vrc
{
namespace
{

TEST(RngTest, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.below(1000), b.below(1000));
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.below(1u << 30) == b.below(1u << 30) ? 1 : 0;
    EXPECT_LT(same, 5);
}

TEST(RngTest, BelowRespectsBound)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(RngTest, BelowOneAlwaysZero)
{
    Rng r(7);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(r.below(1), 0u);
}

TEST(RngTest, RangeInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = r.range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 1000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 1000.0, 0.5, 0.05);
}

TEST(RngTest, ChanceExtremes)
{
    Rng r(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(RngTest, ChanceRoughlyCalibrated)
{
    Rng r(17);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, WeightedRespectsWeights)
{
    Rng r(19);
    std::vector<double> w{0.0, 10.0, 0.0};
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.weighted(w), 1u);
}

TEST(RngTest, WeightedProportions)
{
    Rng r(23);
    std::vector<double> w{1.0, 3.0};
    int c1 = 0;
    for (int i = 0; i < 10000; ++i)
        c1 += r.weighted(w) == 1 ? 1 : 0;
    EXPECT_NEAR(c1 / 10000.0, 0.75, 0.03);
}

TEST(RngTest, GeometricBounded)
{
    Rng r(29);
    for (int i = 0; i < 1000; ++i) {
        auto v = r.geometric(0.5, 8);
        EXPECT_GE(v, 1u);
        EXPECT_LE(v, 8u);
    }
}

TEST(RngTest, ForkIndependence)
{
    Rng parent(31);
    Rng c1 = parent.fork();
    Rng c2 = parent.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += c1.below(1u << 30) == c2.below(1u << 30) ? 1 : 0;
    EXPECT_LT(same, 5);
}

TEST(RngTest, ForkDeterministic)
{
    Rng p1(37), p2(37);
    Rng c1 = p1.fork();
    Rng c2 = p2.fork();
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(c1.below(1000), c2.below(1000));
}

} // namespace
} // namespace vrc
