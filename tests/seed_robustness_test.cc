/**
 * @file
 * Seed-robustness tests: the paper's qualitative conclusions must hold
 * for *any* seed of the synthetic workloads, not just the shipped one.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

namespace vrc
{
namespace
{

class SeedRobustnessTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SeedRobustnessTest, RareSwitchTracesKeepVrRrParity)
{
    WorkloadProfile p = scaled(popsProfile(), 0.05);
    p.seed = GetParam();
    TraceBundle b = generateTrace(p);
    SimSummary vr = runSimulation(b, HierarchyKind::VirtualReal,
                                  8 * 1024, 128 * 1024);
    SimSummary rr = runSimulation(b, HierarchyKind::RealRealIncl,
                                  8 * 1024, 128 * 1024);
    EXPECT_NEAR(vr.h1, rr.h1, 0.01)
        << "V-R and R-R must stay nearly identical without switches";
}

TEST_P(SeedRobustnessTest, SwitchHeavyTracesFavorRr)
{
    WorkloadProfile p = scaled(abaqusProfile(), 0.25);
    p.seed = GetParam();
    TraceBundle b = generateTrace(p);
    SimSummary vr = runSimulation(b, HierarchyKind::VirtualReal,
                                  16 * 1024, 256 * 1024);
    SimSummary rr = runSimulation(b, HierarchyKind::RealRealIncl,
                                  16 * 1024, 256 * 1024);
    EXPECT_GT(rr.h1, vr.h1)
        << "frequent flushes must cost the virtual cache";
}

TEST_P(SeedRobustnessTest, ShieldingAlwaysWins)
{
    WorkloadProfile p = scaled(popsProfile(), 0.03);
    p.seed = GetParam();
    TraceBundle b = generateTrace(p);
    SimSummary vr = runSimulation(b, HierarchyKind::VirtualReal,
                                  8 * 1024, 128 * 1024);
    SimSummary ni = runSimulation(b, HierarchyKind::RealRealNoIncl,
                                  8 * 1024, 128 * 1024);
    std::uint64_t vr_msgs = 0, ni_msgs = 0;
    for (auto v : vr.l1MsgsPerCpu)
        vr_msgs += v;
    for (auto v : ni.l1MsgsPerCpu)
        ni_msgs += v;
    EXPECT_GT(ni_msgs, 2 * vr_msgs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedRobustnessTest,
                         ::testing::Values(0xfeedULL, 0xc0ffeeULL,
                                           12345ULL),
                         [](const auto &info) {
                             return "seed" +
                                 std::to_string(info.index);
                         });

} // namespace
} // namespace vrc
