/**
 * @file
 * Tests for the JSON stats export.
 */

#include <gtest/gtest.h>

#include "sim/json_stats.hh"

namespace vrc
{
namespace
{

TEST(JsonStatsTest, SummarySerializesKeyFields)
{
    SimSummary s;
    s.kind = HierarchyKind::VirtualReal;
    s.l1Size = 16384;
    s.l2Size = 262144;
    s.h1 = 0.95;
    s.h2 = 0.5;
    s.refs = 1000;
    s.l1MsgsPerCpu = {10, 20};
    std::string j = toJson(s);
    EXPECT_NE(j.find("\"kind\":\"VR\""), std::string::npos);
    EXPECT_NE(j.find("\"l1_size\":16384"), std::string::npos);
    EXPECT_NE(j.find("\"h1\":0.95"), std::string::npos);
    EXPECT_NE(j.find("\"l1_msgs_per_cpu\":[10,20]"), std::string::npos);
    EXPECT_EQ(j.front(), '{');
    EXPECT_EQ(j.back(), '}');
}

TEST(JsonStatsTest, SimulatorSerializesPerCpuCounters)
{
    WorkloadProfile p = scaled(popsProfile(), 0.003);
    TraceBundle bundle = generateTrace(p);
    MachineConfig mc = makeMachineConfig(HierarchyKind::VirtualReal,
                                         8 * 1024, 64 * 1024,
                                         p.pageSize);
    MpSimulator sim(mc, p);
    sim.run(bundle.records);
    std::string j = toJson(sim);
    EXPECT_NE(j.find("\"cpus\":4"), std::string::npos);
    EXPECT_NE(j.find("\"per_cpu\":["), std::string::npos);
    EXPECT_NE(j.find("\"l1_hits\":"), std::string::npos);
    EXPECT_NE(j.find("\"bus\":{"), std::string::npos);
    // Balanced braces/brackets (cheap well-formedness check).
    int depth = 0;
    bool in_string = false;
    for (char c : j) {
        if (c == '"')
            in_string = !in_string;
        if (in_string)
            continue;
        if (c == '{' || c == '[')
            ++depth;
        if (c == '}' || c == ']')
            --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(JsonStatsTest, SummaryEmptyMsgsArray)
{
    SimSummary s;
    std::string j = toJson(s);
    EXPECT_NE(j.find("\"l1_msgs_per_cpu\":[]"), std::string::npos);
}

} // namespace
} // namespace vrc
