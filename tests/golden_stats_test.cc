/**
 * @file
 * Golden-stats regression corpus for the paper's tables and figures.
 *
 * Every artifact (Tables 1-13, Figures 4-6) is reduced to a list of
 * text lines carrying its architectural numbers: simulation cells are
 * encoded with encodeSummaryLine() (hexfloat doubles, so the encoding
 * is exact), trace-level tables as integer histogram/counter lines,
 * and the figure grids as hexfloat two-term access times. The lines
 * are diffed against checked-in golden files, so any silent counter
 * drift -- a replacement decision, a coherence message, a hit ratio
 * off by one reference -- fails tier-1 immediately instead of only
 * surfacing in the (tolerance-based) paper-number tests.
 *
 * The corpus runs at a reduced trace scale (kGoldenScale) to stay
 * fast; scale changes the numbers, not their determinism. To
 * regenerate after an *intentional* behaviour change:
 *
 *     VRC_UPDATE_GOLDEN=1 ./golden_stats_test
 *
 * then commit the rewritten files under tests/golden/ and explain the
 * drift in the commit message. The golden files are the canonical
 * reproduction artifact (see EXPERIMENTS.md).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/timing.hh"
#include "sim/campaign.hh"
#include "sim/experiment.hh"
#include "trace/trace_stats.hh"

namespace vrc
{
namespace
{

/** Fraction of the paper's trace lengths the corpus runs at. */
constexpr double kGoldenScale = 0.02;

#ifndef VRC_GOLDEN_DIR
#error "VRC_GOLDEN_DIR must name the checked-in golden directory"
#endif

const TraceBundle &
goldenTrace(const std::string &name)
{
    static std::map<std::string, TraceBundle> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        WorkloadProfile p = scaled(profileByName(name), kGoldenScale);
        it = cache.emplace(name, generateTrace(p)).first;
    }
    return it->second;
}

std::string
hex(double v)
{
    std::ostringstream os;
    os << std::hexfloat << v;
    return os.str();
}

/** Run @p jobs against @p bundle and encode one line per cell. */
std::vector<std::string>
summaryLines(const TraceBundle &bundle, const std::vector<SimJob> &jobs)
{
    std::vector<std::string> lines;
    std::vector<SimSummary> res = runSimulations(bundle, jobs);
    for (std::size_t i = 0; i < res.size(); ++i)
        lines.push_back(encodeSummaryLine(i, res[i]));
    return lines;
}

/** Histogram in "bucket count" lines plus the overflow and totals. */
void
histogramLines(const Histogram &h, const std::string &what,
               std::vector<std::string> &out)
{
    std::ostringstream os;
    for (std::uint64_t b = 1; b < h.maxBucket(); ++b)
        out.push_back(what + " bucket " + std::to_string(b) + " " +
                      std::to_string(h.count(b)));
    out.push_back(what + " overflow " +
                  std::to_string(h.overflowCount()));
    out.push_back(what + " samples " + std::to_string(h.samples()) +
                  " sum " + std::to_string(h.sum()));
}

/**
 * Diff @p lines against tests/golden/@p name .golden, or rewrite the
 * file when VRC_UPDATE_GOLDEN is set in the environment.
 */
void
compareGolden(const std::string &name,
              const std::vector<std::string> &lines)
{
    std::string path = std::string(VRC_GOLDEN_DIR) + "/" + name +
                       ".golden";
    const char *update = std::getenv("VRC_UPDATE_GOLDEN");
    if (update && update[0]) {
        std::ofstream out(path, std::ios::trunc);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        for (const std::string &l : lines)
            out << l << "\n";
        GTEST_SKIP() << "regenerated " << path;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << "missing golden file " << path
        << " (run with VRC_UPDATE_GOLDEN=1 to create it)";
    std::vector<std::string> want;
    std::string line;
    while (std::getline(in, line))
        want.push_back(line);

    ASSERT_EQ(lines.size(), want.size())
        << "golden " << name << " line count drifted";
    for (std::size_t i = 0; i < lines.size(); ++i) {
        EXPECT_EQ(lines[i], want[i])
            << "golden " << name << " line " << i + 1 << " drifted";
    }
}

/** The shared hit-ratio artifact behind Tables 6 and 7. */
std::vector<std::string>
hitRatioLines(const std::vector<std::pair<std::uint32_t, std::uint32_t>>
                  &pairs)
{
    std::vector<std::string> lines;
    for (const char *name : {"thor", "pops", "abaqus"}) {
        const TraceBundle &bundle = goldenTrace(name);
        std::vector<SimJob> jobs;
        for (auto [l1, l2] : pairs)
            jobs.push_back({HierarchyKind::VirtualReal, l1, l2});
        for (auto [l1, l2] : pairs)
            jobs.push_back({HierarchyKind::RealRealIncl, l1, l2});
        lines.push_back(std::string("trace ") + name);
        for (const std::string &l : summaryLines(bundle, jobs))
            lines.push_back(l);
    }
    return lines;
}

/** Tables 8-10: split vs unified V-caches on one trace. */
std::vector<std::string>
splitTableLines(const std::string &trace)
{
    const TraceBundle &bundle = goldenTrace(trace);
    std::vector<SimJob> jobs;
    for (auto [l1, l2] : paperSizePairs())
        jobs.push_back({HierarchyKind::VirtualReal, l1, l2, true});
    for (auto [l1, l2] : paperSizePairs())
        jobs.push_back({HierarchyKind::VirtualReal, l1, l2, false});
    return summaryLines(bundle, jobs);
}

/** Tables 11-13: coherence messages per CPU on one trace. */
std::vector<std::string>
coherenceTableLines(const std::string &trace)
{
    const TraceBundle &bundle = goldenTrace(trace);
    std::vector<SimJob> jobs;
    for (auto [l1, l2] : paperSizePairs()) {
        for (auto kind :
             {HierarchyKind::VirtualReal, HierarchyKind::RealRealIncl,
              HierarchyKind::RealRealNoIncl}) {
            jobs.push_back({kind, l1, l2});
        }
    }
    return summaryLines(bundle, jobs);
}

/**
 * Figures 4-6: the measured V-R / R-R summaries per size pair plus the
 * analytic two-term access-time grid derived from them (the figure
 * proper, 0..10% translation slowdown).
 */
std::vector<std::string>
figureLines(const std::string &trace)
{
    const TraceBundle &bundle = goldenTrace(trace);
    std::vector<SimJob> jobs;
    for (auto [l1, l2] : paperSizePairs()) {
        jobs.push_back({HierarchyKind::VirtualReal, l1, l2});
        jobs.push_back({HierarchyKind::RealRealIncl, l1, l2});
    }
    std::vector<SimSummary> res = runSimulations(bundle, jobs);

    std::vector<std::string> lines;
    for (std::size_t i = 0; i < res.size(); ++i)
        lines.push_back(encodeSummaryLine(i, res[i]));

    TimingParams tp; // t1 = 1, t2 = 4, as the figures assume
    std::size_t i = 0;
    for (auto [l1, l2] : paperSizePairs()) {
        const SimSummary &vr = res[i++];
        const SimSummary &rr = res[i++];
        for (int pct = 0; pct <= 10; ++pct) {
            TimingParams slowed = tp;
            slowed.l1SlowdownPct = pct;
            lines.push_back(
                "grid " + std::to_string(l1) + " " +
                std::to_string(l2) + " " + std::to_string(pct) + " " +
                hex(avgAccessTimeTwoTerm(vr.h1, vr.h2, tp)) + " " +
                hex(avgAccessTimeTwoTerm(rr.h1, rr.h2, slowed)));
        }
    }
    return lines;
}

TEST(GoldenStats, Table1WriteBursts)
{
    const GenStats &gs = goldenTrace("pops").stats;
    std::vector<std::string> lines;
    histogramLines(gs.callWrites, "call_writes", lines);
    lines.push_back("total_calls " + std::to_string(gs.totalCalls));
    lines.push_back("call_write_count " +
                    std::to_string(gs.callWriteCount));
    lines.push_back("total_writes " + std::to_string(gs.totalWrites));
    compareGolden("table1", lines);
}

TEST(GoldenStats, Table2InterWriteIntervals)
{
    const TraceBundle &bundle = goldenTrace("pops");
    // The paper's snapshot window, scaled with the trace.
    const std::uint64_t snapshot =
        static_cast<std::uint64_t>(411'237 * kGoldenScale);
    Histogram intervals(10);
    std::uint64_t cpu0_refs = 0, last_write = 0;
    bool saw_write = false;
    for (const TraceRecord &r : bundle.records) {
        if (r.cpu != 0 || !r.isMemRef())
            continue;
        ++cpu0_refs;
        if (cpu0_refs > snapshot)
            break;
        if (r.type != RefType::Write)
            continue;
        if (saw_write)
            intervals.record(cpu0_refs - last_write);
        last_write = cpu0_refs;
        saw_write = true;
    }
    std::vector<std::string> lines;
    histogramLines(intervals, "interwrite", lines);
    compareGolden("table2", lines);
}

TEST(GoldenStats, Table3SwappedWriteback)
{
    const TraceBundle &bundle = goldenTrace("pops");
    const std::uint64_t snapshot =
        static_cast<std::uint64_t>(411'237 * kGoldenScale);
    MachineConfig mc = makeMachineConfig(HierarchyKind::VirtualReal,
                                         16 * 1024, 256 * 1024,
                                         bundle.profile.pageSize);
    MpSimulator sim(mc, bundle.profile);
    std::uint64_t cpu0_refs = 0;
    for (const TraceRecord &r : bundle.records) {
        if (r.cpu == 0 && r.isMemRef()) {
            if (++cpu0_refs > snapshot)
                break;
        }
        sim.step(r);
    }
    std::vector<std::string> lines;
    histogramLines(sim.hierarchy(0).writeBackIntervals(), "wb_interval",
                   lines);
    const auto &stats = sim.hierarchy(0).stats();
    lines.push_back("writebacks " +
                    std::to_string(stats.value("writebacks")));
    lines.push_back("swapped_writebacks " +
                    std::to_string(stats.value("swapped_writebacks")));
    lines.push_back("wb_stalls " +
                    std::to_string(stats.value("wb_stalls")));
    compareGolden("table3", lines);
}

TEST(GoldenStats, Table5TraceCharacteristics)
{
    std::vector<std::string> lines;
    for (const char *name : {"thor", "pops", "abaqus"}) {
        auto c = characterize(goldenTrace(name).records);
        std::ostringstream os;
        os << name << " cpus " << c.numCpus << " refs " << c.totalRefs
           << " instr " << c.instrCount << " reads " << c.dataReads
           << " writes " << c.dataWrites << " switches "
           << c.contextSwitches << " processes " << c.processCount;
        lines.push_back(os.str());
    }
    compareGolden("table5", lines);
}

TEST(GoldenStats, Table6HitRatios)
{
    compareGolden("table6", hitRatioLines(paperSizePairs()));
}

TEST(GoldenStats, Table7SmallCaches)
{
    compareGolden("table7", hitRatioLines(smallSizePairs()));
}

TEST(GoldenStats, Table8SplitThor)
{
    compareGolden("table8", splitTableLines("thor"));
}

TEST(GoldenStats, Table9SplitPops)
{
    compareGolden("table9", splitTableLines("pops"));
}

TEST(GoldenStats, Table10SplitAbaqus)
{
    compareGolden("table10", splitTableLines("abaqus"));
}

TEST(GoldenStats, Table11CoherencePops)
{
    compareGolden("table11", coherenceTableLines("pops"));
}

TEST(GoldenStats, Table12CoherenceThor)
{
    compareGolden("table12", coherenceTableLines("thor"));
}

TEST(GoldenStats, Table13CoherenceAbaqus)
{
    compareGolden("table13", coherenceTableLines("abaqus"));
}

TEST(GoldenStats, Figure4Thor)
{
    compareGolden("fig4", figureLines("thor"));
}

TEST(GoldenStats, Figure5Pops)
{
    compareGolden("fig5", figureLines("pops"));
}

TEST(GoldenStats, Figure6Abaqus)
{
    compareGolden("fig6", figureLines("abaqus"));
}

/**
 * Synonym-directory drift net: the paper's pointer organization, the
 * bounded reverse-lookup table and the R-R baseline on the same trace
 * grid. A separate golden file so regenerating it never perturbs the
 * pre-existing corpus.
 */
TEST(GoldenStats, SynonymOrgs)
{
    std::vector<std::string> lines;
    for (const char *name : {"thor", "pops", "abaqus"}) {
        const TraceBundle &bundle = goldenTrace(name);
        std::vector<SimJob> jobs;
        for (auto [l1, l2] : paperSizePairs()) {
            jobs.push_back({HierarchyKind::VirtualReal, l1, l2});
            jobs.push_back({HierarchyKind::VirtualRealRlt, l1, l2});
            jobs.push_back({HierarchyKind::RealRealIncl, l1, l2});
        }
        lines.push_back(std::string("trace ") + name);
        for (const std::string &l : summaryLines(bundle, jobs))
            lines.push_back(l);
    }
    compareGolden("synonym_orgs", lines);
}

/**
 * Cycle-engine drift net: the three organizations at the paper's
 * middle size pair under the cycle-approximate timing engine, so bus
 * queueing / utilization / per-reference latency are pinned in
 * hexfloat alongside the analytic corpus.
 */
TEST(GoldenStats, CycleEngineSummaries)
{
    const TraceBundle &bundle = goldenTrace("pops");
    std::vector<SimJob> jobs;
    for (auto kind :
         {HierarchyKind::VirtualReal, HierarchyKind::RealRealIncl,
          HierarchyKind::RealRealNoIncl}) {
        jobs.push_back({kind, 8 * 1024, 128 * 1024, false, 0,
                        TimingMode::Cycle});
    }
    compareGolden("cycle_pops", summaryLines(bundle, jobs));
}

} // namespace
} // namespace vrc
