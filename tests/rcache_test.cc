/**
 * @file
 * Unit tests for the R-cache: subentries and the relaxed inclusion
 * replacement rule. The architected v-pointer bits are owned by the
 * hierarchy's synonym directory (tests/synonym_dir_test.cc).
 */

#include <gtest/gtest.h>

#include "core/rcache.hh"

namespace vrc
{
namespace
{

constexpr std::uint32_t kL1Block = 16;

TEST(RCacheTest, LookupMissOnEmpty)
{
    RCache rc({64 * 1024, 16, 1}, kL1Block);
    EXPECT_FALSE(rc.lookup(PhysAddr(0x100)).has_value());
}

TEST(RCacheTest, InstallCreatesSubentries)
{
    RCache rc({64 * 1024, 64, 1}, kL1Block);
    EXPECT_EQ(rc.subCount(), 4u);
    auto [slot, forced] = rc.victimFor(PhysAddr(0x1000));
    EXPECT_FALSE(forced);
    auto line = rc.install(slot, PhysAddr(0x1000),
                            CoherenceState::Private);
    EXPECT_EQ(line.meta.subs.size(), 4u);
    EXPECT_EQ(line.meta.state, CoherenceState::Private);
    EXPECT_TRUE(line.meta.noChildren());
}

TEST(RCacheTest, SubIndexSelectsSubBlock)
{
    RCache rc({64 * 1024, 64, 1}, kL1Block);
    EXPECT_EQ(rc.subIndex(PhysAddr(0x1000)), 0u);
    EXPECT_EQ(rc.subIndex(PhysAddr(0x1010)), 1u);
    EXPECT_EQ(rc.subIndex(PhysAddr(0x1030)), 3u);
    EXPECT_EQ(rc.subIndex(PhysAddr(0x1040)), 0u) << "next line wraps";
}

TEST(RCacheTest, SubBlockAddr)
{
    RCache rc({64 * 1024, 64, 1}, kL1Block);
    auto [slot, forced] = rc.victimFor(PhysAddr(0x1000));
    rc.install(slot, PhysAddr(0x1000), CoherenceState::Shared);
    EXPECT_EQ(rc.subBlockAddr(slot, 2), 0x1020u);
}

TEST(RCacheTest, RelaxedVictimPrefersChildlessLine)
{
    RCache rc({512, 16, 2}, kL1Block); // 16 sets x 2
    PhysAddr a(0x0), b(0x200); // same set, different tags
    auto [sa, fa] = rc.victimFor(a);
    rc.install(sa, a, CoherenceState::Private);
    auto [sb, fb] = rc.victimFor(b);
    rc.install(sb, b, CoherenceState::Private);

    // Mark `a` as having a child; `b` stays childless.
    rc.sub(*rc.probe(a), a).inclusion = true;
    auto [victim, forced] = rc.victimFor(PhysAddr(0x400));
    EXPECT_FALSE(forced);
    EXPECT_EQ(rc.lineAddr(victim), 0x200u)
        << "relaxed rule must pick the line without level-1 children";
}

TEST(RCacheTest, RelaxedVictimForcedWhenAllHaveChildren)
{
    RCache rc({512, 16, 2}, kL1Block);
    PhysAddr a(0x0), b(0x200);
    auto [sa, fa] = rc.victimFor(a);
    rc.install(sa, a, CoherenceState::Private);
    auto [sb, fb] = rc.victimFor(b);
    rc.install(sb, b, CoherenceState::Private);
    rc.sub(*rc.probe(a), a).inclusion = true;
    rc.sub(*rc.probe(b), b).buffer = true;

    auto [victim, forced] = rc.victimFor(PhysAddr(0x400));
    EXPECT_TRUE(forced) << "no childless line exists";
    EXPECT_TRUE(rc.line(victim).valid);
}

TEST(RCacheTest, BufferBitCountsAsChild)
{
    RLineMeta meta;
    meta.subs.assign(2, RSubentry{});
    EXPECT_TRUE(meta.noChildren());
    meta.subs[1].buffer = true;
    EXPECT_FALSE(meta.noChildren());
}

TEST(RCacheTest, ProbeDoesNotTouchRecency)
{
    RCache rc({512, 16, 2}, kL1Block);
    PhysAddr a(0x0), b(0x200);
    auto [sa, fa] = rc.victimFor(a);
    rc.install(sa, a, CoherenceState::Private);
    auto [sb, fb] = rc.victimFor(b);
    rc.install(sb, b, CoherenceState::Private);
    // `a` is older. A probe must not refresh it.
    rc.probe(a);
    auto [victim, forced] = rc.victimFor(PhysAddr(0x400));
    EXPECT_EQ(rc.lineAddr(victim), 0x0u);
    // A lookup does refresh.
    rc.lookup(a);
    auto [victim2, forced2] = rc.victimFor(PhysAddr(0x400));
    EXPECT_EQ(rc.lineAddr(victim2), 0x200u);
}

TEST(RCacheDeathTest, BlockSizeMismatchRejected)
{
    EXPECT_DEATH(RCache({64 * 1024, 16, 1}, 64),
                 "multiple");
}

} // namespace
} // namespace vrc
