/**
 * @file
 * Corrupt- and truncated-input robustness tests.
 *
 * Every loader must turn bad bytes into a structured Error -- with the
 * offending file and line -- through the Result-returning API, and
 * must never crash, allocate absurdly, or accept garbage. The legacy
 * wrappers' process-exit behaviour is covered by the existing
 * trace_io/profile_io death tests; these exercise the recoverable
 * path the campaign engine relies on.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/campaign.hh"
#include "trace/profile_io.hh"
#include "trace/trace_io.hh"

namespace vrc
{
namespace
{

std::string
binaryTraceBytes(const std::vector<TraceRecord> &records)
{
    std::ostringstream os(std::ios::binary);
    writeTraceBinary(os, records);
    return os.str();
}

std::vector<TraceRecord>
sampleTrace()
{
    return {
        makeRef(0, RefType::Instr, 1, VirtAddr(0x1000)),
        makeRef(1, RefType::Read, 2, VirtAddr(0x2000)),
        makeRef(0, RefType::Write, 1, VirtAddr(0x3000)),
    };
}

TEST(CorruptInputTest, BinaryBadMagicIsFormatError)
{
    std::istringstream is("XXXXXXXXXXXXXXXX", std::ios::binary);
    auto r = tryReadTraceBinary(is, "bad.vrct");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().kind, ErrorKind::Format);
    EXPECT_NE(r.error().message.find("bad magic"), std::string::npos);
    EXPECT_EQ(r.error().context, "bad.vrct");
}

TEST(CorruptInputTest, BinaryTruncatedHeaderIsParseError)
{
    std::istringstream is("VR", std::ios::binary);
    auto r = tryReadTraceBinary(is, "tiny.vrct");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().kind, ErrorKind::Parse);
}

TEST(CorruptInputTest, BinaryBodyShorterThanHeaderClaims)
{
    std::string bytes = binaryTraceBytes(sampleTrace());
    // Drop the last record: the header still claims three.
    bytes.resize(bytes.size() - sizeof(TraceRecord));
    std::istringstream is(bytes, std::ios::binary);
    auto r = tryReadTraceBinary(is, "short.vrct");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().kind, ErrorKind::Bounds);
    EXPECT_NE(r.error().message.find("truncated"), std::string::npos);
}

TEST(CorruptInputTest, BinaryHugeCountRejectedBeforeAllocating)
{
    // A header claiming 2^60 records over an empty body must fail on
    // the size check, not by attempting a petabyte allocation.
    std::string bytes = binaryTraceBytes(sampleTrace());
    std::uint64_t huge = std::uint64_t{1} << 60;
    bytes.replace(8, 8, reinterpret_cast<const char *>(&huge), 8);
    std::istringstream is(bytes, std::ios::binary);
    auto r = tryReadTraceBinary(is, "huge.vrct");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().kind, ErrorKind::Bounds);
}

TEST(CorruptInputTest, BinaryBadRefTypeByte)
{
    std::string bytes = binaryTraceBytes(sampleTrace());
    bytes[bytes.size() - 1] = 0x7F; // type byte of the last record
    std::istringstream is(bytes, std::ios::binary);
    auto r = tryReadTraceBinary(is, "types.vrct");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message.find("bad reference type"),
              std::string::npos);
}

TEST(CorruptInputTest, TextMalformedRecordCarriesLine)
{
    std::istringstream is("0 I 1 1000\nnot a record\n");
    auto r = tryReadTraceText(is, "t.trace");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().kind, ErrorKind::Parse);
    EXPECT_EQ(r.error().context, "t.trace");
    EXPECT_EQ(r.error().line, 2u);
}

TEST(CorruptInputTest, TextBadRefLetterCarriesLine)
{
    std::istringstream is("0 I 1 1000\n0 q 1 2000\n");
    auto r = tryReadTraceText(is, "t.trace");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message.find("'q'"), std::string::npos);
    EXPECT_EQ(r.error().line, 2u);
}

TEST(CorruptInputTest, TextCpuOutOfRangeIsBoundsError)
{
    std::istringstream is("99999 I 1 1000\n");
    auto r = tryReadTraceText(is, "t.trace");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().kind, ErrorKind::Bounds);
}

TEST(CorruptInputTest, MissingTraceFileIsIoError)
{
    auto r = tryLoadTrace("/nonexistent/trace.vrct");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().kind, ErrorKind::Io);
}

TEST(CorruptInputTest, ProfileLineWithoutEquals)
{
    std::istringstream is("name=ok\nbogus line\n");
    auto r = tryReadProfile(is, "p.profile");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().kind, ErrorKind::Parse);
    EXPECT_EQ(r.error().line, 2u);
    EXPECT_NE(r.error().message.find("no '='"), std::string::npos);
}

TEST(CorruptInputTest, ProfileUnknownKey)
{
    std::istringstream is("definitely_not_a_key=3\n");
    auto r = tryReadProfile(is, "p.profile");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message.find("unknown profile key"),
              std::string::npos);
}

TEST(CorruptInputTest, ProfileBadNumericValue)
{
    std::istringstream is("num_cpus=banana\n");
    auto r = tryReadProfile(is, "p.profile");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().line, 1u);
}

TEST(CorruptInputTest, ProfileBadDataLevels)
{
    std::istringstream is("data_levels=1024\n");
    auto r = tryReadProfile(is, "p.profile");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message.find("data_levels"),
              std::string::npos);
}

/** Resume a 3-cell campaign against a hand-written journal file. */
Result<CampaignResult>
resumeAgainst(const std::string &path, const std::string &contents)
{
    {
        std::ofstream out(path, std::ios::trunc);
        out << contents;
    }
    CampaignOptions opt;
    opt.checkpoint = path;
    opt.resume = true;
    auto r = CampaignRunner{opt}.run(
        3, "jkey", [](std::size_t, const CancelToken &) {
            return SimSummary{};
        });
    std::remove(path.c_str());
    return r;
}

TEST(CorruptInputTest, JournalWrongMagicIsMismatchAtLineOne)
{
    std::string path =
        std::string(::testing::TempDir()) + "wrong_magic.ckpt";
    auto r = resumeAgainst(path,
                           "definitely not a checkpoint\n"
                           "key jkey cells 3\n");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().kind, ErrorKind::Mismatch);
    EXPECT_EQ(r.error().line, 1u);
    EXPECT_NE(r.error().message.find(
                  "not a vrc campaign checkpoint journal"),
              std::string::npos);
}

TEST(CorruptInputTest, JournalTruncatedKeyLineIsMismatchAtLineTwo)
{
    std::string path =
        std::string(::testing::TempDir()) + "torn_key.ckpt";
    // The key line itself was torn mid-write: magic is fine, but the
    // "cells <n>" half never made it to disk.
    auto r = resumeAgainst(path,
                           "vrc-campaign-checkpoint v1\n"
                           "key jkey ce");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().kind, ErrorKind::Mismatch);
    EXPECT_EQ(r.error().line, 2u);
    EXPECT_NE(r.error().message.find("malformed checkpoint key line"),
              std::string::npos);
}

TEST(CorruptInputTest, JournalMissingKeyLineIsMismatchAtLineTwo)
{
    std::string path =
        std::string(::testing::TempDir()) + "no_key.ckpt";
    auto r = resumeAgainst(path, "vrc-campaign-checkpoint v1\n");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().kind, ErrorKind::Mismatch);
    EXPECT_EQ(r.error().line, 2u);
    EXPECT_NE(r.error().message.find("missing its key line"),
              std::string::npos);
}

TEST(CorruptInputTest, GoodInputsStillLoad)
{
    // The validating path must not reject what the writers produce.
    std::string bytes = binaryTraceBytes(sampleTrace());
    std::istringstream bin(bytes, std::ios::binary);
    auto rb = tryReadTraceBinary(bin, "ok.vrct");
    ASSERT_TRUE(rb.ok());
    EXPECT_EQ(rb.value().size(), 3u);

    std::istringstream txt("0 I 1 1000\n1 R 2 2000\n");
    auto rt = tryReadTraceText(txt, "ok.trace");
    ASSERT_TRUE(rt.ok());
    EXPECT_EQ(rt.value().size(), 2u);

    std::istringstream prof("name=t\nnum_cpus=2\n");
    auto rp = tryReadProfile(prof, "ok.profile");
    ASSERT_TRUE(rp.ok());
    EXPECT_EQ(rp.value().numCpus, 2u);
}

} // namespace
} // namespace vrc
