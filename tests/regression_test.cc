/**
 * @file
 * Regression tests for specific bugs found during development. Each
 * test documents the failure mode it guards against.
 */

#include <gtest/gtest.h>

#include <memory>

#include "coherence/bus.hh"
#include "core/timing.hh"
#include "core/vr_hierarchy.hh"
#include "vm/addr_space.hh"

namespace vrc
{
namespace
{

constexpr std::uint32_t kPage = 4096;

/**
 * Bug: with an associative V-cache, a swapped-valid stale line and a
 * newly installed line could end up with the same virtual tag in one
 * set (the LRU victim was another way), making tag lookups and the
 * R-cache's reverse pointers ambiguous ("child links to a different
 * block" panics in long runs). Fix: victim selection prefers the
 * same-tag stale line.
 */
TEST(RegressionTest, NoDuplicateVirtualTagsAfterContextSwitch)
{
    AddressSpaceManager spaces(kPage);
    SharedBus bus;
    HierarchyParams params{{8 * 1024, 16, 4, ReplPolicy::LRU},
                           {64 * 1024, 16, 2, ReplPolicy::LRU},
                           kPage};
    VrHierarchy h(params, spaces, bus, true);

    spaces.pageTable(0).map(0x10, 5);
    spaces.pageTable(1).map(0x10, 9); // same va, different frame

    // Process 0 touches enough nearby blocks to give LRU a reason to
    // pick a non-matching victim later.
    for (std::uint32_t off = 0; off < 4 * 16; off += 16)
        h.access({RefType::Write, VirtAddr(0x10000 + off), 0});
    h.contextSwitch(1);
    // Process 1 re-touches the same virtual block: the stale swapped
    // line with the identical tag must be the victim.
    h.access({RefType::Read, VirtAddr(0x10000), 1});

    // At most one line in the set carries the tag of 0x10000.
    const VCache &vc = h.vcache();
    std::uint32_t set = vc.setIndex(VirtAddr(0x10000));
    std::uint32_t tag = vc.geometry().tag(0x10000);
    int matches = 0;
    vc.tags().forEachWay(set, [&](LineRef, const VCache::Line &l) {
        if (l.valid && l.tag == tag)
            ++matches;
    });
    EXPECT_EQ(matches, 1);
    h.checkInvariants();
}

/**
 * Bug: the two-term crossover helper was once tested with hit-ratio
 * pairs that violate the equal-global-miss-fraction precondition the
 * paper's comparison rests on; the helper itself must stay consistent
 * for *feasible* inputs (same (1-h1)(1-h2) product).
 */
TEST(RegressionTest, CrossoverConsistentForFeasibleRatios)
{
    TimingParams p;
    double h1_vr = 0.93, h2_vr = 0.70;
    double miss = (1 - h1_vr) * (1 - h2_vr);
    double h1_rr = 0.90;
    double h2_rr = 1.0 - miss / (1 - h1_rr);
    double x = crossoverSlowdownPct(h1_vr, h2_vr, h1_rr, h2_rr, p);
    TimingParams at = p;
    at.l1SlowdownPct = x;
    EXPECT_NEAR(avgAccessTimeTwoTerm(h1_rr, h2_rr, at),
                avgAccessTimeTwoTerm(h1_vr, h2_vr, p), 1e-9);
}

/**
 * Bug: recursive template instantiation in the tag store's victim
 * fallback (each recursion created a new lambda type) exhausted
 * compiler memory. Guard: the fallback path works at runtime and the
 * code compiled at all, but also pin the behaviour.
 */
TEST(RegressionTest, VictimFallbackTerminates)
{
    TagStore<int> store(CacheGeometry(256, 16, 2), ReplPolicy::LRU);
    store.fill(store.victim(0x0), 0x0);
    store.fill(store.victim(0x100), 0x100);
    // Nothing eligible: fallback must still return a valid line.
    LineRef v = store.victimWhere(
        0, [](const TagStore<int>::Line &) { return false; });
    EXPECT_TRUE(store.line(v).valid);
}

/**
 * Bug: dinero-style snapshot maths in a bench once expected four
 * blocks for a 40-byte range starting mid-block; pin the block-cover
 * arithmetic of the DMA device here instead.
 */
TEST(RegressionTest, RangeBlockCoverArithmetic)
{
    // [8, 48) covers 3 16-byte blocks; [8, 50) covers 4.
    auto cover = [](std::uint32_t base, std::uint32_t len,
                    std::uint32_t block) {
        std::uint32_t first = base & ~(block - 1);
        std::uint32_t last = (base + len - 1) & ~(block - 1);
        return (last - first) / block + 1;
    };
    EXPECT_EQ(cover(8, 40, 16), 3u);
    EXPECT_EQ(cover(8, 42, 16), 4u);
    EXPECT_EQ(cover(0, 16, 16), 1u);
    EXPECT_EQ(cover(15, 2, 16), 2u);
}

} // namespace
} // namespace vrc
