/**
 * @file
 * Distributed sweep sharding tests: stable cell ids, merge
 * determinism and conflict refusal, and an in-process coordinator +
 * worker end-to-end run proved byte-identical to the single-process
 * campaign -- including under an injected straggler.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/fault.hh"
#include "sim/campaign.hh"
#include "sim/shard.hh"
#include "trace/generator.hh"
#include "trace/workload.hh"

namespace vrc
{
namespace
{

TraceBundle
smallBundle()
{
    return generateTrace(scaled(profileByName("pops"), 0.002));
}

std::vector<SimJob>
smallGrid()
{
    // Distinct content per cell (the coordinator insists on it).
    return {
        {HierarchyKind::VirtualReal, 4096, 65536, false, 0,
         TimingMode::Analytic},
        {HierarchyKind::VirtualReal, 8192, 131072, false, 0,
         TimingMode::Analytic},
        {HierarchyKind::RealRealIncl, 4096, 65536, false, 0,
         TimingMode::Analytic},
        {HierarchyKind::RealRealIncl, 8192, 131072, true, 0,
         TimingMode::Analytic},
        {HierarchyKind::RealRealNoIncl, 4096, 65536, false, 0,
         TimingMode::Analytic},
        {HierarchyKind::RealRealNoIncl, 8192, 131072, false, 0,
         TimingMode::Cycle},
    };
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

// ---- stable cell ids -------------------------------------------------

TEST(ShardCellIdTest, DerivedFromContentNotGridPosition)
{
    TraceBundle bundle = smallBundle();
    std::vector<SimJob> grid = smallGrid();
    std::vector<std::uint64_t> ids;
    for (const SimJob &j : grid)
        ids.push_back(shardCellId(bundle, j));

    // Uniqueness over the grid.
    std::vector<std::uint64_t> sorted = ids;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()),
              sorted.end());

    // Growing or reordering the grid must not move existing ids:
    // the id depends only on the cell's own content.
    std::vector<SimJob> grown = grid;
    grown.insert(grown.begin(),
                 SimJob{HierarchyKind::VirtualReal, 16384, 262144,
                        false, 0, TimingMode::Analytic});
    for (std::size_t i = 0; i < grid.size(); ++i)
        EXPECT_EQ(shardCellId(bundle, grown[i + 1]), ids[i]);

    // A different workload is a different id for the same job.
    TraceBundle other =
        generateTrace(scaled(profileByName("thor"), 0.002));
    EXPECT_NE(shardCellId(other, grid[0]), ids[0]);
}

// ---- merge determinism ------------------------------------------------

/** A complete journal for the small grid, plus its per-cell lines. */
struct BaselineJournal
{
    std::string header;
    std::vector<std::string> cellLines; ///< index order
    std::string canonical;              ///< full canonical bytes
};

BaselineJournal
makeBaseline()
{
    TraceBundle bundle = smallBundle();
    std::vector<SimJob> jobs = smallGrid();
    CampaignOptions opt;
    opt.jobs = 2;
    Result<CampaignResult> run =
        runSimulationCampaign(bundle, jobs, opt);
    EXPECT_TRUE(run.ok());
    CampaignResult res = run.take();

    BaselineJournal b;
    std::ostringstream hdr;
    hdr << "vrc-campaign-checkpoint v1\nkey "
        << campaignKey(bundle, jobs) << " cells " << jobs.size()
        << "\n";
    b.header = hdr.str();
    b.canonical = b.header;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        b.cellLines.push_back(encodeSummaryLine(i, res.summaries[i]));
        b.canonical += b.cellLines[i] + "\n";
    }
    return b;
}

TEST(ShardMergeTest, ShuffledPartialsMergeByteIdentically)
{
    BaselineJournal base = makeBaseline();
    const std::size_t n = base.cellLines.size();

    // Three shards with interleaved (non-contiguous) cell ownership,
    // one byte-identical duplicate across shards, and a torn final
    // line on one partial (a worker killed mid-append).
    std::vector<std::string> parts(3, base.header);
    for (std::size_t i = 0; i < n; ++i)
        parts[i % 3] += base.cellLines[i] + "\n";
    parts[0] += base.cellLines[1] + "\n"; // duplicate of shard 1's cell
    parts[2] += base.cellLines[0].substr(
        0, base.cellLines[0].size() / 2); // torn tail, no newline

    // Every arrival order must merge to the same canonical bytes.
    std::vector<int> order = {0, 1, 2};
    std::mt19937 rng(7);
    for (int round = 0; round < 6; ++round) {
        std::shuffle(order.begin(), order.end(), rng);
        std::vector<std::pair<std::string, std::string>> inputs;
        for (int k : order)
            inputs.emplace_back("part" + std::to_string(k),
                                parts[k]);
        Result<ShardMerge> merged = mergeJournalTexts(inputs);
        ASSERT_TRUE(merged.ok()) << merged.error().describe();
        ShardMerge m = merged.take();
        EXPECT_EQ(canonicalJournalText(m.merged), base.canonical);
        EXPECT_TRUE(m.missing.empty());
        EXPECT_EQ(m.duplicates, 1u);
        EXPECT_EQ(m.torn, 1u);
    }
}

TEST(ShardMergeTest, ConflictingSummariesAreAHardErrorNamingBoth)
{
    BaselineJournal base = makeBaseline();
    std::string a = base.header + base.cellLines[0] + "\n";
    // Same cell, different bytes: flip a digit inside the last
    // hexfloat (staying clear of the trailing "end" sentinel, which
    // would make the line torn rather than divergent).
    std::string lied = base.cellLines[0];
    std::size_t digit =
        lied.find_last_of("0123456789", lied.size() - 5);
    lied[digit] = lied[digit] == '7' ? '8' : '7';
    std::string b = base.header + lied + "\n";

    Result<ShardMerge> merged =
        mergeJournalTexts({{"first.ckpt", a}, {"second.ckpt", b}});
    ASSERT_FALSE(merged.ok());
    EXPECT_TRUE(isConflictError(merged.error()));
    EXPECT_EQ(merged.error().context, "second.ckpt");
    EXPECT_EQ(merged.error().line, 3u);
    EXPECT_NE(merged.error().message.find("first.ckpt:3"),
              std::string::npos)
        << merged.error().describe();

    // Foreign campaign keys are refused outright.
    std::string foreign =
        "vrc-campaign-checkpoint v1\nkey ffff cells " +
        std::to_string(base.cellLines.size()) + "\n";
    Result<ShardMerge> crossed =
        mergeJournalTexts({{"a", a}, {"b", foreign}});
    ASSERT_FALSE(crossed.ok());
    EXPECT_EQ(crossed.error().kind, ErrorKind::Mismatch);
    EXPECT_FALSE(isConflictError(crossed.error()));
}

TEST(ShardMergeTest, IntraFileDivergentDuplicateRejectedAtLoad)
{
    BaselineJournal base = makeBaseline();
    std::string lied = base.cellLines[0];
    std::size_t digit =
        lied.find_last_of("0123456789", lied.size() - 5);
    lied[digit] = lied[digit] == '3' ? '4' : '3';
    std::string text = base.header + base.cellLines[0] + "\n" +
                       base.cellLines[1] + "\n" + lied + "\n";
    std::istringstream in(text);
    Result<JournalContents> loaded = tryLoadJournal(in, "dup.ckpt");
    ASSERT_FALSE(loaded.ok());
    EXPECT_TRUE(isConflictError(loaded.error()));
    EXPECT_EQ(loaded.error().line, 5u); // the disagreeing copy
    EXPECT_NE(loaded.error().message.find("line 3"),
              std::string::npos)
        << loaded.error().describe();
}

// ---- coordinator + workers end to end ---------------------------------

struct E2eResult
{
    std::string json;
    std::string journal;
    ShardStats stats;
    int restored = 0;
};

E2eResult
runCoordinated(const ShardCoordinatorOptions &optIn, unsigned workers,
               const std::string &tag)
{
    TraceBundle bundle = smallBundle();
    std::vector<SimJob> jobs = smallGrid();

    ShardCoordinatorOptions opt = optIn;
    opt.listenTcp = 0; // ephemeral
    opt.profileScale = 0.002;
    ShardCoordinator coordinator(opt);
    Status bound = coordinator.bind();
    EXPECT_TRUE(bound.ok());
    int port = coordinator.tcpPort();
    EXPECT_GT(port, 0);

    std::vector<std::thread> pool;
    for (unsigned i = 0; i < workers; ++i) {
        pool.emplace_back([port, i, tag] {
            ShardWorkerOptions wo;
            wo.connectTcp = port;
            wo.name = tag + "-w" + std::to_string(i);
            wo.heartbeatSeconds = 0.05;
            Result<ShardWorkerStats> st = runShardWorker(wo);
            EXPECT_TRUE(st.ok()) << st.error().describe();
        });
    }

    Result<CampaignResult> run = coordinator.run(bundle, jobs);
    for (std::thread &t : pool)
        t.join();

    E2eResult out;
    out.stats = coordinator.stats();
    EXPECT_TRUE(run.ok()) << run.error().describe();
    if (run.ok()) {
        CampaignResult res = run.take();
        out.restored = static_cast<int>(res.restored);
        EXPECT_FALSE(res.interrupted);
        EXPECT_TRUE(res.allOk());
        out.json = campaignResultToJson(res);
    }
    if (!opt.checkpoint.empty())
        out.journal = slurp(opt.checkpoint);
    return out;
}

TEST(ShardCoordinatorTest, TwoWorkersMatchSingleProcessByteForByte)
{
    TraceBundle bundle = smallBundle();
    std::vector<SimJob> jobs = smallGrid();

    const std::string baseCkpt = "shard_e2e_base.ckpt";
    const std::string distCkpt = "shard_e2e_dist.ckpt";
    std::remove(baseCkpt.c_str());
    std::remove(distCkpt.c_str());

    CampaignOptions copt;
    copt.jobs = 2;
    copt.checkpoint = baseCkpt;
    Result<CampaignResult> baseline =
        runSimulationCampaign(bundle, jobs, copt);
    ASSERT_TRUE(baseline.ok());
    std::string baseJson = campaignResultToJson(baseline.value());

    ShardCoordinatorOptions so;
    so.checkpoint = distCkpt;
    so.cellsPerShard = 2;
    E2eResult dist = runCoordinated(so, 2, "match");

    EXPECT_EQ(dist.json, baseJson);
    EXPECT_EQ(dist.journal, slurp(baseCkpt));
    EXPECT_GE(dist.stats.workersSeen, 1u);
    EXPECT_EQ(dist.stats.cellResults, jobs.size());
}

TEST(ShardCoordinatorTest, ResumeRedispatchesOnlyMissingCells)
{
    TraceBundle bundle = smallBundle();
    std::vector<SimJob> jobs = smallGrid();
    const std::string ckpt = "shard_resume.ckpt";
    std::remove(ckpt.c_str());

    // Full run to learn the finished journal, then truncate it to the
    // header + two cells -- exactly what a killed coordinator leaves.
    ShardCoordinatorOptions so;
    so.checkpoint = ckpt;
    E2eResult full = runCoordinated(so, 2, "resume-a");
    std::string finished = full.journal;

    std::istringstream in(finished);
    std::string line, partial;
    for (int i = 0; i < 4 && std::getline(in, line); ++i)
        partial += line + "\n";
    {
        std::ofstream out(ckpt, std::ios::trunc);
        out << partial;
    }

    ShardCoordinatorOptions ro = so;
    ro.resume = true;
    E2eResult resumed = runCoordinated(ro, 2, "resume-b");
    EXPECT_EQ(resumed.restored, 2);
    EXPECT_EQ(resumed.stats.cellResults, jobs.size() - 2);
    EXPECT_EQ(resumed.journal, finished);
    EXPECT_EQ(resumed.json, full.json);

    // A journal from someone else's campaign must be refused.
    {
        std::ofstream out(ckpt, std::ios::trunc);
        out << "vrc-campaign-checkpoint v1\nkey f00d cells "
            << jobs.size() << "\n";
    }
    ShardCoordinatorOptions foreign = ro;
    foreign.listenTcp = 0;
    ShardCoordinator coordinator(foreign);
    ASSERT_TRUE(coordinator.bind().ok());
    Result<CampaignResult> run = coordinator.run(bundle, jobs);
    ASSERT_FALSE(run.ok());
    EXPECT_EQ(run.error().kind, ErrorKind::Mismatch);
    EXPECT_FALSE(isConflictError(run.error()));
    std::remove(ckpt.c_str());
}

#ifdef VRC_FAULTS_ENABLED

TEST(ShardCoordinatorTest, StragglerIsSpeculativelyRedispatched)
{
    // Arm a deterministic stall: some cell's first dispatch freezes
    // (heartbeats muted) for longer than the coordinator's deadline,
    // so the watchdog must speculate that range to the other worker.
    // First make sure the seed actually stalls at least one cell at
    // attempt 0 -- otherwise the test would pass vacuously.
    ASSERT_TRUE(
        configureFaultInjection("seed=5,worker-stall=0.35,stall_ms=1500")
            .ok());
    bool anyStall = false;
    for (std::size_t i = 0; i < smallGrid().size(); ++i)
        anyStall = anyStall ||
                   faultDecision("shard-stall", i, 0, 0.35);
    ASSERT_TRUE(anyStall) << "seed stalls nothing; pick another";

    const std::string ckpt = "shard_straggler.ckpt";
    std::remove(ckpt.c_str());
    ShardCoordinatorOptions so;
    so.checkpoint = ckpt;
    so.cellsPerShard = 2;
    so.deadlineSeconds = 0.3; // well under the 1.5 s stall
    so.maxRetries = 10;
    E2eResult dist = runCoordinated(so, 2, "straggler");
    disarmFaultInjection();

    EXPECT_GE(dist.stats.speculativeDispatches, 1u);
    EXPECT_EQ(dist.stats.cellResults, smallGrid().size());

    // And the answer is still exactly the single-process answer.
    TraceBundle bundle = smallBundle();
    CampaignOptions copt;
    copt.jobs = 2;
    Result<CampaignResult> baseline =
        runSimulationCampaign(bundle, smallGrid(), copt);
    ASSERT_TRUE(baseline.ok());
    EXPECT_EQ(dist.json, campaignResultToJson(baseline.value()));
    std::remove(ckpt.c_str());
}

#endif // VRC_FAULTS_ENABLED

} // namespace
} // namespace vrc
