/**
 * @file
 * Tests for the synthetic trace generator: determinism, reference mix,
 * procedure-call write bursts, context switches, address regions and
 * synonym structure.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "trace/generator.hh"
#include "trace/trace_stats.hh"
#include "vm/addr_space.hh"

namespace vrc
{
namespace
{

WorkloadProfile
tinyProfile()
{
    WorkloadProfile p = popsProfile();
    p.totalRefs = 60'000;
    p.contextSwitches = 6;
    p.seed = 99;
    return p;
}

TEST(GeneratorTest, Deterministic)
{
    auto a = generateTrace(tinyProfile());
    auto b = generateTrace(tinyProfile());
    ASSERT_EQ(a.records.size(), b.records.size());
    EXPECT_EQ(a.records, b.records);
}

TEST(GeneratorTest, SeedChangesTrace)
{
    WorkloadProfile p = tinyProfile();
    auto a = generateTrace(p);
    p.seed += 1;
    auto b = generateTrace(p);
    EXPECT_NE(a.records, b.records);
}

TEST(GeneratorTest, RefCountNearTarget)
{
    auto bundle = generateTrace(tinyProfile());
    auto c = characterize(bundle.records);
    EXPECT_NEAR(static_cast<double>(c.totalRefs), 60'000.0, 600.0);
}

TEST(GeneratorTest, MixMatchesProfile)
{
    WorkloadProfile p = tinyProfile();
    auto bundle = generateTrace(p);
    auto c = characterize(bundle.records);
    double total = static_cast<double>(c.totalRefs);
    EXPECT_NEAR(c.instrCount / total, p.instrFrac, 0.03);
    EXPECT_NEAR(c.dataReads / total, p.readFrac, 0.03);
    EXPECT_NEAR(c.dataWrites / total, p.writeFrac, 0.03);
}

TEST(GeneratorTest, ContextSwitchCount)
{
    auto bundle = generateTrace(tinyProfile());
    auto c = characterize(bundle.records);
    EXPECT_EQ(c.contextSwitches, 6u);
    EXPECT_EQ(bundle.stats.contextSwitches, 6u);
}

TEST(GeneratorTest, AllCpusParticipateEvenly)
{
    auto bundle = generateTrace(tinyProfile());
    auto c = characterize(bundle.records);
    ASSERT_EQ(c.numCpus, 4u);
    for (auto refs : c.refsPerCpu)
        EXPECT_NEAR(static_cast<double>(refs), 15'000.0, 200.0);
}

TEST(GeneratorTest, CallBurstsInRange)
{
    WorkloadProfile p = tinyProfile();
    auto bundle = generateTrace(p);
    const Histogram &h = bundle.stats.callWrites;
    EXPECT_GT(bundle.stats.totalCalls, 50u);
    // The bulk of calls write 6..12 words (Table 1's shape).
    std::uint64_t in_range = 0;
    for (std::uint64_t k = p.callWritesMin; k <= p.callWritesMax; ++k)
        in_range += h.count(k);
    EXPECT_GT(in_range, bundle.stats.totalCalls * 95 / 100);
}

TEST(GeneratorTest, CallWritesAreSubstantialShareOfWrites)
{
    auto bundle = generateTrace(tinyProfile());
    // pops: the paper reports ~30% of writes due to procedure calls.
    double share = static_cast<double>(bundle.stats.callWriteCount) /
        static_cast<double>(bundle.stats.totalWrites);
    EXPECT_GT(share, 0.15);
    EXPECT_LT(share, 0.55);
}

TEST(GeneratorTest, InstructionAddressesInTextRegion)
{
    WorkloadProfile p = tinyProfile();
    auto bundle = generateTrace(p);
    std::uint32_t text_end =
        VirtualLayout::textBase + p.procCount * p.procStride;
    for (const TraceRecord &r : bundle.records) {
        if (r.type != RefType::Instr)
            continue;
        EXPECT_GE(r.vaddr, VirtualLayout::textBase);
        EXPECT_LT(r.vaddr, text_end);
    }
}

TEST(GeneratorTest, PidsMatchCpuAssignment)
{
    WorkloadProfile p = tinyProfile();
    auto bundle = generateTrace(p);
    for (const TraceRecord &r : bundle.records) {
        ProcessId lo = r.cpu * p.processesPerCpu;
        EXPECT_GE(r.pid, lo);
        EXPECT_LT(r.pid, lo + p.processesPerCpu);
    }
}

TEST(GeneratorTest, SharedRegionTouchedByAllCpus)
{
    WorkloadProfile p = tinyProfile();
    auto bundle = generateTrace(p);
    std::uint32_t shared_end =
        VirtualLayout::sharedBase + p.sharedPages * p.pageSize;
    std::unordered_set<unsigned> cpus_sharing;
    for (const TraceRecord &r : bundle.records) {
        if (r.isData() && r.vaddr >= VirtualLayout::sharedBase &&
            r.vaddr < shared_end) {
            cpus_sharing.insert(r.cpu);
        }
    }
    EXPECT_EQ(cpus_sharing.size(), 4u);
}

TEST(GeneratorTest, AliasReferencesProduceSynonyms)
{
    WorkloadProfile p = tinyProfile();
    auto bundle = generateTrace(p);
    AddressSpaceManager spaces(p.pageSize);
    setupAddressSpaces(p, spaces);
    // Find a data ref in the alias region and confirm it maps to a
    // shared-segment frame also reachable via the canonical base.
    bool found = false;
    for (const TraceRecord &r : bundle.records) {
        if (!r.isData() || r.vaddr < VirtualLayout::aliasRegionBase ||
            r.vaddr >= VirtualLayout::stackBase) {
            continue;
        }
        PhysAddr via_alias = spaces.translate(r.pid, r.va());
        std::uint32_t offset = r.vaddr -
            VirtualLayout::aliasBase(r.pid, p.sharedPages, p.pageSize);
        PhysAddr via_canonical = spaces.translate(
            r.pid, VirtAddr(VirtualLayout::sharedBase + offset));
        EXPECT_EQ(via_alias.value(), via_canonical.value());
        found = true;
        break;
    }
    EXPECT_TRUE(found) << "no alias references generated";
}

TEST(GeneratorTest, SetupAddressSpacesSharesTextAcrossProcesses)
{
    WorkloadProfile p = tinyProfile();
    AddressSpaceManager spaces(p.pageSize);
    setupAddressSpaces(p, spaces);
    PhysAddr a =
        spaces.translate(0, VirtAddr(VirtualLayout::textBase));
    PhysAddr b =
        spaces.translate(5, VirtAddr(VirtualLayout::textBase));
    EXPECT_EQ(a.value(), b.value()) << "shared text segment";
}

TEST(GeneratorTest, ScaledProfileShrinks)
{
    WorkloadProfile p = popsProfile();
    WorkloadProfile s = scaled(p, 0.01);
    EXPECT_NEAR(static_cast<double>(s.totalRefs),
                p.totalRefs * 0.01, 1.0);
    auto bundle = generateTrace(s);
    auto c = characterize(bundle.records);
    EXPECT_LT(c.totalRefs, 40'000u);
}

TEST(GeneratorTest, PaperProfilesMatchTable5Shapes)
{
    for (const auto &p : paperProfiles()) {
        SCOPED_TRACE(p.name);
        EXPECT_NEAR(p.instrFrac + p.readFrac + p.writeFrac, 1.0, 0.01);
    }
    EXPECT_EQ(thorProfile().numCpus, 4u);
    EXPECT_EQ(popsProfile().numCpus, 4u);
    EXPECT_EQ(abaqusProfile().numCpus, 2u);
    EXPECT_EQ(thorProfile().contextSwitches, 21u);
    EXPECT_EQ(popsProfile().contextSwitches, 7u);
    EXPECT_EQ(abaqusProfile().contextSwitches, 292u);
}

TEST(GeneratorTest, ProfileByName)
{
    EXPECT_EQ(profileByName("pops").name, "pops");
    EXPECT_EQ(profileByName("thor").name, "thor");
    EXPECT_EQ(profileByName("abaqus").name, "abaqus");
}

TEST(GeneratorDeathTest, UnknownProfileName)
{
    EXPECT_EXIT(profileByName("nope"), ::testing::ExitedWithCode(1),
                "unknown workload profile");
}

} // namespace
} // namespace vrc
