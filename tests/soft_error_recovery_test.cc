/**
 * @file
 * Tests for the soft-error model: array protection policies, the
 * deterministic strike machinery, recovery through the hierarchy, bus
 * retry, and the model's central contract -- a run whose strikes are
 * all recoverable reports exactly the architectural statistics of an
 * unarmed run (recovery is state-preserving), and a disarmed build of
 * the same binary is bit-identical to the seed simulator.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/fault.hh"
#include "cache/protection.hh"
#include "cache/tag_store.hh"
#include "core/events.hh"
#include "sim/experiment.hh"
#include "sim/json_stats.hh"
#include "sim/mp_sim.hh"

namespace vrc
{
namespace
{

/** Every test starts and ends disarmed (the config is process-wide). */
class SoftErrorTest : public ::testing::Test
{
  protected:
    void SetUp() override { disarmSoftErrors(); }
    void TearDown() override { disarmSoftErrors(); }

    static TraceBundle &
    bundle()
    {
        static TraceBundle b = generateTrace(scaled(popsProfile(), 0.02));
        return b;
    }

    static MpSimulator
    makeSim(HierarchyKind kind,
            ArrayProtection prot = ArrayProtection::Secded)
    {
        MachineConfig mc = makeMachineConfig(
            kind, 8 * 1024, 64 * 1024, bundle().profile.pageSize);
        mc.hierarchy.l1.protection = prot;
        mc.hierarchy.l2.protection = prot;
        return MpSimulator(mc, bundle().profile);
    }

    /** Architectural (non-soft) counters a recoverable run must keep. */
    static std::vector<std::uint64_t>
    architecturalStats(MpSimulator &sim)
    {
        std::vector<std::uint64_t> v;
        for (const char *name :
             {"refs", "l1_hits", "l2_hits", "misses", "writebacks",
              "writeback_cancels", "synonym_hits", "memory_writes",
              "inclusion_invalidations", "l1_coherence_msgs",
              "snoops", "snoop_hits", "wb_stalls"}) {
            v.push_back(sim.totalCounter(name));
        }
        return v;
    }
};

// --- protection policy semantics -------------------------------------

TEST(ArrayProtection, ClassificationFollowsCheckBitAlgebra)
{
    using P = ArrayProtection;
    using O = FaultOutcome;

    // No check bits: everything is silent corruption.
    EXPECT_EQ(classifyArrayFault(P::None, 1), O::Silent);
    EXPECT_EQ(classifyArrayFault(P::None, 2), O::Silent);

    // Parity detects odd flip counts, aliases on even ones.
    EXPECT_EQ(classifyArrayFault(P::Parity, 1), O::Detected);
    EXPECT_EQ(classifyArrayFault(P::Parity, 2), O::Silent);
    EXPECT_EQ(classifyArrayFault(P::Parity, 3), O::Detected);

    // SECDED corrects one flip, detects two, can alias past three.
    EXPECT_EQ(classifyArrayFault(P::Secded, 1), O::Corrected);
    EXPECT_EQ(classifyArrayFault(P::Secded, 2), O::Detected);
    EXPECT_EQ(classifyArrayFault(P::Secded, 3), O::Silent);
}

TEST(ArrayProtection, ParseAndPrintRoundTrip)
{
    EXPECT_EQ(parseArrayProtection("none"), ArrayProtection::None);
    EXPECT_EQ(parseArrayProtection("parity"), ArrayProtection::Parity);
    EXPECT_EQ(parseArrayProtection("secded"), ArrayProtection::Secded);
    EXPECT_EQ(parseArrayProtection("SECDED"), ArrayProtection::Secded);
    EXPECT_FALSE(parseArrayProtection("ecc").has_value());
    EXPECT_STREQ(arrayProtectionName(ArrayProtection::Parity), "parity");
}

TEST(ArrayProtection, TagStoreCountsAbsorbedFaults)
{
    struct Meta
    {
    };
    TagStore<Meta> tags(CacheGeometry(1024, 16, 1), ReplPolicy::LRU);

    tags.setProtection(ArrayProtection::Secded);
    EXPECT_EQ(tags.absorbFault(1), FaultOutcome::Corrected);
    EXPECT_EQ(tags.absorbFault(2), FaultOutcome::Detected);
    EXPECT_EQ(tags.absorbFault(3), FaultOutcome::Silent);
    tags.noteUncorrectable();

    const ArrayFaultStats &fs = tags.faultStats();
    EXPECT_EQ(fs.corrected, 1u);
    EXPECT_EQ(fs.detected, 1u);
    EXPECT_EQ(fs.silent, 1u);
    EXPECT_EQ(fs.uncorrectable, 1u);

    tags.setProtection(ArrayProtection::None);
    EXPECT_EQ(tags.absorbFault(1), FaultOutcome::Silent);
    EXPECT_EQ(tags.faultStats().silent, 2u);
}

// --- spec parsing ----------------------------------------------------

TEST_F(SoftErrorTest, SpecParsing)
{
    ASSERT_TRUE(configureSoftErrors("seed=9,tag=0.25,bus=0.5,retry=7"));
    EXPECT_TRUE(softErrorsArmed());
    EXPECT_EQ(softErrorConfig().seed, 9u);
    EXPECT_DOUBLE_EQ(softErrorConfig().tag, 0.25);
    EXPECT_DOUBLE_EQ(softErrorConfig().state, 0.0);
    EXPECT_DOUBLE_EQ(softErrorConfig().bus, 0.5);
    EXPECT_EQ(softErrorConfig().busRetryLimit, 7u);

    // Bare seed: default probabilities arm every site.
    ASSERT_TRUE(configureSoftErrors("1234"));
    EXPECT_EQ(softErrorConfig().seed, 1234u);
    EXPECT_GT(softErrorConfig().tag, 0.0);
    EXPECT_GT(softErrorConfig().bus, 0.0);

    EXPECT_FALSE(configureSoftErrors("seed=0,tag=0.5"));
    EXPECT_FALSE(configureSoftErrors("seed=4,unknown=1"));
    EXPECT_FALSE(configureSoftErrors("seed=4,tag=abc"));

    disarmSoftErrors();
    EXPECT_FALSE(softErrorsArmed());
}

TEST_F(SoftErrorTest, DecisionIsAPureFunction)
{
    ASSERT_TRUE(configureSoftErrors("seed=77,tag=0.5"));
    bool first = softErrorDecision("l1-tag", 3, 1000, 0.5);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(softErrorDecision("l1-tag", 3, 1000, 0.5), first);
    // Different sites draw from independent streams.
    unsigned hits = 0;
    for (std::uint64_t r = 0; r < 64; ++r)
        hits += softErrorDecision("l1-tag", 0, r, 0.5) ? 1 : 0;
    EXPECT_GT(hits, 0u);
    EXPECT_LT(hits, 64u);
}

// --- the disarmed contract -------------------------------------------

TEST_F(SoftErrorTest, DisarmedRunIsBitIdenticalAndExposesNoSoftKeys)
{
    MpSimulator a = makeSim(HierarchyKind::VirtualReal);
    a.run(bundle().records);
    std::string base = toJson(a);

    // Same machine with the model disarmed (the default): identical
    // output, and no soft-error statistic leaks into the dump.
    MpSimulator b = makeSim(HierarchyKind::VirtualReal);
    b.run(bundle().records);
    EXPECT_EQ(base, toJson(b));
    EXPECT_EQ(base.find("soft_"), std::string::npos);
    EXPECT_EQ(base.find("machine_checks"), std::string::npos);
}

// --- recoverable strikes preserve architectural state ----------------

class RecoverableStrikes
    : public SoftErrorTest,
      public ::testing::WithParamInterface<HierarchyKind>
{
};

TEST_P(RecoverableStrikes, ArchitecturalStatsMatchUnarmedRun)
{
    MpSimulator base = makeSim(GetParam());
    base.run(bundle().records);
    std::vector<std::uint64_t> want = architecturalStats(base);

    // Tag strikes under SECDED: mostly corrected in place, the rest
    // detected and recovered by refetch. The workload replays bit-for-
    // bit because recovery restores the struck line's exact content.
    ASSERT_TRUE(configureSoftErrors("seed=7,tag=2e-5"));
    MpSimulator armed = makeSim(GetParam());
    armed.run(bundle().records);
    armed.checkInvariants();

    EXPECT_EQ(architecturalStats(armed), want);
    EXPECT_GT(armed.totalCounter("soft_faults_tag"), 0u);
    EXPECT_EQ(armed.totalCounter("machine_checks"), 0u);
    EXPECT_GT(armed.totalCounter("soft_corrected") +
                  armed.totalCounter("soft_recovered") +
                  armed.totalCounter("soft_masked") +
                  armed.totalCounter("soft_silent"),
              0u);
}

INSTANTIATE_TEST_SUITE_P(AllOrganizations, RecoverableStrikes,
                         ::testing::Values(
                             HierarchyKind::VirtualReal,
                             HierarchyKind::RealRealIncl,
                             HierarchyKind::RealRealNoIncl),
                         [](const ::testing::TestParamInfo<
                             HierarchyKind> &info) {
                             switch (info.param) {
                               case HierarchyKind::VirtualReal:
                                 return std::string("Vr");
                               case HierarchyKind::RealRealIncl:
                                 return std::string("RrIncl");
                               default:
                                 return std::string("RrNoIncl");
                             }
                         });

TEST_F(SoftErrorTest, SameSeedReproducesTheSameRun)
{
    ASSERT_TRUE(configureSoftErrors("seed=11,tag=5e-5,state=1e-5"));
    MpSimulator a = makeSim(HierarchyKind::VirtualReal);
    a.run(bundle().records);
    std::string first = toJson(a);
    EXPECT_NE(first.find("soft_"), std::string::npos);

    MpSimulator b = makeSim(HierarchyKind::VirtualReal);
    b.run(bundle().records);
    EXPECT_EQ(first, toJson(b));
}

TEST_F(SoftErrorTest, SweepResultsIndependentOfWorkerThreads)
{
    ASSERT_TRUE(configureSoftErrors("seed=5,tag=2e-5"));
    std::vector<SimJob> jobs = {
        {HierarchyKind::VirtualReal, 8 * 1024, 64 * 1024, false, 0},
        {HierarchyKind::RealRealIncl, 8 * 1024, 64 * 1024, false, 0},
        {HierarchyKind::RealRealNoIncl, 8 * 1024, 64 * 1024, false, 0},
    };
    std::vector<SimSummary> serial =
        runSimulations(bundle(), jobs, 1);
    std::vector<SimSummary> parallel =
        runSimulations(bundle(), jobs, 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_DOUBLE_EQ(serial[i].h1, parallel[i].h1) << i;
        EXPECT_DOUBLE_EQ(serial[i].h2, parallel[i].h2) << i;
        EXPECT_EQ(serial[i].busTransactions,
                  parallel[i].busTransactions) << i;
        EXPECT_EQ(serial[i].memoryWrites, parallel[i].memoryWrites)
            << i;
    }
}

// --- recovery emits events -------------------------------------------

TEST_F(SoftErrorTest, RecoveryEmitsFaultEvents)
{
    ASSERT_TRUE(configureSoftErrors("seed=3,tag=5e-4"));
    MpSimulator sim = makeSim(HierarchyKind::VirtualReal);

    std::uint64_t corrected = 0, detected = 0;
    CallbackObserver obs([&](const HierarchyEvent &ev) {
        if (ev.kind == EventKind::FaultCorrected)
            ++corrected;
        else if (ev.kind == EventKind::FaultDetected)
            ++detected;
    });
    for (CpuId c = 0; c < sim.cpuCount(); ++c)
        sim.hierarchy(c).setObserver(&obs);

    try {
        sim.run(bundle().records);
    } catch (const FaultUnrecoverable &) {
        // A dirty line may take an uncorrectable hit at this rate;
        // the events recorded up to the halt are what we check.
    }
    EXPECT_GT(corrected, 0u);
    EXPECT_EQ(sim.totalCounter("soft_detected"), detected);
}

// --- machine checks --------------------------------------------------

TEST_F(SoftErrorTest, UncorrectableDirtyLineRaisesMachineCheck)
{
    // Parity cannot correct, and a strike per reference guarantees a
    // detected fault lands on a dirty line almost immediately.
    ASSERT_TRUE(configureSoftErrors("seed=2,tag=1.0"));
    MpSimulator sim =
        makeSim(HierarchyKind::VirtualReal, ArrayProtection::Parity);
    EXPECT_THROW(sim.run(bundle().records), FaultUnrecoverable);
    EXPECT_GE(sim.totalCounter("machine_checks"), 1u);

    // The machine check unlinked the poisoned line before halting:
    // the surviving state is still coherent.
    sim.checkInvariants();
}

TEST_F(SoftErrorTest, UnprotectedArraysNeverDetectAnything)
{
    ASSERT_TRUE(configureSoftErrors("seed=2,tag=0.01"));
    MpSimulator sim =
        makeSim(HierarchyKind::VirtualReal, ArrayProtection::None);
    sim.run(bundle().records);

    // Every strike is silent data corruption: nothing detected, no
    // recovery, no machine check -- the SDC window the bench reports.
    EXPECT_GT(sim.totalCounter("soft_silent"), 0u);
    EXPECT_EQ(sim.totalCounter("soft_detected"), 0u);
    EXPECT_EQ(sim.totalCounter("soft_corrected"), 0u);
    EXPECT_EQ(sim.totalCounter("machine_checks"), 0u);
}

// --- bus transaction loss and retry ----------------------------------

TEST_F(SoftErrorTest, LostBusTransactionsAreRetried)
{
    ASSERT_TRUE(configureSoftErrors("seed=13,bus=0.05"));
    MpSimulator sim = makeSim(HierarchyKind::VirtualReal);
    sim.run(bundle().records);
    sim.checkInvariants();

    const StatGroup &bs = sim.bus().stats();
    EXPECT_GT(bs.value("soft_timeouts"), 0u);
    EXPECT_EQ(bs.value("soft_timeouts"), bs.value("soft_retries"));

    // Each retried attempt is a real (visible) bus transaction.
    MpSimulator base = makeSim(HierarchyKind::VirtualReal);
    disarmSoftErrors();
    base.run(bundle().records);
    EXPECT_EQ(sim.bus().transactions(),
              base.bus().transactions() + bs.value("soft_retries"));
}

TEST_F(SoftErrorTest, RetryBudgetExhaustionIsAMachineCheck)
{
    // Every attempt is lost: the first broadcast burns the whole
    // retry budget and halts.
    ASSERT_TRUE(configureSoftErrors("seed=13,bus=1.0"));
    MpSimulator sim = makeSim(HierarchyKind::VirtualReal);
    EXPECT_THROW(sim.run(bundle().records), FaultUnrecoverable);
    EXPECT_EQ(sim.bus().stats().value("soft_retries"),
              softErrorConfig().busRetryLimit);
}

} // namespace
} // namespace vrc
