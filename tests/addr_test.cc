/**
 * @file
 * Unit tests for the strong address types.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <type_traits>
#include <unordered_set>

#include "base/addr.hh"

namespace vrc
{
namespace
{

TEST(AddrTest, DefaultIsZero)
{
    VirtAddr v;
    PhysAddr p;
    EXPECT_EQ(v.value(), 0u);
    EXPECT_EQ(p.value(), 0u);
}

TEST(AddrTest, ValueRoundTrip)
{
    VirtAddr v(0xdeadbeef);
    EXPECT_EQ(v.value(), 0xdeadbeefu);
}

TEST(AddrTest, TypesAreDistinct)
{
    static_assert(!std::is_convertible_v<VirtAddr, PhysAddr>);
    static_assert(!std::is_convertible_v<PhysAddr, VirtAddr>);
    static_assert(!std::is_convertible_v<std::uint32_t, VirtAddr>);
}

TEST(AddrTest, Comparisons)
{
    EXPECT_LT(VirtAddr(1), VirtAddr(2));
    EXPECT_EQ(VirtAddr(7), VirtAddr(7));
    EXPECT_NE(PhysAddr(1), PhysAddr(2));
    EXPECT_GE(PhysAddr(9), PhysAddr(9));
}

TEST(AddrTest, Arithmetic)
{
    VirtAddr v(0x1000);
    EXPECT_EQ((v + 0x10).value(), 0x1010u);
    EXPECT_EQ((v & 0xff00).value(), 0x1000u);
}

TEST(AddrTest, BitsExtraction)
{
    VirtAddr v(0xabcd1234);
    EXPECT_EQ(v.bits(0, 4), 0x4u);
    EXPECT_EQ(v.bits(8, 8), 0x12u);
    EXPECT_EQ(v.bits(0, 32), 0xabcd1234u);
    EXPECT_EQ(v.bits(28, 4), 0xau);
}

TEST(AddrTest, PageOffset)
{
    VirtAddr v(0x12345);
    EXPECT_EQ(v.pageOffset(4096), 0x345u);
    EXPECT_EQ(v.pageOffset(1024), 0x345u & 1023u);
}

TEST(AddrTest, VpnPpn)
{
    VirtAddr v(0x12345);
    EXPECT_EQ(v.vpn(4096), 0x12u);
    PhysAddr p(0x87654);
    EXPECT_EQ(p.ppn(4096), 0x87u);
}

TEST(AddrTest, MakeAddrComposition)
{
    VirtAddr v = makeVirtAddr(0x12, 0x345, 4096);
    EXPECT_EQ(v.value(), 0x12345u);
    PhysAddr p = makePhysAddr(3, 7, 4096);
    EXPECT_EQ(p.value(), 3u * 4096 + 7);
}

TEST(AddrTest, RoundTripVpnOffset)
{
    for (std::uint32_t raw : {0u, 1u, 4095u, 4096u, 0xffffffffu}) {
        VirtAddr v(raw);
        EXPECT_EQ(makeVirtAddr(v.vpn(4096), v.pageOffset(4096), 4096), v);
    }
}

TEST(AddrTest, Streaming)
{
    std::ostringstream os;
    os << VirtAddr(0x10) << " " << PhysAddr(0x20);
    EXPECT_EQ(os.str(), "V:0x10 P:0x20");
}

TEST(AddrTest, Hashable)
{
    std::unordered_set<VirtAddr> set;
    set.insert(VirtAddr(1));
    set.insert(VirtAddr(1));
    set.insert(VirtAddr(2));
    EXPECT_EQ(set.size(), 2u);
}

} // namespace
} // namespace vrc
