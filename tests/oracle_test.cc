/**
 * @file
 * Tests for the cross-agent coherence oracle.
 *
 * The oracle must stay silent on every correct machine -- all three
 * hierarchy organizations under both coherence protocols, with context
 * switches, DMA traffic, and page remaps in the mix -- and it must fire
 * when a known invariant update is deliberately dropped (the mutation
 * hook in core/mutation.hh).
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "check/oracle.hh"
#include "coherence/dma.hh"
#include "core/mutation.hh"
#include "sim/mp_sim.hh"
#include "trace/generator.hh"

namespace vrc
{
namespace
{

WorkloadProfile
tinyProfile()
{
    WorkloadProfile p = thorProfile();
    p.totalRefs = 25'000;
    p.contextSwitches = 6;
    p.sharedFrac = 0.15; // plenty of cross-CPU traffic
    return p;
}

MachineConfig
smallConfig(HierarchyKind kind, CoherencePolicy protocol)
{
    MachineConfig mc;
    mc.kind = kind;
    mc.hierarchy.l1.sizeBytes = 4 * 1024;
    mc.hierarchy.l2.sizeBytes = 32 * 1024;
    mc.hierarchy.l2.assoc = 2;
    mc.hierarchy.protocol = protocol;
    return mc;
}

using OrgProtocol = std::tuple<HierarchyKind, CoherencePolicy>;

class OracleCleanTest : public ::testing::TestWithParam<OrgProtocol>
{
};

TEST_P(OracleCleanTest, StaysSilentOnCorrectMachine)
{
    auto [kind, protocol] = GetParam();
    auto bundle = generateTrace(tinyProfile());
    MpSimulator sim(smallConfig(kind, protocol), bundle.profile);

    CoherenceOracle oracle(128);
    std::vector<std::string> hits;
    oracle.setViolationHandler([&](const CoherenceOracle::Violation &v) {
        hits.push_back(v.message);
    });
    oracle.attach(sim);

    std::size_t i = 0;
    for (const auto &r : bundle.records) {
        sim.step(r);
        if (++i % 2000 == 0)
            oracle.sweep();
    }
    oracle.sweep();

    EXPECT_TRUE(hits.empty())
        << "false positive: " << (hits.empty() ? "" : hits.front());
    EXPECT_EQ(oracle.violations(), 0u);
    EXPECT_GT(oracle.transactionsChecked(), 0u)
        << "the workload must actually exercise the bus";
    sim.checkInvariants();
}

INSTANTIATE_TEST_SUITE_P(
    AllOrgs, OracleCleanTest,
    ::testing::Combine(
        ::testing::Values(HierarchyKind::VirtualReal,
                          HierarchyKind::RealRealIncl,
                          HierarchyKind::RealRealNoIncl,
                          HierarchyKind::VirtualRealRlt),
        ::testing::Values(CoherencePolicy::WriteInvalidate,
                          CoherencePolicy::WriteUpdate)),
    [](const ::testing::TestParamInfo<OrgProtocol> &info) {
        std::string name =
            std::get<0>(info.param) == HierarchyKind::VirtualReal ? "Vr"
            : std::get<0>(info.param) == HierarchyKind::VirtualRealRlt
                ? "VrRlt"
            : std::get<0>(info.param) == HierarchyKind::RealRealIncl
                ? "RrIncl"
                : "RrNoIncl";
        name += std::get<1>(info.param) == CoherencePolicy::WriteInvalidate
            ? "Inval" : "Update";
        return name;
    });

TEST(OracleTest, SilentWithDmaAndRemapTraffic)
{
    auto bundle = generateTrace(tinyProfile());
    MachineConfig mc = smallConfig(HierarchyKind::VirtualReal,
                                   CoherencePolicy::WriteInvalidate);
    MpSimulator sim(mc, bundle.profile);
    DmaDevice dma(sim.bus(), mc.hierarchy.l2.blockBytes);

    CoherenceOracle oracle(128);
    std::vector<std::string> hits;
    oracle.setViolationHandler([&](const CoherenceOracle::Violation &v) {
        hits.push_back(v.message);
    });
    oracle.attach(sim);

    std::size_t i = 0;
    for (const auto &r : bundle.records) {
        sim.step(r);
        ++i;
        if (i % 700 == 0) {
            // Hammer frames the CPUs are actually using.
            std::uint32_t frame = (i / 700) % 32;
            if (i % 1400 == 0)
                dma.write(PhysAddr(frame * 4096), 64);
            else
                dma.read(PhysAddr(frame * 4096), 64);
        }
        if (i % 3000 == 0)
            sim.remapPage(0, 0x10 + (i / 3000) % 4, 0x200 + (i / 3000));
        if (i % 2500 == 0)
            oracle.sweep();
    }
    oracle.sweep();

    EXPECT_TRUE(hits.empty())
        << "false positive: " << (hits.empty() ? "" : hits.front());
    EXPECT_GT(dma.stats().value("blocks_read"), 0u);
    sim.checkInvariants();
}

TEST(OracleTest, DetectsDroppedInclusionUpdate)
{
    mutationFlags().dropInclusionUpdate = true;

    auto bundle = generateTrace(tinyProfile());
    MpSimulator sim(smallConfig(HierarchyKind::VirtualReal,
                                CoherencePolicy::WriteInvalidate),
                    bundle.profile);

    CoherenceOracle oracle(64);
    std::vector<CoherenceOracle::Violation> hits;
    oracle.setViolationHandler([&](const CoherenceOracle::Violation &v) {
        hits.push_back(v);
    });
    oracle.attach(sim);

    for (const auto &r : bundle.records) {
        sim.step(r);
        oracle.sweep();
        if (!hits.empty())
            break;
    }

    mutationFlags().dropInclusionUpdate = false;

    ASSERT_FALSE(hits.empty())
        << "the oracle must catch the dropped inclusion-bit update";
    EXPECT_NE(hits.front().message.find("directory bits"), std::string::npos)
        << "unexpected violation class: " << hits.front().message;
    EXPECT_GT(oracle.violations(), 0u);
    EXPECT_GT(oracle.ring().size(), 0u)
        << "the event ring must retain the protocol history";
}

TEST(OracleTest, DetachStopsObserving)
{
    auto bundle = generateTrace(tinyProfile());
    MpSimulator sim(smallConfig(HierarchyKind::VirtualReal,
                                CoherencePolicy::WriteInvalidate),
                    bundle.profile);

    CoherenceOracle oracle;
    oracle.attach(sim);
    for (std::size_t i = 0; i < 2000 && i < bundle.records.size(); ++i)
        sim.step(bundle.records[i]);
    std::uint64_t checked = oracle.transactionsChecked();
    EXPECT_GT(checked, 0u);

    oracle.detach();
    for (std::size_t i = 2000; i < 4000 && i < bundle.records.size(); ++i)
        sim.step(bundle.records[i]);
    EXPECT_EQ(oracle.transactionsChecked(), checked)
        << "a detached oracle must see no further transactions";
}

} // namespace
} // namespace vrc
