/**
 * @file
 * Tests for workload profile file I/O.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "trace/generator.hh"
#include "trace/profile_io.hh"

namespace vrc
{
namespace
{

TEST(ProfileIoTest, RoundTripReproducesEveryField)
{
    WorkloadProfile p = abaqusProfile();
    std::stringstream ss;
    writeProfile(ss, p);
    WorkloadProfile q = readProfile(ss);

    EXPECT_EQ(q.name, p.name);
    EXPECT_EQ(q.numCpus, p.numCpus);
    EXPECT_EQ(q.totalRefs, p.totalRefs);
    EXPECT_DOUBLE_EQ(q.instrFrac, p.instrFrac);
    EXPECT_DOUBLE_EQ(q.readFrac, p.readFrac);
    EXPECT_DOUBLE_EQ(q.writeFrac, p.writeFrac);
    EXPECT_EQ(q.contextSwitches, p.contextSwitches);
    EXPECT_EQ(q.processesPerCpu, p.processesPerCpu);
    EXPECT_EQ(q.procCount, p.procCount);
    EXPECT_DOUBLE_EQ(q.procZipfTheta, p.procZipfTheta);
    EXPECT_DOUBLE_EQ(q.callProb, p.callProb);
    EXPECT_DOUBLE_EQ(q.seqFrac, p.seqFrac);
    EXPECT_DOUBLE_EQ(q.hotspotFrac, p.hotspotFrac);
    EXPECT_EQ(q.seed, p.seed);
    ASSERT_EQ(q.dataLevels.size(), p.dataLevels.size());
    for (std::size_t i = 0; i < p.dataLevels.size(); ++i) {
        EXPECT_EQ(q.dataLevels[i].bytes, p.dataLevels[i].bytes);
        EXPECT_DOUBLE_EQ(q.dataLevels[i].weight,
                         p.dataLevels[i].weight);
    }
}

TEST(ProfileIoTest, RoundTrippedProfileGeneratesIdenticalTrace)
{
    WorkloadProfile p = scaled(popsProfile(), 0.003);
    std::stringstream ss;
    writeProfile(ss, p);
    WorkloadProfile q = readProfile(ss);
    EXPECT_EQ(generateTrace(p).records, generateTrace(q).records);
}

TEST(ProfileIoTest, PartialFileKeepsDefaults)
{
    std::stringstream ss;
    ss << "# my profile\n"
       << "name = tiny\n"
       << "num_cpus = 2\n"
       << "total_refs = 5000\n";
    WorkloadProfile p = readProfile(ss);
    EXPECT_EQ(p.name, "tiny");
    EXPECT_EQ(p.numCpus, 2u);
    EXPECT_EQ(p.totalRefs, 5000u);
    WorkloadProfile defaults;
    EXPECT_DOUBLE_EQ(p.instrFrac, defaults.instrFrac);
    EXPECT_EQ(p.pageSize, defaults.pageSize);
}

TEST(ProfileIoTest, DataLevelsParsing)
{
    std::stringstream ss;
    ss << "data_levels = 1024:0.5, 8192:0.3,262144:0.2\n";
    WorkloadProfile p = readProfile(ss);
    ASSERT_EQ(p.dataLevels.size(), 3u);
    EXPECT_EQ(p.dataLevels[1].bytes, 8192u);
    EXPECT_DOUBLE_EQ(p.dataLevels[1].weight, 0.3);
}

TEST(ProfileIoDeathTest, UnknownKeyRejected)
{
    std::stringstream ss;
    ss << "num_cpuz = 4\n";
    EXPECT_EXIT(readProfile(ss), ::testing::ExitedWithCode(1),
                "unknown profile key");
}

TEST(ProfileIoDeathTest, MissingEqualsRejected)
{
    std::stringstream ss;
    ss << "just some words\n";
    EXPECT_EXIT(readProfile(ss), ::testing::ExitedWithCode(1),
                "no '='");
}

TEST(ProfileIoDeathTest, BadLevelSyntaxRejected)
{
    std::stringstream ss;
    ss << "data_levels = 1024-0.5\n";
    EXPECT_EXIT(readProfile(ss), ::testing::ExitedWithCode(1),
                "bad data_levels");
}

TEST(ProfileIoTest, FileRoundTrip)
{
    std::string path = ::testing::TempDir() + "/vrc_profile_test.prof";
    WorkloadProfile p = thorProfile();
    saveProfile(path, p);
    WorkloadProfile q = loadProfile(path);
    EXPECT_EQ(q.name, "thor");
    EXPECT_EQ(q.seed, p.seed);
    std::remove(path.c_str());
}

} // namespace
} // namespace vrc
