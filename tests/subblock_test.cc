/**
 * @file
 * Scenario tests for level-2 lines larger than level-1 blocks
 * (B2 > B1): one R-cache line then carries several subentries, each
 * tracking its own level-1 child (Figure 3's "one subentry per V-cache
 * block").
 */

#include <gtest/gtest.h>

#include <memory>

#include "coherence/bus.hh"
#include "core/vr_hierarchy.hh"
#include "vm/addr_space.hh"

namespace vrc
{
namespace
{

constexpr std::uint32_t kPage = 4096;

class SubBlockTest : public ::testing::Test
{
  protected:
    SubBlockTest() : spaces(kPage)
    {
        params.l2.blockBytes = 64;  // four 16-byte sub-blocks per line
    }

    void
    build(unsigned cpus = 2)
    {
        for (unsigned i = 0; i < cpus; ++i) {
            h.push_back(std::make_unique<VrHierarchy>(params, spaces,
                                                      bus, true));
        }
    }

    void
    map(ProcessId pid, Vpn vpn, Ppn ppn)
    {
        spaces.pageTable(pid).map(vpn, ppn);
    }

    AccessOutcome
    read(unsigned cpu, ProcessId pid, std::uint32_t va)
    {
        return h[cpu]->access({RefType::Read, VirtAddr(va), pid});
    }

    AccessOutcome
    write(unsigned cpu, ProcessId pid, std::uint32_t va)
    {
        return h[cpu]->access({RefType::Write, VirtAddr(va), pid});
    }

    HierarchyParams params{{8 * 1024, 16, 1, ReplPolicy::LRU},
                           {64 * 1024, 64, 1, ReplPolicy::LRU},
                           kPage};
    AddressSpaceManager spaces;
    SharedBus bus;
    std::vector<std::unique_ptr<VrHierarchy>> h;
};

TEST_F(SubBlockTest, SubBlocksMissIndependently)
{
    build(1);
    map(0, 0x10, 5);
    EXPECT_EQ(read(0, 0, 0x10000), AccessOutcome::Miss);
    // The next 16B block shares the 64B R-line but is a fresh L1 block:
    // level 2 already holds it -> L2 hit, not a bus miss.
    EXPECT_EQ(read(0, 0, 0x10010), AccessOutcome::L2Hit);
    EXPECT_EQ(read(0, 0, 0x10020), AccessOutcome::L2Hit);
    EXPECT_EQ(h[0]->stats().value("misses"), 1u)
        << "one bus fetch served four sub-blocks (spatial prefetch)";
    h[0]->checkInvariants();
}

TEST_F(SubBlockTest, SubentriesTrackChildrenIndependently)
{
    build(1);
    map(0, 0x10, 5);
    read(0, 0, 0x10000);
    read(0, 0, 0x10010);
    auto rref = h[0]->rcache().probe(PhysAddr(5 * kPage));
    ASSERT_TRUE(rref.has_value());
    EXPECT_TRUE(h[0]->rcache().sub(*rref, PhysAddr(5 * kPage)).inclusion);
    EXPECT_TRUE(
        h[0]->rcache().sub(*rref, PhysAddr(5 * kPage + 16)).inclusion);
    EXPECT_FALSE(
        h[0]->rcache().sub(*rref, PhysAddr(5 * kPage + 32)).inclusion)
        << "untouched sub-block has no child";
    h[0]->checkInvariants();
}

TEST_F(SubBlockTest, ForeignReadFlushesOnlyDirtySubBlocks)
{
    build(2);
    map(0, 0x10, 5);
    map(1, 0x10, 5);
    write(0, 0, 0x10000); // dirty sub 0
    read(0, 0, 0x10010);  // clean sub 1
    read(1, 1, 0x10000);  // foreign read of the whole line
    EXPECT_EQ(h[0]->stats().value("l1_flushes"), 1u)
        << "only the dirty sub-block percolates a flush";
    // Both copies remain valid in CPU0.
    EXPECT_EQ(read(0, 0, 0x10000), AccessOutcome::L1Hit);
    EXPECT_EQ(read(0, 0, 0x10010), AccessOutcome::L1Hit);
    h[0]->checkInvariants();
    h[1]->checkInvariants();
}

TEST_F(SubBlockTest, ForeignWriteInvalidatesAllChildren)
{
    build(2);
    map(0, 0x10, 5);
    map(1, 0x10, 5);
    read(0, 0, 0x10000);
    read(0, 0, 0x10010);
    write(1, 1, 0x10020); // foreign write anywhere in the 64B line
    EXPECT_FALSE(h[0]->vcache().lookup(VirtAddr(0x10000)).has_value());
    EXPECT_FALSE(h[0]->vcache().lookup(VirtAddr(0x10010)).has_value());
    EXPECT_EQ(h[0]->stats().value("l1_invalidations"), 2u);
    h[0]->checkInvariants();
}

TEST_F(SubBlockTest, RLineEvictionKillsEveryChild)
{
    // Force an R-line replacement while two of its children live in
    // different V-cache sets: both must be invalidated.
    params.l2.sizeBytes = 16 * 1024;
    build(1);
    map(0, 0x10, 1);
    map(0, 0x31, 5); // ppn 1 and 5 conflict in a 16K L2 (mod 4 pages)
    read(0, 0, 0x10100);
    read(0, 0, 0x10110); // second child of the same R line
    EXPECT_EQ(read(0, 0, 0x31100), AccessOutcome::Miss);
    EXPECT_EQ(h[0]->stats().value("inclusion_invalidations"), 2u);
    EXPECT_FALSE(h[0]->vcache().lookup(VirtAddr(0x10100)).has_value());
    EXPECT_FALSE(h[0]->vcache().lookup(VirtAddr(0x10110)).has_value());
    h[0]->checkInvariants();
}

TEST_F(SubBlockTest, SynonymPerSubBlock)
{
    build(1);
    map(0, 0x10, 5);
    map(0, 0x31, 5);
    read(0, 0, 0x10010);
    // Same physical sub-block under the other virtual name: synonym.
    EXPECT_EQ(read(0, 0, 0x31010), AccessOutcome::SynonymHit);
    // A *different* sub-block of the same line is a plain L2 hit.
    EXPECT_EQ(read(0, 0, 0x31020), AccessOutcome::L2Hit);
    h[0]->checkInvariants();
}

TEST_F(SubBlockTest, BufferBitPerSubBlock)
{
    build(1);
    map(0, 0x10, 5);
    map(0, 0x30, 5 + 2); // L1-conflicting block (same V set parity)
    write(0, 0, 0x10000);
    read(0, 0, 0x30000); // evicts the dirty sub-0 block into the buffer
    auto rref = h[0]->rcache().probe(PhysAddr(5 * kPage));
    ASSERT_TRUE(rref.has_value());
    EXPECT_TRUE(h[0]->rcache().sub(*rref, PhysAddr(5 * kPage)).buffer);
    EXPECT_FALSE(
        h[0]->rcache().sub(*rref, PhysAddr(5 * kPage + 16)).buffer);
    h[0]->checkInvariants();
}

} // namespace
} // namespace vrc
